// One benchmark per paper figure (F1–F15) and per quantified claim
// (Q1–Q7); see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded results.  Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/biblio"
	"repro/internal/cmn"
	"repro/internal/darms"
	"repro/internal/ddl"
	"repro/internal/demo"
	"repro/internal/figuregen"
	"repro/internal/mdm"
	"repro/internal/meta"
	"repro/internal/midi"
	"repro/internal/model"
	"repro/internal/pianoroll"
	"repro/internal/pscript"
	"repro/internal/quel"
	"repro/internal/relbase"
	"repro/internal/sound"
	"repro/internal/storage"
	"repro/internal/value"
)

func freshModel(b *testing.B) *model.Database {
	b.Helper()
	store, err := storage.Open(storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	db, err := model.Open(store)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func freshMusic(b *testing.B) *cmn.Music {
	b.Helper()
	m, err := cmn.Open(freshModel(b))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func chordSchema(b *testing.B, db *model.Database) {
	b.Helper()
	if _, err := ddl.Exec(db, `
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer)
define ordering note_in_chord (NOTE) under CHORD
`); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig1SharedMDM: figure 1 — four concurrent clients sharing one
// music data manager.
func BenchmarkFig1SharedMDM(b *testing.B) {
	m, err := mdm.Open(mdm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				s := m.NewSession()
				if c%2 == 0 {
					s.Exec(`append to ANNOTATION (kind = "bench", text = "x")`) //nolint:errcheck
				} else {
					s.Query(`range of a is ANNOTATION retrieve (n = count(a.all))`) //nolint:errcheck
				}
			}(c)
		}
		wg.Wait()
	}
}

// BenchmarkFig2ThematicLookup: figure 2 — identifier lookup in a
// thematic index of 10⁴ entries.
func BenchmarkFig2ThematicLookup(b *testing.B) {
	db := freshModel(b)
	ix, err := biblio.Open(db)
	if err != nil {
		b.Fatal(err)
	}
	cat, _ := ix.NewCatalog("bench", "BN", "chronological")
	const n = 10000
	for i := 1; i <= n; i++ {
		ix.AddEntry(cat, biblio.Entry{Number: i, Title: fmt.Sprintf("Work %d", i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Lookup("BN", 1+i%n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3PianoRoll: figure 3 — event-stream → roll translation.
func BenchmarkFig3PianoRoll(b *testing.B) {
	m := freshMusic(b)
	_, voice, _, err := demo.LoadFugue(m)
	if err != nil {
		b.Fatal(err)
	}
	seq, err := demo.FugueSequence(m, voice, 120)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pianoroll.FromSequence(seq, 125_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4DarmsParse and ...Canonize: figure 4 — the encoding
// pipeline.
func BenchmarkFig4DarmsParse(b *testing.B) {
	b.SetBytes(int64(len(darms.Figure4)))
	for i := 0; i < b.N; i++ {
		if _, err := darms.Parse(darms.Figure4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4DarmsCanonize(b *testing.B) {
	items, err := darms.Parse(darms.Figure4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := darms.Canonize(items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5IsJoin: figure 5 — the §5.6 is-operator join.
func BenchmarkFig5IsJoin(b *testing.B) {
	db := freshModel(b)
	if _, err := ddl.Exec(db, `
define entity PERSON (name = string)
define entity COMPOSITION (title = string)
define relationship COMPOSER (composer = PERSON, composition = COMPOSITION)`); err != nil {
		b.Fatal(err)
	}
	const n = 200
	people, _ := db.NewEntities("PERSON", n, func(i int) model.Attrs {
		return model.Attrs{"name": value.Str(fmt.Sprintf("p%d", i))}
	})
	comps, _ := db.NewEntities("COMPOSITION", n, func(i int) model.Attrs {
		return model.Attrs{"title": value.Str(fmt.Sprintf("w%d", i))}
	})
	for i := range people {
		db.Relate("COMPOSER", map[string]value.Ref{"composer": people[i], "composition": comps[i]}, nil)
	}
	s := quel.NewSession(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(`retrieve (PERSON.name)
  where COMPOSITION.title = "w7"
  and COMPOSER.composition is COMPOSITION and COMPOSER.composer is PERSON`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6OrdinalAccess: figure 6 — "the third child of y" at
// large fan-out.
func BenchmarkFig6OrdinalAccess(b *testing.B) {
	db := freshModel(b)
	chordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	const n = 10000
	refs, _ := db.NewEntities("NOTE", n, func(int) model.Attrs { return nil })
	for _, r := range refs {
		db.InsertChild("note_in_chord", chord, r, model.Last())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ChildAt("note_in_chord", chord, i%n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7HOGraph: figure 7 — schema-level HO graph construction.
func BenchmarkFig7HOGraph(b *testing.B) {
	m := freshMusic(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DB.HOGraph()
	}
}

// BenchmarkFig8RecursiveTraversal: figure 8 — walking nested beam
// groups.
func BenchmarkFig8RecursiveTraversal(b *testing.B) {
	db := freshModel(b)
	if _, err := ddl.Exec(db, demo.BeamSchemaDDL); err != nil {
		b.Fatal(err)
	}
	root, err := demo.BuildBeamFigure(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		db.Walk("beam_content", root, func(value.Ref, int) bool { count++; return true })
		if count != 10 {
			b.Fatal("walk miscount")
		}
	}
}

// BenchmarkFig9CatalogBootstrap: figure 9 — the self-describing catalog
// over the full CMN schema.
func BenchmarkFig9CatalogBootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := freshMusic(b)
		b.StartTimer()
		if _, err := meta.Bootstrap(m.DB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10DrawStemCatalog and ...Hardcoded: figure 10 — the §6.2
// drawing procedure, catalog-driven vs compiled-in (the indirection
// ablation).
func BenchmarkFig10DrawStemCatalog(b *testing.B) {
	db := freshModel(b)
	c, err := meta.Bootstrap(db)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ddl.Exec(db, `define entity STEM (xpos = integer, ypos = integer, length = integer, direction = integer)`); err != nil {
		b.Fatal(err)
	}
	c.Refresh()
	if _, err := c.DefineGraphDef("draw_stem", "STEM",
		"newpath xpos ypos moveto 0 length direction mul rlineto stroke",
		[]meta.ParamBinding{
			{Attribute: "xpos", Setup: "/xpos exch def"},
			{Attribute: "ypos", Setup: "/ypos exch def"},
			{Attribute: "length", Setup: "/length exch def"},
			{Attribute: "direction", Setup: "/direction exch def"},
		}); err != nil {
		b.Fatal(err)
	}
	stem, _ := db.NewEntity("STEM", model.Attrs{
		"xpos": value.Int(4), "ypos": value.Int(10),
		"length": value.Int(7), "direction": value.Int(-1),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figuregen.DrawViaCatalog(db, c, "STEM", stem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10DrawStemHardcoded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		canvas := pscript.NewCanvas()
		in := pscript.New(canvas)
		if err := in.Run("newpath 4 10 moveto 0 7 -1 mul rlineto stroke"); err != nil {
			b.Fatal(err)
		}
		canvas.Rasterize(12, 12)
	}
}

// BenchmarkFig11Inventory and BenchmarkFig12DynamicInheritance: figures
// 11 and 12.
func BenchmarkFig11Inventory(b *testing.B) {
	m := freshMusic(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range cmn.Inventory() {
			if _, ok := m.DB.EntityType(e.Name); !ok {
				b.Fatal("missing entity")
			}
		}
	}
}

func BenchmarkFig12DynamicInheritance(b *testing.B) {
	m := freshMusic(b)
	score, voices, err := demo.RandomScore(m, 16, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	score.AddDynamic(cmn.Zero, "f")
	voices[0].AddDynamic(cmn.Beats(8, 1), "p")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// PerformedNotes resolves every note's inherited dynamic.
		if _, err := voices[0].PerformedNotes(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13TemporalExtrapolation: figure 13 — score time →
// performance time through a ramped tempo map.
func BenchmarkFig13TemporalExtrapolation(b *testing.B) {
	tm := cmn.NewTempoMap(96)
	tm.AddMark(cmn.TempoMark{Beat: cmn.Beats(32, 1), BPM: 120, Ramp: true})
	tm.AddMark(cmn.TempoMark{Beat: cmn.Beats(64, 1), BPM: 60})
	notes := make([]cmn.PerformedNote, 1000)
	for i := range notes {
		notes[i] = cmn.PerformedNote{Pitch: 40 + i%40, Start: cmn.Beats(int64(i), 4),
			Duration: cmn.Quarter, Velocity: 80}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		midi.FromPerformance(notes, tm, 0)
	}
}

// BenchmarkFig14SyncAlignment: figure 14 — dividing measures into syncs.
func BenchmarkFig14SyncAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := freshMusic(b)
		score, voices, err := demo.RandomScore(m, 16, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		movements, _ := score.Movements()
		movements[0].ClearAlignment()
		b.StartTimer()
		if err := movements[0].Align(voices); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15GroupAggregate: figure 15 — duration aggregation over
// nested melodic groups.
func BenchmarkFig15GroupAggregate(b *testing.B) {
	m := freshMusic(b)
	_, voice, _, err := demo.LoadFugue(m)
	if err != nil {
		b.Fatal(err)
	}
	var groups []*cmn.Group
	err = m.DB.Instances("GROUP", func(ref value.Ref, _ value.Tuple) bool {
		g, err := m.GroupByRef(ref)
		if err == nil {
			groups = append(groups, g)
		}
		return true
	})
	if err != nil || len(groups) == 0 {
		b.Fatal("no groups")
	}
	_ = voice
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := groups[i%len(groups)].Duration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ1SortedSelection: §5.2 — matching-key range scan vs heap
// scan.
func BenchmarkQ1SortedSelection(b *testing.B) {
	db, _ := storage.Open(storage.Options{})
	db.CreateRelation("N", value.NewSchema(value.Field{Name: "pitch", Kind: value.KindInt}))
	db.CreateIndex("N", storage.IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}})
	db.Run(func(tx *storage.Tx) error {
		for i := 0; i < 100000; i++ {
			tx.Insert("N", value.Tuple{value.Int(int64(i % 128))})
		}
		return nil
	})
	lo := value.AppendKey(nil, value.Int(60))
	hi := value.AppendKey(nil, value.Int(64))
	b.Run("IndexRange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.Run(func(tx *storage.Tx) error {
				return tx.IndexScan("N", "by_pitch", lo, hi, func(storage.RowID, value.Tuple) bool { return true })
			})
		}
	})
	b.Run("HeapScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.Run(func(tx *storage.Tx) error {
				return tx.Scan("N", func(_ storage.RowID, t value.Tuple) bool { return true })
			})
		}
	})
}

// BenchmarkQ2MiddleInsert: gap-ranked ordering vs relational
// renumbering.
func BenchmarkQ2MiddleInsert(b *testing.B) {
	const base = 2000
	b.Run("GapRanks", func(b *testing.B) {
		db := freshModel(b)
		chordSchema(b, db)
		chord, _ := db.NewEntity("CHORD", nil)
		refs, _ := db.NewEntities("NOTE", base+b.N, func(int) model.Attrs { return nil })
		for i := 0; i < base; i++ {
			db.InsertChild("note_in_chord", chord, refs[i], model.Last())
		}
		anchor := refs[base/2]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.InsertChild("note_in_chord", chord, refs[base+i], model.Before(anchor)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Renumber", func(b *testing.B) {
		sdb, _ := storage.Open(storage.Options{})
		s, _ := relbase.Open(sdb)
		chord, _ := s.NewChord(1)
		for i := 0; i < base; i++ {
			s.AppendNote(chord, int64(i), 60)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.InsertNoteAt(chord, base/2, int64(10000+i), 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQ3OrderingOperators: the §5.6 operators vs relational
// equivalents.
func BenchmarkQ3OrderingOperators(b *testing.B) {
	const n = 10000
	db := freshModel(b)
	chordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	refs, _ := db.NewEntities("NOTE", n, func(i int) model.Attrs {
		return model.Attrs{"name": value.Int(int64(i))}
	})
	for _, r := range refs {
		db.InsertChild("note_in_chord", chord, r, model.Last())
	}
	sdb, _ := storage.Open(storage.Options{})
	rb, _ := relbase.Open(sdb)
	bchord, _ := rb.NewChord(1)
	for i := 0; i < n; i++ {
		rb.AppendNote(bchord, int64(i), 60)
	}
	b.Run("BeforeHO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.BeforeIn("note_in_chord", refs[i%n], refs[(i*7)%n])
		}
	})
	b.Run("BeforeRelational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rb.Before(bchord, int64(i%n), int64((i*7)%n))
		}
	})
}

// BenchmarkQ4SoundStorage: §4.1 — synthesis plus both codecs.
func BenchmarkQ4SoundStorage(b *testing.B) {
	m := freshMusic(b)
	_, voice, _, err := demo.LoadFugue(m)
	if err != nil {
		b.Fatal(err)
	}
	seq, _ := demo.FugueSequence(m, voice, 240)
	buf, err := sound.Synthesize(seq, sound.Organ, 48000)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf.Samples) * sound.BytesPerSample))
	b.Run("Delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sound.EncodeDelta(buf)
		}
	})
	b.Run("MuLaw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sound.EncodeMuLaw(buf)
		}
	})
}

// BenchmarkQ7TxnOverhead: WAL and fsync overheads per transaction.
func BenchmarkQ7TxnOverhead(b *testing.B) {
	schema := value.NewSchema(value.Field{Name: "v", Kind: value.KindInt})
	run := func(b *testing.B, opts storage.Options) {
		db, err := storage.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		db.CreateRelation("T", schema)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Run(func(tx *storage.Tx) error {
				_, err := tx.Insert("T", value.Tuple{value.Int(int64(i))})
				return err
			})
		}
	}
	b.Run("NoWAL", func(b *testing.B) { run(b, storage.Options{}) })
	b.Run("WAL", func(b *testing.B) { run(b, storage.Options{Dir: b.TempDir()}) })
	b.Run("WALSync", func(b *testing.B) { run(b, storage.Options{Dir: b.TempDir(), SyncCommits: true}) })
}

// BenchmarkAblationBeforeRankVsWalk isolates DESIGN.md's design choice 1:
// `a before b` answered by the gap-rank comparison (O(1)) versus walking
// S-edges from a until b is found (the pure linked-list representation a
// rank-free implementation would use).
func BenchmarkAblationBeforeRankVsWalk(b *testing.B) {
	const n = 10000
	db := freshModel(b)
	chordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	refs, _ := db.NewEntities("NOTE", n, func(int) model.Attrs { return nil })
	for _, r := range refs {
		db.InsertChild("note_in_chord", chord, r, model.Last())
	}
	b.Run("RankCompare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, err := db.BeforeIn("note_in_chord", refs[100], refs[n-100])
			if err != nil || !ok {
				b.Fatal("rank compare failed")
			}
		}
	})
	b.Run("SiblingWalk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Walk S-edges from refs[100] looking for refs[n-100].
			found := false
			for cur, ok := refs[100], true; ok; cur, ok = db.NextSibling("note_in_chord", cur) {
				if cur == refs[n-100] {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("walk failed")
			}
		}
	})
}

// BenchmarkAblationQuelSargPushdown isolates the executor's sarg
// pushdown: the same selective query with and without a pushable
// predicate shape.
func BenchmarkAblationQuelSargPushdown(b *testing.B) {
	db := freshModel(b)
	chordSchema(b, db)
	const n = 5000
	db.NewEntities("NOTE", n, func(i int) model.Attrs {
		return model.Attrs{"name": value.Int(int64(i)), "pitch": value.Int(int64(i % 100))}
	})
	s := quel.NewSession(db)
	b.Run("Pushable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// name = 50 is a var.attr = literal conjunct: pushed down.
			if _, err := s.Exec(`range of x is NOTE retrieve (x.pitch) where x.name = 50`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NotPushable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// name - 50 = 0 is semantically identical but not a sarg.
			if _, err := s.Exec(`range of x is NOTE retrieve (x.pitch) where x.name - 50 = 0`); err != nil {
				b.Fatal(err)
			}
		}
	})
}
