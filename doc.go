// Package repro is a full reproduction of "A Database Design for Musical
// Information" (W. Bradley Rubenstein, Proc. ACM SIGMOD 1987): a music
// data manager built on the entity-relationship model extended with
// hierarchical ordering.
//
// The public surface lives under internal/ packages composed by
// internal/mdm; the executables are cmd/mdm (interactive DDL/QUEL
// shell), cmd/darmsconv (DARMS canonizer), cmd/figures (regenerates
// every figure of the paper), and cmd/mdmbench (the experiment suite
// recorded in EXPERIMENTS.md).  bench_test.go in this directory holds
// one benchmark per paper figure and per quantified claim.
package repro
