// Thematic index: the score-library client of §2 and §4.2.  Builds a
// BWV-style catalogue, renders figure 2's entry, and runs identifier and
// incipit (melodic) searches.
//
//	go run ./examples/thematic_index
package main

import (
	"fmt"
	"log"

	"repro/internal/biblio"
	"repro/internal/mdm"
)

func main() {
	m, err := mdm.Open(mdm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	ix := m.Biblio

	cat, err := ix.NewCatalog("Bach Werke Verzeichnis", "BWV", "chronological")
	if err != nil {
		log.Fatal(err)
	}
	// Figure 2's entry plus neighbours.
	if _, err := ix.AddEntry(cat, biblio.BWV578()); err != nil {
		log.Fatal(err)
	}
	toccata := biblio.Entry{
		Number: 565, Title: "Toccata und Fuge d-moll", Setting: "Orgel",
		ComposedWhen: "um 1704", Measures: 143,
		Incipit: []biblio.IncipitNote{
			{MIDIPitch: 69, DurNum: 1, DurDen: 8}, {MIDIPitch: 67, DurNum: 1, DurDen: 8},
			{MIDIPitch: 69, DurNum: 1, DurDen: 2},
		},
	}
	passacaglia := biblio.Entry{
		Number: 582, Title: "Passacaglia c-moll", Setting: "Orgel",
		ComposedWhen: "um 1710", Measures: 168,
		Incipit: []biblio.IncipitNote{
			{MIDIPitch: 60, DurNum: 1, DurDen: 1}, {MIDIPitch: 67, DurNum: 1, DurDen: 1},
			{MIDIPitch: 63, DurNum: 1, DurDen: 1},
		},
	}
	for _, e := range []biblio.Entry{toccata, passacaglia} {
		if _, err := ix.AddEntry(cat, e); err != nil {
			log.Fatal(err)
		}
	}

	// The figure-2 rendering.
	entry, err := ix.Lookup("BWV", 578)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ix.Render(entry)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// Melodic search: the fugue subject's head (up a fifth, down a
	// major third) — transposition-invariant.
	hits, err := ix.SearchIncipit([]int{7, -4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("incipit search for intervals [+7, -4]:")
	for _, h := range hits {
		id, _ := ix.Identifier(h)
		e, _ := ix.Get(h)
		fmt.Printf("  %s — %s\n", id, e.Title)
	}

	// The catalogue is ordinary data: query it through QUEL.
	s := m.NewSession()
	res, err := s.Query(`
range of e is CATALOG_ENTRY
retrieve (e.number, e.title) where e.measures > 100`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworks longer than 100 measures (via QUEL):")
	fmt.Println(res)
}
