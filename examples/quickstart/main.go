// Quickstart: define a schema with hierarchical ordering, load data, and
// run the paper's §5.6 queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/mdm"
	"repro/internal/model"
	"repro/internal/value"
)

func main() {
	// An in-memory music data manager.  Pass Dir for durability.
	m, err := mdm.Open(mdm.Options{SkipCMN: true})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	s := m.NewSession()

	// The schema of §5.4: notes ordered within chords, with a secondary
	// index so pitch predicates become B-tree range scans.
	if _, err := s.Exec(`
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer, chord = integer)
define ordering note_in_chord (NOTE) under CHORD
define index on NOTE (pitch)
`); err != nil {
		log.Fatal(err)
	}

	// Load a four-note chord through the typed model API.
	db := m.Model
	chord, err := db.NewEntity("CHORD", model.Attrs{"name": value.Int(1)})
	if err != nil {
		log.Fatal(err)
	}
	for i, pitch := range []int64{60, 64, 67, 72} { // C major
		note, err := db.NewEntity("NOTE", model.Attrs{
			"name": value.Int(int64(i + 1)), "pitch": value.Int(pitch),
			"chord": value.Int(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.InsertChild("note_in_chord", chord, note, model.Last()); err != nil {
			log.Fatal(err)
		}
	}

	// "The third note in chord x" (§5.4).
	third, err := db.ChildAt("note_in_chord", chord, 2)
	if err != nil {
		log.Fatal(err)
	}
	pitch, _ := db.Attr(third, "pitch")
	fmt.Printf("the third note of the chord has pitch %s\n\n", pitch)

	// The §5.6 queries, verbatim.
	for _, q := range []string{
		`range of n1, n2 is NOTE
		 retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3`,
		`retrieve (n1.name) where n1 after n2 in note_in_chord and n2.name = 3`,
		`range of c1 is CHORD
		 retrieve (n1.name) where n1 under c1 in note_in_chord and c1.name = 1`,
		`retrieve (c1.name) where n1 under c1 in note_in_chord and n1.name = 4`,
	} {
		out, err := s.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	// The cost-based planner at work: explain shows the pitch predicate
	// running as an IndexScan key range, and the chord/note equi-join as
	// a HashJoin instead of a nested loop.
	for _, q := range []string{
		`explain retrieve (n1.name) where n1.pitch >= 64 and n1.pitch < 70`,
		`explain retrieve (n1.name, c1.name) where n1.chord = c1.name`,
	} {
		out, err := s.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}
