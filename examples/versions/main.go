// Versions: score version control, the extension the paper gestures at
// through [Dan86] ("versions and multiple views") and [KaL82].  Imports
// the fugue subject, commits it, edits the score (transposes the head,
// adds a closing measure), commits again, then diffs and checks out both
// versions.
//
//	go run ./examples/versions
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/cmn"
	"repro/internal/darms"
	"repro/internal/demo"
	"repro/internal/mdm"
	"repro/internal/value"
	"repro/internal/version"
)

func main() {
	m, err := mdm.Open(mdm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	vs, err := version.Open(m.Music)
	if err != nil {
		log.Fatal(err)
	}

	items, err := darms.Parse(demo.FugueSubjectDARMS)
	if err != nil {
		log.Fatal(err)
	}
	score, err := darms.ToScore(m.Music, items, "Fuge g-moll (subject)")
	if err != nil {
		log.Fatal(err)
	}
	voice, staff, err := demo.SoloHandles(m.Music, score)
	if err != nil {
		log.Fatal(err)
	}

	seq1, err := vs.Commit(score, []*cmn.Voice{voice}, "initial import from DARMS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed version %d\n", seq1)

	// Edit 1: raise the second note a step (D5 → E5, degree 6 → 7).
	content, err := voice.Content()
	if err != nil {
		log.Fatal(err)
	}
	second, err := m.Music.ChordByRef(content[1].Ref)
	if err != nil {
		log.Fatal(err)
	}
	notes, _ := second.Notes()
	if err := m.Model.SetAttr(notes[0].Ref, "degree", value.Int(7)); err != nil {
		log.Fatal(err)
	}
	// Edit 2: a closing measure with a held G4.
	movements, _ := score.Movements()
	if _, err := movements[0].AddMeasure(4, 4); err != nil {
		log.Fatal(err)
	}
	closing, err := voice.AppendChord(cmn.Whole, 1)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := closing.AddNote(2, cmn.AccNone)
	n.OnStaff(staff)
	movements[0].ClearAlignment()
	if err := movements[0].Align([]*cmn.Voice{voice}); err != nil {
		log.Fatal(err)
	}
	if err := voice.ResolvePitches(staff); err != nil {
		log.Fatal(err)
	}

	seq2, err := vs.Commit(score, []*cmn.Voice{voice}, "raise answer tone; add final measure")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed version %d\n\n", seq2)

	// History and diff.
	hist, err := vs.History(score.Title())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history:")
	for _, h := range hist {
		fmt.Printf("  v%d (parent v%d): %s\n", h.Seq, h.ParentSeq, h.Label)
	}
	s1, _ := vs.Load(score.Title(), seq1)
	s2, _ := vs.Load(score.Title(), seq2)
	fmt.Println("\ndiff v1 → v2:")
	for _, c := range version.Diff(s1, s2) {
		fmt.Printf("  [%s] %s\n", c.Kind, c.Desc)
	}

	// Check out both versions and compare their keys — the analysis
	// client works on any checkout.
	for _, seq := range []int64{seq1, seq2} {
		_, voices, err := vs.Checkout(score.Title(), seq)
		if err != nil {
			log.Fatal(err)
		}
		key, err := analysis.EstimateKey(voices)
		if err != nil {
			log.Fatal(err)
		}
		nn, _ := voices[0].PerformedNotes()
		fmt.Printf("\ncheckout v%d: %d notes, estimated key %s (r=%.2f)", seq, len(nn), key, key.Score)
	}
	fmt.Println()
}
