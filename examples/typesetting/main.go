// Typesetting: the music typesetter client of §2, driven by the
// graphical-definition layer of §6.2.  Drawing functions for staff
// lines, note heads, and stems are registered as GraphDef entities; the
// client walks the score and executes them through the catalog
// (GDefUse/GParmUse), rendering one system of the fugue subject to an
// ASCII bitmap.
//
//	go run ./examples/typesetting
package main

import (
	"fmt"
	"log"

	"repro/internal/darms"
	"repro/internal/demo"
	"repro/internal/mdm"
	"repro/internal/meta"
	"repro/internal/model"
	"repro/internal/pscript"
	"repro/internal/value"
)

func main() {
	m, err := mdm.Open(mdm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	items, err := darms.Parse(demo.FugueSubjectDARMS)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := darms.ToScore(m.Music, items, "Fuge g-moll (subject)"); err != nil {
		log.Fatal(err)
	}
	if err := m.Catalog.Refresh(); err != nil {
		log.Fatal(err)
	}

	// Register graphical definitions for the entity types we draw.  The
	// client may freely modify these: they are data (§6.2).
	if _, err := m.Catalog.DefineGraphDef("draw_notehead", "NOTEHEAD",
		"newpath xpos ypos 1.2 0 360 arc fill",
		[]meta.ParamBinding{
			{Attribute: "xpos", Setup: "/xpos exch def"},
			{Attribute: "ypos", Setup: "/ypos exch def"},
		}); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Catalog.DefineGraphDef("draw_stem", "STEM",
		"newpath xpos ypos moveto 0 length direction mul rlineto stroke",
		[]meta.ParamBinding{
			{Attribute: "xpos", Setup: "/xpos exch def"},
			{Attribute: "ypos", Setup: "/ypos exch def"},
			{Attribute: "length", Setup: "/length exch def"},
			{Attribute: "direction", Setup: "/direction exch def"},
		}); err != nil {
		log.Fatal(err)
	}

	// Typeset: walk the voice, creating NOTEHEAD and STEM instances with
	// positions computed from staff degrees, then draw every instance
	// through the catalog onto one canvas.
	scores, err := m.Music.Scores()
	if err != nil || len(scores) == 0 {
		log.Fatal("no score")
	}
	voice, _, err := demo.SoloHandles(m.Music, scores[0])
	if err != nil {
		log.Fatal(err)
	}
	content, err := voice.Content()
	if err != nil {
		log.Fatal(err)
	}
	x := int64(4)
	for _, item := range content {
		if item.IsRest {
			x += 6
			continue
		}
		chord, err := m.Music.ChordByRef(item.Ref)
		if err != nil {
			log.Fatal(err)
		}
		notes, err := chord.Notes()
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range notes {
			y := int64(n.Degree()) // staff-degree units
			if _, err := m.Model.NewEntity("NOTEHEAD", model.Attrs{
				"shape": value.Str("filled"), "xpos": value.Int(x), "ypos": value.Int(y),
			}); err != nil {
				log.Fatal(err)
			}
			dir := int64(chord.StemDirection())
			if dir == 0 {
				dir = 1
			}
			if _, err := m.Model.NewEntity("STEM", model.Attrs{
				"xpos": value.Int(x + 1), "ypos": value.Int(y),
				"length": value.Int(5), "direction": value.Int(dir),
			}); err != nil {
				log.Fatal(err)
			}
		}
		x += 6
	}

	canvas := pscript.NewCanvas()
	in := pscript.New(canvas)
	// Staff lines: degrees 0,2,4,6,8 across the page.
	width := float64(x + 4)
	for d := 0; d <= 8; d += 2 {
		if err := in.Run(fmt.Sprintf("newpath 0 %d moveto %g %d lineto stroke", d, width, d)); err != nil {
			log.Fatal(err)
		}
	}
	// Draw every NOTEHEAD and STEM via the §6.2 procedure.
	for _, typ := range []string{"NOTEHEAD", "STEM"} {
		fn, params, err := m.Catalog.GraphDefFor(typ)
		if err != nil {
			log.Fatal(err)
		}
		err = m.Model.Instances(typ, func(ref value.Ref, _ value.Tuple) bool {
			for _, p := range params {
				v, err := m.Model.Attr(ref, p.Attribute)
				if err != nil {
					log.Fatal(err)
				}
				in.Push(float64(v.AsInt()))
				if err := in.Run(p.Setup); err != nil {
					log.Fatal(err)
				}
			}
			if err := in.Run(fn); err != nil {
				log.Fatal(err)
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("typeset %d noteheads and %d stems via the GraphDef catalog (%s):\n\n",
		m.Model.Count("NOTEHEAD"), m.Model.Count("STEM"), canvas)
	bm := canvas.Rasterize(int(width*1.6), 30)
	fmt.Println(bm.ASCII())
}
