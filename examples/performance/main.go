// Performance: from score time to performance time to sound (§7.2 and
// §4.1).  Imports the fugue subject, performs it under a tempo map with
// a final ritardando, extrapolates MIDI events, serializes a Standard
// MIDI File, synthesizes audio, and compares the two §4.1 compaction
// families on the result.
//
//	go run ./examples/performance
package main

import (
	"fmt"
	"log"

	"repro/internal/cmn"
	"repro/internal/darms"
	"repro/internal/demo"
	"repro/internal/mdm"
	"repro/internal/midi"
	"repro/internal/sound"
)

func main() {
	m, err := mdm.Open(mdm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	items, err := darms.Parse(demo.FugueSubjectDARMS)
	if err != nil {
		log.Fatal(err)
	}
	score, err := darms.ToScore(m.Music, items, "Fuge g-moll (subject)")
	if err != nil {
		log.Fatal(err)
	}
	voice, _, err := demo.SoloHandles(m.Music, score)
	if err != nil {
		log.Fatal(err)
	}
	if err := voice.AddDynamic(cmn.Zero, "mf"); err != nil {
		log.Fatal(err)
	}
	if err := voice.AddDynamic(cmn.Beats(6, 1), "p"); err != nil {
		log.Fatal(err)
	}

	// The conductor (§7.2): 96 BPM with a ritardando over the last two
	// beats (96 → 60).
	tm := cmn.NewTempoMap(96)
	tm.AddMark(cmn.TempoMark{Beat: cmn.Beats(6, 1), BPM: 96, Ramp: true})
	tm.AddMark(cmn.TempoMark{Beat: cmn.Beats(8, 1), BPM: 60})

	notes, err := voice.PerformedNotes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("performed notes (score time → performance time):")
	for _, pn := range notes {
		start := tm.Seconds(pn.Start)
		end := tm.Seconds(pn.Start.Add(pn.Duration))
		fmt.Printf("  pitch %3d  vel %3d  beat %-4s → %6.3fs .. %6.3fs\n",
			pn.Pitch, pn.Velocity, pn.Start, start, end)
	}

	seq := midi.FromPerformance(notes, tm, 0)
	smf, err := midi.WriteSMF(seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStandard MIDI File: %d bytes, %d events, %.3f s\n",
		len(smf), len(seq.Notes), float64(seq.DurationUs())/1e6)

	// §4.1: synthesize and compact.
	buf, err := sound.Synthesize(seq, sound.Organ, 48000)
	if err != nil {
		log.Fatal(err)
	}
	raw := int64(len(buf.Samples) * sound.BytesPerSample)
	delta := sound.EncodeDelta(buf)
	mulaw := sound.EncodeMuLaw(buf)
	dec, _ := sound.DecodeMuLaw(mulaw)
	snr, _ := sound.SNR(buf, dec)
	fmt.Printf("\ndigitized sound: %.2f s at 48 kHz/16-bit = %d bytes (RMS %.3f)\n",
		buf.Duration(), raw, buf.RMS())
	fmt.Printf("  redundancy codec (lossless delta): %6d bytes (%.2fx)\n",
		len(delta), sound.CompressionRatio(buf, delta))
	fmt.Printf("  perceptual codec (mu-law 8-bit):   %6d bytes (%.2fx, SNR %.1f dB)\n",
		len(mulaw), sound.CompressionRatio(buf, mulaw), snr)
	fmt.Printf("\npaper's §4.1 arithmetic: 10 minutes at this rate = %d bytes (57.6 MB)\n",
		sound.StorageBytes(600, sound.ProfessionalRate))
}
