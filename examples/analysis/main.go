// Analysis: the music-analysis client of §2.  Imports the BWV 578 fugue
// subject from DARMS, then performs melodic analysis over the database:
// interval histogram, contour, motif search, and QUEL aggregates over
// the score.
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cmn"
	"repro/internal/darms"
	"repro/internal/demo"
	"repro/internal/mdm"
	"repro/internal/pianoroll"
)

func main() {
	m, err := mdm.Open(mdm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	items, err := darms.Parse(demo.FugueSubjectDARMS)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := darms.ToScore(m.Music, items, "Fuge g-moll (subject)"); err != nil {
		log.Fatal(err)
	}
	scores, err := m.Music.Scores()
	if err != nil || len(scores) == 0 {
		log.Fatal("no score imported")
	}
	voice, _, err := demo.SoloHandles(m.Music, scores[0])
	if err != nil {
		log.Fatal(err)
	}
	notes, err := voice.PerformedNotes()
	if err != nil {
		log.Fatal(err)
	}

	// Melodic line and interval sequence.
	fmt.Print("subject: ")
	pitches := make([]int, len(notes))
	for i, n := range notes {
		pitches[i] = n.Pitch
		fmt.Printf("%s ", pianoroll.KeyName(n.Pitch))
	}
	fmt.Println()
	intervals := make([]int, 0, len(pitches)-1)
	for i := 1; i < len(pitches); i++ {
		intervals = append(intervals, pitches[i]-pitches[i-1])
	}
	fmt.Printf("intervals (semitones): %v\n", intervals)

	// Interval histogram — the kind of statistic harmonic-analysis
	// systems compute.
	hist := map[int]int{}
	for _, iv := range intervals {
		hist[iv]++
	}
	fmt.Println("interval histogram:")
	for iv := -12; iv <= 12; iv++ {
		if c := hist[iv]; c > 0 {
			fmt.Printf("  %+3d: %s\n", iv, strings.Repeat("■", c))
		}
	}

	// Contour string (U up, D down, R repeat).
	var contour strings.Builder
	for _, iv := range intervals {
		switch {
		case iv > 0:
			contour.WriteByte('U')
		case iv < 0:
			contour.WriteByte('D')
		default:
			contour.WriteByte('R')
		}
	}
	fmt.Printf("contour: %s\n", contour.String())

	// Motif search: where does the descending-second pair [-1,-2] or
	// [-2,-1] (step descent) occur?
	fmt.Print("stepwise descents at note indexes: ")
	for i := 0; i+1 < len(intervals); i++ {
		a, b := intervals[i], intervals[i+1]
		if a < 0 && a >= -2 && b < 0 && b >= -2 {
			fmt.Printf("%d ", i)
		}
	}
	fmt.Println()

	// QUEL aggregates over the stored score.
	s := m.NewSession()
	res, err := s.Query(`
range of n is NOTE
retrieve (notes = count(n.all), lowest = min(n.midi_pitch), highest = max(n.midi_pitch),
          mean = avg(n.midi_pitch))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscore statistics (via QUEL):")
	fmt.Println(res)

	// Ambitus check through the ordering operators: the first and last
	// chords of the voice.
	content, err := voice.Content()
	if err != nil {
		log.Fatal(err)
	}
	total := cmn.Zero
	for _, it := range content {
		total = total.Add(it.Duration)
	}
	fmt.Printf("voice has %d content items (chords and rests) spanning %s beats\n",
		len(content), total)

	// A two-voice exposition: subject then answer at the dominant.  The
	// analysis package (the §2 analysis client) estimates its key and
	// finds the subject's head motif in both voices.
	score2, voices, err := demo.LoadExposition(m.Music)
	if err != nil {
		log.Fatal(err)
	}
	key, err := analysis.EstimateKey(voices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexposition %q: estimated key %s (r=%.2f)\n", score2.Title(), key, key.Score)
	for vi, v := range voices {
		hits, err := analysis.FindMotif(v, []int{7, -4})
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hits {
			fmt.Printf("  subject head in voice %d at beat %s (starting on %s)\n",
				vi+1, h.Onset, pianoroll.KeyName(h.Transposed))
		}
	}
	movements, _ := score2.Movements()
	report, err := analysis.ProgressionReport(movements[0], voices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first sonorities:")
	for i, line := range report {
		if i >= 4 {
			break
		}
		fmt.Println(" ", line)
	}
}
