GO ?= go

.PHONY: all build vet test race torture bench bench-smoke bench-quel bench-commit ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short torture run: the crash-recovery sweep at reduced depth, as a
# quick fault-coverage gate for every PR.
torture:
	$(GO) test -short -count=1 -run 'Torture|Fault|Poison' ./internal/storage/ ./internal/wal/
	$(GO) test -short -count=1 ./internal/fault/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Observability baseline: run the demo workload, emit BENCH_obs.json,
# and fail if the snapshot document is malformed or missing key metrics.
bench-smoke:
	$(GO) run ./cmd/mdmbench -obs -out BENCH_obs.json

# Query-planner benchmark: planner vs. retained naive executor over
# scan-, join-, and ordering-heavy workloads; emits BENCH_quel.json and
# fails if the join-heavy speedup drops below 5x.
bench-quel:
	$(GO) run ./cmd/mdmbench -quel -out BENCH_quel.json

# Group-commit benchmark: concurrent-writer commit throughput, per-txn
# fsync vs. the group-commit pipeline; emits BENCH_commit.json and fails
# if the 16-writer speedup drops below 3x.
bench-commit:
	$(GO) run ./cmd/mdmbench -commit -out BENCH_commit.json

ci: vet build race torture bench-smoke bench-quel bench-commit
