GO ?= go
BENCHDIR ?= .bench
# Pinned staticcheck release (supports the module's go 1.22 directive).
STATICCHECK_VERSION ?= 2024.1.1
FUZZTIME ?= 30s

.PHONY: all build fmt-check vet staticcheck test race torture torture-repl fuzz-smoke bench bench-smoke bench-quel bench-par bench-commit bench-read bench-repl bench-net bench-ckpt bench-ingest bench-check ci

all: ci

build:
	$(GO) build ./...

# Fail if any file needs gofmt; print the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet, at a pinned tool version so CI runs are
# reproducible.  Needs network access the first time (go run fetches the
# pinned module); CI's race job runs this on the pinned toolchain.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short torture run: the crash-recovery sweep at reduced depth, as a
# quick fault-coverage gate for every PR.
torture:
	$(GO) test -short -count=1 -run 'Torture|Fault|Poison' ./internal/storage/ ./internal/wal/
	$(GO) test -short -count=1 ./internal/fault/...

# Replication torture: the full crash/ship-failure/promote sweep (leader
# crash mid-batch, replica crash mid-apply, promote under load), at full
# depth -- the sweep converges in seconds.
torture-repl:
	$(GO) test -count=1 -run 'ReplicationTorture' ./internal/repl/

# Short coverage-guided fuzz runs over every decoder that takes bytes
# off the wire or out of a file: the network frame codec, the DARMS
# parser, the SMF reader, and the ingest stream scanner.  New crashers
# land in the package's testdata/fuzz/ corpus; CI uploads them.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecodeMessage$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/wire/
	$(GO) test -fuzz='^FuzzDARMS$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/darms/
	$(GO) test -fuzz='^FuzzSMF$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/midi/
	$(GO) test -fuzz='^FuzzStream$$' -fuzztime=$(FUZZTIME) -run '^$$' ./internal/ingest/

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Observability baseline: run the demo workload, emit BENCH_obs.json,
# and fail if the snapshot document is malformed or missing key metrics.
bench-smoke:
	$(GO) run ./cmd/mdmbench -obs -out BENCH_obs.json

# Query-planner benchmark: planner vs. retained naive executor over
# scan-, join-, and ordering-heavy workloads; emits BENCH_quel.json and
# fails if the join-heavy speedup drops below 5x.
bench-quel:
	$(GO) run ./cmd/mdmbench -quel -out BENCH_quel.json

# Parallel-executor benchmark: the morsel-driven worker pool over the
# 100k-note / 1k-score corpus across a 1/2/4/8 worker sweep; emits
# BENCH_par.json (with the host CPU count) and fails if the 8-worker
# speedup drops below 2x on a machine with at least 4 CPUs.
bench-par:
	$(GO) run ./cmd/mdmbench -par -out BENCH_par.json

# Group-commit benchmark: concurrent-writer commit throughput, per-txn
# fsync vs. the group-commit pipeline; emits BENCH_commit.json and fails
# if the 16-writer speedup drops below 3x.
bench-commit:
	$(GO) run ./cmd/mdmbench -commit -out BENCH_commit.json

# Read-scaling benchmark: concurrent readers against a fixed writer
# pool, shared-lock reads vs. MVCC snapshot reads; emits BENCH_read.json
# and fails if snapshots drop below 5x locking throughput at 4 readers.
bench-read:
	$(GO) run ./cmd/mdmbench -read -out BENCH_read.json

# Read-replica benchmark: aggregate read throughput of a WAL-shipping
# cluster across a 1/2/4 replica sweep; emits BENCH_repl.json and fails
# if the 4-replica aggregate drops below 2x single-node throughput.
bench-repl:
	$(GO) run ./cmd/mdmbench -repl -out BENCH_repl.json

# Network benchmark: the TCP serving stack (cmd/mdmd's server) under a
# concurrent-client sweep of prepared appends and indexed probes over
# loopback, plus an admission-control overload experiment; emits
# BENCH_net.json and fails if the 16-client write speedup (group commit
# vs. per-txn fsync, both served) drops below 2x, if overload sheds
# nothing, or if the burst collapses the server.
bench-net:
	$(GO) run ./cmd/mdmbench -net -out BENCH_net.json

# Checkpoint benchmark: a many-relation store under write load on a
# small dirty subset, legacy quiesce-the-world full snapshots vs.
# segmented fuzzy incremental checkpoints; emits BENCH_ckpt.json and
# fails if the fuzzy path stalls commits less than 3x better (p99 of
# commits overlapping a checkpoint) or writes fewer than 5x fewer bytes
# per checkpoint.
bench-ckpt:
	$(GO) run ./cmd/mdmbench -ckpt -out BENCH_ckpt.json

# Bulk-ingest benchmark: naive per-statement loading vs. the streaming
# loader (batched transactions, deferred index build, WAL-bypass
# checkpoint), plus catalogue-scale incipit search through the gram
# index vs. full scan; emits BENCH_ingest.json and fails if batched
# ingest drops below 3x naive or the indexed query below 10x the scan.
bench-ingest:
	$(GO) run ./cmd/mdmbench -ingest -out BENCH_ingest.json

# Regression gate: rerun every bench into $(BENCHDIR) and diff the fresh
# documents against the baselines committed in git; fails on a >30%
# floor-point regression.  To refresh the baselines, run the bench-*
# targets (which write into the repo root) and commit the result.
bench-check:
	mkdir -p $(BENCHDIR)
	$(GO) run ./cmd/mdmbench -obs -out $(BENCHDIR)/BENCH_obs.json
	$(GO) run ./cmd/mdmbench -quel -out $(BENCHDIR)/BENCH_quel.json
	$(GO) run ./cmd/mdmbench -par -out $(BENCHDIR)/BENCH_par.json
	$(GO) run ./cmd/mdmbench -commit -out $(BENCHDIR)/BENCH_commit.json
	$(GO) run ./cmd/mdmbench -read -out $(BENCHDIR)/BENCH_read.json
	$(GO) run ./cmd/mdmbench -repl -out $(BENCHDIR)/BENCH_repl.json
	$(GO) run ./cmd/mdmbench -net -out $(BENCHDIR)/BENCH_net.json
	$(GO) run ./cmd/mdmbench -ckpt -out $(BENCHDIR)/BENCH_ckpt.json
	$(GO) run ./cmd/mdmbench -ingest -out $(BENCHDIR)/BENCH_ingest.json
	$(GO) run ./cmd/benchdiff -fresh $(BENCHDIR)

ci: fmt-check vet build race torture torture-repl bench-smoke bench-quel bench-par bench-commit bench-read bench-repl bench-net bench-ckpt bench-ingest
