// Package wal implements the write-ahead log of the music data manager.
//
// The paper (§2) requires the MDM to provide "typical database
// operations, some standard, such as concurrency control and recovery".
// This package is the recovery half: an append-only redo log with CRC32C
// framing and torn-tail tolerance.  The storage engine keeps relations in
// memory and durability is log + snapshot: every mutation is logged before
// it is applied, checkpoints write a full snapshot and truncate the log,
// and recovery replays the operations of committed transactions in log
// order (a redo-only, two-pass scheme: pass one collects commit records,
// pass two reapplies).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/value"
)

// RecordType identifies a log record.
type RecordType uint8

// The log record types.
const (
	RecBegin RecordType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecDelete
	RecUpdate
	RecCheckpoint
	// Schema records: relation and index creation.  They carry no
	// transaction and are replayed unconditionally, in log order, so
	// that data records for relations created after the last checkpoint
	// can be reapplied.  The definition is encoded in the New tuple.
	RecCreateRelation
	RecCreateIndex
	RecDropRelation
	RecDropIndex
)

// String returns the record type name.
func (rt RecordType) String() string {
	switch rt {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecUpdate:
		return "UPDATE"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecCreateRelation:
		return "CREATE_RELATION"
	case RecCreateIndex:
		return "CREATE_INDEX"
	case RecDropRelation:
		return "DROP_RELATION"
	case RecDropIndex:
		return "DROP_INDEX"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(rt))
}

// Record is one log record.  Which fields are meaningful depends on Type:
// data-change records carry the relation name, row id, and before/after
// tuple images.
type Record struct {
	Type     RecordType
	TxID     uint64
	Relation string
	RowID    uint64
	Old      value.Tuple // DELETE, UPDATE
	New      value.Tuple // INSERT, UPDATE
}

// encode appends the record payload (excluding framing) to dst.
func (r *Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.AppendUvarint(dst, r.TxID)
	dst = binary.AppendUvarint(dst, uint64(len(r.Relation)))
	dst = append(dst, r.Relation...)
	dst = binary.AppendUvarint(dst, r.RowID)
	dst = appendMaybeTuple(dst, r.Old)
	dst = appendMaybeTuple(dst, r.New)
	return dst
}

func appendMaybeTuple(dst []byte, t value.Tuple) []byte {
	if t == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return value.AppendTuple(dst, t)
}

// decodeRecord parses a record payload.
func decodeRecord(buf []byte) (*Record, error) {
	if len(buf) < 1 {
		return nil, errors.New("wal: empty record")
	}
	r := &Record{Type: RecordType(buf[0])}
	pos := 1
	var n int
	u, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, errors.New("wal: bad txid")
	}
	r.TxID = u
	pos += n
	ln, n := binary.Uvarint(buf[pos:])
	if n <= 0 || uint64(len(buf)-pos-n) < ln {
		return nil, errors.New("wal: bad relation name")
	}
	pos += n
	r.Relation = string(buf[pos : pos+int(ln)])
	pos += int(ln)
	u, n = binary.Uvarint(buf[pos:])
	if n <= 0 {
		return nil, errors.New("wal: bad rowid")
	}
	r.RowID = u
	pos += n
	var err error
	r.Old, pos, err = decodeMaybeTuple(buf, pos)
	if err != nil {
		return nil, err
	}
	r.New, pos, err = decodeMaybeTuple(buf, pos)
	if err != nil {
		return nil, err
	}
	_ = pos
	return r, nil
}

func decodeMaybeTuple(buf []byte, pos int) (value.Tuple, int, error) {
	if pos >= len(buf) {
		return nil, 0, errors.New("wal: truncated tuple flag")
	}
	flag := buf[pos]
	pos++
	if flag == 0 {
		return nil, pos, nil
	}
	t, n, err := value.DecodeTuple(buf[pos:])
	if err != nil {
		return nil, 0, err
	}
	return t, pos + n, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornTail reports that a log file ends mid-record: the bytes after
// the last complete, checksum-valid record are consistent with a write
// that a crash interrupted.  A torn tail is legal — OpenFS truncates it
// and appends over it, and ReplayFS replays the valid prefix — which is
// exactly why it must be distinguishable from ErrCorrupt: replication
// promotion truncates torn tails and proceeds, but refuses to serve a
// log with interior damage.
var ErrTornTail = errors.New("wal: torn tail (log ends mid-record)")

// ErrCorrupt reports damage that a crashed write cannot explain: a
// complete record frame whose checksum does not match (with further log
// content behind it), or a checksum-valid record that does not decode.
// Consumers must refuse the log rather than silently truncate — interior
// records past the damage may hold acknowledged commits.
var ErrCorrupt = errors.New("wal: corrupt record")

// AppendRecord appends r's wire encoding — the WAL's record payload
// encoding, without length/CRC framing — to dst.  The replication
// transport uses it to frame records for shipping.
func AppendRecord(dst []byte, r *Record) []byte { return r.encode(dst) }

// DecodeRecord parses a record payload produced by AppendRecord (or
// framed into the log by Append).
func DecodeRecord(buf []byte) (*Record, error) { return decodeRecord(buf) }

// Log is an append-only write-ahead log backed by a single file.
//
// The log is fail-stop: after any I/O error (a failed append flush or —
// critically — a failed fsync), it poisons itself and every subsequent
// Append/Sync/Reset returns the sticky first error.  A failed fsync
// leaves the kernel page state unknowable (the error may have been
// reported once and the dirty pages dropped), so continuing to append
// past it would build durable-looking records on an undurable prefix;
// the only safe recovery is to reopen and rescan (fsyncgate semantics).
type Log struct {
	fs   fault.FS
	path string
	f    fault.File
	w    *bufio.Writer
	off  atomic.Int64 // current end offset (next LSN); atomic so Size is readable off the flush path
	buf  []byte
	err  error // sticky poison; nil while healthy

	m *logMetrics // nil when unobserved
}

// logMetrics holds the resolved obs handles for a log.
type logMetrics struct {
	records *obs.Counter   // wal.append.records
	bytes   *obs.Counter   // wal.append.bytes (framing included)
	fsync   *obs.Histogram // wal.fsync.ns
	trace   *obs.Trace
}

// SetObserver wires the log's metrics into reg: the wal.append.records
// and wal.append.bytes counters and the wal.fsync.ns latency histogram.
// Call once after Open, before concurrent use; nil detaches.
func (l *Log) SetObserver(reg *obs.Registry) {
	if reg == nil {
		l.m = nil
		return
	}
	l.m = &logMetrics{
		records: reg.Counter("wal.append.records"),
		bytes:   reg.Counter("wal.append.bytes"),
		fsync:   reg.Histogram("wal.fsync.ns"),
		trace:   reg.Trace(),
	}
}

// Open opens (creating if necessary) the log at path on the real
// filesystem.  The returned log is positioned at the end of the existing
// valid records; a torn tail left by a crash is truncated away, but a
// log with interior corruption (damage a crash cannot produce) is
// refused with ErrCorrupt rather than silently truncated.
func Open(path string) (*Log, error) { return OpenFS(fault.Disk{}, path) }

// OpenFS is Open over an explicit filesystem (fault injection point).
func OpenFS(fs fault.FS, path string) (*Log, error) {
	end, err := validPrefix(fs, path)
	if err != nil && !errors.Is(err, ErrTornTail) {
		return nil, err
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{fs: fs, path: path, f: f, w: bufio.NewWriterSize(f, 64<<10)}
	l.off.Store(end)
	return l, nil
}

// poison records the first I/O failure and returns the sticky error.
func (l *Log) poison(op string, err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("wal: %s: %w", op, err)
	}
	return l.err
}

// Err returns the poisoning error, or nil while the log is healthy.
func (l *Log) Err() error { return l.err }

// validPrefix scans the file and returns the byte offset of the end of
// the last complete, checksum-valid record, plus a classification of
// whatever follows it: nil for a clean end, ErrTornTail for bytes a
// crashed write could have left, ErrCorrupt for damage a crash cannot
// explain (see scanFrames).
func validPrefix(fs fault.FS, path string) (int64, error) {
	f, err := fs.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	// Decode each record even though the bytes are not needed: a
	// checksummed-but-undecodable record must classify as corruption
	// here too, or Open would accept a log that Replay then refuses.
	return scanFrames(f, func(int64, *Record) error { return nil })
}

// scanFrames walks the record frames of an open log file, invoking fn
// (when non-nil) for each checksum-valid record, and classifies how the
// walk ended:
//
//   - nil: the file ends exactly at a frame boundary.
//   - ErrTornTail: the file ends mid-frame — a short header, a length
//     field whose payload runs past EOF, or a CRC-mismatched frame that
//     is the final thing in the file.  Appends tear as prefixes, so all
//     of these are what a crashed write leaves behind.
//   - ErrCorrupt: an invalid frame with log content behind it (a crash
//     cannot damage the middle of a file), or a checksum-valid record
//     that does not decode (a tear cannot survive the CRC).
//
// The returned offset is the end of the valid prefix in every case.  A
// callback or I/O error is returned as-is.
func scanFrames(f fault.File, fn func(lsn int64, r *Record) error) (int64, error) {
	size := int64(-1) // unknown until needed
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	br := bufio.NewReaderSize(f, 64<<10)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return off, nil
			}
			return off, fmt.Errorf("%w: short header at offset %d", ErrTornTail, off)
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if ln > 1<<28 {
			// No legal record is this large.  If the claimed payload
			// would run past EOF the length field itself is torn; if the
			// bytes are actually there, this is interior damage.
			if size >= 0 && off+8+int64(ln) <= size {
				return off, fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorrupt, ln, off)
			}
			return off, fmt.Errorf("%w: torn length field at offset %d", ErrTornTail, off)
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, fmt.Errorf("%w: short payload at offset %d", ErrTornTail, off)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			// A complete frame with a bad checksum: a torn final write if
			// it is the last thing in the file, corruption otherwise.
			if _, err := br.ReadByte(); err == io.EOF {
				return off, fmt.Errorf("%w: checksum mismatch in final record at offset %d", ErrTornTail, off)
			}
			return off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		if fn != nil {
			rec, err := decodeRecord(payload)
			if err != nil {
				return off, fmt.Errorf("%w: checksummed record does not decode at offset %d: %v", ErrCorrupt, off, err)
			}
			if err := fn(off, rec); err != nil {
				return off, err
			}
		}
		off += 8 + int64(ln)
	}
}

// Append writes a record to the log buffer and returns its LSN (the byte
// offset at which it begins).  The record is durable only after Sync.
// A poisoned log refuses to append.
func (l *Log) Append(r *Record) (int64, error) {
	if l.err != nil {
		return 0, l.err
	}
	l.buf = l.buf[:0]
	l.buf = r.encode(l.buf)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(l.buf)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(l.buf, castagnoli))
	lsn := l.off.Load()
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, l.poison("append", err)
	}
	if _, err := l.w.Write(l.buf); err != nil {
		return 0, l.poison("append", err)
	}
	l.off.Add(8 + int64(len(l.buf)))
	if l.m != nil {
		l.m.records.Inc()
		l.m.bytes.Add(uint64(8 + len(l.buf)))
	}
	return lsn, nil
}

// Sync flushes buffered records and fsyncs the file, making all appended
// records durable.  A flush or fsync failure poisons the log: the write
// may or may not have reached stable storage, and no further appends are
// accepted over that ambiguity.
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		return l.poison("flush", err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return l.poison("fsync", err)
	}
	if l.m != nil {
		l.m.fsync.ObserveSince(start)
		if l.m.trace.Enabled() {
			l.m.trace.Emit("wal.fsync", l.path, start, time.Since(start))
		}
	}
	return nil
}

// Size returns the current log size in bytes (including buffered
// records).  Unlike the other Log methods it is safe to call from any
// goroutine, even while a group-commit leader is appending.
func (l *Log) Size() int64 { return l.off.Load() }

// Reset truncates the log to empty.  Called after a checkpoint snapshot
// has been made durable.  Any failure poisons the log (the on-disk state
// is then unknown).
func (l *Log) Reset() error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		return l.poison("flush", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return l.poison("reset", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return l.poison("reset", err)
	}
	l.w.Reset(l.f)
	l.off.Store(0)
	if err := l.f.Sync(); err != nil {
		return l.poison("fsync", err)
	}
	return nil
}

// Close syncs and closes the log.  A poisoned log closes the file
// without attempting the sync and reports the poisoning error.
func (l *Log) Close() error {
	if l.err != nil {
		l.f.Close()
		return l.err
	}
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Scan reads all valid records from the log file at path on the real
// filesystem, invoking fn for each in order.  After delivering the valid
// prefix it reports how the log ends: nil at a clean frame boundary,
// ErrTornTail for a crash-consistent partial final write, ErrCorrupt for
// interior damage.  Callers that only want the prefix may ignore
// ErrTornTail (errors.Is); ErrCorrupt should stop them cold.
func Scan(path string, fn func(lsn int64, r *Record) error) error {
	return ScanFS(fault.Disk{}, path, fn)
}

// ScanFS is Scan over an explicit filesystem.
func ScanFS(fs fault.FS, path string, fn func(lsn int64, r *Record) error) error {
	f, err := fs.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = scanFrames(f, fn)
	return err
}

// Replay performs redo-only recovery: it scans the log twice, first
// collecting the set of committed transactions, then invoking apply for
// each data-change record belonging to a committed transaction, in log
// order.  Records of unfinished or aborted transactions are skipped.
// A torn tail is normal after a crash and is replayed up to the tear;
// interior corruption propagates as ErrCorrupt and must refuse recovery.
func Replay(path string, apply func(r *Record) error) error {
	return ReplayFS(fault.Disk{}, path, apply)
}

// ReplayFS is Replay over an explicit filesystem.
func ReplayFS(fs fault.FS, path string, apply func(r *Record) error) error {
	committed := make(map[uint64]bool)
	err := ScanFS(fs, path, func(_ int64, r *Record) error {
		if r.Type == RecCommit {
			committed[r.TxID] = true
		}
		return nil
	})
	if err != nil && !errors.Is(err, ErrTornTail) {
		return err
	}
	err = ScanFS(fs, path, func(_ int64, r *Record) error {
		switch r.Type {
		case RecInsert, RecDelete, RecUpdate:
			if committed[r.TxID] {
				return apply(r)
			}
		case RecCreateRelation, RecCreateIndex, RecDropRelation, RecDropIndex:
			return apply(r)
		}
		return nil
	})
	if errors.Is(err, ErrTornTail) {
		return nil
	}
	return err
}
