package wal

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupDrainExclusiveRace hammers a GroupCommitter with concurrent
// committers while the main goroutine loops Drain and Exclusive —
// the quiesce pattern the replication shipper's attach path relies on.
// Under -race this guards the baton handoff and the SetOnSync contract:
// the hook may be swapped inside Exclusive while commits are in flight,
// and every record that a successful sync made durable must be delivered
// to the hook exactly once, in append order.
func TestGroupDrainExclusiveRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stress.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l, GroupOptions{Group: true})

	var shipped atomic.Uint64
	hook := func(recs []*Record) { shipped.Add(uint64(len(recs))) }
	g.SetOnSync(hook)

	const writers = 8
	const txnsPerWriter = 60
	var appended atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				b := &Batch{
					Records: []*Record{
						{Type: RecBegin, TxID: uint64(w*1000 + i)},
						{Type: RecCommit, TxID: uint64(w*1000 + i)},
					},
					Sync: i%2 == 0, // mix sync and buffered commits
				}
				if err := g.Commit(context.Background(), b); err != nil {
					t.Errorf("writer %d commit %d: %v", w, i, err)
					return
				}
				if b.appended {
					appended.Add(uint64(len(b.Records)))
				}
			}
		}(w)
	}

	// Maintenance loop: Drain and Exclusive racing the committers.  The
	// Exclusive body re-installs the hook (the shipper attach pattern)
	// and must observe a pipeline with no in-flight appends.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if err := g.Drain(); err != nil {
				t.Errorf("drain %d: %v", i, err)
				return
			}
			err := g.Exclusive(func() error {
				g.SetOnSync(hook)
				return nil
			})
			if err != nil {
				t.Errorf("exclusive %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()
	<-done
	// A final drain syncs any buffered tail so the conservation check is
	// exact: every appended record was handed to the hook exactly once.
	if err := g.Drain(); err != nil {
		t.Fatal(err)
	}
	if shipped.Load() != appended.Load() {
		t.Fatalf("hook delivered %d records, appended %d", shipped.Load(), appended.Load())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
