package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/value"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Type: RecBegin, TxID: 1},
		{Type: RecInsert, TxID: 1, Relation: "NOTE", RowID: 7, New: value.Tuple{value.Int(60), value.Str("c4")}},
		{Type: RecUpdate, TxID: 1, Relation: "NOTE", RowID: 7,
			Old: value.Tuple{value.Int(60)}, New: value.Tuple{value.Int(62)}},
		{Type: RecDelete, TxID: 1, Relation: "NOTE", RowID: 7, Old: value.Tuple{value.Int(62)}},
		{Type: RecCommit, TxID: 1},
	}
	var lsns []int64
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	err = Scan(path, func(lsn int64, r *Record) error {
		if lsn != lsns[len(got)] {
			t.Errorf("record %d: lsn %d want %d", len(got), lsn, lsns[len(got)])
		}
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Type != w.Type || r.TxID != w.TxID || r.Relation != w.Relation || r.RowID != w.RowID {
			t.Errorf("record %d mismatch: %+v vs %+v", i, r, w)
		}
		if (r.New == nil) != (w.New == nil) || (r.Old == nil) != (w.Old == nil) {
			t.Errorf("record %d tuple presence mismatch", i)
		}
		if r.New != nil && !r.New.Equal(w.New) {
			t.Errorf("record %d new tuple mismatch", i)
		}
		if r.Old != nil && !r.Old.Equal(w.Old) {
			t.Errorf("record %d old tuple mismatch", i)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(&Record{Type: RecBegin, TxID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	count := 0
	if err := Scan(path, func(_ int64, r *Record) error { count++; return nil }); !errors.Is(err, ErrTornTail) {
		t.Fatalf("scan over torn tail: want ErrTornTail, got %v", err)
	}
	if count != 10 {
		t.Fatalf("scan after torn tail: %d records, want 10", count)
	}
	// Replay treats a torn tail as a normal crash artifact.
	if err := Replay(path, func(*Record) error { return nil }); err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	// Reopen truncates the tail and can append again.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(&Record{Type: RecCommit, TxID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	count = 0
	if err := Scan(path, func(_ int64, r *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 11 {
		t.Fatalf("after reopen: %d records, want 11", count)
	}
}

func TestCorruptMiddleStopsScan(t *testing.T) {
	path := tempLog(t)
	l, _ := Open(path)
	lsn2 := int64(0)
	for i := 0; i < 5; i++ {
		lsn, _ := l.Append(&Record{Type: RecBegin, TxID: uint64(i)})
		if i == 2 {
			lsn2 = lsn
		}
	}
	l.Close()
	// Flip a byte inside record 2's payload.
	data, _ := os.ReadFile(path)
	data[lsn2+9] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	count := 0
	err := Scan(path, func(_ int64, r *Record) error { count++; return nil })
	if count != 2 {
		t.Fatalf("scan past corruption: %d records, want 2", count)
	}
	// Interior damage (valid frames continue past the bad one) is not a
	// crash artifact: scanning reports ErrCorrupt, replay refuses, and
	// reopening refuses rather than silently truncating three records.
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan over interior corruption: want ErrCorrupt, got %v", err)
	}
	if err := Replay(path, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over interior corruption: want ErrCorrupt, got %v", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over interior corruption: want ErrCorrupt, got %v", err)
	}
}

// TestTornFinalChecksumIsTail pins the boundary case of the taxonomy: a
// complete final frame whose checksum fails is indistinguishable from a
// torn last write, so it classifies as ErrTornTail and reopening
// truncates it away.
func TestTornFinalChecksumIsTail(t *testing.T) {
	path := tempLog(t)
	l, _ := Open(path)
	for i := 0; i < 4; i++ {
		l.Append(&Record{Type: RecBegin, TxID: uint64(i)})
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // damage the last record's payload
	os.WriteFile(path, data, 0o644)
	count := 0
	if err := Scan(path, func(int64, *Record) error { count++; return nil }); !errors.Is(err, ErrTornTail) {
		t.Fatalf("want ErrTornTail, got %v", err)
	}
	if count != 3 {
		t.Fatalf("valid prefix: %d records, want 3", count)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatalf("open should truncate a torn final record: %v", err)
	}
	if _, err := l2.Append(&Record{Type: RecCommit, TxID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	count = 0
	if err := Scan(path, func(int64, *Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("after truncate+append: %d records, want 4", count)
	}
}

func TestReplayOnlyCommitted(t *testing.T) {
	path := tempLog(t)
	l, _ := Open(path)
	// Tx 1 commits, tx 2 aborts, tx 3 is left unfinished.
	l.Append(&Record{Type: RecBegin, TxID: 1})
	l.Append(&Record{Type: RecInsert, TxID: 1, Relation: "A", RowID: 1, New: value.Tuple{value.Int(1)}})
	l.Append(&Record{Type: RecBegin, TxID: 2})
	l.Append(&Record{Type: RecInsert, TxID: 2, Relation: "A", RowID: 2, New: value.Tuple{value.Int(2)}})
	l.Append(&Record{Type: RecCommit, TxID: 1})
	l.Append(&Record{Type: RecAbort, TxID: 2})
	l.Append(&Record{Type: RecBegin, TxID: 3})
	l.Append(&Record{Type: RecInsert, TxID: 3, Relation: "A", RowID: 3, New: value.Tuple{value.Int(3)}})
	l.Close()

	var applied []uint64
	err := Replay(path, func(r *Record) error {
		applied = append(applied, r.RowID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0] != 1 {
		t.Fatalf("replay applied %v, want [1]", applied)
	}
}

func TestReplayCommitAfterDataInOrder(t *testing.T) {
	path := tempLog(t)
	l, _ := Open(path)
	// Interleaved transactions: replay must preserve log order among
	// committed records.
	l.Append(&Record{Type: RecInsert, TxID: 1, Relation: "A", RowID: 10})
	l.Append(&Record{Type: RecInsert, TxID: 2, Relation: "A", RowID: 20})
	l.Append(&Record{Type: RecInsert, TxID: 1, Relation: "A", RowID: 11})
	l.Append(&Record{Type: RecCommit, TxID: 2})
	l.Append(&Record{Type: RecCommit, TxID: 1})
	l.Close()
	var order []uint64
	Replay(path, func(r *Record) error { order = append(order, r.RowID); return nil })
	want := []uint64{10, 20, 11}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("replay order %v want %v", order, want)
	}
}

func TestReset(t *testing.T) {
	path := tempLog(t)
	l, _ := Open(path)
	l.Append(&Record{Type: RecBegin, TxID: 1})
	if l.Size() == 0 {
		t.Fatal("size should grow")
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatal("size after reset")
	}
	l.Append(&Record{Type: RecCheckpoint})
	l.Close()
	count := 0
	Scan(path, func(_ int64, r *Record) error {
		if r.Type != RecCheckpoint {
			t.Errorf("unexpected record %v", r.Type)
		}
		count++
		return nil
	})
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestScanMissingFile(t *testing.T) {
	if err := Scan(filepath.Join(t.TempDir(), "nope.wal"), func(int64, *Record) error {
		t.Fatal("callback on missing file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTypeString(t *testing.T) {
	names := map[RecordType]string{
		RecBegin: "BEGIN", RecCommit: "COMMIT", RecAbort: "ABORT",
		RecInsert: "INSERT", RecDelete: "DELETE", RecUpdate: "UPDATE",
		RecCheckpoint: "CHECKPOINT", RecordType(200): "RecordType(200)",
	}
	for rt, want := range names {
		if got := rt.String(); got != want {
			t.Errorf("%d.String() = %q want %q", rt, got, want)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := &Record{Type: RecInsert, TxID: 1, Relation: "NOTE", RowID: 1,
		New: value.Tuple{value.Int(60), value.Str("c4"), value.Float(0.5)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := &Record{Type: RecCommit, TxID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(rec)
		if err := l.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	path := tempLog(t)
	l, _ := Open(path)
	for i := 0; i < 3; i++ {
		l.Append(&Record{Type: RecBegin, TxID: uint64(i)})
	}
	l.Close()
	sentinel := fmt.Errorf("stop here")
	err := Scan(path, func(_ int64, r *Record) error {
		if r.TxID == 1 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("callback error: %v", err)
	}
	// Replay propagates apply errors too.
	l2, _ := Open(path)
	l2.Append(&Record{Type: RecInsert, TxID: 0, Relation: "R", RowID: 1})
	l2.Append(&Record{Type: RecCommit, TxID: 0})
	l2.Close()
	err = Replay(path, func(r *Record) error { return sentinel })
	if err != sentinel {
		t.Fatalf("replay error: %v", err)
	}
}

func TestSchemaRecordTypes(t *testing.T) {
	for rt, want := range map[RecordType]string{
		RecCreateRelation: "CREATE_RELATION",
		RecCreateIndex:    "CREATE_INDEX",
		RecDropRelation:   "DROP_RELATION",
		RecDropIndex:      "DROP_INDEX",
	} {
		if rt.String() != want {
			t.Errorf("%d: %q", rt, rt.String())
		}
	}
	// Schema records replay without a commit.
	path := tempLog(t)
	l, _ := Open(path)
	l.Append(&Record{Type: RecCreateRelation, Relation: "R",
		New: value.Tuple{value.Str("v"), value.Int(1), value.Str("")}})
	l.Append(&Record{Type: RecDropIndex, Relation: "R",
		New: value.Tuple{value.Str("ix_r_x")}})
	l.Append(&Record{Type: RecDropRelation, Relation: "R"})
	l.Close()
	var seen []RecordType
	Replay(path, func(r *Record) error { seen = append(seen, r.Type); return nil })
	if len(seen) != 3 || seen[0] != RecCreateRelation || seen[1] != RecDropIndex || seen[2] != RecDropRelation {
		t.Fatalf("schema replay: %v", seen)
	}
}

// TestPoisonAfterSyncFailure pins the fsyncgate rule: after a failed
// fsync the log must refuse further appends and syncs with the sticky
// first error, never silently continuing over unknown kernel page state.
func TestPoisonAfterSyncFailure(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	fs := fault.NewInjector(fault.Disk{}, reg)
	path := filepath.Join(dir, "mdm.wal")
	l, err := OpenFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecBegin, TxID: 1}); err != nil {
		t.Fatal(err)
	}
	reg.Arm(fault.Point(fault.OpSync, path), 1, fault.Outcome{})
	serr := l.Sync()
	if !errors.Is(serr, fault.ErrInjected) {
		t.Fatalf("sync: want injected error, got %v", serr)
	}
	if l.Err() == nil {
		t.Fatal("log not poisoned after fsync failure")
	}
	// The fault has disarmed; a healthy log would sync fine now.  A
	// poisoned one must keep failing with the same sticky error.
	if _, err := l.Append(&Record{Type: RecCommit, TxID: 1}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append after poison: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sync after poison: %v", err)
	}
	if err := l.Reset(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("reset after poison: %v", err)
	}
	if err := l.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("close after poison: %v", err)
	}
	// Reopening rescans the durable prefix and starts healthy.
	l2, err := OpenFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Err() != nil {
		t.Fatal("fresh log should be healthy")
	}
}

// TestPoisonAfterAppendFlushFailure poisons via the buffered-write path:
// a record larger than the buffer forces a flush inside Append.
func TestPoisonAfterAppendFlushFailure(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	fs := fault.NewInjector(fault.Disk{}, reg)
	path := filepath.Join(dir, "mdm.wal")
	l, err := OpenFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reg.Arm(fault.Point(fault.OpWrite, path), 1, fault.Outcome{Partial: 0.5})
	big := &Record{Type: RecInsert, TxID: 1, Relation: "R", New: value.Tuple{value.Str(strings.Repeat("x", 128<<10))}}
	if _, err := l.Append(big); err == nil {
		t.Fatal("append over failing write should error")
	}
	if l.Err() == nil {
		t.Fatal("log not poisoned after torn append")
	}
}
