package wal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Group commit (DeWitt et al., ARIES-style log forcing): committing
// transactions enqueue their records plus a durability request onto a
// commit queue instead of appending and fsyncing individually.  The
// first committer to find no flush in progress becomes the leader: it
// drains the queue, appends every waiter's records with one buffered
// write stream, pays ONE fsync for the whole round, and wakes all
// waiters with the shared outcome.  Later arrivals pile onto the queue
// while the leader is inside the fsync, so under concurrency the cost
// of a synchronous commit amortizes to fsync/N.
//
// Failure semantics are the log's, shared batch-wide (fsyncgate): a
// failed append or fsync poisons the underlying Log, and every batch in
// or behind the failing round completes with a failure state rather
// than retrying over ambiguous durable state.

// BatchState is the outcome of a commit batch.
type BatchState int

const (
	// BatchPending: not yet flushed (only observable while waiting).
	BatchPending BatchState = iota
	// BatchAppendFailed: the records are certainly not in the log (the
	// append was refused or failed before any byte of this batch was
	// accepted).  The owner may safely roll back.
	BatchAppendFailed
	// BatchBuffered: appended to the log buffer; durability was not
	// requested (Sync=false) and has not happened.
	BatchBuffered
	// BatchSynced: appended and fsynced — the batch is durable.
	BatchSynced
	// BatchSyncFailed: appended, but the flush or fsync failed.  The
	// records may or may not have reached stable storage; durability is
	// unknown and the log is poisoned.
	BatchSyncFailed
	// BatchLost: a simulated crash unwound the flush mid-flight; the
	// outcome is unknowable from inside the process.
	BatchLost
)

// String returns the state name.
func (s BatchState) String() string {
	switch s {
	case BatchPending:
		return "PENDING"
	case BatchAppendFailed:
		return "APPEND_FAILED"
	case BatchBuffered:
		return "BUFFERED"
	case BatchSynced:
		return "SYNCED"
	case BatchSyncFailed:
		return "SYNC_FAILED"
	case BatchLost:
		return "LOST"
	}
	return fmt.Sprintf("BatchState(%d)", int(s))
}

// ErrAbandoned is wrapped into the error a waiter receives when its
// context is canceled before the flush completes.  The batch itself is
// NOT withdrawn: its records still flush in order and its callbacks
// still run; only the waiting stops, so the commit's durability is
// unknown to the abandoning caller.
var ErrAbandoned = errors.New("wal: commit wait abandoned")

// errLeaderCrashed poisons a committer whose flush leader panicked (a
// simulated crash unwinding through the flush).
var errLeaderCrashed = errors.New("wal: group commit leader crashed")

// Batch is one unit of work on the commit queue: a transaction's log
// records plus its durability request.
type Batch struct {
	// Records are appended contiguously, in order, ahead of any batch
	// enqueued later.
	Records []*Record
	// Sync requests an fsync before completion (a synchronous commit).
	// Batches without Sync still ride the queue — they complete once
	// appended to the log buffer — and are made durable for free when
	// any batch in their round requests a sync.
	Sync bool
	// OnAppend, if set, runs on the flush goroutine immediately after
	// the batch's records are in the log buffer, before the fsync.
	// Storage uses it to release the transaction's locks early: once
	// the records are in the log in commit order, any dependent
	// transaction necessarily commits later in the log, and a poisoned
	// fsync fails them all, so waiting out the fsync under the locks
	// buys nothing.
	OnAppend func()
	// OnComplete, if set, runs on the flush goroutine when the outcome
	// is decided, before waiters wake.  It runs exactly once, whether
	// or not the waiter abandoned the wait — failure handling
	// (rollback, degrade) must live here, not in the waiter.
	OnComplete func(st BatchState, err error)

	start     time.Time
	state     BatchState
	err       error
	appended  bool
	completed bool
	done      chan struct{}
}

// State returns the batch outcome (BatchPending until completion).
func (b *Batch) State() BatchState { return b.state }

// Err returns the failure cause for unsuccessful states, nil otherwise.
func (b *Batch) Err() error { return b.err }

// Done returns a channel closed when the batch completes.
func (b *Batch) Done() <-chan struct{} { return b.done }

// GroupOptions tune a GroupCommitter.
type GroupOptions struct {
	// Group enables batching.  When false the committer runs in serial
	// mode — every Commit flushes alone with its own fsync (the classic
	// one-fsync-per-txn baseline) — but through the same code path, so
	// the two modes differ only in batching.
	Group bool
	// MaxBytes caps how many appended bytes one flush round covers
	// before it fsyncs and starts the next round.  Zero means 1MiB.
	MaxBytes int64
	// Window is how long the leader waits before draining the queue,
	// letting more committers pile on per fsync.  Zero (the default)
	// flushes immediately: on storage where an fsync takes ~100µs the
	// natural pipelining — arrivals queue while the leader is inside
	// the previous fsync — already batches well, and any fixed window
	// only adds latency.  On spinning disks (~10ms per forced write)
	// 1–2ms windows trade latency for fewer, fuller batches.
	Window time.Duration
}

// groupMetrics holds the committer's resolved obs handles.
type groupMetrics struct {
	batches *obs.Counter   // wal.group.batches: flush rounds (one fsync each at most)
	txns    *obs.Counter   // wal.group.txns: commit batches flushed
	size    *obs.Histogram // wal.group.size: appended bytes per round
	wait    *obs.Histogram // wal.group.wait.ns: enqueue-to-completion latency
}

// GroupCommitter owns all physical access to a Log: once a Log is
// wrapped, nothing else may call its Append/Sync/Reset.  Committers
// call Commit; maintenance paths use Drain and Exclusive.
type GroupCommitter struct {
	log  *Log
	opts GroupOptions

	mu      sync.Mutex
	cond    *sync.Cond // leadership / freeze handoff
	queue   []*Batch
	leading bool  // a flush is in progress
	frozen  bool  // Exclusive holds the log
	err     error // sticky: the leader crashed; no flush is coming

	failpoint func(name string) error // nil outside fault-injection tests
	m         *groupMetrics           // nil when unobserved

	// Replication ship hook.  unsynced accumulates the records of every
	// batch appended since the last successful fsync; both fields are
	// touched only while holding the flush baton (leading or frozen), so
	// they need no lock of their own.
	onSync   func(recs []*Record)
	unsynced []*Record
}

// NewGroupCommitter wraps log in a commit pipeline.
func NewGroupCommitter(log *Log, opts GroupOptions) *GroupCommitter {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 1 << 20
	}
	g := &GroupCommitter{log: log, opts: opts}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// SetObserver wires the wal.group.* metrics into reg; nil detaches.
// Call before concurrent use.
func (g *GroupCommitter) SetObserver(reg *obs.Registry) {
	if reg == nil {
		g.m = nil
		return
	}
	g.m = &groupMetrics{
		batches: reg.Counter("wal.group.batches"),
		txns:    reg.Counter("wal.group.txns"),
		size:    reg.Histogram("wal.group.size"),
		wait:    reg.Histogram("wal.group.wait.ns"),
	}
}

// SetFailpoints installs the logic-failpoint hook (fault.Injector.Logic)
// the flush passes through at "group.pre-fsync" (between the batched
// append and the fsync) and "group.wakeup" (between waiter wakeups).
// The hook may panic to simulate a crash.  Call before concurrent use;
// nil detaches.
func (g *GroupCommitter) SetFailpoints(fn func(name string) error) { g.failpoint = fn }

// SetOnSync installs fn as the post-fsync ship hook: after every
// successful fsync, the flush goroutine hands fn all records made
// durable by that fsync (accumulated across any intervening unsynced
// rounds), in append order, before any waiter is woken.  That ordering
// is what lets a synchronous shipper guarantee "acked implies shipped":
// a committer cannot observe success until fn has returned.  fn must not
// re-enter the committer.  Install while the pipeline is quiesced — from
// inside Exclusive, or before concurrent use; nil detaches.
func (g *GroupCommitter) SetOnSync(fn func(recs []*Record)) { g.onSync = fn }

// Commit enqueues b and waits for its outcome.  The returned error is
// nil only if the batch completed as BatchSynced or BatchBuffered;
// inspect b.State to distinguish failure modes.  Canceling ctx abandons
// the wait — the batch still flushes and its callbacks still run — with
// an error wrapping ErrAbandoned and the context's error.
func (g *GroupCommitter) Commit(ctx context.Context, b *Batch) error {
	b.done = make(chan struct{})
	b.start = time.Now()
	g.mu.Lock()
	if !g.opts.Group {
		// Serial baseline: wait for the baton, flush alone.
		for g.leading || g.frozen {
			g.cond.Wait()
		}
		if g.err != nil {
			err := g.err
			g.mu.Unlock()
			g.complete(b, BatchAppendFailed, err)
			return b.err
		}
		g.leading = true
		g.mu.Unlock()
		g.flushAsLeader([]*Batch{b})
		return g.wait(ctx, b)
	}
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		g.complete(b, BatchAppendFailed, err)
		return b.err
	}
	g.queue = append(g.queue, b)
	if g.leading || g.frozen {
		// A leader is flushing (or Exclusive holds the log): it is
		// guaranteed to observe this batch before giving up the baton,
		// because it rechecks the queue under g.mu before exiting.
		g.mu.Unlock()
		return g.wait(ctx, b)
	}
	g.leading = true
	g.lead() // releases g.mu
	return g.wait(ctx, b)
}

// wait blocks until b completes or ctx is canceled.
func (g *GroupCommitter) wait(ctx context.Context, b *Batch) error {
	if ctx != nil {
		select {
		case <-b.done:
		case <-ctx.Done():
			select {
			case <-b.done: // settled concurrently: report the real outcome
			default:
				return fmt.Errorf("%w: %w", ErrAbandoned, ctx.Err())
			}
		}
	} else {
		<-b.done
	}
	return b.err
}

// Drain flushes every batch enqueued before the call and fsyncs the
// log, by riding an empty synchronous batch through the ordinary queue:
// when it completes, everything ahead of it is flushed and durable.
func (g *GroupCommitter) Drain() error {
	return g.Commit(context.Background(), &Batch{Sync: true})
}

// Exclusive drains the pipeline, then runs fn while holding the flush
// baton, so fn observes a log with no in-flight appends (checkpoints
// snapshot and reset the log inside fn).  Batches enqueued while fn
// runs wait and are flushed — into the post-fn log — before the baton
// is released.
func (g *GroupCommitter) Exclusive(fn func() error) error {
	if err := g.Drain(); err != nil {
		return err
	}
	g.mu.Lock()
	for g.leading || g.frozen {
		g.cond.Wait()
	}
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return err
	}
	g.frozen = true
	normal := false
	defer func() {
		if normal {
			return
		}
		g.crashUnwind(nil) // a crash unwound fn or a flush: wake everyone
	}()
	g.flushQueueLocked() // late arrivals between the Drain and the freeze
	err := g.log.Err()
	g.mu.Unlock()
	if err == nil {
		err = fn()
	}
	g.mu.Lock()
	g.flushQueueLocked() // batches that arrived while frozen land in the post-fn log
	g.frozen = false
	g.cond.Broadcast()
	g.mu.Unlock()
	normal = true
	return err
}

// flushQueueLocked flushes the queue to empty.  Caller holds g.mu with
// the baton (leading or frozen); g.mu is held again on return.
func (g *GroupCommitter) flushQueueLocked() {
	for len(g.queue) > 0 {
		round := g.queue
		g.queue = nil
		g.mu.Unlock()
		g.flushAll(round)
		g.mu.Lock()
	}
}

// lead runs the leader loop.  Caller holds g.mu with g.leading set;
// lead returns with g.mu released and leadership dropped.  The queue is
// rechecked under g.mu before exit, so every batch enqueued while a
// leader exists is flushed by that leader.
func (g *GroupCommitter) lead() {
	normal := false
	defer func() {
		if normal {
			return
		}
		g.crashUnwind(nil)
	}()
	for len(g.queue) > 0 {
		if g.opts.Window > 0 {
			g.mu.Unlock()
			time.Sleep(g.opts.Window) // let more committers pile on
			g.mu.Lock()
		}
		round := g.queue
		g.queue = nil
		g.mu.Unlock()
		g.flushAll(round)
		g.mu.Lock()
	}
	g.leading = false
	g.cond.Broadcast()
	g.mu.Unlock()
	normal = true
}

// flushAsLeader flushes round and drops leadership (serial mode).
func (g *GroupCommitter) flushAsLeader(round []*Batch) {
	normal := false
	defer func() {
		if normal {
			return
		}
		g.crashUnwind(round)
	}()
	g.flushAll(round)
	g.mu.Lock()
	g.leading = false
	g.cond.Broadcast()
	g.mu.Unlock()
	normal = true
}

// crashUnwind is the deferred cleanup when a panic (a simulated crash)
// unwinds through a flush: the "process" is dying, so no further flush
// is coming.  It poisons the committer, drops the baton, and completes
// every batch still in flight or queued as BatchLost so no waiter — in
// this process's surviving goroutines — hangs.  The panic itself keeps
// propagating to the harness.
func (g *GroupCommitter) crashUnwind(inFlight []*Batch) {
	g.mu.Lock()
	if g.err == nil {
		g.err = errLeaderCrashed
	}
	err := g.err
	queued := g.queue
	g.queue = nil
	g.leading = false
	g.frozen = false
	g.cond.Broadcast()
	g.mu.Unlock()
	for _, b := range inFlight {
		g.complete(b, BatchLost, err)
	}
	for _, b := range queued {
		g.complete(b, BatchLost, err)
	}
}

// flushAll flushes round in sub-rounds bounded by MaxBytes, completing
// every batch.  Runs on the flush goroutine, outside g.mu.
func (g *GroupCommitter) flushAll(round []*Batch) {
	crashGuard := round
	defer func() {
		// Complete this round's stragglers if a crash panic unwinds a
		// sub-round; crashUnwind (further up the stack) handles the
		// rest of the pipeline.
		for _, b := range crashGuard {
			if !b.completed {
				g.complete(b, BatchLost, errLeaderCrashed)
			}
		}
	}()
	for len(round) > 0 {
		n := g.flushRound(round)
		round = round[n:]
	}
	crashGuard = nil
}

// flushRound appends and (if requested) fsyncs one sub-round: batches
// from the front of round until MaxBytes of log have been appended.  It
// completes every batch it consumed and returns how many that was.
func (g *GroupCommitter) flushRound(round []*Batch) int {
	base := g.log.Size()
	var ioErr error
	needSync := false
	n := 0
	for _, b := range round {
		if n > 0 && g.log.Size()-base >= g.opts.MaxBytes {
			break // sub-round full: fsync what we have, then continue
		}
		n++
		if ioErr == nil {
			ioErr = g.log.Err()
		}
		if ioErr != nil {
			// The log is poisoned; none of this batch's records were
			// accepted, so its owner may roll back.
			g.complete(b, BatchAppendFailed, ioErr)
			continue
		}
		appendFailed := false
		for _, r := range b.Records {
			if _, err := g.log.Append(r); err != nil {
				ioErr = err
				appendFailed = true
				break
			}
		}
		if appendFailed {
			// The batch is torn out of the buffered stream mid-append,
			// but a failed buffered write poisons the log, so no later
			// append can ever build on the partial records: to every
			// reader of the eventual log they do not exist.
			g.complete(b, BatchAppendFailed, ioErr)
			continue
		}
		b.appended = true
		if g.onSync != nil {
			g.unsynced = append(g.unsynced, b.Records...)
		}
		if b.OnAppend != nil {
			b.OnAppend()
		}
		if b.Sync {
			needSync = true
		}
	}
	consumed := round[:n]
	if ioErr == nil && g.failpoint != nil {
		ioErr = g.failpoint("group.pre-fsync")
	}
	if ioErr == nil && needSync {
		ioErr = g.log.Sync()
		if ioErr == nil && g.onSync != nil && len(g.unsynced) > 0 {
			recs := g.unsynced
			g.unsynced = nil
			g.onSync(recs)
		}
	}
	txns := uint64(0)
	for _, b := range consumed {
		if len(b.Records) > 0 {
			txns++
		}
		if b.completed { // failed at append time
			continue
		}
		switch {
		case ioErr != nil:
			// Appended but the round's flush failed: the prefix that
			// reached disk is unknowable.
			g.complete(b, BatchSyncFailed, ioErr)
		case b.Sync:
			g.complete(b, BatchSynced, nil)
		default:
			g.complete(b, BatchBuffered, nil)
		}
		if g.failpoint != nil {
			// Crash-only seam between waiter wakeups: some committers
			// have already been told "durable" when the process dies.
			_ = g.failpoint("group.wakeup")
		}
	}
	if g.m != nil {
		g.m.batches.Inc()
		g.m.txns.Add(txns)
		g.m.size.Observe(g.log.Size() - base)
	}
	return n
}

// complete settles a batch exactly once: outcome, callback, wakeup.
func (g *GroupCommitter) complete(b *Batch, st BatchState, err error) {
	if b.completed {
		return
	}
	b.completed = true
	b.state = st
	switch st {
	case BatchAppendFailed:
		b.err = fmt.Errorf("wal: group append: %w", err)
	case BatchSyncFailed:
		b.err = fmt.Errorf("wal: group flush: %w", err)
	case BatchLost:
		b.err = fmt.Errorf("wal: group flush lost: %w", err)
	}
	if g.m != nil {
		g.m.wait.ObserveSince(b.start)
	}
	if b.OnComplete != nil {
		b.OnComplete(st, b.err)
	}
	close(b.done)
}
