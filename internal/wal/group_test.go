package wal

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/value"
)

// openGroup opens a log under a fault injector and wraps it in a
// committer with the given options.
func openGroup(t *testing.T, opts GroupOptions) (*GroupCommitter, *Log, *fault.Registry, string) {
	t.Helper()
	reg := fault.NewRegistry()
	inj := fault.NewInjector(fault.Disk{}, reg)
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l, opts)
	g.SetFailpoints(inj.Logic)
	return g, l, reg, path
}

func commitRecord(txid uint64) []*Record {
	return []*Record{
		{Type: RecBegin, TxID: txid},
		{Type: RecInsert, TxID: txid, Relation: "R", RowID: txid, New: value.Tuple{value.Int(int64(txid))}},
		{Type: RecCommit, TxID: txid},
	}
}

// TestGroupCommitConcurrent drives many concurrent committers through
// one committer and checks that every batch lands durably, records are
// contiguous per batch, and flush rounds actually batch (fewer fsyncs
// than transactions).
func TestGroupCommitConcurrent(t *testing.T) {
	g, l, _, path := openGroup(t, GroupOptions{Group: true})
	reg := obs.NewRegistry()
	l.SetObserver(reg)
	g.SetObserver(reg)

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	states := make([]BatchState, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := &Batch{Records: commitRecord(uint64(i + 1)), Sync: true}
			errs[i] = g.Commit(context.Background(), b)
			states[i] = b.State()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("commit %d: %v", i, errs[i])
		}
		if states[i] != BatchSynced {
			t.Fatalf("commit %d: state %v, want SYNCED", i, states[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every batch's three records must be contiguous in the log.
	var seq []uint64
	if err := Scan(path, func(_ int64, r *Record) error {
		seq = append(seq, r.TxID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3*n {
		t.Fatalf("log has %d records, want %d", len(seq), 3*n)
	}
	for i := 0; i < len(seq); i += 3 {
		if seq[i] != seq[i+1] || seq[i] != seq[i+2] {
			t.Fatalf("batch records interleaved at %d: %v", i, seq[i:i+3])
		}
	}

	var batches, txns uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "wal.group.batches":
			batches = m.Value
		case "wal.group.txns":
			txns = m.Value
		}
	}
	if txns != n {
		t.Fatalf("wal.group.txns = %d, want %d", txns, n)
	}
	if batches == 0 || batches > txns {
		t.Fatalf("wal.group.batches = %d (txns %d): want 1..txns", batches, txns)
	}
}

// TestGroupCommitSerialMode pins the baseline: without Group, every
// commit flushes alone (rounds == txns), still through the same path.
func TestGroupCommitSerialMode(t *testing.T) {
	g, l, _, _ := openGroup(t, GroupOptions{Group: false})
	reg := obs.NewRegistry()
	g.SetObserver(reg)
	for i := 1; i <= 5; i++ {
		b := &Batch{Records: commitRecord(uint64(i)), Sync: true}
		if err := g.Commit(context.Background(), b); err != nil {
			t.Fatalf("serial commit %d: %v", i, err)
		}
		if b.State() != BatchSynced {
			t.Fatalf("serial commit %d: state %v", i, b.State())
		}
	}
	var batches, txns uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "wal.group.batches":
			batches = m.Value
		case "wal.group.txns":
			txns = m.Value
		}
	}
	if batches != 5 || txns != 5 {
		t.Fatalf("serial mode: batches=%d txns=%d, want 5/5", batches, txns)
	}
	l.Close()
}

// TestGroupCommitSharedFsyncFailure pins fsyncgate across a batch: when
// the round's fsync fails, every waiter in the round gets the failure
// (durability unknown), and later commits fail against the poisoned log.
func TestGroupCommitSharedFsyncFailure(t *testing.T) {
	g, _, freg, path := openGroup(t, GroupOptions{Group: true, Window: 20 * time.Millisecond})
	freg.Arm(fault.Point(fault.OpSync, path), 1, fault.Outcome{})

	const n = 4
	var wg sync.WaitGroup
	batches := make([]*Batch, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		batches[i] = &Batch{Records: commitRecord(uint64(i + 1)), Sync: true}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = g.Commit(context.Background(), batches[i])
		}(i)
	}
	wg.Wait()
	// The leader's window makes one round of all four batches likely but
	// not guaranteed; whatever the grouping, each batch must have failed
	// with either the fsync failure or the poisoned-log append failure.
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			t.Fatalf("commit %d succeeded over failing fsync", i)
		}
		if st := batches[i].State(); st != BatchSyncFailed && st != BatchAppendFailed {
			t.Fatalf("commit %d: state %v", i, st)
		}
	}
	// The log is poisoned: new commits fail immediately.
	b := &Batch{Records: commitRecord(99), Sync: true}
	if err := g.Commit(context.Background(), b); err == nil {
		t.Fatal("commit after poisoned flush must fail")
	}
}

// TestGroupCommitAbandonedWaiter pins ctx abandonment: a waiter whose
// context dies before the flush stops waiting with ErrAbandoned, but
// its batch still flushes (in order) and its completion callback runs.
func TestGroupCommitAbandonedWaiter(t *testing.T) {
	g, l, _, path := openGroup(t, GroupOptions{Group: true, Window: 60 * time.Millisecond})

	// The first committer becomes leader and sleeps in the window; the
	// second enqueues behind it and abandons the wait almost at once.
	leaderDone := make(chan error, 1)
	go func() {
		leaderDone <- g.Commit(context.Background(), &Batch{Records: commitRecord(1), Sync: true})
	}()
	time.Sleep(10 * time.Millisecond) // let the leader take the baton

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	completed := make(chan BatchState, 1)
	b := &Batch{
		Records:    commitRecord(2),
		Sync:       true,
		OnComplete: func(st BatchState, _ error) { completed <- st },
	}
	err := g.Commit(ctx, b)
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("abandoned wait: got %v, want ErrAbandoned", err)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader commit: %v", err)
	}
	select {
	case st := <-completed:
		if st != BatchSynced {
			t.Fatalf("abandoned batch completed as %v, want SYNCED", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned batch never completed")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := Scan(path, func(_ int64, r *Record) error {
		if r.Type == RecCommit && r.TxID == 2 {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("abandoned batch's records missing from the log")
	}
}

// TestGroupCommitMaxBytesSubRounds checks that one big queue is flushed
// in multiple byte-capped rounds, all successfully.
func TestGroupCommitMaxBytesSubRounds(t *testing.T) {
	g, l, _, _ := openGroup(t, GroupOptions{Group: true, MaxBytes: 256, Window: 20 * time.Millisecond})
	reg := obs.NewRegistry()
	g.SetObserver(reg)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = g.Commit(context.Background(), &Batch{Records: commitRecord(uint64(i + 1)), Sync: true})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	l.Close()
}

// TestExclusiveSerializesWithCommits: batches enqueued while Exclusive
// holds the baton wait and flush only after fn finishes.
func TestExclusiveSerializesWithCommits(t *testing.T) {
	g, l, _, _ := openGroup(t, GroupOptions{Group: true})
	inFn := make(chan struct{})
	fnDone := make(chan struct{})
	exclErr := make(chan error, 1)
	go func() {
		exclErr <- g.Exclusive(func() error {
			close(inFn)
			time.Sleep(30 * time.Millisecond)
			close(fnDone)
			return nil
		})
	}()
	<-inFn
	b := &Batch{Records: commitRecord(7), Sync: true}
	if err := g.Commit(context.Background(), b); err != nil {
		t.Fatalf("commit during exclusive: %v", err)
	}
	select {
	case <-fnDone:
	default:
		t.Fatal("commit completed while Exclusive fn was still running")
	}
	if err := <-exclErr; err != nil {
		t.Fatalf("exclusive: %v", err)
	}
	l.Close()
}

// TestExclusivePropagatesFnError: fn's error comes back and the
// pipeline stays usable.
func TestExclusivePropagatesFnError(t *testing.T) {
	g, l, _, _ := openGroup(t, GroupOptions{Group: true})
	want := fmt.Errorf("snapshot failed")
	if err := g.Exclusive(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("exclusive error: %v", err)
	}
	if err := g.Commit(context.Background(), &Batch{Records: commitRecord(1), Sync: true}); err != nil {
		t.Fatalf("commit after failed exclusive: %v", err)
	}
	l.Close()
}

// TestGroupCommitCrashAtPreFsync pins the crash seam between the
// batched append and the fsync: the panic propagates to the harness,
// concurrent waiters complete as LOST rather than hanging, and the
// committer is poisoned for the rest of the "process" lifetime.
func TestGroupCommitCrashAtPreFsync(t *testing.T) {
	g, _, freg, _ := openGroup(t, GroupOptions{Group: true, Window: 30 * time.Millisecond})
	freg.Arm(fault.Point(fault.OpLogic, "group.pre-fsync"), 1, fault.Outcome{Crash: true})

	waiterErr := make(chan error, 1)
	waiterState := make(chan BatchState, 1)
	crashed := make(chan bool, 1)
	go func() {
		defer func() {
			_, isCrash := fault.AsCrash(recover())
			crashed <- isCrash
		}()
		_ = g.Commit(context.Background(), &Batch{Records: commitRecord(1), Sync: true})
		crashed <- false
	}()
	time.Sleep(10 * time.Millisecond) // leader inside its window
	go func() {
		b := &Batch{Records: commitRecord(2), Sync: true}
		waiterErr <- g.Commit(context.Background(), b)
		waiterState <- b.State()
	}()

	if !<-crashed {
		t.Fatal("leader goroutine did not crash-panic")
	}
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Fatal("waiter succeeded across a crashed flush")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after leader crash")
	}
	if st := <-waiterState; st != BatchLost {
		t.Fatalf("waiter state %v, want LOST", st)
	}
	// The committer is poisoned: nothing further flushes.
	if err := g.Commit(context.Background(), &Batch{Records: commitRecord(3), Sync: true}); err == nil {
		t.Fatal("commit on crashed committer must fail")
	}
}
