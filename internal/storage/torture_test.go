package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/fault/torture"
	"repro/internal/value"
)

// tortureState is the model-based oracle for the crash workload.  The
// workload is single-threaded, so at any crash instant the database is
// in one of three logical states:
//
//	building    — a transaction is (maybe) in flight; its effects are
//	              uncommitted, so recovery must yield committed.
//	committing  — Commit has been called for pending; the COMMIT record
//	              may or may not have reached stable storage, so recovery
//	              may yield either committed or pending.
//
// Checkpointing never changes the logical row set, so it needs no phase
// of its own.
type tortureState struct {
	committed map[RowID]string // durably committed rows (encoded tuples)
	pending   map[RowID]string // rows as of the in-flight commit
	phase     string           // "building" | "committing"

	maxSeq   uint64 // highest sequence value ever handed out
	seqFloor uint64 // sequence value at the last completed checkpoint
}

func encTuple(t value.Tuple) string { return string(value.AppendTuple(nil, t)) }

func cloneModel(m map[RowID]string) map[RowID]string {
	c := make(map[RowID]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// TestTortureCrashRecovery sweeps a randomized workload across every
// durability-relevant failpoint, crashing the simulated process at the
// 1st, 2nd, ... nth hit of each, reopening after crash-loss semantics
// are applied, and asserting the recovery invariants:
//
//  1. every transaction whose Commit returned success is present
//     (SyncCommits means success ⇒ durable);
//  2. no uncommitted or aborted work resurfaces;
//  3. a commit interrupted mid-fsync lands on exactly one side of the
//     ambiguity (all-or-nothing, never a partial transaction);
//  4. secondary indexes agree exactly with the heap;
//  5. the persistent sequence never falls behind its value at the last
//     completed checkpoint.
func TestTortureCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	r := torture.New(t)
	st := &tortureState{
		committed: make(map[RowID]string),
		phase:     "building",
	}

	wal := filepath.Join(dir, "mdm.wal")
	segTmp := filepath.Join(dir, "mdm.seg.T.tmp")
	seg := filepath.Join(dir, "mdm.seg.T")
	manTmp := filepath.Join(dir, "mdm.manifest.tmp")
	man := filepath.Join(dir, "mdm.manifest")
	points := []string{
		fault.Point(fault.OpWrite, wal),    // log flush (append / commit / sync)
		fault.Point(fault.OpSync, wal),     // commit & checkpoint fsync
		fault.Point(fault.OpTruncate, wal), // checkpoint log reset
		fault.Point(fault.OpCreate, segTmp),
		fault.Point(fault.OpWrite, segTmp),
		fault.Point(fault.OpSync, segTmp),
		fault.Point(fault.OpRename, segTmp), // segment install
		fault.Point(fault.OpCreate, manTmp),
		fault.Point(fault.OpWrite, manTmp),
		fault.Point(fault.OpRename, manTmp), // manifest install
		fault.Point(fault.OpSyncDir, dir),   // rename / truncate durability
		fault.Point(fault.OpRead, wal),      // recovery replay
		fault.Point(fault.OpReadFile, man),  // manifest load
		fault.Point(fault.OpReadFile, seg),  // segment load
		"logic:ckpt.segment",                // between segment writes
		"logic:ckpt.pre-manifest",           // segments durable, manifest not yet written
		"logic:ckpt.post-manifest",          // manifest durable, log not yet reset
	}

	maxNth := 14
	if testing.Short() {
		maxNth = 3
	}

	cycle := 0
	for _, point := range points {
		for nth := 1; nth <= maxNth; nth++ {
			cycle++
			seed := int64(cycle)
			crashed, err := r.CrashCycle(point, nth, func() error {
				return tortureLifetime(dir, r.FS, st, seed)
			})
			if err != nil {
				t.Fatalf("point %s nth %d: workload failed: %v", point, nth, err)
			}
			if !crashed {
				break // workload no longer reaches this hit count
			}
			tortureVerify(t, dir, r.FS, st, point, nth)
		}
	}

	t.Logf("torture: %d crash-recovery cycles across %d failpoints", r.Cycles, len(r.CrashesAt))
	minCycles, minPoints := 50, 8
	if testing.Short() {
		minCycles, minPoints = 15, 5
	}
	if r.Cycles < minCycles {
		t.Fatalf("only %d crash-recovery cycles, want >= %d", r.Cycles, minCycles)
	}
	if len(r.CrashesAt) < minPoints {
		t.Fatalf("only %d distinct failpoints crashed, want >= %d: %v", len(r.CrashesAt), minPoints, r.CrashesAt)
	}
}

// tortureLifetime is one simulated process lifetime: open (recovering),
// run a randomized transaction mix with periodic checkpoints, close.
// It may be cut short at any point by an armed crash.
func tortureLifetime(dir string, fs fault.FS, st *tortureState, seed int64) error {
	st.phase = "building"
	db, err := Open(Options{Dir: dir, SyncCommits: true, FS: fs})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer db.Close()
	if err := tortureSetup(db, st); err != nil {
		return err
	}
	db.BumpSeq("t", st.maxSeq)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 25; i++ {
		if s := db.NextSeq("t"); s > st.maxSeq {
			st.maxSeq = s
		}
		pending := cloneModel(st.committed)
		tx := db.Begin()
		nops := 1 + rng.Intn(3)
		for j := 0; j < nops; j++ {
			if err := tortureOp(tx, rng, pending); err != nil {
				tx.Abort()
				return err
			}
		}
		if rng.Intn(5) == 0 { // ~20% aborts: must never resurface
			tx.Abort()
			continue
		}
		st.pending = pending
		st.phase = "committing"
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("commit: %w", err)
		}
		st.committed = pending
		st.phase = "building"

		if i%8 == 7 {
			if err := db.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
			st.seqFloor = st.maxSeq
		}
	}
	if err := db.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	st.seqFloor = st.maxSeq // Close checkpoints
	return nil
}

// tortureSetup creates the relation and index on first use.  DDL is
// idempotent across crashes: if committed rows exist, the creation
// record is necessarily durable (it precedes them in the log), so a
// missing relation is only legal while the model is still empty.
func tortureSetup(db *DB, st *tortureState) error {
	if rel := db.Relation("T"); rel != nil {
		// A torn log tail can keep the relation record but lose the
		// index record (prefix durability splits them); recreate it.
		if rel.findIndex("T_k") == nil {
			return db.CreateIndex("T", IndexSpec{Name: "T_k", Columns: []string{"k"}})
		}
		return nil
	}
	if len(st.committed) > 0 {
		return fmt.Errorf("relation T lost but %d committed rows expected", len(st.committed))
	}
	if _, err := db.CreateRelation("T", value.NewSchema(
		value.Field{Name: "k", Kind: value.KindInt},
		value.Field{Name: "s", Kind: value.KindString},
	)); err != nil {
		return err
	}
	return db.CreateIndex("T", IndexSpec{Name: "T_k", Columns: []string{"k"}})
}

// tortureOp applies one random mutation through tx and mirrors it in the
// model.
func tortureOp(tx *Tx, rng *rand.Rand, model map[RowID]string) error {
	roll := rng.Intn(10)
	switch {
	case roll < 5 || len(model) == 0: // insert
		t := value.Tuple{value.Int(int64(rng.Intn(100))), value.Str(fmt.Sprintf("row-%d", rng.Int63()))}
		id, err := tx.Insert("T", t)
		if err != nil {
			return err
		}
		model[id] = encTuple(t)
	case roll < 8: // update
		id := pickRow(rng, model)
		t := value.Tuple{value.Int(int64(rng.Intn(100))), value.Str(fmt.Sprintf("upd-%d", rng.Int63()))}
		if err := tx.Update("T", id, t); err != nil {
			return err
		}
		model[id] = encTuple(t)
	default: // delete
		id := pickRow(rng, model)
		if err := tx.Delete("T", id); err != nil {
			return err
		}
		delete(model, id)
	}
	return nil
}

func pickRow(rng *rand.Rand, model map[RowID]string) RowID {
	ids := make([]RowID, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	// map order is random; sort-free deterministic pick via min-search
	// would bias, so select by index after a stable ordering.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids[rng.Intn(len(ids))]
}

// tortureVerify reopens the database after a crash and checks every
// recovery invariant, then checkpoints so the adopted state becomes the
// durable baseline for the next cycle.
func tortureVerify(t *testing.T, dir string, fs fault.FS, st *tortureState, point string, nth int) {
	t.Helper()
	db, err := Open(Options{Dir: dir, SyncCommits: true, FS: fs})
	if err != nil {
		t.Fatalf("reopen after crash at %s (hit %d): %v", point, nth, err)
	}

	observed := make(map[RowID]string)
	if rel := db.Relation("T"); rel != nil {
		rel.scan(func(id RowID, tu value.Tuple) bool {
			observed[id] = encTuple(tu)
			return true
		})
		if err := rel.CheckIndexes(); err != nil {
			t.Fatalf("after crash at %s (hit %d): %v", point, nth, err)
		}
	}

	switch {
	case modelsEqual(observed, st.committed):
		// The in-flight commit (if any) did not survive; forget it.
	case st.phase == "committing" && modelsEqual(observed, st.pending):
		// The ambiguous commit made it to stable storage before the
		// crash: adopt it.
		st.committed = st.pending
	default:
		t.Fatalf("after crash at %s (hit %d): recovered state matches neither committed (%d rows) nor pending (%d rows): got %d rows, phase %s",
			point, nth, len(st.committed), len(st.pending), len(observed), st.phase)
	}
	st.phase = "building"
	st.pending = nil

	// Sequences must not fall behind the last completed checkpoint.
	if got := db.NextSeq("t"); got <= st.seqFloor {
		t.Fatalf("after crash at %s (hit %d): sequence regressed to %d, floor %d", point, nth, got, st.seqFloor)
	} else if got > st.maxSeq {
		st.maxSeq = got
	}
	db.BumpSeq("t", st.maxSeq)

	if err := db.Close(); err != nil {
		t.Fatalf("close after verify (%s hit %d): %v", point, nth, err)
	}
	st.committed = observed
	st.seqFloor = st.maxSeq
}

func modelsEqual(a, b map[RowID]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
