package storage

import (
	"context"
	"path/filepath"
	"sort"
	"time"
)

// Fuzzy incremental checkpoints.
//
// The legacy checkpoint (fullCheckpointWith, kept under
// Options.FullSnapshots) quiesces every writer and rewrites the whole
// database image — a stall that grows with database size.  The default
// path here removes both costs:
//
//   - incremental: a CSN-stamped dirty set (db.dirty) records, per
//     relation, the highest commit CSN since its segment was last
//     written.  A checkpoint rewrites only relations whose stamp
//     exceeds their installed segment's covered CSN and reuses every
//     other segment file untouched.
//
//   - fuzzy: the copy phase pins a snapshot CSN and scans each dirty
//     relation through the MVCC version store (snapScan), concurrently
//     with writers.  The writer-visible exclusive window shrinks to a
//     catch-up rewrite of relations dirtied during the copy phase, the
//     manifest swap, and the log reset.
//
// Dirty stamps are taken inside the publish callback (mvcc.go), which
// the snapshot registry runs before advancing its CSN clock: once the
// fuzzy phase has pinned CSN C, every commit at or below C has already
// stamped, so comparing stamps against a segment's covered CSN can
// never miss a write the segment lacks.  Mutations that bypass the CSN
// clock — schema operations, crash-recovery replay, replica apply —
// stamp dirtyDDL, which forces a rewrite unconditionally.
//
// Stamps are consumed with a compare-and-delete: the install remembers
// the stamp it observed when deciding to rewrite and clears the entry
// only if it is unchanged, so a commit racing the decision keeps the
// relation dirty for the next checkpoint.

// ckptPlan accumulates one checkpoint's decisions: the candidate
// manifest (the installed entries, overwritten as segments are
// rewritten), the dirty stamps consumed per rewrite, and accounting.
type ckptPlan struct {
	entries  map[string]manifestEntry
	consumed map[string]uint64
	fresh    map[string]bool // rewritten this checkpoint
	bytes    int64
	attach   func(checkpointPath string) error
}

// newCkptPlan starts a plan from the installed manifest.  Caller holds
// db.ckptMu (or db.applyMu on a replica), which also guards
// db.manifest.
func (db *DB) newCkptPlan(attach func(string) error) *ckptPlan {
	p := &ckptPlan{
		entries:  make(map[string]manifestEntry, len(db.manifest)),
		consumed: make(map[string]uint64),
		fresh:    make(map[string]bool),
		attach:   attach,
	}
	for n, e := range db.manifest {
		p.entries[n] = e
	}
	return p
}

// markDirty raises the relation's dirty stamp to csn.
func (db *DB) markDirty(name string, csn uint64) {
	if name == "" {
		return
	}
	db.dirtyMu.Lock()
	if db.dirty[name] < csn {
		db.dirty[name] = csn
	}
	db.dirtyMu.Unlock()
}

// dirtyStamp returns the relation's dirty stamp (0 when clean).
func (db *DB) dirtyStamp(name string) uint64 {
	db.dirtyMu.Lock()
	defer db.dirtyMu.Unlock()
	return db.dirty[name]
}

// planWrite rewrites one relation's segment at CSN at and records the
// decision in the plan.  The dirty stamp is read before the write: if a
// commit bumps it while the segment streams out, the stale consumed
// value makes the compare-and-delete keep the entry, and the relation
// is rewritten again (catch-up, or the next checkpoint).
func (db *DB) planWrite(p *ckptPlan, rel *Relation, at uint64) error {
	stamp := db.dirtyStamp(rel.name)
	e, err := db.writeSegmentFile(rel, at)
	if err != nil {
		return err
	}
	p.entries[rel.name] = e
	p.consumed[rel.name] = stamp
	p.fresh[rel.name] = true
	p.bytes += e.bytes
	if db.logic != nil {
		// Failpoint seam between segment writes: a crash here leaves
		// renamed-but-unreferenced segments that full log replay covers.
		if err := db.logic("ckpt.segment"); err != nil {
			return err
		}
	}
	return nil
}

// fuzzyCheckpointWith is the default checkpoint: fuzzy copy phase, then
// a short exclusive install.  Caller holds db.ckptMu.
func (db *DB) fuzzyCheckpointWith(attach func(string) error) error {
	p := db.newCkptPlan(attach)
	if db.committer == nil {
		// No commit pipeline (NoWAL ablation with a directory): quiesce
		// writers like the legacy path and install directly.
		err := func() error {
			release, err := db.quiesce()
			if err != nil {
				return err
			}
			defer release()
			if err := db.writable(); err != nil {
				return err
			}
			stallStart := time.Now()
			defer func() { db.m.ckptStall.Observe(int64(time.Since(stallStart))) }()
			return db.installCheckpoint(p)
		}()
		if err != nil {
			return err
		}
		db.rebuildAllStats()
		return nil
	}

	// Fuzzy phase: pin a CSN and rewrite every dirty relation through the
	// MVCC snapshot machinery while writers keep committing.
	fuzzyStart := time.Now()
	snap, err := db.BeginSnapshot(context.Background())
	if err != nil {
		return err
	}
	at := snap.CSN()
	names := db.Relations()
	sort.Strings(names)
	for _, name := range names {
		rel := db.Relation(name)
		if rel == nil {
			continue // dropped since listing
		}
		if e, ok := p.entries[name]; ok && db.dirtyStamp(name) <= e.covered {
			continue // clean: the installed segment already covers it
		}
		// Planner statistics rebuild rides the fuzzy phase — outside any
		// quiesce or exclusive window — so stats maintenance no longer
		// extends the writer stall, and the segment carries fresh stats.
		rel.RebuildStats()
		if err := db.planWrite(p, rel, at); err != nil {
			snap.Close()
			return err
		}
	}
	snap.Close()
	db.m.ckptFuzzy.Observe(int64(time.Since(fuzzyStart)))

	// Drain the commit queue (and fsync) so every acknowledged commit is
	// on disk in the log the manifest supersedes.
	if err := db.Sync(); err != nil {
		return err
	}
	stallStart := time.Now()
	defer func() { db.m.ckptStall.Observe(int64(time.Since(stallStart))) }()
	return db.committer.Exclusive(func() error {
		if err := db.writable(); err != nil {
			return err
		}
		return db.installCheckpoint(p)
	})
}

// installCheckpoint finishes a checkpoint: catch-up rewrites for
// relations dirtied since the fuzzy copy (at the now-quiescent latest
// CSN), durable segment renames, manifest swap, log reset, then
// bookkeeping.  The caller guarantees no commit can publish
// concurrently: leaders run it inside committer.Exclusive, replicas
// under applyMu, unlogged databases under a full quiesce.
//
// Failure semantics: any error before the log reset leaves the previous
// checkpoint (manifest or legacy snapshot) plus the complete log — the
// checkpoint simply did not happen.  A failed reset, or a failed
// directory sync after it, degrades the database: the durable log state
// is then unknown.
func (db *DB) installCheckpoint(p *ckptPlan) error {
	w := db.snaps.Last()
	names := db.Relations()
	sort.Strings(names)
	entries := make([]manifestEntry, 0, len(names))
	var written, skipped int
	for _, name := range names {
		rel := db.Relation(name)
		if rel == nil {
			continue
		}
		if e, ok := p.entries[name]; !ok || db.dirtyStamp(name) > e.covered {
			if err := db.planWrite(p, rel, w); err != nil {
				return err
			}
		}
		entries = append(entries, p.entries[name])
		if p.fresh[name] {
			written++
		} else {
			skipped++
		}
	}
	// Make the segment renames durable before any manifest references
	// them: a manifest must never name a segment file that a crash can
	// un-rename out of existence.
	if err := db.fs.SyncDir(db.opts.Dir); err != nil {
		return err
	}
	if db.logic != nil {
		if err := db.logic("ckpt.pre-manifest"); err != nil {
			return err
		}
	}
	epoch := db.manifestEpoch + 1
	mbytes, err := db.writeManifestFile(entries, epoch)
	if err != nil {
		return err
	}
	p.bytes += mbytes
	if err := db.fs.SyncDir(db.opts.Dir); err != nil {
		return err
	}
	if db.logic != nil {
		// The manifest rename is durable; the log is not yet reset.  A
		// crash here replays the full log over the new image — idempotent.
		if err := db.logic("ckpt.post-manifest"); err != nil {
			return err
		}
	}
	if db.log != nil {
		if err := db.log.Reset(); err != nil {
			db.degrade(err)
			return err
		}
		if err := db.fs.SyncDir(db.opts.Dir); err != nil {
			db.degrade(err)
			return err
		}
	}

	// The checkpoint is installed; everything below is bookkeeping.
	newManifest := make(map[string]manifestEntry, len(entries))
	for _, e := range entries {
		newManifest[e.name] = e
	}
	var doomed []string
	for name, e := range db.manifest {
		if _, live := newManifest[name]; !live {
			doomed = append(doomed, e.file) // dropped relation: segment is garbage
		}
	}
	db.manifest = newManifest
	db.manifestEpoch = epoch
	db.dirtyMu.Lock()
	for name, stamp := range p.consumed {
		if db.dirty[name] == stamp {
			delete(db.dirty, name)
		}
	}
	db.dirtyMu.Unlock()
	db.m.ckptRelations.Add(uint64(written + skipped))
	db.m.ckptSegsWritten.Add(uint64(written))
	db.m.ckptSegsSkipped.Add(uint64(skipped))
	db.m.ckptBytes.Add(uint64(p.bytes))
	// Best-effort housekeeping: the one-way migration away from the
	// legacy monolithic snapshot, and segments of dropped relations.
	// Failures leave stale files that recovery ignores (the manifest is
	// authoritative) and the next checkpoint retries the segment GC.
	if db.legacySnap {
		if err := db.fs.Remove(db.snapshotPath()); err == nil {
			db.legacySnap = false
		}
	}
	for _, f := range doomed {
		db.fs.Remove(filepath.Join(db.opts.Dir, f)) //nolint:errcheck // best-effort GC
	}
	if p.attach != nil {
		return p.attach(db.manifestPath())
	}
	return nil
}

// fullCheckpointWith is the legacy quiesce-the-world checkpoint
// (Options.FullSnapshots): S-lock every relation, drain the pipeline,
// rewrite the monolithic snapshot, reset the log.  Planner statistics
// rebuild after the quiesce releases, not inside it.
func (db *DB) fullCheckpointWith(attach func(string) error) error {
	err := func() error {
		release, err := db.quiesce()
		if err != nil {
			return err
		}
		defer release()
		stallStart := time.Now()
		defer func() { db.m.ckptStall.Observe(int64(time.Since(stallStart))) }()
		if db.committer == nil {
			if err := db.writable(); err != nil {
				return err
			}
			return db.installFullSnapshot(attach)
		}
		// Drain the commit queue (and fsync) before snapshotting, so every
		// acknowledged commit is on disk in the log the snapshot supersedes.
		if err := db.Sync(); err != nil {
			return err
		}
		return db.committer.Exclusive(func() error {
			if err := db.writable(); err != nil {
				return err
			}
			return db.installFullSnapshot(attach)
		})
	}()
	if err != nil {
		return err
	}
	db.rebuildAllStats()
	return nil
}

// installFullSnapshot writes the monolithic snapshot and resets the
// log.  If a segmented manifest is installed, it is durably removed
// between the snapshot write and the log reset: recovery prefers the
// manifest, so one must never survive a full snapshot that supersedes
// it.  (A crash before the removal is durable leaves manifest + full
// log — the state before this checkpoint, still consistent.)
func (db *DB) installFullSnapshot(attach func(string) error) error {
	n, err := db.writeSnapshot(db.snapshotPath())
	if err != nil {
		return err
	}
	rels := len(db.Relations())
	db.m.ckptRelations.Add(uint64(rels))
	db.m.ckptSegsWritten.Add(uint64(rels))
	db.m.ckptBytes.Add(uint64(n))
	db.legacySnap = true
	if db.manifest != nil {
		for _, e := range db.manifest {
			db.fs.Remove(filepath.Join(db.opts.Dir, e.file)) //nolint:errcheck // best-effort
		}
		if err := db.fs.Remove(db.manifestPath()); err != nil {
			return err
		}
		if err := db.fs.SyncDir(db.opts.Dir); err != nil {
			return err
		}
		db.manifest = nil
	}
	db.dirtyMu.Lock()
	db.dirty = make(map[string]uint64)
	db.dirtyMu.Unlock()
	if db.log != nil {
		if err := db.log.Reset(); err != nil {
			db.degrade(err)
			return err
		}
		// Make the truncation durable at the directory level too, so
		// the snapshot+empty-log pair is what any post-crash open sees.
		if err := db.fs.SyncDir(db.opts.Dir); err != nil {
			db.degrade(err)
			return err
		}
	}
	if attach != nil {
		return attach(db.snapshotPath())
	}
	return nil
}

// rebuildAllStats refreshes planner statistics for every relation, from
// outside any quiesce or exclusive window.
func (db *DB) rebuildAllStats() {
	for _, name := range db.Relations() {
		if rel := db.Relation(name); rel != nil {
			rel.RebuildStats()
		}
	}
}
