package storage

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/value"
)

// This file implements snapshot-isolation reads over the relational
// kernel: a commit-sequence-numbered (CSN) version store beside the
// heap, so read-only sessions pin a CSN (DB.BeginSnapshot) and scan a
// consistent committed state with zero lock acquisition, while writers
// keep the 2PL + group-commit path untouched.
//
// Mechanics:
//
//   - Every row carries a chain of rowVersion records (newest first).
//     A transaction's writes are collected as verOps and published
//     under the next CSN at the commit point — inside the WAL batch's
//     OnAppend for logged databases (so CSN order equals log order) or
//     directly in Commit for unlogged ones — while the writer still
//     holds its exclusive relation locks.  Aborted transactions never
//     publish, so chains contain only committed versions.
//
//   - Secondary indexes keep a companion history tree (index.hist) of
//     retired keys: updateRow/deleteRow record the outgoing tuple's key
//     at operation time.  A snapshot index scan merges the live tree
//     with the history over the requested range and verifies each
//     candidate by re-deriving the visible version's key, which filters
//     uncommitted inserts, superseded keys, and abort debris alike.
//
//   - Old versions are reclaimed by a vacuum whose horizon is the
//     registry watermark (the oldest pinned CSN): amortized every
//     vacuumEvery publishes, when the last snapshot closes over a
//     backlog, or explicitly via DB.Vacuum.
const liveCSN = ^uint64(0)

// vacuumEvery is how many published commits accumulate between
// automatic vacuum passes.
const vacuumEvery = 256

// rowVersion is one committed state of a row, visible to snapshots in
// [begin, end).  end == liveCSN while the version is current.
type rowVersion struct {
	begin, end uint64
	tuple      value.Tuple
	prev       *rowVersion // next older version
}

// verOpKind says how a committed write changes a row's version chain.
type verOpKind uint8

const (
	verAdd verOpKind = iota // new row
	verSet                  // replaced tuple
	verDel                  // deleted row
)

// verOp is one buffered version-chain mutation, stamped with the commit
// CSN at publish time.
type verOp struct {
	op  verOpKind
	rel string
	id  RowID
	t   value.Tuple // committed tuple for add/set; nil for del
}

// publish stamps a committed transaction's writes with the next CSN.
// Called at the commit point, before the writer's locks are released,
// so no conflicting writer can publish in between: CSN order is commit
// order (and, on logged databases, WAL append order).
func (db *DB) publish(vops []verOp) {
	if len(vops) == 0 {
		return
	}
	db.snaps.Publish(func(c uint64) {
		for i := range vops {
			if r := db.Relation(vops[i].rel); r != nil {
				r.applyVersion(c, &vops[i])
			}
			// Stamp the checkpoint dirty set inside the publish callback:
			// it runs before the registry advances to CSN c, so a fuzzy
			// checkpoint that pins CSN C afterwards can trust that every
			// commit at or below C has already stamped (ckpt.go).  vops
			// are grouped by relation, so dedup against the neighbor.
			if i == 0 || vops[i].rel != vops[i-1].rel {
				db.markDirty(vops[i].rel, c)
			}
		}
	})
	if db.pubCount.Add(1)%vacuumEvery == 0 {
		db.vacuumAsync()
	}
}

// applyVersion applies one committed write to the version chain at CSN c.
func (r *Relation) applyVersion(c uint64, op *verOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.vers[op.id]
	if old != nil && old.end == liveCSN {
		old.end = c
	}
	switch op.op {
	case verAdd, verSet:
		r.vers[op.id] = &rowVersion{begin: c, end: liveCSN, tuple: op.t, prev: old}
	case verDel:
		// The closed-off old version stays reachable until vacuumed.
	}
	r.verDirty[op.id] = struct{}{}
}

// seedVersions rebuilds the version store from the recovered heap: one
// base version per row at CSN 0, empty history trees.  Recovery replay
// goes through the ordinary row mutators, which leave behind history
// entries and no chains; this resets both.
func (db *DB) seedVersions() {
	for _, name := range db.Relations() {
		if r := db.Relation(name); r != nil {
			r.seedVersions()
		}
	}
}

func (r *Relation) seedVersions() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vers = make(map[RowID]*rowVersion, len(r.rows))
	for id, t := range r.rows {
		r.vers[id] = &rowVersion{begin: 0, end: liveCSN, tuple: t}
	}
	r.verDirty = make(map[RowID]struct{})
	for _, ix := range r.indexes {
		ix.hist = nil
		ix.createdAt = 0
	}
}

// snapKey is the history-tree key for tuple t of row id: the index key
// always suffixed with the row id, so versions of distinct rows that
// shared a unique key over time remain distinct entries.
func (ix *index) snapKey(id RowID, t value.Tuple) []byte {
	var k []byte
	for _, c := range ix.cols {
		k = value.AppendKey(k, t[c])
	}
	return appendRowID(k, id)
}

// retire records the outgoing tuple's key in the index history so
// snapshot scans can still find the row under its old key.  Called from
// deleteRow/updateRow under r.mu; entries that never correspond to a
// committed version (aborted writes, rollback compensation) are inert —
// candidate verification rejects them — and the vacuum sweeps them out.
func (ix *index) retire(id RowID, old value.Tuple) {
	if ix.hist == nil {
		ix.hist = btree.New()
	}
	ix.hist.Set(ix.snapKey(id, old), id)
}

// setIndexFloor records the first CSN the named index can serve (set by
// CreateIndex right after the backfill).
func (r *Relation) setIndexFloor(name string, csn uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix := r.findIndex(name); ix != nil {
		ix.createdAt = csn
	}
}

// snapVisibleLocked returns the tuple of row id visible at CSN at, or
// nil.  Caller holds r.mu (either mode).
func (r *Relation) snapVisibleLocked(id RowID, at uint64) value.Tuple {
	v := r.vers[id]
	for v != nil && v.begin > at {
		v = v.prev
	}
	if v != nil && v.end > at {
		return v.tuple
	}
	return nil
}

// snapScan iterates the rows visible at CSN at in row-id order,
// returning the number of rows seen.  The visible set is collected
// under a brief read lock and emitted outside it.
func (r *Relation) snapScan(at uint64, fn func(id RowID, t value.Tuple) bool) uint64 {
	type pair struct {
		id RowID
		t  value.Tuple
	}
	r.mu.RLock()
	out := make([]pair, 0, len(r.vers))
	for id, v := range r.vers {
		for v != nil && v.begin > at {
			v = v.prev
		}
		if v != nil && v.end > at {
			out = append(out, pair{id, v.tuple})
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	var n uint64
	for _, p := range out {
		n++
		if !fn(p.id, p.t) {
			break
		}
	}
	return n
}

// snapCand is one candidate row of a snapshot index scan: the sort key
// (as the live tree orders it), the row, and its visible tuple.
type snapCand struct {
	key []byte
	id  RowID
	t   value.Tuple
}

// snapRange iterates rows visible at CSN at whose index key falls in
// [lo, hi), in key order (descending with reverse).  Bounds have the
// same semantics as ScanRange on the same index.  It merges the live
// tree with the key history, verifying every candidate against the
// visible version, then emits the deduplicated, sorted result outside
// the lock.
func (r *Relation) snapRange(indexName string, at uint64, lo, hi []byte, reverse bool, fn func(id RowID, t value.Tuple) bool) (uint64, error) {
	r.mu.RLock()
	ix := r.findIndex(indexName)
	if ix == nil {
		r.mu.RUnlock()
		return 0, fmt.Errorf("storage: no index %q on %s", indexName, r.name)
	}
	if at < ix.createdAt || r.deferred {
		// The index postdates the snapshot (or maintenance is deferred for
		// a bulk load): its trees cannot cover keys retired before it
		// existed.  Derive the range from the version store instead.
		cands := r.snapRangeFallbackLocked(ix, at, lo, hi)
		r.mu.RUnlock()
		return emitCands(cands, reverse, fn), nil
	}
	var cands []snapCand
	// A row can surface from both the live tree and the key history, but
	// only under its visible version's key — so one admitted candidate
	// per id, and the dedup is a set lookup, not a slice scan.
	seen := make(map[RowID]struct{})
	consider := func(key []byte, id RowID) {
		if _, dup := seen[id]; dup {
			return
		}
		t := r.snapVisibleLocked(id, at)
		if t == nil {
			return
		}
		want := ix.snapKey(id, t)
		if !bytes.Equal(want, key) {
			return
		}
		seen[id] = struct{}{}
		cands = append(cands, snapCand{key: key, id: id, t: t})
	}
	ix.tree.Ascend(lo, hi, func(key []byte, id uint64) bool {
		k := key
		if ix.spec.Unique {
			k = appendRowID(append([]byte(nil), key...), id)
		}
		consider(k, id)
		return true
	})
	if ix.hist != nil {
		ix.hist.Ascend(lo, hi, func(key []byte, id uint64) bool {
			consider(append([]byte(nil), key...), id)
			return true
		})
	}
	r.mu.RUnlock()
	return emitCands(cands, reverse, fn), nil
}

// snapRangeFallbackLocked computes a snapshot index range purely from
// version chains (used when the index is newer than the snapshot).  The
// sort/bound key mirrors what the live tree would hold: the encoded
// columns, row-id-suffixed only for non-unique indexes.
func (r *Relation) snapRangeFallbackLocked(ix *index, at uint64, lo, hi []byte) []snapCand {
	var cands []snapCand
	for id := range r.vers {
		t := r.snapVisibleLocked(id, at)
		if t == nil {
			continue
		}
		key := ix.key(id, t)
		if lo != nil && bytes.Compare(key, lo) < 0 {
			continue
		}
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			continue
		}
		if ix.spec.Unique {
			key = appendRowID(key, id)
		}
		cands = append(cands, snapCand{key: key, id: id, t: t})
	}
	return cands
}

func emitCands(cands []snapCand, reverse bool, fn func(id RowID, t value.Tuple) bool) uint64 {
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i].key, cands[j].key) < 0 })
	var n uint64
	if reverse {
		for i := len(cands) - 1; i >= 0; i-- {
			n++
			if !fn(cands[i].id, cands[i].t) {
				break
			}
		}
		return n
	}
	for _, c := range cands {
		n++
		if !fn(c.id, c.t) {
			break
		}
	}
	return n
}

// Snap is a pinned read-only view of the database at one CSN.  Its
// reads acquire no locks and are consistent with each other: they all
// observe exactly the transactions committed at or before the pinned
// CSN, in commit order.  Close it promptly — an open snapshot holds
// back version garbage collection.
type Snap struct {
	db  *DB
	csn uint64
	pin interface{ Close() }
}

// BeginSnapshot pins the current commit sequence number and returns a
// lock-free read view.  The context only gates entry; the snapshot
// lives until Close.
func (db *DB) BeginSnapshot(ctx context.Context) (*Snap, error) {
	pin, err := db.snaps.BeginSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	return &Snap{db: db, csn: pin.CSN(), pin: pin}, nil
}

// CSN returns the snapshot's pinned commit sequence number.
func (s *Snap) CSN() uint64 { return s.csn }

// Close unpins the snapshot and records how many commits it aged past
// (snap.csn.lag).  If it was the last open snapshot and a vacuum
// backlog accumulated, version reclamation is kicked off.
func (s *Snap) Close() {
	if s == nil || s.pin == nil {
		return
	}
	db := s.db
	db.m.snapCSNLag.Observe(int64(db.snaps.Last() - s.csn))
	s.pin.Close()
	s.pin = nil
	if db.snaps.Live() == 0 && db.pubCount.Load()-db.lastVacAt.Load() >= vacuumEvery {
		db.vacuumAsync()
	}
}

// Scan iterates the relation's rows visible in the snapshot, in row-id
// order.
func (s *Snap) Scan(relName string, fn func(id RowID, t value.Tuple) bool) error {
	r := s.db.Relation(relName)
	if r == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	n := r.snapScan(s.csn, fn)
	s.db.m.snapReads.Add(n)
	s.db.m.rowsRead.Add(n)
	return nil
}

// IndexRange iterates visible rows of the named index in key order over
// [lo, hi) of encoded keys (descending with reverse); nil bounds mean
// unbounded.  Bound semantics match Tx.IndexRange.
func (s *Snap) IndexRange(relName, indexName string, lo, hi []byte, reverse bool, fn func(id RowID, t value.Tuple) bool) error {
	r := s.db.Relation(relName)
	if r == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	n, err := r.snapRange(indexName, s.csn, lo, hi, reverse, fn)
	s.db.m.snapReads.Add(n)
	s.db.m.rowsRead.Add(n)
	return err
}

// Get returns the tuple of row id visible in the snapshot.
func (s *Snap) Get(relName string, id RowID) (value.Tuple, bool) {
	r := s.db.Relation(relName)
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	t := r.snapVisibleLocked(id, s.csn)
	r.mu.RUnlock()
	if t == nil {
		return nil, false
	}
	s.db.m.snapReads.Inc()
	s.db.m.rowsRead.Inc()
	return t, true
}

// Vacuum reclaims versions and history entries invisible below the
// current watermark (the oldest pinned snapshot CSN, or the latest CSN
// when no snapshot is open) and returns how many were reclaimed.
// Automatic passes run amortized behind commits; tests and operators
// call this directly.
func (db *DB) Vacuum() int {
	db.vacMu.Lock()
	defer db.vacMu.Unlock()
	return db.vacuum()
}

// vacuumAsync elects at most one background vacuum at a time; callers
// on the commit path must not wait for it.
func (db *DB) vacuumAsync() {
	if !db.vacMu.TryLock() {
		return
	}
	go func() {
		defer db.vacMu.Unlock()
		db.vacuum()
	}()
}

func (db *DB) vacuum() int {
	db.lastVacAt.Store(db.pubCount.Load())
	w := db.snaps.Watermark()
	total := 0
	for _, name := range db.Relations() {
		if r := db.Relation(name); r != nil {
			total += r.vacuum(w)
		}
	}
	if total > 0 {
		db.m.snapGCReclaimed.Add(uint64(total))
	}
	return total
}

// vacuum trims the relation's version chains and history trees against
// watermark w.  A version dead at w (end <= w) can never be read again:
// every open snapshot is pinned at or after w, and new snapshots pin at
// or after it too.
func (r *Relation) vacuum(w uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	reclaimed := 0
	for id := range r.verDirty {
		head := r.vers[id]
		if head == nil {
			delete(r.verDirty, id)
			continue
		}
		// Find the newest version visible at the watermark; everything
		// older is unreachable by any snapshot at or after w.
		var parent *rowVersion
		n := head
		for n != nil && n.begin > w {
			parent, n = n, n.prev
		}
		if n != nil {
			for p := n.prev; p != nil; p = p.prev {
				reclaimed++
			}
			n.prev = nil
			if n.end <= w {
				// Dead at the watermark: drop it from the chain.
				if parent == nil {
					delete(r.vers, id)
				} else {
					parent.prev = nil
				}
				reclaimed++
			}
		}
		if h := r.vers[id]; h == nil || (h.prev == nil && h.end == liveCSN) {
			delete(r.verDirty, id)
		}
	}
	for _, ix := range r.indexes {
		if ix.hist == nil || ix.hist.Len() == 0 {
			continue
		}
		var doomed [][]byte
		ix.hist.Ascend(nil, nil, func(k []byte, id uint64) bool {
			if !r.histNeededLocked(ix, k, id) {
				doomed = append(doomed, append([]byte(nil), k...))
			}
			return true
		})
		for _, k := range doomed {
			ix.hist.Delete(k)
			reclaimed++
		}
	}
	return reclaimed
}

// histNeededLocked reports whether history entry (k, id) is still load-
// bearing: some version in the row's chain encodes k, and the live tree
// does not already carry it for the same row.
func (r *Relation) histNeededLocked(ix *index, k []byte, id RowID) bool {
	v := r.vers[id]
	if v == nil {
		return false
	}
	if bytes.Equal(ix.snapKey(id, v.tuple), k) {
		// The newest version encodes it; the entry is redundant only if
		// the live tree serves the same key for the same row (an abort
		// restored the key, or an update kept it).
		if tv, ok := ix.tree.Get(ix.key(id, v.tuple)); ok && tv == id {
			return false
		}
		return true
	}
	for v = v.prev; v != nil; v = v.prev {
		if bytes.Equal(ix.snapKey(id, v.tuple), k) {
			return true
		}
	}
	return false
}

// VersionStats reports the version-store footprint of one relation:
// chains with more than one version or a dead head, and history-tree
// entries.  Tests use it to prove the GC watermark reclaims.
func (r *Relation) VersionStats() (chains, oldVersions, histEntries int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, v := range r.vers {
		chains++
		for p := v.prev; p != nil; p = p.prev {
			oldVersions++
		}
		if v.end != liveCSN {
			oldVersions++
		}
	}
	for _, ix := range r.indexes {
		if ix.hist != nil {
			histEntries += ix.hist.Len()
		}
	}
	return
}
