package storage

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/value"
	"repro/internal/wal"
)

// Replica-mode storage: the engine half of WAL-shipping replication
// (internal/repl owns the transport and lifecycle).  A replica-mode DB
// never runs user transactions; its state advances only through
// ApplyShipped, which gives shipped records durable receipt in the
// replica's own log before applying them through the same idempotent
// path crash recovery uses.  Snapshot reads (BeginSnapshot) work
// normally and observe exactly the applied prefix: each committed
// transaction publishes one CSN, inside the apply lock, in leader log
// order.

// ErrReplica is returned by mutating operations on a replica-mode
// database.  Writes belong on the leader; the replica's state advances
// only through shipped WAL records.
var ErrReplica = errors.New("storage: replica is apply-only (writes arrive via WAL shipping)")

// The fixed file names of a database directory.  Replication bootstrap
// builds a replica directory by copying the leader's checkpoint image —
// the manifest plus the segment files it names (segment.go), or a
// legacy monolithic snapshot under SnapshotFileName — and removing any
// stale WALFileName.
const (
	WALFileName      = "mdm.wal"
	SnapshotFileName = "mdm.snapshot"
	ManifestFileName = "mdm.manifest"
)

// IsReplica reports whether the database is in apply-only replica mode.
func (db *DB) IsReplica() bool { return db.opts.Replica }

// Dir returns the database directory ("" for in-memory databases).
func (db *DB) Dir() string { return db.opts.Dir }

// FS returns the filesystem the database performs durable I/O through.
func (db *DB) FS() fault.FS { return db.fs }

// LastCSN returns the highest published commit sequence number — on a
// replica, the CSN its snapshot reads serve.
func (db *DB) LastCSN() uint64 { return db.snaps.Last() }

// SetOnSync installs fn as the WAL post-fsync ship hook (see
// wal.GroupCommitter.SetOnSync).  The pipeline must be quiesced: call
// it from inside a CheckpointWith attach hook, or before concurrent
// use.  Only a logged, non-replica database can ship.
func (db *DB) SetOnSync(fn func(recs []*wal.Record)) error {
	if db.committer == nil {
		return errors.New("storage: only a durable, logged leader can ship its WAL")
	}
	db.committer.SetOnSync(fn)
	return nil
}

// CheckpointWith checkpoints and runs attach inside the exclusive
// section, after the checkpoint image is durable and the log is reset,
// with no append in flight.  Replication uses it to bootstrap a replica
// without loss or duplication: attach copies the image (it receives the
// manifest path — or the monolithic snapshot path under FullSnapshots)
// and registers the replica's stream in the same quiesced instant, so
// the image plus every record shipped afterwards is exactly the
// database.
func (db *DB) CheckpointWith(attach func(checkpointPath string) error) error {
	if db.committer == nil {
		return errors.New("storage: only a durable, logged leader can ship its WAL")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointWith(attach)
}

// ApplyShipped ingests one shipped batch: every record is appended to
// the replica's own log and fsynced (durable receipt — the caller may
// ack the leader once ApplyShipped returns), then applied to memory via
// the idempotent replay path, publishing one CSN per committed
// transaction so concurrent snapshot reads move atomically from one
// applied prefix to the next.  Batches must arrive in ship order; the
// apply lock serializes callers.
func (db *DB) ApplyShipped(recs []*wal.Record) error {
	if !db.opts.Replica {
		return errors.New("storage: ApplyShipped requires replica mode")
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	if cause := db.ReadOnlyCause(); cause != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, cause)
	}
	for _, r := range recs {
		if _, err := db.log.Append(r); err != nil {
			db.degrade(err)
			return err
		}
	}
	if err := db.log.Sync(); err != nil {
		db.degrade(err)
		return err
	}
	if db.logic != nil {
		// Failpoint seam between durable receipt and memory apply: a
		// crash here must recover the batch from the replica's own log.
		if err := db.logic("repl.apply"); err != nil {
			db.degrade(err)
			return err
		}
	}
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.Type == wal.RecCommit {
			committed[r.TxID] = true
		}
	}
	pending := make(map[uint64][]verOp)
	for _, r := range recs {
		switch r.Type {
		case wal.RecBegin, wal.RecAbort, wal.RecCheckpoint:
		case wal.RecCommit:
			if vops := pending[r.TxID]; len(vops) > 0 {
				db.publish(vops)
				delete(pending, r.TxID)
			}
		case wal.RecInsert, wal.RecDelete, wal.RecUpdate:
			// The shipper hands whole fsync rounds to the transport and
			// rounds consume whole commit batches, so a data record
			// without its commit means a torn shipment, not a slow one.
			if !committed[r.TxID] {
				err := fmt.Errorf("storage: shipped batch tears transaction %d (data without commit)", r.TxID)
				db.degrade(err)
				return err
			}
			vop, err := db.applyRecord(r)
			if err != nil {
				db.degrade(err)
				return err
			}
			if vop != nil {
				pending[r.TxID] = append(pending[r.TxID], *vop)
			}
		default: // schema records: apply unconditionally, no version
			if _, err := db.applyRecord(r); err != nil {
				db.degrade(err)
				return err
			}
		}
	}
	if db.opts.CheckpointBytes > 0 && db.log.Size() >= db.opts.CheckpointBytes {
		return db.replicaCheckpointLocked(nil)
	}
	return nil
}

// replicaCheckpointLocked checkpoints a replica and truncates its log.
// Caller holds db.applyMu, so no apply is in flight; there is no commit
// pipeline to drain, so the segmented install needs no fuzzy phase —
// every relation the shipped stream dirtied (ApplyShipped force-stamps
// via applyRecord) is rewritten, every other segment is reused.
// Failure semantics mirror the leader checkpoint: a failed segment or
// manifest write leaves the old image + log intact, a failed reset or
// directory sync degrades.
func (db *DB) replicaCheckpointLocked(attach func(string) error) error {
	if cause := db.ReadOnlyCause(); cause != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, cause)
	}
	start := time.Now()
	defer func() { db.m.checkpoint.ObserveSince(start) }()
	if db.opts.FullSnapshots {
		stallStart := time.Now()
		defer func() { db.m.ckptStall.Observe(int64(time.Since(stallStart))) }()
		return db.installFullSnapshot(attach)
	}
	p := db.newCkptPlan(attach)
	stallStart := time.Now()
	defer func() { db.m.ckptStall.Observe(int64(time.Since(stallStart))) }()
	return db.installCheckpoint(p)
}

// ContentHash returns a deterministic digest of the database's logical
// content: every relation's name, schema, index definitions (sorted by
// name), and rows (sorted by id).  Node-local bookkeeping — sequence
// counters and row-id high-water marks — is deliberately excluded,
// because it is not WAL-replicated and legitimately diverges between a
// leader and its replicas.  Replication tests use equal hashes as the
// definition of converged.
func (db *DB) ContentHash() string {
	h := sha256.New()
	names := db.Relations()
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		r := db.Relation(name)
		if r == nil {
			continue
		}
		r.mu.RLock()
		buf = appendString(buf[:0], r.name)
		buf = binary.AppendUvarint(buf, uint64(r.schema.Len()))
		for i := 0; i < r.schema.Len(); i++ {
			f := r.schema.Field(i)
			buf = appendString(buf, f.Name)
			buf = append(buf, byte(f.Kind))
			buf = appendString(buf, f.RefType)
		}
		specs := make([]IndexSpec, 0, len(r.indexes))
		for _, ix := range r.indexes {
			specs = append(specs, ix.spec)
		}
		sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
		buf = binary.AppendUvarint(buf, uint64(len(specs)))
		for _, spec := range specs {
			buf = appendString(buf, spec.Name)
			if spec.Unique {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = binary.AppendUvarint(buf, uint64(len(spec.Columns)))
			for _, c := range spec.Columns {
				buf = appendString(buf, c)
			}
		}
		ids := make([]RowID, 0, len(r.rows))
		for id := range r.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		h.Write(buf)
		for _, id := range ids {
			buf = binary.AppendUvarint(buf[:0], id)
			buf = value.AppendTuple(buf, r.rows[id])
			h.Write(buf)
		}
		r.mu.RUnlock()
	}
	return hex.EncodeToString(h.Sum(nil))
}
