package storage

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/value"
)

func mustTx(t *testing.T, db *DB, fn func(tx *Tx)) {
	t.Helper()
	tx := db.Begin()
	fn(tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func snapRows(t *testing.T, s *Snap, rel string) map[RowID]int64 {
	t.Helper()
	out := map[RowID]int64{}
	if err := s.Scan(rel, func(id RowID, tu value.Tuple) bool {
		out[id] = tu[1].AsInt()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSnapshotScanIsolation: a snapshot keeps seeing the state at its
// pinned CSN across later updates, deletes, and inserts, while a fresh
// snapshot sees the new state.
func TestSnapshotScanIsolation(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	var id1, id2 RowID
	mustTx(t, db, func(tx *Tx) {
		id1, _ = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("c4")})
		id2, _ = tx.Insert("NOTE", value.Tuple{value.Int(2), value.Int(62), value.Str("d4")})
	})

	old, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	mustTx(t, db, func(tx *Tx) {
		if err := tx.Update("NOTE", id1, value.Tuple{value.Int(1), value.Int(72), value.Str("c5")}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Delete("NOTE", id2); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Insert("NOTE", value.Tuple{value.Int(3), value.Int(64), value.Str("e4")}); err != nil {
			t.Fatal(err)
		}
	})

	got := snapRows(t, old, "NOTE")
	if len(got) != 2 || got[id1] != 60 || got[id2] != 62 {
		t.Fatalf("old snapshot rows = %v", got)
	}
	if tu, ok := old.Get("NOTE", id2); !ok || tu[1].AsInt() != 62 {
		t.Fatalf("old snapshot Get deleted row = %v %v", tu, ok)
	}

	fresh, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	got = snapRows(t, fresh, "NOTE")
	if len(got) != 2 || got[id1] != 72 {
		t.Fatalf("fresh snapshot rows = %v", got)
	}
	if _, ok := fresh.Get("NOTE", id2); ok {
		t.Fatal("fresh snapshot sees deleted row")
	}
}

// TestSnapshotIgnoresUncommittedAndAborted: in-flight writes are
// invisible (they publish only at commit), and aborted transactions
// never publish at all.
func TestSnapshotIgnoresUncommittedAndAborted(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	var id RowID
	mustTx(t, db, func(tx *Tx) {
		id, _ = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("c4")})
	})

	tx := db.Begin()
	if err := tx.Update("NOTE", id, value.Tuple{value.Int(1), value.Int(99), value.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("NOTE", value.Tuple{value.Int(2), value.Int(61), value.Str("cs4")}); err != nil {
		t.Fatal(err)
	}
	// Pinned while tx is in flight: sees only the committed base row.
	mid, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := snapRows(t, mid, "NOTE")
	mid.Close()
	if len(got) != 1 || got[id] != 60 {
		t.Fatalf("snapshot saw uncommitted state: %v", got)
	}
	tx.Abort()

	after, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	got = snapRows(t, after, "NOTE")
	if len(got) != 1 || got[id] != 60 {
		t.Fatalf("snapshot after abort: %v", got)
	}
}

func pitchRange(lo, hi int64) (lb, ub []byte) {
	return value.AppendKey(nil, value.Int(lo)), value.AppendKey(nil, value.Int(hi))
}

// TestSnapshotIndexRange: a snapshot index scan finds rows under the
// keys they had at the pinned CSN — updated rows under their old key,
// never the new one — for unique and non-unique indexes alike.
func TestSnapshotIndexRange(t *testing.T) {
	for _, unique := range []bool{false, true} {
		t.Run(fmt.Sprintf("unique=%v", unique), func(t *testing.T) {
			db := memDB(t)
			db.CreateRelation("NOTE", noteSchema())
			if err := db.CreateIndex("NOTE", IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}, Unique: unique}); err != nil {
				t.Fatal(err)
			}
			var id RowID
			mustTx(t, db, func(tx *Tx) {
				id, _ = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("c4")})
				if _, err := tx.Insert("NOTE", value.Tuple{value.Int(2), value.Int(64), value.Str("e4")}); err != nil {
					t.Fatal(err)
				}
			})
			old, err := db.BeginSnapshot(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			defer old.Close()
			mustTx(t, db, func(tx *Tx) {
				if err := tx.Update("NOTE", id, value.Tuple{value.Int(1), value.Int(72), value.Str("c5")}); err != nil {
					t.Fatal(err)
				}
			})

			scan := func(s *Snap, lo, hi int64) []int64 {
				lb, ub := pitchRange(lo, hi)
				var pitches []int64
				if err := s.IndexRange("NOTE", "by_pitch", lb, ub, false, func(_ RowID, tu value.Tuple) bool {
					pitches = append(pitches, tu[1].AsInt())
					return true
				}); err != nil {
					t.Fatal(err)
				}
				return pitches
			}
			if got := scan(old, 0, 128); len(got) != 2 || got[0] != 60 || got[1] != 64 {
				t.Fatalf("old snapshot range = %v", got)
			}
			if got := scan(old, 70, 128); len(got) != 0 {
				t.Fatalf("old snapshot sees post-snapshot key: %v", got)
			}
			fresh, err := db.BeginSnapshot(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			if got := scan(fresh, 0, 128); len(got) != 2 || got[0] != 64 || got[1] != 72 {
				t.Fatalf("fresh snapshot range = %v", got)
			}
			// Reverse order too.
			lb, ub := pitchRange(0, 128)
			var rev []int64
			if err := fresh.IndexRange("NOTE", "by_pitch", lb, ub, true, func(_ RowID, tu value.Tuple) bool {
				rev = append(rev, tu[1].AsInt())
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(rev) != 2 || rev[0] != 72 || rev[1] != 64 {
				t.Fatalf("reverse range = %v", rev)
			}
		})
	}
}

// TestSnapshotIndexCreatedAfterPin: an index created after the snapshot
// was pinned cannot serve it from its trees; the scan falls back to the
// version store and still returns the right rows in key order.
func TestSnapshotIndexCreatedAfterPin(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	mustTx(t, db, func(tx *Tx) {
		for i, p := range []int64{64, 60, 62} {
			if _, err := tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(p), value.Str("n")}); err != nil {
				t.Fatal(err)
			}
		}
	})
	old, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}}); err != nil {
		t.Fatal(err)
	}
	lb, ub := pitchRange(0, 128)
	var pitches []int64
	if err := old.IndexRange("NOTE", "by_pitch", lb, ub, false, func(_ RowID, tu value.Tuple) bool {
		pitches = append(pitches, tu[1].AsInt())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pitches) != 3 || pitches[0] != 60 || pitches[1] != 62 || pitches[2] != 64 {
		t.Fatalf("fallback range = %v", pitches)
	}
}

// TestVacuumWatermark: an open snapshot holds back reclamation of the
// versions it can still see; once it closes, Vacuum trims chains back
// to a single live version and drains the index history.
func TestVacuumWatermark(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}}); err != nil {
		t.Fatal(err)
	}
	var id RowID
	mustTx(t, db, func(tx *Tx) {
		id, _ = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("c4")})
	})
	snap, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		mustTx(t, db, func(tx *Tx) {
			if err := tx.Update("NOTE", id, value.Tuple{value.Int(1), value.Int(60 + i), value.Str("c4")}); err != nil {
				t.Fatal(err)
			}
		})
	}
	rel := db.Relation("NOTE")
	if _, old, _ := rel.VersionStats(); old < 5 {
		t.Fatalf("expected >=5 old versions before vacuum, have %d", old)
	}

	// Pinned snapshot: the version it reads must survive any vacuum.
	db.Vacuum()
	if tu, ok := snap.Get("NOTE", id); !ok || tu[1].AsInt() != 60 {
		t.Fatalf("pinned snapshot lost its version after vacuum: %v %v", tu, ok)
	}
	lb, ub := pitchRange(60, 61)
	n := 0
	if err := snap.IndexRange("NOTE", "by_pitch", lb, ub, false, func(RowID, value.Tuple) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("pinned snapshot index lookup found %d rows", n)
	}

	snap.Close()
	if got := db.Vacuum(); got == 0 {
		t.Fatal("vacuum reclaimed nothing after last snapshot closed")
	}
	chains, old, hist := rel.VersionStats()
	if chains != 1 || old != 0 || hist != 0 {
		t.Fatalf("after full vacuum: chains=%d old=%d hist=%d", chains, old, hist)
	}
	// The live state is untouched.
	fresh, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if tu, ok := fresh.Get("NOTE", id); !ok || tu[1].AsInt() != 65 {
		t.Fatalf("live row after vacuum: %v %v", tu, ok)
	}
}

// TestVacuumReclaimsDeletedRows: a deleted row's chain disappears
// entirely once no snapshot can see it.
func TestVacuumReclaimsDeletedRows(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	var id RowID
	mustTx(t, db, func(tx *Tx) {
		id, _ = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("c4")})
	})
	mustTx(t, db, func(tx *Tx) {
		if err := tx.Delete("NOTE", id); err != nil {
			t.Fatal(err)
		}
	})
	db.Vacuum()
	rel := db.Relation("NOTE")
	chains, old, _ := rel.VersionStats()
	if chains != 0 || old != 0 {
		t.Fatalf("deleted row not reclaimed: chains=%d old=%d", chains, old)
	}
}

// TestSnapshotMultiRowAtomicity: a snapshot sees all of a committed
// transaction's writes or none of them, even while commits race.
func TestSnapshotMultiRowAtomicity(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	const rows = 4
	ids := make([]RowID, rows)
	mustTx(t, db, func(tx *Tx) {
		for i := range ids {
			ids[i], _ = tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(0), value.Str("n")})
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := int64(1); v <= 200; v++ {
			tx := db.Begin()
			for _, id := range ids {
				if err := tx.Update("NOTE", id, value.Tuple{value.Int(0), value.Int(v), value.Str("n")}); err != nil {
					tx.Abort()
					return
				}
			}
			if err := tx.Commit(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 400; i++ {
		s, err := db.BeginSnapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int64]int{}
		s.Scan("NOTE", func(_ RowID, tu value.Tuple) bool {
			seen[tu[1].AsInt()]++
			return true
		})
		s.Close()
		if len(seen) != 1 {
			t.Fatalf("snapshot observed a torn commit: %v", seen)
		}
		for _, n := range seen {
			if n != rows {
				t.Fatalf("snapshot missing rows: %v", seen)
			}
		}
	}
	<-done
}
