package storage

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Tx is an in-flight transaction.  All data access goes through a Tx;
// strict two-phase locking at relation granularity provides isolation,
// write-ahead logging provides durability, and an in-memory undo list
// provides atomicity of aborts.
//
// The transaction's redo records are buffered in the Tx (records) and
// submitted to the WAL as one batch at commit, through the group-commit
// pipeline (wal.GroupCommitter): writes never touch the log at
// operation time, aborted transactions never touch it at all, and
// concurrent commits share flushes and fsyncs.
//
// A Tx is not safe for concurrent use by multiple goroutines; each client
// session runs its transactions sequentially (the concurrency is between
// transactions, per §2's multi-client MDM).
type Tx struct {
	db      *DB
	id      uint64
	ctx     context.Context // cancels lock waits; never nil
	done    bool
	undo    []undoRec
	records []*wal.Record // buffered redo records; nil on an unlogged or read-only tx
	vops    []verOp       // buffered version-chain mutations, published at commit (mvcc.go)
}

type undoOp uint8

const (
	undoInsert undoOp = iota // compensate by delete
	undoDelete               // compensate by insert
	undoUpdate               // compensate by restoring old image
)

type undoRec struct {
	op  undoOp
	rel string
	id  RowID
	old value.Tuple
}

// ErrTxDone is returned by operations on a committed or aborted Tx.
var ErrTxDone = errors.New("storage: transaction already finished")

// Begin starts a new transaction.  On a degraded database the
// transaction can still read; any write fails with ErrReadOnly.
func (db *DB) Begin() *Tx { return db.BeginCtx(context.Background()) }

// BeginCtx starts a transaction whose lock waits are bounded by ctx:
// cancellation (or deadline expiry) while blocked on a lock returns
// txn.ErrCanceled from the blocked operation.  The context does not
// otherwise interrupt in-flight work; statement layers check it between
// rows.
func (db *DB) BeginCtx(ctx context.Context) *Tx {
	if ctx == nil {
		ctx = context.Background()
	}
	tx := &Tx{db: db, id: db.ids.Next(), ctx: ctx}
	db.m.begins.Inc()
	return tx
}

// Context returns the context the transaction was begun with.
func (tx *Tx) Context() context.Context { return tx.ctx }

// appendLog routes a schema record (relation/index DDL) through the
// commit pipeline as a single-record batch, so its position in the log
// is ordered with the data batches of transactions that depend on it: a
// relation's create record is enqueued — and therefore appended —
// before any commit batch touching the relation can be.  A failure
// degrades the database; the caller must undo the in-memory schema
// change the record was describing.
func (db *DB) appendLog(r *wal.Record) error {
	if db.committer == nil {
		return nil
	}
	if err := db.writable(); err != nil {
		return err
	}
	b := &wal.Batch{
		Records: []*wal.Record{r},
		OnComplete: func(st wal.BatchState, err error) {
			switch st {
			case wal.BatchAppendFailed, wal.BatchSyncFailed, wal.BatchLost:
				db.degrade(err)
			}
		},
	}
	if err := db.committer.Commit(context.Background(), b); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	return nil
}

// logRecord buffers a redo record in the transaction (prefixed by its
// BEGIN on first use).  No I/O happens until commit.
func (tx *Tx) logRecord(r *wal.Record) {
	if tx.db.committer == nil {
		return
	}
	if len(tx.records) == 0 {
		tx.records = append(tx.records, &wal.Record{Type: wal.RecBegin, TxID: tx.id})
	}
	tx.records = append(tx.records, r)
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.id }

func (tx *Tx) check() error {
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// lock acquires a lock for this transaction, translating deadlock victims
// into an automatic abort.  The wait is bounded by the transaction's
// context (BeginCtx) as well as the manager's wait timeout.
func (tx *Tx) lock(resource string, mode txn.Mode) error {
	if err := tx.db.locks.AcquireCtx(tx.ctx, tx.id, resource, mode); err != nil {
		if errors.Is(err, txn.ErrDeadlock) {
			tx.Abort()
		}
		return err
	}
	return nil
}

// LockExclusive declares write intent on a relation up front: it takes
// the exclusive relation lock before any read.  Read-modify-write
// transactions that Get then Update otherwise upgrade shared to
// exclusive, and two concurrent upgraders on the same relation deadlock
// every time; locking for write first makes such transactions
// wait-only.
func (tx *Tx) LockExclusive(relName string) error {
	if err := tx.check(); err != nil {
		return err
	}
	if _, err := tx.rel(relName); err != nil {
		return err
	}
	return tx.lock(relName, txn.Exclusive)
}

// rel resolves a relation by name.
func (tx *Tx) rel(name string) (*Relation, error) {
	r := tx.db.Relation(name)
	if r == nil {
		return nil, fmt.Errorf("storage: no relation %q", name)
	}
	return r, nil
}

// Insert validates t against the relation schema and inserts it,
// returning the new row id.
func (tx *Tx) Insert(relName string, t value.Tuple) (RowID, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return 0, err
	}
	vt, err := t.Validate(r.schema)
	if err != nil {
		return 0, fmt.Errorf("storage: insert into %s: %w", relName, err)
	}
	if err := tx.db.writable(); err != nil {
		return 0, err
	}
	if err := tx.lock(relName, txn.Exclusive); err != nil {
		return 0, err
	}
	id, err := r.insertRow(0, vt)
	if err != nil {
		return 0, err
	}
	tx.logRecord(&wal.Record{Type: wal.RecInsert, TxID: tx.id, Relation: relName, RowID: id, New: vt})
	tx.undo = append(tx.undo, undoRec{op: undoInsert, rel: relName, id: id})
	tx.vops = append(tx.vops, verOp{op: verAdd, rel: relName, id: id, t: vt})
	tx.db.m.rowsWritten.Inc()
	return id, nil
}

// Delete removes row id from the relation.
func (tx *Tx) Delete(relName string, id RowID) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	if err := tx.db.writable(); err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Exclusive); err != nil {
		return err
	}
	old, err := r.deleteRow(id)
	if err != nil {
		return err
	}
	tx.logRecord(&wal.Record{Type: wal.RecDelete, TxID: tx.id, Relation: relName, RowID: id, Old: old})
	tx.undo = append(tx.undo, undoRec{op: undoDelete, rel: relName, id: id, old: old})
	tx.vops = append(tx.vops, verOp{op: verDel, rel: relName, id: id})
	tx.db.m.rowsWritten.Inc()
	return nil
}

// Update replaces row id with t.
func (tx *Tx) Update(relName string, id RowID, t value.Tuple) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	vt, err := t.Validate(r.schema)
	if err != nil {
		return fmt.Errorf("storage: update %s: %w", relName, err)
	}
	if err := tx.db.writable(); err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Exclusive); err != nil {
		return err
	}
	old, err := r.updateRow(id, vt)
	if err != nil {
		return err
	}
	tx.logRecord(&wal.Record{Type: wal.RecUpdate, TxID: tx.id, Relation: relName, RowID: id, Old: old, New: vt})
	tx.undo = append(tx.undo, undoRec{op: undoUpdate, rel: relName, id: id, old: old})
	tx.vops = append(tx.vops, verOp{op: verSet, rel: relName, id: id, t: vt})
	tx.db.m.rowsWritten.Inc()
	return nil
}

// UpdateField replaces one attribute of row id.
func (tx *Tx) UpdateField(relName string, id RowID, field string, v value.Value) error {
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	pos, ok := r.schema.Index(field)
	if !ok {
		return fmt.Errorf("storage: %s has no attribute %q", relName, field)
	}
	t, err := tx.Get(relName, id)
	if err != nil {
		return err
	}
	nt := t.Clone()
	nt[pos] = v
	return tx.Update(relName, id, nt)
}

// Get returns the tuple stored under id.
func (tx *Tx) Get(relName string, id RowID) (value.Tuple, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return nil, err
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return nil, err
	}
	t, ok := r.get(id)
	if !ok {
		return nil, fmt.Errorf("storage: %s: no row %d", relName, id)
	}
	tx.db.m.rowsRead.Inc()
	return t, nil
}

// Scan iterates all rows of the relation in row-id order.
func (tx *Tx) Scan(relName string, fn func(id RowID, t value.Tuple) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return err
	}
	var n uint64
	r.scan(func(id RowID, t value.Tuple) bool {
		n++
		return fn(id, t)
	})
	tx.db.m.rowsRead.Add(n)
	return nil
}

// IndexScan iterates rows of the named index in key order over the range
// [lo, hi) of encoded keys; nil bounds mean unbounded.  This is the
// "ordering as a performance optimization" path of §5.2.
func (tx *Tx) IndexScan(relName, indexName string, lo, hi []byte, fn func(id RowID, t value.Tuple) bool) error {
	return tx.IndexRange(relName, indexName, lo, hi, false, fn)
}

// IndexRange is IndexScan with an optional direction: with reverse set
// the range [lo, hi) is visited in descending key order (a backward
// B-tree walk, used by the query planner to satisfy `sort by ... desc`
// from index order).
func (tx *Tx) IndexRange(relName, indexName string, lo, hi []byte, reverse bool, fn func(id RowID, t value.Tuple) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return err
	}
	var n uint64
	err = r.ScanRange(indexName, lo, hi, reverse, func(id RowID, t value.Tuple) bool {
		n++
		return fn(id, t)
	})
	tx.db.m.rowsRead.Add(n)
	return err
}

// IndexPrefixScan iterates rows whose index key starts with the encoded
// prefix of vals (a leading-column equality lookup).
func (tx *Tx) IndexPrefixScan(relName, indexName string, vals value.Tuple, fn func(id RowID, t value.Tuple) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	ix := r.findIndex(indexName)
	if ix == nil {
		return fmt.Errorf("storage: no index %q on %s", indexName, relName)
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return err
	}
	prefix := value.AppendKeyTuple(nil, vals)
	var n uint64
	ix.tree.AscendPrefix(prefix, func(_ []byte, id uint64) bool {
		t, ok := r.get(id)
		if !ok {
			return true
		}
		n++
		return fn(id, t)
	})
	tx.db.m.rowsRead.Add(n)
	return nil
}

// Commit makes the transaction's effects permanent and releases its locks.
//
// The buffered records (BEGIN, the data changes, COMMIT) go to the WAL
// as one batch through the group-commit pipeline.  The transaction's
// locks are released as soon as the batch is appended in log order —
// before the fsync — because any dependent transaction necessarily
// commits later in the same log, and a poisoned flush fails them all.
//
// If the batch cannot be appended, the transaction never reached the
// log: its in-memory effects are rolled back and the error returned.
// If it is appended but the flush fails (SyncCommits), the outcome is
// ambiguous — the records may or may not be on stable storage — so the
// in-memory state keeps the commit, the database degrades to read-only,
// and the error tells the client durability is unknown; a restart
// resolves it from whatever the disk actually holds.
//
// If the transaction's context is canceled while waiting for the flush,
// Commit stops waiting and returns an error wrapping txn.ErrCanceled;
// the batch still flushes in order and its failure handling still runs,
// but this caller no longer learns the outcome.
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.done = true
	tx.db.m.commits.Inc()
	if len(tx.records) == 0 {
		// Read-only transaction — or any transaction on an unlogged
		// database: nothing to flush, so no batch and no fsync, and no
		// reason to fail on a degraded (read-only) database.  Unlogged
		// writes still publish their versions (under the held locks) so
		// snapshot readers see them.
		tx.db.publish(tx.vops)
		tx.db.locks.ReleaseAll(tx.id)
		tx.undo, tx.vops = nil, nil
		return nil
	}
	db, id := tx.db, tx.id
	if err := db.writable(); err != nil {
		tx.rollbackMemory()
		db.locks.ReleaseAll(id)
		tx.undo, tx.records, tx.vops = nil, nil, nil
		return err
	}
	records := append(tx.records, &wal.Record{Type: wal.RecCommit, TxID: id})
	undo, vops := tx.undo, tx.vops
	tx.undo, tx.records, tx.vops = nil, nil, nil
	b := &wal.Batch{
		Records: records,
		Sync:    db.opts.SyncCommits,
		// OnAppend runs on the flush goroutine in log-append order, so
		// publishing here (before the lock release) makes CSN order equal
		// WAL order, and no reader can see the versions before the batch
		// is in the log.
		OnAppend: func() {
			db.publish(vops)
			db.locks.ReleaseAll(id)
		},
		OnComplete: func(st wal.BatchState, err error) {
			// Runs on the flush goroutine whether or not the committer
			// is still waiting, so failure handling cannot be skipped
			// by an abandoned wait.
			switch st {
			case wal.BatchAppendFailed:
				// Certainly not in the log: undo memory, then release.
				// OnAppend never ran, so no versions were published.
				rollbackUndo(db, undo)
				db.degrade(err)
			case wal.BatchSyncFailed, wal.BatchLost:
				// Ambiguous: keep the in-memory commit, stop the world.
				db.degrade(err)
			}
			db.locks.ReleaseAll(id) // no-op after OnAppend already ran
		},
	}
	if err := db.committer.Commit(tx.ctx, b); err != nil {
		if errors.Is(err, wal.ErrAbandoned) {
			return fmt.Errorf("storage: commit %d abandoned, durability unknown: %w (%v)", id, txn.ErrCanceled, err)
		}
		if b.State() == wal.BatchAppendFailed {
			return fmt.Errorf("storage: wal append: %w", err)
		}
		return fmt.Errorf("storage: commit %d durability unknown: %w", id, err)
	}
	db.maybeCheckpoint()
	return nil
}

// rollbackMemory undoes the transaction's in-memory effects in reverse
// order.
func (tx *Tx) rollbackMemory() { rollbackUndo(tx.db, tx.undo) }

// rollbackUndo applies an undo list in reverse.  It is standalone
// (rather than a Tx method) because the commit pipeline must be able to
// roll back a failed batch from the flush goroutine after the Tx's own
// fields have been cleared.
func rollbackUndo(db *DB, undo []undoRec) {
	for i := len(undo) - 1; i >= 0; i-- {
		u := undo[i]
		r := db.Relation(u.rel)
		if r == nil {
			continue
		}
		switch u.op {
		case undoInsert:
			r.deleteRow(u.id) //nolint:errcheck // compensations cannot fail
		case undoDelete:
			r.insertRow(u.id, u.old) //nolint:errcheck
		case undoUpdate:
			r.updateRow(u.id, u.old) //nolint:errcheck
		}
	}
}

// Abort rolls back the transaction's in-memory effects (in reverse
// order) and releases its locks.  Nothing is logged: the redo records
// were only ever buffered in the Tx, so an aborted transaction leaves
// no trace in the WAL.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.m.aborts.Inc()
	tx.rollbackMemory()
	tx.db.locks.ReleaseAll(tx.id)
	tx.undo, tx.records, tx.vops = nil, nil, nil
}

// Run executes fn inside a transaction, committing on nil error and
// aborting otherwise.  Deadlock victims and lock-wait timeouts are
// retried up to three times; client layers (mdm.Session) add further
// retry with backoff on top.
func (db *DB) Run(fn func(tx *Tx) error) error {
	return db.RunCtx(context.Background(), fn)
}

// RunCtx is Run under a context: transactions are begun with BeginCtx
// so blocked lock waits abort with txn.ErrCanceled when ctx is
// canceled, and no retry is attempted once the context is done.
func (db *DB) RunCtx(ctx context.Context, fn func(tx *Tx) error) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("%w: %w", txn.ErrCanceled, ctx.Err())
		}
		tx := db.BeginCtx(ctx)
		err := fn(tx)
		if err == nil {
			return tx.Commit()
		}
		tx.Abort()
		if !errors.Is(err, txn.ErrDeadlock) && !errors.Is(err, txn.ErrTimeout) {
			return err
		}
		lastErr = err
	}
	return lastErr
}
