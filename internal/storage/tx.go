package storage

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Tx is an in-flight transaction.  All data access goes through a Tx;
// strict two-phase locking at relation granularity provides isolation,
// write-ahead logging provides durability, and an in-memory undo list
// provides atomicity of aborts.
//
// A Tx is not safe for concurrent use by multiple goroutines; each client
// session runs its transactions sequentially (the concurrency is between
// transactions, per §2's multi-client MDM).
type Tx struct {
	db   *DB
	id   uint64
	ctx  context.Context // cancels lock waits; never nil
	done bool
	undo []undoRec
}

type undoOp uint8

const (
	undoInsert undoOp = iota // compensate by delete
	undoDelete               // compensate by insert
	undoUpdate               // compensate by restoring old image
)

type undoRec struct {
	op  undoOp
	rel string
	id  RowID
	old value.Tuple
}

// ErrTxDone is returned by operations on a committed or aborted Tx.
var ErrTxDone = errors.New("storage: transaction already finished")

// Begin starts a new transaction.  If the database is degraded the
// BEGIN record is not logged; the transaction can still read, and any
// write will fail with ErrReadOnly.
func (db *DB) Begin() *Tx { return db.BeginCtx(context.Background()) }

// BeginCtx starts a transaction whose lock waits are bounded by ctx:
// cancellation (or deadline expiry) while blocked on a lock returns
// txn.ErrCanceled from the blocked operation.  The context does not
// otherwise interrupt in-flight work; statement layers check it between
// rows.
func (db *DB) BeginCtx(ctx context.Context) *Tx {
	if ctx == nil {
		ctx = context.Background()
	}
	tx := &Tx{db: db, id: db.ids.Next(), ctx: ctx}
	db.m.begins.Inc()
	_ = db.appendLog(&wal.Record{Type: wal.RecBegin, TxID: tx.id})
	return tx
}

// Context returns the context the transaction was begun with.
func (tx *Tx) Context() context.Context { return tx.ctx }

// appendLog writes a record to the WAL if logging is enabled.  A failed
// append poisons the log (wal keeps the sticky error) and degrades the
// database to read-only; the caller must undo any in-memory change the
// record was describing.
func (db *DB) appendLog(r *wal.Record) error {
	if db.log == nil {
		return nil
	}
	if err := db.writable(); err != nil {
		return err
	}
	db.logMu.Lock() // serialize appends; the log buffer is not concurrent-safe
	defer db.logMu.Unlock()
	if _, err := db.log.Append(r); err != nil {
		db.degrade(err)
		return fmt.Errorf("storage: wal append: %w", err)
	}
	return nil
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.id }

func (tx *Tx) check() error {
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// lock acquires a lock for this transaction, translating deadlock victims
// into an automatic abort.  The wait is bounded by the transaction's
// context (BeginCtx) as well as the manager's wait timeout.
func (tx *Tx) lock(resource string, mode txn.Mode) error {
	if err := tx.db.locks.AcquireCtx(tx.ctx, tx.id, resource, mode); err != nil {
		if errors.Is(err, txn.ErrDeadlock) {
			tx.Abort()
		}
		return err
	}
	return nil
}

// rel resolves a relation by name.
func (tx *Tx) rel(name string) (*Relation, error) {
	r := tx.db.Relation(name)
	if r == nil {
		return nil, fmt.Errorf("storage: no relation %q", name)
	}
	return r, nil
}

// Insert validates t against the relation schema and inserts it,
// returning the new row id.
func (tx *Tx) Insert(relName string, t value.Tuple) (RowID, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return 0, err
	}
	vt, err := t.Validate(r.schema)
	if err != nil {
		return 0, fmt.Errorf("storage: insert into %s: %w", relName, err)
	}
	if err := tx.lock(relName, txn.Exclusive); err != nil {
		return 0, err
	}
	id, err := r.insertRow(0, vt)
	if err != nil {
		return 0, err
	}
	if err := tx.db.appendLog(&wal.Record{Type: wal.RecInsert, TxID: tx.id, Relation: relName, RowID: id, New: vt}); err != nil {
		r.deleteRow(id) //nolint:errcheck // compensating an unlogged insert
		return 0, err
	}
	tx.undo = append(tx.undo, undoRec{op: undoInsert, rel: relName, id: id})
	tx.db.m.rowsWritten.Inc()
	return id, nil
}

// Delete removes row id from the relation.
func (tx *Tx) Delete(relName string, id RowID) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Exclusive); err != nil {
		return err
	}
	old, err := r.deleteRow(id)
	if err != nil {
		return err
	}
	if err := tx.db.appendLog(&wal.Record{Type: wal.RecDelete, TxID: tx.id, Relation: relName, RowID: id, Old: old}); err != nil {
		r.insertRow(id, old) //nolint:errcheck // compensating an unlogged delete
		return err
	}
	tx.undo = append(tx.undo, undoRec{op: undoDelete, rel: relName, id: id, old: old})
	tx.db.m.rowsWritten.Inc()
	return nil
}

// Update replaces row id with t.
func (tx *Tx) Update(relName string, id RowID, t value.Tuple) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	vt, err := t.Validate(r.schema)
	if err != nil {
		return fmt.Errorf("storage: update %s: %w", relName, err)
	}
	if err := tx.lock(relName, txn.Exclusive); err != nil {
		return err
	}
	old, err := r.updateRow(id, vt)
	if err != nil {
		return err
	}
	if err := tx.db.appendLog(&wal.Record{Type: wal.RecUpdate, TxID: tx.id, Relation: relName, RowID: id, Old: old, New: vt}); err != nil {
		r.updateRow(id, old) //nolint:errcheck // compensating an unlogged update
		return err
	}
	tx.undo = append(tx.undo, undoRec{op: undoUpdate, rel: relName, id: id, old: old})
	tx.db.m.rowsWritten.Inc()
	return nil
}

// UpdateField replaces one attribute of row id.
func (tx *Tx) UpdateField(relName string, id RowID, field string, v value.Value) error {
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	pos, ok := r.schema.Index(field)
	if !ok {
		return fmt.Errorf("storage: %s has no attribute %q", relName, field)
	}
	t, err := tx.Get(relName, id)
	if err != nil {
		return err
	}
	nt := t.Clone()
	nt[pos] = v
	return tx.Update(relName, id, nt)
}

// Get returns the tuple stored under id.
func (tx *Tx) Get(relName string, id RowID) (value.Tuple, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return nil, err
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return nil, err
	}
	t, ok := r.get(id)
	if !ok {
		return nil, fmt.Errorf("storage: %s: no row %d", relName, id)
	}
	tx.db.m.rowsRead.Inc()
	return t, nil
}

// Scan iterates all rows of the relation in row-id order.
func (tx *Tx) Scan(relName string, fn func(id RowID, t value.Tuple) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return err
	}
	var n uint64
	r.scan(func(id RowID, t value.Tuple) bool {
		n++
		return fn(id, t)
	})
	tx.db.m.rowsRead.Add(n)
	return nil
}

// IndexScan iterates rows of the named index in key order over the range
// [lo, hi) of encoded keys; nil bounds mean unbounded.  This is the
// "ordering as a performance optimization" path of §5.2.
func (tx *Tx) IndexScan(relName, indexName string, lo, hi []byte, fn func(id RowID, t value.Tuple) bool) error {
	return tx.IndexRange(relName, indexName, lo, hi, false, fn)
}

// IndexRange is IndexScan with an optional direction: with reverse set
// the range [lo, hi) is visited in descending key order (a backward
// B-tree walk, used by the query planner to satisfy `sort by ... desc`
// from index order).
func (tx *Tx) IndexRange(relName, indexName string, lo, hi []byte, reverse bool, fn func(id RowID, t value.Tuple) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return err
	}
	var n uint64
	err = r.ScanRange(indexName, lo, hi, reverse, func(id RowID, t value.Tuple) bool {
		n++
		return fn(id, t)
	})
	tx.db.m.rowsRead.Add(n)
	return err
}

// IndexPrefixScan iterates rows whose index key starts with the encoded
// prefix of vals (a leading-column equality lookup).
func (tx *Tx) IndexPrefixScan(relName, indexName string, vals value.Tuple, fn func(id RowID, t value.Tuple) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	r, err := tx.rel(relName)
	if err != nil {
		return err
	}
	ix := r.findIndex(indexName)
	if ix == nil {
		return fmt.Errorf("storage: no index %q on %s", indexName, relName)
	}
	if err := tx.lock(relName, txn.Shared); err != nil {
		return err
	}
	prefix := value.AppendKeyTuple(nil, vals)
	var n uint64
	ix.tree.AscendPrefix(prefix, func(_ []byte, id uint64) bool {
		t, ok := r.get(id)
		if !ok {
			return true
		}
		n++
		return fn(id, t)
	})
	tx.db.m.rowsRead.Add(n)
	return nil
}

// Commit makes the transaction's effects permanent and releases its locks.
//
// If the COMMIT record cannot be appended, the transaction never reached
// the log: its in-memory effects are rolled back and the error returned.
// If the record is appended but the commit fsync fails (SyncCommits),
// the outcome is ambiguous — the record may or may not be on stable
// storage — so the in-memory state keeps the commit, the database
// degrades to read-only, and the error tells the client durability is
// unknown; a restart resolves it from whatever the disk actually holds.
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	tx.done = true
	tx.db.m.commits.Inc()
	if len(tx.undo) == 0 {
		// Read-only transaction: nothing to make durable, so no COMMIT
		// record and no fsync — and no reason to fail on a degraded
		// (read-only) database.
		tx.db.locks.ReleaseAll(tx.id)
		return nil
	}
	if err := tx.db.appendLog(&wal.Record{Type: wal.RecCommit, TxID: tx.id}); err != nil {
		tx.rollbackMemory()
		tx.db.locks.ReleaseAll(tx.id)
		tx.undo = nil
		return err
	}
	if tx.db.opts.SyncCommits && tx.db.log != nil {
		if err := tx.db.log.Sync(); err != nil {
			tx.db.degrade(err)
			tx.db.locks.ReleaseAll(tx.id)
			tx.undo = nil
			return fmt.Errorf("storage: commit %d durability unknown: %w", tx.id, err)
		}
	}
	tx.db.locks.ReleaseAll(tx.id)
	tx.undo = nil
	return tx.db.maybeCheckpoint()
}

// rollbackMemory undoes the transaction's in-memory effects in reverse
// order.
func (tx *Tx) rollbackMemory() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		r := tx.db.Relation(u.rel)
		if r == nil {
			continue
		}
		switch u.op {
		case undoInsert:
			r.deleteRow(u.id) //nolint:errcheck // compensations cannot fail
		case undoDelete:
			r.insertRow(u.id, u.old) //nolint:errcheck
		case undoUpdate:
			r.updateRow(u.id, u.old) //nolint:errcheck
		}
	}
}

// Abort rolls back the transaction's in-memory effects (in reverse
// order), logs the abort, and releases its locks.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.m.aborts.Inc()
	tx.rollbackMemory()
	if len(tx.undo) > 0 {
		_ = tx.db.appendLog(&wal.Record{Type: wal.RecAbort, TxID: tx.id}) // redo-only recovery ignores unfinished txns anyway
	}
	tx.db.locks.ReleaseAll(tx.id)
	tx.undo = nil
}

// Run executes fn inside a transaction, committing on nil error and
// aborting otherwise.  Deadlock victims and lock-wait timeouts are
// retried up to three times; client layers (mdm.Session) add further
// retry with backoff on top.
func (db *DB) Run(fn func(tx *Tx) error) error {
	return db.RunCtx(context.Background(), fn)
}

// RunCtx is Run under a context: transactions are begun with BeginCtx
// so blocked lock waits abort with txn.ErrCanceled when ctx is
// canceled, and no retry is attempted once the context is done.
func (db *DB) RunCtx(ctx context.Context, fn func(tx *Tx) error) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("%w: %w", txn.ErrCanceled, ctx.Err())
		}
		tx := db.BeginCtx(ctx)
		err := fn(tx)
		if err == nil {
			return tx.Commit()
		}
		tx.Abort()
		if !errors.Is(err, txn.ErrDeadlock) && !errors.Is(err, txn.ErrTimeout) {
			return err
		}
		lastErr = err
	}
	return lastErr
}
