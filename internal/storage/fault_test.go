package storage

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/value"
)

// openFaulty opens a DB over a fault injector in dir.
func openFaulty(t *testing.T, dir string, opts Options) (*DB, *fault.Registry) {
	t.Helper()
	reg := fault.NewRegistry()
	opts.Dir = dir
	opts.FS = fault.NewInjector(fault.Disk{}, reg)
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, reg
}

// TestFsyncFailureDegradesToReadOnly pins the fsyncgate contract: a
// failed commit fsync poisons the WAL, the database refuses all further
// writes with ErrReadOnly, and reads keep working.
func TestFsyncFailureDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	db, reg := openFaulty(t, dir, Options{SyncCommits: true})
	if _, err := db.CreateRelation("R", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt})); err != nil {
		t.Fatal(err)
	}
	insert := func(v int64) error {
		return db.Run(func(tx *Tx) error {
			_, err := tx.Insert("R", value.Tuple{value.Int(v)})
			return err
		})
	}
	if err := insert(1); err != nil {
		t.Fatal(err)
	}

	reg.Arm(fault.Point(fault.OpSync, db.logPath()), 1, fault.Outcome{})
	if err := insert(2); err == nil {
		t.Fatal("commit over failing fsync must error")
	}
	if !db.ReadOnly() {
		t.Fatal("database not degraded after fsync failure")
	}

	// Writes are refused with ErrReadOnly even though the fault has
	// disarmed: the WAL page state is unknowable, not retryable.
	if err := insert(3); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on degraded db: want ErrReadOnly, got %v", err)
	}
	if _, err := db.CreateRelation("S", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt})); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("DDL on degraded db: want ErrReadOnly, got %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("checkpoint on degraded db: want ErrReadOnly, got %v", err)
	}

	// Reads still work.
	count := 0
	if err := db.Run(func(tx *Tx) error {
		return tx.Scan("R", func(RowID, value.Tuple) bool { count++; return true })
	}); err != nil {
		t.Fatalf("read on degraded db: %v", err)
	}
	if count == 0 {
		t.Fatal("read returned nothing")
	}

	// Close reports the degradation rather than pretending health.
	if err := db.Close(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("close of degraded db: want ErrReadOnly, got %v", err)
	}

	// Reopening recovers from the durable prefix: row 1 must be there
	// (its commit fsync succeeded); row 2's fate is decided by the disk.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.ReadOnly() {
		t.Fatal("fresh open should be healthy")
	}
	rel := db2.Relation("R")
	if rel == nil || rel.Len() < 1 {
		t.Fatal("durably committed row lost")
	}
}

// TestAppendFailureRollsBackInMemory pins the compensation path: the
// transaction's records are buffered in the Tx and appended as one
// batch at commit, so when the batched append fails the WHOLE
// transaction is rolled back from memory — memory never runs ahead of
// what could be logged — and the database degrades.
func TestAppendFailureRollsBackInMemory(t *testing.T) {
	dir := t.TempDir()
	db, reg := openFaulty(t, dir, Options{})
	if _, err := db.CreateRelation("R", value.NewSchema(value.Field{Name: "v", Kind: value.KindString})); err != nil {
		t.Fatal(err)
	}
	if err := db.Run(func(tx *Tx) error {
		_, err := tx.Insert("R", value.Tuple{value.Str("seed")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	before := db.Relation("R").Len()

	reg.Arm(fault.Point(fault.OpWrite, db.logPath()), 1, fault.Outcome{})
	tx := db.Begin()
	// Enough fat rows to overflow the log's buffered writer during the
	// commit flush, so the armed write fault fires mid-batch.
	fat := value.Str(strings.Repeat("x", 4096))
	for i := 0; i < 200; i++ {
		if _, err := tx.Insert("R", value.Tuple{fat}); err != nil {
			t.Fatalf("inserts buffer without I/O; insert %d failed: %v", i, err)
		}
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("expected commit to fail once the wal write faulted")
	}
	if !db.ReadOnly() {
		t.Fatal("database should degrade after wal append failure")
	}
	if got := db.Relation("R").Len(); got != before {
		t.Fatalf("in-memory rows after failed txn: %d want %d", got, before)
	}
	db.Close()
}
