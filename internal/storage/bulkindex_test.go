package storage

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// keySchema is a two-column schema with a unique and a non-unique index
// applied by the bulk-build tests.
func bulkDB(t *testing.T) *DB {
	t.Helper()
	db := memDB(t)
	if _, err := db.CreateRelation("W", value.NewSchema(
		value.Field{Name: "id", Kind: value.KindInt},
		value.Field{Name: "grp", Kind: value.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("W", IndexSpec{Name: "by_id", Columns: []string{"id"}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("W", IndexSpec{Name: "by_grp", Columns: []string{"grp"}}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDeferredIndexBuild(t *testing.T) {
	db := bulkDB(t)
	if err := db.DeferIndexes("W"); err != nil {
		t.Fatal(err)
	}
	rel := db.Relation("W")
	if !rel.Deferred() {
		t.Fatal("relation should report deferred")
	}
	err := db.Run(func(tx *Tx) error {
		for i := 0; i < 1000; i++ {
			if _, err := tx.Insert("W", value.Tuple{value.Int(int64(i)), value.Int(int64(i % 7))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// While deferred, the planner-facing index surface is gone.
	if _, ok := rel.IndexByColumn("id"); ok {
		t.Fatal("IndexByColumn should miss while deferred")
	}
	if _, ok := rel.IndexRangeCount("by_id", nil, nil); ok {
		t.Fatal("IndexRangeCount should miss while deferred")
	}
	if err := rel.ScanRange("by_id", nil, nil, false, func(RowID, value.Tuple) bool { return true }); err == nil {
		t.Fatal("ScanRange should fail while deferred")
	}
	if err := rel.CheckIndexes(); err != nil {
		t.Fatalf("CheckIndexes while deferred: %v", err)
	}

	if err := db.BuildIndexes("W"); err != nil {
		t.Fatal(err)
	}
	if rel.Deferred() {
		t.Fatal("build should clear deferral")
	}
	if err := rel.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
	if n, ok := rel.IndexRangeCount("by_id", nil, nil); !ok || n != 1000 {
		t.Fatalf("by_id count = %d, %v", n, ok)
	}
	// The rebuilt trees serve ordinary scans and point ranges.
	lo := value.AppendKey(nil, value.Int(3))
	hi := append(append([]byte(nil), lo...), 0xFF)
	seen := 0
	err = rel.ScanRange("by_grp", lo, hi, false, func(_ RowID, tu value.Tuple) bool {
		if tu[1].AsInt() != 3 {
			t.Fatalf("wrong group %d", tu[1].AsInt())
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 143 { // i%7 == 3 for i in [0, 1000)
		t.Fatalf("group scan saw %d rows", seen)
	}
	// Maintenance is live again.
	err = db.Run(func(tx *Tx) error {
		_, err := tx.Insert("W", value.Tuple{value.Int(5000), value.Int(1)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := rel.IndexRangeCount("by_id", nil, nil); n != 1001 {
		t.Fatalf("post-build insert not indexed: %d", n)
	}
	if err := rel.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredUniqueViolationSurfacesAtBuild(t *testing.T) {
	db := bulkDB(t)
	if err := db.DeferIndexes("W"); err != nil {
		t.Fatal(err)
	}
	err := db.Run(func(tx *Tx) error {
		for _, id := range []int64{1, 2, 2, 3} {
			if _, err := tx.Insert("W", value.Tuple{value.Int(id), value.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.BuildIndexes("W")
	if err == nil || !strings.Contains(err.Error(), "unique index") {
		t.Fatalf("want unique violation, got %v", err)
	}
	// The failed build leaves the relation deferred; fixing the heap and
	// retrying succeeds.
	if !db.Relation("W").Deferred() {
		t.Fatal("failed build should leave relation deferred")
	}
	var dupID RowID
	db.Run(func(tx *Tx) error { //nolint:errcheck
		seen := map[int64]bool{}
		return tx.Scan("W", func(id RowID, tu value.Tuple) bool {
			v := tu[0].AsInt()
			if seen[v] {
				dupID = id
			}
			seen[v] = true
			return true
		})
	})
	err = db.Run(func(tx *Tx) error { return tx.Delete("W", dupID) })
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndexes("W"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relation("W").CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredSnapshotFallback(t *testing.T) {
	db := bulkDB(t)
	err := db.Run(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			if _, err := tx.Insert("W", value.Tuple{value.Int(int64(i)), value.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeferIndexes("W"); err != nil {
		t.Fatal(err)
	}
	err = db.Run(func(tx *Tx) error {
		_, err := tx.Insert("W", value.Tuple{value.Int(100), value.Int(0)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// A snapshot range over the deferred index must not trust the stale
	// tree: the version-store fallback sees all 11 rows.
	rel := db.Relation("W")
	n, err := rel.snapRange("by_id", db.snaps.Last(), nil, nil, false, func(RowID, value.Tuple) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("snapshot fallback saw %d rows, want 11", n)
	}
	if err := db.BuildIndexes("W"); err != nil {
		t.Fatal(err)
	}
}
