package storage

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Options configure a DB.
type Options struct {
	// Dir is the database directory.  Empty means fully in-memory (no
	// durability), which is what most tests and benchmarks use.
	Dir string
	// SyncCommits fsyncs the log on every commit.  When false, commits
	// are buffered and made durable by the next Sync/Checkpoint/Close.
	// Defaults to false.
	SyncCommits bool
	// GroupCommit batches concurrent commits through a shared flush
	// leader (one buffered write + one fsync per batch; see wal.
	// GroupCommitter).  When false every commit flushes alone — the
	// per-txn-fsync baseline.  Defaults to false.
	GroupCommit bool
	// GroupCommitMaxBytes caps the log bytes one flush round covers
	// before fsyncing and starting the next.  Zero means 1MiB.
	GroupCommitMaxBytes int64
	// GroupCommitWindow is how long the flush leader waits for more
	// committers before draining the queue.  Zero (the default) flushes
	// immediately, which on fast storage batches well through natural
	// pipelining alone; ~1-2ms suits spinning disks.
	GroupCommitWindow time.Duration
	// CheckpointBytes triggers an automatic checkpoint when the log
	// exceeds this size.  Zero disables automatic checkpoints.  The
	// checkpoint runs on a background goroutine (singleflight), never
	// inline on the committing transaction that crossed the threshold.
	CheckpointBytes int64
	// FullSnapshots restores the legacy checkpoint behavior: quiesce all
	// writers and rewrite the complete database image as one monolithic
	// snapshot file.  The default (false) uses segmented snapshots with
	// fuzzy incremental checkpoints (ckpt.go), which only rewrite
	// relations dirtied since the last checkpoint and copy them through
	// MVCC snapshots concurrently with writers.  Kept for comparison
	// benchmarks and migration tests.
	FullSnapshots bool
	// NoWAL disables logging entirely (used by the ablation benchmarks
	// that measure WAL overhead).  Implies no durability.
	NoWAL bool
	// Replica opens the database in apply-only mode for WAL-shipping
	// replication: user writes are refused with ErrReplica, there is no
	// commit pipeline, and state advances only through ApplyShipped,
	// which appends shipped records to the replica's own log (its
	// durable receipt) and applies them through the idempotent replay
	// path, publishing one CSN per committed transaction so snapshot
	// reads serve the applied prefix.  Requires Dir; incompatible with
	// NoWAL.
	Replica bool
	// FS is the filesystem the engine performs durable I/O through.
	// Nil means the real filesystem; tests substitute a fault.Injector
	// to exercise crash recovery.
	FS fault.FS
	// LockWaitTimeout bounds how long a transaction waits for a lock
	// before receiving txn.ErrTimeout (retried like a deadlock victim).
	// Zero waits indefinitely, relying on deadlock detection alone.
	LockWaitTimeout time.Duration
	// Obs is the observability registry the engine reports metrics
	// into (row counts, transaction outcomes, WAL and lock latencies,
	// checkpoint durations).  Nil allocates a fresh registry, so a DB
	// always has one; share a registry across components to aggregate.
	Obs *obs.Registry
}

// DB is the storage engine: a set of relations plus the transaction
// machinery (locks, log, snapshots).
type DB struct {
	opts Options
	fs   fault.FS
	obs  *obs.Registry
	m    dbMetrics

	mu        sync.RWMutex
	relations map[string]*Relation

	log       *wal.Log            // nil when in-memory or NoWAL
	committer *wal.GroupCommitter // owns all physical log access; nil iff log is nil
	locks     *txn.LockManager
	ids       *txn.IDSource

	ckptMu  sync.Mutex              // serializes checkpoints
	applyMu sync.Mutex              // replica mode: serializes ApplyShipped / checkpoint
	logic   func(name string) error // logic failpoints (fault.Injector); nil in production

	// Fuzzy-checkpoint state (ckpt.go, segment.go): the CSN-stamped dirty
	// set, the installed manifest's entries, and the background
	// auto-checkpoint singleflight.
	dirtyMu       sync.Mutex
	dirty         map[string]uint64        // relation -> max commit CSN since its last segment
	manifest      map[string]manifestEntry // installed segment set; nil before first manifest
	manifestEpoch uint64
	legacySnap    bool        // recovery loaded the monolithic mdm.snapshot
	ckptBusy      atomic.Bool // an automatic checkpoint is in flight
	ckptWG        sync.WaitGroup

	// Snapshot-read machinery (mvcc.go): the CSN clock and live-snapshot
	// registry, plus the vacuum's cadence bookkeeping.
	snaps     *txn.SnapshotRegistry
	pubCount  atomic.Uint64 // commits published since open
	lastVacAt atomic.Uint64 // pubCount at the last vacuum
	vacMu     sync.Mutex    // at most one vacuum at a time

	seqMu sync.Mutex
	seqs  map[string]uint64

	stateMu sync.Mutex
	roCause error // non-nil: degraded read-only, with the poisoning cause
}

// dbMetrics holds the engine's resolved obs handles.
type dbMetrics struct {
	begins      *obs.Counter   // storage.txn.begin
	commits     *obs.Counter   // storage.txn.commit
	aborts      *obs.Counter   // storage.txn.abort
	rowsRead    *obs.Counter   // storage.rows.read
	rowsWritten *obs.Counter   // storage.rows.written
	checkpoint  *obs.Histogram // storage.checkpoint.ns
	trace       *obs.Trace

	snapReads       *obs.Counter   // snap.reads: rows served from snapshots
	snapCSNLag      *obs.Histogram // snap.csn.lag: commits a snapshot aged past before Close
	snapGCReclaimed *obs.Counter   // snap.gc.reclaimed: versions + history entries vacuumed

	statsRebuilds *obs.Counter // quel.stats.rebuilds: index-statistics recomputations

	// Fuzzy-checkpoint accounting (ckpt.go).  Per checkpoint,
	// relations == written + skipped.
	ckptRelations   *obs.Counter   // storage.ckpt.relations: relations considered
	ckptSegsWritten *obs.Counter   // storage.ckpt.segments.written
	ckptSegsSkipped *obs.Counter   // storage.ckpt.segments.skipped: clean, segment reused
	ckptBytes       *obs.Counter   // storage.ckpt.bytes: segment + manifest bytes written
	ckptAuto        *obs.Counter   // storage.ckpt.auto: background auto-checkpoints
	ckptStall       *obs.Histogram // storage.ckpt.stall.ns: writer-visible exclusive window
	ckptFuzzy       *obs.Histogram // storage.ckpt.fuzzy.ns: concurrent copy phase
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("storage: database is closed")

// ErrReadOnly is returned by mutating operations after the database has
// degraded to read-only mode.  Degradation happens when the WAL is
// poisoned (a failed append or fsync): the durable prefix of the log is
// then ambiguous, and accepting further writes could acknowledge
// transactions that can never be made durable.  Reads keep working;
// reopening the database recovers from the durable state on disk.
var ErrReadOnly = errors.New("storage: database is read-only (degraded after I/O failure)")

// Open opens or creates a database with the given options.  If a snapshot
// and log exist in opts.Dir, the database state is recovered from them.
func Open(opts Options) (*DB, error) {
	if opts.FS == nil {
		opts.FS = fault.Disk{}
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	db := &DB{
		opts:      opts,
		fs:        opts.FS,
		obs:       opts.Obs,
		relations: make(map[string]*Relation),
		locks:     txn.NewLockManager(),
		ids:       txn.NewIDSource(0),
		snaps:     txn.NewSnapshotRegistry(),
		seqs:      make(map[string]uint64),
		dirty:     make(map[string]uint64),
	}
	db.m = dbMetrics{
		begins:      db.obs.Counter("storage.txn.begin"),
		commits:     db.obs.Counter("storage.txn.commit"),
		aborts:      db.obs.Counter("storage.txn.abort"),
		rowsRead:    db.obs.Counter("storage.rows.read"),
		rowsWritten: db.obs.Counter("storage.rows.written"),
		checkpoint:  db.obs.Histogram("storage.checkpoint.ns"),
		trace:       db.obs.Trace(),

		snapReads:       db.obs.Counter("snap.reads"),
		snapCSNLag:      db.obs.Histogram("snap.csn.lag"),
		snapGCReclaimed: db.obs.Counter("snap.gc.reclaimed"),

		statsRebuilds: db.obs.Counter("quel.stats.rebuilds"),

		ckptRelations:   db.obs.Counter("storage.ckpt.relations"),
		ckptSegsWritten: db.obs.Counter("storage.ckpt.segments.written"),
		ckptSegsSkipped: db.obs.Counter("storage.ckpt.segments.skipped"),
		ckptBytes:       db.obs.Counter("storage.ckpt.bytes"),
		ckptAuto:        db.obs.Counter("storage.ckpt.auto"),
		ckptStall:       db.obs.Histogram("storage.ckpt.stall.ns"),
		ckptFuzzy:       db.obs.Histogram("storage.ckpt.fuzzy.ns"),
	}
	db.locks.SetWaitTimeout(opts.LockWaitTimeout)
	db.locks.SetObserver(db.obs)
	if lf, ok := db.fs.(interface{ Logic(string) error }); ok {
		db.logic = lf.Logic
	}
	if opts.Replica && (opts.Dir == "" || opts.NoWAL) {
		return nil, errors.New("storage: replica mode requires a durable, logged database")
	}
	if opts.Dir != "" {
		if err := db.fs.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: mkdir: %w", err)
		}
	}
	if opts.Dir == "" || opts.NoWAL {
		if opts.Dir != "" {
			if err := db.recover(); err != nil {
				return nil, err
			}
			db.seedVersions()
		}
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	db.seedVersions()
	log, err := wal.OpenFS(db.fs, db.logPath())
	if err != nil {
		return nil, err
	}
	log.SetObserver(db.obs)
	db.log = log
	if opts.Replica {
		// Apply-only mode: no commit pipeline.  The log receives shipped
		// records through ApplyShipped, which owns all physical access.
		return db, nil
	}
	db.committer = wal.NewGroupCommitter(log, wal.GroupOptions{
		Group:    opts.GroupCommit,
		MaxBytes: opts.GroupCommitMaxBytes,
		Window:   opts.GroupCommitWindow,
	})
	db.committer.SetObserver(db.obs)
	if db.logic != nil {
		db.committer.SetFailpoints(db.logic)
	}
	return db, nil
}

// Obs returns the database's observability registry (never nil).
func (db *DB) Obs() *obs.Registry { return db.obs }

// degrade puts the database into read-only mode with the given cause.
// Only the first cause is kept.
func (db *DB) degrade(cause error) {
	db.stateMu.Lock()
	if db.roCause == nil {
		db.roCause = cause
	}
	db.stateMu.Unlock()
}

// ReadOnly reports whether the database has degraded to read-only mode.
func (db *DB) ReadOnly() bool { return db.ReadOnlyCause() != nil }

// ReadOnlyCause returns the error that degraded the database, or nil.
func (db *DB) ReadOnlyCause() error {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	return db.roCause
}

// writable returns an ErrReadOnly-wrapped error when degraded, or
// ErrReplica in apply-only mode.
func (db *DB) writable() error {
	if db.opts.Replica {
		return ErrReplica
	}
	if cause := db.ReadOnlyCause(); cause != nil {
		return fmt.Errorf("%w: %v", ErrReadOnly, cause)
	}
	return nil
}

func (db *DB) logPath() string      { return filepath.Join(db.opts.Dir, WALFileName) }
func (db *DB) snapshotPath() string { return filepath.Join(db.opts.Dir, SnapshotFileName) }

// recover loads the checkpoint image (if any) and replays the committed
// suffix of the log on top of it.  The segmented manifest is preferred;
// a database that has never taken a segmented checkpoint falls back to
// the legacy monolithic snapshot (one-way migration: the next checkpoint
// writes segments and removes it).
//
// Replay is idempotent: a crash between the checkpoint's manifest rename
// and its log truncation leaves a log whose records are already in the
// segments, so re-applying an insert over an existing row (or a delete
// of an absent one) must converge on the logged state, not fail.  The
// same holds for a segment newer than the manifest that names it (a
// crash mid-checkpoint): the full log replays over it and converges.
func (db *DB) recover() error {
	if db.opts.Dir == "" {
		return nil
	}
	haveManifest, err := db.loadManifest(db.manifestPath())
	if err != nil {
		return err
	}
	if !haveManifest {
		if err := db.loadSnapshot(db.snapshotPath()); err != nil {
			return err
		}
		if len(db.relations) > 0 || len(db.seqs) > 0 {
			db.legacySnap = true
		}
	}
	return wal.ReplayFS(db.fs, db.logPath(), func(r *wal.Record) error {
		_, err := db.applyRecord(r)
		return err
	})
}

// applyRecord applies one logged record to the in-memory state,
// idempotently (see recover).  It is shared by crash recovery and by
// replica live apply (ApplyShipped); for data records it returns the
// version-chain mutation the change implies, which recovery discards
// (seedVersions rebuilds the base state) and live apply publishes under
// the next CSN.  Schema operations take db.mu; row operations rely on
// the relation's own lock.
func (db *DB) applyRecord(r *wal.Record) (*verOp, error) {
	// Replayed mutations carry no usable commit CSN here (recovery reseeds
	// the version store at 0; replica apply stamps its own), so force-mark
	// the relation: the next checkpoint rewrites its segment regardless of
	// the pinned CSN.  Clean manifest segments stay reusable across a
	// reopen precisely because only replayed relations get stamped.
	db.markDirty(r.Relation, dirtyDDL)
	switch r.Type {
	case wal.RecCreateRelation:
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.relations[r.Relation] != nil {
			return nil, nil // already present (snapshot, or duplicate shipment)
		}
		schema, err := decodeSchema(r.New)
		if err != nil {
			return nil, err
		}
		rel := newRelation(r.Relation, schema)
		rel.statsRebuilds = db.m.statsRebuilds
		db.relations[r.Relation] = rel
		return nil, nil
	case wal.RecDropRelation:
		db.mu.Lock()
		defer db.mu.Unlock()
		delete(db.relations, r.Relation)
		return nil, nil
	case wal.RecCreateIndex:
		rel := db.Relation(r.Relation)
		if rel == nil {
			return nil, fmt.Errorf("storage: replay: index on unknown relation %q", r.Relation)
		}
		spec, err := decodeIndexSpec(r.New)
		if err != nil {
			return nil, err
		}
		if rel.findIndex(spec.Name) != nil {
			return nil, nil // already present
		}
		return nil, rel.addIndex(spec)
	case wal.RecDropIndex:
		rel := db.Relation(r.Relation)
		if rel == nil {
			return nil, fmt.Errorf("storage: replay: drop index on unknown relation %q", r.Relation)
		}
		if len(r.New) < 1 {
			return nil, fmt.Errorf("storage: malformed drop-index record")
		}
		rel.dropIndex(r.New[0].AsString()) // no-op if already absent
		return nil, nil
	}
	rel := db.Relation(r.Relation)
	if rel == nil {
		return nil, fmt.Errorf("storage: replay: data for unknown relation %q", r.Relation)
	}
	switch r.Type {
	case wal.RecInsert:
		if _, ok := rel.get(r.RowID); ok {
			if _, err := rel.updateRow(r.RowID, r.New); err != nil {
				return nil, err
			}
			return &verOp{op: verSet, rel: r.Relation, id: r.RowID, t: r.New}, nil
		}
		if _, err := rel.insertRow(r.RowID, r.New); err != nil {
			return nil, err
		}
		return &verOp{op: verAdd, rel: r.Relation, id: r.RowID, t: r.New}, nil
	case wal.RecDelete:
		if _, ok := rel.get(r.RowID); !ok {
			return nil, nil
		}
		if _, err := rel.deleteRow(r.RowID); err != nil {
			return nil, err
		}
		return &verOp{op: verDel, rel: r.Relation, id: r.RowID}, nil
	case wal.RecUpdate:
		if _, ok := rel.get(r.RowID); !ok {
			if _, err := rel.insertRow(r.RowID, r.New); err != nil {
				return nil, err
			}
			return &verOp{op: verAdd, rel: r.Relation, id: r.RowID, t: r.New}, nil
		}
		if _, err := rel.updateRow(r.RowID, r.New); err != nil {
			return nil, err
		}
		return &verOp{op: verSet, rel: r.Relation, id: r.RowID, t: r.New}, nil
	}
	return nil, nil
}

// CreateRelation defines a new relation.  Relation creation is a schema
// operation performed outside transactions; the model layer serializes
// DDL.  The definition is logged (RecCreateRelation) so relations
// created after the last checkpoint survive a crash.
func (db *DB) CreateRelation(name string, schema *value.Schema) (*Relation, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, exists := db.relations[name]; exists {
		db.mu.Unlock()
		return nil, fmt.Errorf("storage: relation %q already exists", name)
	}
	rel := newRelation(name, schema)
	rel.statsRebuilds = db.m.statsRebuilds
	db.relations[name] = rel
	db.mu.Unlock()
	if err := db.appendLog(&wal.Record{Type: wal.RecCreateRelation, Relation: name, New: encodeSchema(schema)}); err != nil {
		db.mu.Lock()
		delete(db.relations, name)
		db.mu.Unlock()
		return nil, err
	}
	// Schema changes happen outside the CSN clock: force-mark so the next
	// checkpoint writes the relation's first segment unconditionally.
	db.markDirty(name, dirtyDDL)
	return rel, nil
}

// encodeSchema flattens a schema as a tuple of (name, kind, refType)
// triples for the WAL schema records.
func encodeSchema(s *value.Schema) value.Tuple {
	t := make(value.Tuple, 0, 3*s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		t = append(t, value.Str(f.Name), value.Int(int64(f.Kind)), value.Str(f.RefType))
	}
	return t
}

func decodeSchema(t value.Tuple) (*value.Schema, error) {
	if len(t)%3 != 0 {
		return nil, fmt.Errorf("storage: malformed schema record (%d values)", len(t))
	}
	fields := make([]value.Field, 0, len(t)/3)
	for i := 0; i < len(t); i += 3 {
		fields = append(fields, value.Field{
			Name:    t[i].AsString(),
			Kind:    value.Kind(t[i+1].AsInt()),
			RefType: t[i+2].AsString(),
		})
	}
	return value.NewSchema(fields...), nil
}

// encodeIndexSpec flattens an index spec for RecCreateIndex.
func encodeIndexSpec(spec IndexSpec) value.Tuple {
	t := value.Tuple{value.Str(spec.Name), value.Bool(spec.Unique)}
	for _, c := range spec.Columns {
		t = append(t, value.Str(c))
	}
	return t
}

func decodeIndexSpec(t value.Tuple) (IndexSpec, error) {
	if len(t) < 3 {
		return IndexSpec{}, fmt.Errorf("storage: malformed index record (%d values)", len(t))
	}
	spec := IndexSpec{Name: t[0].AsString(), Unique: t[1].AsBool()}
	for _, v := range t[2:] {
		spec.Columns = append(spec.Columns, v.AsString())
	}
	return spec, nil
}

// DropRelation removes a relation and its data.  Like creation, the
// drop is logged for crash recovery.
func (db *DB) DropRelation(name string) error {
	if err := db.writable(); err != nil {
		return err
	}
	db.mu.Lock()
	rel, exists := db.relations[name]
	if !exists {
		db.mu.Unlock()
		return fmt.Errorf("storage: no relation %q", name)
	}
	delete(db.relations, name)
	db.mu.Unlock()
	if err := db.appendLog(&wal.Record{Type: wal.RecDropRelation, Relation: name}); err != nil {
		db.mu.Lock()
		db.relations[name] = rel
		db.mu.Unlock()
		return err
	}
	// The next checkpoint drops the relation's manifest entry (and then
	// its segment file); if the name is reused, the stamp already marks
	// the newcomer dirty.
	db.markDirty(name, dirtyDDL)
	return nil
}

// Relation returns the named relation, or nil.
func (db *DB) Relation(name string) *Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.relations[name]
}

// Relations returns the names of all relations, unordered.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	return names
}

// CreateIndex adds a secondary index to a relation and backfills it.
// The definition is logged so indexes created after the last checkpoint
// survive a crash.
func (db *DB) CreateIndex(relName string, spec IndexSpec) error {
	if err := db.writable(); err != nil {
		return err
	}
	rel := db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	if err := rel.addIndex(spec); err != nil {
		return err
	}
	// The new index's trees only cover rows as of now: snapshots pinned
	// before this CSN must not trust them (mvcc.go falls back to a
	// version-store scan for them).
	rel.setIndexFloor(spec.Name, db.snaps.Last()+1)
	if err := db.appendLog(&wal.Record{Type: wal.RecCreateIndex, Relation: relName, New: encodeIndexSpec(spec)}); err != nil {
		rel.dropIndex(spec.Name)
		return err
	}
	db.markDirty(relName, dirtyDDL)
	return nil
}

// DeferIndexes suspends secondary-index maintenance on the named
// relation for the duration of a bulk load: inserts touch only the
// heap, and index reads behave as if the relation had no indexes.  The
// deferral is in-memory state, not logged — if the process crashes
// mid-load, recovery replays the inserts through the ordinary mutators
// with live index maintenance, so the reopened store is consistent.
func (db *DB) DeferIndexes(relName string) error {
	if err := db.writable(); err != nil {
		return err
	}
	rel := db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	rel.deferIndexes()
	return nil
}

// BuildIndexes bulk-builds every secondary index of the named relation
// bottom-up from sorted runs over the heap and resumes inline
// maintenance.  Unique violations accumulated during the deferred load
// surface here, before any tree is replaced.  Snapshots pinned before
// the build fall back to version-store scans (the rebuilt trees carry
// no key history).
func (db *DB) BuildIndexes(relName string) error {
	if err := db.writable(); err != nil {
		return err
	}
	rel := db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	if err := rel.buildIndexes(); err != nil {
		return err
	}
	floor := db.snaps.Last() + 1
	rel.mu.Lock()
	for _, ix := range rel.indexes {
		ix.createdAt = floor
	}
	rel.mu.Unlock()
	return nil
}

// DropIndex removes a secondary index from a relation.  The drop is
// logged (RecDropIndex) so indexes dropped after the last checkpoint
// stay dropped across a crash.  Callers (the model layer) serialize DDL
// and bump the schema epoch so cached plans stop referencing the index.
func (db *DB) DropIndex(relName, indexName string) error {
	if err := db.writable(); err != nil {
		return err
	}
	rel := db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	ix := rel.removeIndex(indexName)
	if ix == nil {
		return fmt.Errorf("storage: no index %q on %s", indexName, relName)
	}
	if err := db.appendLog(&wal.Record{Type: wal.RecDropIndex, Relation: relName,
		New: value.Tuple{value.Str(indexName)}}); err != nil {
		// The failed append poisoned the log, so no mutation can have
		// raced in between: reattaching restores the exact prior state.
		rel.restoreIndex(ix)
		return err
	}
	db.markDirty(relName, dirtyDDL)
	return nil
}

// NextSeq returns the next value of the named persistent sequence
// (starting at 1).  Sequences are made durable via snapshots; after a
// crash the sequence resumes past any value observed in replayed data
// because the model layer re-derives its counters from surrogate maxima.
func (db *DB) NextSeq(name string) uint64 {
	db.seqMu.Lock()
	defer db.seqMu.Unlock()
	db.seqs[name]++
	return db.seqs[name]
}

// BumpSeq raises the named sequence to at least floor.
func (db *DB) BumpSeq(name string, floor uint64) {
	db.seqMu.Lock()
	defer db.seqMu.Unlock()
	if db.seqs[name] < floor {
		db.seqs[name] = floor
	}
}

// Checkpoint writes a full snapshot and truncates the log.  All committed
// work becomes durable in the snapshot.
//
// Under concurrency the checkpoint first quiesces writers (a shared
// lock on every relation, so no transaction holds a write lock while
// the snapshot scans) and then drains the commit pipeline, so the
// snapshot never captures uncommitted in-memory rows and never loses a
// batch that was still queued behind the flush leader.
//
// Failure handling: a failed snapshot write leaves the previous
// snapshot + full log intact (the checkpoint simply did not happen); a
// failed log flush, truncation, or directory sync poisons the WAL and
// degrades the database, because the log's durable state is then
// unknown.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpoint()
}

func (db *DB) checkpoint() error { return db.checkpointWith(nil) }

// checkpointWith is checkpoint with an optional attach hook: when
// non-nil, attach runs inside the exclusive install section, after the
// checkpoint image is durable and the log reset, with no append in
// flight.  Replication bootstrap lives on this hook — the image it
// copies plus the record stream shipped from that instant is exactly
// the database, nothing lost and nothing duplicated.  attach receives
// the manifest path (or the monolithic snapshot path under
// Options.FullSnapshots).
func (db *DB) checkpointWith(attach func(checkpointPath string) error) error {
	if db.opts.Dir == "" {
		return nil
	}
	if db.opts.Replica {
		// Replica checkpoints serialize against ApplyShipped instead of
		// quiescing writers (there are none).
		db.applyMu.Lock()
		defer db.applyMu.Unlock()
		return db.replicaCheckpointLocked(attach)
	}
	if err := db.writable(); err != nil {
		return err
	}
	start := time.Now()
	defer func() {
		db.m.checkpoint.ObserveSince(start)
		if db.m.trace.Enabled() {
			db.m.trace.Emit("storage.checkpoint", db.opts.Dir, start, time.Since(start))
		}
	}()
	if db.opts.FullSnapshots {
		return db.fullCheckpointWith(attach)
	}
	return db.fuzzyCheckpointWith(attach)
}

// quiesce takes a shared lock on every relation under a fresh
// transaction id, waiting out in-flight writers.  It returns the
// release function.  If the barrier transaction loses a deadlock (a
// writer holding one relation and waiting on another can cycle through
// the barrier's shared locks) it retries from scratch.
func (db *DB) quiesce() (func(), error) {
	names := db.Relations()
	sort.Strings(names)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		id := db.ids.Next()
		ok := true
		for _, name := range names {
			if err := db.locks.AcquireCtx(context.Background(), id, name, txn.Shared); err != nil {
				db.locks.ReleaseAll(id)
				if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrTimeout) {
					lastErr = err
					ok = false
					break
				}
				return nil, fmt.Errorf("storage: checkpoint quiesce: %w", err)
			}
		}
		if ok {
			return func() { db.locks.ReleaseAll(id) }, nil
		}
	}
	return nil, fmt.Errorf("storage: checkpoint quiesce: %w", lastErr)
}

// Sync makes all committed transactions durable without checkpointing.
// It drains the commit queue first: a batch still queued behind the
// flush leader belongs to a commit that predates this call, so it must
// be on disk when Sync returns.
func (db *DB) Sync() error {
	if db.committer == nil {
		return nil
	}
	if err := db.committer.Drain(); err != nil {
		db.degrade(err)
		return err
	}
	return nil
}

// Close checkpoints (if durable and healthy) and closes the database.  A
// degraded database skips the checkpoint — its WAL is poisoned and the
// in-memory state must not be trusted onto disk — and reports the cause.
func (db *DB) Close() error {
	// Let any in-flight background checkpoint finish before tearing the
	// log down under it.
	db.ckptWG.Wait()
	if db.log == nil {
		return nil
	}
	if cause := db.ReadOnlyCause(); cause != nil {
		db.log.Close()
		db.log, db.committer = nil, nil
		return fmt.Errorf("%w: %v", ErrReadOnly, cause)
	}
	if err := db.Checkpoint(); err != nil {
		db.log.Close()
		db.log, db.committer = nil, nil
		return err
	}
	err := db.log.Close()
	db.log, db.committer = nil, nil
	return err
}

// maybeCheckpoint fires a background checkpoint if the log has outgrown
// the configured threshold.  The committing transaction that crossed
// the threshold does not wait: a CAS elects one background goroutine
// (singleflight) and every other committer proceeds immediately.
// Failures degrade the database — the trigger has no caller to return
// an error to — and are counted under storage.ckpt.auto alongside
// successes.
func (db *DB) maybeCheckpoint() {
	if db.log == nil || db.opts.CheckpointBytes <= 0 || db.ReadOnly() {
		return
	}
	if db.log.Size() < db.opts.CheckpointBytes {
		return
	}
	if !db.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	db.ckptWG.Add(1)
	go func() {
		defer db.ckptWG.Done()
		defer db.ckptBusy.Store(false)
		db.ckptMu.Lock()
		defer db.ckptMu.Unlock()
		// Re-check under the checkpoint lock: a manual checkpoint may
		// have reset the log while this goroutine was scheduled.
		if db.log == nil || db.ReadOnly() || db.log.Size() < db.opts.CheckpointBytes {
			return
		}
		db.m.ckptAuto.Inc()
		if err := db.checkpoint(); err != nil {
			db.degrade(fmt.Errorf("storage: automatic checkpoint: %w", err))
		}
	}()
}
