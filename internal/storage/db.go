package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/wal"
)

// Options configure a DB.
type Options struct {
	// Dir is the database directory.  Empty means fully in-memory (no
	// durability), which is what most tests and benchmarks use.
	Dir string
	// SyncCommits fsyncs the log on every commit.  When false, commits
	// are buffered and made durable by the next Sync/Checkpoint/Close
	// (group-commit style).  Defaults to false.
	SyncCommits bool
	// CheckpointBytes triggers an automatic checkpoint when the log
	// exceeds this size.  Zero disables automatic checkpoints.
	CheckpointBytes int64
	// NoWAL disables logging entirely (used by the ablation benchmarks
	// that measure WAL overhead).  Implies no durability.
	NoWAL bool
}

// DB is the storage engine: a set of relations plus the transaction
// machinery (locks, log, snapshots).
type DB struct {
	opts Options

	mu        sync.RWMutex
	relations map[string]*Relation

	logMu sync.Mutex
	log   *wal.Log // nil when in-memory or NoWAL
	locks *txn.LockManager
	ids   *txn.IDSource

	seqMu sync.Mutex
	seqs  map[string]uint64
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("storage: database is closed")

// Open opens or creates a database with the given options.  If a snapshot
// and log exist in opts.Dir, the database state is recovered from them.
func Open(opts Options) (*DB, error) {
	db := &DB{
		opts:      opts,
		relations: make(map[string]*Relation),
		locks:     txn.NewLockManager(),
		ids:       txn.NewIDSource(0),
		seqs:      make(map[string]uint64),
	}
	if opts.Dir == "" || opts.NoWAL {
		if opts.Dir != "" {
			if err := db.recover(); err != nil {
				return nil, err
			}
		}
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	log, err := wal.Open(db.logPath())
	if err != nil {
		return nil, err
	}
	db.log = log
	return db, nil
}

func (db *DB) logPath() string      { return filepath.Join(db.opts.Dir, "mdm.wal") }
func (db *DB) snapshotPath() string { return filepath.Join(db.opts.Dir, "mdm.snapshot") }

// recover loads the snapshot (if any) and replays the committed suffix of
// the log on top of it.
func (db *DB) recover() error {
	if db.opts.Dir == "" {
		return nil
	}
	if err := db.loadSnapshot(db.snapshotPath()); err != nil {
		return err
	}
	return wal.Replay(db.logPath(), func(r *wal.Record) error {
		switch r.Type {
		case wal.RecCreateRelation:
			if db.relations[r.Relation] != nil {
				return nil // already in the snapshot
			}
			schema, err := decodeSchema(r.New)
			if err != nil {
				return err
			}
			db.relations[r.Relation] = newRelation(r.Relation, schema)
			return nil
		case wal.RecDropRelation:
			delete(db.relations, r.Relation)
			return nil
		case wal.RecCreateIndex:
			rel := db.relations[r.Relation]
			if rel == nil {
				return fmt.Errorf("storage: replay: index on unknown relation %q", r.Relation)
			}
			spec, err := decodeIndexSpec(r.New)
			if err != nil {
				return err
			}
			if rel.findIndex(spec.Name) != nil {
				return nil // already in the snapshot
			}
			return rel.addIndex(spec)
		}
		rel := db.relations[r.Relation]
		if rel == nil {
			return fmt.Errorf("storage: replay: data for unknown relation %q", r.Relation)
		}
		switch r.Type {
		case wal.RecInsert:
			_, err := rel.insertRow(r.RowID, r.New)
			return err
		case wal.RecDelete:
			_, err := rel.deleteRow(r.RowID)
			return err
		case wal.RecUpdate:
			_, err := rel.updateRow(r.RowID, r.New)
			return err
		}
		return nil
	})
}

// CreateRelation defines a new relation.  Relation creation is a schema
// operation performed outside transactions; the model layer serializes
// DDL.  The definition is logged (RecCreateRelation) so relations
// created after the last checkpoint survive a crash.
func (db *DB) CreateRelation(name string, schema *value.Schema) (*Relation, error) {
	db.mu.Lock()
	if _, exists := db.relations[name]; exists {
		db.mu.Unlock()
		return nil, fmt.Errorf("storage: relation %q already exists", name)
	}
	rel := newRelation(name, schema)
	db.relations[name] = rel
	db.mu.Unlock()
	db.appendLog(&wal.Record{Type: wal.RecCreateRelation, Relation: name, New: encodeSchema(schema)})
	return rel, nil
}

// encodeSchema flattens a schema as a tuple of (name, kind, refType)
// triples for the WAL schema records.
func encodeSchema(s *value.Schema) value.Tuple {
	t := make(value.Tuple, 0, 3*s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		t = append(t, value.Str(f.Name), value.Int(int64(f.Kind)), value.Str(f.RefType))
	}
	return t
}

func decodeSchema(t value.Tuple) (*value.Schema, error) {
	if len(t)%3 != 0 {
		return nil, fmt.Errorf("storage: malformed schema record (%d values)", len(t))
	}
	fields := make([]value.Field, 0, len(t)/3)
	for i := 0; i < len(t); i += 3 {
		fields = append(fields, value.Field{
			Name:    t[i].AsString(),
			Kind:    value.Kind(t[i+1].AsInt()),
			RefType: t[i+2].AsString(),
		})
	}
	return value.NewSchema(fields...), nil
}

// encodeIndexSpec flattens an index spec for RecCreateIndex.
func encodeIndexSpec(spec IndexSpec) value.Tuple {
	t := value.Tuple{value.Str(spec.Name), value.Bool(spec.Unique)}
	for _, c := range spec.Columns {
		t = append(t, value.Str(c))
	}
	return t
}

func decodeIndexSpec(t value.Tuple) (IndexSpec, error) {
	if len(t) < 3 {
		return IndexSpec{}, fmt.Errorf("storage: malformed index record (%d values)", len(t))
	}
	spec := IndexSpec{Name: t[0].AsString(), Unique: t[1].AsBool()}
	for _, v := range t[2:] {
		spec.Columns = append(spec.Columns, v.AsString())
	}
	return spec, nil
}

// DropRelation removes a relation and its data.  Like creation, the
// drop is logged for crash recovery.
func (db *DB) DropRelation(name string) error {
	db.mu.Lock()
	if _, exists := db.relations[name]; !exists {
		db.mu.Unlock()
		return fmt.Errorf("storage: no relation %q", name)
	}
	delete(db.relations, name)
	db.mu.Unlock()
	db.appendLog(&wal.Record{Type: wal.RecDropRelation, Relation: name})
	return nil
}

// Relation returns the named relation, or nil.
func (db *DB) Relation(name string) *Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.relations[name]
}

// Relations returns the names of all relations, unordered.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	return names
}

// CreateIndex adds a secondary index to a relation and backfills it.
// The definition is logged so indexes created after the last checkpoint
// survive a crash.
func (db *DB) CreateIndex(relName string, spec IndexSpec) error {
	rel := db.Relation(relName)
	if rel == nil {
		return fmt.Errorf("storage: no relation %q", relName)
	}
	if err := rel.addIndex(spec); err != nil {
		return err
	}
	db.appendLog(&wal.Record{Type: wal.RecCreateIndex, Relation: relName, New: encodeIndexSpec(spec)})
	return nil
}

// NextSeq returns the next value of the named persistent sequence
// (starting at 1).  Sequences are made durable via snapshots; after a
// crash the sequence resumes past any value observed in replayed data
// because the model layer re-derives its counters from surrogate maxima.
func (db *DB) NextSeq(name string) uint64 {
	db.seqMu.Lock()
	defer db.seqMu.Unlock()
	db.seqs[name]++
	return db.seqs[name]
}

// BumpSeq raises the named sequence to at least floor.
func (db *DB) BumpSeq(name string, floor uint64) {
	db.seqMu.Lock()
	defer db.seqMu.Unlock()
	if db.seqs[name] < floor {
		db.seqs[name] = floor
	}
}

// Checkpoint writes a full snapshot and truncates the log.  All committed
// work becomes durable in the snapshot.
func (db *DB) Checkpoint() error {
	if db.opts.Dir == "" {
		return nil
	}
	if db.log != nil {
		if err := db.log.Sync(); err != nil {
			return err
		}
	}
	if err := db.writeSnapshot(db.snapshotPath()); err != nil {
		return err
	}
	if db.log != nil {
		return db.log.Reset()
	}
	return nil
}

// Sync makes all committed transactions durable without checkpointing.
func (db *DB) Sync() error {
	if db.log == nil {
		return nil
	}
	return db.log.Sync()
}

// Close checkpoints (if durable) and closes the database.
func (db *DB) Close() error {
	if db.log == nil {
		return nil
	}
	if err := db.Checkpoint(); err != nil {
		db.log.Close()
		return err
	}
	err := db.log.Close()
	db.log = nil
	return err
}

// maybeCheckpoint runs an automatic checkpoint if the log has outgrown
// the configured threshold.
func (db *DB) maybeCheckpoint() error {
	if db.log == nil || db.opts.CheckpointBytes <= 0 {
		return nil
	}
	if db.log.Size() < db.opts.CheckpointBytes {
		return nil
	}
	return db.Checkpoint()
}
