package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/value"
)

// ckptCounter reads one storage.ckpt.* counter from the db's registry.
func ckptCounter(t *testing.T, db *DB, name string) uint64 {
	t.Helper()
	m, ok := db.Obs().Get(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return m.Value
}

func mustExist(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("%s should exist: %v", filepath.Base(path), err)
	}
}

func mustNotExist(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("%s should not exist (err %v)", filepath.Base(path), err)
	}
}

// TestSegmentedCheckpointRoundtrip pins the default checkpoint format: a
// manifest plus per-relation segment files (no monolithic snapshot), and
// a reopen that restores relations, rows, indexes, and sequences from
// them.
func TestSegmentedCheckpointRoundtrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B"} {
		if _, err := db.CreateRelation(name, value.NewSchema(
			value.Field{Name: "k", Kind: value.KindInt},
			value.Field{Name: "s", Kind: value.KindString},
		)); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex(name, IndexSpec{Name: name + "_k", Columns: []string{"k"}}); err != nil {
			t.Fatal(err)
		}
		if err := db.Run(func(tx *Tx) error {
			for i := 0; i < 10; i++ {
				if _, err := tx.Insert(name, value.Tuple{value.Int(int64(i)), value.Str(name)}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		lastSeq = db.NextSeq("s")
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, ManifestFileName))
	mustExist(t, filepath.Join(dir, SegmentFileName("A")))
	mustExist(t, filepath.Join(dir, SegmentFileName("B")))
	mustNotExist(t, filepath.Join(dir, SnapshotFileName))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, name := range []string{"A", "B"} {
		rel := db2.Relation(name)
		if rel == nil {
			t.Fatalf("relation %s lost across reopen", name)
		}
		if rel.Len() != 10 {
			t.Fatalf("relation %s: %d rows after reopen, want 10", name, rel.Len())
		}
		if rel.findIndex(name+"_k") == nil {
			t.Fatalf("relation %s lost its index across reopen", name)
		}
		if err := rel.CheckIndexes(); err != nil {
			t.Fatal(err)
		}
	}
	if got := db2.NextSeq("s"); got <= lastSeq {
		t.Fatalf("sequence regressed across reopen: %d, want > %d", got, lastSeq)
	}
}

// TestIncrementalCheckpointSkipsCleanRelations pins the incremental
// contract: a checkpoint after dirtying one of many relations rewrites
// exactly that relation's segment and reuses every other, with the
// skip visible in both the counters and the bytes written.
func TestIncrementalCheckpointSkipsCleanRelations(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const nRel = 20
	for i := 0; i < nRel; i++ {
		name := fmt.Sprintf("R%02d", i)
		if _, err := db.CreateRelation(name, value.NewSchema(
			value.Field{Name: "v", Kind: value.KindString},
		)); err != nil {
			t.Fatal(err)
		}
		if err := db.Run(func(tx *Tx) error {
			for j := 0; j < 50; j++ {
				if _, err := tx.Insert(name, value.Tuple{value.Str(strings.Repeat("x", 100))}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	written0 := ckptCounter(t, db, "storage.ckpt.segments.written")
	bytes0 := ckptCounter(t, db, "storage.ckpt.bytes")
	if written0 != nRel {
		t.Fatalf("first checkpoint wrote %d segments, want %d", written0, nRel)
	}

	// Dirty exactly one relation, then checkpoint again.
	if err := db.Run(func(tx *Tx) error {
		_, err := tx.Insert("R07", value.Tuple{value.Str("dirty")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	written := ckptCounter(t, db, "storage.ckpt.segments.written") - written0
	skipped := ckptCounter(t, db, "storage.ckpt.segments.skipped")
	bytes := ckptCounter(t, db, "storage.ckpt.bytes") - bytes0
	if written != 1 {
		t.Fatalf("incremental checkpoint wrote %d segments, want 1", written)
	}
	if skipped != nRel-1 {
		t.Fatalf("incremental checkpoint skipped %d segments, want %d", skipped, nRel-1)
	}
	if bytes*4 > bytes0 {
		t.Fatalf("incremental checkpoint wrote %d bytes, want far less than the full %d", bytes, bytes0)
	}

	// A fully clean checkpoint rewrites nothing and keeps the store
	// consistent on reopen.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w := ckptCounter(t, db, "storage.ckpt.segments.written") - written0 - written; w != 0 {
		t.Fatalf("clean checkpoint rewrote %d segments, want 0", w)
	}
}

// TestLegacySnapshotMigration pins the one-way migration: a store
// checkpointed by the legacy monolithic path opens under the segmented
// default, and its first segmented checkpoint installs a manifest and
// removes the old snapshot file.
func TestLegacySnapshotMigration(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true, FullSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("M", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt})); err != nil {
		t.Fatal(err)
	}
	if err := db.Run(func(tx *Tx) error {
		for i := 0; i < 25; i++ {
			if _, err := tx.Insert("M", value.Tuple{value.Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // Close checkpoints: legacy snapshot
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, SnapshotFileName))
	mustNotExist(t, filepath.Join(dir, ManifestFileName))

	// Reopen under the segmented default: the legacy snapshot must load.
	db2, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel := db2.Relation("M"); rel == nil || rel.Len() != 25 {
		t.Fatalf("legacy snapshot did not load under segmented default")
	}
	// The first segmented checkpoint migrates: manifest in, snapshot out.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, ManifestFileName))
	mustExist(t, filepath.Join(dir, SegmentFileName("M")))
	mustNotExist(t, filepath.Join(dir, SnapshotFileName))
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if rel := db3.Relation("M"); rel == nil || rel.Len() != 25 {
		t.Fatalf("migrated store lost rows across reopen")
	}
}

// TestFullSnapshotSupersedesManifest pins the reverse switch: a store
// checkpointed segmented and then reopened with FullSnapshots writes a
// monolithic snapshot and durably removes the manifest, so recovery can
// never prefer the stale segmented image.
func TestFullSnapshotSupersedesManifest(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("M", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt})); err != nil {
		t.Fatal(err)
	}
	if err := db.Run(func(tx *Tx) error {
		_, err := tx.Insert("M", value.Tuple{value.Int(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, ManifestFileName))

	db2, err := Open(Options{Dir: dir, SyncCommits: true, FullSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, SnapshotFileName))
	mustNotExist(t, filepath.Join(dir, ManifestFileName))
	mustNotExist(t, filepath.Join(dir, SegmentFileName("M")))
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	db3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if rel := db3.Relation("M"); rel == nil || rel.Len() != 1 {
		t.Fatalf("snapshot-superseded store lost rows")
	}
}

// TestDroppedRelationSegmentGC pins segment garbage collection: dropping
// a relation removes its segment file at the next checkpoint and the
// manifest stops naming it.
func TestDroppedRelationSegmentGC(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, name := range []string{"KEEP", "DROP"} {
		if _, err := db.CreateRelation(name, value.NewSchema(value.Field{Name: "v", Kind: value.KindInt})); err != nil {
			t.Fatal(err)
		}
		if err := db.Run(func(tx *Tx) error {
			_, err := tx.Insert(name, value.Tuple{value.Int(1)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, SegmentFileName("KEEP")))
	mustExist(t, filepath.Join(dir, SegmentFileName("DROP")))

	if err := db.DropRelation("DROP"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExist(t, filepath.Join(dir, SegmentFileName("KEEP")))
	mustNotExist(t, filepath.Join(dir, SegmentFileName("DROP")))

	man, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	segs, isManifest, err := ManifestSegments(man)
	if err != nil || !isManifest {
		t.Fatalf("manifest unreadable: isManifest=%v err=%v", isManifest, err)
	}
	if len(segs) != 1 || segs[0] != SegmentFileName("KEEP") {
		t.Fatalf("manifest names %v, want just KEEP's segment", segs)
	}
}

// TestSegmentFileNameSanitization pins the relation-name encoding: every
// name maps inside the database directory, the mapping is stable and
// injective for names differing in escaped bytes, and plain identifiers
// stay readable.
func TestSegmentFileNameSanitization(t *testing.T) {
	if got := SegmentFileName("Scores"); got != "mdm.seg.Scores" {
		t.Fatalf("plain name mangled: %q", got)
	}
	hostile := []string{"a/b", "a\\b", "..", "a b", "a%2Fb", "a\x00b", "über"}
	seen := map[string]string{}
	for _, name := range hostile {
		f := SegmentFileName(name)
		// The fixed prefix keeps the result a plain file name: never "."
		// or "..", never a path.
		if filepath.Base(f) != f || strings.ContainsAny(f, "/\\\x00") || !strings.HasPrefix(f, "mdm.seg.") {
			t.Fatalf("SegmentFileName(%q) = %q escapes the directory", name, f)
		}
		if prev, dup := seen[f]; dup {
			t.Fatalf("SegmentFileName collision: %q and %q both map to %q", prev, name, f)
		}
		seen[f] = name
		if again := SegmentFileName(name); again != f {
			t.Fatalf("SegmentFileName(%q) unstable: %q vs %q", name, f, again)
		}
	}
}

// TestBackgroundCheckpointNeverBlocksCommits is the regression test for
// the tentpole: a checkpoint stalled mid-segment-write (a slow disk,
// injected via a blocking failpoint) must not stall commits.  The log
// crosses CheckpointBytes, the background checkpointer starts and hangs
// on the armed write, and the workload keeps committing; releasing the
// block lets the checkpoint finish with the store healthy.
func TestBackgroundCheckpointNeverBlocksCommits(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	db, err := Open(Options{
		Dir:             dir,
		SyncCommits:     true,
		CheckpointBytes: 16 << 10,
		FS:              fault.NewInjector(fault.Disk{}, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("R", value.NewSchema(value.Field{Name: "v", Kind: value.KindString})); err != nil {
		t.Fatal(err)
	}

	blk := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(blk)
		}
	}
	defer release()
	point := fault.Point(fault.OpWrite, SegmentFileName("R")+".tmp")
	reg.Arm(point, 1, fault.Outcome{Block: blk})

	insert := func() error {
		return db.Run(func(tx *Tx) error {
			_, err := tx.Insert("R", value.Tuple{value.Str(strings.Repeat("x", 4096))})
			return err
		})
	}

	// Commit until the log trigger fires the background checkpoint and it
	// parks on the blocked segment write.
	rows := 0
	for reg.Fired(point) == 0 {
		if rows > 200 {
			t.Fatalf("background checkpoint never reached the segment write (auto=%d)",
				ckptCounter(t, db, "storage.ckpt.auto"))
		}
		if err := insert(); err != nil {
			t.Fatal(err)
		}
		rows++
	}

	// The checkpoint is now wedged in its fuzzy copy phase.  Commits must
	// flow: this is the whole point of the fuzzy design.
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := insert(); err != nil {
			t.Fatalf("commit %d stalled behind a blocked checkpoint: %v", i, err)
		}
		rows++
	}
	elapsed := time.Since(start)
	if !db.ckptBusy.Load() {
		t.Fatal("checkpoint finished while its segment write is blocked")
	}
	if got := ckptCounter(t, db, "storage.ckpt.segments.written"); got != 0 {
		t.Fatalf("blocked checkpoint reports %d segments written", got)
	}
	t.Logf("20 commits in %v while the checkpoint was blocked", elapsed)

	release()
	db.ckptWG.Wait()
	if cause := db.ReadOnlyCause(); cause != nil {
		t.Fatalf("store degraded after released checkpoint: %v", cause)
	}
	if got := ckptCounter(t, db, "storage.ckpt.auto"); got == 0 {
		t.Fatal("storage.ckpt.auto never incremented")
	}
	if err := insert(); err != nil {
		t.Fatal(err)
	}
	rows++
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rel := db2.Relation("R"); rel == nil || rel.Len() != rows {
		t.Fatalf("reopen sees %d rows, want %d", db2.Relation("R").Len(), rows)
	}
}

// TestBackgroundCheckpointFailureDegrades pins the failure policy for
// automatic checkpoints: with no caller to hand the error to, a failed
// background checkpoint degrades the store to read-only rather than
// silently retrying against a sick disk.
func TestBackgroundCheckpointFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	db, err := Open(Options{
		Dir:             dir,
		SyncCommits:     true,
		CheckpointBytes: 16 << 10,
		FS:              fault.NewInjector(fault.Disk{}, reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("R", value.NewSchema(value.Field{Name: "v", Kind: value.KindString})); err != nil {
		t.Fatal(err)
	}
	point := fault.Point(fault.OpWrite, SegmentFileName("R")+".tmp")
	reg.Arm(point, 1, fault.Outcome{})

	for i := 0; i < 200 && !db.ReadOnly(); i++ {
		err := db.Run(func(tx *Tx) error {
			_, err := tx.Insert("R", value.Tuple{value.Str(strings.Repeat("x", 4096))})
			return err
		})
		db.ckptWG.Wait() // let any background attempt finish
		if err != nil && !db.ReadOnly() {
			t.Fatal(err)
		}
	}
	cause := db.ReadOnlyCause()
	if cause == nil {
		t.Fatal("store not degraded after background checkpoint failure")
	}
	if !strings.Contains(cause.Error(), "automatic checkpoint") {
		t.Fatalf("degrade cause does not name the automatic checkpoint: %v", cause)
	}
	if got := ckptCounter(t, db, "storage.ckpt.auto"); got == 0 {
		t.Fatal("storage.ckpt.auto never incremented")
	}
	db.Close() // reports the degradation; nothing more to assert
}
