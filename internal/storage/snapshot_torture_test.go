package storage

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/fault/torture"
	"repro/internal/value"
)

// snapTortureRows is the fixed row count of the snapshot torture
// relation.  Every committed transaction rewrites all of them to one
// version number, so "every visible row carries the same version" is
// exactly transaction atomicity as seen by a snapshot.
const snapTortureRows = 4

// TestSnapshotTortureCrashRecovery drives the MVCC read path through
// crash-recovery cycles at every durability-relevant failpoint.  Each
// simulated lifetime rewrites all rows to successive version numbers in
// single transactions while snapshots pinned before, during, and after
// the writes assert they only ever observe whole commits; after each
// crash the reopened store must serve fresh snapshots that agree
// exactly with the locking read path (the version store is reseeded
// from the recovered heap), including over the secondary index, and
// vacuum must run clean.  Uncommitted work, torn multi-row states, and
// stale post-crash version chains would all surface here.
func TestSnapshotTortureCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	r := torture.New(t)

	wal := filepath.Join(dir, "mdm.wal")
	segTmp := filepath.Join(dir, "mdm.seg.S.tmp")
	manTmp := filepath.Join(dir, "mdm.manifest.tmp")
	points := []string{
		fault.Point(fault.OpWrite, wal),
		fault.Point(fault.OpSync, wal),
		fault.Point(fault.OpTruncate, wal),
		fault.Point(fault.OpWrite, segTmp),
		fault.Point(fault.OpRename, segTmp),
		fault.Point(fault.OpWrite, manTmp),
		fault.Point(fault.OpRename, manTmp),
		fault.Point(fault.OpSyncDir, dir),
		fault.Point(fault.OpRead, wal),
		"logic:ckpt.post-manifest",
	}

	maxNth := 10
	if testing.Short() {
		maxNth = 3
	}

	cycle := 0
	for _, point := range points {
		for nth := 1; nth <= maxNth; nth++ {
			cycle++
			crashed, err := r.CrashCycle(point, nth, func() error {
				return snapTortureLifetime(dir, r.FS, int64(cycle))
			})
			if err != nil {
				t.Fatalf("point %s nth %d: workload failed: %v", point, nth, err)
			}
			if !crashed {
				break
			}
			snapTortureVerify(t, dir, r.FS, point, nth)
		}
	}

	t.Logf("snapshot torture: %d crash-recovery cycles across %d failpoints", r.Cycles, len(r.CrashesAt))
	minCycles := 30
	if testing.Short() {
		minCycles = 10
	}
	if r.Cycles < minCycles {
		t.Fatalf("only %d crash-recovery cycles, want >= %d", r.Cycles, minCycles)
	}
}

// snapTortureCheck asserts snapshot s sees a whole commit: exactly
// snapTortureRows rows, all carrying one version.  want < 0 accepts any
// single version and returns it.
func snapTortureCheck(s *Snap, want int64) (int64, error) {
	versions := map[int64]int{}
	if err := s.Scan("S", func(_ RowID, tu value.Tuple) bool {
		versions[tu[0].AsInt()]++
		return true
	}); err != nil {
		return 0, err
	}
	if len(versions) != 1 {
		return 0, fmt.Errorf("snapshot at CSN %d sees torn state: %v", s.CSN(), versions)
	}
	for v, n := range versions {
		if n != snapTortureRows {
			return 0, fmt.Errorf("snapshot at CSN %d sees %d rows of version %d", s.CSN(), n, v)
		}
		if want >= 0 && v != want {
			return 0, fmt.Errorf("snapshot at CSN %d sees version %d, want %d", s.CSN(), v, want)
		}
		return v, nil
	}
	return 0, fmt.Errorf("snapshot at CSN %d sees no rows", s.CSN())
}

// snapTortureSetup seeds the fixed rows on first use.  Seeding is one
// transaction, so across crashes the relation has either zero rows or
// all of them.
func snapTortureSetup(db *DB) error {
	rel := db.Relation("S")
	if rel == nil {
		if _, err := db.CreateRelation("S", value.NewSchema(
			value.Field{Name: "v", Kind: value.KindInt},
			value.Field{Name: "slot", Kind: value.KindInt},
		)); err != nil {
			return err
		}
		if err := db.CreateIndex("S", IndexSpec{Name: "S_v", Columns: []string{"v"}}); err != nil {
			return err
		}
		rel = db.Relation("S")
	} else if rel.findIndex("S_v") == nil {
		// A torn log tail can lose the index record but keep the
		// relation; recreate it.
		if err := db.CreateIndex("S", IndexSpec{Name: "S_v", Columns: []string{"v"}}); err != nil {
			return err
		}
	}
	if rel.Len() == snapTortureRows {
		return nil
	}
	if rel.Len() != 0 {
		return fmt.Errorf("seed relation has %d rows, want 0 or %d", rel.Len(), snapTortureRows)
	}
	tx := db.Begin()
	for i := 0; i < snapTortureRows; i++ {
		if _, err := tx.Insert("S", value.Tuple{value.Int(0), value.Int(int64(i))}); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// snapTortureLifetime is one simulated process lifetime, cut short at
// any point by an armed crash.
func snapTortureLifetime(dir string, fs fault.FS, seed int64) error {
	db, err := Open(Options{Dir: dir, SyncCommits: true, FS: fs})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer db.Close()
	if err := snapTortureSetup(db); err != nil {
		return err
	}

	ctx := context.Background()
	// A fresh snapshot right after recovery must agree with the locking
	// read path: the version store was reseeded from the recovered heap.
	base, err := db.BeginSnapshot(ctx)
	if err != nil {
		return err
	}
	baseV, err := snapTortureCheck(base, -1)
	if err != nil {
		base.Close()
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	v := baseV
	for i := 0; i < 20; i++ {
		v++
		tx := db.Begin()
		werr := func() error {
			var ids []RowID
			if err := tx.Scan("S", func(id RowID, _ value.Tuple) bool {
				ids = append(ids, id)
				return true
			}); err != nil {
				return err
			}
			for slot, id := range ids {
				if err := tx.Update("S", id, value.Tuple{value.Int(v), value.Int(int64(slot))}); err != nil {
					return err
				}
			}
			return nil
		}()
		if werr != nil {
			tx.Abort()
			return werr
		}
		if rng.Intn(4) == 0 { // aborted rewrites must stay invisible
			tx.Abort()
			v--
		} else if err := tx.Commit(); err != nil {
			return fmt.Errorf("commit v%d: %w", v, err)
		}

		// The lifetime-old snapshot still sees its pinned version, and a
		// fresh one sees exactly the last commit.
		if _, err := snapTortureCheck(base, baseV); err != nil {
			base.Close()
			return err
		}
		cur, err := db.BeginSnapshot(ctx)
		if err != nil {
			base.Close()
			return err
		}
		_, cerr := snapTortureCheck(cur, v)
		cur.Close()
		if cerr != nil {
			base.Close()
			return cerr
		}

		if i%7 == 6 {
			db.Vacuum()
			if err := db.Checkpoint(); err != nil {
				base.Close()
				return fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	base.Close()
	return db.Close()
}

// snapTortureVerify reopens after a crash and checks the MVCC read path
// against the locking one: fresh snapshots serve exactly the recovered
// heap, over the heap scan and the secondary index alike, and a vacuum
// pass leaves single-version chains with empty history.
func snapTortureVerify(t *testing.T, dir string, fs fault.FS, point string, nth int) {
	t.Helper()
	db, err := Open(Options{Dir: dir, SyncCommits: true, FS: fs})
	if err != nil {
		t.Fatalf("reopen after crash at %s (hit %d): %v", point, nth, err)
	}
	defer db.Close()

	rel := db.Relation("S")
	if rel == nil {
		return // crashed before the schema became durable
	}
	locked := map[RowID]string{}
	tx := db.Begin()
	if err := tx.Scan("S", func(id RowID, tu value.Tuple) bool {
		locked[id] = encTuple(tu)
		return true
	}); err != nil {
		t.Fatalf("after crash at %s (hit %d): scan: %v", point, nth, err)
	}
	tx.Abort()

	s, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snapped := map[RowID]string{}
	if err := s.Scan("S", func(id RowID, tu value.Tuple) bool {
		snapped[id] = encTuple(tu)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !modelsEqual(locked, snapped) {
		t.Fatalf("after crash at %s (hit %d): snapshot scan (%d rows) disagrees with locking scan (%d rows)",
			point, nth, len(snapped), len(locked))
	}
	if len(locked) > 0 {
		if _, err := snapTortureCheck(s, -1); err != nil {
			t.Fatalf("after crash at %s (hit %d): %v", point, nth, err)
		}
	}
	if rel.findIndex("S_v") != nil {
		viaIndex := map[RowID]string{}
		if err := s.IndexRange("S", "S_v", nil, nil, false, func(id RowID, tu value.Tuple) bool {
			viaIndex[id] = encTuple(tu)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !modelsEqual(locked, viaIndex) {
			t.Fatalf("after crash at %s (hit %d): snapshot index scan (%d rows) disagrees with heap (%d rows)",
				point, nth, len(viaIndex), len(locked))
		}
	}
	db.Vacuum()
	if chains, old, hist := rel.VersionStats(); old != 0 || hist != 0 {
		t.Fatalf("after crash at %s (hit %d): vacuum left chains=%d old=%d hist=%d with no snapshot open before this one",
			point, nth, chains, old, hist)
	}
}
