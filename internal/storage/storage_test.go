package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

func memDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func noteSchema() *value.Schema {
	return value.NewSchema(
		value.Field{Name: "name", Kind: value.KindInt},
		value.Field{Name: "pitch", Kind: value.KindInt},
		value.Field{Name: "label", Kind: value.KindString},
	)
}

func TestCreateRelation(t *testing.T) {
	db := memDB(t)
	r, err := db.CreateRelation("NOTE", noteSchema())
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "NOTE" || r.Schema().Len() != 3 {
		t.Fatal("relation shape")
	}
	if _, err := db.CreateRelation("NOTE", noteSchema()); err == nil {
		t.Fatal("duplicate relation should fail")
	}
	if db.Relation("NOTE") == nil || db.Relation("NOPE") != nil {
		t.Fatal("lookup")
	}
	if len(db.Relations()) != 1 {
		t.Fatal("Relations()")
	}
	if err := db.DropRelation("NOTE"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("NOTE"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	tx := db.Begin()
	id, err := tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("c4")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx.Get("NOTE", id)
	if err != nil || got[1].AsInt() != 60 {
		t.Fatalf("get: %v %v", got, err)
	}
	if err := tx.Update("NOTE", id, value.Tuple{value.Int(1), value.Int(62), value.Str("d4")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.UpdateField("NOTE", id, "pitch", value.Int(64)); err != nil {
		t.Fatal(err)
	}
	got, _ = tx.Get("NOTE", id)
	if got[1].AsInt() != 64 || got[2].AsString() != "d4" {
		t.Fatalf("after updates: %v", got)
	}
	if err := tx.Delete("NOTE", id); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("NOTE", id); err == nil {
		t.Fatal("get after delete")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxValidation(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	tx := db.Begin()
	defer tx.Abort()
	if _, err := tx.Insert("NOTE", value.Tuple{value.Int(1)}); err == nil {
		t.Fatal("arity violation accepted")
	}
	if _, err := tx.Insert("NOTE", value.Tuple{value.Str("x"), value.Int(1), value.Str("y")}); err == nil {
		t.Fatal("kind violation accepted")
	}
	if _, err := tx.Insert("NOPE", value.Tuple{}); err == nil {
		t.Fatal("missing relation accepted")
	}
	if err := tx.Delete("NOTE", 99); err == nil {
		t.Fatal("delete missing row accepted")
	}
	if err := tx.Update("NOTE", 99, value.Tuple{value.Int(1), value.Int(2), value.Str("z")}); err == nil {
		t.Fatal("update missing row accepted")
	}
	if err := tx.UpdateField("NOTE", 1, "nope", value.Int(1)); err == nil {
		t.Fatal("missing field accepted")
	}
}

func TestTxDone(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatal("double commit")
	}
	if _, err := tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(2), value.Str("x")}); !errors.Is(err, ErrTxDone) {
		t.Fatal("insert after commit")
	}
	tx.Abort() // no-op, must not panic
}

func TestAbortRollsBack(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	// Committed baseline row.
	var keep RowID
	db.Run(func(tx *Tx) error {
		var err error
		keep, err = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("keep")})
		return err
	})

	tx := db.Begin()
	tx.Insert("NOTE", value.Tuple{value.Int(2), value.Int(61), value.Str("drop")})
	tx.UpdateField("NOTE", keep, "pitch", value.Int(99))
	tx.Delete("NOTE", keep)
	tx.Abort()

	tx2 := db.Begin()
	defer tx2.Abort()
	got, err := tx2.Get("NOTE", keep)
	if err != nil {
		t.Fatal("baseline row lost after abort")
	}
	if got[1].AsInt() != 60 {
		t.Fatalf("update not rolled back: %v", got)
	}
	count := 0
	tx2.Scan("NOTE", func(id RowID, _ value.Tuple) bool { count++; return true })
	if count != 1 {
		t.Fatalf("abort left %d rows, want 1", count)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	db.Run(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(int64(50 + i)), value.Str("n")})
		}
		return nil
	})
	var ids []RowID
	db.Run(func(tx *Tx) error {
		return tx.Scan("NOTE", func(id RowID, _ value.Tuple) bool {
			ids = append(ids, id)
			return len(ids) < 5
		})
	})
	if len(ids) != 5 {
		t.Fatalf("early stop: %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("scan not in rowid order")
		}
	}
}

func TestUniqueIndex(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "by_name", Columns: []string{"name"}, Unique: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "by_name", Columns: []string{"name"}}); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "bad", Columns: []string{"nope"}}); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if err := db.CreateIndex("NOPE", IndexSpec{Name: "x", Columns: []string{"name"}}); err == nil {
		t.Fatal("index on missing relation accepted")
	}
	err := db.Run(func(tx *Tx) error {
		if _, err := tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("a")}); err != nil {
			return err
		}
		_, err := tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(61), value.Str("b")})
		return err
	})
	if err == nil {
		t.Fatal("unique violation accepted")
	}
	// The failed Run aborted; nothing should remain.
	db.Run(func(tx *Tx) error {
		count := 0
		tx.Scan("NOTE", func(RowID, value.Tuple) bool { count++; return true })
		if count != 0 {
			t.Errorf("rows after aborted run: %d", count)
		}
		return nil
	})
}

func TestUniqueIndexUpdateConflictRestoresOld(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	db.CreateIndex("NOTE", IndexSpec{Name: "by_name", Columns: []string{"name"}, Unique: true})
	var id1, id2 RowID
	db.Run(func(tx *Tx) error {
		id1, _ = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("a")})
		id2, _ = tx.Insert("NOTE", value.Tuple{value.Int(2), value.Int(61), value.Str("b")})
		return nil
	})
	tx := db.Begin()
	err := tx.Update("NOTE", id2, value.Tuple{value.Int(1), value.Int(61), value.Str("b")})
	if err == nil {
		t.Fatal("update creating duplicate key accepted")
	}
	// Old index entry must be restored: lookup by name=2 still finds id2.
	found := 0
	tx.IndexPrefixScan("NOTE", "by_name", value.Tuple{value.Int(2)}, func(id RowID, _ value.Tuple) bool {
		if id != id2 {
			t.Errorf("wrong row %d", id)
		}
		found++
		return true
	})
	if found != 1 {
		t.Fatalf("index entry lost after failed update: %d", found)
	}
	tx.Commit()
	_ = id1
}

func TestIndexScanRangeAndPrefix(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	db.CreateIndex("NOTE", IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}})
	db.Run(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(int64(i % 12)), value.Str("n")})
		}
		return nil
	})
	db.Run(func(tx *Tx) error {
		// Prefix scan: pitch == 5 should find ~8-9 rows.
		count := 0
		tx.IndexPrefixScan("NOTE", "by_pitch", value.Tuple{value.Int(5)}, func(_ RowID, tp value.Tuple) bool {
			if tp[1].AsInt() != 5 {
				t.Errorf("wrong pitch %d", tp[1].AsInt())
			}
			count++
			return true
		})
		if count != 8 {
			t.Errorf("prefix scan count = %d want 8", count)
		}
		// Range scan over [3, 6): pitches 3,4,5 in sorted order.
		lo := value.AppendKey(nil, value.Int(3))
		hi := value.AppendKey(nil, value.Int(6))
		last := int64(-1)
		n := 0
		tx.IndexScan("NOTE", "by_pitch", lo, hi, func(_ RowID, tp value.Tuple) bool {
			p := tp[1].AsInt()
			if p < 3 || p >= 6 || p < last {
				t.Errorf("range scan out of order or range: %d", p)
			}
			last = p
			n++
			return true
		})
		if n != 25 { // pitch 3 occurs 9 times (i=3..99), pitches 4,5 occur 8 times each
			t.Errorf("range count = %d", n)
		}
		if err := tx.IndexScan("NOTE", "nope", nil, nil, nil); err == nil {
			t.Error("missing index accepted")
		}
		return nil
	})
}

func TestIndexBackfill(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	db.Run(func(tx *Tx) error {
		for i := 0; i < 50; i++ {
			tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(int64(i)), value.Str("n")})
		}
		return nil
	})
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}}); err != nil {
		t.Fatal(err)
	}
	count := 0
	db.Run(func(tx *Tx) error {
		return tx.IndexScan("NOTE", "by_pitch", nil, nil, func(RowID, value.Tuple) bool { count++; return true })
	})
	if count != 50 {
		t.Fatalf("backfilled index sees %d rows", count)
	}
}

func TestConcurrentTransfers(t *testing.T) {
	// Classic isolation check: concurrent balance transfers preserve the
	// total.  Uses two relations to create lock-ordering conflicts.
	db := memDB(t)
	acct := value.NewSchema(value.Field{Name: "balance", Kind: value.KindInt})
	db.CreateRelation("A", acct)
	db.CreateRelation("B", acct)
	var aID, bID RowID
	db.Run(func(tx *Tx) error {
		aID, _ = tx.Insert("A", value.Tuple{value.Int(1000)})
		bID, _ = tx.Insert("B", value.Tuple{value.Int(1000)})
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src, dst, sid, did := "A", "B", aID, bID
				if (w+i)%2 == 0 {
					src, dst, sid, did = "B", "A", bID, aID
				}
				err := db.Run(func(tx *Tx) error {
					s, err := tx.Get(src, sid)
					if err != nil {
						return err
					}
					if err := tx.UpdateField(src, sid, "balance", value.Int(s[0].AsInt()-1)); err != nil {
						return err
					}
					d, err := tx.Get(dst, did)
					if err != nil {
						return err
					}
					return tx.UpdateField(dst, did, "balance", value.Int(d[0].AsInt()+1))
				})
				if err != nil {
					// Deadlock retries exhausted is acceptable; any
					// other error is a bug.
					t.Logf("transfer error: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	db.Run(func(tx *Tx) error {
		a, _ := tx.Get("A", aID)
		b, _ := tx.Get("B", bID)
		if a[0].AsInt()+b[0].AsInt() != 2000 {
			t.Errorf("total corrupted: %d + %d", a[0].AsInt(), b[0].AsInt())
		}
		return nil
	})
}

func TestRunRetriesAndPropagates(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	sentinel := errors.New("boom")
	if err := db.Run(func(tx *Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatal("Run should propagate non-deadlock errors")
	}
	calls := 0
	db.Run(func(tx *Tx) error { calls++; return nil })
	if calls != 1 {
		t.Fatal("Run should not retry success")
	}
}

func TestSeq(t *testing.T) {
	db := memDB(t)
	if db.NextSeq("surrogate") != 1 || db.NextSeq("surrogate") != 2 {
		t.Fatal("sequence")
	}
	if db.NextSeq("other") != 1 {
		t.Fatal("sequences independent")
	}
	db.BumpSeq("surrogate", 100)
	if db.NextSeq("surrogate") != 101 {
		t.Fatal("bump")
	}
	db.BumpSeq("surrogate", 5) // no-op
	if db.NextSeq("surrogate") != 102 {
		t.Fatal("bump should not lower")
	}
}

func fullState(t *testing.T, db *DB) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for _, name := range db.Relations() {
		var rows []string
		err := db.Run(func(tx *Tx) error {
			return tx.Scan(name, func(id RowID, tp value.Tuple) bool {
				rows = append(rows, fmt.Sprintf("%d:%s", id, tp))
				return true
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = rows
	}
	return out
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateRelation("NOTE", noteSchema())
	db.CreateIndex("NOTE", IndexSpec{Name: "by_pitch", Columns: []string{"pitch"}})
	db.Run(func(tx *Tx) error {
		for i := 0; i < 20; i++ {
			tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(int64(60 + i)), value.Str("n")})
		}
		return nil
	})
	db.NextSeq("surrogate")
	db.NextSeq("surrogate")
	want := fullState(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := fullState(t, db2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("state differs after reopen:\n got %v\nwant %v", got, want)
	}
	if db2.NextSeq("surrogate") != 3 {
		t.Fatal("sequence not durable")
	}
	// Index survived: range scan works.
	count := 0
	db2.Run(func(tx *Tx) error {
		return tx.IndexScan("NOTE", "by_pitch", nil, nil, func(RowID, value.Tuple) bool { count++; return true })
	})
	if count != 20 {
		t.Fatalf("index after reopen: %d", count)
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	// Simulate a crash: sync the WAL but never checkpoint or Close.
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateRelation("NOTE", noteSchema())
	// Checkpoint so the relation definition is in the snapshot.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Tx) error {
		tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("committed")})
		return nil
	})
	// An uncommitted transaction in the log must not be replayed.
	tx := db.Begin()
	tx.Insert("NOTE", value.Tuple{value.Int(2), value.Int(61), value.Str("uncommitted")})
	db.Sync()
	// Crash: drop the DB without Close.

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var labels []string
	db2.Run(func(tx *Tx) error {
		return tx.Scan("NOTE", func(_ RowID, tp value.Tuple) bool {
			labels = append(labels, tp[2].AsString())
			return true
		})
	})
	if len(labels) != 1 || labels[0] != "committed" {
		t.Fatalf("recovered rows: %v", labels)
	}
}

func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CheckpointBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateRelation("NOTE", noteSchema())
	for i := 0; i < 200; i++ {
		db.Run(func(tx *Tx) error {
			_, err := tx.Insert("NOTE", value.Tuple{value.Int(int64(i)), value.Int(60), value.Str("xxxxxxxxxxxxxxxx")})
			return err
		})
	}
	// The log must have been truncated by automatic checkpoints.
	if sz := dbLogSize(db); sz > 64*1024 {
		t.Fatalf("log grew unbounded: %d bytes", sz)
	}
	db.Close()
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	count := 0
	db2.Run(func(tx *Tx) error {
		return tx.Scan("NOTE", func(RowID, value.Tuple) bool { count++; return true })
	})
	if count != 200 {
		t.Fatalf("rows after checkpointed reopen: %d", count)
	}
}

func dbLogSize(db *DB) int64 {
	if db.log == nil {
		return 0
	}
	return db.log.Size()
}

func TestNoWALMode(t *testing.T) {
	db, err := Open(Options{NoWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateRelation("NOTE", noteSchema())
	if err := db.Run(func(tx *Tx) error {
		_, err := tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(2), value.Str("x")})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoDirtyReads: 2PL prevents a reader from observing uncommitted
// writes — the reader blocks until the writer finishes, then sees the
// committed state (§2's "standard" concurrency duty).
func TestNoDirtyReads(t *testing.T) {
	db := memDB(t)
	db.CreateRelation("NOTE", noteSchema())
	var id RowID
	db.Run(func(tx *Tx) error {
		var err error
		id, err = tx.Insert("NOTE", value.Tuple{value.Int(1), value.Int(60), value.Str("clean")})
		return err
	})
	writer := db.Begin()
	if err := writer.UpdateField("NOTE", id, "label", value.Str("dirty")); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		reader := db.Begin()
		defer reader.Abort()
		tup, err := reader.Get("NOTE", id)
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- tup[2].AsString()
	}()
	select {
	case v := <-got:
		t.Fatalf("reader returned %q while writer uncommitted", v)
	case <-time.After(50 * time.Millisecond):
		// Correct: reader is blocked on the lock.
	}
	writer.Abort() // roll back the dirty write
	select {
	case v := <-got:
		if v != "clean" {
			t.Fatalf("reader saw %q after abort", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never unblocked")
	}
}
