package storage

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/value"
)

func statsTestDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir, SyncCommits: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func fillNotes(t *testing.T, db *DB, n int) *Relation {
	t.Helper()
	schema := value.NewSchema(
		value.Field{Name: "name", Kind: value.KindString},
		value.Field{Name: "pitch", Kind: value.KindInt},
	)
	rel, err := db.CreateRelation("NOTE", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("NOTE", IndexSpec{Name: "ix_pitch", Columns: []string{"pitch"}}); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < n; i++ {
		// 12 distinct pitches, heavily duplicated.
		if _, err := tx.Insert("NOTE", value.Tuple{value.Str(fmt.Sprintf("n%d", i)), value.Int(int64(i % 12))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestIndexStats(t *testing.T) {
	db := statsTestDB(t, t.TempDir())
	rel := fillNotes(t, db, 600)

	st, ok := rel.Stats("ix_pitch")
	if !ok {
		t.Fatal("no stats for ix_pitch")
	}
	if st.Rows != 600 {
		t.Fatalf("Rows = %d, want 600", st.Rows)
	}
	if st.Distinct != 12 {
		t.Fatalf("Distinct = %d, want 12", st.Distinct)
	}
	if len(st.Boundaries) == 0 || len(st.Boundaries) > histBuckets-1 {
		t.Fatalf("Boundaries = %d", len(st.Boundaries))
	}
	if _, ok := rel.Stats("no_such_index"); ok {
		t.Fatal("stats for a missing index")
	}

	// Within the staleness window the cached summary is returned as-is.
	tx := db.Begin()
	for i := 0; i < 10; i++ {
		if _, err := tx.Insert("NOTE", value.Tuple{value.Str("x"), value.Int(99)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st2, _ := rel.Stats("ix_pitch")
	if st2.Rows != 600 {
		t.Fatalf("stats rebuilt inside staleness window: Rows = %d", st2.Rows)
	}

	// A checkpoint forces the rebuild.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st3, _ := rel.Stats("ix_pitch")
	if st3.Rows != 610 || st3.Distinct != 13 {
		t.Fatalf("post-checkpoint stats: Rows=%d Distinct=%d, want 610/13", st3.Rows, st3.Distinct)
	}
	if got := db.Obs().Counter("quel.stats.rebuilds").Value(); got == 0 {
		t.Fatal("quel.stats.rebuilds counter never incremented")
	}

	// Enough churn triggers a lazy rebuild without a checkpoint.
	tx = db.Begin()
	for i := 0; i < 600; i++ {
		if _, err := tx.Insert("NOTE", value.Tuple{value.Str("y"), value.Int(50)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st4, _ := rel.Stats("ix_pitch")
	if st4.Rows != 1210 {
		t.Fatalf("lazy rebuild did not fire: Rows = %d, want 1210", st4.Rows)
	}
}

func TestSplitIndexRange(t *testing.T) {
	db := statsTestDB(t, t.TempDir())
	rel := fillNotes(t, db, 600)

	bounds, ok := rel.SplitIndexRange("ix_pitch", nil, nil, 8)
	if !ok {
		t.Fatal("no such index")
	}
	if len(bounds) == 0 || len(bounds) > 7 {
		t.Fatalf("bounds = %d", len(bounds))
	}
	// Sub-ranges must cover the index exactly.
	total := 0
	prev := []byte(nil)
	for _, b := range append(bounds, nil) {
		n, _ := rel.IndexRangeCount("ix_pitch", prev, b)
		total += n
		prev = b
	}
	if total != 600 {
		t.Fatalf("sub-ranges cover %d entries, want 600", total)
	}
	if _, ok := rel.SplitIndexRange("nope", nil, nil, 4); ok {
		t.Fatal("split on missing index")
	}
}

func TestDropIndex(t *testing.T) {
	dir := t.TempDir()
	db := statsTestDB(t, dir)
	fillNotes(t, db, 100)

	if err := db.DropIndex("NOTE", "nope"); err == nil || !strings.Contains(err.Error(), "no index") {
		t.Fatalf("drop missing index: %v", err)
	}
	if err := db.DropIndex("NOPE", "ix_pitch"); err == nil || !strings.Contains(err.Error(), "no relation") {
		t.Fatalf("drop on missing relation: %v", err)
	}
	if err := db.DropIndex("NOTE", "ix_pitch"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Relation("NOTE").Stats("ix_pitch"); ok {
		t.Fatal("stats still served for dropped index")
	}
	// Mutations after the drop must not touch the dead index.
	tx := db.Begin()
	if _, err := tx.Insert("NOTE", value.Tuple{value.Str("z"), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The drop is durable: reopen replays RecDropIndex over the
	// pre-drop checkpoint state.
	db.Close()
	db2 := statsTestDB(t, dir)
	rel := db2.Relation("NOTE")
	if rel == nil {
		t.Fatal("NOTE missing after reopen")
	}
	for _, spec := range rel.Indexes() {
		if spec.Name == "ix_pitch" {
			t.Fatal("dropped index resurrected by recovery")
		}
	}
	if rel.Len() != 101 {
		t.Fatalf("rows after reopen = %d, want 101", rel.Len())
	}
	if err := rel.CheckIndexes(); err != nil {
		t.Fatal(err)
	}
}
