package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/value"
)

// Snapshot format: a checkpoint writes the complete database image to a
// temporary file which is atomically renamed over the previous snapshot.
//
//	magic "MDMSNAP1"
//	uvarint sequence count, then (name, value) pairs
//	uvarint relation count, then per relation:
//	    name, nextRow
//	    schema: uvarint field count, then (name, kind, reftype)
//	    indexes: uvarint count, then (name, unique, columns)
//	    rows: uvarint count, then (rowid, tuple)
//	crc32c of everything after the magic

const snapshotMagic = "MDMSNAP1"

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeSnapshot writes the full database image atomically: temp file,
// fsync, rename over the old snapshot, fsync of the directory.  The
// final directory fsync is what makes the rename itself durable — a
// crash before it may legally yield the previous snapshot, which is why
// the log is only truncated after this function returns.  It returns
// the snapshot's byte size for checkpoint accounting.
func (db *DB) writeSnapshot(path string) (int64, error) {
	tmp := path + ".tmp"
	f, err := db.fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("storage: snapshot: %w", err)
	}
	defer db.fs.Remove(tmp)
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(snapshotMagic); err != nil {
		f.Close()
		return 0, err
	}
	crc := uint32(0)
	size := int64(len(snapshotMagic))
	emit := func(buf []byte) error {
		crc = crc32.Update(crc, castagnoli, buf)
		size += int64(len(buf))
		_, err := w.Write(buf)
		return err
	}

	var buf []byte

	// Sequences.
	db.seqMu.Lock()
	seqNames := make([]string, 0, len(db.seqs))
	for n := range db.seqs {
		seqNames = append(seqNames, n)
	}
	sort.Strings(seqNames)
	buf = binary.AppendUvarint(buf[:0], uint64(len(seqNames)))
	for _, n := range seqNames {
		buf = appendString(buf, n)
		buf = binary.AppendUvarint(buf, db.seqs[n])
	}
	db.seqMu.Unlock()
	if err := emit(buf); err != nil {
		f.Close()
		return 0, err
	}

	// Relations.
	db.mu.RLock()
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	rels := make([]*Relation, len(names))
	for i, n := range names {
		rels[i] = db.relations[n]
	}
	db.mu.RUnlock()

	buf = binary.AppendUvarint(buf[:0], uint64(len(rels)))
	if err := emit(buf); err != nil {
		f.Close()
		return 0, err
	}
	for _, rel := range rels {
		rel.mu.RLock()
		buf = appendString(buf[:0], rel.name)
		buf = binary.AppendUvarint(buf, rel.nextRow)
		buf = binary.AppendUvarint(buf, uint64(rel.schema.Len()))
		for i := 0; i < rel.schema.Len(); i++ {
			fl := rel.schema.Field(i)
			buf = appendString(buf, fl.Name)
			buf = append(buf, byte(fl.Kind))
			buf = appendString(buf, fl.RefType)
		}
		buf = binary.AppendUvarint(buf, uint64(len(rel.indexes)))
		for _, ix := range rel.indexes {
			buf = appendString(buf, ix.spec.Name)
			if ix.spec.Unique {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = binary.AppendUvarint(buf, uint64(len(ix.spec.Columns)))
			for _, c := range ix.spec.Columns {
				buf = appendString(buf, c)
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(rel.rows)))
		if err := emit(buf); err != nil {
			rel.mu.RUnlock()
			f.Close()
			return 0, err
		}
		ids := make([]RowID, 0, len(rel.rows))
		for id := range rel.rows {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			buf = binary.AppendUvarint(buf[:0], id)
			buf = value.AppendTuple(buf, rel.rows[id])
			if err := emit(buf); err != nil {
				rel.mu.RUnlock()
				f.Close()
				return 0, err
			}
		}
		rel.mu.RUnlock()
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(tail[:]); err != nil {
		f.Close()
		return 0, err
	}
	size += 4
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := db.fs.Rename(tmp, path); err != nil {
		return 0, err
	}
	if err := db.fs.SyncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return size, nil
}

// loadSnapshot restores the database image from path.  A missing file is
// an empty database.
func (db *DB) loadSnapshot(path string) error {
	data, err := db.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: load snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return errors.New("storage: snapshot: bad magic")
	}
	body := data[len(snapshotMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return errors.New("storage: snapshot: checksum mismatch")
	}

	pos := 0
	readUvarint := func() (uint64, error) {
		u, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, errors.New("storage: snapshot: bad varint")
		}
		pos += n
		return u, nil
	}
	readStr := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if uint64(len(body)-pos) < n {
			return "", errors.New("storage: snapshot: short string")
		}
		s := string(body[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}

	nseq, err := readUvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nseq; i++ {
		name, err := readStr()
		if err != nil {
			return err
		}
		val, err := readUvarint()
		if err != nil {
			return err
		}
		db.seqs[name] = val
	}

	nrel, err := readUvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nrel; i++ {
		name, err := readStr()
		if err != nil {
			return err
		}
		nextRow, err := readUvarint()
		if err != nil {
			return err
		}
		nfields, err := readUvarint()
		if err != nil {
			return err
		}
		fields := make([]value.Field, nfields)
		for j := range fields {
			fn, err := readStr()
			if err != nil {
				return err
			}
			if pos >= len(body) {
				return errors.New("storage: snapshot: short field kind")
			}
			kind := value.Kind(body[pos])
			pos++
			rt, err := readStr()
			if err != nil {
				return err
			}
			fields[j] = value.Field{Name: fn, Kind: kind, RefType: rt}
		}
		rel := newRelation(name, value.NewSchema(fields...))
		rel.nextRow = nextRow
		nix, err := readUvarint()
		if err != nil {
			return err
		}
		specs := make([]IndexSpec, nix)
		for j := range specs {
			ixName, err := readStr()
			if err != nil {
				return err
			}
			if pos >= len(body) {
				return errors.New("storage: snapshot: short index flag")
			}
			unique := body[pos] == 1
			pos++
			ncols, err := readUvarint()
			if err != nil {
				return err
			}
			cols := make([]string, ncols)
			for k := range cols {
				if cols[k], err = readStr(); err != nil {
					return err
				}
			}
			specs[j] = IndexSpec{Name: ixName, Unique: unique, Columns: cols}
		}
		nrows, err := readUvarint()
		if err != nil {
			return err
		}
		for j := uint64(0); j < nrows; j++ {
			id, err := readUvarint()
			if err != nil {
				return err
			}
			t, n, err := value.DecodeTuple(body[pos:])
			if err != nil {
				return fmt.Errorf("storage: snapshot: relation %s row %d: %w", name, id, err)
			}
			pos += n
			rel.rows[id] = t
			if id >= rel.nextRow {
				rel.nextRow = id + 1
			}
		}
		for _, spec := range specs {
			if err := rel.addIndex(spec); err != nil {
				return err
			}
		}
		rel.statsRebuilds = db.m.statsRebuilds
		db.relations[name] = rel
	}
	return nil
}
