package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/value"
)

// Segmented snapshot format (see DESIGN.md §10): instead of one
// monolithic image, a checkpoint maintains one segment file per relation
// plus a small manifest that names the segment set, the sequences, and
// the checkpoint epoch.  Segments are immutable once installed (they are
// replaced whole, via tmp+rename), so a checkpoint that finds a relation
// unchanged since its segment was written simply keeps the file — the
// incremental half of fuzzy checkpointing.
//
// Manifest ("mdm.manifest"):
//
//	magic "MDMMAN01"
//	uvarint epoch
//	uvarint sequence count, then (name, value) pairs
//	uvarint relation count, then per relation:
//	    name, segment file base name, covered CSN, segment byte size
//	crc32c of everything after the magic
//
// Segment ("mdm.seg.<relation>"):
//
//	magic "MDMSEG01"
//	relation name, covered CSN (the version floor: the row image is the
//	    committed state at exactly this CSN), nextRow
//	schema: uvarint field count, then (name, kind, reftype)
//	indexes: uvarint count, then (name, unique, columns, stats?)
//	    stats? = 0 | 1 rows distinct unique (uvarint boundary count,
//	    boundaries) — the planner statistics current at segment write
//	rows: uvarint count, then (rowid, tuple)
//	crc32c of everything after the magic
//
// Crash safety: segments are written and renamed into place before the
// manifest that references them is installed, and the log is only reset
// after the manifest rename is durable.  A crash anywhere in between
// leaves either the old manifest or the new one, and in both cases the
// full pre-reset log: replaying it over segment images taken at any CSN
// it covers converges, because replay is idempotent redo.

const (
	manifestMagic = "MDMMAN01"
	segmentMagic  = "MDMSEG01"
	// segmentPrefix starts every segment file's base name.
	segmentPrefix = "mdm.seg."
)

// dirtyDDL is the dirty stamp used where no precise CSN exists — schema
// operations, crash-recovery replay, and replica apply.  It compares
// greater than every covered CSN, so the relation is rewritten by the
// next checkpoint unconditionally.
const dirtyDDL = ^uint64(0)

// manifestEntry describes one relation segment referenced by the
// manifest.
type manifestEntry struct {
	name    string // relation name
	file    string // segment file base name within the database directory
	covered uint64 // CSN the segment's row image corresponds to
	bytes   int64  // segment file size
}

// SegmentFileName returns the base name of the segment file holding the
// named relation.  Bytes outside [A-Za-z0-9_.-] are percent-encoded so
// any relation name maps to a distinct, predictable file name.
func SegmentFileName(relation string) string {
	safe := true
	for i := 0; i < len(relation); i++ {
		c := relation[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
			c == '_' || c == '.' || c == '-') {
			safe = false
			break
		}
	}
	if safe {
		return segmentPrefix + relation
	}
	buf := make([]byte, 0, len(relation)*3)
	const hexdigits = "0123456789abcdef"
	for i := 0; i < len(relation); i++ {
		c := relation[i]
		if 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
			c == '_' || c == '.' || c == '-' {
			buf = append(buf, c)
		} else {
			buf = append(buf, '%', hexdigits[c>>4], hexdigits[c&0xf])
		}
	}
	return segmentPrefix + string(buf)
}

func (db *DB) manifestPath() string { return filepath.Join(db.opts.Dir, ManifestFileName) }

// ManifestSegments inspects a checkpoint file image.  For a segmented
// manifest it returns the base names of the segment files the manifest
// references (the files a bootstrap must copy alongside it) and
// isManifest true; for a legacy monolithic snapshot it returns (nil,
// false, nil).  Anything else is an error.
func ManifestSegments(data []byte) (files []string, isManifest bool, err error) {
	if len(data) >= len(snapshotMagic) && string(data[:len(snapshotMagic)]) == snapshotMagic {
		return nil, false, nil
	}
	body, err := checkFrame(data, manifestMagic, "manifest")
	if err != nil {
		return nil, false, err
	}
	r := &byteReader{body: body, ctx: "manifest"}
	if _, err := r.uvarint(); err != nil { // epoch
		return nil, false, err
	}
	nseq, err := r.uvarint()
	if err != nil {
		return nil, false, err
	}
	for i := uint64(0); i < nseq; i++ {
		if _, err := r.str(); err != nil {
			return nil, false, err
		}
		if _, err := r.uvarint(); err != nil {
			return nil, false, err
		}
	}
	nrel, err := r.uvarint()
	if err != nil {
		return nil, false, err
	}
	for i := uint64(0); i < nrel; i++ {
		if _, err := r.str(); err != nil { // relation name
			return nil, false, err
		}
		file, err := r.str()
		if err != nil {
			return nil, false, err
		}
		if _, err := r.uvarint(); err != nil { // covered CSN
			return nil, false, err
		}
		if _, err := r.uvarint(); err != nil { // byte size
			return nil, false, err
		}
		files = append(files, file)
	}
	return files, true, nil
}

// writeSegmentFile writes the named relation's segment at CSN at — the
// committed row image the MVCC version store serves at that CSN — via
// tmp file, fsync, rename.  The rename only becomes durable at the next
// directory fsync, which the checkpoint issues before installing the
// manifest that references the file.  The scan takes only brief shared
// holds of the relation latch, never transaction locks: writers proceed
// concurrently, which is what makes the checkpoint fuzzy.
func (db *DB) writeSegmentFile(rel *Relation, at uint64) (manifestEntry, error) {
	type segIndex struct {
		spec  IndexSpec
		stats *IndexStats
	}
	rel.mu.RLock()
	nextRow := rel.nextRow
	schema := rel.schema
	ixs := make([]segIndex, 0, len(rel.indexes))
	for _, ix := range rel.indexes {
		ixs = append(ixs, segIndex{spec: ix.spec, stats: ix.stats})
	}
	rel.mu.RUnlock()

	type segRow struct {
		id RowID
		t  value.Tuple
	}
	var rows []segRow
	rel.snapScan(at, func(id RowID, t value.Tuple) bool {
		rows = append(rows, segRow{id, t})
		return true
	})

	base := SegmentFileName(rel.name)
	path := filepath.Join(db.opts.Dir, base)
	tmp := path + ".tmp"
	f, err := db.fs.Create(tmp)
	if err != nil {
		return manifestEntry{}, fmt.Errorf("storage: segment %s: %w", rel.name, err)
	}
	defer db.fs.Remove(tmp)
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(segmentMagic); err != nil {
		f.Close()
		return manifestEntry{}, err
	}
	crc := uint32(0)
	size := int64(len(segmentMagic))
	emit := func(buf []byte) error {
		crc = crc32.Update(crc, castagnoli, buf)
		size += int64(len(buf))
		_, err := w.Write(buf)
		return err
	}

	var buf []byte
	buf = appendString(buf, rel.name)
	buf = binary.AppendUvarint(buf, at)
	buf = binary.AppendUvarint(buf, nextRow)
	buf = binary.AppendUvarint(buf, uint64(schema.Len()))
	for i := 0; i < schema.Len(); i++ {
		fl := schema.Field(i)
		buf = appendString(buf, fl.Name)
		buf = append(buf, byte(fl.Kind))
		buf = appendString(buf, fl.RefType)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ixs)))
	for _, ix := range ixs {
		buf = appendString(buf, ix.spec.Name)
		if ix.spec.Unique {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(ix.spec.Columns)))
		for _, c := range ix.spec.Columns {
			buf = appendString(buf, c)
		}
		if ix.stats == nil {
			buf = append(buf, 0)
		} else {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(ix.stats.Rows))
			buf = binary.AppendUvarint(buf, uint64(ix.stats.Distinct))
			buf = binary.AppendUvarint(buf, uint64(len(ix.stats.Boundaries)))
			for _, b := range ix.stats.Boundaries {
				buf = binary.AppendUvarint(buf, uint64(len(b)))
				buf = append(buf, b...)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	if err := emit(buf); err != nil {
		f.Close()
		return manifestEntry{}, err
	}
	for _, r := range rows {
		buf = binary.AppendUvarint(buf[:0], r.id)
		buf = value.AppendTuple(buf, r.t)
		if err := emit(buf); err != nil {
			f.Close()
			return manifestEntry{}, err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(tail[:]); err != nil {
		f.Close()
		return manifestEntry{}, err
	}
	size += 4
	if err := w.Flush(); err != nil {
		f.Close()
		return manifestEntry{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return manifestEntry{}, err
	}
	if err := f.Close(); err != nil {
		return manifestEntry{}, err
	}
	if err := db.fs.Rename(tmp, path); err != nil {
		return manifestEntry{}, err
	}
	return manifestEntry{name: rel.name, file: base, covered: at, bytes: size}, nil
}

// writeManifestFile installs the manifest naming the given entries:
// tmp file, fsync, rename over the previous manifest.  The caller makes
// the rename durable with a directory fsync.  It returns the manifest's
// byte size.
func (db *DB) writeManifestFile(entries []manifestEntry, epoch uint64) (int64, error) {
	path := db.manifestPath()
	tmp := path + ".tmp"
	f, err := db.fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("storage: manifest: %w", err)
	}
	defer db.fs.Remove(tmp)

	var buf []byte
	buf = binary.AppendUvarint(buf, epoch)
	db.seqMu.Lock()
	seqNames := make([]string, 0, len(db.seqs))
	for n := range db.seqs {
		seqNames = append(seqNames, n)
	}
	sort.Strings(seqNames)
	buf = binary.AppendUvarint(buf, uint64(len(seqNames)))
	for _, n := range seqNames {
		buf = appendString(buf, n)
		buf = binary.AppendUvarint(buf, db.seqs[n])
	}
	db.seqMu.Unlock()
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.name)
		buf = appendString(buf, e.file)
		buf = binary.AppendUvarint(buf, e.covered)
		buf = binary.AppendUvarint(buf, uint64(e.bytes))
	}

	crc := crc32.Checksum(buf, castagnoli)
	out := make([]byte, 0, len(manifestMagic)+len(buf)+4)
	out = append(out, manifestMagic...)
	out = append(out, buf...)
	out = binary.LittleEndian.AppendUint32(out, crc)
	if _, err := f.Write(out); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := db.fs.Rename(tmp, path); err != nil {
		return 0, err
	}
	return int64(len(out)), nil
}

// byteReader decodes the uvarint/string framing shared by the manifest
// and segment formats.
type byteReader struct {
	body []byte
	pos  int
	ctx  string
}

func (r *byteReader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.body[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: %s: bad varint", r.ctx)
	}
	r.pos += n
	return u, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.body)-r.pos) < n {
		return "", fmt.Errorf("storage: %s: short string", r.ctx)
	}
	s := string(r.body[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *byteReader) byte() (byte, error) {
	if r.pos >= len(r.body) {
		return 0, fmt.Errorf("storage: %s: truncated", r.ctx)
	}
	b := r.body[r.pos]
	r.pos++
	return b, nil
}

// checkFrame validates magic and trailing crc32c and returns the body.
func checkFrame(data []byte, magic, ctx string) ([]byte, error) {
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("storage: %s: bad magic", ctx)
	}
	body := data[len(magic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != want {
		return nil, fmt.Errorf("storage: %s: checksum mismatch", ctx)
	}
	return body, nil
}

// loadManifest restores the database image from the segmented snapshot,
// reporting whether a manifest was present.  A missing manifest is not
// an error — recovery then falls back to the legacy monolithic snapshot.
// Loaded relations start with their dirty stamps clear, so a reopen
// followed by a checkpoint reuses every segment the log replay did not
// touch.
func (db *DB) loadManifest(path string) (bool, error) {
	data, err := db.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("storage: load manifest: %w", err)
	}
	body, err := checkFrame(data, manifestMagic, "manifest")
	if err != nil {
		return false, err
	}
	r := &byteReader{body: body, ctx: "manifest"}
	epoch, err := r.uvarint()
	if err != nil {
		return false, err
	}
	nseq, err := r.uvarint()
	if err != nil {
		return false, err
	}
	for i := uint64(0); i < nseq; i++ {
		name, err := r.str()
		if err != nil {
			return false, err
		}
		val, err := r.uvarint()
		if err != nil {
			return false, err
		}
		db.seqs[name] = val
	}
	nrel, err := r.uvarint()
	if err != nil {
		return false, err
	}
	entries := make(map[string]manifestEntry, nrel)
	for i := uint64(0); i < nrel; i++ {
		var e manifestEntry
		if e.name, err = r.str(); err != nil {
			return false, err
		}
		if e.file, err = r.str(); err != nil {
			return false, err
		}
		if e.covered, err = r.uvarint(); err != nil {
			return false, err
		}
		sz, err := r.uvarint()
		if err != nil {
			return false, err
		}
		e.bytes = int64(sz)
		if err := db.loadSegment(e); err != nil {
			return false, err
		}
		// CSNs name commits of one process lifetime only — the clock
		// restarts at 0 on open.  A persisted covered value is therefore
		// meaningless now; floor it so any commit in this lifetime (CSN
		// >= 1) outranks it.  Relations the log replay touches are
		// force-stamped besides; untouched segments stay reusable.
		e.covered = 0
		entries[e.name] = e
	}
	db.manifest = entries
	db.manifestEpoch = epoch
	return true, nil
}

// loadSegment restores one relation from its segment file.
func (db *DB) loadSegment(e manifestEntry) error {
	data, err := db.fs.ReadFile(filepath.Join(db.opts.Dir, e.file))
	if err != nil {
		return fmt.Errorf("storage: segment %s (%s): %w", e.name, e.file, err)
	}
	ctx := "segment " + e.name
	body, err := checkFrame(data, segmentMagic, ctx)
	if err != nil {
		return err
	}
	r := &byteReader{body: body, ctx: ctx}
	name, err := r.str()
	if err != nil {
		return err
	}
	if name != e.name {
		return fmt.Errorf("storage: segment file %s holds relation %q, manifest says %q", e.file, name, e.name)
	}
	if _, err := r.uvarint(); err != nil { // covered CSN; authoritative copy is the manifest's
		return err
	}
	nextRow, err := r.uvarint()
	if err != nil {
		return err
	}
	nfields, err := r.uvarint()
	if err != nil {
		return err
	}
	fields := make([]value.Field, nfields)
	for j := range fields {
		if fields[j].Name, err = r.str(); err != nil {
			return err
		}
		kb, err := r.byte()
		if err != nil {
			return err
		}
		fields[j].Kind = value.Kind(kb)
		if fields[j].RefType, err = r.str(); err != nil {
			return err
		}
	}
	rel := newRelation(name, value.NewSchema(fields...))
	rel.nextRow = nextRow

	nix, err := r.uvarint()
	if err != nil {
		return err
	}
	specs := make([]IndexSpec, nix)
	stats := make([]*IndexStats, nix)
	for j := range specs {
		if specs[j].Name, err = r.str(); err != nil {
			return err
		}
		uniq, err := r.byte()
		if err != nil {
			return err
		}
		specs[j].Unique = uniq == 1
		ncols, err := r.uvarint()
		if err != nil {
			return err
		}
		cols := make([]string, ncols)
		for k := range cols {
			if cols[k], err = r.str(); err != nil {
				return err
			}
		}
		specs[j].Columns = cols
		have, err := r.byte()
		if err != nil {
			return err
		}
		if have == 1 {
			st := &IndexStats{Unique: specs[j].Unique}
			rows, err := r.uvarint()
			if err != nil {
				return err
			}
			st.Rows = int(rows)
			distinct, err := r.uvarint()
			if err != nil {
				return err
			}
			st.Distinct = int(distinct)
			nb, err := r.uvarint()
			if err != nil {
				return err
			}
			st.Boundaries = make([][]byte, nb)
			for k := range st.Boundaries {
				bl, err := r.uvarint()
				if err != nil {
					return err
				}
				if uint64(len(r.body)-r.pos) < bl {
					return fmt.Errorf("storage: %s: short boundary", ctx)
				}
				st.Boundaries[k] = append([]byte(nil), r.body[r.pos:r.pos+int(bl)]...)
				r.pos += int(bl)
			}
			stats[j] = st
		}
	}

	nrows, err := r.uvarint()
	if err != nil {
		return err
	}
	for j := uint64(0); j < nrows; j++ {
		id, err := r.uvarint()
		if err != nil {
			return err
		}
		t, n, err := value.DecodeTuple(r.body[r.pos:])
		if err != nil {
			return fmt.Errorf("storage: %s row %d: %w", ctx, id, err)
		}
		r.pos += n
		rel.rows[id] = t
		if id >= rel.nextRow {
			rel.nextRow = id + 1
		}
	}
	for j, spec := range specs {
		if err := rel.addIndex(spec); err != nil {
			return err
		}
		if stats[j] != nil {
			if ix := rel.findIndex(spec.Name); ix != nil {
				ix.stats = stats[j]
				ix.statsAt = rel.modCount
			}
		}
	}
	rel.statsRebuilds = db.m.statsRebuilds
	db.relations[e.name] = rel
	return nil
}
