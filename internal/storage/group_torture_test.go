package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fault/torture"
	"repro/internal/value"
)

// groupTortureWriters is the concurrency of the group-commit torture
// workload: enough writers that flush rounds regularly carry several
// batches, so crashes land mid-batch, between wakeups, and with work
// still queued behind the leader.
const groupTortureWriters = 4

// TestGroupCommitTortureCrashRecovery sweeps crashes across the
// group-commit failure seams — inside the flush between the batched
// write and the fsync, mid-batch during waiter wakeup, and on the WAL's
// physical write and fsync — while concurrent writers commit through a
// shared flush leader.  After every crash the database is reopened and
// the invariants checked:
//
//  1. every transaction whose Commit returned success is present
//     (SyncCommits: acknowledged ⇒ durable, even when the fsync was
//     shared with other batches in the round);
//  2. transactions are atomic: each writes two rows, and recovery never
//     surfaces one without the other;
//  3. aborted transactions never resurface (aborts log nothing);
//  4. the only unacknowledged transaction that may surface is the one
//     in flight at the crash — the recovered state is a prefix of each
//     writer's commit order;
//  5. secondary indexes agree with the heap.
func TestGroupCommitTortureCrashRecovery(t *testing.T) {
	maxNth := 8
	if testing.Short() {
		maxNth = 3
	}
	type seam struct {
		op     string
		detail string
	}
	seams := []seam{
		{fault.OpLogic, "group.pre-fsync"},
		{fault.OpLogic, "group.wakeup"},
		{fault.OpWrite, "mdm.wal"},
		{fault.OpSync, "mdm.wal"},
	}

	crashes := 0
	crashedSeams := map[string]bool{}
	cycle := 0
	for _, s := range seams {
		for nth := 1; nth <= maxNth; nth++ {
			cycle++
			dir := t.TempDir()
			r := torture.New(t)
			point := fault.Point(s.op, s.detail)

			// Set up the schema in an unarmed lifetime so the armed one
			// crashes inside the concurrent commit traffic, not the DDL.
			setupGroupTorture(t, dir, r.FS)

			acked := make([][]int64, groupTortureWriters)
			attempted := make([]int64, groupTortureWriters)
			crashed, err := r.CrashCycle(point, nth, func() error {
				return groupTortureLifetime(dir, r.FS, acked, attempted)
			})
			if err != nil {
				t.Fatalf("seam %s nth %d: workload failed: %v", point, nth, err)
			}
			groupTortureVerify(t, dir, r.FS, acked, attempted, point, nth)
			if !crashed {
				break // the workload no longer reaches this hit count
			}
			crashes++
			crashedSeams[point] = true
		}
	}

	t.Logf("group torture: %d crashes across %d cycles", crashes, cycle)
	minCrashes := 12
	if testing.Short() {
		minCrashes = 6
	}
	if crashes < minCrashes {
		t.Fatalf("only %d crash cycles, want >= %d", crashes, minCrashes)
	}
	for _, s := range seams {
		if s.op == fault.OpLogic && !crashedSeams[fault.Point(s.op, s.detail)] {
			t.Fatalf("logic seam %s never crashed — failpoint not wired?", s.detail)
		}
	}
}

func setupGroupTorture(t *testing.T, dir string, fs *fault.Injector) {
	t.Helper()
	db, err := Open(Options{Dir: dir, FS: fs, SyncCommits: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < groupTortureWriters; w++ {
		mustCreate(t, db, fmt.Sprintf("R%d", w))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// groupTortureLifetime is one armed process lifetime: reopen, run
// concurrent writers on disjoint relations, close.  Each writer records
// its acknowledged commits; the crash panic surfaces in whichever
// writer was flush leader and is re-raised for the torture runner after
// all writers have stopped.
func groupTortureLifetime(dir string, fs *fault.Injector, acked [][]int64, attempted []int64) error {
	db, err := Open(Options{
		Dir:               dir,
		FS:                fs,
		SyncCommits:       true,
		GroupCommit:       true,
		GroupCommitWindow: time.Millisecond,
	})
	if err != nil {
		return err
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		crashVal any
		firstErr error
	)
	for w := 0; w < groupTortureWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if _, ok := fault.AsCrash(v); !ok {
						panic(v)
					}
					mu.Lock()
					crashVal = v
					mu.Unlock()
				}
			}()
			rel := fmt.Sprintf("R%d", w)
			for seq := int64(1); seq <= 12; seq++ {
				tx := db.Begin()
				for part := int64(0); part < 2; part++ {
					if _, err := tx.Insert(rel, value.Tuple{value.Int(seq), value.Int(part)}); err != nil {
						tx.Abort()
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("writer %d insert %d: %w", w, seq, err)
						}
						mu.Unlock()
						return
					}
				}
				if seq%5 == 0 {
					tx.Abort() // aborted work must never resurface
					continue
				}
				attempted[w] = seq
				if err := tx.Commit(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("writer %d commit %d: %w", w, seq, err)
					}
					mu.Unlock()
					return
				}
				acked[w] = append(acked[w], seq)
			}
		}(w)
	}
	wg.Wait()

	if crashVal != nil {
		panic(crashVal) // hand the crash to the torture runner
	}
	if fs.Crashed() {
		// The crash fired outside the writers (e.g. a background
		// checkpoint path); surface it the same way.
		panic(fault.CrashError{Point: "torture:outside-writers"})
	}
	if firstErr != nil {
		return firstErr
	}
	return db.Close()
}

// groupTortureVerify reopens after recovery and checks the invariants
// documented on the test.
func groupTortureVerify(t *testing.T, dir string, fs *fault.Injector, acked [][]int64, attempted []int64, point string, nth int) {
	t.Helper()
	db, err := Open(Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("seam %s nth %d: reopen after recovery: %v", point, nth, err)
	}
	defer db.Close()
	for w := 0; w < groupTortureWriters; w++ {
		rel := fmt.Sprintf("R%d", w)
		got := seqSet(t, db, rel)
		for seq, n := range got {
			if n != 2 {
				t.Fatalf("seam %s nth %d: writer %d txn %d recovered %d/2 rows (torn transaction)", point, nth, w, seq, n)
			}
			if seq%5 == 0 {
				t.Fatalf("seam %s nth %d: writer %d aborted txn %d resurfaced", point, nth, w, seq)
			}
		}
		ackedSet := map[int64]bool{}
		for _, seq := range acked[w] {
			ackedSet[seq] = true
			if got[seq] != 2 {
				t.Fatalf("seam %s nth %d: writer %d acknowledged txn %d lost (have %v)", point, nth, w, seq, got)
			}
		}
		for seq := range got {
			if !ackedSet[seq] && seq != attempted[w] {
				t.Fatalf("seam %s nth %d: writer %d txn %d surfaced but was neither acknowledged nor in flight", point, nth, w, seq)
			}
		}
		if rel := db.Relation(rel); rel != nil {
			if err := rel.CheckIndexes(); err != nil {
				t.Fatalf("seam %s nth %d: writer %d: %v", point, nth, w, err)
			}
		}
	}
}
