package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/value"
)

// groupOpts is the standard group-commit test configuration: batching
// on, with a leader window long enough that batches queue behind a
// deliberately slow flush.
func groupOpts(window time.Duration) Options {
	return Options{
		SyncCommits:       true,
		GroupCommit:       true,
		GroupCommitWindow: window,
	}
}

func mustCreate(t *testing.T, db *DB, name string) {
	t.Helper()
	schema := value.NewSchema(
		value.Field{Name: "seq", Kind: value.KindInt},
		value.Field{Name: "part", Kind: value.KindInt},
	)
	if _, err := db.CreateRelation(name, schema); err != nil {
		t.Fatal(err)
	}
}

func insertSeq(db *DB, rel string, seq, part int64) error {
	return db.Run(func(tx *Tx) error {
		_, err := tx.Insert(rel, value.Tuple{value.Int(seq), value.Int(part)})
		return err
	})
}

func seqSet(t *testing.T, db *DB, rel string) map[int64]int {
	t.Helper()
	out := map[int64]int{}
	if err := db.Run(func(tx *Tx) error {
		return tx.Scan(rel, func(_ RowID, row value.Tuple) bool {
			out[row[0].AsInt()]++
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConcurrentCommitsShareFlushes drives concurrent writers on
// disjoint relations through the group-commit pipeline and checks that
// every commit survives a reopen and that flush rounds actually batch.
func TestConcurrentCommitsShareFlushes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncCommits: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers, txns = 8, 6
	for w := 0; w < writers; w++ {
		mustCreate(t, db, fmt.Sprintf("R%d", w))
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rel := fmt.Sprintf("R%d", w)
			for i := 1; i <= txns; i++ {
				if err := insertSeq(db, rel, int64(i), 0); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	var batches, groupTxns uint64
	for _, m := range db.Obs().Snapshot() {
		switch m.Name {
		case "wal.group.batches":
			batches = m.Value
		case "wal.group.txns":
			groupTxns = m.Value
		}
	}
	if groupTxns < writers*txns {
		t.Fatalf("wal.group.txns = %d, want >= %d", groupTxns, writers*txns)
	}
	if batches == 0 || batches > groupTxns {
		t.Fatalf("wal.group.batches = %d (txns %d)", batches, groupTxns)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for w := 0; w < writers; w++ {
		got := seqSet(t, db2, fmt.Sprintf("R%d", w))
		if len(got) != txns {
			t.Fatalf("writer %d: %d rows survived, want %d", w, len(got), txns)
		}
	}
}

// TestSyncDrainsCommitQueue pins the satellite fix: db.Sync must drain
// batches still queued behind the flush leader before it fsyncs, so
// every commit acknowledged before Sync returns is durable — proven by
// a simulated crash immediately after Sync.
func TestSyncDrainsCommitQueue(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	inj := fault.NewInjector(fault.Disk{}, reg)
	opts := Options{
		Dir:         dir,
		FS:          inj,
		GroupCommit: true,
		// No SyncCommits: commits complete as soon as they are in the
		// log buffer, so ONLY Sync's drain makes them durable.
		GroupCommitWindow: 40 * time.Millisecond,
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, db, "R")

	committed := make(chan error, 1)
	go func() { committed <- insertSeq(db, "R", 1, 0) }()
	time.Sleep(10 * time.Millisecond) // the commit's leader is inside its window
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := <-committed; err != nil {
		t.Fatal(err)
	}

	// Crash: dirty pages die, fsynced bytes survive.
	inj.Crash()
	if err := inj.Recover(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := seqSet(t, db2, "R"); got[1] != 1 {
		t.Fatalf("commit drained by Sync did not survive the crash: %v", got)
	}
}

// TestCheckpointDrainsCommitQueue pins the checkpoint half of the
// satellite fix: a checkpoint taken while commits are in flight must
// wait them out (quiesce) and drain the queue, so the snapshot plus
// reset log covers every acknowledged commit — again proven by an
// immediate crash.
func TestCheckpointDrainsCommitQueue(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	inj := fault.NewInjector(fault.Disk{}, reg)
	db, err := Open(Options{
		Dir:               dir,
		FS:                inj,
		GroupCommit:       true,
		GroupCommitWindow: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, db, "R")

	const writers = 3
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = insertSeq(db, "R", int64(w+1), 0)
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // let the commits reach the pipeline
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	// Any commit acknowledged before the checkpoint returned is in the
	// snapshot or the post-reset log; the crash must lose none of them.
	acked := seqSet(t, db, "R")

	inj.Crash()
	if err := inj.Recover(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := seqSet(t, db2, "R")
	for seq := range acked {
		if got[seq] != acked[seq] {
			t.Fatalf("row %d lost across checkpoint+crash: before=%v after=%v", seq, acked, got)
		}
	}
	if rel := db2.Relation("R"); rel != nil {
		if err := rel.CheckIndexes(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointExcludesUncommitted: a checkpoint racing an open write
// transaction must not capture its uncommitted rows.  The fuzzy
// checkpoint does not quiesce writers — it completes concurrently with
// the open transaction, scanning through the MVCC snapshot, which must
// exclude the uncommitted insert.
func TestCheckpointExcludesUncommitted(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(groupOpts(0).withDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, db, "R")
	if err := insertSeq(db, "R", 1, 0); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.Insert("R", value.Tuple{value.Int(99), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	// The checkpoint must complete while the writer still holds its
	// exclusive lock — writers never stall it, and it never stalls them.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint under an open write transaction: %v", err)
	}
	tx.Abort()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := seqSet(t, db2, "R")
	if got[99] != 0 {
		t.Fatal("uncommitted row leaked into the checkpoint image")
	}
	if got[1] != 1 {
		t.Fatal("committed row missing from the checkpoint image")
	}
}

// TestFullSnapshotCheckpointBlocksOnWriter pins the legacy
// Options.FullSnapshots behavior: the quiesce barrier waits out an open
// write transaction, and the monolithic snapshot holds only committed
// data.
func TestFullSnapshotCheckpointBlocksOnWriter(t *testing.T) {
	dir := t.TempDir()
	opts := groupOpts(0).withDir(dir)
	opts.FullSnapshots = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, db, "R")
	if err := insertSeq(db, "R", 1, 0); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if _, err := tx.Insert("R", value.Tuple{value.Int(99), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	ckpt := make(chan error, 1)
	go func() { ckpt <- db.Checkpoint() }()
	time.Sleep(20 * time.Millisecond) // checkpoint blocks on the quiesce barrier
	select {
	case err := <-ckpt:
		t.Fatalf("full-snapshot checkpoint finished under an open write transaction: %v", err)
	default:
	}
	tx.Abort()
	if err := <-ckpt; err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, FullSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := seqSet(t, db2, "R")
	if got[99] != 0 {
		t.Fatal("aborted row leaked into the checkpoint snapshot")
	}
	if got[1] != 1 {
		t.Fatal("committed row missing from the checkpoint snapshot")
	}
}

// withDir returns a copy of opts with Dir set (test helper).
func (o Options) withDir(dir string) Options {
	o.Dir = dir
	return o
}
