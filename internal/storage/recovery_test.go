package storage

import (
	"testing"

	"repro/internal/value"
)

// TestSchemaCrashRecovery pins the WAL schema-record behavior: relations
// and indexes created after the last checkpoint (here: never
// checkpointed at all) must survive a crash, along with their data.
func TestSchemaCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("LATE", value.NewSchema(
		value.Field{Name: "v", Kind: value.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("LATE", IndexSpec{Name: "by_v", Columns: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	db.Run(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			tx.Insert("LATE", value.Tuple{value.Int(int64(i))})
		}
		return nil
	})
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Checkpoint.

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rel := db2.Relation("LATE")
	if rel == nil {
		t.Fatal("relation lost in crash")
	}
	if rel.Len() != 10 {
		t.Fatalf("rows after crash: %d", rel.Len())
	}
	// The index was rebuilt and works.
	count := 0
	db2.Run(func(tx *Tx) error {
		return tx.IndexPrefixScan("LATE", "by_v", value.Tuple{value.Int(5)},
			func(RowID, value.Tuple) bool { count++; return true })
	})
	if count != 1 {
		t.Fatalf("index after crash: %d hits", count)
	}
}

// TestDropSurvivesCrash pins RecDropRelation replay.
func TestDropSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateRelation("DOOMED", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt}))
	db.Run(func(tx *Tx) error {
		_, err := tx.Insert("DOOMED", value.Tuple{value.Int(1)})
		return err
	})
	if err := db.DropRelation("DOOMED"); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	// Crash.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Relation("DOOMED") != nil {
		t.Fatal("dropped relation resurrected")
	}
}

// TestSnapshotPlusLogInterleaving checkpoints mid-stream, then crashes:
// the snapshot carries the first half, the log the second.
func TestSnapshotPlusLogInterleaving(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateRelation("R", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt}))
	db.Run(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			tx.Insert("R", value.Tuple{value.Int(int64(i))})
		}
		return nil
	})
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint: a second relation and more data.
	db.CreateRelation("S", value.NewSchema(value.Field{Name: "v", Kind: value.KindInt}))
	db.Run(func(tx *Tx) error {
		for i := 5; i < 10; i++ {
			tx.Insert("R", value.Tuple{value.Int(int64(i))})
			tx.Insert("S", value.Tuple{value.Int(int64(i))})
		}
		return nil
	})
	db.Sync()
	// Crash.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Relation("R").Len() != 10 {
		t.Fatalf("R rows: %d", db2.Relation("R").Len())
	}
	if db2.Relation("S") == nil || db2.Relation("S").Len() != 5 {
		t.Fatal("post-checkpoint relation lost")
	}
}
