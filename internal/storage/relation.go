// Package storage implements the relational kernel of the music data
// manager: named relations of typed tuples, secondary B-tree indexes,
// snapshot persistence, and ACID transactions built from the write-ahead
// log (package wal) and two-phase locking (package txn).
//
// The paper layers its music data model on the INGRES relational system;
// this package is the corresponding substrate.  Relations live in memory
// for query execution; durability is write-ahead logging plus checkpoint
// snapshots, and recovery replays committed work (redo-only, §2's
// "standard" recovery duty).
package storage

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/obs"
	"repro/internal/value"
)

// RowID identifies a tuple within one relation.  RowIDs are assigned by
// an ever-increasing counter and never reused, so they are stable handles
// for entity surrogates.
type RowID = uint64

// IndexSpec describes a secondary index over a relation.
type IndexSpec struct {
	Name    string
	Columns []string // indexed attribute names, in key order
	Unique  bool
}

// index is a live secondary index.  Beside the live tree it keeps a
// history tree of retired keys (see mvcc.go) so snapshot scans can find
// rows under keys that updates or deletes have since removed, and the
// CSN it was created at, so snapshots older than the index fall back to
// a version-store scan instead of trusting trees that cannot cover them.
type index struct {
	spec      IndexSpec
	cols      []int // resolved column positions
	tree      *btree.Tree
	hist      *btree.Tree // retired keys, always row-id-suffixed; nil until first retire
	createdAt uint64      // first CSN the index can serve; 0 = since the base state

	// Planner statistics (stats.go): last built summary and the
	// relation modCount it was built at, both guarded by r.mu.
	stats   *IndexStats
	statsAt uint64
}

// Relation is a named collection of tuples sharing a schema, with zero or
// more secondary indexes.  Relations are manipulated through a DB
// transaction; the methods here are internal and assume the caller holds
// appropriate locks.
type Relation struct {
	name    string
	schema  *value.Schema
	mu      sync.RWMutex
	rows    map[RowID]value.Tuple
	nextRow RowID
	indexes []*index

	// Snapshot-read version store (mvcc.go): committed version chains
	// per row, and the rows whose chains the vacuum should revisit.
	vers     map[RowID]*rowVersion
	verDirty map[RowID]struct{}

	// Planner-statistics bookkeeping (stats.go): mutations since open,
	// guarded by mu, and the counter the owning DB reports rebuilds to.
	modCount      uint64
	statsRebuilds *obs.Counter

	// deferred suspends secondary-index maintenance (bulk loading):
	// mutations touch only the heap, index reads act as if no indexes
	// exist, and buildIndexes reconstructs every tree bottom-up from a
	// sorted run.  Guarded by mu.
	deferred bool
}

func newRelation(name string, schema *value.Schema) *Relation {
	return &Relation{
		name:     name,
		schema:   schema,
		rows:     make(map[RowID]value.Tuple),
		nextRow:  1,
		vers:     make(map[RowID]*rowVersion),
		verDirty: make(map[RowID]struct{}),
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *value.Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.rows)
}

// addIndex creates and backfills a secondary index.
func (r *Relation) addIndex(spec IndexSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ix := range r.indexes {
		if ix.spec.Name == spec.Name {
			return fmt.Errorf("storage: index %q already exists on %s", spec.Name, r.name)
		}
	}
	cols := make([]int, len(spec.Columns))
	for i, c := range spec.Columns {
		pos, ok := r.schema.Index(c)
		if !ok {
			return fmt.Errorf("storage: index %q: no column %q in %s%s", spec.Name, c, r.name, r.schema)
		}
		cols[i] = pos
	}
	ix := &index{spec: spec, cols: cols, tree: btree.New()}
	if !r.deferred {
		tree, err := r.buildTreeLocked(ix)
		if err != nil {
			return fmt.Errorf("storage: backfill index %q: %w", spec.Name, err)
		}
		ix.tree = tree
	}
	r.indexes = append(r.indexes, ix)
	return nil
}

// buildTreeLocked bulk-builds ix's tree bottom-up from a sorted run over
// the heap: collect every row's key, sort once, pack the B-tree in O(n).
// Caller holds r.mu.  Unique violations surface as adjacent equal keys
// in the run.
func (r *Relation) buildTreeLocked(ix *index) (*btree.Tree, error) {
	type run struct {
		key []byte
		id  RowID
	}
	runs := make([]run, 0, len(r.rows))
	for id, t := range r.rows {
		runs = append(runs, run{key: ix.key(id, t), id: id})
	}
	sort.Slice(runs, func(a, b int) bool {
		if c := bytes.Compare(runs[a].key, runs[b].key); c != 0 {
			return c < 0
		}
		return runs[a].id < runs[b].id
	})
	keys := make([][]byte, len(runs))
	vals := make([]uint64, len(runs))
	for j, rn := range runs {
		if j > 0 && bytes.Equal(runs[j-1].key, rn.key) {
			// Only unique indexes can collide: non-unique keys carry a
			// row-id suffix.
			return nil, fmt.Errorf("unique index %q violation on key %s",
				ix.spec.Name, tupleKeyString(ix, r.rows[rn.id]))
		}
		keys[j] = rn.key
		vals[j] = rn.id
	}
	return btree.NewFromSorted(keys, vals)
}

// deferIndexes suspends secondary-index maintenance for bulk loading:
// subsequent mutations touch only the heap, and index reads behave as if
// the relation had no indexes (planners fall back to heap scans,
// snapshot ranges to version-store scans).  buildIndexes resumes.
func (r *Relation) deferIndexes() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deferred = true
}

// Deferred reports whether index maintenance is suspended.
func (r *Relation) Deferred() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.deferred
}

// buildIndexes reconstructs every secondary index from a sorted run over
// the heap and resumes inline maintenance.  On error (a unique violation
// surfaced by the sorted pass) the relation stays deferred and no tree
// is replaced.
func (r *Relation) buildIndexes() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.deferred {
		return nil
	}
	rebuilt := make([]*btree.Tree, len(r.indexes))
	for i, ix := range r.indexes {
		tree, err := r.buildTreeLocked(ix)
		if err != nil {
			return fmt.Errorf("storage: %s: bulk build: %w", r.name, err)
		}
		rebuilt[i] = tree
	}
	for i, ix := range r.indexes {
		ix.tree = rebuilt[i]
		ix.hist = nil // retired keys predate the rebuild; the floor covers them
		ix.stats = nil
		ix.statsAt = 0
	}
	r.deferred = false
	r.modCount++
	return nil
}

// key builds the index key for tuple t with row id: the order-preserving
// encoding of the indexed columns, suffixed with the row id for
// non-unique indexes so that duplicate attribute values remain distinct
// tree keys.
func (ix *index) key(id RowID, t value.Tuple) []byte {
	var k []byte
	for _, c := range ix.cols {
		k = value.AppendKey(k, t[c])
	}
	if !ix.spec.Unique {
		k = appendRowID(k, id)
	}
	return k
}

func appendRowID(k []byte, id RowID) []byte {
	return append(k, byte(id>>56), byte(id>>48), byte(id>>40), byte(id>>32),
		byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
}

func (ix *index) insert(id RowID, t value.Tuple) error {
	k := ix.key(id, t)
	if ix.spec.Unique {
		if _, exists := ix.tree.Get(k); exists {
			return fmt.Errorf("unique index %q violation on key %s", ix.spec.Name, tupleKeyString(ix, t))
		}
	}
	ix.tree.Set(k, id)
	return nil
}

func (ix *index) remove(id RowID, t value.Tuple) {
	ix.tree.Delete(ix.key(id, t))
}

func tupleKeyString(ix *index, t value.Tuple) string {
	parts := make([]string, len(ix.cols))
	for i, c := range ix.cols {
		parts[i] = t[c].Quoted()
	}
	return fmt.Sprint(parts)
}

// insertRow stores t (already validated) under a fresh row id, updating
// indexes.  If id is non-zero, that specific id is used (recovery path).
func (r *Relation) insertRow(id RowID, t value.Tuple) (RowID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id == 0 {
		id = r.nextRow
	}
	if _, exists := r.rows[id]; exists {
		return 0, fmt.Errorf("storage: %s: row %d already exists", r.name, id)
	}
	if !r.deferred {
		for i, ix := range r.indexes {
			if err := ix.insert(id, t); err != nil {
				for _, undo := range r.indexes[:i] {
					undo.remove(id, t)
				}
				return 0, fmt.Errorf("storage: %s: %w", r.name, err)
			}
		}
	}
	r.rows[id] = t
	if id >= r.nextRow {
		r.nextRow = id + 1
	}
	r.modCount++
	return id, nil
}

// deleteRow removes row id, returning the old tuple.
func (r *Relation) deleteRow(id RowID) (value.Tuple, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.rows[id]
	if !ok {
		return nil, fmt.Errorf("storage: %s: no row %d", r.name, id)
	}
	if !r.deferred {
		for _, ix := range r.indexes {
			ix.retire(id, old)
			ix.remove(id, old)
		}
	}
	delete(r.rows, id)
	r.modCount++
	return old, nil
}

// updateRow replaces row id with t, returning the old tuple.
func (r *Relation) updateRow(id RowID, t value.Tuple) (value.Tuple, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.rows[id]
	if !ok {
		return nil, fmt.Errorf("storage: %s: no row %d", r.name, id)
	}
	if !r.deferred {
		for _, ix := range r.indexes {
			ix.retire(id, old)
			ix.remove(id, old)
		}
		for i, ix := range r.indexes {
			if err := ix.insert(id, t); err != nil {
				// Roll the index changes back.
				for _, redo := range r.indexes[:i] {
					redo.remove(id, t)
				}
				for _, redo := range r.indexes {
					redo.insert(id, old) //nolint:errcheck // restoring prior state
				}
				return nil, fmt.Errorf("storage: %s: %w", r.name, err)
			}
		}
	}
	r.rows[id] = t
	r.modCount++
	return old, nil
}

// get returns the tuple stored under id.
func (r *Relation) get(id RowID) (value.Tuple, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.rows[id]
	return t, ok
}

// scan invokes fn for every row in ascending row-id order.  Iteration
// stops if fn returns false.
func (r *Relation) scan(fn func(id RowID, t value.Tuple) bool) {
	r.mu.RLock()
	ids := make([]RowID, 0, len(r.rows))
	for id := range r.rows {
		ids = append(ids, id)
	}
	r.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r.mu.RLock()
		t, ok := r.rows[id]
		r.mu.RUnlock()
		if ok && !fn(id, t) {
			return
		}
	}
}

// Indexes returns the specs of the relation's secondary indexes, in
// creation order.
func (r *Relation) Indexes() []IndexSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	specs := make([]IndexSpec, len(r.indexes))
	for i, ix := range r.indexes {
		specs[i] = ix.spec
	}
	return specs
}

// IndexByColumn returns the spec of the first index whose leading key
// column is col (case-insensitive).  Query planners use it to match a
// sargable predicate to an access path.
func (r *Relation) IndexByColumn(col string) (IndexSpec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.deferred {
		return IndexSpec{}, false
	}
	for _, ix := range r.indexes {
		if len(ix.spec.Columns) > 0 && strings.EqualFold(ix.spec.Columns[0], col) {
			return ix.spec, true
		}
	}
	return IndexSpec{}, false
}

// IndexRangeCount returns the number of entries of the named index in
// the encoded key range [lo, hi), computed from the B-tree's order
// statistics without iterating.  It reports false if the index does not
// exist.  All index-tree mutations happen under r.mu (insertRow,
// deleteRow, updateRow), so the read lock suffices.
func (r *Relation) IndexRangeCount(indexName string, lo, hi []byte) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ix := r.findIndex(indexName)
	if ix == nil || r.deferred {
		return 0, false
	}
	return ix.tree.CountRange(lo, hi), true
}

// ScanRange iterates rows of the named index in key order over the range
// [lo, hi) of encoded keys; nil bounds mean unbounded.  With reverse set,
// the same range is visited in descending key order.  Iteration stops if
// fn returns false.  The relation lock is held for the duration; callers
// go through Tx.IndexRange for transactional isolation.
func (r *Relation) ScanRange(indexName string, lo, hi []byte, reverse bool, fn func(id RowID, t value.Tuple) bool) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ix := r.findIndex(indexName)
	if ix == nil {
		return fmt.Errorf("storage: no index %q on %s", indexName, r.name)
	}
	if r.deferred {
		return fmt.Errorf("storage: index %q on %s is deferred for bulk load", indexName, r.name)
	}
	visit := func(_ []byte, id uint64) bool {
		t, ok := r.rows[id]
		if !ok {
			return true
		}
		return fn(id, t)
	}
	if reverse {
		ix.tree.Descend(hi, lo, visit)
	} else {
		ix.tree.Ascend(lo, hi, visit)
	}
	return nil
}

// dropIndex removes the named index (used to back out an index whose
// creation could not be logged).
func (r *Relation) dropIndex(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, ix := range r.indexes {
		if ix.spec.Name == name {
			r.indexes = append(r.indexes[:i], r.indexes[i+1:]...)
			return
		}
	}
}

// CheckIndexes verifies that every secondary index agrees exactly with
// the heap: same cardinality, every entry pointing at a live row, every
// key matching the row it indexes, and the underlying B-tree structurally
// sound.  Used by the crash-recovery torture harness after every reopen.
func (r *Relation) CheckIndexes() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.deferred {
		return nil // trees are detached until buildIndexes reconstructs them
	}
	for _, ix := range r.indexes {
		if err := ix.tree.CheckInvariants(); err != nil {
			return fmt.Errorf("storage: %s index %q: %w", r.name, ix.spec.Name, err)
		}
		if got, want := ix.tree.Len(), len(r.rows); got != want {
			return fmt.Errorf("storage: %s index %q: %d entries for %d rows", r.name, ix.spec.Name, got, want)
		}
		var bad error
		ix.tree.Ascend(nil, nil, func(key []byte, id uint64) bool {
			t, ok := r.rows[id]
			if !ok {
				bad = fmt.Errorf("storage: %s index %q: entry for dead row %d", r.name, ix.spec.Name, id)
				return false
			}
			if want := ix.key(id, t); !bytes.Equal(key, want) {
				bad = fmt.Errorf("storage: %s index %q: stale key for row %d", r.name, ix.spec.Name, id)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// findIndex returns the index with the given name.
func (r *Relation) findIndex(name string) *index {
	for _, ix := range r.indexes {
		if ix.spec.Name == name {
			return ix
		}
	}
	return nil
}
