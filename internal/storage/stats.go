// Planner statistics: per-index equi-depth histograms and distinct
// counts, maintained lazily against a per-relation modification counter
// and rebuilt wholesale at checkpoint.  The query planner reads them to
// estimate join selectivities (1/max(distinct) for an equi-join) and to
// carve index ranges into balanced morsels for parallel execution.
package storage

import "bytes"

const (
	// histBuckets is the equi-depth histogram resolution: up to
	// histBuckets-1 interior boundary keys per index.
	histBuckets = 32
	// statsMinStale is the minimum number of row mutations before a
	// rebuilt statistic is considered stale; larger relations tolerate
	// proportionally more drift (rows/5) before a lazy rebuild.
	statsMinStale = 256
)

// IndexStats is a point-in-time statistical summary of one secondary
// index.  Boundaries holds up to histBuckets-1 strictly increasing
// encoded keys splitting the index into equal-count runs (equi-depth);
// callers must not modify the slices.
type IndexStats struct {
	Rows       int      // index entries at build time
	Distinct   int      // distinct key values (row-id suffix excluded)
	Boundaries [][]byte // equi-depth bucket boundaries, full encoded keys
	Unique     bool     // spec.Unique: Distinct == Rows by construction
}

// staleAfter returns how many mutations a relation of n rows may absorb
// before its index statistics must be rebuilt.
func staleAfter(n int) uint64 {
	s := uint64(n / 5)
	if s < statsMinStale {
		s = statsMinStale
	}
	return s
}

// Stats returns statistics for the named index, lazily rebuilding them
// when the relation has churned past the staleness threshold since the
// last build.  It reports false if the index does not exist.
func (r *Relation) Stats(indexName string) (IndexStats, bool) {
	r.mu.RLock()
	ix := r.findIndex(indexName)
	if ix == nil {
		r.mu.RUnlock()
		return IndexStats{}, false
	}
	if ix.stats != nil && r.modCount-ix.statsAt <= staleAfter(len(r.rows)) {
		st := *ix.stats
		r.mu.RUnlock()
		return st, true
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	ix = r.findIndex(indexName) // may have been dropped while unlocked
	if ix == nil {
		return IndexStats{}, false
	}
	if ix.stats == nil || r.modCount-ix.statsAt > staleAfter(len(r.rows)) {
		r.rebuildStatsLocked(ix)
	}
	return *ix.stats, true
}

// RebuildStats recomputes statistics for every index of the relation.
// DB.Checkpoint calls this while writers are quiesced so the stats start
// each checkpoint interval fresh.
func (r *Relation) RebuildStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ix := range r.indexes {
		r.rebuildStatsLocked(ix)
	}
}

// rebuildStatsLocked recomputes one index's statistics under r.mu: one
// ordered pass for the distinct count (non-unique keys carry an 8-byte
// row-id suffix that is stripped before comparing) plus O(buckets log n)
// rank lookups for the equi-depth boundaries.
func (r *Relation) rebuildStatsLocked(ix *index) {
	st := &IndexStats{Rows: ix.tree.Len(), Unique: ix.spec.Unique}
	if ix.spec.Unique {
		st.Distinct = st.Rows
	} else {
		var prev []byte
		have := false
		ix.tree.Ascend(nil, nil, func(k []byte, _ uint64) bool {
			p := k
			if len(p) >= 8 {
				p = p[:len(p)-8]
			}
			if !have || !bytes.Equal(p, prev) {
				st.Distinct++
				prev = append(prev[:0], p...)
				have = true
			}
			return true
		})
	}
	st.Boundaries = ix.tree.SplitRange(nil, nil, histBuckets)
	ix.stats = st
	ix.statsAt = r.modCount
	if r.statsRebuilds != nil {
		r.statsRebuilds.Inc()
	}
}

// SplitIndexRange returns up to parts-1 boundary keys dividing the live
// entries of the named index within [lo, hi) into roughly equal runs
// (order-statistics exact, not histogram-approximate).  It reports false
// if the index does not exist.  Parallel scans use the boundaries to
// fan one index range out across workers.
func (r *Relation) SplitIndexRange(indexName string, lo, hi []byte, parts int) ([][]byte, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ix := r.findIndex(indexName)
	if ix == nil {
		return nil, false
	}
	return ix.tree.SplitRange(lo, hi, parts), true
}

// removeIndex detaches and returns the named index, or nil.  The caller
// (DB.DropIndex) logs the drop and reattaches on log failure.
func (r *Relation) removeIndex(name string) *index {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, ix := range r.indexes {
		if ix.spec.Name == name {
			r.indexes = append(r.indexes[:i], r.indexes[i+1:]...)
			return ix
		}
	}
	return nil
}

// restoreIndex reattaches an index detached by removeIndex.  Only valid
// when no row mutations happened in between (the drop-log failure path,
// where the database is already degrading to read-only).
func (r *Relation) restoreIndex(ix *index) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.indexes = append(r.indexes, ix)
}
