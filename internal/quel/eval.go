package quel

import (
	"fmt"
	"time"

	"repro/internal/value"
)

// eval evaluates an expression under a binding environment.
func (s *Session) eval(e Expr, en env) (value.Value, error) {
	switch x := e.(type) {
	case Lit:
		return x.V, nil

	case Param:
		return value.Null, fmt.Errorf("%w: unbound placeholder $%d (prepare the statement and bind arguments)", ErrParam, x.Idx)

	case AttrRef:
		b, ok := en[x.Var]
		if !ok {
			return value.Null, fmt.Errorf("quel: unbound variable %q", x.Var)
		}
		i, ok := fieldIndex(b.fields, x.Attr)
		if !ok {
			return value.Null, fmt.Errorf("quel: %s has no attribute %q", b.typ, x.Attr)
		}
		return b.attrs[i], nil

	case VarRef:
		b, ok := en[x.Var]
		if !ok {
			return value.Null, fmt.Errorf("quel: unbound variable %q", x.Var)
		}
		if b.ref == 0 {
			return value.Null, fmt.Errorf("quel: relationship variable %q has no entity identity", x.Var)
		}
		return value.RefVal(b.ref), nil

	case Unary:
		v, err := s.eval(x.X, en)
		if err != nil {
			return value.Null, err
		}
		switch x.Op {
		case "not":
			return value.Bool(!truthy(v)), nil
		case "-":
			switch v.Kind() {
			case value.KindInt:
				return value.Int(-v.AsInt()), nil
			case value.KindFloat:
				return value.Float(-v.AsFloat()), nil
			}
			return value.Null, fmt.Errorf("quel: cannot negate %s", v.Kind())
		}
		return value.Null, fmt.Errorf("quel: unknown unary %q", x.Op)

	case Binary:
		return s.evalBinary(x, en)

	case IsOp:
		l, err := s.eval(x.L, en)
		if err != nil {
			return value.Null, err
		}
		r, err := s.eval(x.R, en)
		if err != nil {
			return value.Null, err
		}
		if l.Kind() != value.KindRef || r.Kind() != value.KindRef {
			return value.Null, fmt.Errorf("quel: is requires entity operands (range variables or ref attributes)")
		}
		return value.Bool(l.AsRef() == r.AsRef()), nil

	case OrderOp:
		return s.evalOrderOp(x, en)

	case IncipitOp:
		return s.evalIncipitOp(x, en)

	case Agg:
		return s.evalAgg(x)
	}
	return value.Null, fmt.Errorf("quel: unknown expression %T", e)
}

func (s *Session) evalBool(e Expr, en env) (bool, error) {
	v, err := s.eval(e, en)
	if err != nil {
		return false, err
	}
	return truthy(v), nil
}

func truthy(v value.Value) bool {
	switch v.Kind() {
	case value.KindBool:
		return v.AsBool()
	case value.KindNull:
		return false
	case value.KindInt:
		return v.AsInt() != 0
	default:
		return true
	}
}

func (s *Session) evalBinary(x Binary, en env) (value.Value, error) {
	// Short-circuit booleans.
	switch x.Op {
	case "and":
		l, err := s.evalBool(x.L, en)
		if err != nil {
			return value.Null, err
		}
		if !l {
			return value.Bool(false), nil
		}
		r, err := s.evalBool(x.R, en)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(r), nil
	case "or":
		l, err := s.evalBool(x.L, en)
		if err != nil {
			return value.Null, err
		}
		if l {
			return value.Bool(true), nil
		}
		r, err := s.evalBool(x.R, en)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(r), nil
	}
	l, err := s.eval(x.L, en)
	if err != nil {
		return value.Null, err
	}
	r, err := s.eval(x.R, en)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		c := value.Compare(l, r)
		var out bool
		switch x.Op {
		case "=":
			out = c == 0
		case "!=":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return value.Bool(out), nil
	case "+", "-", "*", "/":
		return arith(x.Op, l, r)
	}
	return value.Null, fmt.Errorf("quel: unknown operator %q", x.Op)
}

func arith(op string, l, r value.Value) (value.Value, error) {
	// String concatenation with +.
	if op == "+" && l.Kind() == value.KindString && r.Kind() == value.KindString {
		return value.Str(l.AsString() + r.AsString()), nil
	}
	numeric := func(v value.Value) bool {
		return v.Kind() == value.KindInt || v.Kind() == value.KindFloat
	}
	if !numeric(l) || !numeric(r) {
		return value.Null, fmt.Errorf("quel: %q requires numeric operands, got %s and %s", op, l.Kind(), r.Kind())
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return value.Int(a + b), nil
		case "-":
			return value.Int(a - b), nil
		case "*":
			return value.Int(a * b), nil
		case "/":
			if b == 0 {
				return value.Null, fmt.Errorf("quel: division by zero")
			}
			return value.Int(a / b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return value.Float(a + b), nil
	case "-":
		return value.Float(a - b), nil
	case "*":
		return value.Float(a * b), nil
	case "/":
		if b == 0 {
			return value.Null, fmt.Errorf("quel: division by zero")
		}
		return value.Float(a / b), nil
	}
	return value.Null, fmt.Errorf("quel: unknown arithmetic %q", op)
}

// evalOrderOp evaluates before/after/under (§5.6).  Operands must be
// range variables; the ordering is resolved by the `in` clause or
// inferred from the operand types.
func (s *Session) evalOrderOp(x OrderOp, en env) (value.Value, error) {
	switch x.Op {
	case "before":
		s.m.opBefore.Inc()
	case "after":
		s.m.opAfter.Inc()
	case "under":
		s.m.opUnder.Inc()
	}
	if s.ps != nil {
		defer func(start time.Time) {
			s.ps.OrderEvals++
			s.ps.OrderDur += time.Since(start)
		}(time.Now())
	}
	lv, ok := x.L.(VarRef)
	if !ok {
		return value.Null, fmt.Errorf("quel: %s requires range variables as operands", x.Op)
	}
	rv, ok := x.R.(VarRef)
	if !ok {
		return value.Null, fmt.Errorf("quel: %s requires range variables as operands", x.Op)
	}
	lb, ok := en[lv.Var]
	if !ok {
		return value.Null, fmt.Errorf("quel: unbound variable %q", lv.Var)
	}
	rb, ok := en[rv.Var]
	if !ok {
		return value.Null, fmt.Errorf("quel: unbound variable %q", rv.Var)
	}
	o, err := s.resolveOrdering(x, lb.typ, rb.typ)
	if err != nil {
		return value.Null, fmt.Errorf("quel: %s: %w", x.Op, err)
	}
	// Compare cached child positions (parent, rank) instead of calling
	// BeforeIn/AfterIn/UnderIn per pair: inside a join the same refs
	// recur across combinations, and positions cannot change mid-statement.
	lp, err := s.childPos(o.Name, lb.ref)
	if err != nil {
		return value.Null, err
	}
	var res bool
	switch x.Op {
	case "before", "after":
		rp, err := s.childPos(o.Name, rb.ref)
		if err != nil {
			return value.Null, err
		}
		if lp.ok && rp.ok && lp.parent == rp.parent {
			if x.Op == "before" {
				res = lp.rank < rp.rank
			} else {
				res = lp.rank > rp.rank
			}
		}
	case "under":
		res = lp.ok && lp.parent == rb.ref
	}
	return value.Bool(res), nil
}

// evalIncipitOp evaluates the thematic-index predicate (`incipit`)
// through the index registered for the operand's entity type.  The
// registered Match callback is the authoritative check: even when the
// planner produced the bindings from a gram probe, every combination is
// re-verified here, so gram false positives never reach the result.
func (s *Session) evalIncipitOp(x IncipitOp, en env) (value.Value, error) {
	s.m.opIncipit.Inc()
	if s.ps != nil {
		defer func(start time.Time) {
			s.ps.IncipitEvals++
			s.ps.IncipitDur += time.Since(start)
		}(time.Now())
	}
	lv, ok := x.L.(VarRef)
	if !ok {
		return value.Null, fmt.Errorf("quel: incipit requires a range variable as its left operand")
	}
	lb, ok := en[lv.Var]
	if !ok {
		return value.Null, fmt.Errorf("quel: unbound variable %q", lv.Var)
	}
	if lb.ref == 0 {
		return value.Null, fmt.Errorf("quel: incipit requires an entity operand, not a relationship")
	}
	pv, err := s.eval(x.R, en)
	if err != nil {
		return value.Null, err
	}
	if pv.Kind() != value.KindString {
		return value.Null, fmt.Errorf("quel: incipit pattern must be a string, got %s", pv.Kind())
	}
	spec, ok := s.db.IncipitIndexFor(lb.typ)
	if !ok {
		return value.Null, fmt.Errorf("quel: no incipit index registered for %s", lb.typ)
	}
	m, err := spec.Match(lb.ref, pv.AsString())
	if err != nil {
		return value.Null, err
	}
	return value.Bool(m), nil
}

// evalAgg evaluates an aggregate over its own independent range.
func (s *Session) evalAgg(x Agg) (value.Value, error) {
	info, err := s.varInfo(x.Var)
	if err != nil {
		return value.Null, err
	}
	attrIdx := -1
	if x.Attr != "" {
		i, ok := fieldIndex(info.fields, x.Attr)
		if !ok {
			return value.Null, fmt.Errorf("quel: %s has no attribute %q", info.typ, x.Attr)
		}
		attrIdx = i
	}
	count := 0
	sumI, isInt := int64(0), true
	sumF := 0.0
	var minV, maxV value.Value
	inner := make(env, 1)
	errOut := error(nil)
	err = s.scanVar(info, func(b binding) bool {
		attrs := b.attrs
		if x.Where != nil {
			inner[x.Var] = b
			ok, err := s.evalBool(x.Where, inner)
			if err != nil {
				errOut = err
				return false
			}
			if !ok {
				return true
			}
		}
		count++
		if attrIdx >= 0 {
			v := attrs[attrIdx]
			switch v.Kind() {
			case value.KindInt:
				sumI += v.AsInt()
				sumF += v.AsFloat()
			case value.KindFloat:
				isInt = false
				sumF += v.AsFloat()
			}
			if minV.IsNull() || value.Compare(v, minV) < 0 {
				minV = v
			}
			if maxV.IsNull() || value.Compare(v, maxV) > 0 {
				maxV = v
			}
		}
		return true
	})
	if err != nil {
		return value.Null, err
	}
	if errOut != nil {
		return value.Null, errOut
	}
	switch x.Fn {
	case "count":
		return value.Int(int64(count)), nil
	case "any":
		return value.Bool(count > 0), nil
	case "sum":
		if isInt {
			return value.Int(sumI), nil
		}
		return value.Float(sumF), nil
	case "avg":
		if count == 0 {
			return value.Null, nil
		}
		return value.Float(sumF / float64(count)), nil
	case "min":
		return minV, nil
	case "max":
		return maxV, nil
	}
	return value.Null, fmt.Errorf("quel: unknown aggregate %q", x.Fn)
}
