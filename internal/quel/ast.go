// Package quel implements the data manipulation language of the music
// data manager: a QUEL dialect (after INGRES) extended, per §5.6 of the
// paper, with three operators over hierarchically ordered entities —
// before, after, and under — plus the GEM-style entity equivalence
// operator is.
//
// Statements:
//
//	range of var {, var} is ENTITY
//	retrieve [unique] ( target {, target} ) [ where qual ]
//	append to ENTITY ( attr = expr {, attr = expr} )
//	replace var ( attr = expr {, attr = expr} ) [ where qual ]
//	delete var [ where qual ]
//
// Targets are attribute projections (var.attr, optionally labelled
// `label = var.attr`), whole-entity projections (var.all), or aggregates
// (count/sum/avg/min/max over var.attr, with an optional inner where).
// Qualifications combine comparisons, arithmetic, and the entity
// operators with and/or/not.  A range variable with the same name as its
// entity type is implicitly declared (footnote 6 of the paper).
package quel

import "repro/internal/value"

// Stmt is one parsed QUEL statement.
type Stmt interface{ quelStmt() }

// RangeStmt declares range variables over an entity type.
type RangeStmt struct {
	Vars       []string
	EntityType string
}

// Retrieve projects targets for every binding satisfying the
// qualification.
type Retrieve struct {
	Unique  bool
	Targets []Target
	Where   Expr // nil means true
	SortBy  []SortKey
}

// SortKey orders the result by a named result column (the INGRES
// `sort by` clause).
type SortKey struct {
	Label string
	Desc  bool
}

// Target is one projection item.
type Target struct {
	Label string // result column label; defaulted from the expression
	All   bool   // var.all
	Var   string // set when All
	Expr  Expr   // nil when All
}

// Append creates a new entity instance.
type Append struct {
	EntityType string
	Assigns    []Assign
}

// Replace updates attributes of the entities bound to Var in bindings
// satisfying the qualification.
type Replace struct {
	Var     string
	Assigns []Assign
	Where   Expr
}

// Delete removes the entities bound to Var in bindings satisfying the
// qualification.
type Delete struct {
	Var   string
	Where Expr
}

// Explain wraps a statement whose execution plan (with estimated vs.
// actual row counts and timings) is to be reported instead of its
// result rows.  Currently only retrieve statements can be explained.
type Explain struct {
	Stmt Stmt
}

// Assign is one "attr = expr" assignment.
type Assign struct {
	Attr string
	Expr Expr
}

func (RangeStmt) quelStmt() {}
func (Retrieve) quelStmt()  {}
func (Append) quelStmt()    {}
func (Replace) quelStmt()   {}
func (Delete) quelStmt()    {}
func (Explain) quelStmt()   {}

// Expr is an expression node.
type Expr interface{ quelExpr() }

// Lit is a literal value.
type Lit struct{ V value.Value }

// Param is a statement placeholder ($1, $2, ...) bound at execution
// time.  Indices are 1-based; binding substitutes each Param with the
// literal value of the corresponding argument before planning, so a
// bound parameter participates in sarg extraction and index selection
// exactly as an inline literal would.
type Param struct{ Idx int }

// AttrRef is var.attr.
type AttrRef struct{ Var, Attr string }

// VarRef is a bare range variable (operand of is/before/after/under).
type VarRef struct{ Var string }

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= != < <= > >=), or boolean (and, or).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is boolean not or arithmetic negation.
type Unary struct {
	Op string // "not" or "-"
	X  Expr
}

// IsOp is the GEM entity-equivalence operator: L is R.
type IsOp struct{ L, R Expr }

// OrderOp is one of the §5.6 hierarchical-ordering operators.
type OrderOp struct {
	Op    string // "before", "after", "under"
	L, R  Expr   // range variables (VarRef) after parsing
	Order string // optional `in order_name`
}

// IncipitOp is the thematic-index predicate: L incipit R.  L must be a
// range variable over an entity type with a registered incipit index
// (model.IncipitIndex); R evaluates to a pitch-pattern string in the
// syntax that index accepts.  The predicate holds when the entity's
// incipit contains the pattern's interval sequence
// (transposition-invariant); the planner turns a conjunct of this form
// into a gram-index candidate scan (IncipitScan in explain).
type IncipitOp struct{ L, R Expr }

// Agg is an aggregate function over a range variable's attribute, with an
// optional inner qualification: count(n.all), sum(n.pitch where ...).
// Aggregates without by-lists are evaluated over their own independent
// range, per QUEL semantics.
type Agg struct {
	Fn    string // count, sum, avg, min, max, any
	Var   string
	Attr  string // empty for count(var.all)
	Where Expr
}

func (Lit) quelExpr()       {}
func (Param) quelExpr()     {}
func (AttrRef) quelExpr()   {}
func (VarRef) quelExpr()    {}
func (Binary) quelExpr()    {}
func (Unary) quelExpr()     {}
func (IsOp) quelExpr()      {}
func (OrderOp) quelExpr()   {}
func (IncipitOp) quelExpr() {}
func (Agg) quelExpr()       {}
