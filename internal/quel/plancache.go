package quel

import (
	"strings"
	"sync"

	"repro/internal/obs"
)

// This file implements the shared plan cache: join orders and
// access-path choices keyed by the normalized statement shape (variables
// with their types, the qualification with literals blanked, and the
// sort hint).  Re-executions of the same shape — notably the prepared-
// statement path, which rebinds literal values per execution — skip the
// ranking and path-selection work; key bounds always re-derive from the
// live literals, so a cached plan is a strategy, never stale data.
//
// Invalidation is wholesale by schema epoch: every DDL operation
// (define/drop entity, relationship, ordering, or index) bumps
// model.Database's epoch, and lookup treats an entry planned under any
// other epoch as a miss.  A cached plan therefore can never name a
// dropped index.  As a second line of defense, access replay goes
// through indexRange against the live schema and degrades to a heap
// scan if the index has vanished anyway.

// planCacheCap bounds the cache; eviction is FIFO, which is cheap and
// adequate for a workload of at most a few hundred statement shapes.
const planCacheCap = 256

// PlanCache is safe for concurrent use by many sessions.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cachedPlan
	fifo    []string
	hits    *obs.Counter // quel.plan.cache.hits
	misses  *obs.Counter // quel.plan.cache.misses
}

// cachedPlan is one memoized strategy: the join order and each
// variable's access decision, stamped with the schema epoch it was
// planned under.
type cachedPlan struct {
	epoch  uint64
	order  []string
	access map[string]cachedAccess
}

// cachedAccess replays chooseAccess without re-ranking: which attribute's
// index to range ("" = heap scan); bounds re-derive from live literals.
type cachedAccess struct {
	attr          string
	satisfiesSort bool
	reverse       bool
	incipit       bool
}

// NewPlanCache returns an empty cache; reg may be nil (no metrics).
func NewPlanCache(reg *obs.Registry) *PlanCache {
	c := &PlanCache{cap: planCacheCap, entries: make(map[string]*cachedPlan)}
	if reg != nil {
		c.hits = reg.Counter("quel.plan.cache.hits")
		c.misses = reg.Counter("quel.plan.cache.misses")
	}
	return c
}

// Len reports the number of live entries (tests and introspection).
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *PlanCache) get(key string, epoch uint64) *cachedPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := c.entries[key]
	if cp == nil || cp.epoch != epoch {
		if cp != nil {
			delete(c.entries, key) // planned under an older schema
		}
		c.misses.Inc()
		return nil
	}
	c.hits.Inc()
	return cp
}

func (c *PlanCache) put(key string, cp *cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = cp
		return
	}
	for len(c.entries) >= c.cap && len(c.fifo) > 0 {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.entries, old)
	}
	c.entries[key] = cp
	c.fifo = append(c.fifo, key)
}

// lookupPlan consults the session's plan cache for the statement being
// planned.  Only read statements use the cache (a live emitter marks
// one); write statements are rare enough that caching buys nothing and
// their delete/update sets must never ride a stale strategy.
func (s *Session) lookupPlan(vars []string, infos map[string]varInfo, where Expr) (*cachedPlan, string) {
	if s.plans == nil || s.emit == nil {
		return nil, ""
	}
	key := s.planShapeKey(vars, infos, where)
	cp := s.plans.get(key, s.db.SchemaEpoch())
	if cp != nil && s.ps != nil {
		s.ps.CacheHit = true
	}
	return cp, key
}

// storePlan memoizes a freshly planned strategy under key.
func (s *Session) storePlan(key string, plans []*varPlan, steps []*joinStep) {
	cp := &cachedPlan{
		epoch:  s.db.SchemaEpoch(),
		order:  make([]string, len(steps)),
		access: make(map[string]cachedAccess, len(plans)),
	}
	for k, st := range steps {
		cp.order[k] = st.vp.name
	}
	for _, vp := range plans {
		cp.access[vp.name] = cachedAccess{
			attr:          vp.access.attr,
			satisfiesSort: vp.access.satisfiesSort,
			reverse:       vp.access.reverse,
			incipit:       vp.access.incipit,
		}
	}
	s.plans.put(key, cp)
}

// cachedAccessPath replays a cached access decision against the live
// schema and the statement's own literals.
func (s *Session) cachedAccessPath(cp *cachedPlan, vp *varPlan, incipits map[string]string) accessPath {
	full := accessPath{est: s.estimate(vp.info)}
	ca, ok := cp.access[vp.name]
	if !ok || vp.info.isRel {
		return full
	}
	if ca.incipit {
		if pat, ok := incipits[vp.name]; ok {
			if ap, ok := s.incipitRange(vp.info, pat); ok {
				return ap
			}
		}
		return full
	}
	if ca.attr == "" {
		return full
	}
	rel := s.db.Store().Relation(s.db.InstanceRelation(vp.info.typ))
	if rel == nil {
		return full
	}
	ap, ok := s.indexRange(rel, vp.info, ca.attr, vp.sargs)
	if !ok {
		return full
	}
	ap.satisfiesSort = ca.satisfiesSort
	ap.reverse = ca.reverse
	return ap
}

// planShapeKey normalizes the statement for cache keying: variable names
// with their resolved types, the qualification with literal values
// blanked, and the sort hint.  Literal values are deliberately excluded —
// plans chosen for one set of constants serve all (the standard
// prepared-plan tradeoff); bounds re-derive per execution.
func (s *Session) planShapeKey(vars []string, infos map[string]varInfo, where Expr) string {
	var b strings.Builder
	for _, v := range vars {
		b.WriteString(v)
		b.WriteByte(':')
		b.WriteString(infos[v].typ)
		b.WriteByte(',')
	}
	b.WriteByte('|')
	shapeExpr(&b, where)
	b.WriteByte('|')
	if h := s.sortHint; h != nil {
		b.WriteString(h.v)
		b.WriteByte('.')
		b.WriteString(h.attr)
		if h.desc {
			b.WriteString(" desc")
		}
	}
	return b.String()
}

// shapeExpr renders an expression with literals blanked to "?".
func shapeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
	case Lit:
		b.WriteByte('?')
	case Param:
		b.WriteByte('$')
	case AttrRef:
		b.WriteString(x.Var)
		b.WriteByte('.')
		b.WriteString(x.Attr)
	case VarRef:
		b.WriteString(x.Var)
	case Binary:
		b.WriteByte('(')
		shapeExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		shapeExpr(b, x.R)
		b.WriteByte(')')
	case Unary:
		b.WriteString(x.Op)
		b.WriteByte(' ')
		shapeExpr(b, x.X)
	case IsOp:
		b.WriteByte('(')
		shapeExpr(b, x.L)
		b.WriteString(" is ")
		shapeExpr(b, x.R)
		b.WriteByte(')')
	case OrderOp:
		b.WriteByte('(')
		shapeExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		shapeExpr(b, x.R)
		if x.Order != "" {
			b.WriteString(" in ")
			b.WriteString(x.Order)
		}
		b.WriteByte(')')
	case IncipitOp:
		b.WriteByte('(')
		shapeExpr(b, x.L)
		b.WriteString(" incipit ")
		shapeExpr(b, x.R)
		b.WriteByte(')')
	case Agg:
		b.WriteString(x.Fn)
		b.WriteByte('(')
		b.WriteString(x.Var)
		b.WriteByte('.')
		if x.Attr != "" {
			b.WriteString(x.Attr)
		} else {
			b.WriteString("all")
		}
		if x.Where != nil {
			b.WriteString(" where ")
			shapeExpr(b, x.Where)
		}
		b.WriteByte(')')
	default:
		b.WriteString("<?>")
	}
}
