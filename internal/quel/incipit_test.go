package quel

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/biblio"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/value"
)

// setupBiblio opens the bibliographic layer (which registers the incipit
// gram index with the model) and loads three entries with hand-picked
// incipits:
//
//	#1  60 62 64 65     intervals [2 2 1]      gram "2,2,1"
//	#2  60 64 67 72     intervals [4 3 5]      gram "4,3,5"
//	#3  60 62 64 65 67  intervals [2 2 1 2]    grams "2,2,1" "2,1,2"
func setupBiblio(t testing.TB) (*model.Database, *Session) {
	t.Helper()
	store, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := model.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := biblio.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ix.NewCatalog("Testverzeichnis", "TV", "thematic")
	if err != nil {
		t.Fatal(err)
	}
	notes := func(pitches ...int) []biblio.IncipitNote {
		out := make([]biblio.IncipitNote, len(pitches))
		for i, p := range pitches {
			out[i] = biblio.IncipitNote{MIDIPitch: p, DurNum: 1, DurDen: 4}
		}
		return out
	}
	for n, inc := range map[int][]biblio.IncipitNote{
		1: notes(60, 62, 64, 65),
		2: notes(60, 64, 67, 72),
		3: notes(60, 62, 64, 65, 67),
	} {
		if _, err := ix.AddEntry(cat, biblio.Entry{Number: n, Title: "t", Incipit: inc}); err != nil {
			t.Fatal(err)
		}
	}
	return db, NewSession(db)
}

func entryNumbers(t *testing.T, res *Result) []int {
	t.Helper()
	var out []int
	for _, row := range res.Rows {
		out = append(out, int(row[0].AsInt()))
	}
	sort.Ints(out)
	return out
}

func TestIncipitQueryIndexed(t *testing.T) {
	_, s := setupBiblio(t)
	mustExec(t, s, `range of e is CATALOG_ENTRY`)
	const q = `retrieve (e.number) where e incipit "60 62 64 65"`
	got := entryNumbers(t, mustExec(t, s, q))
	if want := []int{1, 3}; strings.Join(strings.Fields(sprintInts(got)), " ") != sprintInts(want) {
		t.Fatalf("planned = %v, want %v", got, want)
	}
	// Differential: the naive executor (full scan + residual predicate)
	// must agree with the gram-probe plan.
	s.SetNaive(true)
	naive := entryNumbers(t, mustExec(t, s, q))
	if sprintInts(naive) != sprintInts(got) {
		t.Fatalf("naive = %v, planned = %v", naive, got)
	}
}

func sprintInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = value.Int(int64(x)).String()
	}
	return strings.Join(parts, " ")
}

func TestExplainIncipitScan(t *testing.T) {
	_, s := setupBiblio(t)
	mustExec(t, s, `range of e is CATALOG_ENTRY`)
	got := planLines(t, s, `explain retrieve (e.number) where e incipit "60 62 64 65"`)
	want := []string{
		`Retrieve (rows=2) (time=X)`,
		`  Filter: (e incipit 60 62 64 65) (in=2, out=2)`,
		`    IncipitOps: 2 evals (time=X)`,
		`    IncipitScan e on CATALOG_ENTRY using ix_incipit_gram_gram [gram = "2,2,1"] (est=2, scanned=2, kept=2) (time=X)`,
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("plan:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestIncipitShortPatternFallsBack: a pattern with fewer than GramN
// intervals cannot be probed, so the planner degrades to a heap scan and
// the predicate alone decides membership.
func TestIncipitShortPatternFallsBack(t *testing.T) {
	_, s := setupBiblio(t)
	mustExec(t, s, `range of e is CATALOG_ENTRY`)
	got := planLines(t, s, `explain retrieve (e.number) where e incipit "60 62"`)
	joined := strings.Join(got, "\n")
	if strings.Contains(joined, "IncipitScan") {
		t.Fatalf("short pattern should not gram-probe:\n%s", joined)
	}
	if !strings.Contains(joined, "Scan e on CATALOG_ENTRY") {
		t.Fatalf("expected heap scan:\n%s", joined)
	}
	res := mustExec(t, s, `retrieve (e.number) where e incipit "60 62"`)
	if got, want := entryNumbers(t, res), []int{1, 3}; sprintInts(got) != sprintInts(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

// TestIncipitPlanCacheReplay: a cached incipit strategy must re-derive
// the probe gram from the live literal, not replay stale bounds.
func TestIncipitPlanCacheReplay(t *testing.T) {
	_, s := setupBiblio(t)
	s.SetPlanCache(NewPlanCache(nil))
	mustExec(t, s, `range of e is CATALOG_ENTRY`)
	first := planLines(t, s, `explain retrieve (e.number) where e incipit "60 62 64 65"`)
	if strings.Contains(strings.Join(first, "\n"), "PlanCache: hit") {
		t.Fatalf("first execution hit the cache:\n%s", strings.Join(first, "\n"))
	}
	second := planLines(t, s, `explain retrieve (e.number) where e incipit "60 64 67 72"`)
	joined := strings.Join(second, "\n")
	if !strings.Contains(joined, "PlanCache: hit") {
		t.Fatalf("second execution missed the cache:\n%s", joined)
	}
	if !strings.Contains(joined, `IncipitScan e on CATALOG_ENTRY using ix_incipit_gram_gram [gram = "4,3,5"]`) {
		t.Fatalf("replayed plan did not re-derive the gram:\n%s", joined)
	}
	if !strings.Contains(second[0], "rows=1") {
		t.Fatalf("expected one row for entry #2:\n%s", joined)
	}
}

func TestIncipitPrepared(t *testing.T) {
	_, s := setupBiblio(t)
	mustExec(t, s, `range of e is CATALOG_ENTRY`)
	p, err := Prepare(`explain retrieve (e.number) where e incipit $1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecPreparedCtx(t.Context(), p, value.Str("60 62 64 65"))
	if err != nil {
		t.Fatal(err)
	}
	var joined strings.Builder
	for _, row := range res.Rows {
		joined.WriteString(row[0].String())
		joined.WriteByte('\n')
	}
	if !strings.Contains(joined.String(), "IncipitScan") {
		t.Fatalf("prepared incipit did not plan a gram probe:\n%s", joined.String())
	}
}

func TestIncipitErrors(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	// No incipit index registered for NOTE.
	if _, err := s.Exec(`retrieve (NOTE.name) where NOTE incipit "60 62 64"`); err == nil ||
		!strings.Contains(err.Error(), "no incipit index") {
		t.Fatalf("err = %v", err)
	}
	// Pattern must be a string.
	_, s2 := setupBiblio(t)
	mustExec(t, s2, `range of e is CATALOG_ENTRY`)
	if _, err := s2.Exec(`retrieve (e.number) where e incipit 5`); err == nil ||
		!strings.Contains(err.Error(), "pattern must be a string") {
		t.Fatalf("err = %v", err)
	}
}
