package quel

import (
	"context"

	"repro/internal/exec"
	"repro/internal/value"
)

// This file fans the read path across internal/exec's morsel-driven
// worker pool (SetParallel).  Three sites parallelize, all gated on a
// pinned MVCC snapshot — Snap reads are safe for concurrent use, the
// locking path is not — and on enough rows to amortize the fork/merge:
//
//   - index-scan materialization: the key range splits at the index's
//     stored partition boundaries and sub-ranges scan concurrently;
//   - hash-table builds: fixed chunks of the build side hash on the
//     pool and the partial tables merge chunk-by-chunk;
//   - the join pipeline: the driver (first step's) binding list splits
//     into morsels, workers pull morsels from an atomic counter and run
//     the remaining steps serially per driver row into per-morsel row
//     buffers.
//
// Every merge concatenates partial results in partition/morsel order,
// so each site reproduces the serial executor's output byte-for-byte —
// the three-way differential test (parallel vs. serial vs. naive)
// asserts exactly that, and the serial executor remains reachable by
// simply not calling SetParallel.

// defaultParMinRows gates parallel execution: below this many driver
// rows the fork/merge overhead dominates any speedup.
const defaultParMinRows = 2048

// morselsPerWorker oversubscribes morsels so workers that finish small
// morsels early can steal remaining work (skewed scores self-balance).
const morselsPerWorker = 4

// parallelOK reports whether the materialized join may run on the pool:
// parallelism requested, snapshot pinned (concurrent reads are safe and
// the statement is read-only), a live emitter (the collector we know how
// to clone per worker), and a driver list big enough to bother.
func (s *Session) parallelOK(steps []*joinStep) bool {
	return s.parWorkers > 1 && s.snap != nil && s.emit != nil &&
		len(steps) > 0 && len(steps[0].vp.list) >= s.parMin
}

// workerClone returns a shallow session copy for one worker: shared
// database, snapshot, and atomic counters; private statement cache and
// plan statistics so the per-row hot path stays lock-free.  The clone
// never parallelizes further (parWorkers is zero).
func (s *Session) workerClone() *Session {
	return &Session{
		db:     s.db,
		ranges: s.ranges,
		m:      s.m,
		pm:     s.pm,
		ps:     &planStats{},
		snap:   s.snap,
		cache:  newStmtCache(),
	}
}

// runParallelJoin drives the planned steps over the worker pool and
// merges rows, statistics, and counters back into the session.
func (s *Session) runParallelJoin(ctx context.Context, steps []*joinStep) error {
	driver := steps[0].vp.list
	workers := s.parWorkers
	morsels := workers * morselsPerWorker
	if morsels > len(driver) {
		morsels = len(driver)
	}
	chunk := (len(driver) + morsels - 1) / morsels
	morsels = (len(driver) + chunk - 1) / chunk
	if workers > morsels {
		workers = morsels
	}
	s.pm.parQueries.Inc()
	s.pm.parMorsels.Add(uint64(morsels))

	type workerState struct {
		w      *Session
		em     *emitter
		counts []stepCount
		combos int
	}
	states := make([]*workerState, workers)
	rowsByMorsel := make([][]value.Tuple, morsels)
	partEst := make([]int, morsels)
	err := exec.Run(ctx, workers, morsels, func(ctx context.Context, wi, m int) error {
		ws := states[wi]
		if ws == nil {
			w := s.workerClone()
			ws = &workerState{w: w, em: &emitter{s: w, q: s.emit.q, ps: w.ps},
				counts: make([]stepCount, len(steps))}
			states[wi] = ws
		}
		lo, hi := m*chunk, (m+1)*chunk
		if hi > len(driver) {
			hi = len(driver)
		}
		partEst[m] = hi - lo
		ws.em.rows = nil
		run := &stepRun{s: ws.w, ctx: ctx, steps: steps, counts: ws.counts,
			e: make(env, len(steps)), fn: ws.em.emit}
		for li := lo; li < hi; li++ {
			run.e[steps[0].vp.name] = driver[li]
			if err := run.rec(1); err != nil {
				return err
			}
		}
		ws.combos += run.combos
		rowsByMorsel[m] = ws.em.rows
		return nil
	})
	if err != nil {
		return err
	}

	// Concatenating per-morsel buffers in morsel order reproduces the
	// serial emit order exactly, so unique/sort/compare downstream see
	// no difference.
	total := 0
	for _, rs := range rowsByMorsel {
		total += len(rs)
	}
	merged := make([]value.Tuple, 0, total)
	partRows := make([]int, morsels)
	for m, rs := range rowsByMorsel {
		partRows[m] = len(rs)
		merged = append(merged, rs...)
	}
	s.emit.rows = append(s.emit.rows, merged...)

	combos := 0
	counts := make([]stepCount, len(steps))
	for _, ws := range states {
		if ws == nil {
			continue
		}
		combos += ws.combos
		for k := range counts {
			counts[k].probes += ws.counts[k].probes
			counts[k].hits += ws.counts[k].hits
		}
		if s.ps != nil {
			s.ps.FilterIn += ws.w.ps.FilterIn
			s.ps.FilterOut += ws.w.ps.FilterOut
			s.ps.OrderEvals += ws.w.ps.OrderEvals
			s.ps.OrderDur += ws.w.ps.OrderDur
		}
	}
	// The driver step is scanned once as morsels, not probed per row.
	counts[0] = stepCount{probes: 1, hits: len(driver)}
	s.m.combos.Add(uint64(combos))
	if s.ps != nil {
		s.ps.Combos = combos
		s.ps.Par = &parStats{Workers: workers, Morsels: morsels,
			PartEst: partEst, PartRows: partRows}
		s.recordSteps(steps, counts)
	}
	return nil
}

// scanIndexParallel materializes an index range scan by splitting the
// key range at the index's partition boundaries and scanning sub-ranges
// on the pool.  Sub-lists concatenate in key order, so the binding list
// is identical to the serial scan's.  Returns did=false when the scan
// does not qualify (no snapshot, descending order, too small, or the
// index cannot be split) and the caller falls through to the serial
// path.
func (s *Session) scanIndexParallel(ctx context.Context, vp *varPlan, st *scanStats) (bool, error) {
	snap := s.snap
	if snap == nil || s.parWorkers <= 1 || vp.access.reverse || vp.access.est < s.parMin {
		return false, nil
	}
	bounds, ok := s.db.SplitInstancesRange(vp.info.typ, vp.access.index, vp.access.lo, vp.access.hi, s.parWorkers*2)
	if !ok || len(bounds) == 0 {
		return false, nil
	}
	edges := make([][]byte, 0, len(bounds)+2)
	edges = append(edges, vp.access.lo)
	edges = append(edges, bounds...)
	edges = append(edges, vp.access.hi)
	parts := len(edges) - 1
	type partOut struct {
		list          []binding
		scanned, kept int
	}
	outs := make([]partOut, parts)
	err := exec.Run(ctx, s.parWorkers, parts, func(_ context.Context, _, p int) error {
		po := &outs[p]
		return snap.InstancesRange(vp.info.typ, vp.access.index, edges[p], edges[p+1], false,
			func(ref value.Ref, attrs value.Tuple) bool {
				po.scanned++
				b := binding{ref: ref, attrs: attrs, fields: vp.info.fields, typ: vp.info.typ}
				if !sargMatches(vp.sargs, b.fields, b.attrs) {
					return true
				}
				po.kept++
				po.list = append(po.list, b)
				return true
			})
	})
	if err != nil {
		return true, err
	}
	for i := range outs {
		st.Scanned += outs[i].scanned
		st.Kept += outs[i].kept
		vp.list = append(vp.list, outs[i].list...)
	}
	st.Parts = parts
	s.pm.parMorsels.Add(uint64(parts))
	return true, nil
}

// buildHashTableParallel builds the same table as buildHashTable by
// hashing fixed chunks on the pool and merging the partial maps in
// ascending chunk order: every bucket's list indexes end up sorted
// exactly as the serial build leaves them, so probe iteration order —
// and therefore row order — is unchanged.
func (s *Session) buildHashTableParallel(vp *varPlan, build []joinKey) map[string][]int {
	n := len(vp.list)
	parts := s.parWorkers
	chunk := (n + parts - 1) / parts
	parts = (n + chunk - 1) / chunk
	partial := make([]map[string][]int, parts)
	// fn never fails and the context is never canceled here, so Run's
	// error is structurally nil.
	_ = exec.Run(context.Background(), s.parWorkers, parts, func(_ context.Context, _, p int) error {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > n {
			hi = n
		}
		h := make(map[string][]int, hi-lo)
		var buf []byte
		for li := lo; li < hi; li++ {
			buf = buf[:0]
			for _, k := range build {
				buf = appendHashKey(buf, k.value(vp.list[li]))
			}
			h[string(buf)] = append(h[string(buf)], li)
		}
		partial[p] = h
		return nil
	})
	out := partial[0]
	for _, h := range partial[1:] {
		for k, lis := range h {
			out[k] = append(out[k], lis...)
		}
	}
	s.pm.parMorsels.Add(uint64(parts))
	return out
}
