package quel

import (
	"errors"
	"regexp"
	"strings"
	"testing"
)

// redactTimes replaces wall-clock fields so plan output is comparable
// across runs.
var timeRE = regexp.MustCompile(`time=[^)]+`)

func planLines(t *testing.T, s *Session, src string) []string {
	t.Helper()
	res := mustExec(t, s, src)
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("columns = %v", res.Columns)
	}
	var lines []string
	for _, row := range res.Rows {
		lines = append(lines, timeRE.ReplaceAllString(row[0].String(), "time=X"))
	}
	return lines
}

func TestExplainSingleScan(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	got := planLines(t, s, `explain retrieve (NOTE.name) where NOTE.pitch > 61`)
	want := []string{
		`Retrieve (rows=3) (time=X)`,
		`  Filter: (NOTE.pitch > 61) (in=3, out=3)`,
		`    Scan NOTE on NOTE (est=5, scanned=5, kept=3) (time=X)`,
		`      Sarg: NOTE.pitch > 61`,
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("plan:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestExplainOrderOpJoin(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	mustExec(t, s, `range of n1, n2 is NOTE`)
	got := planLines(t, s,
		`explain retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3`)
	// The planner binds n2 first (its sarg leaves one binding) and joins
	// n1 by probing the ordering's sibling tree instead of looping all
	// 25 pairs; only the two real candidates reach the qualification.
	want := []string{
		`Retrieve (rows=2) (time=X)`,
		`  Filter: ((n1 before n2 in note_in_chord) and (n2.name = 3)) (in=2, out=2)`,
		`    OrderOps: 2 evals (time=X)`,
		`    OrderProbe (n1 before n2 in note_in_chord) (est=2, probes=1, hits=2)`,
		`      Scan n2 on NOTE (est=5, scanned=5, kept=1) (time=X)`,
		`        Sarg: n2.name = 3`,
		`      Scan n1 on NOTE (est=5, scanned=5, kept=5) (time=X)`,
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("plan:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestExplainUnderUniqueSort(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	got := planLines(t, s,
		`explain retrieve unique (NOTE.pitch) where NOTE under CHORD sort by pitch`)
	if !strings.Contains(got[0], "Retrieve Unique (rows=5)") {
		t.Fatalf("root: %s", got[0])
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"Sort: pitch", "Unique (dropped=0)", "under", "OrderOps: 5 evals", "OrderProbe"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("plan missing %q:\n%s", want, joined)
		}
	}
}

func TestExplainOnlyRetrieve(t *testing.T) {
	_, s := newSession(t)
	if _, err := s.Exec(`explain delete n`); err == nil ||
		!strings.Contains(err.Error(), "only retrieve") {
		t.Fatalf("err = %v", err)
	}
	if _, err := Parse(`explain explain retrieve (n.name)`); err == nil {
		t.Fatal("nested explain accepted")
	}
}

func TestParseErrSentinel(t *testing.T) {
	_, err := Parse(`retrieve n.name`)
	if !errors.Is(err, ErrParse) {
		t.Fatalf("err = %v, want ErrParse", err)
	}
}

// TestExplainRunsQuery proves explain executes (actual counts come from
// a real run, per the "estimated vs. actual" contract) without emitting
// the query's own rows.
func TestExplainRunsQuery(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	got := planLines(t, s, `explain retrieve (NOTE.name)`)
	if !strings.Contains(got[len(got)-1], "scanned=5") {
		t.Fatalf("expected actual scan counts, got:\n%s", strings.Join(got, "\n"))
	}
}
