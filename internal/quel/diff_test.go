package quel

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/value"
)

// TestPlannerNaiveDifferential executes randomized retrieves through
// both executors — the cost-based planner and the retained naive
// nested-loop path — over the same database and asserts identical
// result multisets.  The query pool exercises every planner decision:
// index range scans (bounded and unbounded sargs, matched and
// mismatched literal kinds), hash equi-joins (attribute/attribute,
// identity, multi-conjunct), ordering probes (before/after/under, both
// orientations), join reordering, sort elision, unique, and empty-scan
// short-circuits.
func TestPlannerNaiveDifferential(t *testing.T) {
	db, planned := newSession(t)
	naive := NewSession(db)
	naive.SetNaive(true)

	if _, err := ddl.Exec(db, `
define entity A (x = integer, y = integer, w = float)
define entity B (x = integer, z = integer)
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer, chord = integer)
define ordering note_in_chord (NOTE) under CHORD
define index on A (x)
define index on NOTE (pitch)
define index on NOTE (name)
`); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		if _, err := db.NewEntity("A", model.Attrs{
			"x": value.Int(rng.Int63n(10)),
			"y": value.Int(rng.Int63n(5)),
			"w": value.Float(float64(rng.Int63n(8))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		if _, err := db.NewEntity("B", model.Attrs{
			"x": value.Int(rng.Int63n(10)),
			"z": value.Int(rng.Int63n(6)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	chords := make([]value.Ref, 4)
	for i := range chords {
		c, err := db.NewEntity("CHORD", model.Attrs{"name": value.Int(int64(i + 1))})
		if err != nil {
			t.Fatal(err)
		}
		chords[i] = c
	}
	for i := 0; i < 40; i++ {
		ci := rng.Intn(len(chords))
		n, err := db.NewEntity("NOTE", model.Attrs{
			"name":  value.Int(int64(i)),
			"pitch": value.Int(48 + rng.Int63n(32)),
			"chord": value.Int(int64(ci + 1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.InsertChild("note_in_chord", chords[ci], n, model.Last()); err != nil {
			t.Fatal(err)
		}
	}

	lit := func() int64 { return rng.Int63n(12) }
	pitch := func() int64 { return 48 + rng.Int63n(32) }
	op := func() string {
		return []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
	}
	templates := []func() string{
		// Single-variable sargs on the indexed attribute, including
		// ranges and a float literal on an integer field (kind
		// mismatch: must stay a residual filter, never a bad bound).
		func() string { return fmt.Sprintf(`retrieve (a.x, a.y) where a.x %s %d`, op(), lit()) },
		func() string {
			return fmt.Sprintf(`retrieve (a.x, a.y) where a.x >= %d and a.x < %d`, lit(), lit())
		},
		func() string { return fmt.Sprintf(`retrieve (a.x) where a.x = %d.0`, lit()) },
		func() string { return fmt.Sprintf(`retrieve (a.w) where a.w %s %d.0`, op(), lit()) },
		func() string {
			return fmt.Sprintf(`retrieve (n.name) where n.pitch >= %d and n.pitch <= %d`, pitch(), pitch())
		},
		// Contradictory bounds: empty index range, scan short-circuit.
		func() string { return `retrieve (n.name, c.name) where n.pitch > 99 and n.chord = c.name` },
		// Hash equi-joins, with and without extra sargs; or-disjuncts
		// must keep the conjunct out of the join keys.
		func() string { return `retrieve (a.x, b.z) where a.x = b.x` },
		func() string { return fmt.Sprintf(`retrieve (a.y, b.z) where a.x = b.x and b.z %s %d`, op(), lit()) },
		func() string { return fmt.Sprintf(`retrieve (a.x) where a.x = b.x and a.y = b.z and b.x < %d`, lit()) },
		func() string { return fmt.Sprintf(`retrieve (a.x, b.x) where a.x = b.x or a.y > %d`, lit()) },
		func() string {
			return fmt.Sprintf(`retrieve (n.name, c.name) where n.chord = c.name and c.name %s %d`, op(), 1+rng.Int63n(4))
		},
		// Identity join through two variables over the same type.
		func() string { return fmt.Sprintf(`retrieve (n1.name) where n1 = n2 and n2.name = %d`, rng.Int63n(40)) },
		// Ordering probes in every orientation.
		func() string {
			return fmt.Sprintf(`retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = %d`, rng.Int63n(40))
		},
		func() string {
			return fmt.Sprintf(`retrieve (n1.name) where n1 after n2 in note_in_chord and n2.name = %d`, rng.Int63n(40))
		},
		func() string {
			return fmt.Sprintf(`retrieve (n2.name) where n1 before n2 in note_in_chord and n1.name = %d`, rng.Int63n(40))
		},
		func() string {
			return fmt.Sprintf(`retrieve (n.name, c.name) where n under c in note_in_chord and c.name = %d`, 1+rng.Int63n(4))
		},
		func() string {
			return fmt.Sprintf(`retrieve (c.name) where n under c in note_in_chord and n.name = %d`, rng.Int63n(40))
		},
		func() string { return `retrieve unique (c.name) where n under c in note_in_chord and n.pitch > 60` },
		// Three-way: ordering probe plus hash join.
		func() string {
			return fmt.Sprintf(`retrieve (n1.name, n2.name) where n1 before n2 in note_in_chord and n1.pitch = n2.pitch and c.name = n1.chord and c.name %s %d`, op(), 1+rng.Int63n(4))
		},
		// Sort elision (asc and desc) and sorted joins.
		func() string { return fmt.Sprintf(`retrieve (p = n.pitch) where n.pitch > %d sort by p`, pitch()) },
		func() string {
			return fmt.Sprintf(`retrieve (p = n.pitch, nm = n.name) where n.pitch < %d sort by p desc`, pitch())
		},
		func() string { return `retrieve unique (x = a.x) sort by x desc` },
		func() string { return `retrieve (a.y, b.z) where a.x = b.x sort by y, z desc` },
	}

	decls := `range of a is A
range of b is B
range of n, n1, n2 is NOTE
range of c is CHORD`
	mustExec(t, planned, decls)
	mustExec(t, naive, decls)

	for i := 0; i < 250; i++ {
		q := templates[i%len(templates)]()
		pres, perr := planned.Exec(q)
		nres, nerr := naive.Exec(q)
		if (perr == nil) != (nerr == nil) {
			t.Fatalf("query %q: planner err = %v, naive err = %v", q, perr, nerr)
		}
		if perr != nil {
			t.Fatalf("query %q: %v", q, perr)
		}
		if got, want := strings.Join(pres.Columns, ","), strings.Join(nres.Columns, ","); got != want {
			t.Fatalf("query %q: columns %q vs %q", q, got, want)
		}
		if got, want := canonRows(pres), canonRows(nres); got != want {
			t.Fatalf("query %q: result mismatch\nplanner:\n%s\nnaive:\n%s", q, got, want)
		}
	}
}

// canonRows renders a result's rows as a sorted multiset: both executors
// must emit the same rows, but tie order within a sort (and row order
// without one) is executor-dependent.
func canonRows(res *Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.Quoted()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestPlannerSortedOrderAgreement pins down that with a sort clause the
// planner's row order (including an elided sort) matches the naive
// executor's stable sort exactly when the sort key is unique per row.
func TestPlannerSortedOrderAgreement(t *testing.T) {
	db, planned := newSession(t)
	naive := NewSession(db)
	naive.SetNaive(true)
	if _, err := ddl.Exec(db, `
define entity NOTE (name = integer, pitch = integer)
define index on NOTE (name)
`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if _, err := db.NewEntity("NOTE", model.Attrs{
			"name": value.Int(int64(i)), "pitch": value.Int(rng.Int63n(100)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		`retrieve (nm = NOTE.name, p = NOTE.pitch) sort by nm`,
		`retrieve (nm = NOTE.name, p = NOTE.pitch) sort by nm desc`,
		`retrieve (nm = NOTE.name) where NOTE.name >= 5 and NOTE.name < 15 sort by nm desc`,
	} {
		pres := mustExec(t, planned, q)
		nres := mustExec(t, naive, q)
		if len(pres.Rows) != len(nres.Rows) {
			t.Fatalf("query %q: %d vs %d rows", q, len(pres.Rows), len(nres.Rows))
		}
		for i := range pres.Rows {
			for j := range pres.Rows[i] {
				if value.Compare(pres.Rows[i][j], nres.Rows[i][j]) != 0 {
					t.Fatalf("query %q: row %d differs: %v vs %v", q, i, pres.Rows[i], nres.Rows[i])
				}
			}
		}
	}
}
