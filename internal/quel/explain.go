package quel

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/value"
)

// planStats collects estimated and actual cardinalities plus timings
// while a retrieve executes.  The explain statement runs the query and
// renders this as a plan tree; normal execution gathers it too (the
// overhead is a handful of integer increments per row).
type planStats struct {
	Scans         []scanStats
	Steps         []joinStat // planned join order, one entry per variable
	Combos        int        // join combinations produced
	FilterIn      int        // bindings entering the qualification
	FilterOut     int        // bindings passing it
	OrderEvals    int        // before/after/under evaluations
	OrderDur      time.Duration
	IncipitEvals  int // incipit predicate evaluations
	IncipitDur    time.Duration
	UniqueDropped int
	SortElided    bool   // sort satisfied by index scan order
	SortIndex     string // index that satisfied it
	SortDur       time.Duration
	Emitted       int
	Total         time.Duration
	CacheHit      bool      // plan strategy came from the shared plan cache
	Par           *parStats // set when the join ran on the worker pool
}

// parStats records the parallel executor's shape for one statement:
// worker fan-out, morsel count, and per-morsel driver rows (est) vs.
// emitted rows (actual) — the skew picture.
type parStats struct {
	Workers  int
	Morsels  int
	PartEst  []int // driver rows handed to each morsel
	PartRows []int // rows emitted by each morsel
}

// scanStats describes one range variable's scan.
type scanStats struct {
	Var     string
	Rel     string // entity or relationship type scanned
	Est     int    // estimated rows (range count for index scans)
	Scanned int    // rows visited
	Kept    int    // rows surviving pushed-down sargs
	Index   string // secondary index used; empty = heap scan
	Range   string // key-range description for index scans
	Incipit bool   // gram-probe scan driven by an incipit predicate
	Skipped bool   // not scanned: an earlier variable had no bindings
	Parts   int    // sub-ranges scanned in parallel; 0 = serial scan
	Sargs   []string
	Dur     time.Duration
}

// joinStat describes how one variable entered the planned join.
type joinStat struct {
	Var    string
	Method string // "scan", "hash", "probe", "loop"
	Cond   string // join conjunct(s) driving a hash join or order probe
	Est    int    // planner's combination estimate after this step
	Build  int    // bindings on the step's own side
	Probes int
	Hits   int
}

// estCombos is the join-size estimate: the product of per-scan
// estimates, saturating instead of overflowing.
func (ps *planStats) estCombos() int {
	est := 1
	for _, sc := range ps.Scans {
		if sc.Est > 0 && est > int(^uint(0)>>1)/sc.Est {
			return int(^uint(0) >> 1)
		}
		est *= sc.Est
	}
	return est
}

// explain executes the wrapped statement and returns its plan tree as a
// one-column result instead of the query's own rows.
func (s *Session) explain(ctx context.Context, q Explain) (*Result, error) {
	ret, ok := q.Stmt.(Retrieve)
	if !ok {
		return nil, fmt.Errorf("quel: explain supports only retrieve statements, not %s", stmtKind(q.Stmt))
	}
	_, ps, err := s.retrieveStats(ctx, ret)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"QUERY PLAN"}}
	for _, line := range renderPlan(ret, ps) {
		res.Rows = append(res.Rows, value.Tuple{value.Str(line)})
	}
	return res, nil
}

// renderPlan formats the plan tree bottom-up: scans feed the join, the
// join feeds the filter, then unique/sort, then the retrieve root.
// Timings are wall-clock and therefore nondeterministic; tests redact
// the "time=..." fields.
func renderPlan(q Retrieve, ps *planStats) []string {
	var lines []string
	add := func(depth int, format string, args ...any) {
		lines = append(lines, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
	}
	root := "Retrieve"
	if q.Unique {
		root = "Retrieve Unique"
	}
	add(0, "%s (rows=%d) (time=%s)", root, ps.Emitted, ps.Total)
	depth := 1
	if ps.CacheHit {
		add(depth, "PlanCache: hit")
	}
	if len(q.SortBy) > 0 {
		keys := make([]string, len(q.SortBy))
		for i, k := range q.SortBy {
			keys[i] = k.Label
			if k.Desc {
				keys[i] += " desc"
			}
		}
		if ps.SortElided {
			add(depth, "Sort: %s (satisfied by IndexScan %s)", strings.Join(keys, ", "), ps.SortIndex)
		} else {
			add(depth, "Sort: %s (time=%s)", strings.Join(keys, ", "), ps.SortDur)
		}
		depth++
	}
	if q.Unique {
		add(depth, "Unique (dropped=%d)", ps.UniqueDropped)
		depth++
	}
	if q.Where != nil {
		add(depth, "Filter: %s (in=%d, out=%d)", exprString(q.Where), ps.FilterIn, ps.FilterOut)
		depth++
		if ps.OrderEvals > 0 {
			add(depth, "OrderOps: %d evals (time=%s)", ps.OrderEvals, ps.OrderDur)
		}
		if ps.IncipitEvals > 0 {
			add(depth, "IncipitOps: %d evals (time=%s)", ps.IncipitEvals, ps.IncipitDur)
		}
	}
	if ps.Par != nil {
		add(depth, "Parallel (workers=%d, morsels=%d)", ps.Par.Workers, ps.Par.Morsels)
		for m := range ps.Par.PartEst {
			add(depth+1, "morsel %d: est=%d rows=%d", m, ps.Par.PartEst[m], ps.Par.PartRows[m])
		}
		depth++
	}
	if len(ps.Steps) > 1 {
		renderSteps(add, depth, ps, len(ps.Steps)-1)
		return lines
	}
	// Flat layout: single-variable plans, the naive executor, and
	// short-circuited statements (an empty scan skipped the join).
	if len(ps.Scans) > 1 {
		add(depth, "NestedLoopJoin (est=%d, actual=%d)", ps.estCombos(), ps.Combos)
		depth++
	}
	for _, sc := range ps.Scans {
		renderScan(add, depth, sc)
	}
	return lines
}

// renderSteps renders the planned left-deep join tree: step k joins the
// tree of steps [0, k) with step k's own scan.
func renderSteps(add func(int, string, ...any), depth int, ps *planStats, k int) {
	st := ps.Steps[k]
	if k == 0 {
		renderScan(add, depth, scanFor(ps, st.Var))
		return
	}
	switch st.Method {
	case "hash":
		add(depth, "HashJoin (%s) (est=%d, build=%d, probes=%d, hits=%d)", st.Cond, st.Est, st.Build, st.Probes, st.Hits)
	case "probe":
		add(depth, "OrderProbe (%s) (est=%d, probes=%d, hits=%d)", st.Cond, st.Est, st.Probes, st.Hits)
	default:
		add(depth, "NestedLoopJoin (est=%d, probes=%d, hits=%d)", st.Est, st.Probes, st.Hits)
	}
	renderSteps(add, depth+1, ps, k-1)
	renderScan(add, depth+1, scanFor(ps, st.Var))
}

func scanFor(ps *planStats, v string) scanStats {
	for _, sc := range ps.Scans {
		if sc.Var == v {
			return sc
		}
	}
	return scanStats{Var: v}
}

// renderScan renders one access-path leaf.
func renderScan(add func(int, string, ...any), depth int, sc scanStats) {
	switch {
	case sc.Skipped:
		add(depth, "Scan %s on %s (est=%d, skipped: earlier variable empty)", sc.Var, sc.Rel, sc.Est)
	case sc.Incipit:
		add(depth, "IncipitScan %s on %s using %s [%s] (est=%d, scanned=%d, kept=%d) (time=%s)",
			sc.Var, sc.Rel, sc.Index, sc.Range, sc.Est, sc.Scanned, sc.Kept, sc.Dur)
	case sc.Index != "" && sc.Range != "":
		add(depth, "IndexScan %s on %s using %s [%s] (est=%d, scanned=%d, kept=%d) (time=%s)",
			sc.Var, sc.Rel, sc.Index, sc.Range, sc.Est, sc.Scanned, sc.Kept, sc.Dur)
	case sc.Index != "":
		add(depth, "IndexScan %s on %s using %s (est=%d, scanned=%d, kept=%d) (time=%s)",
			sc.Var, sc.Rel, sc.Index, sc.Est, sc.Scanned, sc.Kept, sc.Dur)
	default:
		add(depth, "Scan %s on %s (est=%d, scanned=%d, kept=%d) (time=%s)",
			sc.Var, sc.Rel, sc.Est, sc.Scanned, sc.Kept, sc.Dur)
	}
	if sc.Parts > 0 {
		add(depth+1, "Parallel: %d sub-ranges", sc.Parts)
	}
	if !sc.Skipped && len(sc.Sargs) > 0 {
		add(depth+1, "Sarg: %s", strings.Join(sc.Sargs, " and "))
	}
}

// exprString renders an expression roughly as it was written, for plan
// display.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return "true"
	case Lit:
		return x.V.String()
	case AttrRef:
		return x.Var + "." + x.Attr
	case VarRef:
		return x.Var
	case Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(x.L), x.Op, exprString(x.R))
	case Unary:
		if x.Op == "not" {
			return "not " + exprString(x.X)
		}
		return x.Op + exprString(x.X)
	case IsOp:
		return fmt.Sprintf("(%s is %s)", exprString(x.L), exprString(x.R))
	case OrderOp:
		s := fmt.Sprintf("(%s %s %s", exprString(x.L), x.Op, exprString(x.R))
		if x.Order != "" {
			s += " in " + x.Order
		}
		return s + ")"
	case IncipitOp:
		return fmt.Sprintf("(%s incipit %s)", exprString(x.L), exprString(x.R))
	case Agg:
		arg := x.Var + ".all"
		if x.Attr != "" {
			arg = x.Var + "." + x.Attr
		}
		if x.Where != nil {
			return fmt.Sprintf("%s(%s where %s)", x.Fn, arg, exprString(x.Where))
		}
		return fmt.Sprintf("%s(%s)", x.Fn, arg)
	}
	return fmt.Sprintf("%T", e)
}
