package quel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/value"
)

// buildScores populates SCORE/NOTE with nScores scores of notesPer notes
// each, attached through the note_in_score ordering, with a secondary
// index on pitch.  Pitches cycle deterministically so goldens stay
// stable.
func buildScores(t testing.TB, db *model.Database, nScores, notesPer int) {
	t.Helper()
	if _, err := ddl.Exec(db, `
define entity SCORE (name = integer)
define entity NOTE (name = integer, pitch = integer, score = integer)
define ordering note_in_score (NOTE) under SCORE
define index on NOTE (pitch)
define index on NOTE (name)
`); err != nil {
		t.Fatal(err)
	}
	id := 0
	for si := 0; si < nScores; si++ {
		sc, err := db.NewEntity("SCORE", model.Attrs{"name": value.Int(int64(si))})
		if err != nil {
			t.Fatal(err)
		}
		for ni := 0; ni < notesPer; ni++ {
			n, err := db.NewEntity("NOTE", model.Attrs{
				"name":  value.Int(int64(id)),
				"pitch": value.Int(int64(36 + id*7%48)),
				"score": value.Int(int64(si)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.InsertChild("note_in_score", sc, n, model.Last()); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
}

// parSession returns a session forced onto the parallel path: small
// fixtures still fan out because the row threshold drops to 1.
func parSession(db *model.Database, workers int) *Session {
	s := NewSession(db)
	s.SetParallel(workers)
	s.SetParallelMinRows(1)
	return s
}

// TestParallelMatchesSerialExactly pins the core merge invariant: the
// parallel executor must reproduce the serial executor's row order
// byte-for-byte (morsel-ordered concatenation), not merely the same
// multiset — sort-free retrieves included.
func TestParallelMatchesSerialExactly(t *testing.T) {
	db, serial := newSession(t)
	buildScores(t, db, 8, 25)
	par := parSession(db, 4)

	decls := "range of n, n1, n2 is NOTE\nrange of s is SCORE"
	mustExec(t, serial, decls)
	mustExec(t, par, decls)

	for _, q := range []string{
		`retrieve (n.name, n.pitch)`,
		`retrieve (n.name) where n.pitch >= 40 and n.pitch < 70`,
		`retrieve (n.name, s.name) where n under s in note_in_score`,
		`retrieve (n.name, s.name) where n under s in note_in_score and s.name >= 3`,
		`retrieve (n1.name, n2.name) where n1.pitch = n2.pitch and n1.name < 30`,
		`retrieve unique (p = n.pitch) where n under s in note_in_score and s.name < 4 sort by p`,
		`retrieve (p = n.pitch) where n.pitch > 40 sort by p`,
		`retrieve (n.name, n.pitch) sort by pitch, name desc`,
	} {
		sres := mustExec(t, serial, q)
		pres := mustExec(t, par, q)
		if len(sres.Rows) != len(pres.Rows) {
			t.Fatalf("query %q: serial %d rows, parallel %d rows", q, len(sres.Rows), len(pres.Rows))
		}
		for i := range sres.Rows {
			for j := range sres.Rows[i] {
				if value.Compare(sres.Rows[i][j], pres.Rows[i][j]) != 0 {
					t.Fatalf("query %q: row %d differs: serial %v, parallel %v",
						q, i, sres.Rows[i], pres.Rows[i])
				}
			}
		}
	}
	if got := db.Store().Obs().Counter("quel.par.queries").Value(); got == 0 {
		t.Fatal("quel.par.queries never incremented: parallel path did not engage")
	}
	if got := db.Store().Obs().Counter("quel.par.morsels").Value(); got == 0 {
		t.Fatal("quel.par.morsels never incremented")
	}
}

// TestParallelSerialNaiveDifferential is the three-way differential over
// randomized multi-score retrieves: the parallel executor vs. the serial
// planner vs. the naive nested-loop path must agree on every result
// multiset, and parallel must match serial's row order exactly.  Run
// with -race in CI, this is the memory-safety gate for the whole
// fan-out/merge machinery.
func TestParallelSerialNaiveDifferential(t *testing.T) {
	db, serial := newSession(t)
	buildScores(t, db, 10, 20)
	par := parSession(db, 4)
	naive := NewSession(db)
	naive.SetNaive(true)

	decls := "range of n, n1, n2 is NOTE\nrange of s, s1, s2 is SCORE"
	for _, sess := range []*Session{serial, par, naive} {
		mustExec(t, sess, decls)
	}

	rng := rand.New(rand.NewSource(1987))
	op := func() string { return []string{"=", "!=", "<", "<=", ">", ">="}[rng.Intn(6)] }
	pitch := func() int64 { return 36 + rng.Int63n(48) }
	score := func() int64 { return rng.Int63n(10) }
	name := func() int64 { return rng.Int63n(200) }
	templates := []func() string{
		// Single-variable scans: heap, index range, empty range.
		func() string { return fmt.Sprintf(`retrieve (n.name, n.pitch) where n.pitch %s %d`, op(), pitch()) },
		func() string {
			return fmt.Sprintf(`retrieve (n.name) where n.pitch >= %d and n.pitch < %d`, pitch(), pitch())
		},
		func() string { return `retrieve (n.name) where n.pitch > 999` },
		// Multi-score ordering probes, both orientations.
		func() string {
			return fmt.Sprintf(`retrieve (n.name, s.name) where n under s in note_in_score and s.name %s %d`, op(), score())
		},
		func() string {
			return fmt.Sprintf(`retrieve (s.name) where n under s in note_in_score and n.name = %d`, name())
		},
		func() string {
			return fmt.Sprintf(`retrieve (n1.name, n2.name) where n1 before n2 in note_in_score and n2.name = %d`, name())
		},
		func() string {
			return fmt.Sprintf(`retrieve (n1.name) where n1 after n2 in note_in_score and n2.name %s %d`, op(), name())
		},
		// Hash joins across scores, with and without sargs.
		func() string {
			return fmt.Sprintf(`retrieve (n1.name, n2.name) where n1.pitch = n2.pitch and n1.name < %d and n2.name >= %d`, name(), name())
		},
		func() string {
			return fmt.Sprintf(`retrieve (n.score, s.name) where n.score = s.name and s.name < %d`, score())
		},
		func() string { return fmt.Sprintf(`retrieve (n1.name) where n1 = n2 and n2.name = %d`, name()) },
		// Three-way: hash join plus ordering probe.
		func() string {
			return fmt.Sprintf(`retrieve (n1.name, n2.name) where n1 under s in note_in_score and n1.pitch = n2.pitch and s.name %s %d`, op(), score())
		},
		// Or-disjunct keeps conjuncts out of the join keys.
		func() string {
			return fmt.Sprintf(`retrieve (n.name, s.name) where n.score = s.name or s.name > %d`, score())
		},
		// Unique and sorted variants.
		func() string {
			return fmt.Sprintf(`retrieve unique (p = n.pitch) where n under s in note_in_score and s.name <= %d sort by p`, score())
		},
		func() string {
			return fmt.Sprintf(`retrieve (p = n.pitch, nm = n.name) where n.pitch < %d sort by p desc`, pitch())
		},
		func() string { return `retrieve unique (sc = n.score) sort by sc desc` },
	}

	for i := 0; i < 250; i++ {
		q := templates[i%len(templates)]()
		sres, serr := serial.Exec(q)
		pres, perr := par.Exec(q)
		nres, nerr := naive.Exec(q)
		if (serr == nil) != (perr == nil) || (serr == nil) != (nerr == nil) {
			t.Fatalf("query %q: serial err = %v, parallel err = %v, naive err = %v", q, serr, perr, nerr)
		}
		if serr != nil {
			t.Fatalf("query %q: %v", q, serr)
		}
		// Parallel must reproduce serial exactly, including row order.
		if len(sres.Rows) != len(pres.Rows) {
			t.Fatalf("query %q: serial %d rows, parallel %d rows", q, len(sres.Rows), len(pres.Rows))
		}
		for ri := range sres.Rows {
			for ci := range sres.Rows[ri] {
				if value.Compare(sres.Rows[ri][ci], pres.Rows[ri][ci]) != 0 {
					t.Fatalf("query %q: row %d differs: serial %v, parallel %v",
						q, ri, sres.Rows[ri], pres.Rows[ri])
				}
			}
		}
		// Naive agrees as a multiset (its row order is its own).
		if got, want := canonRows(pres), canonRows(nres); got != want {
			t.Fatalf("query %q: result mismatch\nparallel:\n%s\nnaive:\n%s", q, got, want)
		}
	}
}

// TestParallelExplain is the golden test for parallel plan nodes:
// partition count, worker fan-out, and est vs. actual rows per morsel
// all render (satellite: explain retrieve renders parallel plan nodes).
func TestParallelExplain(t *testing.T) {
	db, _ := newSession(t)
	buildScores(t, db, 2, 4)
	s := parSession(db, 2)
	mustExec(t, s, "range of n is NOTE\nrange of s is SCORE")

	got := planLines(t, s, `explain retrieve (n.name, s.name) where n under s in note_in_score`)
	want := []string{
		`Retrieve (rows=8) (time=X)`,
		`  Filter: (n under s in note_in_score) (in=8, out=8)`,
		`    OrderOps: 8 evals (time=X)`,
		`    Parallel (workers=2, morsels=2)`,
		`      morsel 0: est=1 rows=4`,
		`      morsel 1: est=1 rows=4`,
		`      OrderProbe (n under s in note_in_score) (est=8, probes=2, hits=8)`,
		`        Scan s on SCORE (est=2, scanned=2, kept=2) (time=X)`,
		`        Scan n on NOTE (est=8, scanned=8, kept=8) (time=X)`,
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("plan:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}

	// An index range scan over the threshold splits into sub-ranges.
	got = planLines(t, s, `explain retrieve (n.name) where n.pitch >= 36`)
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "IndexScan n on NOTE") {
		t.Fatalf("no index scan in plan:\n%s", joined)
	}
	if !strings.Contains(joined, "Parallel: ") || !strings.Contains(joined, "sub-ranges") {
		t.Fatalf("no parallel sub-range line in plan:\n%s", joined)
	}
	if !strings.Contains(joined, "scanned=8, kept=8") {
		t.Fatalf("parallel index scan lost rows:\n%s", joined)
	}
}

// TestParallelWriteStatementsStaySerial pins the gate: writers hold
// two-phase locks, not snapshots, so replace/delete never fan out even
// on a parallel session.
func TestParallelWriteStatementsStaySerial(t *testing.T) {
	db, _ := newSession(t)
	buildScores(t, db, 2, 10)
	s := parSession(db, 4)
	mustExec(t, s, "range of n is NOTE")
	before := db.Store().Obs().Counter("quel.par.queries").Value()
	if res := mustExec(t, s, `replace n (pitch = n.pitch + 1) where n.pitch < 50`); res.Affected == 0 {
		t.Fatal("replace affected nothing")
	}
	if res := mustExec(t, s, `delete n where n.name >= 18`); res.Affected != 2 {
		t.Fatalf("delete affected %d, want 2", res.Affected)
	}
	if after := db.Store().Obs().Counter("quel.par.queries").Value(); after != before {
		t.Fatalf("write statements took the parallel path (%d -> %d)", before, after)
	}
}
