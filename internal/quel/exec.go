package quel

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/value"
)

// Result is the output of a retrieve: labelled columns and result rows.
type Result struct {
	Columns []string
	Rows    []value.Tuple
	// Affected counts modified entities for append/replace/delete.
	Affected int
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("(%d affected)", r.Affected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		b.WriteByte('|')
		for i, s := range row {
			fmt.Fprintf(&b, " %-*s |", widths[i], s)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	b.WriteByte('|')
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// Session holds range-variable declarations across statements, mirroring
// the QUEL workspace model.
type Session struct {
	db     *model.Database
	ranges map[string]string // var → entity type
	m      sessMetrics
	pm     planMetrics
	ps     *planStats // live stats for the statement being executed
	naive  bool       // bypass the cost-based planner (SetNaive)
	noSnap bool       // route read-only statements through locks (SetSnapshotReads)
	// sortHint, cache, snap, and emit live for one statement;
	// retrieveStats and execOne install and clear them.
	sortHint *sortHint
	cache    *stmtCache
	snap     *model.Snap // pinned read snapshot; nil = locking reads
	emit     *emitter    // live row collector; non-nil only inside a retrieve
	// Parallel execution (parallel.go) and the shared plan cache
	// (plancache.go) are opt-in per session.
	parWorkers int // worker pool size; <= 1 = serial
	parMin     int // minimum driver rows before the pool engages
	plans      *PlanCache
}

// SetParallel sets the worker-pool size for read statements.  With n > 1
// and a pinned snapshot, index-scan materialization, hash-table builds,
// and the join pipeline itself fan out across n workers (parallel.go);
// n <= 1 restores the serial executor.  Write statements never
// parallelize: they run under two-phase locking, not a snapshot.
func (s *Session) SetParallel(n int) { s.parWorkers = n }

// SetParallelMinRows overrides the driver-row threshold below which
// parallel execution is skipped (the fork/merge overhead would dominate).
// Tests use small values to force the parallel path on tiny fixtures.
func (s *Session) SetParallelMinRows(n int) {
	if n > 0 {
		s.parMin = n
	}
}

// SetPlanCache attaches a shared plan cache: join orders and access-path
// choices are reused across statements (and sessions) with the same
// normalized shape, until a schema change invalidates them.
func (s *Session) SetPlanCache(c *PlanCache) { s.plans = c }

// SetNaive switches the session to the retained pre-planner executor:
// alphabetical variable order, heap scans, pure nested-loop join.
// Differential tests and benchmarks compare it against the cost-based
// planner; both paths must produce identical result sets.
func (s *Session) SetNaive(on bool) { s.naive = on }

// SetSnapshotReads toggles lock-free snapshot reads for read-only
// statements (retrieve and explain).  On by default; off routes reads
// through shared relation locks, the pre-MVCC behavior.  Both modes
// must produce identical results on a quiescent database.
func (s *Session) SetSnapshotReads(on bool) { s.noSnap = !on }

// beginStmtSnap pins a read snapshot for one read-only statement and
// returns the function that releases it.  On any failure (disabled, or
// a canceled context) the session simply falls back to locking reads:
// s.snap stays nil and every scan takes its shared lock as before.
func (s *Session) beginStmtSnap(ctx context.Context) func() {
	if s.noSnap {
		return func() {}
	}
	snap, err := s.db.BeginSnapshot(ctx)
	if err != nil {
		return func() {}
	}
	s.snap = snap
	return func() {
		s.snap = nil
		snap.Close()
	}
}

// sessMetrics holds the query layer's observability handles, resolved
// once per session from the storage registry (all nil-safe).
type sessMetrics struct {
	stmt      *obs.Histogram // quel.stmt.ns
	scanRows  *obs.Counter   // quel.scan.rows
	combos    *obs.Counter   // quel.join.combos
	opBefore  *obs.Counter   // quel.op.before
	opAfter   *obs.Counter   // quel.op.after
	opUnder   *obs.Counter   // quel.op.under
	opIncipit *obs.Counter   // quel.op.incipit
	trace     *obs.Trace
}

// NewSession returns a session over the model database.
func NewSession(db *model.Database) *Session {
	s := &Session{db: db, ranges: make(map[string]string), parMin: defaultParMinRows}
	if reg := db.Store().Obs(); reg != nil {
		s.m = sessMetrics{
			stmt:      reg.Histogram("quel.stmt.ns"),
			scanRows:  reg.Counter("quel.scan.rows"),
			combos:    reg.Counter("quel.join.combos"),
			opBefore:  reg.Counter("quel.op.before"),
			opAfter:   reg.Counter("quel.op.after"),
			opUnder:   reg.Counter("quel.op.under"),
			opIncipit: reg.Counter("quel.op.incipit"),
			trace:     reg.Trace(),
		}
		s.pm = planMetrics{
			scanFull:    reg.Counter("quel.plan.scan.full"),
			scanIndex:   reg.Counter("quel.plan.scan.index"),
			scanIncipit: reg.Counter("quel.plan.scan.incipit"),
			joinHash:    reg.Counter("quel.plan.join.hash"),
			joinLoop:    reg.Counter("quel.plan.join.loop"),
			joinProbe:   reg.Counter("quel.plan.join.probe"),
			hashProbes:  reg.Counter("quel.plan.hash.probes"),
			hashHits:    reg.Counter("quel.plan.hash.hits"),
			parQueries:  reg.Counter("quel.par.queries"),
			parMorsels:  reg.Counter("quel.par.morsels"),
		}
	}
	return s
}

// Exec parses and executes QUEL statements.  It returns the result of the
// last retrieve (or a Result with Affected set for updates); range
// statements persist in the session.
func (s *Session) Exec(src string) (*Result, error) {
	return s.ExecCtx(context.Background(), src)
}

// ExecCtx is Exec under a context: cancellation aborts lock waits and
// long joins between statements with an error satisfying
// errors.Is(err, txn.ErrCanceled).
func (s *Session) ExecCtx(ctx context.Context, src string) (*Result, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		start := time.Now()
		r, err := s.execOne(ctx, st)
		s.m.stmt.ObserveSince(start)
		s.m.trace.Emit("quel.stmt", stmtKind(st), start, time.Since(start))
		if err != nil {
			return nil, err
		}
		if r != nil {
			last = r
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// stmtKind names a statement for trace events.
func stmtKind(st Stmt) string {
	switch st.(type) {
	case RangeStmt:
		return "range"
	case Retrieve:
		return "retrieve"
	case Append:
		return "append"
	case Replace:
		return "replace"
	case Delete:
		return "delete"
	case Explain:
		return "explain"
	}
	return "?"
}

func (s *Session) execOne(ctx context.Context, st Stmt) (*Result, error) {
	s.cache = newStmtCache()
	defer func() { s.cache = nil }()
	switch q := st.(type) {
	case RangeStmt:
		if _, ok := s.db.EntityType(q.EntityType); !ok {
			return nil, fmt.Errorf("quel: range: %w: %s", model.ErrNoEntityType, q.EntityType)
		}
		for _, v := range q.Vars {
			s.ranges[v] = q.EntityType
		}
		return nil, nil
	case Retrieve:
		// Read-only statements run against a pinned snapshot with zero
		// lock acquisition; writers keep the 2PL path below.
		defer s.beginStmtSnap(ctx)()
		return s.retrieve(ctx, q)
	case Append:
		return s.appendStmt(ctx, q)
	case Replace:
		return s.replace(ctx, q)
	case Delete:
		return s.delete(ctx, q)
	case Explain:
		defer s.beginStmtSnap(ctx)()
		return s.explain(ctx, q)
	}
	return nil, fmt.Errorf("quel: unknown statement %T", st)
}

// binding associates a range variable with a concrete instance: an
// entity (ref != 0) or a relationship tuple (ref == 0, no identity).
type binding struct {
	ref    value.Ref
	attrs  value.Tuple
	fields []value.Field
	typ    string
}

type env map[string]binding

// varInfo describes what a range variable ranges over.
type varInfo struct {
	typ    string
	isRel  bool // relationship rather than entity
	fields []value.Field
}

// varInfo resolves a range variable, applying the implicit-declaration
// rule (a variable named like an entity or relationship type ranges over
// that type, footnote 6 of the paper).
func (s *Session) varInfo(v string) (varInfo, error) {
	name := v
	if t, ok := s.ranges[v]; ok {
		name = t
	}
	if et, ok := s.db.EntityType(name); ok {
		return varInfo{typ: name, fields: et.Attrs}, nil
	}
	if rt, ok := s.db.RelationshipType(name); ok {
		return varInfo{typ: name, isRel: true, fields: rt.Fields()}, nil
	}
	return varInfo{}, fmt.Errorf("quel: undeclared range variable %q (and no entity or relationship type of that name)", v)
}

// scanVar iterates the instances the variable ranges over.
func (s *Session) scanVar(info varInfo, fn func(b binding) bool) error {
	return s.scanVarCtx(context.Background(), info, fn)
}

// scanVarCtx is scanVar under a context.  With a statement snapshot
// pinned it reads version chains lock-free; otherwise it takes shared
// locks through a storage transaction.
func (s *Session) scanVarCtx(ctx context.Context, info varInfo, fn func(b binding) bool) error {
	if snap := s.snap; snap != nil {
		if info.isRel {
			return snap.RelationshipTuples(info.typ, func(t value.Tuple) bool {
				return fn(binding{attrs: t, fields: info.fields, typ: info.typ})
			})
		}
		return snap.Instances(info.typ, func(ref value.Ref, attrs value.Tuple) bool {
			return fn(binding{ref: ref, attrs: attrs, fields: info.fields, typ: info.typ})
		})
	}
	if info.isRel {
		return s.db.RelationshipTuplesCtx(ctx, info.typ, func(t value.Tuple) bool {
			return fn(binding{attrs: t, fields: info.fields, typ: info.typ})
		})
	}
	return s.db.InstancesCtx(ctx, info.typ, func(ref value.Ref, attrs value.Tuple) bool {
		return fn(binding{ref: ref, attrs: attrs, fields: info.fields, typ: info.typ})
	})
}

// estimate returns the planner's cardinality estimate for a variable:
// the relation's current row count, read without scanning.
func (s *Session) estimate(info varInfo) int {
	if info.isRel {
		return s.db.RelationshipCount(info.typ)
	}
	return s.db.Count(info.typ)
}

// fieldIndex finds a field by name, case-insensitively.
func fieldIndex(fields []value.Field, name string) (int, bool) {
	for i, f := range fields {
		if strings.EqualFold(f.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// collectVars gathers the range variables mentioned by an expression.
func collectVars(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case AttrRef:
		out[x.Var] = true
	case VarRef:
		out[x.Var] = true
	case Binary:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case Unary:
		collectVars(x.X, out)
	case IsOp:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case OrderOp:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case IncipitOp:
		collectVars(x.L, out)
		collectVars(x.R, out)
	case Agg:
		// Aggregates range independently; their variable is not a join
		// variable of the outer query.
	}
	_ = e
}

// sarg is a pushed-down single-variable predicate used to filter a range
// variable's instances during the scan (a rudimentary optimizer: it keeps
// the nested-loop join from materializing obviously-excluded bindings).
type sarg struct {
	attr string
	op   string
	v    value.Value
}

// extractSargs pulls var.attr OP literal conjuncts out of the
// qualification, keyed by variable.
func extractSargs(e Expr, out map[string][]sarg) {
	switch x := e.(type) {
	case Binary:
		if x.Op == "and" {
			extractSargs(x.L, out)
			extractSargs(x.R, out)
			return
		}
		if relOps[x.Op] {
			if ar, ok := x.L.(AttrRef); ok {
				if lit, ok := x.R.(Lit); ok {
					out[ar.Var] = append(out[ar.Var], sarg{attr: ar.Attr, op: x.Op, v: lit.V})
				}
			}
			if ar, ok := x.R.(AttrRef); ok {
				if lit, ok := x.L.(Lit); ok {
					out[ar.Var] = append(out[ar.Var], sarg{attr: ar.Attr, op: flip(x.Op), v: lit.V})
				}
			}
		}
	}
}

// extractIncipits pulls `var incipit "pattern"` conjuncts out of the
// qualification, keyed by variable.  Like extractSargs, only top-level
// `and` arms qualify; prepared statements substitute $n placeholders
// with literals before planning, so bound patterns are covered too.
// The predicate always stays in the residual qualification — the gram
// probe yields a candidate superset that the Match callback re-checks.
func extractIncipits(e Expr, out map[string]string) {
	switch x := e.(type) {
	case Binary:
		if x.Op == "and" {
			extractIncipits(x.L, out)
			extractIncipits(x.R, out)
		}
	case IncipitOp:
		vr, ok := x.L.(VarRef)
		if !ok {
			return
		}
		lit, ok := x.R.(Lit)
		if !ok || lit.V.Kind() != value.KindString {
			return
		}
		if _, dup := out[vr.Var]; !dup {
			out[vr.Var] = lit.V.AsString()
		}
	}
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

func sargMatches(ss []sarg, fields []value.Field, attrs value.Tuple) bool {
	for _, sg := range ss {
		i, ok := fieldIndex(fields, sg.attr)
		if !ok {
			return true // let full evaluation report the error
		}
		c := value.Compare(attrs[i], sg.v)
		switch sg.op {
		case "=":
			if c != 0 {
				return false
			}
		case "!=":
			if c == 0 {
				return false
			}
		case "<":
			if c >= 0 {
				return false
			}
		case "<=":
			if c > 0 {
				return false
			}
		case ">":
			if c <= 0 {
				return false
			}
		case ">=":
			if c < 0 {
				return false
			}
		}
	}
	return true
}

// bindAll materializes the instances of each variable and invokes fn
// for every surviving combination.  The default path plans access and
// join order (plan.go); SetNaive selects the retained nested-loop
// executor.  Both record per-variable scan statistics and combination
// counts when the session's planStats is live, check the context
// periodically so a canceled statement stops promptly, and stop
// scanning as soon as any variable has no bindings (zero combinations
// regardless of the qualification's shape).
func (s *Session) bindAll(ctx context.Context, vars []string, where Expr, fn func(env) error) error {
	infos := make(map[string]varInfo, len(vars))
	for _, v := range vars {
		info, err := s.varInfo(v)
		if err != nil {
			return err
		}
		infos[v] = info
	}
	sargs := map[string][]sarg{}
	if where != nil {
		extractSargs(where, sargs)
	}
	if s.naive {
		return s.bindAllNaive(ctx, vars, infos, sargs, fn)
	}
	return s.bindAllPlanned(ctx, vars, infos, sargs, where, fn)
}

// bindAllNaive is the pre-planner executor: heap scans in alphabetical
// variable order, sarg filtering, nested-loop cross product.  Bindings
// alias the stored tuples; the storage layer never mutates tuples in
// place, so no copies are needed.
func (s *Session) bindAllNaive(ctx context.Context, vars []string, infos map[string]varInfo, sargs map[string][]sarg, fn func(env) error) error {
	lists := make([][]binding, len(vars))
	empty := false
	for i, v := range vars {
		info := infos[v]
		st := scanStats{Var: v, Rel: info.typ, Est: s.estimate(info)}
		for _, sg := range sargs[v] {
			st.Sargs = append(st.Sargs, fmt.Sprintf("%s.%s %s %s", v, sg.attr, sg.op, sg.v))
		}
		if empty {
			st.Skipped = true
			if s.ps != nil {
				s.ps.Scans = append(s.ps.Scans, st)
			}
			continue
		}
		start := time.Now()
		var list []binding
		err := s.scanVarCtx(ctx, info, func(b binding) bool {
			st.Scanned++
			if !sargMatches(sargs[v], b.fields, b.attrs) {
				return true
			}
			st.Kept++
			list = append(list, b)
			return true
		})
		st.Dur = time.Since(start)
		s.m.scanRows.Add(uint64(st.Scanned))
		if s.ps != nil {
			s.ps.Scans = append(s.ps.Scans, st)
		}
		if err != nil {
			return err
		}
		lists[i] = list
		if len(list) == 0 {
			empty = true
		}
	}
	if empty {
		if s.ps != nil {
			s.ps.Combos = 0
		}
		return nil
	}
	e := make(env, len(vars))
	combos := 0
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			combos++
			if combos&1023 == 0 && ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("%w: %w", txn.ErrCanceled, err)
				}
			}
			return fn(e)
		}
		for _, b := range lists[i] {
			e[vars[i]] = b
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0)
	s.m.combos.Add(uint64(combos))
	if s.ps != nil {
		s.ps.Combos = combos
	}
	return err
}

// emitter evaluates the qualification and target list for one join
// combination and collects the resulting row.  It is the unit the
// parallel executor clones per worker: each worker gets its own emitter
// over its own session clone, so the only shared state on the emit path
// is the snapshot (safe for concurrent reads) and the atomic counters.
// Unique dedup deliberately does NOT happen here — retrieveStats applies
// it after the (merge-ordered) rows are assembled.
type emitter struct {
	s    *Session
	q    Retrieve
	ps   *planStats
	rows []value.Tuple
}

func (em *emitter) emit(e env) error {
	if em.q.Where != nil {
		em.ps.FilterIn++
		ok, err := em.s.evalBool(em.q.Where, e)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		em.ps.FilterOut++
	}
	var row value.Tuple
	for _, t := range em.q.Targets {
		if t.All {
			row = append(row, e[t.Var].attrs...)
			continue
		}
		v, err := em.s.eval(t.Expr, e)
		if err != nil {
			return err
		}
		row = append(row, v)
	}
	em.rows = append(em.rows, row)
	return nil
}

func (s *Session) retrieve(ctx context.Context, q Retrieve) (*Result, error) {
	res, _, err := s.retrieveStats(ctx, q)
	return res, err
}

// retrieveStats executes a retrieve and returns the plan statistics
// gathered along the way (used by explain).
func (s *Session) retrieveStats(ctx context.Context, q Retrieve) (*Result, *planStats, error) {
	ps := &planStats{}
	s.ps = ps
	defer func() { s.ps = nil }()
	start := time.Now()

	varSet := map[string]bool{}
	for _, t := range q.Targets {
		if t.All {
			varSet[t.Var] = true
		} else {
			collectVars(t.Expr, varSet)
		}
	}
	if q.Where != nil {
		collectVars(q.Where, varSet)
	}
	vars := sortedKeys(varSet)
	s.sortHint = sortHintFor(q, vars)
	defer func() { s.sortHint = nil }()

	// Resolve columns.
	res := &Result{}
	for _, t := range q.Targets {
		if t.All {
			info, err := s.varInfo(t.Var)
			if err != nil {
				return nil, nil, err
			}
			for _, a := range info.fields {
				label := a.Name
				if t.Label != "" {
					label = t.Label + "_" + a.Name
				}
				res.Columns = append(res.Columns, label)
			}
			continue
		}
		res.Columns = append(res.Columns, t.Label)
	}

	em := &emitter{s: s, q: q, ps: ps}
	s.emit = em
	err := s.bindAll(ctx, vars, q.Where, em.emit)
	s.emit = nil
	if err != nil {
		return nil, nil, err
	}
	rows := em.rows
	if q.Unique {
		// Dedup runs after the join (and after any parallel merge, which
		// reproduces the serial emit order), so first-occurrence-wins is
		// identical in every execution mode.
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, row := range rows {
			key := string(value.AppendKeyTuple(nil, row))
			if seen[key] {
				ps.UniqueDropped++
				continue
			}
			seen[key] = true
			kept = append(kept, row)
		}
		rows = kept
	}
	res.Rows = rows
	if len(q.SortBy) > 0 && !ps.SortElided {
		sortStart := time.Now()
		if err := sortRows(res, q.SortBy); err != nil {
			return nil, nil, err
		}
		ps.SortDur = time.Since(sortStart)
	}
	ps.Emitted = len(res.Rows)
	ps.Total = time.Since(start)
	return res, ps, nil
}

// sortHintFor detects a retrieve whose sort could be satisfied by index
// order: one range variable, one sort key, and the sorted column is a
// plain attribute of that variable.  Rows then leave the index already
// in output order (ties fall in row-id order, which the stable sort
// would preserve anyway), so sortRows can be skipped.  The first target
// matching the label decides, mirroring sortRows' column resolution.
func sortHintFor(q Retrieve, vars []string) *sortHint {
	if len(q.SortBy) != 1 || len(vars) != 1 {
		return nil
	}
	for _, t := range q.Targets {
		if t.All {
			return nil
		}
	}
	k := q.SortBy[0]
	for _, t := range q.Targets {
		if !strings.EqualFold(t.Label, k.Label) {
			continue
		}
		ar, ok := t.Expr.(AttrRef)
		if !ok || ar.Var != vars[0] {
			return nil
		}
		return &sortHint{v: ar.Var, attr: ar.Attr, desc: k.Desc}
	}
	return nil
}

// sortRows orders the result by the named columns (the sort by clause).
func sortRows(res *Result, keys []SortKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		found := -1
		for ci, col := range res.Columns {
			if strings.EqualFold(col, k.Label) {
				found = ci
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("quel: sort by: no result column %q", k.Label)
		}
		idx[i] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, ci := range idx {
			c := value.Compare(res.Rows[a][ci], res.Rows[b][ci])
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

func (s *Session) appendStmt(ctx context.Context, q Append) (*Result, error) {
	if _, ok := s.db.EntityType(q.EntityType); !ok {
		return nil, fmt.Errorf("quel: append: %w: %s", model.ErrNoEntityType, q.EntityType)
	}
	attrs := model.Attrs{}
	for _, a := range q.Assigns {
		v, err := s.eval(a.Expr, nil)
		if err != nil {
			return nil, err
		}
		attrs[a.Attr] = v
	}
	if _, err := s.db.NewEntityCtx(ctx, q.EntityType, attrs); err != nil {
		return nil, err
	}
	return &Result{Affected: 1}, nil
}

func (s *Session) replace(ctx context.Context, q Replace) (*Result, error) {
	varSet := map[string]bool{q.Var: true}
	if q.Where != nil {
		collectVars(q.Where, varSet)
	}
	for _, a := range q.Assigns {
		collectVars(a.Expr, varSet)
	}
	vars := sortedKeys(varSet)
	type update struct {
		ref   value.Ref
		attrs model.Attrs
	}
	var updates []update
	seen := map[value.Ref]bool{}
	err := s.bindAll(ctx, vars, q.Where, func(e env) error {
		if q.Where != nil {
			ok, err := s.evalBool(q.Where, e)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		ref := e[q.Var].ref
		if seen[ref] {
			return nil
		}
		seen[ref] = true
		attrs := model.Attrs{}
		for _, a := range q.Assigns {
			v, err := s.eval(a.Expr, e)
			if err != nil {
				return err
			}
			attrs[a.Attr] = v
		}
		updates = append(updates, update{ref: ref, attrs: attrs})
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, u := range updates {
		if err := s.db.SetAttrsCtx(ctx, u.ref, u.attrs); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(updates)}, nil
}

func (s *Session) delete(ctx context.Context, q Delete) (*Result, error) {
	varSet := map[string]bool{q.Var: true}
	if q.Where != nil {
		collectVars(q.Where, varSet)
	}
	vars := sortedKeys(varSet)
	var doomed []value.Ref
	seen := map[value.Ref]bool{}
	err := s.bindAll(ctx, vars, q.Where, func(e env) error {
		if q.Where != nil {
			ok, err := s.evalBool(q.Where, e)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		ref := e[q.Var].ref
		if !seen[ref] {
			seen[ref] = true
			doomed = append(doomed, ref)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, ref := range doomed {
		if err := s.db.DeleteEntityCtx(ctx, ref); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(doomed)}, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
