package quel

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ddl"
	"repro/internal/value"
)

func setupWorks(t testing.TB, s *Session) {
	t.Helper()
	if _, err := ddl.Exec(s.db, `
define entity WORK (title = string, opus = integer)
`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `range of w is WORK`)
	mustExec(t, s, `append to WORK (title = "Sonata", opus = 1)`)
	mustExec(t, s, `append to WORK (title = "Partita", opus = 2)`)
	mustExec(t, s, `append to WORK (title = "Toccata", opus = 3)`)
}

// TestParsePlaceholders checks $n placeholders parse into Param nodes
// and the count of distinct positions is tracked.
func TestParsePlaceholders(t *testing.T) {
	stmts, n, err := ParseParams(`retrieve (w.title) where w.opus = $1 or w.opus = $2`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("nParams = %d, want 2", n)
	}
	if len(stmts) != 1 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	// Reusing a placeholder does not raise the count.
	_, n, err = ParseParams(`retrieve (w.title) where w.opus = $1 and w.opus < $1 + 5`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("nParams with reuse = %d, want 1", n)
	}
	// $0 is invalid.
	if _, _, err := ParseParams(`retrieve (w.title) where w.opus = $0`); err == nil {
		t.Fatal("$0 accepted")
	}
	// A bare $ with no index is invalid.
	if _, _, err := ParseParams(`retrieve (w.title) where w.opus = $`); err == nil {
		t.Fatal("bare $ accepted")
	}
}

// TestPreparedBindExec prepares once and executes with several
// bindings, including in update position.
func TestPreparedBindExec(t *testing.T) {
	db, s := newSession(t)
	_ = db
	setupWorks(t, s)

	p, err := Prepare(`retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams() != 1 {
		t.Fatalf("NumParams = %d", p.NumParams())
	}
	for opus, want := range map[int64]string{1: "Sonata", 2: "Partita", 3: "Toccata"} {
		res, err := s.ExecPreparedCtx(context.Background(), p, value.Int(opus))
		if err != nil {
			t.Fatalf("opus %d: %v", opus, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsString() != want {
			t.Fatalf("opus %d: rows %v, want [%q]", opus, res.Rows, want)
		}
	}

	// Placeholder in an update's assignment and qualification.
	up, err := Prepare(`replace w (opus = $1) where w.title = $2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecPreparedCtx(context.Background(), up, value.Int(30), value.Str("Toccata"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check, err := s.Exec(`retrieve (w.opus) where w.title = "Toccata"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(check.Rows) != 1 || check.Rows[0][0].AsInt() != 30 {
		t.Fatalf("after replace: %v", check.Rows)
	}
}

// TestPreparedArity rejects wrong argument counts with ErrParam.
func TestPreparedArity(t *testing.T) {
	_, s := newSession(t)
	setupWorks(t, s)
	p, err := Prepare(`retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPreparedCtx(context.Background(), p); !errors.Is(err, ErrParam) {
		t.Fatalf("no args: %v", err)
	}
	if _, err := s.ExecPreparedCtx(context.Background(), p, value.Int(1), value.Int(2)); !errors.Is(err, ErrParam) {
		t.Fatalf("extra args: %v", err)
	}
}

// TestPreparedSharedAcrossSessions binds the same Prepared concurrently
// from two sessions with different arguments: binding must copy, never
// mutate, the shared tree.
func TestPreparedSharedAcrossSessions(t *testing.T) {
	db, s1 := newSession(t)
	setupWorks(t, s1)
	s2 := NewSession(db)
	mustExec(t, s2, `range of w is WORK`)

	p, err := Prepare(`retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	run := func(s *Session, opus int64, want string) {
		for i := 0; i < 200; i++ {
			res, err := s.ExecPreparedCtx(context.Background(), p, value.Int(opus))
			if err != nil {
				done <- err
				return
			}
			if len(res.Rows) != 1 || res.Rows[0][0].AsString() != want {
				done <- errors.New("cross-binding contamination: " + res.String())
				return
			}
		}
		done <- nil
	}
	go run(s1, 1, "Sonata")
	go run(s2, 2, "Partita")
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnboundPlaceholderFails: executing a placeholder through the
// plain path (no binding) reports ErrParam, not garbage.
func TestUnboundPlaceholderFails(t *testing.T) {
	_, s := newSession(t)
	setupWorks(t, s)
	_, err := s.Exec(`retrieve (w.title) where w.opus = $1`)
	if !errors.Is(err, ErrParam) {
		t.Fatalf("unbound placeholder: %v", err)
	}
}

// TestPreparedUsesIndex: a bound placeholder reaches sarg extraction
// like an inline literal, so an indexed attribute is served by the
// index path.
func TestPreparedUsesIndex(t *testing.T) {
	db, s := newSession(t)
	_ = db
	setupWorks(t, s)
	if _, err := ddl.Exec(db, `define index on WORK (opus)`); err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(`retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecPreparedCtx(context.Background(), p, value.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "Partita" {
		t.Fatalf("rows: %v", res.Rows)
	}
}
