package quel

import (
	"testing"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/value"
)

// TestSargOperators exercises every pushed-down comparison shape,
// including flipped literal-on-left forms.
func TestSargOperators(t *testing.T) {
	db, s := newSession(t)
	if _, err := ddl.Exec(db, `define entity N (v = integer)`); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		db.NewEntity("N", model.Attrs{"v": value.Int(i)})
	}
	mustExec(t, s, "range of n is N")
	cases := []struct {
		q    string
		want int
	}{
		{`retrieve (n.v) where n.v = 5`, 1},
		{`retrieve (n.v) where n.v != 5`, 9},
		{`retrieve (n.v) where n.v < 3`, 3},
		{`retrieve (n.v) where n.v <= 3`, 4},
		{`retrieve (n.v) where n.v > 7`, 2},
		{`retrieve (n.v) where n.v >= 7`, 3},
		// Literal on the left: the sarg flips.
		{`retrieve (n.v) where 5 = n.v`, 1},
		{`retrieve (n.v) where 3 > n.v`, 3},
		{`retrieve (n.v) where 3 >= n.v`, 4},
		{`retrieve (n.v) where 7 < n.v`, 2},
		{`retrieve (n.v) where 7 <= n.v`, 3},
		{`retrieve (n.v) where 5 != n.v`, 9},
		// Conjunctions push both sides.
		{`retrieve (n.v) where n.v >= 2 and n.v < 5`, 3},
		// Disjunctions cannot push; still correct.
		{`retrieve (n.v) where n.v = 1 or n.v = 8`, 2},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.q)
		if len(res.Rows) != c.want {
			t.Errorf("%s: %d rows want %d", c.q, len(res.Rows), c.want)
		}
	}
}

func TestDefaultLabels(t *testing.T) {
	stmts, err := Parse(`retrieve (n.pitch, count(n.all), sum(n.pitch), n.pitch + 1)`)
	if err != nil {
		t.Fatal(err)
	}
	r := stmts[0].(Retrieve)
	labels := []string{r.Targets[0].Label, r.Targets[1].Label, r.Targets[2].Label, r.Targets[3].Label}
	want := []string{"pitch", "count", "sum_pitch", "expr"}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label %d: %q want %q", i, labels[i], want[i])
		}
	}
}

func TestTruthiness(t *testing.T) {
	db, s := newSession(t)
	if _, err := ddl.Exec(db, `define entity N (v = integer, name = string)`); err != nil {
		t.Fatal(err)
	}
	db.NewEntity("N", model.Attrs{"v": value.Int(1), "name": value.Str("x")})
	mustExec(t, s, "range of n is N")
	// An integer where-clause is truthy when non-zero.
	res := mustExec(t, s, `retrieve (n.v) where n.v`)
	if len(res.Rows) != 1 {
		t.Fatal("int truthiness")
	}
	res = mustExec(t, s, `retrieve (n.v) where n.v - 1`)
	if len(res.Rows) != 0 {
		t.Fatal("zero falsy")
	}
	// Strings are truthy (non-null).
	res = mustExec(t, s, `retrieve (n.v) where n.name`)
	if len(res.Rows) != 1 {
		t.Fatal("string truthiness")
	}
	// true/false/null literals.
	res = mustExec(t, s, `retrieve (n.v) where true`)
	if len(res.Rows) != 1 {
		t.Fatal("true literal")
	}
	res = mustExec(t, s, `retrieve (n.v) where false or null`)
	if len(res.Rows) != 0 {
		t.Fatal("false/null literals")
	}
	// not on non-boolean.
	res = mustExec(t, s, `retrieve (n.v) where not 0`)
	if len(res.Rows) != 1 {
		t.Fatal("not 0")
	}
}

func TestNegativeNumbersAndUnaryErrors(t *testing.T) {
	db, s := newSession(t)
	if _, err := ddl.Exec(db, `define entity N (v = integer)`); err != nil {
		t.Fatal(err)
	}
	db.NewEntity("N", model.Attrs{"v": value.Int(-3)})
	mustExec(t, s, "range of n is N")
	res := mustExec(t, s, `retrieve (x = -n.v, y = -1.5) where n.v = -3`)
	if res.Rows[0][0].AsInt() != 3 || res.Rows[0][1].AsFloat() != -1.5 {
		t.Fatalf("negation: %v", res.Rows)
	}
	if _, err := s.Exec(`retrieve (x = -"str")`); err == nil {
		t.Fatal("negating string accepted")
	}
}

func TestSortBy(t *testing.T) {
	db, s := newSession(t)
	if _, err := ddl.Exec(db, `define entity W (title = string, year = integer)`); err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		title string
		year  int64
	}{{"c", 1721}, {"a", 1709}, {"b", 1709}, {"d", 1750}}
	for _, r := range rows {
		db.NewEntity("W", model.Attrs{"title": value.Str(r.title), "year": value.Int(r.year)})
	}
	mustExec(t, s, "range of w is W")
	res := mustExec(t, s, `retrieve (w.title, w.year) sort by year, title`)
	gotTitles := []string{}
	for _, r := range res.Rows {
		gotTitles = append(gotTitles, r[0].AsString())
	}
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if gotTitles[i] != want[i] {
			t.Fatalf("sort: %v", gotTitles)
		}
	}
	// Descending.
	res = mustExec(t, s, `retrieve (w.title) sort by title desc`)
	if res.Rows[0][0].AsString() != "d" || res.Rows[3][0].AsString() != "a" {
		t.Fatalf("desc sort: %v", res.Rows)
	}
	// asc keyword accepted; missing label errors.
	mustExec(t, s, `retrieve (w.title) sort by title asc`)
	if _, err := s.Exec(`retrieve (w.title) sort by nope`); err == nil {
		t.Fatal("bad sort label accepted")
	}
	if _, err := s.Exec(`retrieve (w.title) sort title`); err == nil {
		t.Fatal("missing by accepted")
	}
	// Sorting after where, with a labelled aggregate column untouched.
	res = mustExec(t, s, `retrieve (w.title, w.year) where w.year >= 1709 sort by year desc, title asc`)
	if res.Rows[0][0].AsString() != "d" {
		t.Fatalf("combined: %v", res.Rows)
	}
}
