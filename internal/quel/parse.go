package quel

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/lex"
	"repro/internal/value"
)

// ErrParse is the sentinel wrapped by every syntax error this parser
// reports, so clients can classify failures with errors.Is without
// string matching.
var ErrParse = errors.New("quel: parse error")

type parser struct {
	lx      *lex.Lexer
	tok     lex.Token
	nParams int // highest $n placeholder index seen
}

func (p *parser) next() { p.tok = p.lx.Next() }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrParse, p.tok.Line, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(punct string) error {
	if !p.tok.Is(punct) {
		return p.errf("expected %q, found %s", punct, p.tok)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.Kind != lex.Ident {
		return "", p.errf("expected identifier, found %s", p.tok)
	}
	s := p.tok.Text
	p.next()
	return s, nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.tok.IsKeyword(kw) {
		return p.errf("expected %q, found %s", kw, p.tok)
	}
	p.next()
	return nil
}

// aggFns are the recognized aggregate function names.
var aggFns = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true, "any": true,
}

// Parse parses a sequence of QUEL statements.
func Parse(src string) ([]Stmt, error) {
	stmts, _, err := ParseParams(src)
	return stmts, err
}

// ParseParams parses a sequence of QUEL statements and additionally
// returns the number of $n placeholders the statements reference (the
// highest index; $2 without $1 still requires two arguments at bind
// time).
func ParseParams(src string) ([]Stmt, int, error) {
	p := &parser{lx: lex.New(src)}
	p.next()
	var stmts []Stmt
	for p.tok.Kind != lex.EOF {
		s, err := p.statement()
		if err != nil {
			return nil, 0, err
		}
		stmts = append(stmts, s)
		if err := p.lx.Err(); err != nil {
			return nil, 0, fmt.Errorf("%w: %w", ErrParse, err)
		}
	}
	if err := p.lx.Err(); err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrParse, err)
	}
	return stmts, p.nParams, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.tok.IsKeyword("explain"):
		p.next()
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(Explain); nested {
			return nil, p.errf("explain cannot be nested")
		}
		return Explain{Stmt: inner}, nil
	case p.tok.IsKeyword("range"):
		p.next()
		return p.rangeStmt()
	case p.tok.IsKeyword("retrieve"):
		p.next()
		return p.retrieve()
	case p.tok.IsKeyword("append"):
		p.next()
		return p.appendStmt()
	case p.tok.IsKeyword("replace"):
		p.next()
		return p.replaceStmt()
	case p.tok.IsKeyword("delete"):
		p.next()
		return p.deleteStmt()
	default:
		return nil, p.errf("expected a QUEL statement (range, retrieve, append, replace, delete), found %s", p.tok)
	}
}

// rangeStmt parses: range of v1 {, v2} is ENTITY
func (p *parser) rangeStmt() (Stmt, error) {
	if err := p.expectKeyword("of"); err != nil {
		return nil, err
	}
	var vars []string
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vars = append(vars, v)
		if p.tok.Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("is"); err != nil {
		return nil, err
	}
	et, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return RangeStmt{Vars: vars, EntityType: et}, nil
}

func (p *parser) retrieve() (Stmt, error) {
	r := Retrieve{}
	if p.tok.IsKeyword("unique") {
		r.Unique = true
		p.next()
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		t, err := p.target()
		if err != nil {
			return nil, err
		}
		r.Targets = append(r.Targets, t)
		if p.tok.Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.tok.IsKeyword("where") {
		p.next()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		r.Where = w
	}
	if p.tok.IsKeyword("sort") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			label, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := SortKey{Label: label}
			if p.tok.IsKeyword("desc") {
				key.Desc = true
				p.next()
			} else if p.tok.IsKeyword("asc") {
				p.next()
			}
			r.SortBy = append(r.SortBy, key)
			if p.tok.Is(",") {
				p.next()
				continue
			}
			break
		}
	}
	return r, nil
}

// target parses one projection: [label =] expr, or var.all.
func (p *parser) target() (Target, error) {
	var label string
	// Lookahead for "label =" — an identifier followed by '=' that is
	// not itself followed by another '=' (to keep comparisons intact is
	// unnecessary here: '=' inside a target begins a labelled item, as
	// targets are projections, not qualifications).
	if p.tok.Kind == lex.Ident {
		save := *p.lx
		saveTok := p.tok
		name := p.tok.Text
		p.next()
		if p.tok.Is("=") {
			label = name
			p.next()
		} else {
			*p.lx = save
			p.tok = saveTok
		}
	}
	// var.all?
	if p.tok.Kind == lex.Ident {
		save := *p.lx
		saveTok := p.tok
		v := p.tok.Text
		p.next()
		if p.tok.Is(".") {
			p.next()
			if p.tok.IsKeyword("all") {
				p.next()
				return Target{Label: label, All: true, Var: v}, nil
			}
		}
		*p.lx = save
		p.tok = saveTok
	}
	e, err := p.expr()
	if err != nil {
		return Target{}, err
	}
	if label == "" {
		label = defaultLabel(e)
	}
	return Target{Label: label, Expr: e}, nil
}

func defaultLabel(e Expr) string {
	switch x := e.(type) {
	case AttrRef:
		return x.Attr
	case Agg:
		if x.Attr == "" {
			return x.Fn
		}
		return x.Fn + "_" + x.Attr
	default:
		return "expr"
	}
}

func (p *parser) appendStmt() (Stmt, error) {
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	et, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	assigns, err := p.assignList()
	if err != nil {
		return nil, err
	}
	return Append{EntityType: et, Assigns: assigns}, nil
}

func (p *parser) replaceStmt() (Stmt, error) {
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	assigns, err := p.assignList()
	if err != nil {
		return nil, err
	}
	r := Replace{Var: v, Assigns: assigns}
	if p.tok.IsKeyword("where") {
		p.next()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		r.Where = w
	}
	return r, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := Delete{Var: v}
	if p.tok.IsKeyword("where") {
		p.next()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) assignList() ([]Assign, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var assigns []Assign
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assign{Attr: attr, Expr: e})
		if p.tok.Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return assigns, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr     := orExpr
//	orExpr   := andExpr { "or" andExpr }
//	andExpr  := notExpr { "and" notExpr }
//	notExpr  := "not" notExpr | relExpr
//	relExpr  := addExpr [ relOp addExpr
//	          | "is" addExpr
//	          | "incipit" addExpr
//	          | ("before"|"after"|"under") addExpr [ "in" ident ] ]
//	addExpr  := mulExpr { ("+"|"-") mulExpr }
//	mulExpr  := unary { ("*"|"/") unary }
//	unary    := "-" unary | primary
//	primary  := literal | agg | var "." attr | var | "(" expr ")"
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.IsKeyword("or") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.IsKeyword("and") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.tok.IsKeyword("not") {
		p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "not", X: x}, nil
	}
	return p.relExpr()
}

var relOps = map[string]bool{"=": true, "==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.Kind == lex.Punct && relOps[p.tok.Text]:
		op := p.tok.Text
		if op == "==" {
			op = "="
		}
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	case p.tok.IsKeyword("is"):
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return IsOp{L: l, R: r}, nil
	case p.tok.IsKeyword("incipit"):
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return IncipitOp{L: l, R: r}, nil
	case p.tok.IsKeyword("before") || p.tok.IsKeyword("after") || p.tok.IsKeyword("under"):
		op := strings.ToLower(p.tok.Text)
		p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		oo := OrderOp{Op: op, L: l, R: r}
		if p.tok.IsKeyword("in") {
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			oo.Order = name
		}
		return oo, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("+") || p.tok.Is("-") {
		op := p.tok.Text
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("*") || p.tok.Is("/") {
		op := p.tok.Text
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.tok.Is("-") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.tok.Kind == lex.Int:
		v := value.Int(p.tok.IntV)
		p.next()
		return Lit{V: v}, nil
	case p.tok.Kind == lex.Float:
		v := value.Float(p.tok.FltV)
		p.next()
		return Lit{V: v}, nil
	case p.tok.Kind == lex.String:
		v := value.Str(p.tok.Text)
		p.next()
		return Lit{V: v}, nil
	case p.tok.Is("$"):
		p.next()
		if p.tok.Kind != lex.Int {
			return nil, p.errf("expected a placeholder index after $, found %s", p.tok)
		}
		idx := int(p.tok.IntV)
		if idx < 1 {
			return nil, p.errf("placeholder indices are 1-based, got $%d", idx)
		}
		p.next()
		if idx > p.nParams {
			p.nParams = idx
		}
		return Param{Idx: idx}, nil
	case p.tok.Is("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.Kind == lex.Ident:
		name := p.tok.Text
		lower := strings.ToLower(name)
		p.next()
		if aggFns[lower] && p.tok.Is("(") {
			return p.aggregate(lower)
		}
		switch lower {
		case "true":
			return Lit{V: value.Bool(true)}, nil
		case "false":
			return Lit{V: value.Bool(false)}, nil
		case "null":
			return Lit{V: value.Null}, nil
		}
		if p.tok.Is(".") {
			p.next()
			attr, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return AttrRef{Var: name, Attr: attr}, nil
		}
		return VarRef{Var: name}, nil
	default:
		return nil, p.errf("expected an expression, found %s", p.tok)
	}
}

// aggregate parses fn ( var.attr [where qual] ) or fn ( var.all [where qual] ).
func (p *parser) aggregate(fn string) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	var attr string
	if p.tok.IsKeyword("all") {
		p.next()
	} else {
		attr, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	a := Agg{Fn: fn, Var: v, Attr: attr}
	if p.tok.IsKeyword("where") {
		p.next()
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		a.Where = w
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if fn != "count" && fn != "any" && attr == "" {
		return nil, p.errf("%s requires an attribute, not .all", fn)
	}
	return a, nil
}
