package quel

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// This file is the cost-based planning layer over bindAll (§5.2: stored
// order and access paths are the relational performance lever).  Three
// optimizations, each visible in explain and in the quel.plan.* metrics:
//
//   - index range scans: a sarg on an indexed attribute becomes a
//     B-tree key range (model.InstancesRange) instead of a full scan;
//   - hash equi-joins: v1.a = v2.b (and `is`) conjuncts build a hash
//     table on the new variable's bindings and probe it, instead of
//     looping the cross product;
//   - join ordering: variables join smallest post-sarg binding list
//     first, preferring variables connected to the already-joined set
//     by an equi- or ordering conjunct.
//
// The qualification is still evaluated in full for every emitted
// combination, so the join conjuncts only prune; they never decide truth
// on their own.  The pre-planner executor is retained as bindAllNaive
// (Session.SetNaive) and differential tests assert both agree.

// planMetrics are the planner's observability handles (all nil-safe).
type planMetrics struct {
	scanFull    *obs.Counter // quel.plan.scan.full
	scanIndex   *obs.Counter // quel.plan.scan.index
	scanIncipit *obs.Counter // quel.plan.scan.incipit
	joinHash    *obs.Counter // quel.plan.join.hash
	joinLoop    *obs.Counter // quel.plan.join.loop
	joinProbe   *obs.Counter // quel.plan.join.probe
	hashProbes  *obs.Counter // quel.plan.hash.probes
	hashHits    *obs.Counter // quel.plan.hash.hits
	parQueries  *obs.Counter // quel.par.queries
	parMorsels  *obs.Counter // quel.par.morsels
}

// accessPath describes how one variable's bindings are produced: a heap
// scan, or a range of a secondary index.
type accessPath struct {
	index         string // secondary index name; empty = heap scan
	attr          string // attribute the index covers (plan-cache replay)
	lo, hi        []byte // encoded key bounds, nil = open
	rng           string // bound description for explain
	est           int    // row estimate (order-statistics count for ranges)
	reverse       bool   // descending index order (sort by ... desc)
	satisfiesSort bool   // index order doubles as the output sort order
	// incipit marks a gram-index candidate scan (IncipitScan): the
	// bounds range the companion gram type's index on `gram`, and the
	// bindings are the distinct entries posted there.  The incipit
	// predicate itself stays in the residual qualification.
	incipit bool
	gram    string // probe gram chosen from the pattern
}

// sortHint asks the planner to produce one variable's bindings in the
// order of an attribute, so a trailing sort can be skipped.
type sortHint struct {
	v    string
	attr string
	desc bool
}

// varPlan is one range variable's slice of the plan.
type varPlan struct {
	name   string
	info   varInfo
	sargs  []sarg
	access accessPath
	list   []binding
	byRef  map[value.Ref]int // entity ref → list position (order probes)
}

// joinKey selects the join-key value of one side of an equi-conjunct: an
// attribute of the variable or, with idx < 0, the entity itself.
type joinKey struct {
	v    string
	attr string
	idx  int
	kind value.Kind
}

func (k joinKey) value(b binding) value.Value {
	if k.idx < 0 {
		return value.RefVal(b.ref)
	}
	return b.attrs[k.idx]
}

func (k joinKey) String() string {
	if k.idx < 0 {
		return k.v
	}
	return k.v + "." + k.attr
}

// equiCond is a v1.a = v2.b (or `is`) conjunct usable as a hash-join key.
type equiCond struct {
	l, r joinKey
	desc string
}

// orderCond is a before/after/under conjunct between two distinct
// variables, with its ordering resolved at plan time.
type orderCond struct {
	op       string
	l, r     string
	ordering string
	desc     string
}

// extractJoinConds pulls hash-joinable and probe-able conjuncts out of
// the qualification.  Only top-level `and` arms qualify, mirroring
// extractSargs: anything under or/not must see the full evaluator.
func (s *Session) extractJoinConds(e Expr, infos map[string]varInfo, equis *[]equiCond, orders *[]orderCond) {
	switch x := e.(type) {
	case Binary:
		if x.Op == "and" {
			s.extractJoinConds(x.L, infos, equis, orders)
			s.extractJoinConds(x.R, infos, equis, orders)
			return
		}
		if x.Op != "=" {
			return
		}
		l, lok := joinKeyOf(x.L, infos)
		r, rok := joinKeyOf(x.R, infos)
		// Hashing requires the declared kinds to match exactly: the
		// order-preserving key encoding is bijective within one kind, so
		// key equality coincides with Compare == 0; across kinds (int
		// vs. float) it does not.
		if lok && rok && l.v != r.v && l.kind == r.kind {
			*equis = append(*equis, equiCond{l: l, r: r, desc: l.String() + " = " + r.String()})
		}
	case IsOp:
		l, lok := joinKeyOf(x.L, infos)
		r, rok := joinKeyOf(x.R, infos)
		if lok && rok && l.v != r.v && l.kind == value.KindRef && r.kind == value.KindRef {
			*equis = append(*equis, equiCond{l: l, r: r, desc: l.String() + " is " + r.String()})
		}
	case OrderOp:
		lv, lok := x.L.(VarRef)
		rv, rok := x.R.(VarRef)
		if !lok || !rok || lv.Var == rv.Var {
			return
		}
		li, lok := infos[lv.Var]
		ri, rok := infos[rv.Var]
		if !lok || !rok {
			return
		}
		var childType, parentType string
		switch x.Op {
		case "under":
			childType, parentType = li.typ, ri.typ
		default:
			childType = li.typ
		}
		o, err := s.db.FindOrdering(x.Order, childType, parentType)
		if err != nil {
			return // unresolvable here; full evaluation reports it
		}
		*orders = append(*orders, orderCond{op: x.Op, l: lv.Var, r: rv.Var, ordering: o.Name,
			desc: fmt.Sprintf("%s %s %s in %s", lv.Var, x.Op, rv.Var, o.Name)})
	}
}

// joinKeyOf resolves one side of an equi-conjunct to a key extractor.
func joinKeyOf(e Expr, infos map[string]varInfo) (joinKey, bool) {
	switch x := e.(type) {
	case AttrRef:
		info, ok := infos[x.Var]
		if !ok {
			return joinKey{}, false
		}
		i, ok := fieldIndex(info.fields, x.Attr)
		if !ok {
			return joinKey{}, false
		}
		f := info.fields[i]
		return joinKey{v: x.Var, attr: f.Name, idx: i, kind: f.Kind}, true
	case VarRef:
		info, ok := infos[x.Var]
		if !ok || info.isRel {
			return joinKey{}, false
		}
		return joinKey{v: x.Var, idx: -1, kind: value.KindRef}, true
	}
	return joinKey{}, false
}

// maxKeySuffix exceeds the 8-byte row-id suffix appended to non-unique
// index keys: enc(v)+maxKeySuffix is greater than every key whose value
// part is enc(v) and, because one encoded value is never a prefix of
// another, smaller than every key encoding a larger value.
var maxKeySuffix = bytes.Repeat([]byte{0xFF}, 9)

func withMaxSuffix(enc []byte) []byte {
	return append(append([]byte(nil), enc...), maxKeySuffix...)
}

// indexRange matches attr against a secondary index and converts the
// variable's sargs on it into encoded key bounds.  Only literals whose
// kind equals the declared attribute kind contribute bounds (mixed-kind
// comparisons like int vs. float don't share key space); every sarg
// stays a residual filter regardless, so bounds only need to be sound
// supersets.
func (s *Session) indexRange(rel *storage.Relation, info varInfo, attr string, sargs []sarg) (accessPath, bool) {
	i, ok := fieldIndex(info.fields, attr)
	if !ok {
		return accessPath{}, false
	}
	f := info.fields[i]
	spec, ok := rel.IndexByColumn(f.Name)
	if !ok {
		return accessPath{}, false
	}
	var lo, hi []byte
	var parts []string
	for _, sg := range sargs {
		if !strings.EqualFold(sg.attr, f.Name) || sg.v.Kind() != f.Kind {
			continue
		}
		enc := value.AppendKey(nil, sg.v)
		var cl, ch []byte
		switch sg.op {
		case "=":
			cl, ch = enc, withMaxSuffix(enc)
		case ">=":
			cl = enc
		case ">":
			cl = withMaxSuffix(enc)
		case "<":
			ch = enc
		case "<=":
			ch = withMaxSuffix(enc)
		default:
			continue
		}
		if cl != nil && (lo == nil || bytes.Compare(cl, lo) > 0) {
			lo = cl
		}
		if ch != nil && (hi == nil || bytes.Compare(ch, hi) < 0) {
			hi = ch
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", f.Name, sg.op, sg.v))
	}
	est := s.db.InstancesRangeCount(info.typ, spec.Name, lo, hi)
	if est < 0 {
		return accessPath{}, false
	}
	return accessPath{index: spec.Name, attr: f.Name, lo: lo, hi: hi, rng: strings.Join(parts, " and "), est: est}, true
}

// incipitRange plans a gram-index candidate scan for an incipit
// conjunct on a variable: the registered index maps the pattern to its
// most selective gram, and order statistics on the gram index price the
// resulting posting range.  ok is false whenever the index cannot serve
// the pattern (none registered, pattern too short or malformed, gram
// index missing or deferred); the caller then falls back to other
// access paths and the residual predicate still decides truth.
func (s *Session) incipitRange(info varInfo, pattern string) (accessPath, bool) {
	spec, ok := s.db.IncipitIndexFor(info.typ)
	if !ok {
		return accessPath{}, false
	}
	gram, ok := spec.Gram(pattern)
	if !ok {
		return accessPath{}, false
	}
	ixName, ok := s.db.AttrIndexName(spec.GramType, spec.GramAttr)
	if !ok {
		return accessPath{}, false
	}
	lo := value.AppendKey(nil, value.Str(gram))
	hi := withMaxSuffix(lo)
	est := s.db.InstancesRangeCount(spec.GramType, ixName, lo, hi)
	if est < 0 {
		return accessPath{}, false
	}
	return accessPath{incipit: true, index: ixName, gram: gram, lo: lo, hi: hi,
		rng: fmt.Sprintf("gram = %q", gram), est: est}, true
}

// chooseAccess picks the access path for one variable: the most
// selective sarg-bounded index range (by order-statistics count), a
// gram-index incipit probe, the sort attribute's index when that lets
// the sort be skipped, or a heap scan.
func (s *Session) chooseAccess(varName string, info varInfo, sargs []sarg, incipits map[string]string) accessPath {
	full := accessPath{est: s.estimate(info)}
	if info.isRel {
		return full
	}
	rel := s.db.Store().Relation(s.db.InstanceRelation(info.typ))
	if rel == nil {
		return full
	}
	if h := s.sortHint; h != nil && h.v == varName {
		if ap, ok := s.indexRange(rel, info, h.attr, sargs); ok {
			ap.satisfiesSort = true
			ap.reverse = h.desc
			return ap
		}
	}
	best, found := full, false
	if pat, ok := incipits[varName]; ok {
		if ap, ok := s.incipitRange(info, pat); ok {
			best, found = ap, true
		}
	}
	for _, f := range info.fields {
		ap, ok := s.indexRange(rel, info, f.Name, sargs)
		if !ok || (ap.lo == nil && ap.hi == nil) {
			continue // unbounded: no cheaper than the heap scan
		}
		if !found || ap.est < best.est {
			best, found = ap, true
		}
	}
	return best
}

// scanPlan materializes one variable's binding list through its chosen
// access path, applying the residual sargs.  Tuples are not cloned: the
// storage layer never mutates stored tuples in place, so bindings may
// alias them for the statement's lifetime.
func (s *Session) scanPlan(ctx context.Context, vp *varPlan) error {
	st := scanStats{Var: vp.name, Rel: vp.info.typ, Est: vp.access.est,
		Index: vp.access.index, Range: vp.access.rng, Incipit: vp.access.incipit}
	for _, sg := range vp.sargs {
		st.Sargs = append(st.Sargs, fmt.Sprintf("%s.%s %s %s", vp.name, sg.attr, sg.op, sg.v))
	}
	start := time.Now()
	collect := func(b binding) bool {
		st.Scanned++
		if !sargMatches(vp.sargs, b.fields, b.attrs) {
			return true
		}
		st.Kept++
		vp.list = append(vp.list, b)
		return true
	}
	var err error
	if vp.access.incipit {
		s.pm.scanIncipit.Inc()
		err = s.incipitScan(ctx, vp, collect)
	} else if vp.access.index != "" {
		s.pm.scanIndex.Inc()
		emit := func(ref value.Ref, attrs value.Tuple) bool {
			return collect(binding{ref: ref, attrs: attrs, fields: vp.info.fields, typ: vp.info.typ})
		}
		if did, perr := s.scanIndexParallel(ctx, vp, &st); did {
			err = perr
		} else if snap := s.snap; snap != nil {
			err = snap.InstancesRange(vp.info.typ, vp.access.index, vp.access.lo, vp.access.hi, vp.access.reverse, emit)
		} else {
			err = s.db.InstancesRangeCtx(ctx, vp.info.typ, vp.access.index, vp.access.lo, vp.access.hi, vp.access.reverse, emit)
		}
	} else {
		s.pm.scanFull.Inc()
		err = s.scanVarCtx(ctx, vp.info, collect)
	}
	st.Dur = time.Since(start)
	s.m.scanRows.Add(uint64(st.Scanned))
	if s.ps != nil {
		s.ps.Scans = append(s.ps.Scans, st)
	}
	return err
}

// incipitScan materializes a variable's bindings from its gram-index
// access path: range the companion gram type's index for the probe
// gram, dedup the posted entry refs (an incipit can contain one gram
// several times), then fetch each candidate entity through its type's
// unique surrogate index.  The emitted set is a superset of the true
// answer; the incipit predicate remains in the qualification and the
// Match callback rejects gram collisions per combination.
func (s *Session) incipitScan(ctx context.Context, vp *varPlan, collect func(binding) bool) error {
	spec, ok := s.db.IncipitIndexFor(vp.info.typ)
	if !ok {
		return fmt.Errorf("quel: no incipit index registered for %s", vp.info.typ)
	}
	gt, ok := s.db.EntityType(spec.GramType)
	if !ok {
		return fmt.Errorf("quel: incipit gram type %s not defined", spec.GramType)
	}
	ei, ok := gt.AttrIndex(spec.EntryAttr)
	if !ok {
		return fmt.Errorf("quel: incipit gram type %s has no attribute %q", spec.GramType, spec.EntryAttr)
	}
	seen := make(map[value.Ref]bool)
	var cands []value.Ref
	emitGram := func(_ value.Ref, attrs value.Tuple) bool {
		r := attrs[ei].AsRef()
		if !seen[r] {
			seen[r] = true
			cands = append(cands, r)
		}
		return true
	}
	var err error
	if snap := s.snap; snap != nil {
		err = snap.InstancesRange(spec.GramType, vp.access.index, vp.access.lo, vp.access.hi, false, emitGram)
	} else {
		err = s.db.InstancesRangeCtx(ctx, spec.GramType, vp.access.index, vp.access.lo, vp.access.hi, false, emitGram)
	}
	if err != nil {
		return err
	}
	refIx, ok := s.db.AttrIndexName(vp.info.typ, "_ref")
	if !ok {
		return fmt.Errorf("quel: %s has no surrogate index", vp.info.typ)
	}
	emit := func(ref value.Ref, attrs value.Tuple) bool {
		return collect(binding{ref: ref, attrs: attrs, fields: vp.info.fields, typ: vp.info.typ})
	}
	for _, ref := range cands {
		klo := value.AppendKey(nil, value.RefVal(ref))
		khi := withMaxSuffix(klo)
		if snap := s.snap; snap != nil {
			err = snap.InstancesRange(vp.info.typ, refIx, klo, khi, false, emit)
		} else {
			err = s.db.InstancesRangeCtx(ctx, vp.info.typ, refIx, klo, khi, false, emit)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

type joinMethod uint8

const (
	joinScan joinMethod = iota // first variable: plain iteration
	joinLoop
	joinHash
	joinProbe
)

func (m joinMethod) String() string {
	switch m {
	case joinHash:
		return "hash"
	case joinProbe:
		return "probe"
	case joinScan:
		return "scan"
	}
	return "loop"
}

// joinStep adds one variable to the left-deep join.
type joinStep struct {
	vp     *varPlan
	method joinMethod
	cond   string
	// hash join
	build []joinKey
	probe []joinKey
	table map[string][]int
	// order probe
	oc        orderCond
	newIsLeft bool
	otherVar  string

	est int // estimated combinations after this step joins
}

// stepCount accumulates one driver's probe/hit counts for a step.  The
// counts live outside joinStep so parallel workers driving disjoint
// morsels over the same (read-only) steps never write shared memory.
type stepCount struct{ probes, hits int }

// appendHashKey encodes v for hash-join key equality.  Within one
// declared kind the order-preserving encoding is bijective, except that
// -0.0 and +0.0 compare equal with distinct encodings; fold them.
func appendHashKey(dst []byte, v value.Value) []byte {
	if v.Kind() == value.KindFloat && v.AsFloat() == 0 {
		v = value.Float(0)
	}
	return value.AppendKey(dst, v)
}

func buildHashTable(vp *varPlan, build []joinKey) map[string][]int {
	h := make(map[string][]int, len(vp.list))
	var buf []byte
	for li := range vp.list {
		buf = buf[:0]
		for _, k := range build {
			buf = appendHashKey(buf, k.value(vp.list[li]))
		}
		h[string(buf)] = append(h[string(buf)], li)
	}
	return h
}

// distinctOf estimates how many distinct join-key values a variable's
// binding list carries.  Entity refs are unique by construction; indexed
// attributes use the per-index distinct count maintained by the storage
// layer (rebuilt on checkpoint, refreshed lazily on churn); anything
// else falls back to a tenth of the list — the classic guess for an
// unindexed equi-key.
func (s *Session) distinctOf(vp *varPlan, k joinKey) int {
	n := len(vp.list)
	if n == 0 {
		return 1
	}
	if k.idx < 0 {
		return n
	}
	if !vp.info.isRel {
		if ixName, ok := s.db.AttrIndexName(vp.info.typ, k.attr); ok {
			if st, ok := s.db.InstanceIndexStats(vp.info.typ, ixName); ok && st.Distinct > 0 {
				if st.Distinct < n {
					return st.Distinct
				}
				return n
			}
		}
	}
	if d := n / 10; d > 1 {
		return d
	}
	return 1
}

// orderFanout estimates an ordering probe's partner count per bound row:
// one parent when the new variable is the parent side of `under`; the
// average family size (children over parents) when it is the child side;
// half the average sibling count for before/after.
func (s *Session) orderFanout(vp *varPlan, oc orderCond, newIsLeft bool) float64 {
	if oc.op == "under" && !newIsLeft {
		return 1
	}
	parents := 1
	if o, ok := s.db.OrderingByName(oc.ordering); ok {
		if n := s.db.Count(o.Parent); n > 0 {
			parents = n
		}
	}
	fan := float64(len(vp.list)) / float64(parents)
	if oc.op != "under" {
		fan /= 2
	}
	if fan < 1 {
		fan = 1
	}
	return fan
}

// estFanout estimates how many combinations each already-joined row
// yields when vp joins next.  Equi-conjuncts into the joined set divide
// the list by the larger side's distinct count (containment assumption);
// failing those, a connecting ordering conjunct bounds the fan-out by
// its expected partner count; an unconnected variable contributes its
// whole list (cross product).  Mirrors makeStep's method choice: hash
// when equi-connected, probe when order-connected, loop otherwise.
func (s *Session) estFanout(vp *varPlan, byName map[string]*varPlan, chosen map[string]bool, equis []equiCond, orders []orderCond) float64 {
	fan := float64(len(vp.list))
	conn := false
	for _, ec := range equis {
		var mine, theirs joinKey
		switch {
		case ec.l.v == vp.name && chosen[ec.r.v]:
			mine, theirs = ec.l, ec.r
		case ec.r.v == vp.name && chosen[ec.l.v]:
			mine, theirs = ec.r, ec.l
		default:
			continue
		}
		conn = true
		d := s.distinctOf(vp, mine)
		if op := byName[theirs.v]; op != nil {
			if od := s.distinctOf(op, theirs); od > d {
				d = od
			}
		}
		if d > 1 {
			fan /= float64(d)
		}
	}
	if conn {
		return fan
	}
	for _, oc := range orders {
		newIsLeft := oc.l == vp.name
		other := oc.r
		if !newIsLeft {
			if oc.r != vp.name {
				continue
			}
			other = oc.l
		}
		if !chosen[other] {
			continue
		}
		if f := s.orderFanout(vp, oc, newIsLeft); f < fan {
			fan = f
		}
	}
	return fan
}

// orderJoins picks the join order from planner statistics: each round
// adds the unchosen variable with the smallest estimated fan-out
// (estFanout; for the first variable that is simply its list size, so
// the smallest binding list still drives the pipeline).  Ties break on
// list size then variable name — plans stay deterministic for golden
// tests.  A non-nil forced order (plan-cache replay) skips the ranking
// but still computes each step's estimate for explain.
func (s *Session) orderJoins(plans []*varPlan, equis []equiCond, orders []orderCond, forced []string) []*joinStep {
	byName := make(map[string]*varPlan, len(plans))
	for _, vp := range plans {
		byName[vp.name] = vp
	}
	if len(forced) == len(plans) {
		for _, name := range forced {
			if byName[name] == nil {
				forced = nil
				break
			}
		}
	} else {
		forced = nil
	}
	chosen := make(map[string]bool, len(plans))
	steps := make([]*joinStep, 0, len(plans))
	estRows := 1.0
	for len(steps) < len(plans) {
		var best *varPlan
		var bestFan float64
		if forced != nil {
			best = byName[forced[len(steps)]]
			bestFan = s.estFanout(best, byName, chosen, equis, orders)
		} else {
			for _, vp := range plans { // plans arrive in sorted-name order
				if chosen[vp.name] {
					continue
				}
				fan := s.estFanout(vp, byName, chosen, equis, orders)
				if best == nil || fan < bestFan ||
					(fan == bestFan && len(vp.list) < len(best.list)) {
					best, bestFan = vp, fan
				}
			}
		}
		st := s.makeStep(best, chosen, equis, orders, len(steps) == 0)
		if estRows *= bestFan; estRows > 1e15 {
			estRows = 1e15 // saturate: float-to-int overflow is undefined
		}
		st.est = int(estRows)
		steps = append(steps, st)
		chosen[best.name] = true
	}
	return steps
}

// makeStep decides how variable vp joins the already-chosen set: a hash
// join keyed on every connecting equi-conjunct, an ordering probe, or a
// nested loop.
func (s *Session) makeStep(vp *varPlan, chosen map[string]bool, equis []equiCond, orders []orderCond, first bool) *joinStep {
	st := &joinStep{vp: vp, method: joinScan}
	if first {
		return st
	}
	var parts []string
	for _, ec := range equis {
		var b, p joinKey
		switch {
		case ec.l.v == vp.name && chosen[ec.r.v]:
			b, p = ec.l, ec.r
		case ec.r.v == vp.name && chosen[ec.l.v]:
			b, p = ec.r, ec.l
		default:
			continue
		}
		st.build = append(st.build, b)
		st.probe = append(st.probe, p)
		parts = append(parts, ec.desc)
	}
	if len(st.build) > 0 {
		st.method = joinHash
		st.cond = strings.Join(parts, " and ")
		if s.parWorkers > 1 && len(vp.list) >= s.parMin {
			st.table = s.buildHashTableParallel(vp, st.build)
		} else {
			st.table = buildHashTable(vp, st.build)
		}
		s.pm.joinHash.Inc()
		return st
	}
	if !vp.info.isRel {
		for _, oc := range orders {
			if oc.l == vp.name && chosen[oc.r] {
				st.method, st.oc, st.newIsLeft, st.otherVar, st.cond = joinProbe, oc, true, oc.r, oc.desc
				break
			}
			if oc.r == vp.name && chosen[oc.l] {
				st.method, st.oc, st.newIsLeft, st.otherVar, st.cond = joinProbe, oc, false, oc.l, oc.desc
				break
			}
		}
	}
	if st.method == joinProbe {
		vp.byRef = make(map[value.Ref]int, len(vp.list))
		for li := range vp.list {
			vp.byRef[vp.list[li].ref] = li
		}
		s.pm.joinProbe.Inc()
		return st
	}
	st.method = joinLoop
	s.pm.joinLoop.Inc()
	return st
}

// children, childPosition, siblingsBefore, and siblingsAfter route an
// ordering read through the statement snapshot when one is pinned, and
// through the live (locking) runtime otherwise.
func (s *Session) children(ordering string, parent value.Ref) ([]value.Ref, error) {
	if snap := s.snap; snap != nil {
		return snap.Children(ordering, parent)
	}
	return s.db.Children(ordering, parent)
}

func (s *Session) childPosition(ordering string, child value.Ref) (value.Ref, int64, bool, error) {
	if snap := s.snap; snap != nil {
		return snap.ChildPosition(ordering, child)
	}
	return s.db.ChildPosition(ordering, child)
}

func (s *Session) siblingsBefore(ordering string, child value.Ref) ([]value.Ref, error) {
	if snap := s.snap; snap != nil {
		return snap.SiblingsBefore(ordering, child)
	}
	return s.db.SiblingsBefore(ordering, child)
}

func (s *Session) siblingsAfter(ordering string, child value.Ref) ([]value.Ref, error) {
	if snap := s.snap; snap != nil {
		return snap.SiblingsAfter(ordering, child)
	}
	return s.db.SiblingsAfter(ordering, child)
}

// probeRefs returns the candidate refs for an ordering probe, given the
// bound binding of the step's other variable.  The sets are exactly the
// conjunct's satisfying partners (rank-key range scans over the sibling
// tree, or the P-edge for under), so the residual evaluation only
// re-confirms them.
func (s *Session) probeRefs(st *joinStep, other binding) ([]value.Ref, error) {
	switch st.oc.op {
	case "under":
		if st.newIsLeft { // new is the child: the other's children
			return s.children(st.oc.ordering, other.ref)
		}
		parent, _, ok, err := s.childPosition(st.oc.ordering, other.ref)
		if err != nil || !ok {
			return nil, err
		}
		return []value.Ref{parent}, nil
	case "before":
		if st.newIsLeft {
			return s.siblingsBefore(st.oc.ordering, other.ref)
		}
		return s.siblingsAfter(st.oc.ordering, other.ref)
	case "after":
		if st.newIsLeft {
			return s.siblingsAfter(st.oc.ordering, other.ref)
		}
		return s.siblingsBefore(st.oc.ordering, other.ref)
	}
	return nil, nil
}

// stepRun drives the materialized left-deep join: rec(k) binds steps[k]
// against the current environment and recurses.  All mutable state —
// environment, probe/hit counts, combination counter — lives on the run,
// so parallel workers can drive disjoint driver morsels over the same
// (read-only after planning) steps with a stepRun each, race-free.
type stepRun struct {
	s      *Session
	ctx    context.Context
	steps  []*joinStep
	counts []stepCount
	e      env
	fn     func(env) error
	combos int
	work   int
}

func (r *stepRun) rec(k int) error {
	if k == len(r.steps) {
		r.combos++
		return r.fn(r.e)
	}
	r.work++
	if r.work&1023 == 0 && r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", txn.ErrCanceled, err)
		}
	}
	s := r.s
	st := r.steps[k]
	vp := st.vp
	r.counts[k].probes++
	switch st.method {
	case joinHash:
		var buf []byte
		for _, p := range st.probe {
			buf = appendHashKey(buf, p.value(r.e[p.v]))
		}
		s.pm.hashProbes.Inc()
		for _, li := range st.table[string(buf)] {
			r.counts[k].hits++
			s.pm.hashHits.Inc()
			r.e[vp.name] = vp.list[li]
			if err := r.rec(k + 1); err != nil {
				return err
			}
		}
	case joinProbe:
		refs, err := s.probeRefs(st, r.e[st.otherVar])
		if err != nil {
			return err
		}
		for _, ref := range refs {
			li, ok := vp.byRef[ref]
			if !ok {
				continue
			}
			r.counts[k].hits++
			r.e[vp.name] = vp.list[li]
			if err := r.rec(k + 1); err != nil {
				return err
			}
		}
	default:
		for li := range vp.list {
			r.counts[k].hits++
			r.e[vp.name] = vp.list[li]
			if err := r.rec(k + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// bindAllPlanned is the cost-based executor behind bindAll.
func (s *Session) bindAllPlanned(ctx context.Context, vars []string, infos map[string]varInfo, sargs map[string][]sarg, where Expr, fn func(env) error) error {
	var equis []equiCond
	var orders []orderCond
	incipits := map[string]string{}
	if where != nil {
		s.extractJoinConds(where, infos, &equis, &orders)
		extractIncipits(where, incipits)
	}
	cached, key := s.lookupPlan(vars, infos, where)
	plans := make([]*varPlan, len(vars))
	for i, v := range vars {
		vp := &varPlan{name: v, info: infos[v], sargs: sargs[v]}
		if cached != nil {
			vp.access = s.cachedAccessPath(cached, vp, incipits)
		} else {
			vp.access = s.chooseAccess(v, vp.info, vp.sargs, incipits)
		}
		plans[i] = vp
	}
	// Materialize binding lists; any empty list means zero combinations
	// whatever the qualification, so remaining scans are skipped.
	empty := false
	for _, vp := range plans {
		if empty {
			if s.ps != nil {
				st := scanStats{Var: vp.name, Rel: vp.info.typ, Est: vp.access.est,
					Index: vp.access.index, Range: vp.access.rng, Skipped: true}
				for _, sg := range vp.sargs {
					st.Sargs = append(st.Sargs, fmt.Sprintf("%s.%s %s %s", vp.name, sg.attr, sg.op, sg.v))
				}
				s.ps.Scans = append(s.ps.Scans, st)
			}
			continue
		}
		if err := s.scanPlan(ctx, vp); err != nil {
			return err
		}
		if len(vp.list) == 0 {
			empty = true
		}
	}
	if s.ps != nil && len(plans) == 1 && plans[0].access.satisfiesSort {
		s.ps.SortElided = true
		s.ps.SortIndex = plans[0].access.index
	}
	if empty {
		return nil
	}
	var forced []string
	if cached != nil {
		forced = cached.order
	}
	steps := s.orderJoins(plans, equis, orders, forced)
	if cached == nil && key != "" {
		s.storePlan(key, plans, steps)
	}
	if s.parallelOK(steps) {
		return s.runParallelJoin(ctx, steps)
	}
	run := &stepRun{s: s, ctx: ctx, steps: steps,
		counts: make([]stepCount, len(steps)), e: make(env, len(plans)), fn: fn}
	err := run.rec(0)
	s.m.combos.Add(uint64(run.combos))
	if s.ps != nil {
		s.ps.Combos = run.combos
		s.recordSteps(steps, run.counts)
	}
	return err
}

// recordSteps copies the planned steps and their counts into the live
// planStats for explain.
func (s *Session) recordSteps(steps []*joinStep, counts []stepCount) {
	for k, st := range steps {
		s.ps.Steps = append(s.ps.Steps, joinStat{Var: st.vp.name, Method: st.method.String(),
			Cond: st.cond, Est: st.est, Build: len(st.vp.list),
			Probes: counts[k].probes, Hits: counts[k].hits})
	}
}

// stmtCache memoizes ordering resolution and child positions for the
// duration of one statement, so before/after/under evaluations inside a
// join don't re-walk internal/model's structures per binding pair.
// Orderings are not mutated inside a QUEL statement, so the cache cannot
// go stale before execOne clears it.
type stmtCache struct {
	orderings map[string]*model.Ordering
	pos       map[string]map[value.Ref]posEntry
}

type posEntry struct {
	parent value.Ref
	rank   int64
	ok     bool
}

func newStmtCache() *stmtCache {
	return &stmtCache{
		orderings: make(map[string]*model.Ordering),
		pos:       make(map[string]map[value.Ref]posEntry),
	}
}

// resolveOrdering resolves the ordering an OrderOp refers to, cached per
// (name, operand types).
func (s *Session) resolveOrdering(x OrderOp, ltyp, rtyp string) (*model.Ordering, error) {
	var childType, parentType string
	switch x.Op {
	case "under":
		childType, parentType = ltyp, rtyp
	default:
		childType = ltyp
	}
	c := s.cache
	if c == nil {
		return s.db.FindOrdering(x.Order, childType, parentType)
	}
	key := x.Order + "|" + childType + "|" + parentType
	if o, ok := c.orderings[key]; ok {
		return o, nil
	}
	o, err := s.db.FindOrdering(x.Order, childType, parentType)
	if err != nil {
		return nil, err
	}
	c.orderings[key] = o
	return o, nil
}

// childPos returns ref's cached position (parent and rank) in ordering.
func (s *Session) childPos(ordering string, ref value.Ref) (posEntry, error) {
	c := s.cache
	if c == nil {
		parent, rank, ok, err := s.childPosition(ordering, ref)
		return posEntry{parent: parent, rank: rank, ok: ok}, err
	}
	m := c.pos[ordering]
	if m == nil {
		m = make(map[value.Ref]posEntry)
		c.pos[ordering] = m
	}
	if pe, ok := m[ref]; ok {
		return pe, nil
	}
	parent, rank, ok, err := s.childPosition(ordering, ref)
	if err != nil {
		return posEntry{}, err
	}
	pe := posEntry{parent: parent, rank: rank, ok: ok}
	m[ref] = pe
	return pe, nil
}
