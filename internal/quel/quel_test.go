package quel

import (
	"strings"
	"testing"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/value"
)

func newSession(t testing.TB) (*model.Database, *Session) {
	t.Helper()
	store, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := model.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	return db, NewSession(db)
}

func mustExec(t testing.TB, s *Session, src string) *Result {
	t.Helper()
	r, err := s.Exec(src)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	return r
}

// setupChords builds the §5.6 example schema and the chord/note data for
// the ordering-operator queries.
func setupChords(t testing.TB, db *model.Database) (chord value.Ref, notes []value.Ref) {
	t.Helper()
	if _, err := ddl.Exec(db, `
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer)
define ordering note_in_chord (NOTE) under CHORD
`); err != nil {
		t.Fatal(err)
	}
	chord, _ = db.NewEntity("CHORD", model.Attrs{"name": value.Int(1)})
	for i := 1; i <= 5; i++ {
		n, _ := db.NewEntity("NOTE", model.Attrs{
			"name": value.Int(int64(i)), "pitch": value.Int(int64(59 + i)),
		})
		if err := db.InsertChild("note_in_chord", chord, n, model.Last()); err != nil {
			t.Fatal(err)
		}
		notes = append(notes, n)
	}
	return chord, notes
}

func TestParseStatements(t *testing.T) {
	stmts, err := Parse(`
range of n1, n2 is NOTE
retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3
append to NOTE (name = 9, pitch = 64)
replace n1 (pitch = n1.pitch + 1) where n1.name = 9
delete n1 where n1.name = 9
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 5 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	rs := stmts[0].(RangeStmt)
	if len(rs.Vars) != 2 || rs.EntityType != "NOTE" {
		t.Fatalf("range: %+v", rs)
	}
	r := stmts[1].(Retrieve)
	w, ok := r.Where.(Binary)
	if !ok || w.Op != "and" {
		t.Fatalf("where: %+v", r.Where)
	}
	oo, ok := w.L.(OrderOp)
	if !ok || oo.Op != "before" || oo.Order != "note_in_chord" {
		t.Fatalf("order op: %+v", w.L)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"retrieve n.name",               // missing parens
		"retrieve (n.name",              // unclosed
		"range n is NOTE",               // missing of
		"range of n NOTE",               // missing is
		"append NOTE (a = 1)",           // missing to
		"replace (a = 1)",               // missing var
		"retrieve (sum(n.all))",         // sum needs attribute
		"retrieve (n.name) where",       // dangling where
		"frobnicate (x)",                // unknown statement
		"retrieve (n.name) where n.n =", // dangling comparison
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// TestStarSpangledBanner runs the §5.6 is-operator query verbatim.
func TestStarSpangledBanner(t *testing.T) {
	db, s := newSession(t)
	if _, err := ddl.Exec(db, `
define entity PERSON (name = string)
define entity COMPOSITION (title = string)
define relationship COMPOSER (composer = PERSON, composition = COMPOSITION)
`); err != nil {
		t.Fatal(err)
	}
	key, _ := db.NewEntity("PERSON", model.Attrs{"name": value.Str("Francis Scott Key")})
	smith, _ := db.NewEntity("PERSON", model.Attrs{"name": value.Str("John Stafford Smith")})
	bach, _ := db.NewEntity("PERSON", model.Attrs{"name": value.Str("J. S. Bach")})
	ssb, _ := db.NewEntity("COMPOSITION", model.Attrs{"title": value.Str("The Star Spangled Banner")})
	fugue, _ := db.NewEntity("COMPOSITION", model.Attrs{"title": value.Str("Fuge g-moll")})
	db.Relate("COMPOSER", map[string]value.Ref{"composer": key, "composition": ssb}, nil)
	db.Relate("COMPOSER", map[string]value.Ref{"composer": smith, "composition": ssb}, nil)
	db.Relate("COMPOSER", map[string]value.Ref{"composer": bach, "composition": fugue}, nil)

	// The COMPOSER relationship is itself queryable: treat it as entity
	// bindings via its ref attributes.  The paper's query uses implicit
	// range variables named after the entity types.
	res := mustExec(t, s, `
retrieve (PERSON.name)
  where COMPOSITION.title = "The Star Spangled Banner"
  and COMPOSER.composition is COMPOSITION
  and COMPOSER.composer is PERSON
`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	got := map[string]bool{}
	for _, r := range res.Rows {
		got[r[0].AsString()] = true
	}
	if !got["Francis Scott Key"] || !got["John Stafford Smith"] {
		t.Fatalf("wrong composers: %v", got)
	}
}

// TestPaperOrderingQueries runs the four §5.6 example queries against the
// note/chord schema.
func TestPaperOrderingQueries(t *testing.T) {
	db, s := newSession(t)
	chord, notes := setupChords(t, db)
	_ = chord
	_ = notes

	mustExec(t, s, "range of n1, n2 is NOTE\nrange of c1 is CHORD")

	// "Retrieve the notes prior to n in its chord" (n = 3).
	res := mustExec(t, s, `
retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 3`)
	if got := names(res); !equalInts(got, []int64{1, 2}) {
		t.Fatalf("before: %v", got)
	}

	// "Retrieve the notes that follow note n" (n = 3).
	res = mustExec(t, s, `
retrieve (n1.name) where n1 after n2 in note_in_chord and n2.name = 3`)
	if got := names(res); !equalInts(got, []int64{4, 5}) {
		t.Fatalf("after: %v", got)
	}

	// "Retrieve the notes under chord c" (c = 1).
	res = mustExec(t, s, `
retrieve (n1.name) where n1 under c1 in note_in_chord and c1.name = 1`)
	if got := names(res); !equalInts(got, []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("under: %v", got)
	}

	// "Retrieve the parent chord of note n" (n = 4).
	res = mustExec(t, s, `
retrieve (c1.name) where n1 under c1 in note_in_chord and n1.name = 4`)
	if got := names(res); !equalInts(got, []int64{1}) {
		t.Fatalf("parent: %v", got)
	}
}

func names(r *Result) []int64 {
	out := make([]int64, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[0].AsInt())
	}
	return out
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOrderingInferredWithoutInClause(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	// Only one ordering with NOTE as child exists, so `in` is optional.
	res := mustExec(t, s, `
range of n1, n2 is NOTE
retrieve (n1.name) where n1 before n2 and n2.name = 2`)
	if got := names(res); !equalInts(got, []int64{1}) {
		t.Fatalf("inferred ordering: %v", got)
	}
	// Add a second ordering with NOTE as child → ambiguous.
	if _, err := ddl.Exec(db, `
define entity STAFF (name = string)
define ordering note_on_staff (NOTE) under STAFF`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`retrieve (n1.name) where n1 before n2 and n2.name = 2`); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguity not reported: %v", err)
	}
}

func TestIncomparableSiblingsFalse(t *testing.T) {
	// §5.6: "If a and b have different parents, then they are not
	// comparable, and the before clause evaluates to false."
	db, s := newSession(t)
	_, _ = setupChords(t, db)
	chord2, _ := db.NewEntity("CHORD", model.Attrs{"name": value.Int(2)})
	other, _ := db.NewEntity("NOTE", model.Attrs{"name": value.Int(99), "pitch": value.Int(72)})
	db.InsertChild("note_in_chord", chord2, other, model.Last())
	res := mustExec(t, s, `
range of n1, n2 is NOTE
retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 99`)
	if len(res.Rows) != 0 {
		t.Fatalf("cross-parent before should be empty: %v", res.Rows)
	}
}

func TestAppendReplaceDelete(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	r := mustExec(t, s, `append to NOTE (name = 10, pitch = 70)`)
	if r.Affected != 1 || db.Count("NOTE") != 6 {
		t.Fatal("append")
	}
	r = mustExec(t, s, `
range of n is NOTE
replace n (pitch = n.pitch + 12) where n.name = 10`)
	if r.Affected != 1 {
		t.Fatal("replace affected")
	}
	res := mustExec(t, s, `retrieve (n.pitch) where n.name = 10`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 82 {
		t.Fatalf("replace value: %v", res.Rows)
	}
	r = mustExec(t, s, `delete n where n.name = 10`)
	if r.Affected != 1 || db.Count("NOTE") != 5 {
		t.Fatal("delete")
	}
	// Delete with no qualification empties the relation (notes are
	// children; detaching is allowed on delete).
	r = mustExec(t, s, `delete n`)
	if r.Affected != 5 || db.Count("NOTE") != 0 {
		t.Fatalf("delete all: %d", r.Affected)
	}
}

func TestRetrieveAllAndUnique(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	res := mustExec(t, s, `range of n is NOTE retrieve (n.all) where n.name = 2`)
	if len(res.Columns) != 2 || res.Columns[0] != "name" || res.Columns[1] != "pitch" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 61 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Unique collapses duplicates.
	mustExec(t, s, `append to NOTE (name = 2, pitch = 61)`)
	res = mustExec(t, s, `retrieve (n.pitch) where n.name = 2`)
	if len(res.Rows) != 2 {
		t.Fatal("dup expected")
	}
	res = mustExec(t, s, `retrieve unique (n.pitch) where n.name = 2`)
	if len(res.Rows) != 1 {
		t.Fatalf("unique: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db) // pitches 60..64
	res := mustExec(t, s, `range of n is NOTE
retrieve (total = count(n.all), hi = max(n.pitch), lo = min(n.pitch),
          mean = avg(n.pitch), s = sum(n.pitch),
          high_count = count(n.all where n.pitch > 62))`)
	row := res.Rows[0]
	if row[0].AsInt() != 5 || row[1].AsInt() != 64 || row[2].AsInt() != 60 {
		t.Fatalf("agg: %v", row)
	}
	if row[3].AsFloat() != 62.0 || row[4].AsInt() != 310 || row[5].AsInt() != 2 {
		t.Fatalf("agg: %v", row)
	}
	if res.Columns[0] != "total" || res.Columns[5] != "high_count" {
		t.Fatalf("labels: %v", res.Columns)
	}
	// any() over empty selection.
	res = mustExec(t, s, `retrieve (e = any(n.all where n.pitch > 100))`)
	if res.Rows[0][0].AsBool() {
		t.Fatal("any should be false")
	}
}

func TestArithmeticAndStrings(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	res := mustExec(t, s, `range of n is NOTE
retrieve (x = n.pitch * 2 - 10, y = -n.name, z = "note " + "two") where n.name = 2`)
	row := res.Rows[0]
	if row[0].AsInt() != 112 || row[1].AsInt() != -2 || row[2].AsString() != "note two" {
		t.Fatalf("arith: %v", row)
	}
	// Division and precedence: 2 + 3 * 4 = 14.
	res = mustExec(t, s, `retrieve (a = 2 + 3 * 4, b = 10 / 4, c = 10.0 / 4) where n.name = 1`)
	row = res.Rows[0]
	if row[0].AsInt() != 14 || row[1].AsInt() != 2 || row[2].AsFloat() != 2.5 {
		t.Fatalf("precedence: %v", row)
	}
	if _, err := s.Exec(`retrieve (a = 1 / 0) where n.name = 1`); err == nil {
		t.Fatal("division by zero accepted")
	}
	if _, err := s.Exec(`retrieve (a = "x" * 2) where n.name = 1`); err == nil {
		t.Fatal("string arithmetic accepted")
	}
}

func TestBooleanLogic(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	res := mustExec(t, s, `range of n is NOTE
retrieve (n.name) where (n.name = 1 or n.name = 3) and not n.pitch = 60`)
	if got := names(res); !equalInts(got, []int64{3}) {
		t.Fatalf("boolean: %v", got)
	}
	res = mustExec(t, s, `retrieve (n.name) where n.name >= 2 and n.name <= 3 or n.name != n.name`)
	if got := names(res); !equalInts(got, []int64{2, 3}) {
		t.Fatalf("precedence or: %v", got)
	}
}

func TestExecErrors(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	for _, src := range []string{
		`range of x is NOPE`,
		`retrieve (q.name)`,                               // undeclared var, no such type
		`retrieve (n.bogus) where n.name = 1`,             // missing attr
		`append to NOPE (a = 1)`,                          // missing type
		`append to NOTE (bogus = 1)`,                      // missing attr
		`retrieve (n.name) where n before 3`,              // non-var operand
		`retrieve (n.name) where n.name is n.name`,        // is on non-refs
		`retrieve (x = sum(n.bogus))`,                     // aggregate missing attr
		`retrieve (n.name) where n before n in wibble`,    // missing ordering
		`range of c is CHORD retrieve (x = count(q.all))`, // agg over unknown var
	} {
		if _, err := s.Exec(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestImplicitRangeVariable(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	// NOTE used directly as a range variable (footnote 6).
	res := mustExec(t, s, `retrieve (NOTE.name) where NOTE.pitch = 62`)
	if got := names(res); !equalInts(got, []int64{3}) {
		t.Fatalf("implicit range var: %v", got)
	}
}

func TestResultString(t *testing.T) {
	db, s := newSession(t)
	setupChords(t, db)
	res := mustExec(t, s, `range of n is NOTE retrieve (n.name) where n.name < 3`)
	out := res.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "| 1") {
		t.Fatalf("table rendering:\n%s", out)
	}
	r2 := mustExec(t, s, `append to NOTE (name = 50, pitch = 70)`)
	if r2.String() != "(1 affected)" {
		t.Fatalf("affected rendering: %q", r2.String())
	}
}

func TestReplaceWithJoin(t *testing.T) {
	// Replace driven by a second range variable: transpose every note in
	// the chord that contains note 2.
	db, s := newSession(t)
	setupChords(t, db)
	r := mustExec(t, s, `
range of n, m is NOTE
range of c is CHORD
replace n (pitch = n.pitch + 12)
  where n under c in note_in_chord and m under c in note_in_chord and m.name = 2`)
	if r.Affected != 5 {
		t.Fatalf("affected = %d", r.Affected)
	}
	res := mustExec(t, s, `retrieve (n.pitch) where n.name = 1`)
	if res.Rows[0][0].AsInt() != 72 {
		t.Fatalf("transposed: %v", res.Rows)
	}
}

func BenchmarkRetrieveSarg(b *testing.B) {
	db, s := newSession(b)
	if _, err := ddl.Exec(db, `
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer)
define ordering note_in_chord (NOTE) under CHORD
`); err != nil {
		b.Fatal(err)
	}
	const n = 2000
	db.NewEntities("NOTE", n, func(i int) model.Attrs {
		return model.Attrs{"name": value.Int(int64(i)), "pitch": value.Int(int64(i % 100))}
	})
	mustExec(b, s, "range of n is NOTE")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(`retrieve (n.name) where n.pitch = 50`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderOpQuery(b *testing.B) {
	db, s := newSession(b)
	if _, err := ddl.Exec(db, `
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer)
define ordering note_in_chord (NOTE) under CHORD
`); err != nil {
		b.Fatal(err)
	}
	chord, _ := db.NewEntity("CHORD", model.Attrs{"name": value.Int(1)})
	const n = 200
	refs, _ := db.NewEntities("NOTE", n, func(i int) model.Attrs {
		return model.Attrs{"name": value.Int(int64(i)), "pitch": value.Int(60)}
	})
	for _, r := range refs {
		db.InsertChild("note_in_chord", chord, r, model.Last())
	}
	mustExec(b, s, "range of n1, n2 is NOTE")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(`retrieve (n1.name) where n1 before n2 in note_in_chord and n2.name = 100`); err != nil {
			b.Fatal(err)
		}
	}
}
