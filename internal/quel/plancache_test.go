package quel

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/value"
)

// TestPlanCacheHitOnShape asserts the second execution of a statement
// shape replays the cached strategy (explain renders "PlanCache: hit")
// and that literal values do not fragment the key.
func TestPlanCacheHitOnShape(t *testing.T) {
	db, s := newSession(t)
	buildScores(t, db, 3, 10)
	s.SetPlanCache(NewPlanCache(db.Store().Obs()))
	mustExec(t, s, "range of n is NOTE\nrange of s is SCORE")

	q := `explain retrieve (n.name) where n.pitch >= 40 and n.pitch < 60`
	first := planLines(t, s, q)
	if strings.Contains(strings.Join(first, "\n"), "PlanCache: hit") {
		t.Fatalf("first execution claims a cache hit:\n%s", strings.Join(first, "\n"))
	}
	// Different literals, same shape: still a hit.
	second := planLines(t, s, `explain retrieve (n.name) where n.pitch >= 36 and n.pitch < 80`)
	if !strings.Contains(strings.Join(second, "\n"), "PlanCache: hit") {
		t.Fatalf("second execution missed the cache:\n%s", strings.Join(second, "\n"))
	}
	if !strings.Contains(strings.Join(second, "\n"), "IndexScan") {
		t.Fatalf("cached replay lost the index scan:\n%s", strings.Join(second, "\n"))
	}
	if got := db.Store().Obs().Counter("quel.plan.cache.hits").Value(); got == 0 {
		t.Fatal("quel.plan.cache.hits never incremented")
	}

	// Cached join strategies replay too, with identical results.
	jq := `retrieve (n.name, s.name) where n under s in note_in_score and s.name >= 1`
	r1 := mustExec(t, s, jq)
	r2 := mustExec(t, s, jq)
	if canonRows(r1) != canonRows(r2) {
		t.Fatal("cached plan changed the result")
	}
}

// TestPlanCacheInvalidatedByDDL is the regression test for the
// dropped-index hazard: a cached plan that range-scans an index must not
// survive the index being dropped.  The schema epoch bump invalidates
// the entry wholesale; the re-planned statement degrades to a heap scan
// and still answers correctly.
func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	db, s := newSession(t)
	buildScores(t, db, 3, 10)
	s.SetPlanCache(NewPlanCache(db.Store().Obs()))
	mustExec(t, s, "range of n is NOTE")

	q := `retrieve (nm = n.name) where n.pitch >= 40 and n.pitch < 70`
	want := canonRows(mustExec(t, s, q))
	eq := `explain retrieve (nm = n.name) where n.pitch >= 40 and n.pitch < 70`
	ixName, ok := db.AttrIndexName("NOTE", "pitch")
	if !ok {
		t.Fatal("no index on NOTE(pitch)")
	}
	cachedPlanOut := strings.Join(planLines(t, s, eq), "\n")
	if !strings.Contains(cachedPlanOut, "PlanCache: hit") || !strings.Contains(cachedPlanOut, ixName) {
		t.Fatalf("expected a cached plan over %s:\n%s", ixName, cachedPlanOut)
	}
	if err := db.DropIndex("NOTE", ixName); err != nil {
		t.Fatal(err)
	}

	after := strings.Join(planLines(t, s, eq), "\n")
	if strings.Contains(after, "PlanCache: hit") {
		t.Fatalf("cache survived a schema change:\n%s", after)
	}
	// The re-planned statement may pick another index (here the sort
	// hint's name index); it must just never name the dropped one.
	if strings.Contains(after, ixName) {
		t.Fatalf("plan still names the dropped index %s:\n%s", ixName, after)
	}
	if got := canonRows(mustExec(t, s, q)); got != want {
		t.Fatalf("result changed after index drop:\n%s\nwant:\n%s", got, want)
	}
}

// TestPlanCachePreparedPath asserts prepared-statement re-execution
// rides the cache: the first execution plans and stores, later
// executions with different parameters hit.
func TestPlanCachePreparedPath(t *testing.T) {
	db, s := newSession(t)
	buildScores(t, db, 3, 10)
	s.SetPlanCache(NewPlanCache(db.Store().Obs()))
	mustExec(t, s, "range of n is NOTE")

	p, err := Prepare(`retrieve (n.name) where n.pitch >= $1 and n.pitch < $2`)
	if err != nil {
		t.Fatal(err)
	}
	hits := db.Store().Obs().Counter("quel.plan.cache.hits")
	if _, err := s.ExecPreparedCtx(context.Background(), p, value.Int(40), value.Int(60)); err != nil {
		t.Fatal(err)
	}
	h0 := hits.Value()
	for i := 0; i < 5; i++ {
		if _, err := s.ExecPreparedCtx(context.Background(), p, value.Int(int64(36+i)), value.Int(int64(60+i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := hits.Value() - h0; got < 5 {
		t.Fatalf("prepared re-executions hit the cache %d times, want >= 5", got)
	}
}

// TestPlanCacheCapBounded asserts FIFO eviction holds the entry count at
// the cap.
func TestPlanCacheCapBounded(t *testing.T) {
	db, s := newSession(t)
	buildScores(t, db, 1, 5)
	c := NewPlanCache(db.Store().Obs())
	s.SetPlanCache(c)
	mustExec(t, s, "range of n is NOTE")
	// Same shape every time would collapse to one entry; vary the
	// variable name, which is part of the key.
	for i := 0; i < planCacheCap+40; i++ {
		v := fmt.Sprintf("v%d", i)
		mustExec(t, s, fmt.Sprintf("range of %s is NOTE", v))
		mustExec(t, s, fmt.Sprintf(`retrieve (%s.name) where %s.pitch > 0`, v, v))
	}
	if got := c.Len(); got > planCacheCap {
		t.Fatalf("cache holds %d entries, cap is %d", got, planCacheCap)
	}
	if got := c.Len(); got != planCacheCap {
		t.Fatalf("cache holds %d entries after overflow, want exactly %d", got, planCacheCap)
	}
}
