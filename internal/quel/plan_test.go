package quel

import (
	"strings"
	"testing"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/value"
)

// setupPlanned builds a schema with a secondary index and an equi-join
// edge: CHORD(name) and NOTE(name, pitch, chord) with NOTE.pitch
// indexed, two chords, six notes.
func setupPlanned(t testing.TB, db *model.Database) {
	t.Helper()
	if _, err := ddl.Exec(db, `
define entity CHORD (name = integer)
define entity NOTE (name = integer, pitch = integer, chord = integer)
define ordering note_in_chord (NOTE) under CHORD
define index on NOTE (pitch)
`); err != nil {
		t.Fatal(err)
	}
	chords := make([]value.Ref, 2)
	for i := range chords {
		chords[i], _ = db.NewEntity("CHORD", model.Attrs{"name": value.Int(int64(i + 1))})
	}
	for i := 1; i <= 6; i++ {
		n, _ := db.NewEntity("NOTE", model.Attrs{
			"name":  value.Int(int64(i)),
			"pitch": value.Int(int64(59 + i)),
			"chord": value.Int(int64(i%2 + 1)),
		})
		if err := db.InsertChild("note_in_chord", chords[i%2], n, model.Last()); err != nil {
			t.Fatal(err)
		}
	}
}

func assertPlan(t *testing.T, got, want []string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("plan:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

func TestExplainIndexScan(t *testing.T) {
	db, s := newSession(t)
	setupPlanned(t, db)
	got := planLines(t, s,
		`explain retrieve (NOTE.name) where NOTE.pitch >= 61 and NOTE.pitch < 63`)
	want := []string{
		`Retrieve (rows=2) (time=X)`,
		`  Filter: ((NOTE.pitch >= 61) and (NOTE.pitch < 63)) (in=2, out=2)`,
		`    IndexScan NOTE on NOTE using ix_note_pitch [pitch >= 61 and pitch < 63] (est=2, scanned=2, kept=2) (time=X)`,
		`      Sarg: NOTE.pitch >= 61 and NOTE.pitch < 63`,
	}
	assertPlan(t, got, want)
}

func TestExplainHashJoinReorder(t *testing.T) {
	db, s := newSession(t)
	setupPlanned(t, db)
	mustExec(t, s, `range of n is NOTE
range of c is CHORD`)
	// c scans first despite n being alphabetically later work: its sarg
	// leaves one binding, so the planner reorders and hashes n on the
	// equi-conjunct instead of looping 6 combinations per chord.
	got := planLines(t, s,
		`explain retrieve (n.name) where n.chord = c.name and c.name = 1`)
	want := []string{
		`Retrieve (rows=3) (time=X)`,
		`  Filter: ((n.chord = c.name) and (c.name = 1)) (in=3, out=3)`,
		`    HashJoin (n.chord = c.name) (est=6, build=6, probes=1, hits=3)`,
		`      Scan c on CHORD (est=2, scanned=2, kept=1) (time=X)`,
		`        Sarg: c.name = 1`,
		`      Scan n on NOTE (est=6, scanned=6, kept=6) (time=X)`,
	}
	assertPlan(t, got, want)
}

func TestExplainSortElision(t *testing.T) {
	db, s := newSession(t)
	setupPlanned(t, db)
	got := planLines(t, s, `explain retrieve (p = NOTE.pitch) sort by p desc`)
	want := []string{
		`Retrieve (rows=6) (time=X)`,
		`  Sort: p desc (satisfied by IndexScan ix_note_pitch)`,
		`    IndexScan NOTE on NOTE using ix_note_pitch (est=6, scanned=6, kept=6) (time=X)`,
	}
	assertPlan(t, got, want)
	// The elided sort must still produce descending output (the index is
	// read in reverse).
	res := mustExec(t, s, `retrieve (p = NOTE.pitch) sort by p desc`)
	for i := 1; i < len(res.Rows); i++ {
		if value.Compare(res.Rows[i-1][0], res.Rows[i][0]) < 0 {
			t.Fatalf("rows not descending: %v", res.Rows)
		}
	}
}

func TestExplainEmptyScanShortCircuit(t *testing.T) {
	db, s := newSession(t)
	setupPlanned(t, db)
	mustExec(t, s, `range of n is NOTE
range of c is CHORD`)
	got := planLines(t, s,
		`explain retrieve (n.name) where n.chord = c.name and c.name = 99`)
	want := []string{
		`Retrieve (rows=0) (time=X)`,
		`  Filter: ((n.chord = c.name) and (c.name = 99)) (in=0, out=0)`,
		`    NestedLoopJoin (est=12, actual=0)`,
		`      Scan c on CHORD (est=2, scanned=2, kept=0) (time=X)`,
		`        Sarg: c.name = 99`,
		`      Scan n on NOTE (est=6, skipped: earlier variable empty)`,
	}
	assertPlan(t, got, want)
}

// TestPlannerReplaceDeleteUseIndex confirms updates and deletes run
// through the same planner (index maintenance keeps subsequent range
// scans correct).
func TestPlannerReplaceDeleteUseIndex(t *testing.T) {
	db, s := newSession(t)
	setupPlanned(t, db)
	res := mustExec(t, s, `replace NOTE (pitch = NOTE.pitch + 10) where NOTE.pitch >= 63`)
	if res.Affected != 3 {
		t.Fatalf("replace affected = %d, want 3", res.Affected)
	}
	res = mustExec(t, s, `retrieve (NOTE.name) where NOTE.pitch >= 73`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows after replace = %d, want 3", len(res.Rows))
	}
	res = mustExec(t, s, `delete NOTE where NOTE.pitch >= 73`)
	if res.Affected != 3 {
		t.Fatalf("delete affected = %d, want 3", res.Affected)
	}
	if res := mustExec(t, s, `retrieve (NOTE.name)`); len(res.Rows) != 3 {
		t.Fatalf("remaining = %d, want 3", len(res.Rows))
	}
}

// TestPlanMetrics checks that plan-choice counters move when the
// corresponding paths run.
func TestPlanMetrics(t *testing.T) {
	db, s := newSession(t)
	setupPlanned(t, db)
	mustExec(t, s, `range of n is NOTE
range of c is CHORD`)
	mustExec(t, s, `retrieve (NOTE.name) where NOTE.pitch = 62`)
	mustExec(t, s, `retrieve (n.name) where n.chord = c.name`)
	mustExec(t, s, `retrieve (n.name) where n under c in note_in_chord`)
	reg := db.Store().Obs()
	for _, name := range []string{
		"quel.plan.scan.index", "quel.plan.scan.full",
		"quel.plan.join.hash", "quel.plan.join.probe",
		"quel.plan.hash.probes", "quel.plan.hash.hits",
	} {
		if reg.Counter(name).Value() == 0 {
			t.Fatalf("counter %s = 0", name)
		}
	}
}
