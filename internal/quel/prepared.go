package quel

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/value"
)

// ErrParam is the sentinel wrapped by every parameter-binding failure:
// wrong argument count, or an unbound placeholder reaching evaluation.
var ErrParam = errors.New("quel: parameter binding error")

// Prepared is a parsed, parameterized statement sequence.  It holds no
// session state, so one Prepared may be cached and executed by many
// sessions concurrently: binding substitutes the $n placeholders with
// argument literals into a fresh statement tree, leaving the parsed
// form untouched.  The substituted literals participate in sarg
// extraction and index selection exactly like inline literals, so a
// prepared statement plans as well as its spliced-text equivalent.
type Prepared struct {
	src     string
	stmts   []Stmt
	nParams int
}

// Prepare parses src into a reusable statement.  Placeholders are
// written $1, $2, ... and are 1-based.
func Prepare(src string) (*Prepared, error) {
	stmts, n, err := ParseParams(src)
	if err != nil {
		return nil, err
	}
	return &Prepared{src: src, stmts: stmts, nParams: n}, nil
}

// Src returns the source text the statement was prepared from.
func (p *Prepared) Src() string { return p.src }

// NumParams returns the number of arguments Exec requires (the highest
// placeholder index).
func (p *Prepared) NumParams() int { return p.nParams }

// Bind substitutes args into the prepared statements, returning a fresh
// statement list ready for execution.  The receiver is not modified.
func (p *Prepared) Bind(args ...value.Value) ([]Stmt, error) {
	if len(args) != p.nParams {
		return nil, fmt.Errorf("%w: statement takes %d argument(s), got %d", ErrParam, p.nParams, len(args))
	}
	if p.nParams == 0 {
		return p.stmts, nil
	}
	out := make([]Stmt, len(p.stmts))
	for i, st := range p.stmts {
		bound, err := bindStmt(st, args)
		if err != nil {
			return nil, err
		}
		out[i] = bound
	}
	return out, nil
}

// ExecPreparedCtx binds args into p and executes the result exactly as
// ExecCtx would execute the equivalent inline statements.
func (s *Session) ExecPreparedCtx(ctx context.Context, p *Prepared, args ...value.Value) (*Result, error) {
	stmts, err := p.Bind(args...)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		start := time.Now()
		r, err := s.execOne(ctx, st)
		s.m.stmt.ObserveSince(start)
		s.m.trace.Emit("quel.stmt", stmtKind(st), start, time.Since(start))
		if err != nil {
			return nil, err
		}
		if r != nil {
			last = r
		}
	}
	if last == nil {
		last = &Result{}
	}
	return last, nil
}

// bindStmt returns st with every Param replaced by the matching
// argument literal.
func bindStmt(st Stmt, args []value.Value) (Stmt, error) {
	switch q := st.(type) {
	case RangeStmt:
		return q, nil
	case Retrieve:
		out := q
		out.Targets = make([]Target, len(q.Targets))
		for i, t := range q.Targets {
			bt := t
			if t.Expr != nil {
				e, err := bindExpr(t.Expr, args)
				if err != nil {
					return nil, err
				}
				bt.Expr = e
			}
			out.Targets[i] = bt
		}
		var err error
		if out.Where, err = bindOptExpr(q.Where, args); err != nil {
			return nil, err
		}
		return out, nil
	case Append:
		out := q
		assigns, err := bindAssigns(q.Assigns, args)
		if err != nil {
			return nil, err
		}
		out.Assigns = assigns
		return out, nil
	case Replace:
		out := q
		assigns, err := bindAssigns(q.Assigns, args)
		if err != nil {
			return nil, err
		}
		out.Assigns = assigns
		if out.Where, err = bindOptExpr(q.Where, args); err != nil {
			return nil, err
		}
		return out, nil
	case Delete:
		out := q
		var err error
		if out.Where, err = bindOptExpr(q.Where, args); err != nil {
			return nil, err
		}
		return out, nil
	case Explain:
		inner, err := bindStmt(q.Stmt, args)
		if err != nil {
			return nil, err
		}
		return Explain{Stmt: inner}, nil
	}
	return nil, fmt.Errorf("quel: cannot bind unknown statement %T", st)
}

func bindAssigns(assigns []Assign, args []value.Value) ([]Assign, error) {
	out := make([]Assign, len(assigns))
	for i, a := range assigns {
		e, err := bindExpr(a.Expr, args)
		if err != nil {
			return nil, err
		}
		out[i] = Assign{Attr: a.Attr, Expr: e}
	}
	return out, nil
}

func bindOptExpr(e Expr, args []value.Value) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	return bindExpr(e, args)
}

// bindExpr rewrites e with Params replaced by literals.  Subtrees
// without placeholders are shared, not copied.
func bindExpr(e Expr, args []value.Value) (Expr, error) {
	switch x := e.(type) {
	case Param:
		if x.Idx < 1 || x.Idx > len(args) {
			return nil, fmt.Errorf("%w: placeholder $%d out of range (have %d argument(s))", ErrParam, x.Idx, len(args))
		}
		return Lit{V: args[x.Idx-1]}, nil
	case Lit, AttrRef, VarRef:
		return e, nil
	case Binary:
		l, err := bindExpr(x.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.R, args)
		if err != nil {
			return nil, err
		}
		return Binary{Op: x.Op, L: l, R: r}, nil
	case Unary:
		inner, err := bindExpr(x.X, args)
		if err != nil {
			return nil, err
		}
		return Unary{Op: x.Op, X: inner}, nil
	case IsOp:
		l, err := bindExpr(x.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.R, args)
		if err != nil {
			return nil, err
		}
		return IsOp{L: l, R: r}, nil
	case OrderOp:
		l, err := bindExpr(x.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.R, args)
		if err != nil {
			return nil, err
		}
		return OrderOp{Op: x.Op, L: l, R: r, Order: x.Order}, nil
	case IncipitOp:
		l, err := bindExpr(x.L, args)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.R, args)
		if err != nil {
			return nil, err
		}
		return IncipitOp{L: l, R: r}, nil
	case Agg:
		w, err := bindOptExpr(x.Where, args)
		if err != nil {
			return nil, err
		}
		return Agg{Fn: x.Fn, Var: x.Var, Attr: x.Attr, Where: w}, nil
	}
	return nil, fmt.Errorf("quel: cannot bind unknown expression %T", e)
}
