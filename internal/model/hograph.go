package model

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// HOEdge is one edge of a hierarchical-ordering graph (one define
// ordering statement, §5.5): the parent type and the ordered child types.
type HOEdge struct {
	Ordering string
	Parent   string
	Children []string
}

// HOGraph is the schema-level hierarchical-ordering graph: every entity
// type that participates in an ordering, plus one edge per ordering.
type HOGraph struct {
	Nodes []string
	Edges []HOEdge
}

// HOGraph builds the HO graph of the current schema, restricted to the
// named orderings (all orderings when names is empty).  Figures 7, 8(a),
// 9, and 13 of the paper are renderings of such graphs.
func (db *Database) HOGraph(names ...string) *HOGraph {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(names) == 0 {
		names = make([]string, 0, len(db.orderings))
		for n := range db.orderings {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	g := &HOGraph{}
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			g.Nodes = append(g.Nodes, n)
		}
	}
	for _, name := range names {
		o, ok := db.orderings[name]
		if !ok {
			continue
		}
		addNode(o.Parent)
		for _, c := range o.Children {
			addNode(c)
		}
		g.Edges = append(g.Edges, HOEdge{
			Ordering: o.Name,
			Parent:   o.Parent,
			Children: append([]string(nil), o.Children...),
		})
	}
	return g
}

// InstanceNode is one node of an instance graph: an entity with a display
// label (its type and surrogate, plus an optional attribute value).
type InstanceNode struct {
	Ref   value.Ref
	Type  string
	Label string
}

// InstanceEdge is a P-edge (child → parent) or S-edge (sibling → next
// sibling) of an instance graph (§5.3).
type InstanceEdge struct {
	From, To value.Ref
	Ordering string
}

// InstanceGraph is the pictorial representation of hierarchically
// ordered data (§5.3, figures 6 and 8(c)).
type InstanceGraph struct {
	Nodes  []InstanceNode
	PEdges []InstanceEdge
	SEdges []InstanceEdge
}

// InstanceGraph builds the instance graph of the subtree rooted at root,
// following the named orderings (all orderings when names is empty).
// labelAttr, when non-empty, names an attribute whose value labels each
// node (falling back to the type name).
func (db *Database) InstanceGraph(root value.Ref, labelAttr string, names ...string) (*InstanceGraph, error) {
	db.mu.RLock()
	if len(names) == 0 {
		names = make([]string, 0, len(db.orderings))
		for n := range db.orderings {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	runtimes := make(map[string]*orderRuntime, len(names))
	for _, n := range names {
		if rt, ok := db.orders[n]; ok {
			runtimes[n] = rt
		}
	}
	db.mu.RUnlock()

	g := &InstanceGraph{}
	visited := map[value.Ref]bool{}
	var visit func(ref value.Ref) error
	visit = func(ref value.Ref) error {
		if visited[ref] {
			return nil
		}
		visited[ref] = true
		typeName, ok := db.TypeOf(ref)
		if !ok {
			return fmt.Errorf("%w: @%d", ErrNoEntity, ref)
		}
		label := typeName
		if labelAttr != "" {
			if v, err := db.Attr(ref, labelAttr); err == nil && !v.IsNull() {
				label = v.String()
			}
		}
		g.Nodes = append(g.Nodes, InstanceNode{Ref: ref, Type: typeName, Label: label})
		for _, name := range names {
			rt, ok := runtimes[name]
			if !ok {
				continue
			}
			db.mu.RLock()
			kids := rt.childrenOf(ref)
			db.mu.RUnlock()
			for i, k := range kids {
				g.PEdges = append(g.PEdges, InstanceEdge{From: k, To: ref, Ordering: name})
				if i > 0 {
					g.SEdges = append(g.SEdges, InstanceEdge{From: kids[i-1], To: k, Ordering: name})
				}
			}
			for _, k := range kids {
				if err := visit(k); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := visit(root); err != nil {
		return nil, err
	}
	return g, nil
}
