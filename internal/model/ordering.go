package model

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/value"
)

// rankGap is the spacing between consecutive sibling ranks.  New siblings
// inserted between neighbors take the midpoint; when the midpoint
// collides (gap exhausted), the whole sibling list is renumbered with
// fresh gaps.  2^20 allows twenty levels of repeated bisection between
// any two appends before a renumber.
const rankGap int64 = 1 << 20

// childPos records where a child entity sits in one ordering's instance
// graph: its parent (P-edge), its rank (S-order), and the storage row
// holding the edge.
type childPos struct {
	parent value.Ref
	rank   int64
	rowID  storage.RowID
}

// orderRuntime is the in-memory index for one ordering: per-parent
// rank-ordered sibling trees, and a child → position map.
type orderRuntime struct {
	siblings map[value.Ref]*btree.Tree // parent → tree of rankKey → child ref
	child    map[value.Ref]childPos
}

func newOrderRuntime() *orderRuntime {
	return &orderRuntime{
		siblings: make(map[value.Ref]*btree.Tree),
		child:    make(map[value.Ref]childPos),
	}
}

// rankKey encodes a signed rank so byte order matches numeric order.
func rankKey(rank int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(rank)^(1<<63))
	return b[:]
}

// attach records an edge in the runtime (used by load and by mutation).
func (rt *orderRuntime) attach(parent, child value.Ref, rank int64, rowID storage.RowID) {
	tr := rt.siblings[parent]
	if tr == nil {
		tr = btree.New()
		rt.siblings[parent] = tr
	}
	tr.Set(rankKey(rank), uint64(child))
	rt.child[child] = childPos{parent: parent, rank: rank, rowID: rowID}
}

// detach removes a child's edge from the runtime.
func (rt *orderRuntime) detach(child value.Ref) {
	cp, ok := rt.child[child]
	if !ok {
		return
	}
	if tr := rt.siblings[cp.parent]; tr != nil {
		tr.Delete(rankKey(cp.rank))
		if tr.Len() == 0 {
			delete(rt.siblings, cp.parent)
		}
	}
	delete(rt.child, child)
}

// childCount returns the number of children under parent.
func (rt *orderRuntime) childCount(parent value.Ref) int {
	if tr := rt.siblings[parent]; tr != nil {
		return tr.Len()
	}
	return 0
}

// childrenOf returns the ordered children of parent.
func (rt *orderRuntime) childrenOf(parent value.Ref) []value.Ref {
	tr := rt.siblings[parent]
	if tr == nil {
		return nil
	}
	out := make([]value.Ref, 0, tr.Len())
	tr.Ascend(nil, nil, func(_ []byte, v uint64) bool {
		out = append(out, value.Ref(v))
		return true
	})
	return out
}

// Position is where to insert a child within its siblings.
type Position struct {
	kind    posKind
	sibling value.Ref // for before/after
	index   int       // for at
}

type posKind uint8

const (
	posLast posKind = iota
	posFirst
	posBefore
	posAfter
	posAt
)

// Last appends after all existing siblings.
func Last() Position { return Position{kind: posLast} }

// First prepends before all existing siblings.
func First() Position { return Position{kind: posFirst} }

// Before places the child immediately before sibling.
func Before(sibling value.Ref) Position { return Position{kind: posBefore, sibling: sibling} }

// After places the child immediately after sibling.
func After(sibling value.Ref) Position { return Position{kind: posAfter, sibling: sibling} }

// At places the child at ordinal position i (0-based) among the siblings.
func At(i int) Position { return Position{kind: posAt, index: i} }

// InsertChild places child under parent in the named ordering at the
// given position.  It enforces the §5.5 well-formedness restrictions:
//
//   - child's type must be one of the ordering's declared child types,
//     and parent's type must be the declared parent type;
//   - child may have at most one parent per ordering (a second insertion
//     without removal returns ErrAlreadyChild);
//   - for recursive orderings, the insertion must not create a P-edge
//     cycle (an instance "part of itself"): ErrPCycle.
//
// S-edge cycles cannot arise structurally: sibling order is a total order
// induced by integer ranks.
func (db *Database) InsertChild(ordering string, parent, child value.Ref, pos Position) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertChildLocked(ordering, parent, child, pos)
}

func (db *Database) insertChildLocked(ordering string, parent, child value.Ref, pos Position) error {
	o, ok := db.orderings[ordering]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	rt := db.orders[ordering]
	ploc, ok := db.directory[parent]
	if !ok {
		return fmt.Errorf("%w: parent @%d", ErrNoEntity, parent)
	}
	cloc, ok := db.directory[child]
	if !ok {
		return fmt.Errorf("%w: child @%d", ErrNoEntity, child)
	}
	if ploc.typeName != o.Parent {
		return fmt.Errorf("%w: %s is not parent type %s of ordering %s", ErrWrongParent, ploc.typeName, o.Parent, ordering)
	}
	if !o.hasChild(cloc.typeName) {
		return fmt.Errorf("%w: %s under ordering %s", ErrWrongChildType, cloc.typeName, ordering)
	}
	// P-cycle check: an entity may not be placed under itself (§5.5
	// disallows instance graphs where an instance is "part of" itself).
	if child == parent {
		return fmt.Errorf("%w: @%d under itself", ErrPCycle, child)
	}
	if _, exists := rt.child[child]; exists {
		return fmt.Errorf("%w: @%d in ordering %s", ErrAlreadyChild, child, ordering)
	}
	// Walking P-edges upward from parent must not reach child.
	for anc := parent; ; {
		cp, ok := rt.child[anc]
		if !ok {
			break
		}
		if cp.parent == child {
			return fmt.Errorf("%w: @%d is an ancestor of @%d in ordering %s", ErrPCycle, child, parent, ordering)
		}
		anc = cp.parent
	}

	rank, needRenumber := db.chooseRank(rt, parent, pos)
	if needRenumber {
		if err := db.renumberLocked(ordering, parent); err != nil {
			return err
		}
		rank, needRenumber = db.chooseRank(rt, parent, pos)
		if needRenumber {
			return fmt.Errorf("model: ordering %s: rank space exhausted after renumber", ordering)
		}
	}
	var rowID storage.RowID
	err := db.store.Run(func(tx *storage.Tx) error {
		var err error
		rowID, err = tx.Insert(ordPrefix+ordering, value.Tuple{
			value.RefVal(parent), value.RefVal(child), value.Int(rank),
		})
		return err
	})
	if err != nil {
		return err
	}
	rt.attach(parent, child, rank, rowID)
	return nil
}

// chooseRank computes the rank for an insertion at pos under parent,
// reporting whether a renumber is needed first (no integer strictly
// between the neighbors).
func (db *Database) chooseRank(rt *orderRuntime, parent value.Ref, pos Position) (int64, bool) {
	tr := rt.siblings[parent]
	n := 0
	if tr != nil {
		n = tr.Len()
	}
	if n == 0 {
		return 0, false
	}
	// Resolve the insertion point to neighbor ranks.
	var loRank, hiRank int64
	var haveLo, haveHi bool
	switch pos.kind {
	case posLast:
		k, _, _ := tr.At(n - 1)
		loRank, haveLo = decodeRank(k), true
	case posFirst:
		k, _, _ := tr.At(0)
		hiRank, haveHi = decodeRank(k), true
	case posBefore:
		cp, ok := rt.child[pos.sibling]
		if !ok || cp.parent != parent {
			// Treated as append; callers validate siblings beforehand.
			k, _, _ := tr.At(n - 1)
			loRank, haveLo = decodeRank(k), true
			break
		}
		hiRank, haveHi = cp.rank, true
		if r := tr.Rank(rankKey(cp.rank)); r > 0 {
			k, _, _ := tr.At(r - 1)
			loRank, haveLo = decodeRank(k), true
		}
	case posAfter:
		cp, ok := rt.child[pos.sibling]
		if !ok || cp.parent != parent {
			k, _, _ := tr.At(n - 1)
			loRank, haveLo = decodeRank(k), true
			break
		}
		loRank, haveLo = cp.rank, true
		if r := tr.Rank(rankKey(cp.rank)); r+1 < n {
			k, _, _ := tr.At(r + 1)
			hiRank, haveHi = decodeRank(k), true
		}
	case posAt:
		i := pos.index
		if i < 0 {
			i = 0
		}
		if i >= n {
			k, _, _ := tr.At(n - 1)
			loRank, haveLo = decodeRank(k), true
			break
		}
		k, _, _ := tr.At(i)
		hiRank, haveHi = decodeRank(k), true
		if i > 0 {
			k, _, _ := tr.At(i - 1)
			loRank, haveLo = decodeRank(k), true
		}
	}
	switch {
	case haveLo && haveHi:
		if hiRank-loRank < 2 {
			return 0, true
		}
		return loRank + (hiRank-loRank)/2, false
	case haveLo:
		return loRank + rankGap, false
	case haveHi:
		return hiRank - rankGap, false
	default:
		return 0, false
	}
}

func decodeRank(key []byte) int64 {
	return int64(binary.BigEndian.Uint64(key) ^ (1 << 63))
}

// renumberLocked rewrites the ranks of all children under parent with
// fresh rankGap spacing, updating both storage and the runtime.
func (db *Database) renumberLocked(ordering string, parent value.Ref) error {
	rt := db.orders[ordering]
	kids := rt.childrenOf(parent)
	err := db.store.Run(func(tx *storage.Tx) error {
		for i, c := range kids {
			cp := rt.child[c]
			if err := tx.UpdateField(ordPrefix+ordering, cp.rowID, "rank", value.Int(int64(i)*rankGap)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	tr := btree.New()
	for i, c := range kids {
		cp := rt.child[c]
		cp.rank = int64(i) * rankGap
		rt.child[c] = cp
		tr.Set(rankKey(cp.rank), uint64(c))
	}
	rt.siblings[parent] = tr
	return nil
}

// RemoveChild detaches child from its parent in the named ordering.
func (db *Database) RemoveChild(ordering string, child value.Ref) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.removeChildLocked(ordering, child)
}

func (db *Database) removeChildLocked(ordering string, child value.Ref) error {
	return db.removeChildLockedCtx(context.Background(), ordering, child)
}

func (db *Database) removeChildLockedCtx(ctx context.Context, ordering string, child value.Ref) error {
	rt, ok := db.orders[ordering]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	cp, ok := rt.child[child]
	if !ok {
		return fmt.Errorf("model: @%d is not a child in ordering %s", child, ordering)
	}
	err := db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		return tx.Delete(ordPrefix+ordering, cp.rowID)
	})
	if err != nil {
		return err
	}
	rt.detach(child)
	return nil
}

// MoveChild repositions child among its current siblings.
func (db *Database) MoveChild(ordering string, child value.Ref, pos Position) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	cp, ok := rt.child[child]
	if !ok {
		return fmt.Errorf("model: @%d is not a child in ordering %s", child, ordering)
	}
	parent := cp.parent
	if err := db.removeChildLocked(ordering, child); err != nil {
		return err
	}
	return db.insertChildLocked(ordering, parent, child, pos)
}

// Children returns the ordered children of parent in the named ordering.
func (db *Database) Children(ordering string, parent value.Ref) ([]value.Ref, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	return rt.childrenOf(parent), nil
}

// ChildAt returns the i'th (0-based) child of parent in the ordering.
// This is the "third note in chord x" query of §5.4.
func (db *Database) ChildAt(ordering string, parent value.Ref, i int) (value.Ref, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	tr := rt.siblings[parent]
	if tr == nil {
		return 0, fmt.Errorf("model: @%d has no children in ordering %s", parent, ordering)
	}
	_, v, ok := tr.At(i)
	if !ok {
		return 0, fmt.Errorf("model: @%d has no child at position %d in ordering %s (have %d)", parent, i, ordering, tr.Len())
	}
	return value.Ref(v), nil
}

// ParentOf returns the parent of child in the named ordering (the P-edge),
// if any.
func (db *Database) ParentOf(ordering string, child value.Ref) (value.Ref, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return 0, false
	}
	cp, ok := rt.child[child]
	if !ok {
		return 0, false
	}
	return cp.parent, true
}

// IndexOf returns the ordinal position (0-based) of child among its
// siblings in the named ordering.
func (db *Database) IndexOf(ordering string, child value.Ref) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	cp, ok := rt.child[child]
	if !ok {
		return 0, fmt.Errorf("model: @%d is not a child in ordering %s", child, ordering)
	}
	tr := rt.siblings[cp.parent]
	return tr.Rank(rankKey(cp.rank)), nil
}

// BeforeIn implements the before operator of §5.6: true iff a and b have
// the same parent in the ordering and a precedes b.  Entities with
// different parents are not comparable and yield false.
func (db *Database) BeforeIn(ordering string, a, b value.Ref) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	ca, okA := rt.child[a]
	cb, okB := rt.child[b]
	if !okA || !okB || ca.parent != cb.parent {
		return false, nil
	}
	return ca.rank < cb.rank, nil
}

// AfterIn implements the after operator of §5.6.
func (db *Database) AfterIn(ordering string, a, b value.Ref) (bool, error) {
	return db.BeforeIn(ordering, b, a)
}

// UnderIn implements the under operator of §5.6: true iff child's P-edge
// in the ordering points at parent.
func (db *Database) UnderIn(ordering string, child, parent value.Ref) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	cp, ok := rt.child[child]
	return ok && cp.parent == parent, nil
}

// ChildPosition returns child's P-edge parent and rank in the named
// ordering, with ok false if child is not placed in it.  Unlike
// BeforeIn/IndexOf this is a single map lookup: the query layer caches
// positions per statement and compares ranks directly, so one join does
// not re-walk the sibling structures for every binding pair.
func (db *Database) ChildPosition(ordering string, child value.Ref) (parent value.Ref, rank int64, ok bool, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, exists := db.orders[ordering]
	if !exists {
		return 0, 0, false, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	cp, ok := rt.child[child]
	return cp.parent, cp.rank, ok, nil
}

// SiblingsBefore returns, in sibling order, the children that precede
// child under its parent in the named ordering — exactly the refs x for
// which `x before child` holds.  It is a rank-key range scan over the
// sibling B-tree, so the query planner can probe `before` conjuncts
// instead of testing every candidate pair.  A ref that is not a child in
// the ordering has no siblings.
func (db *Database) SiblingsBefore(ordering string, child value.Ref) ([]value.Ref, error) {
	return db.siblingRange(ordering, child, true)
}

// SiblingsAfter returns, in sibling order, the children that follow
// child under its parent in the named ordering (the refs x for which
// `x after child` holds).
func (db *Database) SiblingsAfter(ordering string, child value.Ref) ([]value.Ref, error) {
	return db.siblingRange(ordering, child, false)
}

func (db *Database) siblingRange(ordering string, child value.Ref, before bool) ([]value.Ref, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	cp, ok := rt.child[child]
	if !ok {
		return nil, nil
	}
	tr := rt.siblings[cp.parent]
	if tr == nil {
		return nil, nil
	}
	var out []value.Ref
	collect := func(_ []byte, v uint64) bool {
		out = append(out, value.Ref(v))
		return true
	}
	if before {
		tr.Ascend(nil, rankKey(cp.rank), collect)
	} else {
		// Rank keys are exactly 8 bytes, so appending a zero byte forms
		// the smallest key strictly greater than child's own.
		tr.Ascend(append(rankKey(cp.rank), 0), nil, collect)
	}
	return out, nil
}

// NextSibling returns the sibling immediately after child, if any.
func (db *Database) NextSibling(ordering string, child value.Ref) (value.Ref, bool) {
	return db.adjacentSibling(ordering, child, +1)
}

// PrevSibling returns the sibling immediately before child, if any.
func (db *Database) PrevSibling(ordering string, child value.Ref) (value.Ref, bool) {
	return db.adjacentSibling(ordering, child, -1)
}

func (db *Database) adjacentSibling(ordering string, child value.Ref, dir int) (value.Ref, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return 0, false
	}
	cp, ok := rt.child[child]
	if !ok {
		return 0, false
	}
	tr := rt.siblings[cp.parent]
	i := tr.Rank(rankKey(cp.rank)) + dir
	_, v, ok := tr.At(i)
	if !ok {
		return 0, false
	}
	return value.Ref(v), true
}

// Walk traverses the subtree rooted at root in the named ordering,
// depth-first and in sibling order, calling fn with each entity and its
// depth (root is depth 0).  Traversal stops if fn returns false.  For
// recursive orderings (§5.5, beam groups) this is the natural structural
// traversal.
func (db *Database) Walk(ordering string, root value.Ref, fn func(ref value.Ref, depth int) bool) error {
	db.mu.RLock()
	rt, ok := db.orders[ordering]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	var walk func(ref value.Ref, depth int) bool
	walk = func(ref value.Ref, depth int) bool {
		if !fn(ref, depth) {
			return false
		}
		db.mu.RLock()
		kids := rt.childrenOf(ref)
		db.mu.RUnlock()
		for _, k := range kids {
			if !walk(k, depth+1) {
				return false
			}
		}
		return true
	}
	walk(root, 0)
	return nil
}

// Roots returns the entities that are parents in the ordering but not
// children of any other entity in the same ordering, in surrogate order.
func (db *Database) Roots(ordering string) ([]value.Ref, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.orders[ordering]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	var roots []value.Ref
	for p := range rt.siblings {
		if _, isChild := rt.child[p]; !isChild {
			roots = append(roots, p)
		}
	}
	sortRefs(roots)
	return roots, nil
}

func sortRefs(refs []value.Ref) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j] < refs[j-1]; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}
