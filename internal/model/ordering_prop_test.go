package model

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// TestOrderingMatchesReferenceModel drives the ordering implementation
// with a long random operation sequence and checks it against a plain
// slice reference model after every operation batch.  This exercises the
// gap-rank machinery (bisection, renumbering) far beyond the unit tests.
func TestOrderingMatchesReferenceModel(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	chord, _ := db.NewEntity("CHORD", nil)

	rng := rand.New(rand.NewSource(20260704))
	var ref []value.Ref // reference model: ordered slice of children

	indexIn := func(r value.Ref) int {
		for i, x := range ref {
			if x == r {
				return i
			}
		}
		return -1
	}
	newNote := func() value.Ref {
		n, err := db.NewEntity("NOTE", nil)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	insertAt := func(i int, r value.Ref) {
		ref = append(ref, 0)
		copy(ref[i+1:], ref[i:])
		ref[i] = r
	}

	const ops = 1500
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 3: // append
			n := newNote()
			if err := db.InsertChild("note_in_chord", chord, n, Last()); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, n)
		case r < 4: // prepend
			n := newNote()
			if err := db.InsertChild("note_in_chord", chord, n, First()); err != nil {
				t.Fatal(err)
			}
			insertAt(0, n)
		case r < 6 && len(ref) > 0: // insert before random sibling
			i := rng.Intn(len(ref))
			n := newNote()
			if err := db.InsertChild("note_in_chord", chord, n, Before(ref[i])); err != nil {
				t.Fatal(err)
			}
			insertAt(i, n)
		case r < 8 && len(ref) > 0: // insert after random sibling
			i := rng.Intn(len(ref))
			n := newNote()
			if err := db.InsertChild("note_in_chord", chord, n, After(ref[i])); err != nil {
				t.Fatal(err)
			}
			insertAt(i+1, n)
		case r < 9 && len(ref) > 0: // remove random child
			i := rng.Intn(len(ref))
			if err := db.RemoveChild("note_in_chord", ref[i]); err != nil {
				t.Fatal(err)
			}
			ref = append(ref[:i], ref[i+1:]...)
		case len(ref) > 1: // move random child to random position
			i := rng.Intn(len(ref))
			j := rng.Intn(len(ref))
			n := ref[i]
			if err := db.MoveChild("note_in_chord", n, At(j)); err != nil {
				t.Fatal(err)
			}
			ref = append(ref[:i], ref[i+1:]...)
			if j > len(ref) {
				j = len(ref)
			}
			insertAt(min(j, len(ref)), n)
		}

		if op%100 == 0 || op == ops-1 {
			got, err := db.Children("note_in_chord", chord)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("op %d: length %d want %d", op, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("op %d: position %d has @%d want @%d", op, i, got[i], ref[i])
				}
			}
			// Spot-check operators against the reference.
			if len(ref) >= 2 {
				a, b := rng.Intn(len(ref)), rng.Intn(len(ref))
				before, _ := db.BeforeIn("note_in_chord", ref[a], ref[b])
				if before != (a < b) {
					t.Fatalf("op %d: before(%d,%d) = %v", op, a, b, before)
				}
				idx, err := db.IndexOf("note_in_chord", ref[a])
				if err != nil || idx != a {
					t.Fatalf("op %d: IndexOf = %d want %d (%v)", op, idx, a, err)
				}
				at, err := db.ChildAt("note_in_chord", chord, b)
				if err != nil || at != ref[b] {
					t.Fatalf("op %d: ChildAt(%d) mismatch", op, b)
				}
			}
		}
	}

	// MoveChild reference-model check is position-sensitive; verify the
	// final state one more time via IndexOf for every child.
	for i, r := range ref {
		idx, err := db.IndexOf("note_in_chord", r)
		if err != nil || idx != i {
			t.Fatalf("final IndexOf(@%d) = %d want %d", r, idx, i)
		}
		if p := indexIn(r); p != i {
			t.Fatalf("reference model self-check failed")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkInsertLast(b *testing.B) {
	db := memModel(b)
	defineChordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	notes, _ := db.NewEntities("NOTE", b.N, func(int) Attrs { return nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertChild("note_in_chord", chord, notes[i], Last()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertMiddle(b *testing.B) {
	db := memModel(b)
	defineChordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	notes, _ := db.NewEntities("NOTE", b.N+2, func(int) Attrs { return nil })
	db.InsertChild("note_in_chord", chord, notes[b.N], Last())
	db.InsertChild("note_in_chord", chord, notes[b.N+1], Last())
	anchor := notes[b.N+1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertChild("note_in_chord", chord, notes[i], Before(anchor)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeforeOperator(b *testing.B) {
	db := memModel(b)
	defineChordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	const n = 10000
	notes, _ := db.NewEntities("NOTE", n, func(int) Attrs { return nil })
	for _, note := range notes {
		db.InsertChild("note_in_chord", chord, note, Last())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.BeforeIn("note_in_chord", notes[i%n], notes[(i*7)%n])
	}
}

func BenchmarkChildAt(b *testing.B) {
	db := memModel(b)
	defineChordSchema(b, db)
	chord, _ := db.NewEntity("CHORD", nil)
	const n = 10000
	notes, _ := db.NewEntities("NOTE", n, func(int) Attrs { return nil })
	for _, note := range notes {
		db.InsertChild("note_in_chord", chord, note, Last())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ChildAt("note_in_chord", chord, i%n)
	}
}
