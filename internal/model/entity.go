package model

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/value"
)

// Attrs is a convenience map for entity attribute values by name.
type Attrs map[string]value.Value

// NewEntity creates an entity instance of the named type with the given
// attribute values (missing attributes are null) and returns its
// surrogate reference.
func (db *Database) NewEntity(typeName string, attrs Attrs) (value.Ref, error) {
	return db.NewEntityCtx(context.Background(), typeName, attrs)
}

// NewEntityCtx is NewEntity under a context: a blocked lock wait in the
// underlying transaction aborts with txn.ErrCanceled when ctx is
// canceled or its deadline passes.
//
// Unlike the other mutators, entity creation does NOT hold the model
// mutex across its storage transaction: concurrent sessions appending
// to different types must be able to reach the group-commit pipeline
// together, and a commit fsync under db.mu would serialize every
// session in the manager.  Isolation comes from the storage layer's
// relation locks; db.mu guards only the schema lookup and the directory
// update, so the directory entry for a new ref trails its relation row
// by an instant.
func (db *Database) NewEntityCtx(ctx context.Context, typeName string, attrs Attrs) (value.Ref, error) {
	db.mu.RLock()
	et, ok := db.entities[typeName]
	db.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	for name := range attrs {
		if _, ok := et.AttrIndex(name); !ok {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoAttribute, typeName, name)
		}
	}
	ref := value.Ref(db.store.NextSeq("ref"))
	t := make(value.Tuple, len(et.Attrs)+1)
	t[0] = value.RefVal(ref)
	for i, a := range et.Attrs {
		if v, ok := attrs[a.Name]; ok {
			t[i+1] = v
		} else {
			t[i+1] = value.Null
		}
	}
	var rowID storage.RowID
	err := db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		var err error
		rowID, err = tx.Insert(entPrefix+typeName, t)
		return err
	})
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	db.directory[ref] = entityLoc{typeName: typeName, rowID: rowID}
	db.mu.Unlock()
	return ref, nil
}

// NewEntities creates n entities of the same type in a single
// transaction; attrs(i) supplies the attributes of the i'th.  It is the
// bulk-loading path used by score import.  Like NewEntityCtx it holds
// the model mutex only around the schema lookup and directory update,
// never across the commit.
func (db *Database) NewEntities(typeName string, n int, attrs func(i int) Attrs) ([]value.Ref, error) {
	db.mu.RLock()
	et, ok := db.entities[typeName]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	refs := make([]value.Ref, n)
	rowIDs := make([]storage.RowID, n)
	err := db.store.Run(func(tx *storage.Tx) error {
		for i := 0; i < n; i++ {
			ref := value.Ref(db.store.NextSeq("ref"))
			refs[i] = ref
			t := make(value.Tuple, len(et.Attrs)+1)
			t[0] = value.RefVal(ref)
			am := attrs(i)
			for j, a := range et.Attrs {
				if v, ok := am[a.Name]; ok {
					t[j+1] = v
				} else {
					t[j+1] = value.Null
				}
			}
			var err error
			rowIDs[i], err = tx.Insert(entPrefix+typeName, t)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	for i, ref := range refs {
		db.directory[ref] = entityLoc{typeName: typeName, rowID: rowIDs[i]}
	}
	db.mu.Unlock()
	return refs, nil
}

// TypeOf returns the entity type name of ref.
func (db *Database) TypeOf(ref value.Ref) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	loc, ok := db.directory[ref]
	return loc.typeName, ok
}

// Exists reports whether ref identifies a live entity.
func (db *Database) Exists(ref value.Ref) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.directory[ref]
	return ok
}

// Attr returns one attribute value of an entity.
func (db *Database) Attr(ref value.Ref, attr string) (value.Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.attrLocked(ref, attr)
}

func (db *Database) attrLocked(ref value.Ref, attr string) (value.Value, error) {
	loc, ok := db.directory[ref]
	if !ok {
		return value.Null, fmt.Errorf("%w: @%d", ErrNoEntity, ref)
	}
	et := db.entities[loc.typeName]
	i, ok := et.AttrIndex(attr)
	if !ok {
		return value.Null, fmt.Errorf("%w: %s.%s", ErrNoAttribute, loc.typeName, attr)
	}
	var out value.Value
	err := db.store.Run(func(tx *storage.Tx) error {
		t, err := tx.Get(entPrefix+loc.typeName, loc.rowID)
		if err != nil {
			return err
		}
		out = t[i+1]
		return nil
	})
	return out, err
}

// AttrTuple returns all attribute values of an entity, in schema order
// (excluding the surrogate).
func (db *Database) AttrTuple(ref value.Ref) (value.Tuple, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	loc, ok := db.directory[ref]
	if !ok {
		return nil, fmt.Errorf("%w: @%d", ErrNoEntity, ref)
	}
	var out value.Tuple
	err := db.store.Run(func(tx *storage.Tx) error {
		t, err := tx.Get(entPrefix+loc.typeName, loc.rowID)
		if err != nil {
			return err
		}
		out = t[1:].Clone()
		return nil
	})
	return out, err
}

// SetAttr updates one attribute value of an entity.
func (db *Database) SetAttr(ref value.Ref, attr string, v value.Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	loc, ok := db.directory[ref]
	if !ok {
		return fmt.Errorf("%w: @%d", ErrNoEntity, ref)
	}
	et := db.entities[loc.typeName]
	i, ok := et.AttrIndex(attr)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoAttribute, loc.typeName, attr)
	}
	return db.store.Run(func(tx *storage.Tx) error {
		return tx.UpdateField(entPrefix+loc.typeName, loc.rowID, et.Attrs[i].Name, v)
	})
}

// SetAttrs updates several attributes of an entity in one transaction.
func (db *Database) SetAttrs(ref value.Ref, attrs Attrs) error {
	return db.SetAttrsCtx(context.Background(), ref, attrs)
}

// SetAttrsCtx is SetAttrs under a context (see NewEntityCtx).
//
// Like NewEntityCtx it does not hold the model mutex across the storage
// transaction: the commit (and its fsync) must not serialize every
// session in the manager.  Isolation comes from the relation locks; the
// model mutex guards only the directory/schema lookup.
func (db *Database) SetAttrsCtx(ctx context.Context, ref value.Ref, attrs Attrs) error {
	db.mu.RLock()
	loc, ok := db.directory[ref]
	et := db.entities[loc.typeName]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: @%d", ErrNoEntity, ref)
	}
	return db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		// Declare write intent first: Get-then-Update would upgrade the
		// shared relation lock to exclusive, and concurrent upgraders on
		// the same relation deadlock each other every time.
		if err := tx.LockExclusive(entPrefix + loc.typeName); err != nil {
			return err
		}
		t, err := tx.Get(entPrefix+loc.typeName, loc.rowID)
		if err != nil {
			return err
		}
		nt := t.Clone()
		for name, v := range attrs {
			i, ok := et.AttrIndex(name)
			if !ok {
				return fmt.Errorf("%w: %s.%s", ErrNoAttribute, loc.typeName, name)
			}
			nt[i+1] = v
		}
		return tx.Update(entPrefix+loc.typeName, loc.rowID, nt)
	})
}

// DeleteEntity removes an entity instance.  The entity must not be a
// parent with children in any ordering (ErrHasChildren) — callers that
// want cascade semantics use DeleteSubtree.  The entity is detached from
// any orderings in which it is a child, and relationship instances that
// reference it are deleted.
func (db *Database) DeleteEntity(ref value.Ref) error {
	return db.DeleteEntityCtx(context.Background(), ref)
}

// DeleteEntityCtx is DeleteEntity under a context (see NewEntityCtx).
func (db *Database) DeleteEntityCtx(ctx context.Context, ref value.Ref) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteEntityLocked(ctx, ref)
}

func (db *Database) deleteEntityLocked(ctx context.Context, ref value.Ref) error {
	loc, ok := db.directory[ref]
	if !ok {
		return fmt.Errorf("%w: @%d", ErrNoEntity, ref)
	}
	for name, rt := range db.orders {
		if rt.childCount(ref) > 0 {
			return fmt.Errorf("%w: @%d in ordering %q", ErrHasChildren, ref, name)
		}
	}
	// Detach from orderings where ref is a child.
	for name, rt := range db.orders {
		if _, ok := rt.child[ref]; ok {
			if err := db.removeChildLockedCtx(ctx, name, ref); err != nil {
				return err
			}
		}
	}
	// Remove relationship instances referencing ref.
	for rname, rt := range db.relationships {
		relName := relPrefix + rname
		var doomed []storage.RowID
		err := db.store.RunCtx(ctx, func(tx *storage.Tx) error {
			for ri := range rt.Roles {
				if err := tx.IndexPrefixScan(relName, "by_"+rt.Roles[ri].Name,
					value.Tuple{value.RefVal(ref)},
					func(id storage.RowID, _ value.Tuple) bool {
						doomed = append(doomed, id)
						return true
					}); err != nil {
					return err
				}
			}
			for _, id := range doomed {
				if err := tx.Delete(relName, id); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	err := db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		return tx.Delete(entPrefix+loc.typeName, loc.rowID)
	})
	if err != nil {
		return err
	}
	delete(db.directory, ref)
	return nil
}

// DeleteSubtree removes an entity and, recursively, every child beneath
// it in every ordering ("cascade" deletion of a hierarchy).
func (db *Database) DeleteSubtree(ref value.Ref) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteSubtreeLocked(context.Background(), ref)
}

func (db *Database) deleteSubtreeLocked(ctx context.Context, ref value.Ref) error {
	for _, rt := range db.orders {
		for _, child := range rt.childrenOf(ref) {
			if err := db.deleteSubtreeLocked(ctx, child); err != nil {
				return err
			}
		}
	}
	return db.deleteEntityLocked(ctx, ref)
}

// Instances calls fn for every instance of the named entity type, in
// creation order, passing the surrogate and the attribute tuple
// (excluding the surrogate).  Iteration stops if fn returns false.
func (db *Database) Instances(typeName string, fn func(ref value.Ref, attrs value.Tuple) bool) error {
	return db.InstancesCtx(context.Background(), typeName, fn)
}

// InstancesCtx is Instances under a context (see NewEntityCtx).
func (db *Database) InstancesCtx(ctx context.Context, typeName string, fn func(ref value.Ref, attrs value.Tuple) bool) error {
	db.mu.RLock()
	if _, ok := db.entities[typeName]; !ok {
		db.mu.RUnlock()
		return fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	db.mu.RUnlock()
	return db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		return tx.Scan(entPrefix+typeName, func(_ storage.RowID, t value.Tuple) bool {
			return fn(t[0].AsRef(), t[1:])
		})
	})
}

// AttrIndexName returns the name of a secondary index on typeName whose
// leading key column is attr, if one exists.  The query planner uses it
// to turn a sargable predicate into an index range scan (§5.2's
// "ordering as a performance optimization").
func (db *Database) AttrIndexName(typeName, attr string) (string, bool) {
	rel := db.store.Relation(entPrefix + typeName)
	if rel == nil {
		return "", false
	}
	spec, ok := rel.IndexByColumn(attr)
	if !ok {
		return "", false
	}
	return spec.Name, true
}

// InstancesRangeCount returns the number of index entries of the named
// index on typeName within the encoded key range [lo, hi), computed from
// order statistics without scanning.  It returns -1 if the type or index
// does not exist.
func (db *Database) InstancesRangeCount(typeName, indexName string, lo, hi []byte) int {
	rel := db.store.Relation(entPrefix + typeName)
	if rel == nil {
		return -1
	}
	n, ok := rel.IndexRangeCount(indexName, lo, hi)
	if !ok {
		return -1
	}
	return n
}

// InstanceIndexStats returns planner statistics (distinct count,
// equi-depth histogram) for the named index on typeName, lazily
// refreshed by the storage layer.  It reports false if the type or
// index does not exist.
func (db *Database) InstanceIndexStats(typeName, indexName string) (storage.IndexStats, bool) {
	rel := db.store.Relation(entPrefix + typeName)
	if rel == nil {
		return storage.IndexStats{}, false
	}
	return rel.Stats(indexName)
}

// SplitInstancesRange returns up to parts-1 boundary keys dividing the
// named index's entries within [lo, hi) into roughly equal runs, for
// fanning one logical scan across parallel workers.  It reports false
// if the type or index does not exist.
func (db *Database) SplitInstancesRange(typeName, indexName string, lo, hi []byte, parts int) ([][]byte, bool) {
	rel := db.store.Relation(entPrefix + typeName)
	if rel == nil {
		return nil, false
	}
	return rel.SplitIndexRange(indexName, lo, hi, parts)
}

// InstancesRange calls fn for instances of the named entity type whose
// index key falls in [lo, hi), in index key order (descending when
// reverse is set).  Like Instances it passes the surrogate and the
// attribute tuple; iteration stops if fn returns false.
func (db *Database) InstancesRange(typeName, indexName string, lo, hi []byte, reverse bool, fn func(ref value.Ref, attrs value.Tuple) bool) error {
	return db.InstancesRangeCtx(context.Background(), typeName, indexName, lo, hi, reverse, fn)
}

// InstancesRangeCtx is InstancesRange under a context (see NewEntityCtx).
func (db *Database) InstancesRangeCtx(ctx context.Context, typeName, indexName string, lo, hi []byte, reverse bool, fn func(ref value.Ref, attrs value.Tuple) bool) error {
	db.mu.RLock()
	if _, ok := db.entities[typeName]; !ok {
		db.mu.RUnlock()
		return fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	db.mu.RUnlock()
	return db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		return tx.IndexRange(entPrefix+typeName, indexName, lo, hi, reverse, func(_ storage.RowID, t value.Tuple) bool {
			return fn(t[0].AsRef(), t[1:])
		})
	})
}

// Count returns the number of instances of the named entity type.
func (db *Database) Count(typeName string) int {
	rel := db.store.Relation(entPrefix + typeName)
	if rel == nil {
		return 0
	}
	return rel.Len()
}

// FindByAttr returns the refs of instances of typeName whose attribute
// equals v, in creation order.
func (db *Database) FindByAttr(typeName, attr string, v value.Value) ([]value.Ref, error) {
	var out []value.Ref
	et, ok := db.EntityType(typeName)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	i, ok := et.AttrIndex(attr)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoAttribute, typeName, attr)
	}
	err := db.Instances(typeName, func(ref value.Ref, attrs value.Tuple) bool {
		if attrs[i].Equal(v) {
			out = append(out, ref)
		}
		return true
	})
	return out, err
}
