// Package model implements the paper's data model: the entity-relationship
// model (Chen) extended with hierarchical ordering (§5).
//
// Entity types, relationship types, and orderings are declared in a
// schema; entity instances, relationship instances, and parent/child
// ordering edges are data.  Following §6.1 ("Storing the Schema Definition
// as Ordered Entities"), the schema itself is stored in catalog relations
// managed by the same storage engine as the data, blurring the
// schema/data distinction.
//
// Hierarchical ordering (§5.3–5.5) is the core extension.  An ordering
// groups an ordered set of child entities (of one or more types) under a
// parent entity.  The instance graph has P-edges (child → parent) and
// S-edges (sibling → next sibling); this implementation represents the
// S-order with gap-based integer ranks stored in an order-statistics
// B-tree per parent, so that
//
//   - "a before b" (§5.6) is an O(1) rank comparison after two O(1)
//     hash lookups,
//   - "the i'th child of p" is O(log n), and
//   - insertion at any position is amortized O(log n) with occasional
//     local renumbering when a rank gap is exhausted.
//
// All five ordering forms of §5.5 are supported: multiple levels of
// hierarchy, multiple orderings under one parent, inhomogeneous
// orderings, multiple parents (one per ordering), and recursive orderings
// with the required P-cycle and S-cycle prevention.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/value"
)

// Catalog relation names.  The leading underscore keeps them clear of
// user entity names; they are themselves ordinary relations (§6.1).
const (
	catEntity       = "_ENTITY"
	catAttribute    = "_ATTRIBUTE"
	catRelationship = "_RELATIONSHIP"
	catOrdering     = "_ORDERING"
	catOrderChild   = "_ORDER_CHILD"
)

// Instance relation name prefixes.
const (
	entPrefix = "E$"
	relPrefix = "R$"
	ordPrefix = "O$"
)

// Errors returned by schema and instance operations.
var (
	ErrNoEntityType   = errors.New("model: no such entity type")
	ErrNoRelationship = errors.New("model: no such relationship type")
	ErrNoOrdering     = errors.New("model: no such ordering")
	ErrNoEntity       = errors.New("model: no such entity instance")
	ErrNoAttribute    = errors.New("model: no such attribute")
	ErrPCycle         = errors.New("model: ordering insertion would make an entity part of itself (P-cycle)")
	ErrSCycle         = errors.New("model: ordering insertion would place an entity before itself (S-cycle)")
	ErrWrongChildType = errors.New("model: entity type is not a child of this ordering")
	ErrWrongParent    = errors.New("model: entity type is not the parent of this ordering")
	ErrHasChildren    = errors.New("model: entity still has children in an ordering")
	ErrAlreadyChild   = errors.New("model: entity is already a child in this ordering")
	ErrNotSiblings    = errors.New("model: entities are not siblings in this ordering")
)

// EntityType describes one entity type of the schema.
type EntityType struct {
	Name  string
	Attrs []value.Field // user attributes (the stored relation prepends _ref)
}

// AttrIndex returns the position of the named attribute in Attrs.
func (et *EntityType) AttrIndex(name string) (int, bool) {
	for i, a := range et.Attrs {
		if strings.EqualFold(a.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// RelationshipType describes an "m to n" relationship (§5.1): named roles
// referencing entity types, plus optional attributes of the relationship
// itself.
type RelationshipType struct {
	Name  string
	Roles []Role
	Attrs []value.Field
}

// Role is one leg of a relationship: the role name and the entity type it
// references.
type Role struct {
	Name       string
	EntityType string
}

// RoleIndex returns the position of the named role.
func (rt *RelationshipType) RoleIndex(name string) (int, bool) {
	for i, r := range rt.Roles {
		if strings.EqualFold(r.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// Ordering describes one hierarchical ordering (one define ordering
// statement, §5.4): an ordered set of children of the listed types under
// a parent of the given type.
type Ordering struct {
	Name     string
	Parent   string
	Children []string
}

// Recursive reports whether the ordering's parent type is also one of its
// child types (§5.5, recursive ordering).
func (o *Ordering) Recursive() bool {
	for _, c := range o.Children {
		if c == o.Parent {
			return true
		}
	}
	return false
}

// hasChild reports whether typeName is a declared child type.
func (o *Ordering) hasChild(typeName string) bool {
	for _, c := range o.Children {
		if c == typeName {
			return true
		}
	}
	return false
}

// entityLoc locates an entity instance in its type's relation.
type entityLoc struct {
	typeName string
	rowID    storage.RowID
}

// Database is a music-model database: a schema (entity types,
// relationships, orderings) plus instances, all persisted through a
// storage.DB.
type Database struct {
	store *storage.DB

	mu            sync.RWMutex
	entities      map[string]*EntityType
	relationships map[string]*RelationshipType
	orderings     map[string]*Ordering

	directory map[value.Ref]entityLoc
	orders    map[string]*orderRuntime
	incipits  map[string]IncipitIndex

	autoOrder int // counter for auto-generated ordering names

	// schemaEpoch counts schema changes (entity/relationship/ordering
	// definitions, index creation and drops).  Plan and statement caches
	// key on it: a cached plan from an older epoch is replanned, so it
	// can never reference a dropped index.
	schemaEpoch atomic.Uint64
}

// Open loads (or initializes) a model database on top of a storage DB.
func Open(store *storage.DB) (*Database, error) {
	db := &Database{
		store:         store,
		entities:      make(map[string]*EntityType),
		relationships: make(map[string]*RelationshipType),
		orderings:     make(map[string]*Ordering),
		directory:     make(map[value.Ref]entityLoc),
		orders:        make(map[string]*orderRuntime),
	}
	if err := db.ensureCatalog(); err != nil {
		return nil, err
	}
	if err := db.load(); err != nil {
		return nil, err
	}
	return db, nil
}

// Store exposes the underlying storage engine (used by the query layer
// for scans and by checkpointing).
func (db *Database) Store() *storage.DB { return db.store }

// InstanceRelation returns the name of the storage relation holding the
// instances of an entity type.  The relation's first column is the
// surrogate (_ref); the remaining columns are the type's attributes.
func (db *Database) InstanceRelation(typeName string) string { return entPrefix + typeName }

// OrderingRelation returns the name of the storage relation holding an
// ordering's (parent, child, rank) edges.  Bulk loaders use it to defer
// and rebuild ordering indexes around a batch load.
func (db *Database) OrderingRelation(name string) string { return ordPrefix + name }

// ensureCatalog creates the catalog relations if they do not exist.
func (db *Database) ensureCatalog() error {
	mk := func(name string, fields ...value.Field) error {
		if db.store.Relation(name) != nil {
			return nil
		}
		_, err := db.store.CreateRelation(name, value.NewSchema(fields...))
		return err
	}
	if err := mk(catEntity,
		value.Field{Name: "entity_name", Kind: value.KindString}); err != nil {
		return err
	}
	if err := mk(catAttribute,
		value.Field{Name: "owner", Kind: value.KindString},
		value.Field{Name: "owner_kind", Kind: value.KindString},
		value.Field{Name: "attribute_name", Kind: value.KindString},
		value.Field{Name: "attribute_type", Kind: value.KindString},
		value.Field{Name: "ref_type", Kind: value.KindString},
		value.Field{Name: "pos", Kind: value.KindInt}); err != nil {
		return err
	}
	if err := mk(catRelationship,
		value.Field{Name: "relationship_name", Kind: value.KindString}); err != nil {
		return err
	}
	if err := mk(catOrdering,
		value.Field{Name: "order_name", Kind: value.KindString},
		value.Field{Name: "order_parent", Kind: value.KindString}); err != nil {
		return err
	}
	return mk(catOrderChild,
		value.Field{Name: "ordering", Kind: value.KindString},
		value.Field{Name: "child", Kind: value.KindString},
		value.Field{Name: "pos", Kind: value.KindInt})
}

// load rebuilds the in-memory schema and runtime state from the catalog
// and instance relations.
func (db *Database) load() error {
	// Entity types.
	type attrRow struct {
		name, typ, refType string
		pos                int64
	}
	attrs := map[string][]attrRow{} // "kind/owner" → rows
	err := db.store.Run(func(tx *storage.Tx) error {
		if err := tx.Scan(catAttribute, func(_ storage.RowID, t value.Tuple) bool {
			key := t[1].AsString() + "/" + t[0].AsString()
			attrs[key] = append(attrs[key], attrRow{t[2].AsString(), t[3].AsString(), t[4].AsString(), t[5].AsInt()})
			return true
		}); err != nil {
			return err
		}
		if err := tx.Scan(catEntity, func(_ storage.RowID, t value.Tuple) bool {
			name := t[0].AsString()
			rows := attrs["entity/"+name]
			sort.Slice(rows, func(i, j int) bool { return rows[i].pos < rows[j].pos })
			fields := make([]value.Field, len(rows))
			for i, r := range rows {
				k, _ := value.KindFromName(r.typ)
				fields[i] = value.Field{Name: r.name, Kind: k, RefType: r.refType}
			}
			db.entities[name] = &EntityType{Name: name, Attrs: fields}
			return true
		}); err != nil {
			return err
		}
		if err := tx.Scan(catRelationship, func(_ storage.RowID, t value.Tuple) bool {
			name := t[0].AsString()
			rows := attrs["relationship/"+name]
			sort.Slice(rows, func(i, j int) bool { return rows[i].pos < rows[j].pos })
			rt := &RelationshipType{Name: name}
			for _, r := range rows {
				if r.typ == "role" {
					rt.Roles = append(rt.Roles, Role{Name: r.name, EntityType: r.refType})
				} else {
					k, _ := value.KindFromName(r.typ)
					rt.Attrs = append(rt.Attrs, value.Field{Name: r.name, Kind: k, RefType: r.refType})
				}
			}
			db.relationships[name] = rt
			return true
		}); err != nil {
			return err
		}
		children := map[string][]struct {
			child string
			pos   int64
		}{}
		if err := tx.Scan(catOrderChild, func(_ storage.RowID, t value.Tuple) bool {
			children[t[0].AsString()] = append(children[t[0].AsString()], struct {
				child string
				pos   int64
			}{t[1].AsString(), t[2].AsInt()})
			return true
		}); err != nil {
			return err
		}
		return tx.Scan(catOrdering, func(_ storage.RowID, t value.Tuple) bool {
			name := t[0].AsString()
			kids := children[name]
			sort.Slice(kids, func(i, j int) bool { return kids[i].pos < kids[j].pos })
			o := &Ordering{Name: name, Parent: t[1].AsString()}
			for _, k := range kids {
				o.Children = append(o.Children, k.child)
			}
			db.orderings[name] = o
			db.autoOrder++
			return true
		})
	})
	if err != nil {
		return err
	}

	// Instance directory.
	var maxRef value.Ref
	for name := range db.entities {
		relName := entPrefix + name
		err := db.store.Run(func(tx *storage.Tx) error {
			return tx.Scan(relName, func(id storage.RowID, t value.Tuple) bool {
				ref := t[0].AsRef()
				db.directory[ref] = entityLoc{typeName: name, rowID: id}
				if ref > maxRef {
					maxRef = ref
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	db.store.BumpSeq("ref", uint64(maxRef))

	// Ordering runtimes.
	for name, o := range db.orderings {
		rt := newOrderRuntime()
		db.orders[name] = rt
		relName := ordPrefix + name
		// Databases created before snapshot reads lack the by_parent_rank
		// index; add it (CreateIndex backfills) so snapshot sibling scans
		// work against old data directories.
		if rel := db.store.Relation(relName); rel != nil {
			has := false
			for _, spec := range rel.Indexes() {
				if spec.Name == ixByParentRank {
					has = true
					break
				}
			}
			if !has {
				if err := db.store.CreateIndex(relName, storage.IndexSpec{
					Name: ixByParentRank, Columns: []string{"parent", "rank"},
				}); err != nil {
					return err
				}
			}
		}
		err := db.store.Run(func(tx *storage.Tx) error {
			return tx.Scan(relName, func(id storage.RowID, t value.Tuple) bool {
				rt.attach(t[0].AsRef(), t[1].AsRef(), t[2].AsInt(), id)
				return true
			})
		})
		if err != nil {
			return err
		}
		_ = o
	}
	return nil
}

// DefineEntity declares a new entity type with the given attributes
// (define entity, §5.1).
func (db *Database) DefineEntity(name string, attrs ...value.Field) (*EntityType, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.entities[name]; exists {
		return nil, fmt.Errorf("model: entity type %q already defined", name)
	}
	fields := make([]value.Field, 0, len(attrs)+1)
	fields = append(fields, value.Field{Name: "_ref", Kind: value.KindRef})
	fields = append(fields, attrs...)
	if _, err := db.store.CreateRelation(entPrefix+name, value.NewSchema(fields...)); err != nil {
		return nil, err
	}
	if err := db.store.CreateIndex(entPrefix+name, storage.IndexSpec{
		Name: "by_ref", Columns: []string{"_ref"}, Unique: true,
	}); err != nil {
		return nil, err
	}
	err := db.store.Run(func(tx *storage.Tx) error {
		if _, err := tx.Insert(catEntity, value.Tuple{value.Str(name)}); err != nil {
			return err
		}
		for i, a := range attrs {
			if _, err := tx.Insert(catAttribute, value.Tuple{
				value.Str(name), value.Str("entity"), value.Str(a.Name),
				value.Str(a.Kind.String()), value.Str(a.RefType), value.Int(int64(i)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	et := &EntityType{Name: name, Attrs: attrs}
	db.entities[name] = et
	db.schemaEpoch.Add(1)
	return et, nil
}

// DefineRelationship declares an m-to-n relationship type (define
// relationship, §5.1).
func (db *Database) DefineRelationship(name string, roles []Role, attrs ...value.Field) (*RelationshipType, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.relationships[name]; exists {
		return nil, fmt.Errorf("model: relationship %q already defined", name)
	}
	if len(roles) < 2 {
		return nil, fmt.Errorf("model: relationship %q needs at least two roles", name)
	}
	for _, r := range roles {
		if _, ok := db.entities[r.EntityType]; !ok {
			return nil, fmt.Errorf("model: relationship %q: %w: %s", name, ErrNoEntityType, r.EntityType)
		}
	}
	fields := make([]value.Field, 0, len(roles)+len(attrs))
	for _, r := range roles {
		fields = append(fields, value.Field{Name: r.Name, Kind: value.KindRef, RefType: r.EntityType})
	}
	fields = append(fields, attrs...)
	if _, err := db.store.CreateRelation(relPrefix+name, value.NewSchema(fields...)); err != nil {
		return nil, err
	}
	for _, r := range roles {
		if err := db.store.CreateIndex(relPrefix+name, storage.IndexSpec{
			Name: "by_" + r.Name, Columns: []string{r.Name},
		}); err != nil {
			return nil, err
		}
	}
	err := db.store.Run(func(tx *storage.Tx) error {
		if _, err := tx.Insert(catRelationship, value.Tuple{value.Str(name)}); err != nil {
			return err
		}
		pos := 0
		for _, r := range roles {
			if _, err := tx.Insert(catAttribute, value.Tuple{
				value.Str(name), value.Str("relationship"), value.Str(r.Name),
				value.Str("role"), value.Str(r.EntityType), value.Int(int64(pos)),
			}); err != nil {
				return err
			}
			pos++
		}
		for _, a := range attrs {
			if _, err := tx.Insert(catAttribute, value.Tuple{
				value.Str(name), value.Str("relationship"), value.Str(a.Name),
				value.Str(a.Kind.String()), value.Str(a.RefType), value.Int(int64(pos)),
			}); err != nil {
				return err
			}
			pos++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rt := &RelationshipType{Name: name, Roles: roles, Attrs: attrs}
	db.relationships[name] = rt
	db.schemaEpoch.Add(1)
	return rt, nil
}

// DefineOrdering declares a hierarchical ordering (define ordering,
// §5.4).  Name may be empty, in which case a name is synthesized from the
// first child and parent types (the paper leaves unnamed-ordering
// semantics to the dissertation; synthesizing keeps every ordering
// addressable by the query operators).
func (db *Database) DefineOrdering(name string, children []string, parent string) (*Ordering, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(children) == 0 {
		return nil, errors.New("model: ordering needs at least one child type")
	}
	if name == "" {
		db.autoOrder++
		name = fmt.Sprintf("%s_in_%s$%d", strings.ToLower(children[0]), strings.ToLower(parent), db.autoOrder)
	}
	if _, exists := db.orderings[name]; exists {
		return nil, fmt.Errorf("model: ordering %q already defined", name)
	}
	if _, ok := db.entities[parent]; !ok {
		return nil, fmt.Errorf("model: ordering %q: parent: %w: %s", name, ErrNoEntityType, parent)
	}
	seen := map[string]bool{}
	for _, c := range children {
		if _, ok := db.entities[c]; !ok {
			return nil, fmt.Errorf("model: ordering %q: child: %w: %s", name, ErrNoEntityType, c)
		}
		if seen[c] {
			return nil, fmt.Errorf("model: ordering %q: duplicate child type %s", name, c)
		}
		seen[c] = true
	}
	if _, err := db.store.CreateRelation(ordPrefix+name, value.NewSchema(
		value.Field{Name: "parent", Kind: value.KindRef, RefType: parent},
		value.Field{Name: "child", Kind: value.KindRef},
		value.Field{Name: "rank", Kind: value.KindInt},
	)); err != nil {
		return nil, err
	}
	if err := db.store.CreateIndex(ordPrefix+name, storage.IndexSpec{
		Name: "by_child", Columns: []string{"child"}, Unique: true,
	}); err != nil {
		return nil, err
	}
	if err := db.store.CreateIndex(ordPrefix+name, storage.IndexSpec{
		Name: ixByParentRank, Columns: []string{"parent", "rank"},
	}); err != nil {
		return nil, err
	}
	err := db.store.Run(func(tx *storage.Tx) error {
		if _, err := tx.Insert(catOrdering, value.Tuple{value.Str(name), value.Str(parent)}); err != nil {
			return err
		}
		for i, c := range children {
			if _, err := tx.Insert(catOrderChild, value.Tuple{
				value.Str(name), value.Str(c), value.Int(int64(i)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	o := &Ordering{Name: name, Parent: parent, Children: append([]string(nil), children...)}
	db.orderings[name] = o
	db.orders[name] = newOrderRuntime()
	db.schemaEpoch.Add(1)
	return o, nil
}

// SchemaEpoch returns the current schema epoch: a counter bumped by
// every schema change (type definitions, index creation, index drops).
// Plan and prepared-statement caches compare epochs to decide whether a
// cached plan is still trustworthy.
func (db *Database) SchemaEpoch() uint64 { return db.schemaEpoch.Load() }

// DefineIndex adds a secondary index over attributes of an entity type's
// instance relation and bumps the schema epoch.  DDL (define index on
// ...) routes through here so caches observe the change.
func (db *Database) DefineIndex(typeName string, spec storage.IndexSpec) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entities[typeName]; !ok {
		return fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	if err := db.store.CreateIndex(entPrefix+typeName, spec); err != nil {
		return err
	}
	db.schemaEpoch.Add(1)
	return nil
}

// DropIndex removes a secondary index from an entity type's instance
// relation and bumps the schema epoch, so cached plans referencing the
// index are invalidated before they can run again.  The built-in by_ref
// surrogate index cannot be dropped.
func (db *Database) DropIndex(typeName, indexName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entities[typeName]; !ok {
		return fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	if indexName == "by_ref" {
		return fmt.Errorf("model: index %q on %s is structural and cannot be dropped", indexName, typeName)
	}
	if err := db.store.DropIndex(entPrefix+typeName, indexName); err != nil {
		return err
	}
	db.schemaEpoch.Add(1)
	return nil
}

// EntityType returns the named entity type.
func (db *Database) EntityType(name string) (*EntityType, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	et, ok := db.entities[name]
	return et, ok
}

// RelationshipType returns the named relationship type.
func (db *Database) RelationshipType(name string) (*RelationshipType, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rt, ok := db.relationships[name]
	return rt, ok
}

// OrderingByName returns the named ordering.
func (db *Database) OrderingByName(name string) (*Ordering, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.orderings[name]
	return o, ok
}

// FindOrdering resolves an ordering by name, or — when name is empty — by
// the unique ordering whose child types include childType and whose
// parent is parentType (either may be empty to match any).  It returns an
// error when the reference is ambiguous.
func (db *Database) FindOrdering(name, childType, parentType string) (*Ordering, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if name != "" {
		o, ok := db.orderings[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoOrdering, name)
		}
		return o, nil
	}
	var found *Ordering
	for _, o := range db.orderings {
		if childType != "" && !o.hasChild(childType) {
			continue
		}
		if parentType != "" && o.Parent != parentType {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("model: ordering reference ambiguous between %q and %q; specify `in <order_name>`", found.Name, o.Name)
		}
		found = o
	}
	if found == nil {
		return nil, fmt.Errorf("%w for child %q under parent %q", ErrNoOrdering, childType, parentType)
	}
	return found, nil
}

// EntityTypes returns all entity type names, sorted.
func (db *Database) EntityTypes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.entities))
	for n := range db.entities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RelationshipTypes returns all relationship type names, sorted.
func (db *Database) RelationshipTypes() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.relationships))
	for n := range db.relationships {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Orderings returns all ordering names, sorted.
func (db *Database) Orderings() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.orderings))
	for n := range db.orderings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
