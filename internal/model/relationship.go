package model

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/value"
)

// Relate creates an instance of the named m-to-n relationship.  roles
// maps role names to entity refs; attrs supplies values for the
// relationship's own attributes.  Every role must be filled with an
// entity of the declared type.
func (db *Database) Relate(relationship string, roles map[string]value.Ref, attrs Attrs) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rt, ok := db.relationships[relationship]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRelationship, relationship)
	}
	t := make(value.Tuple, len(rt.Roles)+len(rt.Attrs))
	for i, role := range rt.Roles {
		ref, ok := roles[role.Name]
		if !ok {
			return fmt.Errorf("model: relate %s: missing role %q", relationship, role.Name)
		}
		loc, ok := db.directory[ref]
		if !ok {
			return fmt.Errorf("model: relate %s: role %q: %w: @%d", relationship, role.Name, ErrNoEntity, ref)
		}
		if loc.typeName != role.EntityType {
			return fmt.Errorf("model: relate %s: role %q needs %s, got %s",
				relationship, role.Name, role.EntityType, loc.typeName)
		}
		t[i] = value.RefVal(ref)
	}
	for i, a := range rt.Attrs {
		if v, ok := attrs[a.Name]; ok {
			t[len(rt.Roles)+i] = v
		} else {
			t[len(rt.Roles)+i] = value.Null
		}
	}
	return db.store.Run(func(tx *storage.Tx) error {
		_, err := tx.Insert(relPrefix+relationship, t)
		return err
	})
}

// Unrelate removes all instances of the relationship in which every
// given role is bound to the given ref.  It returns the number removed.
func (db *Database) Unrelate(relationship string, roles map[string]value.Ref) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rt, ok := db.relationships[relationship]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoRelationship, relationship)
	}
	removed := 0
	err := db.store.Run(func(tx *storage.Tx) error {
		var doomed []storage.RowID
		err := tx.Scan(relPrefix+relationship, func(id storage.RowID, t value.Tuple) bool {
			for name, ref := range roles {
				i, ok := rt.RoleIndex(name)
				if !ok || t[i].AsRef() != ref {
					return true
				}
			}
			doomed = append(doomed, id)
			return true
		})
		if err != nil {
			return err
		}
		for _, id := range doomed {
			if err := tx.Delete(relPrefix+relationship, id); err != nil {
				return err
			}
		}
		removed = len(doomed)
		return nil
	})
	return removed, err
}

// RelInstance is one relationship instance: role bindings and attribute
// values.
type RelInstance struct {
	Roles map[string]value.Ref
	Attrs value.Tuple
}

// Related returns the instances of the relationship in which role is
// bound to ref.  With role == "" it returns instances where any role is
// bound to ref.
func (db *Database) Related(relationship, role string, ref value.Ref) ([]RelInstance, error) {
	db.mu.RLock()
	rt, ok := db.relationships[relationship]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRelationship, relationship)
	}
	match := func(t value.Tuple) bool {
		if role == "" {
			for i := range rt.Roles {
				if t[i].AsRef() == ref {
					return true
				}
			}
			return false
		}
		i, ok := rt.RoleIndex(role)
		return ok && t[i].AsRef() == ref
	}
	var out []RelInstance
	err := db.store.Run(func(tx *storage.Tx) error {
		// Use the per-role index when the role is known.
		collect := func(_ storage.RowID, t value.Tuple) bool {
			if !match(t) {
				return true
			}
			inst := RelInstance{Roles: make(map[string]value.Ref, len(rt.Roles))}
			for i, r := range rt.Roles {
				inst.Roles[r.Name] = t[i].AsRef()
			}
			inst.Attrs = t[len(rt.Roles):].Clone()
			out = append(out, inst)
			return true
		}
		if role != "" {
			if _, ok := rt.RoleIndex(role); !ok {
				return fmt.Errorf("model: relationship %s has no role %q", relationship, role)
			}
			return tx.IndexPrefixScan(relPrefix+relationship, "by_"+role,
				value.Tuple{value.RefVal(ref)}, collect)
		}
		return tx.Scan(relPrefix+relationship, collect)
	})
	return out, err
}

// RelatedRefs is a convenience over Related: the refs bound to wantRole
// in instances where haveRole is bound to ref.
func (db *Database) RelatedRefs(relationship, haveRole string, ref value.Ref, wantRole string) ([]value.Ref, error) {
	insts, err := db.Related(relationship, haveRole, ref)
	if err != nil {
		return nil, err
	}
	out := make([]value.Ref, 0, len(insts))
	for _, inst := range insts {
		if r, ok := inst.Roles[wantRole]; ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// Fields returns the relationship's tuple layout as schema fields: one
// reference field per role followed by the relationship's own attributes.
// This is the shape seen by query-language range variables bound to the
// relationship (QUEL ranges over any relation, including relationships).
func (rt *RelationshipType) Fields() []value.Field {
	fields := make([]value.Field, 0, len(rt.Roles)+len(rt.Attrs))
	for _, r := range rt.Roles {
		fields = append(fields, value.Field{Name: r.Name, Kind: value.KindRef, RefType: r.EntityType})
	}
	return append(fields, rt.Attrs...)
}

// RelationshipTuples calls fn with the raw tuple (role refs then
// attributes) of every instance of the relationship.
func (db *Database) RelationshipTuples(name string, fn func(t value.Tuple) bool) error {
	return db.RelationshipTuplesCtx(context.Background(), name, fn)
}

// RelationshipTuplesCtx is RelationshipTuples under a context (see
// NewEntityCtx).
func (db *Database) RelationshipTuplesCtx(ctx context.Context, name string, fn func(t value.Tuple) bool) error {
	db.mu.RLock()
	_, ok := db.relationships[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRelationship, name)
	}
	return db.store.RunCtx(ctx, func(tx *storage.Tx) error {
		return tx.Scan(relPrefix+name, func(_ storage.RowID, t value.Tuple) bool {
			return fn(t)
		})
	})
}

// RelationshipCount returns the number of instances of the named
// relationship (0 when undefined).  Used by the query layer for plan
// cardinality estimates.
func (db *Database) RelationshipCount(name string) int {
	rel := db.store.Relation(relPrefix + name)
	if rel == nil {
		return 0
	}
	return rel.Len()
}

// EachRelated calls fn for every instance of the relationship.
func (db *Database) EachRelated(relationship string, fn func(inst RelInstance) bool) error {
	db.mu.RLock()
	rt, ok := db.relationships[relationship]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRelationship, relationship)
	}
	return db.store.Run(func(tx *storage.Tx) error {
		return tx.Scan(relPrefix+relationship, func(_ storage.RowID, t value.Tuple) bool {
			inst := RelInstance{Roles: make(map[string]value.Ref, len(rt.Roles))}
			for i, r := range rt.Roles {
				inst.Roles[r.Name] = t[i].AsRef()
			}
			inst.Attrs = t[len(rt.Roles):].Clone()
			return fn(inst)
		})
	})
}
