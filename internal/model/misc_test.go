package model

import (
	"testing"

	"repro/internal/value"
)

func TestSchemaLists(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineRelationship("SIMILAR", []Role{
		{Name: "a", EntityType: "NOTE"}, {Name: "b", EntityType: "NOTE"},
	})
	ets := db.EntityTypes()
	if len(ets) != 2 || ets[0] != "CHORD" || ets[1] != "NOTE" {
		t.Fatalf("entity types: %v", ets)
	}
	rts := db.RelationshipTypes()
	if len(rts) != 1 || rts[0] != "SIMILAR" {
		t.Fatalf("relationship types: %v", rts)
	}
	os := db.Orderings()
	if len(os) != 1 || os[0] != "note_in_chord" {
		t.Fatalf("orderings: %v", os)
	}
	if db.Store() == nil {
		t.Fatal("Store")
	}
	if db.InstanceRelation("NOTE") != "E$NOTE" {
		t.Fatalf("instance relation: %q", db.InstanceRelation("NOTE"))
	}
	rt, _ := db.RelationshipType("SIMILAR")
	fields := rt.Fields()
	if len(fields) != 2 || fields[0].Kind != value.KindRef || fields[0].RefType != "NOTE" {
		t.Fatalf("fields: %+v", fields)
	}
	if _, ok := db.RelationshipType("NOPE"); ok {
		t.Fatal("missing relationship found")
	}
}

func TestRelationshipTuplesAndEachRelated(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineRelationship("SIMILAR", []Role{
		{Name: "a", EntityType: "NOTE"}, {Name: "b", EntityType: "NOTE"},
	}, value.Field{Name: "distance", Kind: value.KindInt})
	n1, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(1)})
	n2, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(2)})
	n3, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(3)})
	db.Relate("SIMILAR", map[string]value.Ref{"a": n1, "b": n2}, Attrs{"distance": value.Int(5)})
	db.Relate("SIMILAR", map[string]value.Ref{"a": n2, "b": n3}, Attrs{"distance": value.Int(7)})

	count := 0
	err := db.RelationshipTuples("SIMILAR", func(tup value.Tuple) bool {
		if len(tup) != 3 {
			t.Fatalf("tuple arity: %v", tup)
		}
		count++
		return true
	})
	if err != nil || count != 2 {
		t.Fatalf("tuples: %d %v", count, err)
	}
	if err := db.RelationshipTuples("NOPE", nil); err == nil {
		t.Fatal("missing relationship accepted")
	}

	var dists []int64
	err = db.EachRelated("SIMILAR", func(inst RelInstance) bool {
		dists = append(dists, inst.Attrs[0].AsInt())
		return len(dists) < 1 // early stop after first
	})
	if err != nil || len(dists) != 1 {
		t.Fatalf("each related: %v %v", dists, err)
	}
	if err := db.EachRelated("NOPE", nil); err == nil {
		t.Fatal("missing relationship accepted")
	}
	// Related with empty role matches any position.
	insts, err := db.Related("SIMILAR", "", n2)
	if err != nil || len(insts) != 2 {
		t.Fatalf("related any-role: %d %v", len(insts), err)
	}
	// Unknown role errors.
	if _, err := db.Related("SIMILAR", "bogus", n2); err == nil {
		t.Fatal("bogus role accepted")
	}
}

func TestWalkEarlyStopAndMissingOrdering(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	chord, _ := db.NewEntity("CHORD", nil)
	for i := 0; i < 5; i++ {
		n, _ := db.NewEntity("NOTE", nil)
		db.InsertChild("note_in_chord", chord, n, Last())
	}
	visited := 0
	db.Walk("note_in_chord", chord, func(value.Ref, int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("early stop: %d", visited)
	}
	if err := db.Walk("nope", chord, nil); err == nil {
		t.Fatal("missing ordering accepted")
	}
	if _, err := db.Children("nope", chord); err == nil {
		t.Fatal("missing ordering accepted")
	}
	if _, err := db.ChildAt("nope", chord, 0); err == nil {
		t.Fatal("missing ordering accepted")
	}
	if _, err := db.IndexOf("nope", chord); err == nil {
		t.Fatal("missing ordering accepted")
	}
	if _, ok := db.ParentOf("nope", chord); ok {
		t.Fatal("missing ordering parent")
	}
	if _, ok := db.NextSibling("nope", chord); ok {
		t.Fatal("missing ordering sibling")
	}
	if _, err := db.BeforeIn("nope", chord, chord); err == nil {
		t.Fatal("missing ordering before")
	}
	if _, err := db.UnderIn("nope", chord, chord); err == nil {
		t.Fatal("missing ordering under")
	}
	if _, err := db.Roots("nope"); err == nil {
		t.Fatal("missing ordering roots")
	}
	if err := db.RemoveChild("nope", chord); err == nil {
		t.Fatal("missing ordering remove")
	}
	if err := db.MoveChild("nope", chord, Last()); err == nil {
		t.Fatal("missing ordering move")
	}
	// ChildAt on a parent with no children.
	lone, _ := db.NewEntity("CHORD", nil)
	if _, err := db.ChildAt("note_in_chord", lone, 0); err == nil {
		t.Fatal("childless parent ChildAt")
	}
	// MoveChild of a non-child.
	orphan, _ := db.NewEntity("NOTE", nil)
	if err := db.MoveChild("note_in_chord", orphan, Last()); err == nil {
		t.Fatal("move of non-child accepted")
	}
	// IndexOf of a non-child.
	if _, err := db.IndexOf("note_in_chord", orphan); err == nil {
		t.Fatal("IndexOf of non-child accepted")
	}
}

func TestSortRefs(t *testing.T) {
	refs := []value.Ref{5, 1, 4, 2, 3}
	sortRefs(refs)
	for i := 1; i < len(refs); i++ {
		if refs[i] < refs[i-1] {
			t.Fatalf("not sorted: %v", refs)
		}
	}
	sortRefs(nil) // must not panic
}

func TestRootsMultiple(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	c1, _ := db.NewEntity("CHORD", nil)
	c2, _ := db.NewEntity("CHORD", nil)
	for _, c := range []value.Ref{c1, c2} {
		n, _ := db.NewEntity("NOTE", nil)
		db.InsertChild("note_in_chord", c, n, Last())
	}
	roots, err := db.Roots("note_in_chord")
	if err != nil || len(roots) != 2 || roots[0] != c1 || roots[1] != c2 {
		t.Fatalf("roots: %v %v", roots, err)
	}
}
