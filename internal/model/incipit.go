package model

import (
	"fmt"

	"repro/internal/value"
)

// IncipitIndex describes a domain-maintained incipit (theme) index over
// an entity type: an interval n-gram inverted index kept in a companion
// entity type, plus callbacks that let the query planner probe it
// without knowing the gram encoding.  The paper's thematic index
// (Figure 2) is the motivating workload: "find the works whose incipit
// contains this contour" over a million-entry catalogue.
//
// The layer that owns the encoding (internal/biblio) registers the
// index at open time; internal/quel discovers it through the Database
// so the two stay decoupled.
type IncipitIndex struct {
	// EntityType is the type an `incipit` predicate applies to
	// (e.g. CATALOG_ENTRY).
	EntityType string
	// GramType is the companion entity type holding one row per
	// (gram, entry) posting (e.g. INCIPIT_GRAM).
	GramType string
	// GramAttr is the indexed gram attribute on GramType.
	GramAttr string
	// EntryAttr is the attribute on GramType referencing the indexed
	// entity.
	EntryAttr string
	// N is the number of intervals per gram.
	N int
	// Gram maps a query pattern (whose syntax the registering layer
	// owns, e.g. "67 74 70 69" MIDI pitches) to the probe gram key.
	// ok is false when the pattern is too short or malformed; the
	// planner then skips the index and Match reports the problem.
	Gram func(pattern string) (gram string, ok bool)
	// Match reports whether an entity's incipit contains the pattern.
	// It is the authoritative check; the gram probe only narrows
	// candidates.
	Match func(entity value.Ref, pattern string) (bool, error)
}

// RegisterIncipitIndex publishes an incipit index for an entity type.
// It bumps the schema epoch so cached plans built without the index are
// discarded.
func (db *Database) RegisterIncipitIndex(ix IncipitIndex) error {
	if ix.EntityType == "" || ix.Gram == nil || ix.Match == nil {
		return fmt.Errorf("model: incomplete incipit index registration for %q", ix.EntityType)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.entities[ix.EntityType]; !ok {
		return fmt.Errorf("%w: %s", ErrNoEntityType, ix.EntityType)
	}
	if db.incipits == nil {
		db.incipits = make(map[string]IncipitIndex)
	}
	db.incipits[ix.EntityType] = ix
	db.schemaEpoch.Add(1)
	return nil
}

// IncipitIndexFor returns the incipit index registered for an entity
// type, if any.
func (db *Database) IncipitIndexFor(entityType string) (IncipitIndex, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.incipits[entityType]
	return ix, ok
}
