package model

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func memModel(t testing.TB) *Database {
	t.Helper()
	store, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// defineChordSchema defines the NOTE-in-CHORD schema used throughout §5.
func defineChordSchema(t testing.TB, db *Database) {
	t.Helper()
	if _, err := db.DefineEntity("CHORD",
		value.Field{Name: "name", Kind: value.KindInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineEntity("NOTE",
		value.Field{Name: "name", Kind: value.KindInt},
		value.Field{Name: "pitch", Kind: value.KindInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineOrdering("note_in_chord", []string{"NOTE"}, "CHORD"); err != nil {
		t.Fatal(err)
	}
}

func TestDefineEntity(t *testing.T) {
	db := memModel(t)
	et, err := db.DefineEntity("COMPOSITION",
		value.Field{Name: "title", Kind: value.KindString})
	if err != nil {
		t.Fatal(err)
	}
	if et.Name != "COMPOSITION" || len(et.Attrs) != 1 {
		t.Fatal("entity shape")
	}
	if _, err := db.DefineEntity("COMPOSITION"); err == nil {
		t.Fatal("duplicate entity type accepted")
	}
	if _, ok := db.EntityType("COMPOSITION"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := et.AttrIndex("TITLE"); !ok {
		t.Fatal("attr index should be case-insensitive")
	}
	if _, ok := et.AttrIndex("nope"); ok {
		t.Fatal("missing attr found")
	}
}

func TestDefineRelationshipValidation(t *testing.T) {
	db := memModel(t)
	db.DefineEntity("PERSON", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("COMPOSITION", value.Field{Name: "title", Kind: value.KindString})
	if _, err := db.DefineRelationship("COMPOSER", []Role{
		{Name: "composer", EntityType: "PERSON"},
	}); err == nil {
		t.Fatal("single-role relationship accepted")
	}
	if _, err := db.DefineRelationship("COMPOSER", []Role{
		{Name: "composer", EntityType: "PERSON"},
		{Name: "composition", EntityType: "NOPE"},
	}); err == nil {
		t.Fatal("missing entity type accepted")
	}
	if _, err := db.DefineRelationship("COMPOSER", []Role{
		{Name: "composer", EntityType: "PERSON"},
		{Name: "composition", EntityType: "COMPOSITION"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineRelationship("COMPOSER", nil); err == nil {
		t.Fatal("duplicate relationship accepted")
	}
}

func TestFigure5StarSpangledBanner(t *testing.T) {
	// The §5.6 example: find all composers of "The Star Spangled Banner".
	db := memModel(t)
	db.DefineEntity("PERSON", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("COMPOSITION", value.Field{Name: "title", Kind: value.KindString})
	db.DefineRelationship("COMPOSER", []Role{
		{Name: "composer", EntityType: "PERSON"},
		{Name: "composition", EntityType: "COMPOSITION"},
	})
	key, _ := db.NewEntity("PERSON", Attrs{"name": value.Str("Francis Scott Key")})
	smith, _ := db.NewEntity("PERSON", Attrs{"name": value.Str("John Stafford Smith")})
	bach, _ := db.NewEntity("PERSON", Attrs{"name": value.Str("J. S. Bach")})
	ssb, _ := db.NewEntity("COMPOSITION", Attrs{"title": value.Str("The Star Spangled Banner")})
	fugue, _ := db.NewEntity("COMPOSITION", Attrs{"title": value.Str("Fuge g-moll")})
	for _, p := range []value.Ref{key, smith} {
		if err := db.Relate("COMPOSER", map[string]value.Ref{"composer": p, "composition": ssb}, nil); err != nil {
			t.Fatal(err)
		}
	}
	db.Relate("COMPOSER", map[string]value.Ref{"composer": bach, "composition": fugue}, nil)

	composers, err := db.RelatedRefs("COMPOSER", "composition", ssb, "composer")
	if err != nil {
		t.Fatal(err)
	}
	if len(composers) != 2 {
		t.Fatalf("composers = %v", composers)
	}
	names := map[string]bool{}
	for _, c := range composers {
		v, _ := db.Attr(c, "name")
		names[v.AsString()] = true
	}
	if !names["Francis Scott Key"] || !names["John Stafford Smith"] {
		t.Fatalf("wrong composers: %v", names)
	}
}

func TestRelateValidation(t *testing.T) {
	db := memModel(t)
	db.DefineEntity("PERSON", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("COMPOSITION", value.Field{Name: "title", Kind: value.KindString})
	db.DefineRelationship("COMPOSER", []Role{
		{Name: "composer", EntityType: "PERSON"},
		{Name: "composition", EntityType: "COMPOSITION"},
	})
	p, _ := db.NewEntity("PERSON", nil)
	c, _ := db.NewEntity("COMPOSITION", nil)
	if err := db.Relate("NOPE", nil, nil); !errors.Is(err, ErrNoRelationship) {
		t.Fatal("missing relationship accepted")
	}
	if err := db.Relate("COMPOSER", map[string]value.Ref{"composer": p}, nil); err == nil {
		t.Fatal("missing role accepted")
	}
	if err := db.Relate("COMPOSER", map[string]value.Ref{"composer": c, "composition": p}, nil); err == nil {
		t.Fatal("role type mismatch accepted")
	}
	if err := db.Relate("COMPOSER", map[string]value.Ref{"composer": p, "composition": value.Ref(9999)}, nil); err == nil {
		t.Fatal("dangling ref accepted")
	}
	if err := db.Relate("COMPOSER", map[string]value.Ref{"composer": p, "composition": c}, nil); err != nil {
		t.Fatal(err)
	}
	n, err := db.Unrelate("COMPOSER", map[string]value.Ref{"composer": p})
	if err != nil || n != 1 {
		t.Fatalf("unrelate: %d %v", n, err)
	}
}

func TestEntityAttrs(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	n, err := db.NewEntity("NOTE", Attrs{"name": value.Int(1), "pitch": value.Int(60)})
	if err != nil {
		t.Fatal(err)
	}
	if tn, ok := db.TypeOf(n); !ok || tn != "NOTE" {
		t.Fatal("TypeOf")
	}
	if !db.Exists(n) || db.Exists(value.Ref(99999)) {
		t.Fatal("Exists")
	}
	v, err := db.Attr(n, "pitch")
	if err != nil || v.AsInt() != 60 {
		t.Fatalf("Attr: %v %v", v, err)
	}
	if err := db.SetAttr(n, "pitch", value.Int(62)); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Attr(n, "pitch"); v.AsInt() != 62 {
		t.Fatal("SetAttr did not stick")
	}
	if err := db.SetAttrs(n, Attrs{"pitch": value.Int(64), "name": value.Int(2)}); err != nil {
		t.Fatal(err)
	}
	tup, err := db.AttrTuple(n)
	if err != nil || tup[0].AsInt() != 2 || tup[1].AsInt() != 64 {
		t.Fatalf("AttrTuple: %v %v", tup, err)
	}
	// Error paths.
	if _, err := db.NewEntity("NOPE", nil); !errors.Is(err, ErrNoEntityType) {
		t.Fatal("missing type")
	}
	if _, err := db.NewEntity("NOTE", Attrs{"bogus": value.Int(1)}); !errors.Is(err, ErrNoAttribute) {
		t.Fatal("bogus attr")
	}
	if _, err := db.Attr(value.Ref(12345), "pitch"); !errors.Is(err, ErrNoEntity) {
		t.Fatal("missing entity")
	}
	if _, err := db.Attr(n, "bogus"); !errors.Is(err, ErrNoAttribute) {
		t.Fatal("bogus attr get")
	}
	if err := db.SetAttr(n, "bogus", value.Int(1)); !errors.Is(err, ErrNoAttribute) {
		t.Fatal("bogus attr set")
	}
}

// TestFigure6InstanceGraph reproduces the four-note chord of figure 6:
// parent y with ordered children {u, v, w, x}; w is the third child.
func TestFigure6InstanceGraph(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	y, _ := db.NewEntity("CHORD", Attrs{"name": value.Int(1)})
	var kids []value.Ref
	for i := 0; i < 4; i++ {
		n, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(int64(i + 1))})
		if err := db.InsertChild("note_in_chord", y, n, Last()); err != nil {
			t.Fatal(err)
		}
		kids = append(kids, n)
	}
	// Ordinal access: "the third child of y".
	third, err := db.ChildAt("note_in_chord", y, 2)
	if err != nil || third != kids[2] {
		t.Fatalf("third child: %v %v", third, err)
	}
	// P-edges: each child's parent is y.
	for _, k := range kids {
		p, ok := db.ParentOf("note_in_chord", k)
		if !ok || p != y {
			t.Fatal("P-edge broken")
		}
		under, _ := db.UnderIn("note_in_chord", k, y)
		if !under {
			t.Fatal("under operator")
		}
	}
	// S-edges: u before v before w before x.
	for i := 0; i < 3; i++ {
		b, _ := db.BeforeIn("note_in_chord", kids[i], kids[i+1])
		if !b {
			t.Fatalf("S-order broken at %d", i)
		}
		a, _ := db.AfterIn("note_in_chord", kids[i+1], kids[i])
		if !a {
			t.Fatal("after operator")
		}
	}
	if b, _ := db.BeforeIn("note_in_chord", kids[2], kids[0]); b {
		t.Fatal("before should be false in reverse")
	}
	// Instance graph shape.
	g, err := db.InstanceGraph(y, "name")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 5 || len(g.PEdges) != 4 || len(g.SEdges) != 3 {
		t.Fatalf("graph shape: %d nodes, %d P, %d S", len(g.Nodes), len(g.PEdges), len(g.SEdges))
	}
}

func TestOrderingValidation(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	if _, err := db.DefineOrdering("x", nil, "CHORD"); err == nil {
		t.Fatal("empty children accepted")
	}
	if _, err := db.DefineOrdering("x", []string{"NOPE"}, "CHORD"); err == nil {
		t.Fatal("missing child type accepted")
	}
	if _, err := db.DefineOrdering("x", []string{"NOTE"}, "NOPE"); err == nil {
		t.Fatal("missing parent type accepted")
	}
	if _, err := db.DefineOrdering("x", []string{"NOTE", "NOTE"}, "CHORD"); err == nil {
		t.Fatal("duplicate child type accepted")
	}
	if _, err := db.DefineOrdering("note_in_chord", []string{"NOTE"}, "CHORD"); err == nil {
		t.Fatal("duplicate ordering name accepted")
	}

	chord, _ := db.NewEntity("CHORD", nil)
	note, _ := db.NewEntity("NOTE", nil)
	// Wrong parent/child types.
	if err := db.InsertChild("note_in_chord", note, chord, Last()); !errors.Is(err, ErrWrongParent) {
		t.Fatalf("wrong parent: %v", err)
	}
	chord2, _ := db.NewEntity("CHORD", nil)
	if err := db.InsertChild("note_in_chord", chord, chord2, Last()); !errors.Is(err, ErrWrongChildType) {
		t.Fatalf("wrong child type: %v", err)
	}
	// Double insertion (one parent per ordering).
	if err := db.InsertChild("note_in_chord", chord, note, Last()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertChild("note_in_chord", chord2, note, Last()); !errors.Is(err, ErrAlreadyChild) {
		t.Fatalf("second parent accepted: %v", err)
	}
	// Missing ordering / entities.
	if err := db.InsertChild("nope", chord, note, Last()); !errors.Is(err, ErrNoOrdering) {
		t.Fatal("missing ordering")
	}
	if err := db.InsertChild("note_in_chord", value.Ref(9999), note, Last()); !errors.Is(err, ErrNoEntity) {
		t.Fatal("missing parent entity")
	}
	if err := db.InsertChild("note_in_chord", chord, value.Ref(9999), Last()); !errors.Is(err, ErrNoEntity) {
		t.Fatal("missing child entity")
	}
}

func TestPositions(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	chord, _ := db.NewEntity("CHORD", nil)
	mk := func(name int64) value.Ref {
		n, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(name)})
		return n
	}
	names := func() []int64 {
		kids, _ := db.Children("note_in_chord", chord)
		out := make([]int64, len(kids))
		for i, k := range kids {
			v, _ := db.Attr(k, "name")
			out[i] = v.AsInt()
		}
		return out
	}
	n1, n2, n3, n4, n5, n6 := mk(1), mk(2), mk(3), mk(4), mk(5), mk(6)
	db.InsertChild("note_in_chord", chord, n1, Last())                        // [1]
	db.InsertChild("note_in_chord", chord, n2, Last())                        // [1 2]
	db.InsertChild("note_in_chord", chord, n3, First())                       // [3 1 2]
	db.InsertChild("note_in_chord", chord, n4, Before(n1))                    // [3 4 1 2]
	db.InsertChild("note_in_chord", chord, n5, After(n1))                     // [3 4 1 5 2]
	if err := db.InsertChild("note_in_chord", chord, n6, At(2)); err != nil { // [3 4 6 1 5 2]
		t.Fatal(err)
	}
	got := names()
	want := []int64{3, 4, 6, 1, 5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
	// IndexOf and siblings.
	if i, _ := db.IndexOf("note_in_chord", n6); i != 2 {
		t.Fatalf("IndexOf = %d", i)
	}
	if s, ok := db.NextSibling("note_in_chord", n6); !ok || s != n1 {
		t.Fatal("NextSibling")
	}
	if s, ok := db.PrevSibling("note_in_chord", n6); !ok || s != n4 {
		t.Fatal("PrevSibling")
	}
	if _, ok := db.NextSibling("note_in_chord", n2); ok {
		t.Fatal("NextSibling at end")
	}
	if _, ok := db.PrevSibling("note_in_chord", n3); ok {
		t.Fatal("PrevSibling at start")
	}
	// Move: n2 to front.
	if err := db.MoveChild("note_in_chord", n2, First()); err != nil {
		t.Fatal(err)
	}
	if got := names(); got[0] != 2 {
		t.Fatalf("after move: %v", got)
	}
	// Remove.
	if err := db.RemoveChild("note_in_chord", n6); err != nil {
		t.Fatal(err)
	}
	if got := names(); len(got) != 5 {
		t.Fatalf("after remove: %v", got)
	}
	if err := db.RemoveChild("note_in_chord", n6); err == nil {
		t.Fatal("double remove accepted")
	}
	// At() out of range clamps to append/prepend.
	n7 := mk(7)
	if err := db.InsertChild("note_in_chord", chord, n7, At(100)); err != nil {
		t.Fatal(err)
	}
	got = names()
	if got[len(got)-1] != 7 {
		t.Fatalf("At(100) should append: %v", got)
	}
}

// TestMultiLevelHierarchy covers §5.5 "Multiple Levels of Hierarchy":
// notes under chords, chords under measures.
func TestMultiLevelHierarchy(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineEntity("MEASURE", value.Field{Name: "number", Kind: value.KindInt})
	db.DefineOrdering("chord_in_measure", []string{"CHORD"}, "MEASURE")

	m, _ := db.NewEntity("MEASURE", Attrs{"number": value.Int(1)})
	for c := 0; c < 3; c++ {
		chord, _ := db.NewEntity("CHORD", Attrs{"name": value.Int(int64(c))})
		db.InsertChild("chord_in_measure", m, chord, Last())
		for n := 0; n < 2; n++ {
			note, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(int64(c*10 + n))})
			db.InsertChild("note_in_chord", chord, note, Last())
		}
	}
	// Walking both orderings from the measure reaches all 10 entities.
	count := 0
	g, err := db.InstanceGraph(m, "")
	if err != nil {
		t.Fatal(err)
	}
	count = len(g.Nodes)
	if count != 10 {
		t.Fatalf("nodes = %d want 10", count)
	}
	// 9 P-edges (3 chords + 6 notes); S-edges: 2 between chords, 1 per
	// chord's note pair = 5.
	if len(g.PEdges) != 9 || len(g.SEdges) != 5 {
		t.Fatalf("edges: %d P, %d S", len(g.PEdges), len(g.SEdges))
	}
}

// TestMultipleOrderingsUnderParent covers §5.5 "Multiple Orderings Under
// a Parent": parts and staves both ordered under an instrument.
func TestMultipleOrderingsUnderParent(t *testing.T) {
	db := memModel(t)
	db.DefineEntity("INSTRUMENT", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("PART", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("STAFF", value.Field{Name: "name", Kind: value.KindString})
	db.DefineOrdering("part_in_instrument", []string{"PART"}, "INSTRUMENT")
	db.DefineOrdering("staff_in_instrument", []string{"STAFF"}, "INSTRUMENT")

	violin, _ := db.NewEntity("INSTRUMENT", Attrs{"name": value.Str("violin")})
	for i := 0; i < 3; i++ {
		p, _ := db.NewEntity("PART", nil)
		db.InsertChild("part_in_instrument", violin, p, Last())
	}
	for i := 0; i < 2; i++ {
		s, _ := db.NewEntity("STAFF", nil)
		db.InsertChild("staff_in_instrument", violin, s, Last())
	}
	parts, _ := db.Children("part_in_instrument", violin)
	staves, _ := db.Children("staff_in_instrument", violin)
	if len(parts) != 3 || len(staves) != 2 {
		t.Fatalf("3 parts on 2 staves expected: %d, %d", len(parts), len(staves))
	}
	// "The second part for the violin" is meaningful.
	second, err := db.ChildAt("part_in_instrument", violin, 1)
	if err != nil || second != parts[1] {
		t.Fatal("second part")
	}
}

// TestInhomogeneousOrdering covers §5.5: a voice is an ordered sequence
// of chords and rests, intermixed; "the second object under voice V" is
// of exactly one type.
func TestInhomogeneousOrdering(t *testing.T) {
	db := memModel(t)
	db.DefineEntity("VOICE", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("CHORD", value.Field{Name: "name", Kind: value.KindInt})
	db.DefineEntity("REST", value.Field{Name: "name", Kind: value.KindInt})
	db.DefineOrdering("voice_content", []string{"CHORD", "REST"}, "VOICE")

	v, _ := db.NewEntity("VOICE", nil)
	c1, _ := db.NewEntity("CHORD", Attrs{"name": value.Int(1)})
	r1, _ := db.NewEntity("REST", Attrs{"name": value.Int(2)})
	c2, _ := db.NewEntity("CHORD", Attrs{"name": value.Int(3)})
	for _, ref := range []value.Ref{c1, r1, c2} {
		if err := db.InsertChild("voice_content", v, ref, Last()); err != nil {
			t.Fatal(err)
		}
	}
	second, err := db.ChildAt("voice_content", v, 1)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := db.TypeOf(second)
	if second != r1 || tn != "REST" {
		t.Fatalf("second object should be the rest, got %s @%d", tn, second)
	}
	// Chords and rests are comparable within the ordering.
	if b, _ := db.BeforeIn("voice_content", c1, r1); !b {
		t.Fatal("chord before rest")
	}
	if b, _ := db.BeforeIn("voice_content", r1, c2); !b {
		t.Fatal("rest before chord")
	}
}

// TestMultipleParents covers §5.5 "Multiple Parents": a note has a chord
// parent in one ordering and a staff parent in another, independently.
func TestMultipleParents(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineEntity("STAFF", value.Field{Name: "name", Kind: value.KindString})
	db.DefineOrdering("note_on_staff", []string{"NOTE"}, "STAFF")

	chord, _ := db.NewEntity("CHORD", nil)
	staff1, _ := db.NewEntity("STAFF", nil)
	staff2, _ := db.NewEntity("STAFF", nil)
	// A chord lying across two staves: notes n1,n2 in one chord, but on
	// different staves.
	n1, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(1)})
	n2, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(2)})
	for _, n := range []value.Ref{n1, n2} {
		if err := db.InsertChild("note_in_chord", chord, n, Last()); err != nil {
			t.Fatal(err)
		}
	}
	db.InsertChild("note_on_staff", staff1, n1, Last())
	db.InsertChild("note_on_staff", staff2, n2, Last())

	// Same "per chord" ordering, different "per staff" orderings.
	if b, _ := db.BeforeIn("note_in_chord", n1, n2); !b {
		t.Fatal("chord ordering broken")
	}
	if b, _ := db.BeforeIn("note_on_staff", n1, n2); b {
		t.Fatal("different staff parents must be incomparable (false)")
	}
	p1, _ := db.ParentOf("note_in_chord", n1)
	p2, _ := db.ParentOf("note_on_staff", n1)
	if p1 != chord || p2 != staff1 {
		t.Fatal("independent parents broken")
	}
}

// TestRecursiveOrdering covers §5.5 and figure 8: beam groups containing
// beam groups and chords, with cycle prevention.
func TestRecursiveOrdering(t *testing.T) {
	db := memModel(t)
	db.DefineEntity("BEAM_GROUP", value.Field{Name: "name", Kind: value.KindString})
	db.DefineEntity("CHORD", value.Field{Name: "name", Kind: value.KindString})
	o, err := db.DefineOrdering("beam_content", []string{"BEAM_GROUP", "CHORD"}, "BEAM_GROUP")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Recursive() {
		t.Fatal("ordering should report recursive")
	}

	// Figure 8(b)/(c): g1 contains c1, g2, g3; g2 contains c2, c3;
	// g3 contains c4, g4; g4 contains c5, c6.
	mk := func(typ, name string) value.Ref {
		r, err := db.NewEntity(typ, Attrs{"name": value.Str(name)})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	g1, g2, g3, g4 := mk("BEAM_GROUP", "g1"), mk("BEAM_GROUP", "g2"), mk("BEAM_GROUP", "g3"), mk("BEAM_GROUP", "g4")
	c1, c2, c3, c4, c5, c6 := mk("CHORD", "c1"), mk("CHORD", "c2"), mk("CHORD", "c3"), mk("CHORD", "c4"), mk("CHORD", "c5"), mk("CHORD", "c6")
	ins := func(p, c value.Ref) {
		if err := db.InsertChild("beam_content", p, c, Last()); err != nil {
			t.Fatal(err)
		}
	}
	ins(g1, c1)
	ins(g1, g2)
	ins(g2, c2)
	ins(g2, c3)
	ins(g1, g3)
	ins(g3, c4)
	ins(g3, g4)
	ins(g4, c5)
	ins(g4, c6)

	// Depth-first walk yields the figure's structure.
	var labels []string
	var depths []int
	db.Walk("beam_content", g1, func(ref value.Ref, depth int) bool {
		v, _ := db.Attr(ref, "name")
		labels = append(labels, v.AsString())
		depths = append(depths, depth)
		return true
	})
	wantLabels := []string{"g1", "c1", "g2", "c2", "c3", "g3", "c4", "g4", "c5", "c6"}
	for i := range wantLabels {
		if labels[i] != wantLabels[i] {
			t.Fatalf("walk order %v want %v", labels, wantLabels)
		}
	}
	if depths[0] != 0 || depths[1] != 1 || depths[3] != 2 || depths[8] != 3 {
		t.Fatalf("depths %v", depths)
	}

	// Cycle prevention (§5.5 restrictions).
	if err := db.InsertChild("beam_content", g4, g1, Last()); !errors.Is(err, ErrPCycle) {
		t.Fatalf("P-cycle accepted: %v", err)
	}
	if err := db.InsertChild("beam_content", g2, g2, Last()); !errors.Is(err, ErrPCycle) {
		t.Fatalf("self-parent accepted: %v", err)
	}
	// A sibling chain that would close a cycle via parents is refused,
	// but a legitimate reattachment elsewhere is fine.
	if err := db.RemoveChild("beam_content", g2); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertChild("beam_content", g4, g2, Last()); err != nil {
		t.Fatal(err)
	}
	// Roots: only g1.
	roots, _ := db.Roots("beam_content")
	if len(roots) != 1 || roots[0] != g1 {
		t.Fatalf("roots = %v", roots)
	}
}

// TestRenumber forces rank-gap exhaustion by repeatedly inserting at the
// same interior position, and checks the order survives.
func TestRenumber(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	chord, _ := db.NewEntity("CHORD", nil)
	first, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(0)})
	db.InsertChild("note_in_chord", chord, first, Last())
	last, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(9999)})
	db.InsertChild("note_in_chord", chord, last, Last())
	// Repeated Before(last) bisects the same gap each time: gap 2^20
	// is exhausted after ~20 insertions, forcing renumbering.
	const n = 60
	for i := 1; i <= n; i++ {
		note, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(int64(i))})
		if err := db.InsertChild("note_in_chord", chord, note, Before(last)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	kids, _ := db.Children("note_in_chord", chord)
	if len(kids) != n+2 {
		t.Fatalf("children = %d", len(kids))
	}
	// Expected order: 0, 1, 2, ..., n, 9999.
	v, _ := db.Attr(kids[0], "name")
	if v.AsInt() != 0 {
		t.Fatal("first moved")
	}
	for i := 1; i <= n; i++ {
		v, _ := db.Attr(kids[i], "name")
		if v.AsInt() != int64(i) {
			t.Fatalf("position %d has name %d", i, v.AsInt())
		}
	}
	v, _ = db.Attr(kids[n+1], "name")
	if v.AsInt() != 9999 {
		t.Fatal("last moved")
	}
}

func TestDeleteEntitySemantics(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineRelationship("SIMILAR", []Role{
		{Name: "a", EntityType: "NOTE"}, {Name: "b", EntityType: "NOTE"},
	})
	chord, _ := db.NewEntity("CHORD", nil)
	n1, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(1)})
	n2, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(2)})
	db.InsertChild("note_in_chord", chord, n1, Last())
	db.InsertChild("note_in_chord", chord, n2, Last())
	db.Relate("SIMILAR", map[string]value.Ref{"a": n1, "b": n2}, nil)

	// Deleting a parent with children is refused.
	if err := db.DeleteEntity(chord); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("parent delete: %v", err)
	}
	// Deleting a child detaches it and removes its relationships.
	if err := db.DeleteEntity(n1); err != nil {
		t.Fatal(err)
	}
	if db.Exists(n1) {
		t.Fatal("entity survives delete")
	}
	kids, _ := db.Children("note_in_chord", chord)
	if len(kids) != 1 || kids[0] != n2 {
		t.Fatalf("children after delete: %v", kids)
	}
	insts, _ := db.Related("SIMILAR", "", n2)
	if len(insts) != 0 {
		t.Fatal("relationship survives participant delete")
	}
	// Subtree delete removes everything.
	if err := db.DeleteSubtree(chord); err != nil {
		t.Fatal(err)
	}
	if db.Exists(chord) || db.Exists(n2) {
		t.Fatal("subtree delete incomplete")
	}
	if db.Count("NOTE") != 0 || db.Count("CHORD") != 0 {
		t.Fatal("counts after subtree delete")
	}
}

func TestInstancesAndFind(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	refs, err := db.NewEntities("NOTE", 10, func(i int) Attrs {
		return Attrs{"name": value.Int(int64(i)), "pitch": value.Int(int64(60 + i%3))}
	})
	if err != nil || len(refs) != 10 {
		t.Fatal(err)
	}
	count := 0
	db.Instances("NOTE", func(ref value.Ref, attrs value.Tuple) bool {
		count++
		return true
	})
	if count != 10 || db.Count("NOTE") != 10 {
		t.Fatalf("instances = %d", count)
	}
	found, err := db.FindByAttr("NOTE", "pitch", value.Int(61))
	if err != nil || len(found) != 3 {
		t.Fatalf("FindByAttr: %v %v", found, err)
	}
	if err := db.Instances("NOPE", nil); !errors.Is(err, ErrNoEntityType) {
		t.Fatal("Instances on missing type")
	}
	if _, err := db.FindByAttr("NOTE", "bogus", value.Null); !errors.Is(err, ErrNoAttribute) {
		t.Fatal("FindByAttr on missing attr")
	}
}

func TestFindOrdering(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineEntity("STAFF")
	db.DefineOrdering("note_on_staff", []string{"NOTE"}, "STAFF")

	if o, err := db.FindOrdering("note_in_chord", "", ""); err != nil || o.Name != "note_in_chord" {
		t.Fatal("by name")
	}
	if _, err := db.FindOrdering("nope", "", ""); !errors.Is(err, ErrNoOrdering) {
		t.Fatal("missing name")
	}
	if o, err := db.FindOrdering("", "NOTE", "CHORD"); err != nil || o.Name != "note_in_chord" {
		t.Fatalf("by types: %v", err)
	}
	if _, err := db.FindOrdering("", "NOTE", ""); err == nil {
		t.Fatal("ambiguous reference accepted")
	}
	if _, err := db.FindOrdering("", "CHORD", ""); !errors.Is(err, ErrNoOrdering) {
		t.Fatal("no match")
	}
}

func TestAutoNamedOrdering(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineEntity("MEASURE")
	o, err := db.DefineOrdering("", []string{"CHORD"}, "MEASURE")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name == "" {
		t.Fatal("auto name empty")
	}
	if _, ok := db.OrderingByName(o.Name); !ok {
		t.Fatal("auto-named ordering not registered")
	}
}

func TestHOGraph(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	db.DefineEntity("MEASURE")
	db.DefineOrdering("chord_in_measure", []string{"CHORD"}, "MEASURE")
	g := db.HOGraph()
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	if len(g.Nodes) != 3 { // NOTE, CHORD, MEASURE
		t.Fatalf("nodes = %v", g.Nodes)
	}
	g2 := db.HOGraph("note_in_chord")
	if len(g2.Edges) != 1 || g2.Edges[0].Parent != "CHORD" {
		t.Fatal("restricted graph")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	defineChordSchema(t, db)
	chord, _ := db.NewEntity("CHORD", Attrs{"name": value.Int(7)})
	var notes []value.Ref
	for i := 0; i < 5; i++ {
		n, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(int64(i)), "pitch": value.Int(int64(60 + i))})
		db.InsertChild("note_in_chord", chord, n, First()) // reverse order
		notes = append(notes, n)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := storage.Open(storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	db2, err := Open(store2)
	if err != nil {
		t.Fatal(err)
	}
	// Schema survived.
	if _, ok := db2.EntityType("NOTE"); !ok {
		t.Fatal("entity type lost")
	}
	o, ok := db2.OrderingByName("note_in_chord")
	if !ok || o.Parent != "CHORD" || len(o.Children) != 1 {
		t.Fatal("ordering lost")
	}
	// Instance data and order survived (First() insertion → reversed).
	kids, err := db2.Children("note_in_chord", chord)
	if err != nil || len(kids) != 5 {
		t.Fatalf("children after reopen: %v %v", kids, err)
	}
	for i, k := range kids {
		v, err := db2.Attr(k, "name")
		if err != nil || v.AsInt() != int64(4-i) {
			t.Fatalf("order after reopen at %d: %v %v", i, v, err)
		}
	}
	// New entities get fresh surrogates (no collision with old refs).
	fresh, err := db2.NewEntity("NOTE", Attrs{"name": value.Int(99)})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range notes {
		if fresh == old {
			t.Fatal("surrogate collision after reopen")
		}
	}
	if fresh <= chord {
		t.Fatal("surrogate sequence regressed")
	}
}
