package model

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/value"
)

// ixByParentRank is the secondary index every ordering relation carries
// over (parent, rank): snapshot reads derive sibling order from it
// instead of the in-memory sibling trees, which always reflect the
// latest committed state rather than the pinned CSN.
const ixByParentRank = "by_parent_rank"

// keySuffixMax is a suffix strictly greater than any row-id or rank
// continuation an index key can carry (row-id suffixes are 8 bytes, a
// rank continuation is at most 17+8), making enc(prefix)+keySuffixMax an
// exclusive upper bound for "all keys starting with enc(prefix)".
var keySuffixMax = bytes.Repeat([]byte{0xFF}, 26)

// prefixSuccessor returns the smallest byte string greater than every
// string with prefix p, or nil (unbounded) when no such string exists.
func prefixSuccessor(p []byte) []byte {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0xFF {
			s := append([]byte(nil), p[:i+1]...)
			s[i]++
			return s
		}
	}
	return nil
}

// Snap is a model-level read snapshot: entity, relationship, and
// ordering reads against one pinned CSN, acquiring no locks.  All
// methods observe the same committed prefix of history, so an ordering
// traversal can never see a torn move (child detached but not yet
// re-attached) the way an unsynchronized pair of locking reads could.
//
// The schema is NOT versioned: a Snap resolves entity types, orderings,
// and index names against the current catalog (DDL is rare,
// model-serialized, and additive in practice).  Data reads — instances,
// relationship tuples, sibling structure — are fully snapshot-consistent.
type Snap struct {
	db *Database
	s  *storage.Snap
}

// BeginSnapshot pins the current commit sequence number and returns a
// lock-free model read view.  Close it promptly: an open snapshot holds
// back version garbage collection.
func (db *Database) BeginSnapshot(ctx context.Context) (*Snap, error) {
	s, err := db.store.BeginSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	return &Snap{db: db, s: s}, nil
}

// CSN returns the snapshot's pinned commit sequence number.
func (s *Snap) CSN() uint64 { return s.s.CSN() }

// Close unpins the snapshot.
func (s *Snap) Close() {
	if s != nil {
		s.s.Close()
	}
}

// Instances is Database.Instances against the snapshot: every instance
// of the named entity type visible at the pinned CSN, in creation
// order.
func (s *Snap) Instances(typeName string, fn func(ref value.Ref, attrs value.Tuple) bool) error {
	if _, ok := s.db.EntityType(typeName); !ok {
		return fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	return s.s.Scan(entPrefix+typeName, func(_ storage.RowID, t value.Tuple) bool {
		return fn(t[0].AsRef(), t[1:])
	})
}

// InstancesRange is Database.InstancesRange against the snapshot.
func (s *Snap) InstancesRange(typeName, indexName string, lo, hi []byte, reverse bool, fn func(ref value.Ref, attrs value.Tuple) bool) error {
	if _, ok := s.db.EntityType(typeName); !ok {
		return fmt.Errorf("%w: %s", ErrNoEntityType, typeName)
	}
	return s.s.IndexRange(entPrefix+typeName, indexName, lo, hi, reverse, func(_ storage.RowID, t value.Tuple) bool {
		return fn(t[0].AsRef(), t[1:])
	})
}

// RelationshipTuples is Database.RelationshipTuples against the
// snapshot: the raw role+attribute tuples of the named relationship
// type visible at the pinned CSN.
func (s *Snap) RelationshipTuples(name string, fn func(t value.Tuple) bool) error {
	if _, ok := s.db.RelationshipType(name); !ok {
		return fmt.Errorf("%w: %s", ErrNoRelationship, name)
	}
	return s.s.Scan(relPrefix+name, func(_ storage.RowID, t value.Tuple) bool {
		return fn(t)
	})
}

// ChildPosition returns child's P-edge parent and rank in the named
// ordering as of the snapshot, with ok false if child was not placed in
// it.  It probes the ordering relation's unique by_child index rather
// than the in-memory runtime, which tracks the latest state only.
func (s *Snap) ChildPosition(ordering string, child value.Ref) (parent value.Ref, rank int64, ok bool, err error) {
	if _, exists := s.db.OrderingByName(ordering); !exists {
		return 0, 0, false, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	lo := value.AppendKey(nil, value.RefVal(child))
	hi := append(append([]byte(nil), lo...), keySuffixMax...)
	err = s.s.IndexRange(ordPrefix+ordering, "by_child", lo, hi, false,
		func(_ storage.RowID, t value.Tuple) bool {
			parent, rank, ok = t[0].AsRef(), t[2].AsInt(), true
			return false
		})
	return parent, rank, ok, err
}

// Children returns the ordered children of parent in the named ordering
// as of the snapshot, via a prefix range over the by_parent_rank index
// (key order is rank order).
func (s *Snap) Children(ordering string, parent value.Ref) ([]value.Ref, error) {
	if _, ok := s.db.OrderingByName(ordering); !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoOrdering, ordering)
	}
	lo := value.AppendKey(nil, value.RefVal(parent))
	hi := append(append([]byte(nil), lo...), keySuffixMax...)
	var out []value.Ref
	err := s.s.IndexRange(ordPrefix+ordering, ixByParentRank, lo, hi, false,
		func(_ storage.RowID, t value.Tuple) bool {
			out = append(out, t[1].AsRef())
			return true
		})
	return out, err
}

// SiblingsBefore returns, in sibling order, the children preceding
// child under its parent in the named ordering as of the snapshot.
func (s *Snap) SiblingsBefore(ordering string, child value.Ref) ([]value.Ref, error) {
	return s.siblingRange(ordering, child, true)
}

// SiblingsAfter returns, in sibling order, the children following child
// under its parent in the named ordering as of the snapshot.
func (s *Snap) SiblingsAfter(ordering string, child value.Ref) ([]value.Ref, error) {
	return s.siblingRange(ordering, child, false)
}

func (s *Snap) siblingRange(ordering string, child value.Ref, before bool) ([]value.Ref, error) {
	parent, rank, ok, err := s.ChildPosition(ordering, child)
	if err != nil || !ok {
		return nil, err
	}
	pk := value.AppendKey(nil, value.RefVal(parent))
	mid := value.AppendKey(append([]byte(nil), pk...), value.Int(rank))
	var lo, hi []byte
	if before {
		// [parent, parent+rank): every sibling with a smaller rank.
		lo, hi = pk, mid
	} else {
		// (parent+rank+∞, parent+∞): past child's own key (whatever its
		// row-id suffix), up to the end of the parent's prefix.
		lo = append(mid, keySuffixMax...)
		hi = prefixSuccessor(pk)
	}
	var out []value.Ref
	err = s.s.IndexRange(ordPrefix+ordering, ixByParentRank, lo, hi, false,
		func(_ storage.RowID, t value.Tuple) bool {
			out = append(out, t[1].AsRef())
			return true
		})
	return out, err
}
