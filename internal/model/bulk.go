package model

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/value"
)

// BulkEntity describes one entity to create in a BulkInsert batch.
// RefAttrs assigns reference attributes whose target is another entity
// of the same batch, identified by its index; the target must precede
// this entity in the batch (its surrogate is assigned first).
type BulkEntity struct {
	Type     string
	Attrs    Attrs
	RefAttrs map[string]int
}

// BulkEdge describes one ordering append in a BulkInsert batch: the
// child (an index into the batch's entities) is appended after the
// current last sibling under the parent.  The parent is either another
// in-batch entity (Parent >= 0) or a pre-existing one (Parent < 0 and
// ExternalParent set).
type BulkEdge struct {
	Ordering       string
	Parent         int // index into the batch; < 0 means ExternalParent
	ExternalParent value.Ref
	Child          int // index into the batch
}

// BulkInsert creates a batch of entities and ordering edges in a single
// storage transaction — one commit (one group-commit round, one fsync)
// for the whole batch, against the one-transaction-per-entity-and-edge
// cost of NewEntity + InsertChild.  It is the streaming bulk loader's
// write path.
//
// Every edge's child must be an in-batch entity, so the §5.5
// well-formedness checks reduce to type checks: a freshly created child
// has no prior parent, and no P-cycle can pass through it.  Edges
// always append (model.Last()); ranks are computed from the runtime's
// last sibling plus the standard gap, without per-edge transactions.
//
// Like InsertChild, the model mutex is held for the duration: ordering
// rank assignment must not interleave with concurrent mutations of the
// same parents.  On error nothing is committed and no runtime state
// changes.
func (db *Database) BulkInsert(entities []BulkEntity, edges []BulkEdge) ([]value.Ref, error) {
	db.mu.Lock()
	defer db.mu.Unlock()

	// Validate and build tuples before touching storage.  In-batch
	// reference attributes are recorded as patches and resolved once the
	// target's surrogate has been assigned inside the transaction.
	type refPatch struct {
		tupleIx int
		target  int
	}
	tuples := make([]value.Tuple, len(entities))
	patches := make([][]refPatch, len(entities))
	for i, be := range entities {
		et, ok := db.entities[be.Type]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoEntityType, be.Type)
		}
		for name := range be.Attrs {
			if _, ok := et.AttrIndex(name); !ok {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoAttribute, be.Type, name)
			}
		}
		t := make(value.Tuple, len(et.Attrs)+1)
		for j, a := range et.Attrs {
			if v, ok := be.Attrs[a.Name]; ok {
				t[j+1] = v
			} else {
				t[j+1] = value.Null
			}
		}
		for name, target := range be.RefAttrs {
			j, ok := et.AttrIndex(name)
			if !ok {
				return nil, fmt.Errorf("%w: %s.%s", ErrNoAttribute, be.Type, name)
			}
			if target < 0 || target >= i {
				return nil, fmt.Errorf("model: bulk ref attr %s.%s must target an earlier batch entity, got %d", be.Type, name, target)
			}
			patches[i] = append(patches[i], refPatch{tupleIx: j + 1, target: target})
		}
		tuples[i] = t
	}
	type plannedEdge struct {
		ordering string
		parent   value.Ref // 0 when in-batch; resolved at insert time
		parentIx int
		child    int
		rank     int64
	}
	// lastRank tracks the running append rank per (ordering, parent) so
	// several appends under one parent inside the batch stay ordered.
	type opKey struct {
		ordering string
		parentIx int // -1 for external parents
		external value.Ref
	}
	lastRank := make(map[opKey]int64)
	planned := make([]plannedEdge, 0, len(edges))
	for _, e := range edges {
		o, ok := db.orderings[e.Ordering]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoOrdering, e.Ordering)
		}
		if e.Child < 0 || e.Child >= len(entities) {
			return nil, fmt.Errorf("model: bulk edge child %d out of range", e.Child)
		}
		if !o.hasChild(entities[e.Child].Type) {
			return nil, fmt.Errorf("%w: %s under ordering %s", ErrWrongChildType, entities[e.Child].Type, e.Ordering)
		}
		pe := plannedEdge{ordering: e.Ordering, child: e.Child, parentIx: e.Parent}
		var parentType string
		key := opKey{ordering: e.Ordering, parentIx: e.Parent}
		if e.Parent >= 0 {
			if e.Parent >= len(entities) {
				return nil, fmt.Errorf("model: bulk edge parent %d out of range", e.Parent)
			}
			parentType = entities[e.Parent].Type
		} else {
			loc, ok := db.directory[e.ExternalParent]
			if !ok {
				return nil, fmt.Errorf("%w: parent @%d", ErrNoEntity, e.ExternalParent)
			}
			parentType = loc.typeName
			pe.parent = e.ExternalParent
			key.parentIx = -1
			key.external = e.ExternalParent
		}
		if parentType != o.Parent {
			return nil, fmt.Errorf("%w: %s is not parent type %s of ordering %s", ErrWrongParent, parentType, o.Parent, e.Ordering)
		}
		rank, seeded := lastRank[key]
		if !seeded {
			rank = 0
			if e.Parent < 0 {
				if tr := db.orders[e.Ordering].siblings[e.ExternalParent]; tr != nil && tr.Len() > 0 {
					k, _, _ := tr.At(tr.Len() - 1)
					rank = decodeRank(k) + rankGap
				}
			}
		} else {
			rank += rankGap
		}
		lastRank[key] = rank
		pe.rank = rank
		planned = append(planned, pe)
	}

	// One transaction for the whole batch: entity rows first (assigning
	// refs), then edge rows.
	refs := make([]value.Ref, len(entities))
	rowIDs := make([]storage.RowID, len(entities))
	edgeRows := make([]storage.RowID, len(planned))
	err := db.store.Run(func(tx *storage.Tx) error {
		for i, be := range entities {
			ref := value.Ref(db.store.NextSeq("ref"))
			refs[i] = ref
			tuples[i][0] = value.RefVal(ref)
			for _, p := range patches[i] {
				tuples[i][p.tupleIx] = value.RefVal(refs[p.target])
			}
			id, err := tx.Insert(entPrefix+be.Type, tuples[i])
			if err != nil {
				return err
			}
			rowIDs[i] = id
		}
		for i, pe := range planned {
			parent := pe.parent
			if pe.parentIx >= 0 {
				parent = refs[pe.parentIx]
			}
			id, err := tx.Insert(ordPrefix+pe.ordering, value.Tuple{
				value.RefVal(parent), value.RefVal(refs[pe.child]), value.Int(pe.rank),
			})
			if err != nil {
				return err
			}
			edgeRows[i] = id
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, be := range entities {
		db.directory[refs[i]] = entityLoc{typeName: be.Type, rowID: rowIDs[i]}
	}
	for i, pe := range planned {
		parent := pe.parent
		if pe.parentIx >= 0 {
			parent = refs[pe.parentIx]
		}
		db.orders[pe.ordering].attach(parent, refs[pe.child], pe.rank, edgeRows[i])
	}
	return refs, nil
}
