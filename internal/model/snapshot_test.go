package model

import (
	"context"
	"testing"

	"repro/internal/value"
)

// TestSnapshotOrderingIsolation: a snapshot pinned before a MoveChild
// keeps serving the old sibling order — Children, ChildPosition,
// SiblingsBefore, SiblingsAfter — while a fresh snapshot serves the new
// one, both agreeing with the live runtime at their respective points.
func TestSnapshotOrderingIsolation(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)

	chord, err := db.NewEntity("CHORD", Attrs{"name": value.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	notes := make([]value.Ref, 4)
	for i := range notes {
		n, err := db.NewEntity("NOTE", Attrs{"name": value.Int(int64(i)), "pitch": value.Int(int64(60 + i))})
		if err != nil {
			t.Fatal(err)
		}
		notes[i] = n
		if err := db.InsertChild("note_in_chord", chord, n, Last()); err != nil {
			t.Fatal(err)
		}
	}

	old, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	// Move the last note to the front.
	if err := db.MoveChild("note_in_chord", notes[3], First()); err != nil {
		t.Fatal(err)
	}

	wantOld := []value.Ref{notes[0], notes[1], notes[2], notes[3]}
	wantNew := []value.Ref{notes[3], notes[0], notes[1], notes[2]}

	if got, err := old.Children("note_in_chord", chord); err != nil || !refsEqual(got, wantOld) {
		t.Fatalf("old snapshot children = %v (%v), want %v", got, err, wantOld)
	}
	fresh, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got, err := fresh.Children("note_in_chord", chord); err != nil || !refsEqual(got, wantNew) {
		t.Fatalf("fresh snapshot children = %v (%v), want %v", got, err, wantNew)
	}
	if got, err := db.Children("note_in_chord", chord); err != nil || !refsEqual(got, wantNew) {
		t.Fatalf("live children = %v (%v), want %v", got, err, wantNew)
	}

	// Sibling probes around notes[1]: old order 0 < 1 < 2 < 3, new order
	// 3 < 0 < 1 < 2.
	if got, err := old.SiblingsBefore("note_in_chord", notes[1]); err != nil || !refsEqual(got, []value.Ref{notes[0]}) {
		t.Fatalf("old SiblingsBefore = %v (%v)", got, err)
	}
	if got, err := old.SiblingsAfter("note_in_chord", notes[1]); err != nil || !refsEqual(got, []value.Ref{notes[2], notes[3]}) {
		t.Fatalf("old SiblingsAfter = %v (%v)", got, err)
	}
	if got, err := fresh.SiblingsBefore("note_in_chord", notes[1]); err != nil || !refsEqual(got, []value.Ref{notes[3], notes[0]}) {
		t.Fatalf("fresh SiblingsBefore = %v (%v)", got, err)
	}
	if got, err := fresh.SiblingsAfter("note_in_chord", notes[1]); err != nil || !refsEqual(got, []value.Ref{notes[2]}) {
		t.Fatalf("fresh SiblingsAfter = %v (%v)", got, err)
	}

	// ChildPosition: parent agrees everywhere; the moved child's rank
	// differs between the snapshots.
	oldParent, oldRank, ok, err := old.ChildPosition("note_in_chord", notes[3])
	if err != nil || !ok || oldParent != chord {
		t.Fatalf("old ChildPosition: %v %v %v %v", oldParent, oldRank, ok, err)
	}
	newParent, newRank, ok, err := fresh.ChildPosition("note_in_chord", notes[3])
	if err != nil || !ok || newParent != chord {
		t.Fatalf("fresh ChildPosition: %v %v %v %v", newParent, newRank, ok, err)
	}
	if oldRank <= 0 || newRank >= oldRank {
		t.Fatalf("move did not lower the rank: old %d, new %d", oldRank, newRank)
	}
}

// TestSnapshotOrderingRemove: a child detached after the pin is still
// placed in the old snapshot and absent from a fresh one.
func TestSnapshotOrderingRemove(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	chord, _ := db.NewEntity("CHORD", Attrs{"name": value.Int(1)})
	a, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(1), "pitch": value.Int(60)})
	b, _ := db.NewEntity("NOTE", Attrs{"name": value.Int(2), "pitch": value.Int(62)})
	for _, n := range []value.Ref{a, b} {
		if err := db.InsertChild("note_in_chord", chord, n, Last()); err != nil {
			t.Fatal(err)
		}
	}
	old, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := db.RemoveChild("note_in_chord", a); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := old.ChildPosition("note_in_chord", a); err != nil || !ok {
		t.Fatalf("old snapshot lost the removed child: ok=%v err=%v", ok, err)
	}
	fresh, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, _, ok, err := fresh.ChildPosition("note_in_chord", a); err != nil || ok {
		t.Fatalf("fresh snapshot still places the removed child: ok=%v err=%v", ok, err)
	}
	if got, err := fresh.Children("note_in_chord", chord); err != nil || !refsEqual(got, []value.Ref{b}) {
		t.Fatalf("fresh children = %v (%v)", got, err)
	}
}

// TestSnapshotInstancesAndAttrs: instance scans and attribute updates
// respect the pin, over the heap and the by_parent_rank-free entity
// indexes alike.
func TestSnapshotInstancesAndAttrs(t *testing.T) {
	db := memModel(t)
	defineChordSchema(t, db)
	n, err := db.NewEntity("NOTE", Attrs{"name": value.Int(1), "pitch": value.Int(60)})
	if err != nil {
		t.Fatal(err)
	}
	old, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := db.SetAttrs(n, Attrs{"pitch": value.Int(72)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewEntity("NOTE", Attrs{"name": value.Int(2), "pitch": value.Int(64)}); err != nil {
		t.Fatal(err)
	}

	pitches := func(s *Snap) []int64 {
		var out []int64
		if err := s.Instances("NOTE", func(_ value.Ref, attrs value.Tuple) bool {
			out = append(out, attrs[1].AsInt())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := pitches(old); len(got) != 1 || got[0] != 60 {
		t.Fatalf("old snapshot instances = %v", got)
	}
	fresh, err := db.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got := pitches(fresh); len(got) != 2 || got[0] != 72 || got[1] != 64 {
		t.Fatalf("fresh snapshot instances = %v", got)
	}
	if _, err := old.Children("no_such_ordering", n); err == nil {
		t.Fatal("unknown ordering accepted")
	}
	if err := old.Instances("NOPE", func(value.Ref, value.Tuple) bool { return true }); err == nil {
		t.Fatal("unknown entity type accepted")
	}
}

func refsEqual(a, b []value.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
