// Package client is the Go driver for a served music data manager
// (cmd/mdmd).  It speaks the internal/wire protocol over a small pool
// of TCP connections, supports context cancelation over the wire (a
// canceled context sends a Cancel frame and the server aborts the
// in-flight statement), and reconstructs server failures as the same
// mdm.Err* sentinels an in-process caller would see, so
// errors.Is(err, mdm.ErrOverloaded) works across the network.
package client

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/mdm"
	"repro/internal/quel"
	"repro/internal/value"
	"repro/internal/wire"
)

// Options configure a Client.
type Options struct {
	// Addr is the server's TCP address, e.g. "127.0.0.1:7474".
	Addr string
	// PoolSize caps open connections (and therefore this client's
	// concurrent statements).  Zero defaults to 4.
	PoolSize int
	// DialTimeout bounds connection establishment.  Zero defaults to 5s.
	DialTimeout time.Duration
	// Token is presented in the Hello handshake when the server requires
	// auth.
	Token string
	// TLS, when set, wraps every connection.
	TLS *tls.Config
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.PoolSize <= 0 {
		out.PoolSize = 4
	}
	if out.DialTimeout <= 0 {
		out.DialTimeout = 5 * time.Second
	}
	return out
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// Client is a pooled connection to one mdmd server.  Safe for
// concurrent use; each call checks out a connection for the duration of
// one request/response exchange.
type Client struct {
	opts Options

	sem chan struct{} // connection permits, cap PoolSize

	mu     sync.Mutex
	idle   []*cconn
	closed bool
}

// cconn is one established, handshaken connection.  It is owned by at
// most one goroutine at a time (checked out of the pool), except that a
// context watcher may concurrently write a Cancel frame — wire.Conn
// serializes writers.
type cconn struct {
	nc      net.Conn
	wc      *wire.Conn
	nextReq uint64
	// stmts caches server-side statement ids by source text, so a
	// client Stmt re-executed on this connection skips the Prepare
	// round trip.
	stmts  map[string]wire.StmtOK
	broken bool
}

// Dial validates options and returns a Client.  Connections are
// established lazily; use Ping to verify reachability eagerly.
func Dial(opts Options) (*Client, error) {
	if opts.Addr == "" {
		return nil, fmt.Errorf("client: no server address")
	}
	opts = opts.withDefaults()
	return &Client{
		opts: opts,
		sem:  make(chan struct{}, opts.PoolSize),
	}, nil
}

// Close closes the client and all pooled connections.  In-flight calls
// fail as their connections close.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	idle := cl.idle
	cl.idle = nil
	cl.mu.Unlock()
	for _, c := range idle {
		c.nc.Close()
	}
	return nil
}

// dial establishes and handshakes one connection.
func (cl *Client) dial(ctx context.Context) (*cconn, error) {
	d := net.Dialer{Timeout: cl.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", cl.opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", cl.opts.Addr, err)
	}
	if cl.opts.TLS != nil {
		nc = tls.Client(nc, cl.opts.TLS)
	}
	c := &cconn{nc: nc, wc: wire.NewConn(nc), stmts: make(map[string]wire.StmtOK)}
	c.nextReq++
	if err := c.wc.Write(c.nextReq, wire.Hello{Proto: wire.ProtoVersion, Token: cl.opts.Token}); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	_, m, err := c.wc.Read()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch x := m.(type) {
	case wire.HelloOK:
		return c, nil
	case wire.Error:
		nc.Close()
		return nil, x.Err()
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake reply %T", m)
	}
}

// acquire checks a connection out of the pool, dialing if none is idle
// and the pool is under its cap.
func (cl *Client) acquire(ctx context.Context) (*cconn, error) {
	select {
	case cl.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %w", mdm.ErrCanceled, ctx.Err())
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		<-cl.sem
		return nil, ErrClosed
	}
	var c *cconn
	if n := len(cl.idle); n > 0 {
		c = cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
	}
	cl.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := cl.dial(ctx)
	if err != nil {
		<-cl.sem
		return nil, err
	}
	return c, nil
}

// release returns a connection to the pool, discarding it if it broke
// or the client closed.
func (cl *Client) release(c *cconn) {
	defer func() { <-cl.sem }()
	if c.broken {
		c.nc.Close()
		return
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		c.nc.Close()
		return
	}
	cl.idle = append(cl.idle, c)
	cl.mu.Unlock()
}

// roundTrip sends one request and waits for its response.  While
// waiting, a context watcher sends a Cancel frame the moment ctx fires;
// the server then aborts the statement and answers Error{CodeCanceled},
// so the connection stays usable.
func (c *cconn) roundTrip(ctx context.Context, m wire.Msg) (wire.Msg, error) {
	c.nextReq++
	id := c.nextReq
	if err := c.wc.Write(id, m); err != nil {
		c.broken = true
		return nil, err
	}
	done := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			c.wc.Write(id, wire.Cancel{Req: id})
		case <-done:
		}
	}()
	defer func() {
		close(done)
		<-watcher
	}()
	for {
		rid, reply, err := c.wc.Read()
		if err != nil {
			c.broken = true
			return nil, err
		}
		if rid != id {
			continue // stale frame from a prior exchange; skip
		}
		if e, ok := reply.(wire.Error); ok {
			return nil, e.Err()
		}
		return reply, nil
	}
}

// ExecContext runs DDL or QUEL source on the server and returns the
// wire-level result.
func (cl *Client) ExecContext(ctx context.Context, src string) (*wire.Result, error) {
	c, err := cl.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer cl.release(c)
	reply, err := c.roundTrip(ctx, wire.Exec{Src: src})
	if err != nil {
		return nil, err
	}
	res, ok := reply.(wire.Result)
	if !ok {
		c.broken = true
		return nil, fmt.Errorf("client: unexpected reply %T to exec", reply)
	}
	return &res, nil
}

// QueryContext runs a QUEL retrieve and returns its rows as a
// quel.Result, matching the in-process Session.QueryContext shape.
func (cl *Client) QueryContext(ctx context.Context, src string) (*quel.Result, error) {
	res, err := cl.ExecContext(ctx, src)
	if err != nil {
		return nil, err
	}
	return &quel.Result{Columns: res.Columns, Rows: res.Rows, Affected: int(res.Affected)}, nil
}

// Ping round-trips an out-of-band liveness check.
func (cl *Client) Ping(ctx context.Context) error {
	c, err := cl.acquire(ctx)
	if err != nil {
		return err
	}
	defer cl.release(c)
	reply, err := c.roundTrip(ctx, wire.Ping{})
	if err != nil {
		return err
	}
	if _, ok := reply.(wire.Pong); !ok {
		c.broken = true
		return fmt.Errorf("client: unexpected reply %T to ping", reply)
	}
	return nil
}

// Stmt is a client-side handle on a parameterized statement.  The
// source is prepared lazily, once per pooled connection, and the
// server-side statement id is cached on that connection.
type Stmt struct {
	cl  *Client
	src string
}

// Prepare returns a statement handle for parameterized QUEL source
// (placeholders $1, $2, ...).  No network traffic happens until the
// first execution; a parse error therefore surfaces from ExecContext.
func (cl *Client) Prepare(src string) *Stmt {
	return &Stmt{cl: cl, src: src}
}

// ExecContext executes the statement with args bound to its
// placeholders.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*wire.Result, error) {
	tup := make(value.Tuple, len(args))
	for i, a := range args {
		v, err := value.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("%w: arg %d: %w", mdm.ErrBadParam, i+1, err)
		}
		tup[i] = v
	}
	c, err := st.cl.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer st.cl.release(c)
	info, ok := c.stmts[st.src]
	if !ok {
		reply, err := c.roundTrip(ctx, wire.Prepare{Src: st.src})
		if err != nil {
			return nil, err
		}
		info, ok = reply.(wire.StmtOK)
		if !ok {
			c.broken = true
			return nil, fmt.Errorf("client: unexpected reply %T to prepare", reply)
		}
		c.stmts[st.src] = info
	}
	if uint64(len(tup)) != info.NumParams {
		return nil, fmt.Errorf("%w: statement wants %d args, got %d", mdm.ErrBadParam, info.NumParams, len(tup))
	}
	reply, err := c.roundTrip(ctx, wire.ExecStmt{StmtID: info.StmtID, Args: tup})
	if err != nil {
		return nil, err
	}
	res, ok := reply.(wire.Result)
	if !ok {
		c.broken = true
		return nil, fmt.Errorf("client: unexpected reply %T to exec-stmt", reply)
	}
	return &res, nil
}

// QueryContext executes the statement and shapes the rows as a
// quel.Result.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*quel.Result, error) {
	res, err := st.ExecContext(ctx, args...)
	if err != nil {
		return nil, err
	}
	return &quel.Result{Columns: res.Columns, Rows: res.Rows, Affected: int(res.Affected)}, nil
}
