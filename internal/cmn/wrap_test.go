package cmn

import (
	"testing"

	"repro/internal/value"
)

func TestByRefWrappers(t *testing.T) {
	m := newMusic(t)
	score, mv, v1, _, staff := buildTwoVoices(t, m)
	measures, _ := mv.Measures()
	content, _ := v1.Content()
	chord := content[0].Ref
	notes, _ := (&Chord{node{m, chord}}).Notes()
	group, _ := v1.NewGroup("slur", 0, 0, chord)
	inst, _ := v1.Instrument()

	cases := []struct {
		name string
		ref  value.Ref
		get  func(value.Ref) (value.Ref, error)
	}{
		{"score", score.Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.ScoreByRef(r)
			return refOf(h, err)
		}},
		{"movement", mv.Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.MovementByRef(r)
			return refOf(h, err)
		}},
		{"measure", measures[0].Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.MeasureByRef(r)
			return refOf(h, err)
		}},
		{"voice", v1.Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.VoiceByRef(r)
			return refOf(h, err)
		}},
		{"staff", staff.Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.StaffByRef(r)
			return refOf(h, err)
		}},
		{"chord", chord, func(r value.Ref) (value.Ref, error) {
			h, err := m.ChordByRef(r)
			return refOf(h, err)
		}},
		{"note", notes[0].Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.NoteByRef(r)
			return refOf(h, err)
		}},
		{"group", group.Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.GroupByRef(r)
			return refOf(h, err)
		}},
		{"instrument", inst.Ref, func(r value.Ref) (value.Ref, error) {
			h, err := m.InstrumentByRef(r)
			return refOf(h, err)
		}},
	}
	for _, c := range cases {
		got, err := c.get(c.ref)
		if err != nil || got != c.ref {
			t.Errorf("%s: %v %v", c.name, got, err)
		}
		// Wrong type is refused (scores are not voices).
		if c.name != "score" {
			if _, err := c.get(score.Ref); err == nil {
				t.Errorf("%s wrapper accepted a SCORE ref", c.name)
			}
		}
		// Missing refs are refused.
		if _, err := c.get(value.Ref(999999)); err == nil {
			t.Errorf("%s wrapper accepted a dangling ref", c.name)
		}
	}
	scores, err := m.Scores()
	if err != nil || len(scores) != 1 || scores[0].Ref != score.Ref {
		t.Fatalf("Scores: %v %v", scores, err)
	}
}

func refOf[T any](h *T, err error) (value.Ref, error) {
	if err != nil {
		return 0, err
	}
	// All handles embed node with a Ref field; fetch via type switch.
	switch x := any(h).(type) {
	case *Score:
		return x.Ref, nil
	case *Movement:
		return x.Ref, nil
	case *Measure:
		return x.Ref, nil
	case *Voice:
		return x.Ref, nil
	case *Staff:
		return x.Ref, nil
	case *Chord:
		return x.Ref, nil
	case *Note:
		return x.Ref, nil
	case *Group:
		return x.Ref, nil
	case *Instrument:
		return x.Ref, nil
	}
	return 0, nil
}

func TestAccidentalStringsAndClefNames(t *testing.T) {
	// Exercise the remaining String branches.
	if AccNatural.String() != "n" || Accidental(99).String() != "?" {
		t.Error("accidental strings")
	}
	for _, c := range []Clef{TrebleClef, BassClef, AltoClef, TenorClef} {
		if c.String() == "" {
			t.Error("clef name empty")
		}
	}
}

func TestRestAndChordAccessors(t *testing.T) {
	m := newMusic(t)
	_, _, v1, v2, _ := buildTwoVoices(t, m)
	content2, _ := v2.Content()
	// v2's third item is the rest.
	var rest *Rest
	for _, it := range content2 {
		if it.IsRest {
			rest = &Rest{node{m, it.Ref}}
		}
	}
	if rest == nil {
		t.Fatal("no rest")
	}
	if rest.Duration().Cmp(Half) != 0 {
		t.Fatalf("rest duration: %s", rest.Duration())
	}
	content1, _ := v1.Content()
	chord := &Chord{node{m, content1[0].Ref}}
	if chord.Duration().Cmp(Quarter) != 0 {
		t.Fatalf("chord duration: %s", chord.Duration())
	}
	if !chord.valid() {
		t.Fatal("valid()")
	}
	var zero node
	if zero.valid() {
		t.Fatal("zero node valid")
	}
}
