package cmn

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/value"
)

// Layout builds the graphical aspect's page structure (figure 11's PAGE,
// SYSTEM, and STAFF entities with the page_in_score, system_in_page, and
// staff_in_system orderings): the score's measures are broken into
// systems of measuresPerSystem, and systems onto pages of
// systemsPerPage.  Each system carries its own graphical STAFF
// instances — one per logical (instrument) staff, copying its clef and
// key — since an entity may have only one parent per ordering (§5.5);
// the logical staff stays ordered under its instrument.
//
// Returns the created pages.  Calling Layout again replaces the previous
// layout.
func (s *Score) Layout(measuresPerSystem, systemsPerPage int) ([]*Page, error) {
	if measuresPerSystem <= 0 || systemsPerPage <= 0 {
		return nil, fmt.Errorf("cmn: layout: parameters must be positive")
	}
	if err := s.clearLayout(); err != nil {
		return nil, err
	}
	movements, err := s.Movements()
	if err != nil {
		return nil, err
	}
	totalMeasures := 0
	for _, mv := range movements {
		measures, err := mv.Measures()
		if err != nil {
			return nil, err
		}
		totalMeasures += len(measures)
	}
	systems := (totalMeasures + measuresPerSystem - 1) / measuresPerSystem
	if systems == 0 {
		systems = 1
	}
	pages := (systems + systemsPerPage - 1) / systemsPerPage

	staves, err := s.performingStaves()
	if err != nil {
		return nil, err
	}

	var out []*Page
	sysNum := 0
	for p := 0; p < pages; p++ {
		pref, err := s.m.DB.NewEntity("PAGE", model.Attrs{"number": value.Int(int64(p + 1))})
		if err != nil {
			return nil, err
		}
		if err := s.m.DB.InsertChild("page_in_score", s.Ref, pref, model.Last()); err != nil {
			return nil, err
		}
		page := &Page{node{s.m, pref}}
		for q := 0; q < systemsPerPage && sysNum < systems; q++ {
			sysNum++
			sref, err := s.m.DB.NewEntity("SYSTEM", model.Attrs{"number": value.Int(int64(sysNum))})
			if err != nil {
				return nil, err
			}
			if err := s.m.DB.InsertChild("system_in_page", pref, sref, model.Last()); err != nil {
				return nil, err
			}
			for _, logical := range staves {
				lh := &Staff{node{s.m, logical}}
				gref, err := s.m.DB.NewEntity("STAFF", model.Attrs{
					"number":        value.Int(lh.intAttr("number")),
					"clef":          value.Int(int64(lh.Clef())),
					"key_signature": value.Int(int64(lh.Key())),
				})
				if err != nil {
					return nil, err
				}
				if err := s.m.DB.InsertChild("staff_in_system", sref, gref, model.Last()); err != nil {
					return nil, err
				}
			}
		}
		out = append(out, page)
	}
	return out, nil
}

// Page wraps a PAGE surrogate.
type Page struct{ node }

// Number returns the 1-based page number.
func (p *Page) Number() int { return int(p.intAttr("number")) }

// Systems returns the page's systems in order.
func (p *Page) Systems() ([]*System, error) {
	kids, err := p.m.DB.Children("system_in_page", p.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*System, len(kids))
	for i, k := range kids {
		out[i] = &System{node{p.m, k}}
	}
	return out, nil
}

// System wraps a SYSTEM surrogate.
type System struct{ node }

// Number returns the 1-based system number within the score.
func (sy *System) Number() int { return int(sy.intAttr("number")) }

// Staves returns the system's staves in score order.
func (sy *System) Staves() ([]*Staff, error) {
	kids, err := sy.m.DB.Children("staff_in_system", sy.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Staff, len(kids))
	for i, k := range kids {
		out[i] = &Staff{node{sy.m, k}}
	}
	return out, nil
}

// Pages returns the score's pages in order.
func (s *Score) Pages() ([]*Page, error) {
	kids, err := s.m.DB.Children("page_in_score", s.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Page, len(kids))
	for i, k := range kids {
		out[i] = &Page{node{s.m, k}}
	}
	return out, nil
}

// clearLayout removes an existing page structure.
func (s *Score) clearLayout() error {
	pages, err := s.Pages()
	if err != nil {
		return err
	}
	for _, p := range pages {
		systems, err := p.Systems()
		if err != nil {
			return err
		}
		for _, sy := range systems {
			staves, err := sy.Staves()
			if err != nil {
				return err
			}
			for _, st := range staves {
				// Per-system graphical staves are owned by the layout.
				if err := s.m.DB.DeleteEntity(st.Ref); err != nil {
					return err
				}
			}
			if err := s.m.DB.RemoveChild("system_in_page", sy.Ref); err != nil {
				return err
			}
			if err := s.m.DB.DeleteEntity(sy.Ref); err != nil {
				return err
			}
		}
		if err := s.m.DB.RemoveChild("page_in_score", p.Ref); err != nil {
			return err
		}
		if err := s.m.DB.DeleteEntity(p.Ref); err != nil {
			return err
		}
	}
	return nil
}

// performingStaves collects the staves of every instrument of every
// orchestra that performs this score, in instrument order.
func (s *Score) performingStaves() ([]value.Ref, error) {
	orchs, err := s.m.DB.RelatedRefs("PERFORMS", "score", s.Ref, "orchestra")
	if err != nil {
		return nil, err
	}
	var staves []value.Ref
	for _, o := range orchs {
		sections, err := s.m.DB.Children("section_in_orchestra", o)
		if err != nil {
			return nil, err
		}
		for _, sec := range sections {
			instruments, err := s.m.DB.Children("instrument_in_section", sec)
			if err != nil {
				return nil, err
			}
			for _, inst := range instruments {
				sts, err := s.m.DB.Children("staff_in_instrument", inst)
				if err != nil {
					return nil, err
				}
				staves = append(staves, sts...)
			}
		}
	}
	return staves, nil
}

// Lyrics returns the syllables of the part's text lines, in order, with
// the notes they attach to.
func (p *Part) Lyrics() ([]Lyric, error) {
	lines, err := p.m.DB.Children("text_in_part", p.Ref)
	if err != nil {
		return nil, err
	}
	var out []Lyric
	for _, line := range lines {
		syls, err := p.m.DB.Children("syllable_in_text", line)
		if err != nil {
			return nil, err
		}
		for _, syl := range syls {
			text, err := p.m.DB.Attr(syl, "text")
			if err != nil {
				return nil, err
			}
			l := Lyric{Text: text.AsString()}
			notes, err := p.m.DB.RelatedRefs("SYLLABLE_OF", "syllable", syl, "note")
			if err != nil {
				return nil, err
			}
			if len(notes) > 0 {
				l.Note = notes[0]
			}
			out = append(out, l)
		}
	}
	return out, nil
}

// Lyric is one syllable of text underlay and the note it is sung to.
type Lyric struct {
	Text string
	Note value.Ref
}
