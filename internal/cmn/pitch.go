package cmn

import (
	"fmt"
	"strings"
)

// This file implements the "meta-musical" pitch rules of §4.3: the
// mapping from graphical criteria (staff degree, clef, key signature,
// accidentals) to performance pitch.  The paper stresses that these
// rules carry both a declarative meaning ("the piece is in A major") and
// a procedural one ("perform all notes notated as F, C, or G one
// semitone higher than written"); both readings are exposed.

// Clef maps staff degrees to scale pitches ("Every Good Boy Does Fine",
// §4.3).
type Clef int

// The common clefs.
const (
	TrebleClef Clef = iota
	BassClef
	AltoClef
	TenorClef
)

// String names the clef.
func (c Clef) String() string {
	switch c {
	case TrebleClef:
		return "treble"
	case BassClef:
		return "bass"
	case AltoClef:
		return "alto"
	case TenorClef:
		return "tenor"
	}
	return fmt.Sprintf("Clef(%d)", int(c))
}

// ClefFromName parses a clef name (or its DARMS code letter).
func ClefFromName(s string) (Clef, bool) {
	switch strings.ToLower(s) {
	case "treble", "g":
		return TrebleClef, true
	case "bass", "f":
		return BassClef, true
	case "alto", "c":
		return AltoClef, true
	case "tenor":
		return TenorClef, true
	}
	return 0, false
}

// baseDiatonic returns the diatonic index (letter steps above C0) of the
// bottom staff line under this clef.
func (c Clef) baseDiatonic() int {
	switch c {
	case TrebleClef:
		return diatonic('E', 4) // bottom line E4
	case BassClef:
		return diatonic('G', 2)
	case AltoClef:
		return diatonic('F', 3)
	case TenorClef:
		return diatonic('D', 3)
	}
	return diatonic('E', 4)
}

// diatonic converts a letter and octave to the diatonic index.
func diatonic(letter byte, octave int) int {
	return int(letterStep(letter)) + 7*octave
}

// letterStep maps C..B to 0..6.
func letterStep(letter byte) int {
	switch letter {
	case 'C', 'c':
		return 0
	case 'D', 'd':
		return 1
	case 'E', 'e':
		return 2
	case 'F', 'f':
		return 3
	case 'G', 'g':
		return 4
	case 'A', 'a':
		return 5
	case 'B', 'b':
		return 6
	}
	return 0
}

var stepLetters = [7]byte{'C', 'D', 'E', 'F', 'G', 'A', 'B'}

// stepSemitones maps diatonic steps C..B to semitone offsets within an
// octave.
var stepSemitones = [7]int{0, 2, 4, 5, 7, 9, 11}

// Accidental alters a note's pitch, or defers to context (§4.3).
type Accidental int

// The accidentals.  AccNone means no accidental is notated; the
// effective alteration then comes procedurally from the key signature
// and earlier accidentals in the same measure.
const (
	AccNone Accidental = iota
	AccNatural
	AccSharp
	AccFlat
	AccDoubleSharp
	AccDoubleFlat
)

// Alter returns the semitone alteration the accidental denotes.
func (a Accidental) Alter() int {
	switch a {
	case AccSharp:
		return 1
	case AccFlat:
		return -1
	case AccDoubleSharp:
		return 2
	case AccDoubleFlat:
		return -2
	}
	return 0
}

// String renders the accidental in conventional ASCII.
func (a Accidental) String() string {
	switch a {
	case AccNone:
		return ""
	case AccNatural:
		return "n"
	case AccSharp:
		return "#"
	case AccFlat:
		return "b"
	case AccDoubleSharp:
		return "##"
	case AccDoubleFlat:
		return "bb"
	}
	return "?"
}

// KeySignature is a count of sharps (positive) or flats (negative),
// -7..+7.
type KeySignature int

// sharpOrder and flatOrder are the letters altered, in order, by
// successive sharps and flats.
var (
	sharpOrder = []byte{'F', 'C', 'G', 'D', 'A', 'E', 'B'}
	flatOrder  = []byte{'B', 'E', 'A', 'D', 'G', 'C', 'F'}
)

// Alter returns the key signature's alteration for a letter: +1 if the
// letter is sharped, -1 if flatted, 0 otherwise.  This is the procedural
// meaning of the key signature (§4.3).
func (k KeySignature) Alter(letter byte) int {
	n := int(k)
	if n > 0 {
		for i := 0; i < n && i < 7; i++ {
			if sharpOrder[i] == letter {
				return 1
			}
		}
	}
	if n < 0 {
		for i := 0; i < -n && i < 7; i++ {
			if flatOrder[i] == letter {
				return -1
			}
		}
	}
	return 0
}

// majorKeys[k+7] is the major key with k sharps (k < 0: flats).
var majorKeys = [15]string{"Cb", "Gb", "Db", "Ab", "Eb", "Bb", "F", "C", "G", "D", "A", "E", "B", "F#", "C#"}

// minorKeys[k+7] is the relative minor.
var minorKeys = [15]string{"ab", "eb", "bb", "f", "c", "g", "d", "a", "e", "b", "f#", "c#", "g#", "d#", "a#"}

// Declarative returns the declarative meaning of the key signature: the
// major key and its relative minor (§4.3: "The piece is in the key of A
// major (or f# minor)").
func (k KeySignature) Declarative() string {
	i := int(k) + 7
	if i < 0 || i >= len(majorKeys) {
		return fmt.Sprintf("key signature of %d", int(k))
	}
	return fmt.Sprintf("the piece is in the key of %s major (or %s minor)", majorKeys[i], minorKeys[i])
}

// Procedural returns the procedural meaning: which letters are performed
// altered (§4.3: "Perform all notes notated as F, C, or G one semitone
// higher than written").
func (k KeySignature) Procedural() string {
	n := int(k)
	if n == 0 {
		return "perform all notes as written"
	}
	var letters []string
	dir := "higher"
	if n > 0 {
		for i := 0; i < n && i < 7; i++ {
			letters = append(letters, string(sharpOrder[i]))
		}
	} else {
		dir = "lower"
		for i := 0; i < -n && i < 7; i++ {
			letters = append(letters, string(flatOrder[i]))
		}
	}
	return fmt.Sprintf("perform all notes notated as %s one semitone %s than written",
		joinAnd(letters), dir)
}

func joinAnd(xs []string) string {
	switch len(xs) {
	case 0:
		return ""
	case 1:
		return xs[0]
	case 2:
		return xs[0] + " or " + xs[1]
	default:
		return strings.Join(xs[:len(xs)-1], ", ") + ", or " + xs[len(xs)-1]
	}
}

// SpelledPitch is a notated pitch: letter, octave (scientific pitch
// notation, C4 = middle C), and chromatic alteration.
type SpelledPitch struct {
	Letter byte // 'A'..'G'
	Octave int
	Alter  int // semitones, + sharp / - flat
}

// MIDI returns the MIDI key number (C4 = 60).
func (p SpelledPitch) MIDI() int {
	return 12*(p.Octave+1) + stepSemitones[letterStep(p.Letter)] + p.Alter
}

// Name renders the pitch, e.g. "F#4", "Bb2", "C4".
func (p SpelledPitch) Name() string {
	var alter string
	switch {
	case p.Alter > 0:
		alter = strings.Repeat("#", p.Alter)
	case p.Alter < 0:
		alter = strings.Repeat("b", -p.Alter)
	}
	return fmt.Sprintf("%c%s%d", p.Letter, alter, p.Octave)
}

// MeasureState tracks accidentals within one measure: an accidental on a
// staff degree applies to later notes on the same degree until the bar
// line (the standard CMN rule, part of the procedural pitch semantics).
type MeasureState struct {
	alters map[int]int // diatonic index → alteration
}

// NewMeasureState returns the state at the start of a measure.
func NewMeasureState() *MeasureState {
	return &MeasureState{alters: make(map[int]int)}
}

// Reset clears the state at a bar line.
func (ms *MeasureState) Reset() {
	ms.alters = make(map[int]int)
}

// ResolvePitch computes the performance pitch of a note from its
// graphical criteria — the full procedural derivation of §4.3:
//
//  1. The clef maps the staff degree (0 = bottom line, counting lines
//     and spaces upward; negative below) to a letter and octave.
//  2. A notated accidental overrides and is remembered for the rest of
//     the measure on that degree.
//  3. Otherwise an earlier accidental in the measure on the same degree
//     applies.
//  4. Otherwise the key signature's alteration for the letter applies.
func ResolvePitch(clef Clef, key KeySignature, staffDegree int, acc Accidental, ms *MeasureState) SpelledPitch {
	d := clef.baseDiatonic() + staffDegree
	letter := stepLetters[((d%7)+7)%7]
	octave := d / 7
	if d < 0 && d%7 != 0 {
		octave--
	}
	var alter int
	switch {
	case acc != AccNone:
		alter = acc.Alter()
		if ms != nil {
			ms.alters[d] = alter
		}
	case ms != nil && hasAlter(ms, d):
		alter = ms.alters[d]
	default:
		alter = key.Alter(letter)
	}
	return SpelledPitch{Letter: letter, Octave: octave, Alter: alter}
}

func hasAlter(ms *MeasureState, d int) bool {
	_, ok := ms.alters[d]
	return ok
}
