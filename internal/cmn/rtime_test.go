package cmn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBeatsNormalization(t *testing.T) {
	if r := Beats(2, 4); r.Num() != 1 || r.Den() != 2 {
		t.Fatalf("2/4 → %s", r)
	}
	if r := Beats(-2, -4); r.Num() != 1 || r.Den() != 2 {
		t.Fatalf("-2/-4 → %s", r)
	}
	if r := Beats(3, -6); r.Num() != -1 || r.Den() != 2 {
		t.Fatalf("3/-6 → %s", r)
	}
	if r := Beats(0, 5); r.Num() != 0 || r.Den() != 1 || !r.IsZero() {
		t.Fatalf("0/5 → %s", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero denominator should panic")
		}
	}()
	Beats(1, 0)
}

func TestArithmetic(t *testing.T) {
	// Triplet eighths: 3 × 1/3 = 1 beat, exactly.
	triplet := Beats(1, 3)
	sum := triplet.Add(triplet).Add(triplet)
	if sum.Cmp(Quarter) != 0 {
		t.Fatalf("3 triplets = %s", sum)
	}
	if got := Half.Sub(Eighth); got.Cmp(Beats(3, 2)) != 0 {
		t.Fatalf("half - eighth = %s", got)
	}
	if got := Eighth.MulInt(3); got.Cmp(Beats(3, 2)) != 0 {
		t.Fatalf("eighth×3 = %s", got)
	}
	if got := Quarter.Mul(Beats(2, 3)); got.Cmp(Beats(2, 3)) != 0 {
		t.Fatalf("tuplet scale = %s", got)
	}
}

func TestDotted(t *testing.T) {
	if got := Quarter.Dotted(1); got.Cmp(Beats(3, 2)) != 0 {
		t.Fatalf("dotted quarter = %s", got)
	}
	if got := Quarter.Dotted(2); got.Cmp(Beats(7, 4)) != 0 {
		t.Fatalf("double-dotted quarter = %s", got)
	}
	if got := Half.Dotted(0); got.Cmp(Half) != 0 {
		t.Fatal("zero dots")
	}
}

func TestCmpAndString(t *testing.T) {
	if !Eighth.Less(Quarter) || Quarter.Less(Eighth) {
		t.Fatal("Less")
	}
	if Quarter.Cmp(Beats(2, 2)) != 0 {
		t.Fatal("Cmp equality across representations")
	}
	if Whole.String() != "4" || Beats(3, 2).String() != "3/2" {
		t.Fatalf("String: %s %s", Whole, Beats(3, 2))
	}
	if Quarter.Float() != 1.0 || math.Abs(Beats(1, 3).Float()-1.0/3) > 1e-15 {
		t.Fatal("Float")
	}
	var zero RTime
	if zero.Den() != 1 || !zero.IsZero() {
		t.Fatal("zero value")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(n int32, d int32) bool {
		if d == 0 {
			d = 1
		}
		r := Beats(int64(n), int64(d))
		got := DecodeRTime(r.Encode())
		return got.Cmp(r) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	if got := DecodeRTime(0); got.Den() != 1 {
		t.Fatal("decode zero")
	}
}

func TestTempoSteady(t *testing.T) {
	tm := NewTempoMap(120)
	if got := tm.Seconds(Beats(4, 1)); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("4 beats at 120 = %g s", got)
	}
	if got := tm.Seconds(Zero); got != 0 {
		t.Fatal("t(0)")
	}
	if got := tm.BPMAt(Beats(100, 1)); got != 120 {
		t.Fatal("BPMAt")
	}
	if got := tm.BeatAt(2.0); math.Abs(got-4) > 1e-9 {
		t.Fatalf("BeatAt: %g", got)
	}
}

func TestTempoChange(t *testing.T) {
	tm := NewTempoMap(120)
	tm.AddMark(TempoMark{Beat: Beats(4, 1), BPM: 60}) // halve the speed
	// First 4 beats: 2 s; next 4 beats at 60: 4 s.
	if got := tm.Seconds(Beats(8, 1)); math.Abs(got-6.0) > 1e-12 {
		t.Fatalf("8 beats = %g s", got)
	}
	if got := tm.BPMAt(Beats(5, 1)); got != 60 {
		t.Fatalf("BPM at 5 = %g", got)
	}
	if got := tm.BPMAt(Beats(3, 1)); got != 120 {
		t.Fatalf("BPM at 3 = %g", got)
	}
	// Inverse agrees.
	if got := tm.BeatAt(6.0); math.Abs(got-8) > 1e-9 {
		t.Fatalf("BeatAt(6) = %g", got)
	}
	if got := tm.BeatAt(1.0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("BeatAt(1) = %g", got)
	}
}

func TestAccelerando(t *testing.T) {
	// Ramp from 60 to 120 over 4 beats: time = 60·4/60·ln(2) ≈ 2.7726 s,
	// less than 4 s (steady 60) and more than 2 s (steady 120).
	tm := NewTempoMap(60)
	tm.marks[0].Ramp = true
	tm.AddMark(TempoMark{Beat: Beats(4, 1), BPM: 120})
	got := tm.Seconds(Beats(4, 1))
	want := 4.0 * math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("accelerando: %g want %g", got, want)
	}
	// Midpoint tempo is the linear blend.
	if got := tm.BPMAt(Beats(2, 1)); math.Abs(got-90) > 1e-12 {
		t.Fatalf("mid-ramp BPM = %g", got)
	}
	// After the ramp, tempo holds at 120.
	after := tm.Seconds(Beats(8, 1)) - tm.Seconds(Beats(4, 1))
	if math.Abs(after-2.0) > 1e-9 {
		t.Fatalf("post-ramp: %g", after)
	}
	// Monotonicity and inverse.
	prev := -1.0
	for b := 0; b <= 16; b++ {
		s := tm.Seconds(Beats(int64(b), 2))
		if s <= prev {
			t.Fatalf("Seconds not increasing at %d", b)
		}
		prev = s
		if inv := tm.BeatAt(s); math.Abs(inv-float64(b)/2) > 1e-6 {
			t.Fatalf("BeatAt(Seconds(%g)) = %g", float64(b)/2, inv)
		}
	}
}

func TestRitardando(t *testing.T) {
	// Slowing 120 → 60 over 4 beats takes longer than steady 120.
	tm := NewTempoMap(120)
	tm.marks[0].Ramp = true
	tm.AddMark(TempoMark{Beat: Beats(4, 1), BPM: 60})
	got := tm.Seconds(Beats(4, 1))
	if got <= 2.0 || got >= 4.0 {
		t.Fatalf("ritardando duration %g out of (2,4)", got)
	}
}

func TestTempoMarkValidation(t *testing.T) {
	tm := NewTempoMap(120)
	if err := tm.AddMark(TempoMark{Beat: Quarter, BPM: 0}); err == nil {
		t.Fatal("zero BPM accepted")
	}
	if err := tm.AddMark(TempoMark{Beat: Quarter, BPM: -10}); err == nil {
		t.Fatal("negative BPM accepted")
	}
	// Replacing a mark at the same beat.
	tm.AddMark(TempoMark{Beat: Quarter, BPM: 90})
	tm.AddMark(TempoMark{Beat: Quarter, BPM: 100})
	if len(tm.Marks()) != 2 {
		t.Fatalf("marks: %v", tm.Marks())
	}
	if got := tm.BPMAt(Beats(2, 1)); got != 100 {
		t.Fatalf("replaced mark: %g", got)
	}
}
