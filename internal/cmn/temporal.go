package cmn

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/value"
)

// This file implements the derived temporal structure of §7.2: sync
// alignment (figure 14), onset computation, tie/event construction, and
// pitch resolution across measures.

// Align divides the movement's measures into syncs (figure 14): it walks
// each voice's content in order, accumulating onsets from the voice's
// durations, locates the measure containing each chord's onset, creates
// (or reuses) the SYNC at that beat offset, and attaches the chord.
// Rests advance time but produce no sync attachment (they "result in no
// performance information", §7.2).
//
// Chords already aligned (re-running Align) are re-attached only if
// detached first; Align is intended to run once after content entry, or
// after ClearAlignment.
func (mv *Movement) Align(voices []*Voice) error {
	measures, err := mv.Measures()
	if err != nil {
		return err
	}
	if len(measures) == 0 {
		return fmt.Errorf("cmn: movement @%d has no measures", mv.Ref)
	}
	starts := make([]RTime, len(measures))
	total := Zero
	for i, me := range measures {
		starts[i] = total
		total = total.Add(me.Duration())
	}
	for _, v := range voices {
		content, err := v.Content()
		if err != nil {
			return err
		}
		onset := Zero
		mi := 0
		for _, item := range content {
			if !item.IsRest {
				// Advance to the measure containing this onset.
				for mi+1 < len(measures) && starts[mi+1].Cmp(onset) <= 0 {
					mi++
				}
				// Rewind if needed (defensive; onsets are monotone).
				for mi > 0 && onset.Less(starts[mi]) {
					mi--
				}
				if onset.Cmp(total) >= 0 {
					return fmt.Errorf("cmn: voice @%d overflows movement (onset %s ≥ duration %s)",
						v.Ref, onset, total)
				}
				sy, err := measures[mi].AddSync(onset.Sub(starts[mi]))
				if err != nil {
					return err
				}
				if _, attached := (&Chord{node{mv.m, item.Ref}}).Sync(); !attached {
					if err := mv.m.DB.InsertChild("chord_in_sync", sy.Ref, item.Ref, model.Last()); err != nil {
						return err
					}
				}
			}
			onset = onset.Add(item.Duration)
		}
	}
	return nil
}

// ClearAlignment detaches every chord from its sync and removes the
// movement's syncs, so Align can rebuild them.
func (mv *Movement) ClearAlignment() error {
	measures, err := mv.Measures()
	if err != nil {
		return err
	}
	for _, me := range measures {
		syncs, err := me.Syncs()
		if err != nil {
			return err
		}
		for _, sy := range syncs {
			chords, err := sy.Chords()
			if err != nil {
				return err
			}
			for _, c := range chords {
				if err := mv.m.DB.RemoveChild("chord_in_sync", c.Ref); err != nil {
					return err
				}
			}
			if err := mv.m.DB.RemoveChild("sync_in_measure", sy.Ref); err != nil {
				return err
			}
			if err := mv.m.DB.DeleteEntity(sy.Ref); err != nil {
				return err
			}
		}
	}
	return nil
}

// Onset returns the chord's start beat within its movement: its sync's
// measure start plus the sync offset ("The start times of notes and
// chords are inherited from their parent syncs", §7.2).
func (c *Chord) Onset() (RTime, error) {
	sy, ok := c.Sync()
	if !ok {
		return Zero, fmt.Errorf("cmn: chord @%d is not aligned to a sync", c.Ref)
	}
	me, ok := sy.Measure()
	if !ok {
		return Zero, fmt.Errorf("cmn: sync @%d has no measure", sy.Ref)
	}
	start, err := me.Start()
	if err != nil {
		return Zero, err
	}
	return start.Add(sy.Offset()), nil
}

// Tie binds consecutive notes into a single performance event (§7.2:
// "The Tie is a musical construct that binds multiple note entities
// under a single event entity").  Both notes must belong to chords of
// the same voice.  If the first note is already in an event, the second
// joins it; otherwise a new EVENT is created under the voice.
func (m *Music) Tie(a, b *Note) (*Event, error) {
	chordA, ok := a.Chord()
	if !ok {
		return nil, fmt.Errorf("cmn: note @%d has no chord", a.Ref)
	}
	chordB, ok := b.Chord()
	if !ok {
		return nil, fmt.Errorf("cmn: note @%d has no chord", b.Ref)
	}
	voiceA, okA := chordA.Voice()
	voiceB, okB := chordB.Voice()
	if !okA || !okB || voiceA.Ref != voiceB.Ref {
		return nil, fmt.Errorf("cmn: tied notes must lie in the same voice")
	}
	var ev *Event
	if p, ok := m.DB.ParentOf("note_in_event", a.Ref); ok {
		ev = &Event{node{m, p}}
	} else {
		ref, err := m.DB.NewEntity("EVENT", model.Attrs{
			"start": value.Int(0), "duration": value.Int(0),
		})
		if err != nil {
			return nil, err
		}
		if err := m.DB.InsertChild("event_in_voice", voiceA.Ref, ref, model.Last()); err != nil {
			return nil, err
		}
		ev = &Event{node{m, ref}}
		if err := m.DB.InsertChild("note_in_event", ev.Ref, a.Ref, model.Last()); err != nil {
			return nil, err
		}
	}
	if err := m.DB.InsertChild("note_in_event", ev.Ref, b.Ref, model.Last()); err != nil {
		return nil, err
	}
	return ev, nil
}

// EventOf returns the performance event the note belongs to, if tied.
func (n *Note) EventOf() (*Event, bool) {
	p, ok := n.m.DB.ParentOf("note_in_event", n.Ref)
	if !ok {
		return nil, false
	}
	return &Event{node{n.m, p}}, true
}

// PerformedNote is one atomic unit of sound derived from the score: the
// temporal view of an EVENT (§7.2).  Tied notes merge into one.
type PerformedNote struct {
	Voice    value.Ref
	Pitch    int
	Start    RTime // movement-relative beat
	Duration RTime // sounded duration (after articulation)
	Velocity int   // resolved from dynamics and articulation

	// Articulative context (§7.1.1): the inherited marking and, for
	// pizzicato/arco, the timbre selection it implies.
	Articulation string
	Timbre       string
}

// PerformedNotes derives the performance events of a voice: each
// unsuppressed note becomes an event with its chord's onset and
// duration; tie chains merge into one event whose duration spans the
// chain.  Notes must have been aligned (Align) and pitched
// (ResolvePitches).
func (v *Voice) PerformedNotes() ([]PerformedNote, error) {
	content, err := v.Content()
	if err != nil {
		return nil, err
	}
	// Transposing instruments (the INSTRUMENT.transposition attribute):
	// written pitch + transposition = sounding pitch.
	transpose := 0
	if inst, ok := v.Instrument(); ok {
		transpose = int(inst.intAttr("transposition"))
	}
	type pending struct {
		pn      PerformedNote
		eventOf value.Ref // event ref if tied, else 0
	}
	var out []pending
	byEvent := map[value.Ref]int{} // event ref → index in out
	for _, item := range content {
		if item.IsRest {
			continue
		}
		chord := &Chord{node{v.m, item.Ref}}
		onset, err := chord.Onset()
		if err != nil {
			return nil, err
		}
		notes, err := chord.Notes()
		if err != nil {
			return nil, err
		}
		vel := v.velocityAt(onset)
		for _, n := range notes {
			pitch := n.MIDIPitch()
			if pitch > 0 {
				pitch += transpose
			}
			if ev, tied := n.EventOf(); tied {
				if i, seen := byEvent[ev.Ref]; seen {
					// Continuation of a tie chain: extend duration.
					end := onset.Add(item.Duration)
					cur := out[i].pn.Start.Add(out[i].pn.Duration)
					if cur.Less(end) {
						out[i].pn.Duration = end.Sub(out[i].pn.Start)
					}
					continue
				}
				byEvent[ev.Ref] = len(out)
				out = append(out, pending{
					pn: PerformedNote{Voice: v.Ref, Pitch: pitch, Start: onset,
						Duration: item.Duration, Velocity: vel},
					eventOf: ev.Ref,
				})
				continue
			}
			out = append(out, pending{
				pn: PerformedNote{Voice: v.Ref, Pitch: pitch, Start: onset,
					Duration: item.Duration, Velocity: vel},
			})
		}
	}
	notes := make([]PerformedNote, len(out))
	for i, p := range out {
		notes[i] = p.pn
		v.applyArticulation(&notes[i])
	}
	sort.SliceStable(notes, func(i, j int) bool { return notes[i].Start.Less(notes[j].Start) })
	return notes, nil
}

// ResolvePitches assigns midi_pitch to every note of the voice, applying
// the §4.3 procedural rules with the given staff's clef and key
// signature: accidental state resets at each measure boundary.
// Alignment must have run (measure boundaries come from syncs).
func (v *Voice) ResolvePitches(st *Staff) error {
	content, err := v.Content()
	if err != nil {
		return err
	}
	ms := NewMeasureState()
	var curMeasure value.Ref
	for _, item := range content {
		if item.IsRest {
			continue
		}
		chord := &Chord{node{v.m, item.Ref}}
		sy, ok := chord.Sync()
		if !ok {
			return fmt.Errorf("cmn: chord @%d not aligned; run Align first", chord.Ref)
		}
		me, _ := sy.Measure()
		if me != nil && me.Ref != curMeasure {
			ms.Reset()
			curMeasure = me.Ref
		}
		notes, err := chord.Notes()
		if err != nil {
			return err
		}
		for _, n := range notes {
			sp := ResolvePitch(st.Clef(), st.Key(), n.Degree(), n.Accidental(), ms)
			if err := v.m.DB.SetAttr(n.Ref, "midi_pitch", value.Int(int64(sp.MIDI()))); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dynamic markings and their conventional MIDI velocities.
var dynamicLevels = map[string]int{
	"ppp": 16, "pp": 33, "p": 49, "mp": 64, "mf": 80, "f": 96, "ff": 112, "fff": 126,
}

// AddDynamic attaches a dynamic marking to the voice at a beat.  Notes
// inherit the nearest preceding marking (§7.1.1: "Such attributes are
// not typically assigned directly to a note, but rather are inherited by
// the note from the context in which it lies").
func (v *Voice) AddDynamic(beat RTime, marking string) error {
	level, ok := dynamicLevels[marking]
	if !ok {
		return fmt.Errorf("cmn: unknown dynamic marking %q", marking)
	}
	ref, err := v.m.DB.NewEntity("DYNAMIC", model.Attrs{
		"marking": value.Str(marking), "level": value.Int(int64(level)),
		"at_beat": value.Int(beat.Encode()),
	})
	if err != nil {
		return err
	}
	return v.m.DB.InsertChild("dynamic_in_voice", v.Ref, ref, model.Last())
}

// AddDynamic at score level provides the outermost inheritance context.
func (s *Score) AddDynamic(beat RTime, marking string) error {
	level, ok := dynamicLevels[marking]
	if !ok {
		return fmt.Errorf("cmn: unknown dynamic marking %q", marking)
	}
	ref, err := s.m.DB.NewEntity("DYNAMIC", model.Attrs{
		"marking": value.Str(marking), "level": value.Int(int64(level)),
		"at_beat": value.Int(beat.Encode()),
	})
	if err != nil {
		return err
	}
	return s.m.DB.InsertChild("dynamic_in_score", s.Ref, ref, model.Last())
}

// velocityAt resolves the effective dynamic for a beat: the latest
// voice-level marking at or before the beat; default mf.
func (v *Voice) velocityAt(beat RTime) int {
	best := -1
	bestBeat := Zero
	kids, err := v.m.DB.Children("dynamic_in_voice", v.Ref)
	if err == nil {
		for _, d := range kids {
			dn := node{v.m, d}
			at := dn.rtimeAttr("at_beat")
			if at.Cmp(beat) <= 0 && (best < 0 || bestBeat.Cmp(at) <= 0) {
				best = int(dn.intAttr("level"))
				bestBeat = at
			}
		}
	}
	if best >= 0 {
		return best
	}
	// Fall back to score-level dynamics: walk up voice → part →
	// instrument is timbral; the score context is reached through the
	// PERFORMS relationship in a full inheritance chain.  The builder
	// stores score-level marks under dynamic_in_score; search all
	// scores the voice's orchestra performs.
	if lvl, ok := v.scoreLevelDynamic(beat); ok {
		return lvl
	}
	return dynamicLevels["mf"]
}

// scoreLevelDynamic finds a score-level dynamic context for the voice.
func (v *Voice) scoreLevelDynamic(beat RTime) (int, bool) {
	inst, ok := v.Instrument()
	if !ok {
		return 0, false
	}
	sec, ok := v.m.DB.ParentOf("instrument_in_section", inst.Ref)
	if !ok {
		return 0, false
	}
	orch, ok := v.m.DB.ParentOf("section_in_orchestra", sec)
	if !ok {
		return 0, false
	}
	scores, err := v.m.DB.RelatedRefs("PERFORMS", "orchestra", orch, "score")
	if err != nil || len(scores) == 0 {
		return 0, false
	}
	best := -1
	bestBeat := Zero
	for _, sref := range scores {
		kids, err := v.m.DB.Children("dynamic_in_score", sref)
		if err != nil {
			continue
		}
		for _, d := range kids {
			dn := node{v.m, d}
			at := dn.rtimeAttr("at_beat")
			if at.Cmp(beat) <= 0 && (best < 0 || bestBeat.Cmp(at) <= 0) {
				best = int(dn.intAttr("level"))
				bestBeat = at
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// NewGroup creates a melodic group (figure 15: phrasing slurs, beams,
// tuplets) under the voice and attaches the given members in order.
// Kind is free-form ("slur", "beam", "tuplet"); tupletNum/tupletDen
// scale member durations for tuplets (0,0 for none).
func (v *Voice) NewGroup(kind string, tupletNum, tupletDen int, members ...value.Ref) (*Group, error) {
	ref, err := v.m.DB.NewEntity("GROUP", model.Attrs{
		"kind":       value.Str(kind),
		"tuplet_num": value.Int(int64(tupletNum)),
		"tuplet_den": value.Int(int64(tupletDen)),
	})
	if err != nil {
		return nil, err
	}
	if err := v.m.DB.InsertChild("group_in_voice", v.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	g := &Group{node{v.m, ref}}
	for _, mref := range members {
		if err := v.m.DB.InsertChild("group_content", g.Ref, mref, model.Last()); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Kind returns the group kind.
func (g *Group) Kind() string { return g.strAttr("kind") }

// Duration aggregates the group's duration from its constituent chords,
// rests and nested groups ("A group has a temporal attribute,
// 'duration', which is a function of the duration of its constituent
// chords and rests", §7.2), applying tuplet scaling.
func (g *Group) Duration() (RTime, error) {
	kids, err := g.m.DB.Children("group_content", g.Ref)
	if err != nil {
		return Zero, err
	}
	total := Zero
	for _, k := range kids {
		typ, _ := g.m.DB.TypeOf(k)
		switch typ {
		case "GROUP":
			d, err := (&Group{node{g.m, k}}).Duration()
			if err != nil {
				return Zero, err
			}
			total = total.Add(d)
		case "CHORD", "REST":
			total = total.Add((&node{g.m, k}).rtimeAttr("duration"))
		default:
			return Zero, fmt.Errorf("cmn: unexpected %s in group", typ)
		}
	}
	tn, td := g.intAttr("tuplet_num"), g.intAttr("tuplet_den")
	if tn > 0 && td > 0 {
		total = total.Mul(Beats(tn, td))
	}
	return total, nil
}
