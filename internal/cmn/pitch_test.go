package cmn

import (
	"strings"
	"testing"
)

func TestClefMapping(t *testing.T) {
	cases := []struct {
		clef   Clef
		degree int
		want   string
	}{
		{TrebleClef, 0, "E4"},  // bottom line
		{TrebleClef, 1, "F4"},  // bottom space
		{TrebleClef, 8, "F5"},  // top line
		{TrebleClef, -2, "C4"}, // middle C, first ledger below
		{BassClef, 0, "G2"},
		{BassClef, 10, "C4"}, // middle C above bass staff
		{AltoClef, 4, "C4"},  // middle line
		{TenorClef, 6, "C4"},
	}
	for _, c := range cases {
		got := ResolvePitch(c.clef, 0, c.degree, AccNone, nil)
		if got.Name() != c.want {
			t.Errorf("%s degree %d = %s want %s", c.clef, c.degree, got.Name(), c.want)
		}
	}
}

func TestNegativeOctaves(t *testing.T) {
	// Deep below the bass staff.
	p := ResolvePitch(BassClef, 0, -16, AccNone, nil)
	if p.Name() != "E0" {
		t.Fatalf("deep pitch: %s", p.Name())
	}
}

func TestMIDINumbers(t *testing.T) {
	cases := map[string]struct {
		p    SpelledPitch
		midi int
	}{
		"C4":  {SpelledPitch{'C', 4, 0}, 60},
		"A4":  {SpelledPitch{'A', 4, 0}, 69},
		"F#4": {SpelledPitch{'F', 4, 1}, 66},
		"Bb2": {SpelledPitch{'B', 2, -1}, 46},
		"C0":  {SpelledPitch{'C', 0, 0}, 12},
	}
	for name, c := range cases {
		if got := c.p.MIDI(); got != c.midi {
			t.Errorf("%s MIDI = %d want %d", name, got, c.midi)
		}
		if c.p.Name() != name {
			t.Errorf("Name = %s want %s", c.p.Name(), name)
		}
	}
}

func TestKeySignatureProceduralMeaning(t *testing.T) {
	// §4.3's example: three sharps (A major) sharpen F, C, G.
	k := KeySignature(3)
	for _, letter := range []byte{'F', 'C', 'G'} {
		if k.Alter(letter) != 1 {
			t.Errorf("3 sharps should sharpen %c", letter)
		}
	}
	for _, letter := range []byte{'D', 'A', 'E', 'B'} {
		if k.Alter(letter) != 0 {
			t.Errorf("3 sharps should not alter %c", letter)
		}
	}
	if got := k.Procedural(); got != "perform all notes notated as F, C, or G one semitone higher than written" {
		t.Errorf("procedural: %q", got)
	}
	if got := k.Declarative(); !strings.Contains(got, "A major") || !strings.Contains(got, "f# minor") {
		t.Errorf("declarative: %q", got)
	}
	// Two flats: Bb major / g minor; B and E flatted.
	k = KeySignature(-2)
	if k.Alter('B') != -1 || k.Alter('E') != -1 || k.Alter('A') != 0 {
		t.Error("2 flats alterations")
	}
	if got := k.Declarative(); !strings.Contains(got, "Bb major") {
		t.Errorf("declarative flats: %q", got)
	}
	if got := KeySignature(0).Procedural(); got != "perform all notes as written" {
		t.Errorf("C major procedural: %q", got)
	}
	if got := KeySignature(-1).Procedural(); !strings.Contains(got, "B one semitone lower") {
		t.Errorf("1 flat procedural: %q", got)
	}
}

func TestResolvePitchWithKeySignature(t *testing.T) {
	// In A major (3#), the F on the treble staff's bottom space is
	// performed F#4.
	p := ResolvePitch(TrebleClef, 3, 1, AccNone, nil)
	if p.Name() != "F#4" || p.MIDI() != 66 {
		t.Fatalf("F in A major: %s", p.Name())
	}
	// A notated natural cancels it.
	p = ResolvePitch(TrebleClef, 3, 1, AccNatural, nil)
	if p.Name() != "F4" {
		t.Fatalf("natural: %s", p.Name())
	}
}

func TestMeasureAccidentalPersistence(t *testing.T) {
	ms := NewMeasureState()
	// Sharp on the F space...
	p := ResolvePitch(TrebleClef, 0, 1, AccSharp, ms)
	if p.Name() != "F#4" {
		t.Fatalf("sharp: %s", p.Name())
	}
	// ...persists for later notes on the same degree in the measure...
	p = ResolvePitch(TrebleClef, 0, 1, AccNone, ms)
	if p.Name() != "F#4" {
		t.Fatalf("persisted sharp: %s", p.Name())
	}
	// ...but not on a different octave's F (different staff degree).
	p = ResolvePitch(TrebleClef, 0, 8, AccNone, ms)
	if p.Name() != "F5" {
		t.Fatalf("different degree: %s", p.Name())
	}
	// A natural later in the measure overrides, and itself persists.
	p = ResolvePitch(TrebleClef, 0, 1, AccNatural, ms)
	if p.Name() != "F4" {
		t.Fatalf("natural override: %s", p.Name())
	}
	p = ResolvePitch(TrebleClef, 0, 1, AccNone, ms)
	if p.Name() != "F4" {
		t.Fatalf("persisted natural: %s", p.Name())
	}
	// Bar line resets; key signature (1 sharp) applies again.
	ms.Reset()
	p = ResolvePitch(TrebleClef, 1, 1, AccNone, ms)
	if p.Name() != "F#4" {
		t.Fatalf("after barline in G major: %s", p.Name())
	}
}

func TestAccidentalKinds(t *testing.T) {
	cases := map[Accidental]int{
		AccNone: 0, AccNatural: 0, AccSharp: 1, AccFlat: -1,
		AccDoubleSharp: 2, AccDoubleFlat: -2,
	}
	for a, want := range cases {
		if a.Alter() != want {
			t.Errorf("%v alter = %d", a, a.Alter())
		}
	}
	if AccDoubleSharp.String() != "##" || AccFlat.String() != "b" || AccNone.String() != "" {
		t.Error("accidental strings")
	}
	p := ResolvePitch(TrebleClef, 0, 0, AccDoubleFlat, nil)
	if p.Name() != "Ebb4" || p.MIDI() != 62 {
		t.Fatalf("double flat: %s %d", p.Name(), p.MIDI())
	}
}

func TestClefFromName(t *testing.T) {
	for name, want := range map[string]Clef{
		"treble": TrebleClef, "G": TrebleClef, "bass": BassClef,
		"f": BassClef, "alto": AltoClef, "tenor": TenorClef,
	} {
		got, ok := ClefFromName(name)
		if !ok || got != want {
			t.Errorf("ClefFromName(%q) = %v %v", name, got, ok)
		}
	}
	if _, ok := ClefFromName("xyzzy"); ok {
		t.Error("bogus clef accepted")
	}
	if TrebleClef.String() != "treble" || Clef(9).String() != "Clef(9)" {
		t.Error("clef strings")
	}
}
