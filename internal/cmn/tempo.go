package cmn

import (
	"fmt"
	"math"
	"sort"
)

// TempoMap is the conductor of §7.2: the mapping between score time
// (beats) and performance time (seconds).  It is a piecewise function
// built from tempo marks; between consecutive marks the tempo either
// holds steady or ramps linearly (accelerando / ritardando), in which
// case performance time is the exact integral of 60/bpm over beats.
type TempoMap struct {
	marks []TempoMark
}

// TempoMark sets the tempo at a beat position.  If Ramp is true, the
// tempo changes linearly from this mark's BPM to the next mark's BPM
// over the interval (accelerando when rising, ritardando when falling);
// otherwise the tempo holds until the next mark.
type TempoMark struct {
	Beat RTime
	BPM  float64
	Ramp bool
}

// NewTempoMap returns a tempo map with a single steady tempo.
func NewTempoMap(bpm float64) *TempoMap {
	return &TempoMap{marks: []TempoMark{{Beat: Zero, BPM: bpm}}}
}

// AddMark inserts a tempo mark, keeping marks sorted by beat.  A mark at
// an existing beat replaces it.
func (tm *TempoMap) AddMark(m TempoMark) error {
	if m.BPM <= 0 {
		return fmt.Errorf("cmn: tempo must be positive, got %g", m.BPM)
	}
	i := sort.Search(len(tm.marks), func(i int) bool {
		return !tm.marks[i].Beat.Less(m.Beat)
	})
	if i < len(tm.marks) && tm.marks[i].Beat.Cmp(m.Beat) == 0 {
		tm.marks[i] = m
		return nil
	}
	tm.marks = append(tm.marks, TempoMark{})
	copy(tm.marks[i+1:], tm.marks[i:])
	tm.marks[i] = m
	return nil
}

// Marks returns a copy of the tempo marks in beat order.
func (tm *TempoMap) Marks() []TempoMark {
	return append([]TempoMark(nil), tm.marks...)
}

// BPMAt returns the instantaneous tempo at a beat.
func (tm *TempoMap) BPMAt(beat RTime) float64 {
	if len(tm.marks) == 0 {
		return 120
	}
	i := tm.segmentFor(beat)
	m := tm.marks[i]
	if !m.Ramp || i+1 >= len(tm.marks) {
		return m.BPM
	}
	next := tm.marks[i+1]
	span := next.Beat.Sub(m.Beat).Float()
	if span <= 0 {
		return m.BPM
	}
	frac := beat.Sub(m.Beat).Float() / span
	if frac > 1 {
		frac = 1
	}
	return m.BPM + frac*(next.BPM-m.BPM)
}

// segmentFor returns the index of the mark governing the given beat.
func (tm *TempoMap) segmentFor(beat RTime) int {
	i := sort.Search(len(tm.marks), func(i int) bool {
		return beat.Less(tm.marks[i].Beat)
	}) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Seconds maps a score-time position to performance time.  Beats before
// the first mark use the first mark's tempo.
func (tm *TempoMap) Seconds(beat RTime) float64 {
	if len(tm.marks) == 0 {
		return beat.Float() * 60 / 120
	}
	total := 0.0
	b := beat.Float()
	for i, m := range tm.marks {
		start := m.Beat.Float()
		var end float64
		var nextBPM float64
		if i+1 < len(tm.marks) {
			end = tm.marks[i+1].Beat.Float()
			nextBPM = tm.marks[i+1].BPM
		} else {
			end = math.Inf(1)
			nextBPM = m.BPM
		}
		if b <= start {
			break
		}
		segEnd := math.Min(b, end)
		total += segmentSeconds(m, nextBPM, end-start, segEnd-start)
		if b <= end {
			break
		}
	}
	// Beats before beat zero (anacrusis handled by callers): linear at
	// the first tempo.
	if b < tm.marks[0].Beat.Float() {
		total = (b - tm.marks[0].Beat.Float()) * 60 / tm.marks[0].BPM
	}
	return total
}

// segmentSeconds integrates performance time across the first `take`
// beats of a segment of `span` beats governed by mark m.
func segmentSeconds(m TempoMark, nextBPM, span, take float64) float64 {
	if take <= 0 {
		return 0
	}
	if !m.Ramp || math.IsInf(span, 1) || span <= 0 || m.BPM == nextBPM {
		return take * 60 / m.BPM
	}
	// Linear tempo ramp: bpm(x) = b0 + (b1-b0)·x/span for x ∈ [0, take].
	// ∫ 60/bpm(x) dx = 60·span/(b1-b0) · ln(bpm(take)/b0).
	b0, b1 := m.BPM, nextBPM
	rate := (b1 - b0) / span
	return 60 / rate * math.Log((b0+rate*take)/b0)
}

// BeatAt inverts Seconds: the score-time beat (as float) reached at a
// given performance time.  Used by editors that scrub in seconds.
func (tm *TempoMap) BeatAt(sec float64) float64 {
	if sec <= 0 {
		return sec * tm.marks[0].BPM / 60
	}
	total := 0.0
	for i, m := range tm.marks {
		start := m.Beat.Float()
		var end, nextBPM float64
		if i+1 < len(tm.marks) {
			end = tm.marks[i+1].Beat.Float()
			nextBPM = tm.marks[i+1].BPM
		} else {
			end = math.Inf(1)
			nextBPM = m.BPM
		}
		span := end - start
		segTotal := segmentSeconds(m, nextBPM, span, span)
		if math.IsInf(span, 1) || total+segTotal >= sec {
			remain := sec - total
			if !m.Ramp || m.BPM == nextBPM || math.IsInf(span, 1) {
				return start + remain*m.BPM/60
			}
			// Invert the ramp integral.
			rate := (nextBPM - m.BPM) / span
			return start + (m.BPM*(math.Exp(remain*rate/60)-1))/rate
		}
		total += segTotal
	}
	return tm.marks[len(tm.marks)-1].Beat.Float()
}
