package cmn

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/value"
)

// Music is a handle on a model database carrying the CMN schema.  All
// builder types below are thin typed wrappers over entity surrogates;
// every piece of state lives in the database.
type Music struct {
	DB *model.Database
}

// Open ensures the CMN schema is defined and returns a Music handle.
func Open(db *model.Database) (*Music, error) {
	if err := DefineSchema(db); err != nil {
		return nil, err
	}
	return &Music{DB: db}, nil
}

// Score, Movement, Measure, Sync, Voice, Chord, Rest, Note, Group,
// Orchestra, Section, Instrument, Part, and Staff wrap entity surrogates.
type (
	Score      struct{ node }
	Movement   struct{ node }
	Measure    struct{ node }
	Sync       struct{ node }
	Voice      struct{ node }
	Chord      struct{ node }
	Rest       struct{ node }
	Note       struct{ node }
	Group      struct{ node }
	Event      struct{ node }
	Orchestra  struct{ node }
	Section    struct{ node }
	Instrument struct{ node }
	Part       struct{ node }
	Staff      struct{ node }
)

// node is the common wrapper.
type node struct {
	m   *Music
	Ref value.Ref
}

func (n node) valid() bool { return n.m != nil && n.Ref != 0 }

// attrs reads attribute helpers.
func (n node) intAttr(name string) int64 {
	v, err := n.m.DB.Attr(n.Ref, name)
	if err != nil {
		return 0
	}
	return v.AsInt()
}

func (n node) strAttr(name string) string {
	v, err := n.m.DB.Attr(n.Ref, name)
	if err != nil {
		return ""
	}
	return v.AsString()
}

func (n node) rtimeAttr(name string) RTime {
	return DecodeRTime(n.intAttr(name))
}

// NewScore creates a score entity.
func (m *Music) NewScore(title, catalogID string) (*Score, error) {
	ref, err := m.DB.NewEntity("SCORE", model.Attrs{
		"title": value.Str(title), "catalog_id": value.Str(catalogID),
	})
	if err != nil {
		return nil, err
	}
	return &Score{node{m, ref}}, nil
}

// Title returns the score title.
func (s *Score) Title() string { return s.strAttr("title") }

// CatalogID returns the bibliographic identifier (e.g. "BWV 578").
func (s *Score) CatalogID() string { return s.strAttr("catalog_id") }

// AddMovement appends a movement to the score.
func (s *Score) AddMovement(name string) (*Movement, error) {
	kids, err := s.m.DB.Children("movement_in_score", s.Ref)
	if err != nil {
		return nil, err
	}
	ref, err := s.m.DB.NewEntity("MOVEMENT", model.Attrs{
		"name": value.Str(name), "number": value.Int(int64(len(kids) + 1)),
	})
	if err != nil {
		return nil, err
	}
	if err := s.m.DB.InsertChild("movement_in_score", s.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Movement{node{s.m, ref}}, nil
}

// Movements returns the score's movements in order.
func (s *Score) Movements() ([]*Movement, error) {
	kids, err := s.m.DB.Children("movement_in_score", s.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Movement, len(kids))
	for i, k := range kids {
		out[i] = &Movement{node{s.m, k}}
	}
	return out, nil
}

// AddMeasure appends a measure with the given meter to the movement.
func (mv *Movement) AddMeasure(meterNum, meterDen int) (*Measure, error) {
	if meterNum <= 0 || meterDen <= 0 {
		return nil, fmt.Errorf("cmn: invalid meter %d/%d", meterNum, meterDen)
	}
	kids, err := mv.m.DB.Children("measure_in_movement", mv.Ref)
	if err != nil {
		return nil, err
	}
	ref, err := mv.m.DB.NewEntity("MEASURE", model.Attrs{
		"number":    value.Int(int64(len(kids) + 1)),
		"meter_num": value.Int(int64(meterNum)),
		"meter_den": value.Int(int64(meterDen)),
	})
	if err != nil {
		return nil, err
	}
	if err := mv.m.DB.InsertChild("measure_in_movement", mv.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Measure{node{mv.m, ref}}, nil
}

// Measures returns the movement's measures in order.
func (mv *Movement) Measures() ([]*Measure, error) {
	kids, err := mv.m.DB.Children("measure_in_movement", mv.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Measure, len(kids))
	for i, k := range kids {
		out[i] = &Measure{node{mv.m, k}}
	}
	return out, nil
}

// Number returns the 1-based measure number.
func (me *Measure) Number() int { return int(me.intAttr("number")) }

// Duration returns the measure's duration in beats: meter_num quarter
// beats scaled by the denominator (4/4 → 4 beats, 6/8 → 3 beats).
func (me *Measure) Duration() RTime {
	num, den := me.intAttr("meter_num"), me.intAttr("meter_den")
	if den == 0 {
		return Zero
	}
	return Beats(4*num, den)
}

// Start returns the measure's start beat within its movement.
func (me *Measure) Start() (RTime, error) {
	parent, ok := me.m.DB.ParentOf("measure_in_movement", me.Ref)
	if !ok {
		return Zero, fmt.Errorf("cmn: measure @%d not in a movement", me.Ref)
	}
	sibs, err := me.m.DB.Children("measure_in_movement", parent)
	if err != nil {
		return Zero, err
	}
	start := Zero
	for _, s := range sibs {
		if s == me.Ref {
			return start, nil
		}
		start = start.Add((&Measure{node{me.m, s}}).Duration())
	}
	return Zero, fmt.Errorf("cmn: measure @%d not among its siblings", me.Ref)
}

// Duration of a movement is the sum of the durations of its constituent
// measures (§7.2).
func (mv *Movement) Duration() (RTime, error) {
	measures, err := mv.Measures()
	if err != nil {
		return Zero, err
	}
	total := Zero
	for _, me := range measures {
		total = total.Add(me.Duration())
	}
	return total, nil
}

// Duration of a score is the sum of the durations of its movements
// (§7.2).
func (s *Score) Duration() (RTime, error) {
	movements, err := s.Movements()
	if err != nil {
		return Zero, err
	}
	total := Zero
	for _, mv := range movements {
		d, err := mv.Duration()
		if err != nil {
			return Zero, err
		}
		total = total.Add(d)
	}
	return total, nil
}

// AddSync creates a sync at the given beat offset from the start of the
// measure, keeping syncs ordered by offset.  An existing sync at the
// offset is returned instead of creating a duplicate.
func (me *Measure) AddSync(offset RTime) (*Sync, error) {
	syncs, err := me.Syncs()
	if err != nil {
		return nil, err
	}
	pos := model.Last()
	for i, sy := range syncs {
		c := sy.Offset().Cmp(offset)
		if c == 0 {
			return sy, nil
		}
		if c > 0 {
			pos = model.At(i)
			break
		}
	}
	ref, err := me.m.DB.NewEntity("SYNC", model.Attrs{"offset": value.Int(offset.Encode())})
	if err != nil {
		return nil, err
	}
	if err := me.m.DB.InsertChild("sync_in_measure", me.Ref, ref, pos); err != nil {
		return nil, err
	}
	return &Sync{node{me.m, ref}}, nil
}

// Syncs returns the measure's syncs in offset order.
func (me *Measure) Syncs() ([]*Sync, error) {
	kids, err := me.m.DB.Children("sync_in_measure", me.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Sync, len(kids))
	for i, k := range kids {
		out[i] = &Sync{node{me.m, k}}
	}
	return out, nil
}

// Offset returns the sync's beat offset from its measure start (§7.2,
// figure 14).
func (sy *Sync) Offset() RTime { return sy.rtimeAttr("offset") }

// Measure returns the sync's parent measure.
func (sy *Sync) Measure() (*Measure, bool) {
	p, ok := sy.m.DB.ParentOf("sync_in_measure", sy.Ref)
	if !ok {
		return nil, false
	}
	return &Measure{node{sy.m, p}}, true
}

// Chords returns the chords aligned at this sync.
func (sy *Sync) Chords() ([]*Chord, error) {
	kids, err := sy.m.DB.Children("chord_in_sync", sy.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Chord, len(kids))
	for i, k := range kids {
		out[i] = &Chord{node{sy.m, k}}
	}
	return out, nil
}

// NewOrchestra creates an orchestra.
func (m *Music) NewOrchestra(name string) (*Orchestra, error) {
	ref, err := m.DB.NewEntity("ORCHESTRA", model.Attrs{"name": value.Str(name)})
	if err != nil {
		return nil, err
	}
	return &Orchestra{node{m, ref}}, nil
}

// Performs records that the orchestra performs the score.
func (o *Orchestra) Performs(s *Score) error {
	return o.m.DB.Relate("PERFORMS", map[string]value.Ref{
		"orchestra": o.Ref, "score": s.Ref,
	}, nil)
}

// AddSection appends an instrument family to the orchestra.
func (o *Orchestra) AddSection(name string) (*Section, error) {
	ref, err := o.m.DB.NewEntity("SECTION", model.Attrs{"name": value.Str(name)})
	if err != nil {
		return nil, err
	}
	if err := o.m.DB.InsertChild("section_in_orchestra", o.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Section{node{o.m, ref}}, nil
}

// AddInstrument appends an instrument to the section.
func (sec *Section) AddInstrument(name string, midiProgram int) (*Instrument, error) {
	ref, err := sec.m.DB.NewEntity("INSTRUMENT", model.Attrs{
		"name": value.Str(name), "midi_program": value.Int(int64(midiProgram)),
		"transposition": value.Int(0),
	})
	if err != nil {
		return nil, err
	}
	if err := sec.m.DB.InsertChild("instrument_in_section", sec.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Instrument{node{sec.m, ref}}, nil
}

// Name returns the instrument name.
func (in *Instrument) Name() string { return in.strAttr("name") }

// MIDIProgram returns the instrument's MIDI program number.
func (in *Instrument) MIDIProgram() int { return int(in.intAttr("midi_program")) }

// SetTransposition records the instrument's transposition in semitones
// (written + transposition = sounding; a B-flat clarinet is -2).
func (in *Instrument) SetTransposition(semitones int) error {
	return in.m.DB.SetAttr(in.Ref, "transposition", value.Int(int64(semitones)))
}

// Transposition returns the instrument's transposition in semitones.
func (in *Instrument) Transposition() int { return int(in.intAttr("transposition")) }

// AddPart appends a part (music for one performer) to the instrument.
func (in *Instrument) AddPart(name string) (*Part, error) {
	ref, err := in.m.DB.NewEntity("PART", model.Attrs{"name": value.Str(name)})
	if err != nil {
		return nil, err
	}
	if err := in.m.DB.InsertChild("part_in_instrument", in.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Part{node{in.m, ref}}, nil
}

// AddStaff appends a staff to the instrument with a clef and key
// signature.
func (in *Instrument) AddStaff(number int, clef Clef, key KeySignature) (*Staff, error) {
	ref, err := in.m.DB.NewEntity("STAFF", model.Attrs{
		"number": value.Int(int64(number)),
		"clef":   value.Int(int64(clef)), "key_signature": value.Int(int64(key)),
	})
	if err != nil {
		return nil, err
	}
	if err := in.m.DB.InsertChild("staff_in_instrument", in.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Staff{node{in.m, ref}}, nil
}

// Clef returns the staff's clef.
func (st *Staff) Clef() Clef { return Clef(st.intAttr("clef")) }

// Key returns the staff's key signature.
func (st *Staff) Key() KeySignature { return KeySignature(st.intAttr("key_signature")) }

// AddVoice appends a voice to the part.
func (p *Part) AddVoice(number int) (*Voice, error) {
	ref, err := p.m.DB.NewEntity("VOICE", model.Attrs{"number": value.Int(int64(number))})
	if err != nil {
		return nil, err
	}
	if err := p.m.DB.InsertChild("voice_in_part", p.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Voice{node{p.m, ref}}, nil
}

// Instrument returns the voice's instrument (via its part).
func (v *Voice) Instrument() (*Instrument, bool) {
	part, ok := v.m.DB.ParentOf("voice_in_part", v.Ref)
	if !ok {
		return nil, false
	}
	inst, ok := v.m.DB.ParentOf("part_in_instrument", part)
	if !ok {
		return nil, false
	}
	return &Instrument{node{v.m, inst}}, true
}

// AppendChord appends a chord of the given duration to the voice's
// content (the inhomogeneous CHORD/REST ordering of §5.5).
func (v *Voice) AppendChord(dur RTime, stemDirection int) (*Chord, error) {
	if dur.Cmp(Zero) <= 0 {
		return nil, fmt.Errorf("cmn: chord duration must be positive, got %s", dur)
	}
	ref, err := v.m.DB.NewEntity("CHORD", model.Attrs{
		"duration":       value.Int(dur.Encode()),
		"stem_direction": value.Int(int64(stemDirection)),
	})
	if err != nil {
		return nil, err
	}
	if err := v.m.DB.InsertChild("voice_content", v.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Chord{node{v.m, ref}}, nil
}

// AppendRest appends a rest to the voice's content.
func (v *Voice) AppendRest(dur RTime) (*Rest, error) {
	if dur.Cmp(Zero) <= 0 {
		return nil, fmt.Errorf("cmn: rest duration must be positive, got %s", dur)
	}
	ref, err := v.m.DB.NewEntity("REST", model.Attrs{"duration": value.Int(dur.Encode())})
	if err != nil {
		return nil, err
	}
	if err := v.m.DB.InsertChild("voice_content", v.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Rest{node{v.m, ref}}, nil
}

// Content returns the voice's chords and rests, in order, as generic
// refs with their durations.
func (v *Voice) Content() ([]VoiceItem, error) {
	kids, err := v.m.DB.Children("voice_content", v.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]VoiceItem, len(kids))
	for i, k := range kids {
		typ, _ := v.m.DB.TypeOf(k)
		item := VoiceItem{Ref: k, IsRest: typ == "REST"}
		item.Duration = (&node{v.m, k}).rtimeAttr("duration")
		out[i] = item
	}
	return out, nil
}

// VoiceItem is one element of a voice's content: a chord or a rest.
type VoiceItem struct {
	Ref      value.Ref
	IsRest   bool
	Duration RTime
}

// Duration returns the chord's notated duration.
func (c *Chord) Duration() RTime { return c.rtimeAttr("duration") }

// StemDirection returns +1 (up) or -1 (down).
func (c *Chord) StemDirection() int { return int(c.intAttr("stem_direction")) }

// Voice returns the chord's voice.
func (c *Chord) Voice() (*Voice, bool) {
	p, ok := c.m.DB.ParentOf("voice_content", c.Ref)
	if !ok {
		return nil, false
	}
	return &Voice{node{c.m, p}}, true
}

// Sync returns the chord's sync, if aligned.
func (c *Chord) Sync() (*Sync, bool) {
	p, ok := c.m.DB.ParentOf("chord_in_sync", c.Ref)
	if !ok {
		return nil, false
	}
	return &Sync{node{c.m, p}}, true
}

// Duration returns the rest's notated duration.
func (r *Rest) Duration() RTime { return r.rtimeAttr("duration") }

// AddNote appends a note to the chord, ordered high-to-low or in
// insertion order as the caller prefers (§5.5 orders notes within chords
// by pitch in its example; insertion order is preserved here and callers
// sort as desired).
func (c *Chord) AddNote(degree int, acc Accidental) (*Note, error) {
	ref, err := c.m.DB.NewEntity("NOTE", model.Attrs{
		"degree":     value.Int(int64(degree)),
		"accidental": value.Int(int64(acc)),
		"midi_pitch": value.Int(0),
	})
	if err != nil {
		return nil, err
	}
	if err := c.m.DB.InsertChild("note_in_chord", c.Ref, ref, model.Last()); err != nil {
		return nil, err
	}
	return &Note{node{c.m, ref}}, nil
}

// Notes returns the chord's notes in order.
func (c *Chord) Notes() ([]*Note, error) {
	kids, err := c.m.DB.Children("note_in_chord", c.Ref)
	if err != nil {
		return nil, err
	}
	out := make([]*Note, len(kids))
	for i, k := range kids {
		out[i] = &Note{node{c.m, k}}
	}
	return out, nil
}

// Degree returns the note's staff degree.
func (n *Note) Degree() int { return int(n.intAttr("degree")) }

// Accidental returns the note's notated accidental.
func (n *Note) Accidental() Accidental { return Accidental(n.intAttr("accidental")) }

// MIDIPitch returns the resolved performance pitch (0 until
// ResolvePitches has run).
func (n *Note) MIDIPitch() int { return int(n.intAttr("midi_pitch")) }

// Chord returns the note's parent chord.
func (n *Note) Chord() (*Chord, bool) {
	p, ok := n.m.DB.ParentOf("note_in_chord", n.Ref)
	if !ok {
		return nil, false
	}
	return &Chord{node{n.m, p}}, true
}

// OnStaff places the note on a staff (the multiple-parents example of
// §5.5: a note has a chord parent and a staff parent, independently).
func (n *Note) OnStaff(st *Staff) error {
	return n.m.DB.InsertChild("note_on_staff", st.Ref, n.Ref, model.Last())
}

// Staff returns the staff the note lies on.
func (n *Note) Staff() (*Staff, bool) {
	p, ok := n.m.DB.ParentOf("note_on_staff", n.Ref)
	if !ok {
		return nil, false
	}
	return &Staff{node{n.m, p}}, true
}
