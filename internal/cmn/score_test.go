package cmn

import (
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/value"
)

func newMusic(t testing.TB) *Music {
	t.Helper()
	store, err := storage.Open(storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := model.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildTwoVoices builds one movement of two measures of 4/4 with two
// voices:
//
//	voice 1: quarter, quarter, half | whole
//	voice 2: half, half            | rest(half), half
func buildTwoVoices(t testing.TB, m *Music) (*Score, *Movement, *Voice, *Voice, *Staff) {
	t.Helper()
	score, err := m.NewScore("Test Invention", "T 1")
	if err != nil {
		t.Fatal(err)
	}
	mv, _ := score.AddMovement("Allegro")
	mv.AddMeasure(4, 4)
	mv.AddMeasure(4, 4)

	orch, _ := m.NewOrchestra("ensemble")
	orch.Performs(score)
	sec, _ := orch.AddSection("keyboards")
	inst, _ := sec.AddInstrument("organ", 19)
	staff, _ := inst.AddStaff(1, TrebleClef, 0)
	part, _ := inst.AddPart("organ I")
	v1, _ := part.AddVoice(1)
	v2, _ := part.AddVoice(2)

	// Voice 1: E4 F4 G4 | C5.
	for _, d := range []struct {
		dur    RTime
		degree int
	}{{Quarter, 0}, {Quarter, 1}, {Half, 2}, {Whole, 5}} {
		c, err := v1.AppendChord(d.dur, +1)
		if err != nil {
			t.Fatal(err)
		}
		n, err := c.AddNote(d.degree, AccNone)
		if err != nil {
			t.Fatal(err)
		}
		n.OnStaff(staff)
	}
	// Voice 2: C4 E4 | rest, G4.
	c1, _ := v2.AppendChord(Half, -1)
	n1, _ := c1.AddNote(-2, AccNone)
	n1.OnStaff(staff)
	c2, _ := v2.AppendChord(Half, -1)
	n2, _ := c2.AddNote(0, AccNone)
	n2.OnStaff(staff)
	v2.AppendRest(Half)
	c3, _ := v2.AppendChord(Half, -1)
	n3, _ := c3.AddNote(2, AccNone)
	n3.OnStaff(staff)

	if err := mv.Align([]*Voice{v1, v2}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []*Voice{v1, v2} {
		if err := v.ResolvePitches(staff); err != nil {
			t.Fatal(err)
		}
	}
	return score, mv, v1, v2, staff
}

func TestScoreStructure(t *testing.T) {
	m := newMusic(t)
	score, mv, _, _, _ := buildTwoVoices(t, m)
	if score.Title() != "Test Invention" || score.CatalogID() != "T 1" {
		t.Fatal("score attrs")
	}
	movements, _ := score.Movements()
	if len(movements) != 1 || movements[0].Ref != mv.Ref {
		t.Fatal("movements")
	}
	measures, _ := mv.Measures()
	if len(measures) != 2 || measures[0].Number() != 1 || measures[1].Number() != 2 {
		t.Fatal("measures")
	}
	if d := measures[0].Duration(); d.Cmp(Whole) != 0 {
		t.Fatalf("4/4 measure duration = %s", d)
	}
	start, _ := measures[1].Start()
	if start.Cmp(Whole) != 0 {
		t.Fatalf("measure 2 start = %s", start)
	}
	dur, _ := score.Duration()
	if dur.Cmp(Beats(8, 1)) != 0 {
		t.Fatalf("score duration = %s", dur)
	}
}

func TestMeterDurations(t *testing.T) {
	m := newMusic(t)
	score, _ := m.NewScore("meters", "")
	mv, _ := score.AddMovement("one")
	sixEight, _ := mv.AddMeasure(6, 8)
	threeFour, _ := mv.AddMeasure(3, 4)
	if d := sixEight.Duration(); d.Cmp(Beats(3, 1)) != 0 {
		t.Fatalf("6/8 = %s beats", d)
	}
	if d := threeFour.Duration(); d.Cmp(Beats(3, 1)) != 0 {
		t.Fatalf("3/4 = %s beats", d)
	}
	if _, err := mv.AddMeasure(0, 4); err == nil {
		t.Fatal("zero meter accepted")
	}
}

// TestFigure14SyncAlignment checks the sync structure of the two-voice
// fragment: measure 1 has syncs at 0, 1, 2 (voice 1's onsets 0,1,2 and
// voice 2's 0,2 merge); measure 2 has syncs at 0 and 2.
func TestFigure14SyncAlignment(t *testing.T) {
	m := newMusic(t)
	_, mv, _, _, _ := buildTwoVoices(t, m)
	measures, _ := mv.Measures()
	syncs1, _ := measures[0].Syncs()
	var offsets []string
	for _, sy := range syncs1 {
		offsets = append(offsets, sy.Offset().String())
	}
	if len(offsets) != 3 || offsets[0] != "0" || offsets[1] != "1" || offsets[2] != "2" {
		t.Fatalf("measure 1 syncs: %v", offsets)
	}
	// The sync at beat 0 carries chords from both voices.
	chords, _ := syncs1[0].Chords()
	if len(chords) != 2 {
		t.Fatalf("sync 0 chords: %d", len(chords))
	}
	// Measure 2: whole note at 0 (voice 1) and half at 2 (voice 2) —
	// the rest creates no sync.
	syncs2, _ := measures[1].Syncs()
	if len(syncs2) != 2 || syncs2[0].Offset().Cmp(Zero) != 0 || syncs2[1].Offset().Cmp(Half) != 0 {
		var got []string
		for _, sy := range syncs2 {
			got = append(got, sy.Offset().String())
		}
		t.Fatalf("measure 2 syncs: %v", got)
	}
}

func TestOnsets(t *testing.T) {
	m := newMusic(t)
	_, _, v1, v2, _ := buildTwoVoices(t, m)
	content, _ := v1.Content()
	wantOnsets := []string{"0", "1", "2", "4"}
	for i, item := range content {
		c := &Chord{node{m, item.Ref}}
		on, err := c.Onset()
		if err != nil {
			t.Fatal(err)
		}
		if on.String() != wantOnsets[i] {
			t.Fatalf("voice1 chord %d onset = %s want %s", i, on, wantOnsets[i])
		}
	}
	// Voice 2's final half note starts at beat 6 (after the rest).
	content2, _ := v2.Content()
	last := &Chord{node{m, content2[len(content2)-1].Ref}}
	on, _ := last.Onset()
	if on.Cmp(Beats(6, 1)) != 0 {
		t.Fatalf("voice2 last onset = %s", on)
	}
}

func TestVoiceOverflowDetected(t *testing.T) {
	m := newMusic(t)
	score, _ := m.NewScore("overflow", "")
	mv, _ := score.AddMovement("one")
	mv.AddMeasure(4, 4)
	orch, _ := m.NewOrchestra("o")
	orch.Performs(score)
	sec, _ := orch.AddSection("s")
	inst, _ := sec.AddInstrument("i", 0)
	part, _ := inst.AddPart("p")
	v, _ := part.AddVoice(1)
	v.AppendChord(Whole, 1)
	over, _ := v.AppendChord(Quarter, 1) // beyond the single measure
	_ = over
	if err := mv.Align([]*Voice{v}); err == nil {
		t.Fatal("overflow not detected")
	}
}

func TestResolvePitchesAcrossMeasures(t *testing.T) {
	m := newMusic(t)
	score, _ := m.NewScore("accidentals", "")
	mv, _ := score.AddMovement("one")
	mv.AddMeasure(4, 4)
	mv.AddMeasure(4, 4)
	orch, _ := m.NewOrchestra("o")
	orch.Performs(score)
	sec, _ := orch.AddSection("s")
	inst, _ := sec.AddInstrument("i", 0)
	staff, _ := inst.AddStaff(1, TrebleClef, 1) // G major: F#
	part, _ := inst.AddPart("p")
	v, _ := part.AddVoice(1)

	// Measure 1: F (sharp by key), F-natural, F (natural persists).
	// Measure 2: F (key signature applies again).
	degrees := []struct {
		acc Accidental
	}{{AccNone}, {AccNatural}, {AccNone}, {AccNone}}
	var notes []*Note
	for i, d := range degrees {
		dur := Quarter
		if i == 3 {
			dur = Whole // fills measure 2... wait: 3 quarters then whole
		}
		_ = i
		c, _ := v.AppendChord(dur, 1)
		n, _ := c.AddNote(1, d.acc) // F4 space
		notes = append(notes, n)
	}
	// Pad measure 1 with a rest (3 quarters + rest = 4 beats).
	v.AppendRest(Quarter)
	// Content order: q q q w rest — but rest must come before the whole
	// note to pad measure 1.  Rebuild properly instead:
	// (simpler: move the rest before the whole via MoveChild)
	items, _ := v.Content()
	_ = items
	if err := m.DB.MoveChild("voice_content", items[4].Ref, model.At(3)); err != nil {
		t.Fatal(err)
	}
	if err := mv.Align([]*Voice{v}); err != nil {
		t.Fatal(err)
	}
	if err := v.ResolvePitches(staff); err != nil {
		t.Fatal(err)
	}
	want := []int{66, 65, 65, 66} // F#4, F4, F4, F#4
	for i, n := range notes {
		if got := n.MIDIPitch(); got != want[i] {
			t.Fatalf("note %d pitch = %d want %d", i, got, want[i])
		}
	}
}

func TestTieMergesIntoEvent(t *testing.T) {
	m := newMusic(t)
	score, _ := m.NewScore("ties", "")
	mv, _ := score.AddMovement("one")
	mv.AddMeasure(4, 4)
	mv.AddMeasure(4, 4)
	orch, _ := m.NewOrchestra("o")
	orch.Performs(score)
	sec, _ := orch.AddSection("s")
	inst, _ := sec.AddInstrument("i", 0)
	staff, _ := inst.AddStaff(1, TrebleClef, 0)
	part, _ := inst.AddPart("p")
	v, _ := part.AddVoice(1)

	// Whole note tied across the barline to a half note, then a half.
	c1, _ := v.AppendChord(Whole, 1)
	n1, _ := c1.AddNote(2, AccNone) // G4
	c2, _ := v.AppendChord(Half, 1)
	n2, _ := c2.AddNote(2, AccNone)
	c3, _ := v.AppendChord(Half, 1)
	n3, _ := c3.AddNote(4, AccNone) // B4
	for _, n := range []*Note{n1, n2, n3} {
		n.OnStaff(staff)
	}
	ev, err := m.Tie(n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n1.EventOf(); !ok {
		t.Fatal("n1 not in event")
	}
	if ev2, ok := n2.EventOf(); !ok || ev2.Ref != ev.Ref {
		t.Fatal("n2 not in same event")
	}
	mv.Align([]*Voice{v})
	v.ResolvePitches(staff)

	pns, err := v.PerformedNotes()
	if err != nil {
		t.Fatal(err)
	}
	// Two performed notes: the tied G (6 beats) and the B (2 beats).
	if len(pns) != 2 {
		t.Fatalf("performed notes: %d", len(pns))
	}
	if pns[0].Pitch != 67 || pns[0].Duration.Cmp(Beats(6, 1)) != 0 || !pns[0].Start.IsZero() {
		t.Fatalf("tied note: %+v", pns[0])
	}
	if pns[1].Pitch != 71 || pns[1].Start.Cmp(Beats(6, 1)) != 0 {
		t.Fatalf("second note: %+v", pns[1])
	}
}

func TestTieValidation(t *testing.T) {
	m := newMusic(t)
	_, _, v1, v2, _ := buildTwoVoices(t, m)
	c1, _ := v1.Content()
	c2, _ := v2.Content()
	n1 := firstNote(t, m, c1[0].Ref)
	n2 := firstNote(t, m, c2[0].Ref)
	if _, err := m.Tie(n1, n2); err == nil {
		t.Fatal("cross-voice tie accepted")
	}
}

func firstNote(t *testing.T, m *Music, chordRef value.Ref) *Note {
	t.Helper()
	notes, err := (&Chord{node{m, chordRef}}).Notes()
	if err != nil || len(notes) == 0 {
		t.Fatal("no notes")
	}
	return notes[0]
}

func TestDynamicsInheritance(t *testing.T) {
	m := newMusic(t)
	score, _, v1, v2, _ := buildTwoVoices(t, m)
	// Score-level forte from beat 0; voice 1 drops to piano at beat 2.
	if err := score.AddDynamic(Zero, "f"); err != nil {
		t.Fatal(err)
	}
	if err := v1.AddDynamic(Beats(2, 1), "p"); err != nil {
		t.Fatal(err)
	}
	if err := v1.AddDynamic(Zero, "bogus"); err == nil {
		t.Fatal("bogus dynamic accepted")
	}
	pns1, _ := v1.PerformedNotes()
	// Beats 0 and 1: inherited score-level f (96); beats 2+: voice p (49).
	if pns1[0].Velocity != 96 || pns1[1].Velocity != 96 {
		t.Fatalf("early velocities: %+v", pns1[:2])
	}
	if pns1[2].Velocity != 49 || pns1[3].Velocity != 49 {
		t.Fatalf("late velocities: %+v", pns1[2:])
	}
	// Voice 2 has no voice-level marks: all score-level f.
	pns2, _ := v2.PerformedNotes()
	for _, pn := range pns2 {
		if pn.Velocity != 96 {
			t.Fatalf("voice2 velocity: %+v", pn)
		}
	}
}

func TestDefaultDynamicIsMF(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, _ := buildTwoVoices(t, m)
	pns, _ := v1.PerformedNotes()
	if pns[0].Velocity != 80 {
		t.Fatalf("default velocity: %d", pns[0].Velocity)
	}
}

// TestFigure15Groups: nested groups with duration aggregation and tuplet
// scaling.
func TestFigure15Groups(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, _ := buildTwoVoices(t, m)
	content, _ := v1.Content()
	// Slur over the first three chords (durations 1+1+2 = 4 beats).
	slur, err := v1.NewGroup("slur", 0, 0, content[0].Ref, content[1].Ref, content[2].Ref)
	if err != nil {
		t.Fatal(err)
	}
	d, err := slur.Duration()
	if err != nil || d.Cmp(Whole) != 0 {
		t.Fatalf("slur duration = %s (%v)", d, err)
	}
	if slur.Kind() != "slur" {
		t.Fatal("kind")
	}
	// A chord may belong to only one group per ordering (one P-edge per
	// ordering, §5.5).
	if _, err := v1.NewGroup("beam", 0, 0, content[0].Ref); err == nil {
		t.Fatal("chord admitted to second group")
	}
	// Nested: beam of two fresh quarters inside a phrase group that also
	// holds a fresh half note (figure 8's recursive shape).
	q1, _ := v1.AppendChord(Quarter, 1)
	q2, _ := v1.AppendChord(Quarter, 1)
	h1, _ := v1.AppendChord(Half, 1)
	beam, err := v1.NewGroup("beam", 0, 0, q1.Ref, q2.Ref)
	if err != nil {
		t.Fatal(err)
	}
	phrase, err := v1.NewGroup("phrase", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DB.InsertChild("group_content", phrase.Ref, beam.Ref, model.Last()); err != nil {
		t.Fatal(err)
	}
	if err := m.DB.InsertChild("group_content", phrase.Ref, h1.Ref, model.Last()); err != nil {
		t.Fatal(err)
	}
	d, err = phrase.Duration()
	if err != nil || d.Cmp(Whole) != 0 {
		t.Fatalf("phrase duration = %s (%v)", d, err)
	}
	// Tuplet: three fresh quarters in the time of two.
	t1, _ := v1.AppendChord(Quarter, 1)
	t2, _ := v1.AppendChord(Quarter, 1)
	t3, _ := v1.AppendChord(Quarter, 1)
	tuplet, err := v1.NewGroup("tuplet", 2, 3, t1.Ref, t2.Ref, t3.Ref)
	if err != nil {
		t.Fatal(err)
	}
	d, _ = tuplet.Duration()
	if d.Cmp(Beats(2, 1)) != 0 {
		t.Fatalf("tuplet duration = %s", d)
	}
}

func TestClearAndRealign(t *testing.T) {
	m := newMusic(t)
	_, mv, v1, v2, _ := buildTwoVoices(t, m)
	if err := mv.ClearAlignment(); err != nil {
		t.Fatal(err)
	}
	measures, _ := mv.Measures()
	for _, me := range measures {
		syncs, _ := me.Syncs()
		if len(syncs) != 0 {
			t.Fatal("syncs survive clear")
		}
	}
	if err := mv.Align([]*Voice{v1, v2}); err != nil {
		t.Fatal(err)
	}
	syncs, _ := measures[0].Syncs()
	if len(syncs) != 3 {
		t.Fatalf("realigned syncs: %d", len(syncs))
	}
}

func TestInstrumentNavigation(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, staff := buildTwoVoices(t, m)
	inst, ok := v1.Instrument()
	if !ok || inst.Name() != "organ" || inst.MIDIProgram() != 19 {
		t.Fatal("instrument navigation")
	}
	if staff.Clef() != TrebleClef || staff.Key() != 0 {
		t.Fatal("staff attrs")
	}
	// Note → chord → staff navigation.
	content, _ := v1.Content()
	n := firstNote(t, m, content[0].Ref)
	st, ok := n.Staff()
	if !ok || st.Ref != staff.Ref {
		t.Fatal("note staff")
	}
	ch, ok := n.Chord()
	if !ok || ch.Ref != content[0].Ref {
		t.Fatal("note chord")
	}
	if ch.StemDirection() != 1 {
		t.Fatal("stem direction")
	}
	vv, ok := ch.Voice()
	if !ok || vv.Ref != v1.Ref {
		t.Fatal("chord voice")
	}
}

func TestInventoryAndAspects(t *testing.T) {
	m := newMusic(t)
	inv := Inventory()
	if len(inv) < 24 {
		t.Fatalf("inventory rows: %d", len(inv))
	}
	// Every inventoried entity type must exist in the schema.
	for _, e := range inv {
		if _, ok := m.DB.EntityType(e.Name); !ok {
			t.Errorf("inventory entity %s not in schema", e.Name)
		}
	}
	asp := Aspects()
	// Figure 12 checks: notes have five aspects; MIDI events have no
	// graphical aspect.
	noteAspects := asp["NOTE"]
	if len(noteAspects) != 5 {
		t.Fatalf("NOTE aspects: %v", noteAspects)
	}
	for _, a := range asp["MIDIEV"] {
		if a == AspectGraphical {
			t.Fatal("MIDI events must have no graphical aspect")
		}
	}
	// Every aspect-classified entity is in the inventory.
	names := map[string]bool{}
	for _, e := range inv {
		names[e.Name] = true
	}
	for n := range asp {
		if !names[n] {
			t.Errorf("aspect entity %s missing from inventory", n)
		}
	}
	// The temporal orderings of figure 13 all exist.
	for _, o := range TemporalOrderings() {
		if _, ok := m.DB.OrderingByName(o); !ok {
			t.Errorf("temporal ordering %s not defined", o)
		}
	}
}

func TestArticulationInheritance(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, _ := buildTwoVoices(t, m)
	// Staccato from the start; tenuto restores at beat 2; marcato at 4.
	if err := v1.AddArticulation(Zero, "staccato"); err != nil {
		t.Fatal(err)
	}
	if err := v1.AddArticulation(Beats(2, 1), "tenuto"); err != nil {
		t.Fatal(err)
	}
	if err := v1.AddArticulation(Beats(4, 1), "marcato"); err != nil {
		t.Fatal(err)
	}
	if err := v1.AddArticulation(Zero, "bogus"); err == nil {
		t.Fatal("bogus articulation accepted")
	}
	pns, err := v1.PerformedNotes()
	if err != nil {
		t.Fatal(err)
	}
	// Voice 1: quarters at 0 and 1 (staccato: halved), half at 2
	// (tenuto: full), whole at 4 (marcato: velocity +16).
	if pns[0].Duration.Cmp(Eighth) != 0 || pns[0].Articulation != "staccato" {
		t.Fatalf("staccato: %+v", pns[0])
	}
	if pns[1].Duration.Cmp(Eighth) != 0 {
		t.Fatalf("staccato carries: %+v", pns[1])
	}
	if pns[2].Duration.Cmp(Half) != 0 || pns[2].Articulation != "tenuto" {
		t.Fatalf("tenuto: %+v", pns[2])
	}
	if pns[3].Velocity != 96 || pns[3].Articulation != "marcato" {
		t.Fatalf("marcato: %+v", pns[3])
	}
}

func TestPizzicatoTimbre(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, _ := buildTwoVoices(t, m)
	v1.AddArticulation(Zero, "pizzicato")
	v1.AddArticulation(Beats(2, 1), "arco")
	pns, _ := v1.PerformedNotes()
	if pns[0].Timbre != "pizzicato" || pns[2].Timbre != "arco" {
		t.Fatalf("timbres: %q %q", pns[0].Timbre, pns[2].Timbre)
	}
	// Durations unchanged by pizzicato/arco.
	if pns[0].Duration.Cmp(Quarter) != 0 {
		t.Fatalf("pizz duration: %s", pns[0].Duration)
	}
}

func TestTransposingInstrument(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, _ := buildTwoVoices(t, m)
	inst, _ := v1.Instrument()
	if err := inst.SetTransposition(-2); err != nil { // B-flat instrument
		t.Fatal(err)
	}
	if inst.Transposition() != -2 {
		t.Fatal("transposition attr")
	}
	pns, _ := v1.PerformedNotes()
	// Written E4 (64) sounds D4 (62).
	if pns[0].Pitch != 62 {
		t.Fatalf("transposed pitch: %d", pns[0].Pitch)
	}
}

func TestLayout(t *testing.T) {
	m := newMusic(t)
	score, mv, _, _, _ := buildTwoVoices(t, m)
	// 2 measures → 1 measure per system = 2 systems; 1 system per page
	// = 2 pages.
	pages, err := score.Layout(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 || pages[0].Number() != 1 || pages[1].Number() != 2 {
		t.Fatalf("pages: %d", len(pages))
	}
	systems, err := pages[0].Systems()
	if err != nil || len(systems) != 1 || systems[0].Number() != 1 {
		t.Fatalf("systems: %v %v", systems, err)
	}
	staves, err := systems[0].Staves()
	if err != nil || len(staves) != 1 {
		t.Fatalf("staves: %d %v", len(staves), err)
	}
	if staves[0].Clef() != TrebleClef {
		t.Fatal("graphical staff clef")
	}
	// Re-layout replaces: 2 measures per system → 1 system on 1 page.
	pages, err = score.Layout(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("relayout pages: %d", len(pages))
	}
	all, _ := score.Pages()
	if len(all) != 1 {
		t.Fatalf("Pages(): %d", len(all))
	}
	// Parameter validation.
	if _, err := score.Layout(0, 1); err == nil {
		t.Fatal("zero measures per system accepted")
	}
	_ = mv
}

func TestLyrics(t *testing.T) {
	m := newMusic(t)
	_, _, v1, _, _ := buildTwoVoices(t, m)
	partRef, _ := m.DB.ParentOf("voice_in_part", v1.Ref)
	part := &Part{node{m, partRef}}
	// Attach a text line with two syllables to the part.
	line, _ := m.DB.NewEntity("TEXTLINE", model.Attrs{"name": value.Str("verse")})
	m.DB.InsertChild("text_in_part", partRef, line, model.Last())
	content, _ := v1.Content()
	notes, _ := (&Chord{node{m, content[0].Ref}}).Notes()
	for i, text := range []string{"Al-", "le-"} {
		syl, _ := m.DB.NewEntity("SYLLABLE", model.Attrs{"text": value.Str(text)})
		m.DB.InsertChild("syllable_in_text", line, syl, model.Last())
		if i == 0 {
			m.DB.Relate("SYLLABLE_OF", map[string]value.Ref{"syllable": syl, "note": notes[0].Ref}, nil)
		}
	}
	lyrics, err := part.Lyrics()
	if err != nil || len(lyrics) != 2 {
		t.Fatalf("lyrics: %v %v", lyrics, err)
	}
	if lyrics[0].Text != "Al-" || lyrics[0].Note != notes[0].Ref {
		t.Fatalf("first lyric: %+v", lyrics[0])
	}
	if lyrics[1].Note != 0 {
		t.Fatal("unattached syllable should have no note")
	}
}
