package cmn

import (
	"fmt"

	"repro/internal/ddl"
	"repro/internal/model"
)

// SchemaDDL is the data definition for the CMN database: the entity
// types of figure 11 and the hierarchical orderings of the temporal
// (figure 13), timbral, and graphical aspect graphs.  It is issued
// through the §5.4 DDL so that the schema is catalogued like any other
// (§6.1).
//
// Rational score times (durations, offsets) are stored in single integer
// attributes via RTime.Encode.
const SchemaDDL = `
/* ---- temporal aspect (figure 13) ---- */
define entity SCORE (title = string, catalog_id = string)
define entity MOVEMENT (name = string, number = integer)
define entity MEASURE (number = integer, meter_num = integer, meter_den = integer)
define entity SYNC (offset = integer)
define entity VOICE (number = integer)
define entity GROUP (kind = string, tuplet_num = integer, tuplet_den = integer)
define entity CHORD (duration = integer, stem_direction = integer)
define entity REST (duration = integer)
define entity EVENT (start = integer, duration = integer)
define entity NOTE (degree = integer, accidental = integer, midi_pitch = integer)
define entity MIDIEV (key = integer, velocity = integer, start_us = integer, duration_us = integer, channel = integer)
define entity MIDICTRL (controller = integer, ctrl_value = integer, at_us = integer, channel = integer)

define ordering movement_in_score (MOVEMENT) under SCORE
define ordering measure_in_movement (MEASURE) under MOVEMENT
define ordering sync_in_measure (SYNC) under MEASURE
define ordering chord_in_sync (CHORD) under SYNC
define ordering note_in_chord (NOTE) under CHORD
define ordering voice_content (CHORD, REST) under VOICE
define ordering group_in_voice (GROUP) under VOICE
define ordering group_content (GROUP, CHORD, REST) under GROUP
define ordering event_in_voice (EVENT) under VOICE
define ordering note_in_event (NOTE) under EVENT
define ordering midi_in_event (MIDIEV) under EVENT

/* ---- timbral aspect ---- */
define entity ORCHESTRA (name = string)
define entity SECTION (name = string)
define entity INSTRUMENT (name = string, midi_program = integer, transposition = integer)
define entity PART (name = string)
define entity DYNAMIC (marking = string, level = integer, at_beat = integer)

define ordering section_in_orchestra (SECTION) under ORCHESTRA
define ordering instrument_in_section (INSTRUMENT) under SECTION
define ordering part_in_instrument (PART) under INSTRUMENT
define ordering voice_in_part (VOICE) under PART
define ordering dynamic_in_voice (DYNAMIC) under VOICE
define ordering dynamic_in_score (DYNAMIC) under SCORE

define relationship PERFORMS (orchestra = ORCHESTRA, score = SCORE)

/* ---- graphical aspect ---- */
define entity PAGE (number = integer)
define entity SYSTEM (number = integer)
define entity STAFF (number = integer, clef = integer, key_signature = integer)
define entity DEGREE (number = integer)
define entity STEM (xpos = integer, ypos = integer, length = integer, direction = integer)
define entity BEAM (thickness = integer)
define entity NOTEHEAD (shape = string, xpos = integer, ypos = integer)
define entity ANNOTATION (kind = string, text = string)

define ordering page_in_score (PAGE) under SCORE
define ordering system_in_page (SYSTEM) under PAGE
define ordering staff_in_system (STAFF) under SYSTEM
define ordering staff_in_instrument (STAFF) under INSTRUMENT
define ordering note_on_staff (NOTE) under STAFF
define ordering degree_in_staff (DEGREE) under STAFF

/* ---- text subaspect ---- */
define entity TEXTLINE (name = string)
define entity SYLLABLE (text = string)
define ordering text_in_part (TEXTLINE) under PART
define ordering syllable_in_text (SYLLABLE) under TEXTLINE

define relationship SYLLABLE_OF (syllable = SYLLABLE, note = NOTE)

/* ---- articulative subaspect (§7.1.1) ---- */
define ordering articulation_in_voice (ANNOTATION) under VOICE
`

// DefineSchema issues the CMN schema DDL against the model database.  It
// is idempotent: if the SCORE entity type already exists the schema is
// assumed present.
func DefineSchema(db *model.Database) error {
	if _, ok := db.EntityType("SCORE"); ok {
		return nil
	}
	if _, err := ddl.Exec(db, SchemaDDL); err != nil {
		return fmt.Errorf("cmn: defining schema: %w", err)
	}
	return nil
}

// EntityDesc is one row of the figure-11 inventory.
type EntityDesc struct {
	Name        string
	Description string
}

// Inventory reproduces figure 11: the entities of the CMN schema with
// the paper's one-line descriptions.
func Inventory() []EntityDesc {
	return []EntityDesc{
		{"SCORE", "The unit of musical composition"},
		{"MOVEMENT", "A temporal subsection of the score"},
		{"MEASURE", "A temporal subsection of the movement"},
		{"SYNC", "Sets of simultaneous events"},
		{"GROUP", "A group of contiguous chords and rests in a voice"},
		{"CHORD", "A set of notes in one voice at one sync"},
		{"EVENT", "An atomic unit of sound, one or more notes"},
		{"NOTE", "An atomic unit of music, a pitch in a chord"},
		{"REST", "A \"chord\" containing no notes"},
		{"MIDIEV", "A MIDI note event"},
		{"MIDICTRL", "A MIDI control event at a point in time"},
		{"ORCHESTRA", "A set of instruments performing a score"},
		{"SECTION", "A family of instruments"},
		{"INSTRUMENT", "The unit of timbral definition"},
		{"PART", "Music assigned to an individual performer"},
		{"VOICE", "The unit of homophony"},
		{"TEXTLINE", "In vocal music, a line of text associated with the notes"},
		{"SYLLABLE", "The piece of text associated with a single note"},
		{"PAGE", "One graphical page of the score"},
		{"SYSTEM", "One line of the score on a page"},
		{"STAFF", "A division of the system, associated with an instrument"},
		{"DEGREE", "A division of the staff (line and space)"},
		{"DYNAMIC", "A dynamic marking (inherited by notes from context)"},
		{"STEM", "The stem of a chord (graphical)"},
		{"BEAM", "A beam joining chord stems (graphical)"},
		{"NOTEHEAD", "The head of a note (graphical)"},
		{"ANNOTATION", "Textual or graphical score annotation"},
	}
}

// Aspect classifies entity attributes per figure 12.
type Aspect string

// The aspects and subaspects of figure 12.
const (
	AspectTemporal     Aspect = "temporal"
	AspectTimbral      Aspect = "timbral"
	AspectPitch        Aspect = "timbral/pitch"
	AspectArticulation Aspect = "timbral/articulation"
	AspectDynamic      Aspect = "timbral/dynamic"
	AspectGraphical    Aspect = "graphical"
	AspectTextual      Aspect = "graphical/textual"
)

// Aspects reproduces figure 12's classification: which aspects each CMN
// entity type participates in.  Entities may appear under several
// aspects (a NOTE has temporal, pitch, articulation, dynamic, and
// graphical attributes); MIDI events have no graphical aspect.
func Aspects() map[string][]Aspect {
	return map[string][]Aspect{
		"SCORE":      {AspectTemporal, AspectGraphical},
		"MOVEMENT":   {AspectTemporal},
		"MEASURE":    {AspectTemporal, AspectGraphical},
		"SYNC":       {AspectTemporal, AspectGraphical},
		"GROUP":      {AspectTemporal, AspectArticulation, AspectGraphical},
		"CHORD":      {AspectTemporal, AspectTimbral, AspectGraphical},
		"EVENT":      {AspectTemporal, AspectTimbral},
		"NOTE":       {AspectTemporal, AspectPitch, AspectArticulation, AspectDynamic, AspectGraphical},
		"REST":       {AspectTemporal, AspectGraphical},
		"MIDIEV":     {AspectTemporal, AspectTimbral},
		"MIDICTRL":   {AspectTemporal},
		"ORCHESTRA":  {AspectTimbral},
		"SECTION":    {AspectTimbral},
		"INSTRUMENT": {AspectTimbral, AspectGraphical},
		"PART":       {AspectTimbral, AspectGraphical},
		"VOICE":      {AspectTimbral},
		"DYNAMIC":    {AspectDynamic, AspectGraphical},
		"TEXTLINE":   {AspectTextual},
		"SYLLABLE":   {AspectTextual},
		"PAGE":       {AspectGraphical},
		"SYSTEM":     {AspectGraphical},
		"STAFF":      {AspectGraphical, AspectPitch},
		"DEGREE":     {AspectGraphical},
		"STEM":       {AspectGraphical},
		"BEAM":       {AspectGraphical},
		"NOTEHEAD":   {AspectGraphical},
		"ANNOTATION": {AspectTextual, AspectGraphical},
	}
}

// TemporalOrderings lists the orderings of the figure-13 temporal HO
// graph, top-down.
func TemporalOrderings() []string {
	return []string{
		"movement_in_score",
		"measure_in_movement",
		"sync_in_measure",
		"chord_in_sync",
		"note_in_chord",
		"voice_content",
		"group_in_voice",
		"group_content",
		"event_in_voice",
		"note_in_event",
		"midi_in_event",
	}
}
