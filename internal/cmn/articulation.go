package cmn

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/value"
)

// Articulative attributes (§7.1.1): "A note inherits various articulative
// attributes ... modal attributes such as staccato (shortened or clipped)
// or marcato (marked or stressed).  Also, a note may have inherited
// various performance attributes, such as when a violin note is played
// pizzicato (plucked) or arco (bowed)."
//
// Articulations attach to a voice at a beat and apply to notes from that
// beat onward, until changed — the same contextual-inheritance scheme as
// dynamics.  Their performance effect:
//
//	staccato  sounded duration halved
//	tenuto    full notated duration (cancels staccato)
//	marcato   velocity raised by 16 (cancels after one context change)
//	pizzicato / arco  timbre selection, surfaced on PerformedNote
//	legato    durations extended slightly (110%, capped at the onset of
//	          the next note by the synthesizer's mixing)

// articulationEffects maps markings to their performance parameters.
var articulationEffects = map[string]struct {
	durNum, durDen int64 // sounded duration scale
	velDelta       int
	timbre         string
}{
	"staccato":  {1, 2, 0, ""},
	"tenuto":    {1, 1, 0, ""},
	"marcato":   {1, 1, 16, ""},
	"legato":    {11, 10, 0, ""},
	"pizzicato": {1, 1, 0, "pizzicato"},
	"arco":      {1, 1, 0, "arco"},
}

// AddArticulation attaches an articulation context to the voice at a
// beat.  Recognized markings: staccato, tenuto, marcato, legato,
// pizzicato, arco.
func (v *Voice) AddArticulation(beat RTime, marking string) error {
	if _, ok := articulationEffects[marking]; !ok {
		return fmt.Errorf("cmn: unknown articulation %q", marking)
	}
	ref, err := v.m.DB.NewEntity("ANNOTATION", model.Attrs{
		"kind": value.Str("articulation:" + marking),
		"text": value.Str(fmt.Sprintf("%d", beat.Encode())),
	})
	if err != nil {
		return err
	}
	return v.m.DB.InsertChild("articulation_in_voice", v.Ref, ref, model.Last())
}

// articulationAt resolves the active articulation context at a beat: the
// latest marking at or before it.
func (v *Voice) articulationAt(beat RTime) (string, bool) {
	kids, err := v.m.DB.Children("articulation_in_voice", v.Ref)
	if err != nil {
		return "", false
	}
	best := ""
	bestBeat := Zero
	found := false
	for _, a := range kids {
		an := node{v.m, a}
		kind := an.strAttr("kind")
		const prefix = "articulation:"
		if len(kind) <= len(prefix) || kind[:len(prefix)] != prefix {
			continue
		}
		var enc int64
		fmt.Sscanf(an.strAttr("text"), "%d", &enc)
		at := DecodeRTime(enc)
		if at.Cmp(beat) <= 0 && (!found || bestBeat.Cmp(at) <= 0) {
			best = kind[len(prefix):]
			bestBeat = at
			found = true
		}
	}
	return best, found
}

// applyArticulation adjusts a performed note per the active context.
func (v *Voice) applyArticulation(pn *PerformedNote) {
	marking, ok := v.articulationAt(pn.Start)
	if !ok {
		return
	}
	fx := articulationEffects[marking]
	pn.Duration = pn.Duration.Mul(Beats(fx.durNum, fx.durDen))
	pn.Velocity += fx.velDelta
	if fx.timbre != "" {
		pn.Timbre = fx.timbre
	}
	pn.Articulation = marking
}
