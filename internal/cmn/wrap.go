package cmn

import (
	"fmt"

	"repro/internal/value"
)

// Ref-wrapping constructors: clients that obtain entity surrogates from
// queries (QUEL results, ordering walks) convert them back into typed
// handles with these.  Each checks the surrogate's entity type.

func (m *Music) wrapCheck(ref value.Ref, want string) error {
	typ, ok := m.DB.TypeOf(ref)
	if !ok {
		return fmt.Errorf("cmn: no entity @%d", ref)
	}
	if typ != want {
		return fmt.Errorf("cmn: @%d is a %s, not a %s", ref, typ, want)
	}
	return nil
}

// ScoreByRef wraps a SCORE surrogate.
func (m *Music) ScoreByRef(ref value.Ref) (*Score, error) {
	if err := m.wrapCheck(ref, "SCORE"); err != nil {
		return nil, err
	}
	return &Score{node{m, ref}}, nil
}

// MovementByRef wraps a MOVEMENT surrogate.
func (m *Music) MovementByRef(ref value.Ref) (*Movement, error) {
	if err := m.wrapCheck(ref, "MOVEMENT"); err != nil {
		return nil, err
	}
	return &Movement{node{m, ref}}, nil
}

// MeasureByRef wraps a MEASURE surrogate.
func (m *Music) MeasureByRef(ref value.Ref) (*Measure, error) {
	if err := m.wrapCheck(ref, "MEASURE"); err != nil {
		return nil, err
	}
	return &Measure{node{m, ref}}, nil
}

// VoiceByRef wraps a VOICE surrogate.
func (m *Music) VoiceByRef(ref value.Ref) (*Voice, error) {
	if err := m.wrapCheck(ref, "VOICE"); err != nil {
		return nil, err
	}
	return &Voice{node{m, ref}}, nil
}

// StaffByRef wraps a STAFF surrogate.
func (m *Music) StaffByRef(ref value.Ref) (*Staff, error) {
	if err := m.wrapCheck(ref, "STAFF"); err != nil {
		return nil, err
	}
	return &Staff{node{m, ref}}, nil
}

// ChordByRef wraps a CHORD surrogate.
func (m *Music) ChordByRef(ref value.Ref) (*Chord, error) {
	if err := m.wrapCheck(ref, "CHORD"); err != nil {
		return nil, err
	}
	return &Chord{node{m, ref}}, nil
}

// NoteByRef wraps a NOTE surrogate.
func (m *Music) NoteByRef(ref value.Ref) (*Note, error) {
	if err := m.wrapCheck(ref, "NOTE"); err != nil {
		return nil, err
	}
	return &Note{node{m, ref}}, nil
}

// GroupByRef wraps a GROUP surrogate.
func (m *Music) GroupByRef(ref value.Ref) (*Group, error) {
	if err := m.wrapCheck(ref, "GROUP"); err != nil {
		return nil, err
	}
	return &Group{node{m, ref}}, nil
}

// InstrumentByRef wraps an INSTRUMENT surrogate.
func (m *Music) InstrumentByRef(ref value.Ref) (*Instrument, error) {
	if err := m.wrapCheck(ref, "INSTRUMENT"); err != nil {
		return nil, err
	}
	return &Instrument{node{m, ref}}, nil
}

// Scores returns all scores in the database, in creation order.
func (m *Music) Scores() ([]*Score, error) {
	var out []*Score
	err := m.DB.Instances("SCORE", func(ref value.Ref, _ value.Tuple) bool {
		out = append(out, &Score{node{m, ref}})
		return true
	})
	return out, err
}
