// Package cmn implements the paper's database schema for common musical
// notation (§7): the entity types of figure 11, the aspect structure of
// figure 12 (temporal, timbral, graphical), the temporal HO graph of
// figure 13 (score → movement → measure → sync → chord → note, with
// groups, events, ties, and MIDI at the bottom), sync alignment
// (figure 14), and melodic groups (figure 15).
//
// The package provides both the schema definition (DefineSchema, which
// issues the define entity / define ordering statements against a model
// database) and a typed builder API over it, so client programs — the
// editors, typesetters, compositional tools and analysis systems of §2 —
// manipulate scores through Go types while all state lives in the
// database.
package cmn

import (
	"fmt"
)

// RTime is an exact rational score time or duration, measured in beats
// (quarter notes unless a meter says otherwise).  §7.2: "Score time ...
// is measured in rhythmic units"; exact rationals avoid the drift that
// floating-point beats would accumulate over long movements (a triplet
// eighth is exactly 1/3 beat).
type RTime struct {
	num, den int64 // den > 0, gcd(num, den) == 1
}

// Beats returns the rational n/d beats, normalized.
func Beats(n, d int64) RTime {
	if d == 0 {
		panic("cmn: zero-denominator RTime")
	}
	if d < 0 {
		n, d = -n, -d
	}
	g := gcd(abs64(n), d)
	if g > 1 {
		n, d = n/g, d/g
	}
	return RTime{num: n, den: d}
}

// Whole, half, quarter, eighth and sixteenth note durations, in beats.
var (
	Whole     = Beats(4, 1)
	Half      = Beats(2, 1)
	Quarter   = Beats(1, 1)
	Eighth    = Beats(1, 2)
	Sixteenth = Beats(1, 4)
	Zero      = Beats(0, 1)
)

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Num returns the normalized numerator.
func (t RTime) Num() int64 { return t.num }

// Den returns the normalized denominator.
func (t RTime) Den() int64 {
	if t.den == 0 {
		return 1 // zero value is 0/1
	}
	return t.den
}

// Add returns t + u.
func (t RTime) Add(u RTime) RTime {
	return Beats(t.num*u.Den()+u.num*t.Den(), t.Den()*u.Den())
}

// Sub returns t - u.
func (t RTime) Sub(u RTime) RTime {
	return Beats(t.num*u.Den()-u.num*t.Den(), t.Den()*u.Den())
}

// MulInt returns t * k.
func (t RTime) MulInt(k int64) RTime { return Beats(t.num*k, t.Den()) }

// Mul returns t * u (used for tuplet scaling, e.g. duration * 2/3).
func (t RTime) Mul(u RTime) RTime { return Beats(t.num*u.num, t.Den()*u.Den()) }

// Cmp returns -1, 0, or 1 comparing t with u.
func (t RTime) Cmp(u RTime) int {
	l := t.num * u.Den()
	r := u.num * t.Den()
	switch {
	case l < r:
		return -1
	case l > r:
		return 1
	}
	return 0
}

// Less reports t < u.
func (t RTime) Less(u RTime) bool { return t.Cmp(u) < 0 }

// IsZero reports whether t is zero.
func (t RTime) IsZero() bool { return t.num == 0 }

// Float returns the beat count as a float64.
func (t RTime) Float() float64 { return float64(t.num) / float64(t.Den()) }

// Dotted returns the dotted duration: t * 3/2 per dot.
func (t RTime) Dotted(dots int) RTime {
	out := t
	add := t
	for i := 0; i < dots; i++ {
		add = add.Mul(Beats(1, 2))
		out = out.Add(add)
	}
	return out
}

// String renders the time as "n/d" (or "n" when integral).
func (t RTime) String() string {
	if t.Den() == 1 {
		return fmt.Sprintf("%d", t.num)
	}
	return fmt.Sprintf("%d/%d", t.num, t.Den())
}

// Encode packs the rational into a single int64 (num in the high 32
// bits, den in the low 32) for storage as an integer attribute.  Score
// durations comfortably fit 32 bits per component.
func (t RTime) Encode() int64 {
	return int64(uint64(uint32(int32(t.num)))<<32 | uint64(uint32(int32(t.Den()))))
}

// DecodeRTime unpacks an Encode'd rational.
func DecodeRTime(v int64) RTime {
	num := int64(int32(uint32(uint64(v) >> 32)))
	den := int64(int32(uint32(uint64(v))))
	if den == 0 {
		den = 1
	}
	return Beats(num, den)
}
