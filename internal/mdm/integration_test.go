package mdm

import (
	"strings"
	"testing"

	"repro/internal/cmn"
	"repro/internal/darms"
	"repro/internal/demo"
	"repro/internal/midi"
	"repro/internal/pianoroll"
	"repro/internal/sound"
	"repro/internal/value"
)

// TestEndToEndGloria drives the whole stack on figure 4's fragment:
// DARMS → score → QUEL analysis → performance → piano roll → sound.
func TestEndToEndGloria(t *testing.T) {
	m, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	items, err := darms.Parse(darms.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	score, err := darms.ToScore(m.Music, items, "Gloria in excelsis")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Catalog.Refresh(); err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()

	// QUEL: the text underlay via the SYLLABLE_OF relationship.
	res, err := s.Query(`
range of sy is SYLLABLE
range of n is NOTE
retrieve (sy.text)
  where SYLLABLE_OF.syllable is sy and SYLLABLE_OF.note is n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("syllable rows: %d", len(res.Rows))
	}
	var text strings.Builder
	for _, r := range res.Rows {
		text.WriteString(r[0].AsString())
	}
	joined := strings.ReplaceAll(text.String(), "-", "")
	if !strings.Contains(strings.ToLower(joined), "gloria") {
		t.Fatalf("underlay: %q", text.String())
	}

	// QUEL over the meta-catalog: the temporal orderings exist as data.
	res, err = s.Query(`
range of o is ORDERING
retrieve (o.order_name) where o.order_name = "sync_in_measure"`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("catalogued ordering: %v %v", res, err)
	}

	// Perform and render.
	voice, _, err := demo.SoloHandles(m.Music, score)
	if err != nil {
		t.Fatal(err)
	}
	notes, err := voice.PerformedNotes()
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 24 {
		t.Fatalf("performed notes: %d", len(notes))
	}
	tm := cmn.NewTempoMap(120)
	seq := midi.FromPerformance(notes, tm, 0)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	smf, err := midi.WriteSMF(seq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := midi.ReadSMF(smf)
	if err != nil || len(back.Notes) != 24 {
		t.Fatalf("SMF round trip: %d notes, %v", len(back.Notes), err)
	}
	roll, err := pianoroll.FromSequence(seq, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if roll.Density() == 0 {
		t.Fatal("empty roll")
	}
	buf, err := sound.Synthesize(seq, sound.Organ, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if buf.RMS() < 0.005 {
		t.Fatalf("silent synthesis: %g", buf.RMS())
	}
	// Lossless codec round-trips the whole performance.
	dec, err := sound.DecodeDelta(sound.EncodeDelta(buf))
	if err != nil {
		t.Fatal(err)
	}
	if snr, _ := sound.SNR(buf, dec); snr != 200 {
		t.Fatal("delta codec not lossless")
	}
}

// TestOrderingsSurviveCrash checks that hierarchical orderings recover
// from the WAL: build a score, sync without checkpointing, "crash", and
// reopen.
func TestOrderingsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, SyncCommits: true})
	if err != nil {
		t.Fatal(err)
	}
	items, _ := darms.Parse(demo.FugueSubjectDARMS)
	if _, err := darms.ToScore(m.Music, items, "crash test"); err != nil {
		t.Fatal(err)
	}
	if err := m.Store.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no checkpoint.

	m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	scores, err := m2.Music.Scores()
	if err != nil || len(scores) != 1 {
		t.Fatalf("scores after crash: %v %v", scores, err)
	}
	voice, staff, err := demo.SoloHandles(m2.Music, scores[0])
	if err != nil {
		t.Fatal(err)
	}
	_ = staff
	content, err := voice.Content()
	if err != nil {
		t.Fatal(err)
	}
	if len(content) != 11 {
		t.Fatalf("voice content after crash: %d", len(content))
	}
	// Order is intact: durations follow the DARMS source.
	wantFirst := cmn.Quarter
	if content[0].Duration.Cmp(wantFirst) != 0 {
		t.Fatalf("first duration: %s", content[0].Duration)
	}
	// Pitches still resolved.
	notes, err := voice.PerformedNotes()
	if err != nil || len(notes) != 11 || notes[0].Pitch != 67 {
		t.Fatalf("notes after crash: %d %v", len(notes), err)
	}
	// The database remains writable and consistent.
	if _, err := m2.Music.NewScore("post-crash", ""); err != nil {
		t.Fatal(err)
	}
}

// TestMetaCatalogConsistency cross-checks the meta-catalog against the
// live schema after CMN + biblio bootstrap.
func TestMetaCatalogConsistency(t *testing.T) {
	m, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.NewSession()
	// Every model entity type appears exactly once in the ENTITY
	// relation.
	res, err := s.Query(`range of e is ENTITY retrieve (e.entity_name)`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range res.Rows {
		seen[r[0].AsString()]++
	}
	for _, name := range m.Model.EntityTypes() {
		if seen[name] != 1 {
			t.Errorf("entity %s catalogued %d times", name, seen[name])
		}
	}
	// Attribute counts agree for a sample of types.
	for _, name := range []string{"NOTE", "SCORE", "CATALOG_ENTRY", "ATTRIBUTE"} {
		et, _ := m.Model.EntityType(name)
		refs, err := m.Catalog.AttributeRefs(name)
		if err != nil || len(refs) != len(et.Attrs) {
			t.Errorf("%s: %d catalogued attrs, schema has %d (%v)",
				name, len(refs), len(et.Attrs), err)
		}
	}
}

// TestQUELOverScoreHierarchy runs ordering-operator queries across the
// CMN hierarchy built by the typed API.
func TestQUELOverScoreHierarchy(t *testing.T) {
	m, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	score, _ := m.Music.NewScore("hier", "")
	mv, _ := score.AddMovement("I")
	me1, _ := mv.AddMeasure(4, 4)
	me2, _ := mv.AddMeasure(4, 4)
	_ = me1
	_ = me2
	s := m.NewSession()
	// Measures are ordered under the movement; "measure m1 before m2".
	res, err := s.Query(`
range of m1, m2 is MEASURE
retrieve (m1.number) where m1 before m2 in measure_in_movement and m2.number = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("measure ordering via QUEL: %v", res.Rows)
	}
	// Movement is the parent through under.
	res, err = s.Query(`
range of mv is MOVEMENT
range of me is MEASURE
retrieve (mv.name) where me under mv in measure_in_movement and me.number = 1`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "I" {
		t.Fatalf("under via QUEL: %v %v", res, err)
	}
}

// TestDeleteCascadeThroughQUEL deletes a measure via the model API after
// QUEL located it, verifying referential cleanup.
func TestDeleteCascadeThroughQUEL(t *testing.T) {
	m, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	items, _ := darms.Parse(demo.FugueSubjectDARMS)
	score, err := darms.ToScore(m.Music, items, "cascade")
	if err != nil {
		t.Fatal(err)
	}
	before := m.Model.Count("NOTE")
	if before != 11 {
		t.Fatalf("notes: %d", before)
	}
	// Delete the whole score subtree: movements, measures, syncs...
	// Chords/notes hang under voices (timbral), so delete those too.
	if err := m.Model.DeleteSubtree(score.Ref); err != nil {
		t.Fatal(err)
	}
	var orchs []value.Ref
	m.Model.Instances("ORCHESTRA", func(ref value.Ref, _ value.Tuple) bool {
		orchs = append(orchs, ref)
		return true
	})
	for _, o := range orchs {
		if err := m.Model.DeleteSubtree(o); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Model.Count("MEASURE"); n != 0 {
		t.Fatalf("measures after cascade: %d", n)
	}
	if n := m.Model.Count("SYNC"); n != 0 {
		t.Fatalf("syncs after cascade: %d", n)
	}
}
