package mdm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// TestSessionRetryAbsorbsDeadlocks runs QUEL replace statements against
// rogue clients that use the typed storage API directly (as figure 1's
// analysis tools may), each doing a shared read followed by an exclusive
// upgrade on the same entity relation.  Session replace transactions do
// the same scan-then-mutate dance, so the two kinds of client constantly
// form upgrade deadlock cycles; the victims on the session side must be
// absorbed by retry, so no session ever sees txn.ErrDeadlock or
// txn.ErrTimeout.  The rogue side counts its own victims to prove the
// workload really was deadlock-heavy.
func TestSessionRetryAbsorbsDeadlocks(t *testing.T) {
	m, err := Open(Options{SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	setup := m.NewSession()
	for _, stmt := range []string{
		`define entity VOICE (label = string, gain = integer)`,
		`append to VOICE (label = "v", gain = 0)`,
	} {
		if _, err := setup.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	rel := m.Model.InstanceRelation("VOICE")

	const sessWorkers, rogueWorkers, iters = 4, 4, 40
	var (
		wg           sync.WaitGroup
		rogueVictims uint64
		errs         = make(chan error, sessWorkers+rogueWorkers)
		sessions     = make([]*Session, sessWorkers)
		stop         = make(chan struct{})
	)

	// Rogue clients: S lock (Get via Scan) then X lock (no-op Update)
	// in one transaction, no retry — their deadlock victims are counted.
	for w := 0; w < rogueWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := m.Store.Begin()
				var id storage.RowID
				var tuple value.Tuple
				err := func() error {
					if err := tx.Scan(rel, func(i storage.RowID, tu value.Tuple) bool {
						id, tuple = i, tu.Clone()
						return false
					}); err != nil {
						return err
					}
					time.Sleep(100 * time.Microsecond) // hold S; widen the race window
					return tx.Update(rel, id, tuple)   // upgrade to X
				}()
				if err != nil {
					tx.Abort()
					if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrTimeout) {
						atomic.AddUint64(&rogueVictims, 1)
						continue
					}
					errs <- fmt.Errorf("rogue: %w", err)
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("rogue commit: %w", err)
					return
				}
			}
		}()
	}

	for w := 0; w < sessWorkers; w++ {
		sessions[w] = m.NewSession()
		wg.Add(1)
		go func(w int, s *Session) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				stmt := fmt.Sprintf(
					`range of x is VOICE replace x (gain = %d) where x.label != ""`,
					w*1000+i)
				if _, err := s.Exec(stmt); err != nil {
					errs <- fmt.Errorf("session %d: %w", w, err)
					return
				}
			}
		}(w, sessions[w])
	}

	// Stop the rogues once every session has finished its statements.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		for {
			total := uint64(0)
			for _, s := range sessions {
				total += s.Stats().Statements
			}
			if total >= sessWorkers*iters {
				close(stop)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	<-done
	close(errs)
	for err := range errs {
		if errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrTimeout) {
			t.Fatalf("transient error leaked to client: %v", err)
		}
		t.Fatal(err)
	}

	var total SessionStats
	for _, s := range sessions {
		st := s.Stats()
		total.Statements += st.Statements
		total.Retries += st.Retries
		total.Exhausted += st.Exhausted
	}
	t.Logf("retry stats: %d statements, %d session retries, %d exhausted; %d rogue deadlock victims",
		total.Statements, total.Retries, total.Exhausted, atomic.LoadUint64(&rogueVictims))
	if total.Exhausted != 0 {
		t.Fatalf("%d statements exhausted their retries", total.Exhausted)
	}
	if atomic.LoadUint64(&rogueVictims) == 0 {
		t.Fatal("workload produced no deadlocks; the test exercised nothing")
	}
	if h := m.Health(); h.ReadOnly {
		t.Fatalf("store degraded during contention: %v", h.Cause)
	}

	// The row survived the storm intact.
	res, err := setup.Query(`range of v is VOICE retrieve (total = count(v.all))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("VOICE rows = %v", res.Rows)
	}
}

// TestRetryBackoffShape pins the policy arithmetic: exponential growth,
// cap, jitter within ±50%.
func TestRetryBackoffShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}
	for attempt := 1; attempt <= 7; attempt++ {
		want := time.Millisecond << (attempt - 1)
		if want > p.MaxDelay {
			want = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt)
			if d < want/2 || d > want*3/2 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want*3/2)
			}
		}
	}
	// Zero-value policy still yields a sane delay.
	if d := (RetryPolicy{}).backoff(1); d <= 0 {
		t.Fatalf("zero policy backoff = %v", d)
	}
}

// TestExhaustedRetriesSurfaceError verifies the session eventually gives
// up: with a 1-attempt policy a deadlock victim's error reaches the
// client, and the Exhausted counter records it.
func TestExhaustedRetriesSurfaceError(t *testing.T) {
	m, err := Open(Options{SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.NewSession()
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	if _, err := s.Exec(`define entity SOLO (label = string)`); err != nil {
		t.Fatal(err)
	}
	// Not a transient error: surfaced immediately, never retried.
	if _, err := s.Exec(`append to NOSUCH (label = "x")`); err == nil {
		t.Fatal("expected error for unknown entity type")
	}
	st := s.Stats()
	if st.Retries != 0 {
		t.Fatalf("non-transient error was retried %d times", st.Retries)
	}
	if st.Exhausted != 0 {
		t.Fatalf("non-transient error counted as exhausted")
	}
}
