package mdm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/value"
)

const (
	snapDiffWriters   = 4
	snapDiffSingles   = 120 // per-writer single-entity appends (monotone seq)
	snapDiffBatches   = 15  // per-writer batch appends
	snapDiffBatchSize = 8
)

// TestConcurrentSnapshotDifferential races snapshot readers against
// randomized writers on a durable group-commit store and asserts every
// read observes a prefix-consistent committed state:
//
//   - each writer appends entities with a monotone per-writer sequence,
//     committing seq i only after i-1; any snapshot must therefore see
//     a gap-free prefix {0..k-1} of each writer's relation;
//   - each writer also bulk-appends tagged batches in single
//     transactions; any snapshot must see a batch completely or not at
//     all — and both invariants must hold across relations within ONE
//     snapshot, which a pair of unsynchronized locking reads cannot
//     guarantee;
//   - QUEL retrieve statements (which auto-pin a snapshot per
//     statement) must satisfy the same per-relation invariants;
//   - once the writers finish, snapshot reads, locking reads
//     (SetSnapshotReads(false)), and the typed API must all agree
//     exactly.
func TestConcurrentSnapshotDifferential(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, SyncCommits: true, GroupCommit: true, SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	setup := m.NewSession()
	ctx := context.Background()
	for w := 0; w < snapDiffWriters; w++ {
		if _, err := setup.ExecContext(ctx, fmt.Sprintf("define entity W%d (seq = integer)", w)); err != nil {
			t.Fatal(err)
		}
		if _, err := setup.ExecContext(ctx, fmt.Sprintf("define entity B%d (tag = integer, k = integer)", w)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg, writersWG sync.WaitGroup
		stop          atomic.Bool
		failMu        sync.Mutex
		failure       error
	)
	fail := func(err error) {
		failMu.Lock()
		if failure == nil {
			failure = err
			stop.Store(true)
		}
		failMu.Unlock()
	}

	for w := 0; w < snapDiffWriters; w++ {
		wg.Add(1)
		writersWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersWG.Done()
			singles, batches := 0, 0
			for (singles < snapDiffSingles || batches < snapDiffBatches) && !stop.Load() {
				if singles < snapDiffSingles {
					if _, err := m.Model.NewEntityCtx(ctx, fmt.Sprintf("W%d", w),
						model.Attrs{"seq": value.Int(int64(singles))}); err != nil {
						fail(fmt.Errorf("writer %d single %d: %w", w, singles, err))
						return
					}
					singles++
				}
				if batches < snapDiffBatches && singles%8 == 0 {
					tag := batches
					if _, err := m.Model.NewEntities(fmt.Sprintf("B%d", w), snapDiffBatchSize,
						func(k int) model.Attrs {
							return model.Attrs{"tag": value.Int(int64(tag)), "k": value.Int(int64(k))}
						}); err != nil {
						fail(fmt.Errorf("writer %d batch %d: %w", w, batches, err))
						return
					}
					batches++
				}
			}
		}(w)
	}

	// Model-level snapshot readers: all relations under one pin.
	writersDone := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				select {
				case <-writersDone:
					return
				default:
				}
				s, err := m.Model.BeginSnapshot(ctx)
				if err != nil {
					fail(err)
					return
				}
				for w := 0; w < snapDiffWriters; w++ {
					if err := checkPrefix(s, w); err != nil {
						fail(err)
						break
					}
					if err := checkBatches(s, w); err != nil {
						fail(err)
						break
					}
				}
				s.Close()
			}
		}(r)
	}

	// QUEL readers: per-statement auto-snapshots.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := m.NewSession()
			for i := 0; !stop.Load(); i++ {
				select {
				case <-writersDone:
					return
				default:
				}
				w := i % snapDiffWriters
				res, err := sess.QueryContext(ctx, fmt.Sprintf("range of x is W%d retrieve (x.seq)", w))
				if err != nil {
					fail(fmt.Errorf("quel reader: %w", err))
					return
				}
				seqs := make([]int64, 0, len(res.Rows))
				for _, row := range res.Rows {
					seqs = append(seqs, row[0].AsInt())
				}
				if err := prefixGapFree(seqs); err != nil {
					fail(fmt.Errorf("quel reader W%d: %w", w, err))
					return
				}
			}
		}(r)
	}

	go func() {
		writersWG.Wait()
		close(writersDone)
	}()

	wg.Wait()
	failMu.Lock()
	err = failure
	failMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	// Quiesced: snapshot reads, locking reads, and the typed API agree.
	snapSess, lockSess := m.NewSession(), m.NewSession()
	lockSess.SetSnapshotReads(false)
	for w := 0; w < snapDiffWriters; w++ {
		q := fmt.Sprintf("range of x is W%d retrieve (x.seq) sort by seq", w)
		a, err := snapSess.QueryContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lockSess.QueryContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("W%d: snapshot and locking reads disagree:\n%s\nvs\n%s", w, a, b)
		}
		if len(a.Rows) != snapDiffSingles {
			t.Fatalf("W%d: %d rows, want %d", w, len(a.Rows), snapDiffSingles)
		}
	}

	// No snapshot remains pinned, so a vacuum pass must reclaim every
	// retired version and index-history entry the run produced.
	m.Store.Vacuum()
	for w := 0; w < snapDiffWriters; w++ {
		for _, typ := range []string{"W", "B"} {
			rel := m.Store.Relation(fmt.Sprintf("E$%s%d", typ, w))
			if rel == nil {
				t.Fatalf("relation E$%s%d missing", typ, w)
			}
			if _, old, hist := rel.VersionStats(); old != 0 || hist != 0 {
				t.Fatalf("E$%s%d: vacuum left old=%d hist=%d with no live snapshot", typ, w, old, hist)
			}
		}
	}
}

// checkPrefix asserts snapshot s sees a gap-free prefix of writer w's
// sequence relation.
func checkPrefix(s *model.Snap, w int) error {
	var seqs []int64
	if err := s.Instances(fmt.Sprintf("W%d", w), func(_ value.Ref, attrs value.Tuple) bool {
		seqs = append(seqs, attrs[0].AsInt())
		return true
	}); err != nil {
		return err
	}
	if err := prefixGapFree(seqs); err != nil {
		return fmt.Errorf("snapshot CSN %d, writer %d: %w", s.CSN(), w, err)
	}
	return nil
}

// checkBatches asserts snapshot s sees each of writer w's batches
// entirely or not at all.
func checkBatches(s *model.Snap, w int) error {
	counts := map[int64]int{}
	if err := s.Instances(fmt.Sprintf("B%d", w), func(_ value.Ref, attrs value.Tuple) bool {
		counts[attrs[0].AsInt()]++
		return true
	}); err != nil {
		return err
	}
	for tag, n := range counts {
		if n != snapDiffBatchSize {
			return fmt.Errorf("snapshot CSN %d, writer %d: batch %d torn (%d of %d rows)",
				s.CSN(), w, tag, n, snapDiffBatchSize)
		}
	}
	return nil
}

// prefixGapFree asserts seqs is exactly {0..len-1}.
func prefixGapFree(seqs []int64) error {
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, s := range seqs {
		if s != int64(i) {
			return fmt.Errorf("sequence not a gap-free prefix at %d: %v", i, seqs)
		}
	}
	return nil
}
