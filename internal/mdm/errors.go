// Typed error classification for the session API.  Every error a
// Session returns is wrapped (via %w) with one of the sentinels below
// when it falls into a recognizable class, so clients dispatch with
// errors.Is/errors.As instead of matching message text:
//
//	res, err := sess.ExecContext(ctx, src)
//	switch {
//	case errors.Is(err, mdm.ErrParse):          // bad syntax, fix the statement
//	case errors.Is(err, mdm.ErrUnknownEntity):  // schema mismatch
//	case errors.Is(err, mdm.ErrCanceled):       // ctx canceled or deadline hit
//	case errors.Is(err, mdm.ErrReadOnly):       // store degraded, retry later
//	}
//
// The underlying layer errors (quel.ErrParse, model.ErrNoEntityType,
// txn.ErrCanceled, ...) remain in the chain for callers that want them.
package mdm

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/quel"
	"repro/internal/storage"
	"repro/internal/txn"
)

var (
	// ErrParse classifies DDL and QUEL syntax errors.
	ErrParse = errors.New("mdm: parse error")
	// ErrUnknownEntity classifies references to undefined entity,
	// relationship, or ordering types and missing instances.
	ErrUnknownEntity = errors.New("mdm: unknown entity")
	// ErrCanceled classifies statements aborted by context
	// cancellation or deadline expiry, including lock waits cut short.
	ErrCanceled = errors.New("mdm: statement canceled")
	// ErrReadOnly re-exports the store's degraded-mode sentinel so
	// clients can match it without importing the storage layer.
	ErrReadOnly = storage.ErrReadOnly
	// ErrBadParam classifies parameter-binding failures on prepared
	// statements: wrong argument count, an out-of-range placeholder, or
	// an argument of an unbindable Go type.
	ErrBadParam = errors.New("mdm: parameter binding error")
	// ErrBadStmt classifies references to prepared statements that do
	// not exist (a closed or never-prepared statement id on the wire).
	ErrBadStmt = errors.New("mdm: unknown prepared statement")
	// ErrOverloaded is returned by the network server's admission
	// control when every execution slot is busy and the wait queue is
	// full or the queue deadline expired: the request was shed, not
	// executed, and the client should back off and retry.
	ErrOverloaded = errors.New("mdm: server overloaded")
	// ErrShutdown is returned for requests that arrive while the server
	// is draining: no new statements are admitted, in-flight ones run to
	// completion.
	ErrShutdown = errors.New("mdm: server shutting down")
	// ErrAuth is returned when a connection's credentials are rejected.
	ErrAuth = errors.New("mdm: authentication failed")
)

// classify wraps err with the matching session-level sentinel.  Already
// classified errors pass through unchanged.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrParse), errors.Is(err, ErrUnknownEntity), errors.Is(err, ErrCanceled),
		errors.Is(err, ErrBadParam), errors.Is(err, ErrBadStmt),
		errors.Is(err, ErrOverloaded), errors.Is(err, ErrShutdown), errors.Is(err, ErrAuth):
		return err
	case errors.Is(err, quel.ErrParam):
		return fmt.Errorf("%w: %w", ErrBadParam, err)
	case errors.Is(err, txn.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	case errors.Is(err, quel.ErrParse), errors.Is(err, ddl.ErrParse):
		return fmt.Errorf("%w: %w", ErrParse, err)
	case errors.Is(err, model.ErrNoEntityType),
		errors.Is(err, model.ErrNoRelationship),
		errors.Is(err, model.ErrNoOrdering),
		errors.Is(err, model.ErrNoEntity):
		return fmt.Errorf("%w: %w", ErrUnknownEntity, err)
	}
	return err
}
