package mdm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/value"
)

// TestStmtCacheInvalidatedByDDL is the manager-level regression test for
// the dropped-index hazard: a statement prepared (and plan-cached) while
// an index existed must re-plan — not replay a stale strategy — after
// `drop index` DDL runs through a session.
func TestStmtCacheInvalidatedByDDL(t *testing.T) {
	m, s := stmtTestMDM(t)
	ctx := context.Background()
	if _, err := s.ExecContext(ctx, `define index on WORK (opus)`); err != nil {
		t.Fatal(err)
	}
	src := `retrieve (w.title) where w.opus >= $1 and w.opus <= $2`
	st, err := s.PrepareContext(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	want, err := st.QueryContext(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("rows before drop: %v", want.Rows)
	}
	// The cached plan range-scans the index.
	er, err := s.ExecContext(ctx, `explain retrieve (w.title) where w.opus >= 1 and w.opus <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Output, "ix_work_opus") {
		t.Fatalf("plan before drop does not use the index:\n%s", er.Output)
	}

	// Re-preparing the same source is a cache hit while the schema holds.
	hits := m.Obs().Counter("mdm.stmt.cache.hits")
	h0 := hits.Value()
	st2, err := s.PrepareContext(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if hits.Value() != h0+1 {
		t.Fatal("re-prepare missed the statement cache")
	}

	// Drop the index through the session's DDL dispatch.
	out, err := s.ExecContext(ctx, `drop index on WORK (opus)`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.DDL || !strings.Contains(out.Output, "dropped index ix_work_opus") {
		t.Fatalf("drop output: %+v", out)
	}

	// The statement cache flushed: the same source is a miss now.
	misses := m.Obs().Counter("mdm.stmt.cache.misses")
	m0 := misses.Value()
	st3, err := s.PrepareContext(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	st3.Close()
	if misses.Value() != m0+1 {
		t.Fatal("statement cache survived the schema change")
	}

	// The old handle still answers, re-planned without the index, and
	// the plan never names the dropped index again.
	got, err := st.QueryContext(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows after drop: %v, want %v", got.Rows, want.Rows)
	}
	er, err = s.ExecContext(ctx, `explain retrieve (w.title) where w.opus >= 1 and w.opus <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(er.Output, "ix_work_opus") {
		t.Fatalf("plan still names the dropped index:\n%s", er.Output)
	}
}

// TestPlanCacheSharedAcrossSessions asserts the manager wires one plan
// cache into every session: a shape planned by one session replays as a
// cache hit in another.
func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	m, s1 := stmtTestMDM(t)
	ctx := context.Background()
	if _, err := s1.QueryContext(ctx, `retrieve (w.title) where w.opus = 1`); err != nil {
		t.Fatal(err)
	}
	s2 := m.NewSession()
	if _, err := s2.ExecContext(ctx, `range of w is WORK`); err != nil {
		t.Fatal(err)
	}
	er, err := s2.ExecContext(ctx, `explain retrieve (w.title) where w.opus = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Output, "PlanCache: hit") {
		t.Fatalf("second session missed the shared plan cache:\n%s", er.Output)
	}
}

// TestParallelWorkersOption asserts Options.ParallelWorkers reaches the
// QUEL executor: a snapshot retrieve over a corpus past the morsel
// threshold takes the parallel path and agrees with the serial baseline.
func TestParallelWorkersOption(t *testing.T) {
	m, err := Open(Options{SkipCMN: true, ParallelWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const rows = 2200 // past the executor's default morsel threshold
	if _, err := m.Model.DefineEntity("NOTE", value.Field{Name: "pitch", Kind: value.KindInt}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := m.Model.NewEntity("NOTE", model.Attrs{"pitch": value.Int(int64(36 + i%48))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	par := m.NewSession()
	serial := m.NewSession()
	serial.SetParallelWorkers(1)
	for _, s := range []*Session{par, serial} {
		if _, err := s.ExecContext(ctx, `range of n is NOTE`); err != nil {
			t.Fatal(err)
		}
	}
	pres, err := par.QueryContext(ctx, `retrieve (n.pitch)`)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := serial.QueryContext(ctx, `retrieve (n.pitch)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Rows) == 0 || len(pres.Rows) != len(sres.Rows) {
		t.Fatalf("parallel %d rows, serial %d rows", len(pres.Rows), len(sres.Rows))
	}
	if got := m.Obs().Counter("quel.par.queries").Value(); got == 0 {
		t.Fatal("quel.par.queries never incremented: ParallelWorkers not wired")
	}
}
