// Package mdm assembles the music data manager of §2 (figure 1): one
// database back end serving many music clients — editors, typesetters,
// compositional tools, score libraries, and analysis systems.
//
// An MDM owns the storage engine (transactions, locking, write-ahead
// logging), the entity-relationship model with hierarchical ordering,
// the self-describing catalog (§6), the CMN schema (§7), and the
// bibliographic layer (§4.2).  Clients connect through sessions and
// speak the DDL of §5.4 and the extended QUEL of §5.6, or use the typed
// Go APIs of the underlying layers directly.
package mdm

import (
	"fmt"
	"strings"

	"repro/internal/biblio"
	"repro/internal/cmn"
	"repro/internal/ddl"
	"repro/internal/meta"
	"repro/internal/model"
	"repro/internal/quel"
	"repro/internal/storage"
)

// Options configure an MDM.
type Options struct {
	// Dir is the database directory; empty runs fully in memory.
	Dir string
	// SyncCommits makes every commit durable before returning.
	SyncCommits bool
	// SkipCMN leaves the CMN and bibliographic schemas undefined (for
	// clients that define their own domain from scratch).
	SkipCMN bool
}

// MDM is the music data manager.
type MDM struct {
	Store   *storage.DB
	Model   *model.Database
	Catalog *meta.Catalog
	Music   *cmn.Music
	Biblio  *biblio.Index
}

// Open builds (or reopens) a music data manager.
func Open(opts Options) (*MDM, error) {
	store, err := storage.Open(storage.Options{
		Dir:             opts.Dir,
		SyncCommits:     opts.SyncCommits,
		CheckpointBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	m, err := model.Open(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	mgr := &MDM{Store: store, Model: m}
	if !opts.SkipCMN {
		if mgr.Music, err = cmn.Open(m); err != nil {
			store.Close()
			return nil, err
		}
		if mgr.Biblio, err = biblio.Open(m); err != nil {
			store.Close()
			return nil, err
		}
	}
	if mgr.Catalog, err = meta.Bootstrap(m); err != nil {
		store.Close()
		return nil, err
	}
	return mgr, nil
}

// Close checkpoints and closes the manager.
func (m *MDM) Close() error { return m.Store.Close() }

// Checkpoint forces a snapshot.
func (m *MDM) Checkpoint() error { return m.Store.Checkpoint() }

// Session is one client connection: a QUEL workspace plus DDL access.
// Sessions self-heal: statements that lose a deadlock or time out on a
// lock wait are retried transparently with backoff (see retry.go), so
// clients see serializable results instead of raw txn errors.
type Session struct {
	mdm    *MDM
	quel   *quel.Session
	policy RetryPolicy

	statements uint64
	retries    uint64
	exhausted  uint64
}

// NewSession opens a client session with the default retry policy.
func (m *MDM) NewSession() *Session {
	return &Session{mdm: m, quel: quel.NewSession(m.Model), policy: DefaultRetryPolicy}
}

// ddlKeywords begin DDL statements.
var ddlKeywords = []string{"define"}

// Exec executes DDL or QUEL source, dispatching on the first keyword,
// and returns a printable result.  After DDL, the meta-catalog is
// refreshed so the new schema is immediately queryable (§6).
func (s *Session) Exec(src string) (string, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return "", nil
	}
	var out string
	err := s.withRetry(func() error {
		var err error
		out, err = s.execOnce(trimmed)
		return err
	})
	return out, err
}

func (s *Session) execOnce(trimmed string) (string, error) {
	first := strings.ToLower(firstWord(trimmed))
	for _, kw := range ddlKeywords {
		if first == kw {
			msgs, err := ddl.Exec(s.mdm.Model, trimmed)
			if err != nil {
				return strings.Join(msgs, "\n"), err
			}
			if err := s.mdm.Catalog.Refresh(); err != nil {
				return "", fmt.Errorf("mdm: refreshing catalog: %w", err)
			}
			return strings.Join(msgs, "\n"), nil
		}
	}
	res, err := s.quel.Exec(trimmed)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// Query executes QUEL and returns the structured result (for clients
// that process rows programmatically rather than as text).  Like Exec,
// transient transaction failures are retried per the session policy.
func (s *Session) Query(src string) (*quel.Result, error) {
	var res *quel.Result
	err := s.withRetry(func() error {
		var err error
		res, err = s.quel.Exec(src)
		return err
	})
	return res, err
}

func firstWord(s string) string {
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return s[:i]
		}
	}
	return s
}
