// Package mdm assembles the music data manager of §2 (figure 1): one
// database back end serving many music clients — editors, typesetters,
// compositional tools, score libraries, and analysis systems.
//
// An MDM owns the storage engine (transactions, locking, write-ahead
// logging), the entity-relationship model with hierarchical ordering,
// the self-describing catalog (§6), the CMN schema (§7), and the
// bibliographic layer (§4.2).  Clients connect through sessions and
// speak the DDL of §5.4 and the extended QUEL of §5.6, or use the typed
// Go APIs of the underlying layers directly.
package mdm

import (
	"fmt"
	"strings"

	"repro/internal/biblio"
	"repro/internal/cmn"
	"repro/internal/ddl"
	"repro/internal/meta"
	"repro/internal/model"
	"repro/internal/quel"
	"repro/internal/storage"
)

// Options configure an MDM.
type Options struct {
	// Dir is the database directory; empty runs fully in memory.
	Dir string
	// SyncCommits makes every commit durable before returning.
	SyncCommits bool
	// SkipCMN leaves the CMN and bibliographic schemas undefined (for
	// clients that define their own domain from scratch).
	SkipCMN bool
}

// MDM is the music data manager.
type MDM struct {
	Store   *storage.DB
	Model   *model.Database
	Catalog *meta.Catalog
	Music   *cmn.Music
	Biblio  *biblio.Index
}

// Open builds (or reopens) a music data manager.
func Open(opts Options) (*MDM, error) {
	store, err := storage.Open(storage.Options{
		Dir:             opts.Dir,
		SyncCommits:     opts.SyncCommits,
		CheckpointBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	m, err := model.Open(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	mgr := &MDM{Store: store, Model: m}
	if !opts.SkipCMN {
		if mgr.Music, err = cmn.Open(m); err != nil {
			store.Close()
			return nil, err
		}
		if mgr.Biblio, err = biblio.Open(m); err != nil {
			store.Close()
			return nil, err
		}
	}
	if mgr.Catalog, err = meta.Bootstrap(m); err != nil {
		store.Close()
		return nil, err
	}
	return mgr, nil
}

// Close checkpoints and closes the manager.
func (m *MDM) Close() error { return m.Store.Close() }

// Checkpoint forces a snapshot.
func (m *MDM) Checkpoint() error { return m.Store.Checkpoint() }

// Session is one client connection: a QUEL workspace plus DDL access.
type Session struct {
	mdm  *MDM
	quel *quel.Session
}

// NewSession opens a client session.
func (m *MDM) NewSession() *Session {
	return &Session{mdm: m, quel: quel.NewSession(m.Model)}
}

// ddlKeywords begin DDL statements.
var ddlKeywords = []string{"define"}

// Exec executes DDL or QUEL source, dispatching on the first keyword,
// and returns a printable result.  After DDL, the meta-catalog is
// refreshed so the new schema is immediately queryable (§6).
func (s *Session) Exec(src string) (string, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return "", nil
	}
	first := strings.ToLower(firstWord(trimmed))
	for _, kw := range ddlKeywords {
		if first == kw {
			msgs, err := ddl.Exec(s.mdm.Model, trimmed)
			if err != nil {
				return strings.Join(msgs, "\n"), err
			}
			if err := s.mdm.Catalog.Refresh(); err != nil {
				return "", fmt.Errorf("mdm: refreshing catalog: %w", err)
			}
			return strings.Join(msgs, "\n"), nil
		}
	}
	res, err := s.quel.Exec(trimmed)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// Query executes QUEL and returns the structured result (for clients
// that process rows programmatically rather than as text).
func (s *Session) Query(src string) (*quel.Result, error) {
	return s.quel.Exec(src)
}

func firstWord(s string) string {
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return s[:i]
		}
	}
	return s
}
