// Package mdm assembles the music data manager of §2 (figure 1): one
// database back end serving many music clients — editors, typesetters,
// compositional tools, score libraries, and analysis systems.
//
// An MDM owns the storage engine (transactions, locking, write-ahead
// logging), the entity-relationship model with hierarchical ordering,
// the self-describing catalog (§6), the CMN schema (§7), and the
// bibliographic layer (§4.2).  Clients connect through sessions and
// speak the DDL of §5.4 and the extended QUEL of §5.6, or use the typed
// Go APIs of the underlying layers directly.
package mdm

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/biblio"
	"repro/internal/cmn"
	"repro/internal/ddl"
	"repro/internal/meta"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/quel"
	"repro/internal/storage"
)

// Options configure an MDM.
type Options struct {
	// Dir is the database directory; empty runs fully in memory.
	Dir string
	// SyncCommits makes every commit durable before returning.
	SyncCommits bool
	// GroupCommit batches concurrent commits through a shared flush
	// leader: one buffered write and one fsync per batch instead of per
	// transaction (see storage.Options.GroupCommit).  Sessions that
	// commit concurrently then amortize the fsync across the batch.
	GroupCommit bool
	// GroupCommitWindow optionally makes the flush leader wait for more
	// committers before draining the queue; zero flushes immediately.
	GroupCommitWindow time.Duration
	// SkipCMN leaves the CMN and bibliographic schemas undefined (for
	// clients that define their own domain from scratch).
	SkipCMN bool
	// SnapshotReads controls whether read-only statements (retrieve,
	// explain) run against a pinned MVCC snapshot with zero lock
	// acquisition.  The zero value (SnapshotAuto) enables them.
	SnapshotReads SnapshotMode
	// ParallelWorkers sets the worker fan-out for snapshot retrieves:
	// full scans, index range scans, hash-join builds, and ordering
	// probes partition across this many workers on a shared morsel
	// pool.  Zero or one keeps every statement on the serial executor.
	ParallelWorkers int
	// CheckpointBytes triggers a background checkpoint when the log
	// outgrows this size.  Zero means 64 MiB; negative disables
	// automatic checkpoints.
	CheckpointBytes int64
	// FullSnapshots restores the legacy quiesce-the-world monolithic
	// snapshot checkpoint instead of segmented fuzzy checkpoints (see
	// storage.Options.FullSnapshots).  Benchmarks use it as the
	// comparison baseline.
	FullSnapshots bool
}

// SnapshotMode selects how sessions execute read-only statements.
type SnapshotMode int

const (
	// SnapshotAuto (the default) runs every read-only statement against
	// a pinned commit-sequence snapshot: readers never block on — or
	// block — writers.
	SnapshotAuto SnapshotMode = iota
	// SnapshotOff routes reads through shared relation locks, the
	// pre-MVCC behavior.  Benchmarks and differential tests use it as
	// the comparison baseline.
	SnapshotOff
)

// MDM is the music data manager.
type MDM struct {
	Store   *storage.DB
	Model   *model.Database
	Catalog *meta.Catalog
	Music   *cmn.Music
	Biblio  *biblio.Index

	snapshotReads SnapshotMode
	parWorkers    int
	stmts         *stmtCache
	plans         *quel.PlanCache
}

// Open builds (or reopens) a music data manager.
func Open(opts Options) (*MDM, error) {
	ckptBytes := opts.CheckpointBytes
	switch {
	case ckptBytes == 0:
		ckptBytes = 64 << 20
	case ckptBytes < 0:
		ckptBytes = 0
	}
	store, err := storage.Open(storage.Options{
		Dir:               opts.Dir,
		SyncCommits:       opts.SyncCommits,
		GroupCommit:       opts.GroupCommit,
		GroupCommitWindow: opts.GroupCommitWindow,
		CheckpointBytes:   ckptBytes,
		FullSnapshots:     opts.FullSnapshots,
	})
	if err != nil {
		return nil, err
	}
	m, err := model.Open(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	mgr := &MDM{
		Store:         store,
		Model:         m,
		snapshotReads: opts.SnapshotReads,
		parWorkers:    opts.ParallelWorkers,
		stmts:         newStmtCache(stmtCacheMax),
		plans:         quel.NewPlanCache(store.Obs()),
	}
	if !opts.SkipCMN {
		if mgr.Music, err = cmn.Open(m); err != nil {
			store.Close()
			return nil, err
		}
		if mgr.Biblio, err = biblio.Open(m); err != nil {
			store.Close()
			return nil, err
		}
	}
	if mgr.Catalog, err = meta.Bootstrap(m); err != nil {
		store.Close()
		return nil, err
	}
	return mgr, nil
}

// Close checkpoints and closes the manager.
func (m *MDM) Close() error { return m.Store.Close() }

// Checkpoint forces a snapshot.
func (m *MDM) Checkpoint() error { return m.Store.Checkpoint() }

// Obs returns the manager's metrics registry (see internal/obs): every
// layer — storage, WAL, locking, query execution, sessions — publishes
// counters, latency histograms, and trace events there.
func (m *MDM) Obs() *obs.Registry { return m.Store.Obs() }

// Session is one client connection: a QUEL workspace plus DDL access.
// Sessions self-heal: statements that lose a deadlock or time out on a
// lock wait are retried transparently with backoff (see retry.go), so
// clients see serializable results instead of raw txn errors.
type Session struct {
	mdm    *MDM
	quel   *quel.Session
	policy RetryPolicy
	obs    sessionObs

	statements uint64
	retries    uint64
	exhausted  uint64
	canceled   uint64
}

// stmtCacheMax bounds the manager-wide statement cache (FIFO eviction;
// a served workload's hot statement set is far smaller than this).
const stmtCacheMax = 256

// sessionObs mirrors the per-session counters into the manager-wide
// registry (all handles nil-safe).
type sessionObs struct {
	statements      *obs.Counter // mdm.statements
	retries         *obs.Counter // mdm.retries
	exhausted       *obs.Counter // mdm.exhausted
	canceled        *obs.Counter // mdm.canceled
	stmtCacheHits   *obs.Counter // mdm.stmt.cache.hits
	stmtCacheMisses *obs.Counter // mdm.stmt.cache.misses
}

// NewSession opens a client session with the default retry policy.
func (m *MDM) NewSession() *Session {
	s := &Session{mdm: m, quel: quel.NewSession(m.Model), policy: DefaultRetryPolicy}
	s.quel.SetSnapshotReads(m.snapshotReads == SnapshotAuto)
	s.quel.SetPlanCache(m.plans)
	if m.parWorkers > 1 {
		s.quel.SetParallel(m.parWorkers)
	}
	if reg := m.Obs(); reg != nil {
		s.obs = sessionObs{
			statements:      reg.Counter("mdm.statements"),
			retries:         reg.Counter("mdm.retries"),
			exhausted:       reg.Counter("mdm.exhausted"),
			canceled:        reg.Counter("mdm.canceled"),
			stmtCacheHits:   reg.Counter("mdm.stmt.cache.hits"),
			stmtCacheMisses: reg.Counter("mdm.stmt.cache.misses"),
		}
	}
	return s
}

// ddlKeywords begin DDL statements.
var ddlKeywords = []string{"define", "drop"}

// ExecResult is the outcome of one ExecContext call.
type ExecResult struct {
	// Output is the printable form: a table for retrieves, affected
	// counts for updates, schema messages for DDL.
	Output string
	// Result holds the structured rows when the source was QUEL (nil
	// after DDL).
	Result *quel.Result
	// DDL reports that the statement was schema definition.
	DDL bool
}

// SetNaivePlanner switches the session's QUEL executor to the retained
// pre-planner nested-loop path.  Benchmarks and differential tests use
// it to compare against the cost-based planner.
func (s *Session) SetNaivePlanner(on bool) { s.quel.SetNaive(on) }

// SetSnapshotReads overrides the manager-wide Options.SnapshotReads for
// this session: on runs read-only statements lock-free against a pinned
// snapshot, off takes shared locks (the comparison baseline).
func (s *Session) SetSnapshotReads(on bool) { s.quel.SetSnapshotReads(on) }

// SetParallelWorkers overrides the manager-wide Options.ParallelWorkers
// for this session.  Benchmarks use it to sweep worker counts over one
// corpus; n <= 1 restores the serial executor.
func (s *Session) SetParallelWorkers(n int) { s.quel.SetParallel(n) }

// SetParallelMinRows tunes the driver-row threshold below which a
// retrieve stays serial.  The default favors OLTP point queries;
// score-grained analytics whose driver list is one row per score — but
// whose per-row probe work is heavy — lower it to fan out anyway.
func (s *Session) SetParallelMinRows(n int) { s.quel.SetParallelMinRows(n) }

// ExecContext executes DDL or QUEL source, dispatching on the first
// keyword.  After DDL, the meta-catalog is refreshed so the new schema
// is immediately queryable (§6).  Canceling ctx aborts the statement —
// including any lock wait it is blocked in — with an error matching
// errors.Is(err, ErrCanceled); errors are classified per errors.go.
func (s *Session) ExecContext(ctx context.Context, src string) (ExecResult, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return ExecResult{}, nil
	}
	var out ExecResult
	err := s.withRetry(ctx, func() error {
		var err error
		out, err = s.execOnce(ctx, trimmed)
		return err
	})
	return out, err
}

// Exec executes DDL or QUEL source and returns the printable result.
//
// Deprecated: use ExecContext, which supports cancellation and returns
// the structured result alongside the text.
func (s *Session) Exec(src string) (string, error) {
	res, err := s.ExecContext(context.Background(), src)
	return res.Output, err
}

func (s *Session) execOnce(ctx context.Context, trimmed string) (ExecResult, error) {
	first := strings.ToLower(firstWord(trimmed))
	for _, kw := range ddlKeywords {
		if first == kw {
			msgs, err := ddl.Exec(s.mdm.Model, trimmed)
			if err != nil {
				return ExecResult{Output: strings.Join(msgs, "\n"), DDL: true}, err
			}
			if err := s.mdm.Catalog.Refresh(); err != nil {
				return ExecResult{DDL: true}, fmt.Errorf("mdm: refreshing catalog: %w", err)
			}
			return ExecResult{Output: strings.Join(msgs, "\n"), DDL: true}, nil
		}
	}
	res, err := s.quel.ExecCtx(ctx, trimmed)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Output: res.String(), Result: res}, nil
}

// QueryContext executes QUEL and returns the structured result (for
// clients that process rows programmatically rather than as text).
// Like ExecContext, transient transaction failures are retried per the
// session policy and ctx cancellation aborts lock waits.
func (s *Session) QueryContext(ctx context.Context, src string) (*quel.Result, error) {
	var res *quel.Result
	err := s.withRetry(ctx, func() error {
		var err error
		res, err = s.quel.ExecCtx(ctx, src)
		return err
	})
	return res, err
}

// Query executes QUEL and returns the structured result.
//
// Deprecated: use QueryContext, which supports cancellation.
func (s *Session) Query(src string) (*quel.Result, error) {
	return s.QueryContext(context.Background(), src)
}

func firstWord(s string) string {
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return s[:i]
		}
	}
	return s
}
