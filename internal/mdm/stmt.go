package mdm

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/quel"
	"repro/internal/value"
)

// Stmt is a prepared, parameterized statement: parsed once, executed
// many times with bound arguments.  Placeholders are written $1, $2,
// ... and are replaced at execution time by literal values, so a bound
// argument drives index selection exactly as an inline literal would —
// there is no string splicing anywhere on the path.  A Stmt is bound to
// the session that prepared it; the parsed form behind it is shared
// through the manager-wide statement cache.
type Stmt struct {
	sess *Session
	prep *quel.Prepared

	mu     sync.Mutex
	closed bool
}

// stmtCache is the manager-wide cache of parsed statements, keyed by
// source text.  Parsed statements are session-independent (binding
// copies the tree), so every session — and every server connection —
// preparing the same source shares one parse.  The cache remembers the
// schema epoch it was filled under and flushes wholesale when DDL
// advances it, so a statement prepared before a `drop index` never
// replays a plan over the dropped index.
type stmtCache struct {
	mu    sync.Mutex
	max   int
	epoch uint64
	bySrc map[string]*quel.Prepared
	order []string // FIFO eviction order
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{max: max, bySrc: make(map[string]*quel.Prepared)}
}

// get returns the cached parse of src, or parses and caches it.  epoch
// is the model's current schema epoch; a mismatch with the cache's
// recorded epoch empties it before lookup.
func (c *stmtCache) get(src string, epoch uint64) (*quel.Prepared, bool, error) {
	c.mu.Lock()
	if c.epoch != epoch {
		c.bySrc = make(map[string]*quel.Prepared)
		c.order = nil
		c.epoch = epoch
	}
	p, ok := c.bySrc[src]
	c.mu.Unlock()
	if ok {
		return p, true, nil
	}
	p, err := quel.Prepare(src)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if c.epoch == epoch {
		if existing, ok := c.bySrc[src]; ok {
			p = existing // another session raced us; share its parse
		} else {
			if len(c.order) >= c.max {
				oldest := c.order[0]
				c.order = c.order[1:]
				delete(c.bySrc, oldest)
			}
			c.bySrc[src] = p
			c.order = append(c.order, src)
		}
	}
	c.mu.Unlock()
	return p, false, nil
}

// PrepareContext parses src into a reusable parameterized statement.
// Only QUEL can be prepared; DDL has no placeholders and goes through
// ExecContext.  Parse errors classify as ErrParse.
func (s *Session) PrepareContext(ctx context.Context, src string) (*Stmt, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, classify(err)
		}
	}
	trimmed := strings.TrimSpace(src)
	first := strings.ToLower(firstWord(trimmed))
	for _, kw := range ddlKeywords {
		if first == kw {
			return nil, fmt.Errorf("%w: cannot prepare DDL (%q); execute it directly", ErrParse, first)
		}
	}
	p, hit, err := s.mdm.stmts.get(trimmed, s.mdm.Model.SchemaEpoch())
	if err != nil {
		return nil, classify(err)
	}
	if hit {
		s.obs.stmtCacheHits.Inc()
	} else {
		s.obs.stmtCacheMisses.Inc()
	}
	return &Stmt{sess: s, prep: p}, nil
}

// NumParams returns the number of arguments ExecContext requires.
func (st *Stmt) NumParams() int { return st.prep.NumParams() }

// Src returns the source text the statement was prepared from.
func (st *Stmt) Src() string { return st.prep.Src() }

// Close releases the statement handle.  The underlying parse stays in
// the manager-wide cache for other sessions; using the handle after
// Close fails with ErrBadStmt.  Close is idempotent.
func (st *Stmt) Close() error {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	return nil
}

func (st *Stmt) checkOpen() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("%w: statement is closed", ErrBadStmt)
	}
	return nil
}

// bindArgs converts Go arguments to typed values, classifying
// conversion failures as ErrBadParam.
func bindArgs(args []any) ([]value.Value, error) {
	out := make([]value.Value, len(args))
	for i, a := range args {
		v, err := value.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("%w: argument %d: %w", ErrBadParam, i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// ExecContext binds args and executes the statement, with the same
// retry, cancellation, and error-classification behavior as
// Session.ExecContext.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (ExecResult, error) {
	res, err := st.QueryContext(ctx, args...)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Output: res.String(), Result: res}, nil
}

// QueryContext binds args and executes the statement, returning the
// structured result for clients that process rows programmatically.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*quel.Result, error) {
	if err := st.checkOpen(); err != nil {
		return nil, err
	}
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	var res *quel.Result
	err = st.sess.withRetry(ctx, func() error {
		var err error
		res, err = st.sess.quel.ExecPreparedCtx(ctx, st.prep, vals...)
		return err
	})
	return res, err
}
