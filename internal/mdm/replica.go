// Read-replica clustering for the music data manager.  The paper's
// workload (§1-2) is read-dominated — browsing scores, thematic-index
// lookups, analysis passes — so the manager scales reads by shipping
// the leader's WAL to replicas (internal/repl) and routing read-only
// QUEL statements to whichever replica is within its lag bound.
package mdm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/repl"
	"repro/internal/storage"
)

// Cluster is one leader MDM plus its attached read replicas.  Writes
// (and any statement that is not read-only) always execute on the
// leader; retrieve/explain statements round-robin across the replicas
// that are currently within their configured lag bound, falling back to
// the leader when none is.
type Cluster struct {
	Leader *MDM

	shipper *repl.Shipper
	ropts   repl.Options

	mu       sync.Mutex
	replicas []*ReadReplica
	rr       atomic.Uint64
	closed   bool
}

// ReadReplica is one attached replica: the replication link plus an
// entity-relationship model opened over the replica's applied state.
//
// The replica's model is loaded from the catalog as of attach time;
// data changes stream continuously, but entity/relationship TYPES
// defined on the leader after the attach are not visible to the
// replica's sessions until it is re-attached (the usual physical-
// replication catalog-cache caveat).
type ReadReplica struct {
	Name string
	Rep  *repl.Replica

	mdm *MDM
}

// NewCluster wires a shipper onto an open leader.  The leader must be
// durable (Dir + SyncCommits/GroupCommit); opts tunes shipping and the
// replicas' read-admission lag bound.
func NewCluster(leader *MDM, opts repl.Options) (*Cluster, error) {
	s, err := repl.NewShipper(leader.Store, opts)
	if err != nil {
		return nil, err
	}
	return &Cluster{Leader: leader, shipper: s, ropts: opts}, nil
}

// AddReplica bootstraps dir from the leader (checkpoint + snapshot
// copy), opens it in replica mode sharing the leader's metrics
// registry, starts the replication link, and opens the replica's model
// for read sessions.
func (c *Cluster) AddReplica(name, dir string) (*ReadReplica, error) {
	rep, err := repl.AttachReplica(c.shipper, name, storage.Options{
		Dir: dir,
		Obs: c.Leader.Obs(),
	}, c.ropts)
	if err != nil {
		return nil, err
	}
	m, err := model.Open(rep.DB())
	if err != nil {
		rep.Stop()
		rep.DB().Close()
		return nil, fmt.Errorf("mdm: open replica model: %w", err)
	}
	rr := &ReadReplica{
		Name: name,
		Rep:  rep,
		mdm:  &MDM{Store: rep.DB(), Model: m, snapshotReads: SnapshotAuto},
	}
	c.mu.Lock()
	c.replicas = append(c.replicas, rr)
	c.mu.Unlock()
	return rr, nil
}

// NewSession opens a read session on this replica.  Statements execute
// against MVCC snapshots of the applied state; write statements fail
// with storage.ErrReplica.
func (r *ReadReplica) NewSession() *Session { return r.mdm.NewSession() }

// Replicas returns the attached replicas.
func (c *Cluster) Replicas() []*ReadReplica {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*ReadReplica, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// readTarget picks the next replica within its lag bound, round-robin,
// or nil when every replica is lagging, poisoned, or absent.
func (c *Cluster) readTarget() *ReadReplica {
	c.mu.Lock()
	reps := c.replicas
	n := len(reps)
	c.mu.Unlock()
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		r := reps[(start+i)%n]
		if r.Rep.Err() == nil && r.Rep.WithinLag() {
			return r
		}
	}
	return nil
}

// readOnlyStatement reports whether a statement can be served by a
// replica: retrieve and explain never write.
func readOnlyStatement(src string) bool {
	switch strings.ToLower(firstWord(strings.TrimSpace(src))) {
	case "retrieve", "explain":
		return true
	}
	return false
}

// ExecContext routes one statement: read-only statements to a
// caught-up replica (leader fallback), everything else to the leader.
func (c *Cluster) ExecContext(ctx context.Context, src string) (ExecResult, error) {
	if readOnlyStatement(src) {
		if r := c.readTarget(); r != nil {
			res, err := r.NewSession().ExecContext(ctx, src)
			// A replica that cannot serve the read (stopped mid-flight,
			// degraded) must not fail the client: retry on the leader.
			if err == nil || !errors.Is(err, storage.ErrReplica) {
				return res, err
			}
		}
	}
	return c.Leader.NewSession().ExecContext(ctx, src)
}

// Exec is ExecContext with a background context, returning the
// rendered output.
func (c *Cluster) Exec(src string) (string, error) {
	res, err := c.ExecContext(context.Background(), src)
	return res.Output, err
}

// Close detaches every replica (stopping links and closing replica
// databases) and shuts the shipper down.  The leader stays open — it
// belongs to the caller.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	reps := c.replicas
	c.mu.Unlock()
	err := c.shipper.Close()
	for _, r := range reps {
		r.Rep.Stop()
		if cerr := r.Rep.DB().Close(); cerr != nil && err == nil && !errors.Is(cerr, storage.ErrReadOnly) {
			err = cerr
		}
	}
	return err
}
