package mdm

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/biblio"
	"repro/internal/darms"
)

func TestOpenInMemory(t *testing.T) {
	m, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// CMN and biblio schemas are up.
	if _, ok := m.Model.EntityType("SCORE"); !ok {
		t.Fatal("CMN schema missing")
	}
	if _, ok := m.Model.EntityType("CATALOG"); !ok {
		t.Fatal("biblio schema missing")
	}
	// Catalog self-describes.
	if _, ok := m.Catalog.EntityRef("ENTITY"); !ok {
		t.Fatal("meta catalog missing")
	}
}

func TestSkipCMN(t *testing.T) {
	m, err := Open(Options{SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, ok := m.Model.EntityType("SCORE"); ok {
		t.Fatal("CMN schema defined despite SkipCMN")
	}
}

func TestSessionDDLAndQUEL(t *testing.T) {
	m, err := Open(Options{SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.NewSession()
	out, err := s.Exec(`
define entity COMPOSITION (title = string, year = integer)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "defined entity COMPOSITION") {
		t.Fatalf("ddl output: %q", out)
	}
	if _, err := s.Exec(`append to COMPOSITION (title = "Fuge g-moll", year = 1709)`); err != nil {
		t.Fatal(err)
	}
	out, err = s.Exec(`
range of c is COMPOSITION
retrieve (c.title) where c.year = 1709`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fuge g-moll") {
		t.Fatalf("query output: %q", out)
	}
	// DDL refreshes the meta catalog: the new type is queryable.
	res, err := s.Query(`
range of e is ENTITY
retrieve (e.entity_name) where e.entity_name = "COMPOSITION"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("catalog rows: %v", res.Rows)
	}
	// Errors propagate.
	if _, err := s.Exec("retrieve (nope.x)"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := s.Exec("define entity COMPOSITION (a = integer)"); err == nil {
		t.Fatal("duplicate entity accepted")
	}
	if out, err := s.Exec("   "); err != nil || out != "" {
		t.Fatal("blank input")
	}
}

// TestFigure1SharedClients exercises figure 1's architecture: four
// clients of different kinds sharing one MDM concurrently.
func TestFigure1SharedClients(t *testing.T) {
	m, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// The editor client imports a score via DARMS.
	items, err := darms.Parse(darms.Figure4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := darms.ToScore(m.Music, items, "Gloria"); err != nil {
		t.Fatal(err)
	}
	// The library client catalogues works.
	cat, err := m.Biblio.NewCatalog("Bach Werke Verzeichnis", "BWV", "chronological")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Biblio.AddEntry(cat, biblio.BWV578()); err != nil {
		t.Fatal(err)
	}

	// Concurrently: an analysis client queries while a composition
	// client appends and a second analyst reads the catalogue.
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(3)
	go func() { // analysis client
		defer wg.Done()
		s := m.NewSession()
		for i := 0; i < 20; i++ {
			if _, err := s.Query(`range of n is NOTE retrieve (total = count(n.all))`); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // composition client
		defer wg.Done()
		s := m.NewSession()
		for i := 0; i < 20; i++ {
			if _, err := s.Exec(`append to ANNOTATION (kind = "rehearsal", text = "A")`); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() { // library client
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := m.Biblio.Lookup("BWV", 578); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All clients see consistent state.
	s := m.NewSession()
	res, _ := s.Query(`range of a is ANNOTATION retrieve (total = count(a.all))`)
	if res.Rows[0][0].AsInt() != 21 { // 1 from DARMS + 20 appended
		t.Fatalf("annotations: %v", res.Rows)
	}
}

func TestDurableReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()
	if _, err := s.Exec(`append to SCORE (title = "persisted", catalog_id = "X 1")`); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	res, err := m2.NewSession().Query(`range of s is SCORE retrieve (s.title)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "persisted" {
		t.Fatalf("rows after reopen: %v", res.Rows)
	}
}

func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewSession()
	if _, err := s.Exec(`append to ANNOTATION (kind = "k", text = "t")`); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
