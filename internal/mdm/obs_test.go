package mdm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ddl"
	"repro/internal/model"
	"repro/internal/quel"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/value"
)

// openObsMDM opens a durable manager so WAL metrics are live.
func openObsMDM(t *testing.T) *MDM {
	t.Helper()
	m, err := Open(Options{Dir: t.TempDir(), SyncCommits: true, SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func metricValue(t *testing.T, m *MDM, name string) (val, count uint64) {
	t.Helper()
	mt, ok := m.Obs().Get(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return mt.Value, mt.Count
}

// TestWorkloadMetrics runs a known workload and asserts the layers'
// counters and histograms moved as expected.
func TestWorkloadMetrics(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	ctx := context.Background()
	mustCtx := func(src string) {
		t.Helper()
		if _, err := s.ExecContext(ctx, src); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	mustCtx(`define entity work (title = string, year = int)`)
	for i := 0; i < 4; i++ {
		mustCtx(`append to work (title = "t", year = 1900)`)
	}
	mustCtx(`retrieve (work.title) where work.year = 1900`)
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if v, _ := metricValue(t, m, "mdm.statements"); v != 6 {
		t.Errorf("mdm.statements = %d, want 6", v)
	}
	if _, c := metricValue(t, m, "wal.fsync.ns"); c == 0 {
		t.Error("wal.fsync.ns histogram empty despite SyncCommits")
	}
	if v, _ := metricValue(t, m, "wal.append.records"); v == 0 {
		t.Error("wal.append.records = 0")
	}
	if v, _ := metricValue(t, m, "storage.txn.commit"); v == 0 {
		t.Error("storage.txn.commit = 0")
	}
	if v, _ := metricValue(t, m, "storage.rows.written"); v < 4 {
		t.Errorf("storage.rows.written = %d, want >= 4", v)
	}
	if _, c := metricValue(t, m, "storage.checkpoint.ns"); c == 0 {
		t.Error("storage.checkpoint.ns histogram empty after Checkpoint")
	}
	if _, c := metricValue(t, m, "quel.stmt.ns"); c < 5 {
		t.Error("quel.stmt.ns histogram did not record statements")
	}
	if v, _ := metricValue(t, m, "quel.scan.rows"); v == 0 {
		t.Error("quel.scan.rows = 0 after retrieve")
	}
	if v, _ := metricValue(t, m, "txn.lock.acquire"); v == 0 {
		t.Error("txn.lock.acquire = 0")
	}
}

// TestTraceCapturesEngineEvents proves the ring sees WAL and statement
// events once enabled, and nothing while disabled.
func TestTraceCapturesEngineEvents(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	tr := m.Obs().Trace()
	if _, err := s.ExecContext(context.Background(), `define entity w (a = int)`); err != nil {
		t.Fatal(err)
	}
	if got := tr.LastSeq(); got != 0 {
		t.Fatalf("events recorded while disabled: seq=%d", got)
	}
	tr.SetEnabled(true)
	if _, err := s.ExecContext(context.Background(), `append to w (a = 1)`); err != nil {
		t.Fatal(err)
	}
	tr.SetEnabled(false)
	names := map[string]bool{}
	for _, e := range tr.Events(0) {
		names[e.Name] = true
	}
	for _, want := range []string{"quel.stmt", "wal.fsync"} {
		if !names[want] {
			t.Errorf("trace missing %q events (got %v)", want, names)
		}
	}
}

// TestCancellationAbortsLockWait is the acceptance check: a statement
// blocked on a lock held by another transaction returns ErrCanceled
// promptly (< 100ms) when its context is canceled.
func TestCancellationAbortsLockWait(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	if _, err := s.ExecContext(context.Background(), `define entity work (title = string)`); err != nil {
		t.Fatal(err)
	}

	// Holder: a raw storage transaction keeps a shared lock on the
	// work relation, so the session's append (exclusive) must wait.
	holder := m.Store.Begin()
	rel := m.Model.InstanceRelation("work")
	if err := holder.Scan(rel, func(_ storage.RowID, _ value.Tuple) bool { return false }); err != nil {
		t.Fatal(err)
	}
	defer holder.Abort()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.ExecContext(ctx, `append to work (title = "blocked")`)
		errCh <- err
	}()

	// Let the statement reach the lock wait, then cancel and time the
	// return.
	time.Sleep(30 * time.Millisecond)
	select {
	case err := <-errCh:
		t.Fatalf("statement finished before cancel: %v", err)
	default:
	}
	canceledAt := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if gone := time.Since(canceledAt); gone > 100*time.Millisecond {
			t.Errorf("cancellation took %v, want < 100ms", gone)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err chain lost context.Canceled: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled statement never returned")
	}

	if v, _ := metricValue(t, m, "txn.lock.canceled"); v == 0 {
		t.Error("txn.lock.canceled = 0")
	}
	if _, c := metricValue(t, m, "txn.lock.wait.ns"); c == 0 {
		t.Error("txn.lock.wait.ns histogram empty after a blocked wait")
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("session Canceled = %d, want 1", st.Canceled)
	}

	// The lock is still held by the raw transaction; a fresh context
	// succeeds once it is released.
	holder.Abort()
	if _, err := s.ExecContext(context.Background(), `append to work (title = "after")`); err != nil {
		t.Fatalf("append after release: %v", err)
	}
}

// TestPreCanceledContext: a context canceled before execution fails
// fast without touching the engine.
func TestPreCanceledContext(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	if _, err := s.ExecContext(context.Background(), `define entity w (a = int)`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExecContext(ctx, `append to w (a = 1)`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestErrorClassification covers the typed sentinels of errors.go.
func TestErrorClassification(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	ctx := context.Background()

	_, err := s.ExecContext(ctx, `retrieve n.name`)
	if !errors.Is(err, ErrParse) {
		t.Errorf("quel syntax: err = %v, want ErrParse", err)
	}
	if !errors.Is(err, quel.ErrParse) {
		t.Errorf("quel syntax: chain lost quel.ErrParse: %v", err)
	}

	_, err = s.ExecContext(ctx, `define entity`)
	if !errors.Is(err, ErrParse) || !errors.Is(err, ddl.ErrParse) {
		t.Errorf("ddl syntax: err = %v, want ErrParse wrapping ddl.ErrParse", err)
	}

	_, err = s.ExecContext(ctx, `append to nosuch (a = 1)`)
	if !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("unknown entity: err = %v, want ErrUnknownEntity", err)
	}
	if !errors.Is(err, model.ErrNoEntityType) {
		t.Errorf("unknown entity: chain lost model.ErrNoEntityType: %v", err)
	}

	// Cancellation sentinels interoperate with the txn layer's.
	ctx2, cancel := context.WithCancel(ctx)
	cancel()
	_, err = s.ExecContext(ctx2, `append to nosuch (a = 1)`)
	if !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrUnknownEntity) {
		t.Errorf("err = %v, want a classified sentinel", err)
	}
	if !errors.Is(classify(txn.ErrCanceled), ErrCanceled) {
		t.Error("classify(txn.ErrCanceled) not ErrCanceled")
	}
}

// TestDeprecatedWrappers: the string API still works and is equivalent.
func TestDeprecatedWrappers(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	if _, err := s.Exec(`define entity w (a = int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`append to w (a = 7)`); err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec(`retrieve (w.a)`)
	if err != nil || !strings.Contains(out, "7") {
		t.Fatalf("Exec = %q, %v", out, err)
	}
	res, err := s.Query(`retrieve (w.a)`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("Query = %+v, %v", res, err)
	}
}

// TestExecResultShape: ExecContext distinguishes DDL from QUEL and
// carries the structured result.
func TestExecResultShape(t *testing.T) {
	m := openObsMDM(t)
	s := m.NewSession()
	ctx := context.Background()
	res, err := s.ExecContext(ctx, `define entity w (a = int)`)
	if err != nil || !res.DDL || res.Result != nil {
		t.Fatalf("ddl result = %+v, %v", res, err)
	}
	res, err = s.ExecContext(ctx, `append to w (a = 1)`)
	if err != nil || res.DDL || res.Result == nil || res.Result.Affected != 1 {
		t.Fatalf("append result = %+v, %v", res, err)
	}
}
