package mdm

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/repl"
)

// TestClusterReadRouting stands up a leader with two read replicas in
// SyncShip mode (a commit returns only after every live replica
// applied it), checks that retrieve/explain statements are served by
// the replicas, that writes land on the leader and become visible on
// replica reads immediately, and that a cluster with no usable replica
// falls back to the leader.
func TestClusterReadRouting(t *testing.T) {
	base := t.TempDir()
	leader, err := Open(Options{
		Dir:         filepath.Join(base, "leader"),
		SyncCommits: true,
		GroupCommit: true,
		SkipCMN:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	ls := leader.NewSession()
	if _, err := ls.Exec(`define entity COMPOSITION (title = string, year = integer)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ls.Exec(`append to COMPOSITION (title = "pre", year = 1700)`); err != nil {
			t.Fatal(err)
		}
	}

	c, err := NewCluster(leader, repl.Options{SyncShip: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// No replica yet: reads fall back to the leader.
	out, err := c.Exec("range of c is COMPOSITION\nretrieve (c.title) where c.year = 1700")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "pre"); got != 5 {
		t.Fatalf("leader-fallback read saw %d rows, want 5", got)
	}

	r1, err := c.AddReplica("r1", filepath.Join(base, "r1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddReplica("r2", filepath.Join(base, "r2")); err != nil {
		t.Fatal(err)
	}
	if len(c.Replicas()) != 2 {
		t.Fatalf("replicas = %d, want 2", len(c.Replicas()))
	}

	// Writes route to the leader; SyncShip makes them visible on the
	// replicas the moment Exec returns.
	if _, err := c.Exec(`append to COMPOSITION (title = "post", year = 1800)`); err != nil {
		t.Fatal(err)
	}
	res, err := r1.NewSession().Query("range of c is COMPOSITION\nretrieve (c.title, c.year)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("replica sees %d rows, want 6", len(res.Rows))
	}

	// Routed reads hit a replica and agree with the leader.
	for i := 0; i < 4; i++ { // round-robin across both replicas
		out, err := c.Exec("range of c is COMPOSITION\nretrieve (c.title) where c.year = 1800")
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(out, "post"); got != 1 {
			t.Fatalf("routed read %d saw %d rows, want 1", i, got)
		}
	}
	if c.readTarget() == nil {
		t.Fatal("healthy caught-up replicas must admit reads")
	}

	// explain is read-only and must be servable by a replica session.
	if _, err := r1.NewSession().Exec("range of c is COMPOSITION\nexplain retrieve (c.title)"); err != nil {
		t.Fatalf("explain on replica: %v", err)
	}

	// Write statements must not be routed to replicas.
	if readOnlyStatement(`append to COMPOSITION (title = "x", year = 1)`) {
		t.Fatal("append misclassified as read-only")
	}
	if !readOnlyStatement("  retrieve (c.title)") || !readOnlyStatement("EXPLAIN (c.title)") {
		t.Fatal("retrieve/explain misclassified")
	}
}
