package mdm

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/txn"
)

// RetryPolicy bounds the automatic retry of transient transaction
// failures (deadlock victims, lock-wait timeouts).  Each retry sleeps a
// capped exponential backoff with jitter so colliding clients desynchronize
// instead of re-deadlocking in lockstep.
type RetryPolicy struct {
	MaxAttempts int           // total tries, including the first
	BaseDelay   time.Duration // backoff before the first retry
	MaxDelay    time.Duration // backoff cap
}

// DefaultRetryPolicy suits interactive clients: quick first retries (a
// deadlock victim usually succeeds immediately once the other side
// commits), bounded total stall.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 8,
	BaseDelay:   500 * time.Microsecond,
	MaxDelay:    50 * time.Millisecond,
}

// SessionStats counts a session's statements and retry activity.
type SessionStats struct {
	Statements uint64 // statements executed
	Retries    uint64 // transparent re-executions after a transient error
	Exhausted  uint64 // statements that failed even after all attempts
	Canceled   uint64 // statements aborted by context cancellation
}

// Stats returns a snapshot of the session's retry counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Statements: atomic.LoadUint64(&s.statements),
		Retries:    atomic.LoadUint64(&s.retries),
		Exhausted:  atomic.LoadUint64(&s.exhausted),
		Canceled:   atomic.LoadUint64(&s.canceled),
	}
}

// SetRetryPolicy replaces the session's retry policy (not concurrency-safe
// with in-flight statements; configure before use).
func (s *Session) SetRetryPolicy(p RetryPolicy) { s.policy = p }

// transient reports whether err is worth retrying: the transaction was
// aborted cleanly (deadlock victim or lock-wait timeout) and a re-run has
// every chance of succeeding.
func transient(err error) bool {
	return errors.Is(err, txn.ErrDeadlock) || errors.Is(err, txn.ErrTimeout)
}

// withRetry runs fn, transparently retrying transient failures per the
// session policy.  Statement execution is statement-atomic (the model
// layer runs each statement in its own transaction, fully aborted on a
// transient error), so re-running is safe.  Cancellation is never
// transient: a canceled statement returns immediately, classified as
// ErrCanceled, and backoff sleeps are cut short by ctx.
func (s *Session) withRetry(ctx context.Context, fn func() error) error {
	atomic.AddUint64(&s.statements, 1)
	s.obs.statements.Inc()
	attempts := s.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			atomic.AddUint64(&s.retries, 1)
			s.obs.retries.Inc()
			if err := sleepCtx(ctx, s.policy.backoff(attempt)); err != nil {
				return s.finish(err)
			}
		}
		if err = fn(); err == nil || !transient(err) {
			return s.finish(err)
		}
	}
	atomic.AddUint64(&s.exhausted, 1)
	s.obs.exhausted.Inc()
	return s.finish(err)
}

// finish classifies the statement's final error and counts
// cancellations.
func (s *Session) finish(err error) error {
	err = classify(err)
	if errors.Is(err, ErrCanceled) {
		atomic.AddUint64(&s.canceled, 1)
		s.obs.canceled.Inc()
	}
	return err
}

// sleepCtx sleeps for d or until ctx is canceled, whichever comes
// first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the sleep before retry number attempt (1-based):
// exponential in the attempt, capped, with ±50% jitter.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = DefaultRetryPolicy.BaseDelay
	}
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(int64(d))) //nolint:gosec // jitter, not crypto
}

// Health describes the manager's availability for new work.
type Health struct {
	ReadOnly bool  // degraded: mutations refused, reads still served
	Cause    error // the I/O failure that degraded the store, if any
}

// Health reports whether the underlying store has degraded to read-only
// mode (fsyncgate: a failed WAL fsync poisons the log and the store stops
// accepting writes rather than acknowledging unrecoverable commits).
func (m *MDM) Health() Health {
	cause := m.Store.ReadOnlyCause()
	return Health{ReadOnly: cause != nil, Cause: cause}
}
