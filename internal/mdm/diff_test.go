package mdm

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentDifferentialGroupCommit is the differential harness for
// the commit pipeline: the same deterministic concurrent workload —
// four writers issuing randomized appends, replaces, and deletes
// through their own sessions — runs under every combination of
// GroupCommit on/off and naive/cost-based planner.  After each run the
// store is synced, the manager abandoned WITHOUT a clean close (so the
// checkpoint cannot paper over the log), and the directory reopened
// cold: recovery must replay the WAL.  The post-recovery relation
// contents must be identical across all four configurations and match
// the per-writer oracle.  Group commit batches and reorders flushes; it
// must never change what recovers.
func TestConcurrentDifferentialGroupCommit(t *testing.T) {
	configs := []struct {
		name  string
		group bool
		naive bool
	}{
		{"serial-planner", false, false},
		{"serial-naive", false, true},
		{"group-planner", true, false},
		{"group-naive", true, true},
	}
	var want map[string][]string
	for _, cfg := range configs {
		got := runDifferentialWorkload(t, cfg.group, cfg.naive)
		if want == nil {
			want = got
			continue
		}
		for typ, rows := range want {
			if strings.Join(got[typ], "\n") != strings.Join(rows, "\n") {
				t.Fatalf("config %s diverged on %s:\n got: %v\nwant: %v",
					cfg.name, typ, got[typ], rows)
			}
		}
	}
}

const diffWriters = 4

// runDifferentialWorkload runs the deterministic concurrent workload
// under one configuration and returns the post-recovery contents of
// each writer's entity relation as sorted "name=v" rows.
func runDifferentialWorkload(t *testing.T, group, naive bool) map[string][]string {
	t.Helper()
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, SyncCommits: true, GroupCommit: group, SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	ddl := m.NewSession()
	for w := 0; w < diffWriters; w++ {
		if _, err := ddl.Exec(fmt.Sprintf("define entity T%d (name = integer, v = integer)", w)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, diffWriters)
	oracles := make([]map[int]int, diffWriters)
	for w := 0; w < diffWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			oracles[w], errs[w] = diffWriter(m, w, naive)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d (group=%v naive=%v): %v", w, group, naive, err)
		}
	}

	// Make the log durable, then abandon the manager without Close: the
	// reopen below must reconstruct state from snapshot + WAL replay
	// exactly as a crashed process would.
	if err := m.Store.Sync(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Options{Dir: dir, SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	s := m2.NewSession()
	out := make(map[string][]string, diffWriters)
	for w := 0; w < diffWriters; w++ {
		typ := fmt.Sprintf("T%d", w)
		res, err := s.QueryContext(context.Background(), fmt.Sprintf("retrieve (%s.name, %s.v)", typ, typ))
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, 0, len(res.Rows))
		for _, r := range res.Rows {
			rows = append(rows, fmt.Sprintf("%d=%d", r[0].AsInt(), r[1].AsInt()))
		}
		sort.Strings(rows)
		out[typ] = rows

		// Cross-check against the writer's own oracle.
		expect := make([]string, 0, len(oracles[w]))
		for name, v := range oracles[w] {
			expect = append(expect, fmt.Sprintf("%d=%d", name, v))
		}
		sort.Strings(expect)
		if strings.Join(rows, "\n") != strings.Join(expect, "\n") {
			t.Fatalf("writer %d (group=%v naive=%v): recovered rows diverge from oracle:\n got: %v\nwant: %v",
				w, group, naive, rows, expect)
		}
	}
	return out
}

// diffWriter runs one writer's deterministic operation stream against
// its own entity type and returns the expected final name→v contents.
func diffWriter(m *MDM, w int, naive bool) (map[int]int, error) {
	s := m.NewSession()
	s.SetNaivePlanner(naive)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(int64(1000 + w)))
	typ := fmt.Sprintf("T%d", w)
	state := map[int]int{}
	next := 1
	live := []int{}
	for op := 0; op < 40; op++ {
		switch k := rng.Intn(10); {
		case k < 6 || len(live) == 0: // append
			name, v := next, rng.Intn(1000)
			next++
			stmt := fmt.Sprintf("append to %s (name = %d, v = %d)", typ, name, v)
			if _, err := s.ExecContext(ctx, stmt); err != nil {
				return nil, fmt.Errorf("%s: %w", stmt, err)
			}
			state[name] = v
			live = append(live, name)
		case k < 8: // replace
			name, v := live[rng.Intn(len(live))], rng.Intn(1000)
			stmt := fmt.Sprintf("range of x is %s replace x (v = %d) where x.name = %d", typ, v, name)
			if _, err := s.ExecContext(ctx, stmt); err != nil {
				return nil, fmt.Errorf("%s: %w", stmt, err)
			}
			state[name] = v
		default: // delete
			i := rng.Intn(len(live))
			name := live[i]
			stmt := fmt.Sprintf("range of x is %s delete x where x.name = %d", typ, name)
			if _, err := s.ExecContext(ctx, stmt); err != nil {
				return nil, fmt.Errorf("%s: %w", stmt, err)
			}
			delete(state, name)
			live = append(live[:i], live[i+1:]...)
		}
	}
	return state, nil
}
