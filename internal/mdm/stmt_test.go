package mdm

import (
	"context"
	"errors"
	"testing"
)

func stmtTestMDM(t *testing.T) (*MDM, *Session) {
	t.Helper()
	m, err := Open(Options{SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	s := m.NewSession()
	ctx := context.Background()
	if _, err := s.ExecContext(ctx, `define entity WORK (title = string, opus = integer)`); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`range of w is WORK`,
		`append to WORK (title = "Sonata", opus = 1)`,
		`append to WORK (title = "Partita", opus = 2)`,
	} {
		if _, err := s.ExecContext(ctx, src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	return m, s
}

func TestStmtPrepareExec(t *testing.T) {
	_, s := stmtTestMDM(t)
	ctx := context.Background()
	st, err := s.PrepareContext(ctx, `retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumParams() != 1 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	res, err := st.QueryContext(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "Partita" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Go-native arg types convert via value.FromGo.
	if _, err := st.QueryContext(ctx, int32(1)); err != nil {
		t.Fatalf("int32 arg: %v", err)
	}
	// ExecContext returns the same rows wrapped as an ExecResult.
	er, err := st.ExecContext(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if er.Result == nil || len(er.Result.Rows) != 1 || er.Result.Rows[0][0].AsString() != "Sonata" {
		t.Fatalf("exec result: %+v", er)
	}
}

func TestStmtBadParam(t *testing.T) {
	_, s := stmtTestMDM(t)
	ctx := context.Background()
	st, err := s.PrepareContext(ctx, `retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.QueryContext(ctx); !errors.Is(err, ErrBadParam) {
		t.Fatalf("arity error: %v", err)
	}
	if _, err := st.QueryContext(ctx, struct{}{}); !errors.Is(err, ErrBadParam) {
		t.Fatalf("unconvertible arg: %v", err)
	}
}

func TestStmtCloseThenUse(t *testing.T) {
	_, s := stmtTestMDM(t)
	ctx := context.Background()
	st, err := s.PrepareContext(ctx, `retrieve (w.title) where w.opus = $1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := st.QueryContext(ctx, 1); !errors.Is(err, ErrBadStmt) {
		t.Fatalf("use after close: %v", err)
	}
}

func TestStmtRejectsDDL(t *testing.T) {
	_, s := stmtTestMDM(t)
	_, err := s.PrepareContext(context.Background(), `define entity X (a = integer)`)
	if !errors.Is(err, ErrParse) {
		t.Fatalf("prepare DDL: %v", err)
	}
}

func TestStmtParseErrorIsErrParse(t *testing.T) {
	_, s := stmtTestMDM(t)
	_, err := s.PrepareContext(context.Background(), `retrieve (w.`)
	if !errors.Is(err, ErrParse) {
		t.Fatalf("parse error: %v", err)
	}
}

// TestStmtCacheShared: preparing the same source twice (even from
// different sessions) parses once; the manager-wide cache serves the
// second prepare.
func TestStmtCacheShared(t *testing.T) {
	m, s1 := stmtTestMDM(t)
	ctx := context.Background()
	const src = `retrieve (w.title) where w.opus = $1`
	st1, err := s1.PrepareContext(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	s2 := m.NewSession()
	if _, err := s2.ExecContext(ctx, `range of w is WORK`); err != nil {
		t.Fatal(err)
	}
	st2, err := s2.PrepareContext(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st1.prep != st2.prep {
		t.Fatal("second prepare did not hit the shared statement cache")
	}
	hits := m.Obs().Counter("mdm.stmt.cache.hits").Value()
	if hits == 0 {
		t.Fatal("cache hit not counted")
	}
	// Both handles execute independently with their own bindings.
	r1, err := st1.QueryContext(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st2.QueryContext(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].AsString() != "Sonata" || r2.Rows[0][0].AsString() != "Partita" {
		t.Fatalf("rows: %v / %v", r1.Rows, r2.Rows)
	}
}

// TestDeprecatedShims: the context-less Exec/Query wrappers still work
// and classify errors through the same sentinel taxonomy.
func TestDeprecatedShims(t *testing.T) {
	_, s := stmtTestMDM(t)
	out, err := s.Exec(`retrieve (w.title) where w.opus = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty shim output")
	}
	res, err := s.Query(`retrieve (w.title) where w.opus = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if _, err := s.Query(`retrieve (w.`); !errors.Is(err, ErrParse) {
		t.Fatalf("shim parse error: %v", err)
	}
}
