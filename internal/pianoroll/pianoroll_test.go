package pianoroll

import (
	"strings"
	"testing"

	"repro/internal/midi"
)

func seq(notes ...midi.NoteEvent) *midi.Sequence {
	return &midi.Sequence{Notes: notes, TicksPerQuarter: 480}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(60, 50, 1000, 10); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := New(50, 60, 0, 10); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := New(50, 60, 1000, 0); err == nil {
		t.Fatal("zero columns accepted")
	}
	if _, err := FromSequence(seq(), 1000); err == nil {
		t.Fatal("empty sequence accepted")
	}
}

func TestFromSequenceShape(t *testing.T) {
	s := seq(
		midi.NoteEvent{Key: 60, Velocity: 80, StartUs: 0, DurUs: 500_000},
		midi.NoteEvent{Key: 67, Velocity: 80, StartUs: 500_000, DurUs: 500_000},
	)
	r, err := FromSequence(s, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinKey != 60 || r.MaxKey != 67 || r.Columns != 4 {
		t.Fatalf("shape: %+v", r)
	}
	// C4 occupies columns 0-1; G4 columns 2-3.
	for col := 0; col < 2; col++ {
		if r.Get(60, col) != On || r.Get(67, col) != Off {
			t.Fatalf("col %d wrong", col)
		}
	}
	for col := 2; col < 4; col++ {
		if r.Get(60, col) != Off || r.Get(67, col) != On {
			t.Fatalf("col %d wrong", col)
		}
	}
	if r.Get(200, 0) != Off || r.Get(60, 99) != Off {
		t.Fatal("out-of-range get")
	}
}

func TestRoundTrip(t *testing.T) {
	s := seq(
		midi.NoteEvent{Key: 55, Velocity: 80, StartUs: 0, DurUs: 1_000_000},
		midi.NoteEvent{Key: 58, Velocity: 80, StartUs: 250_000, DurUs: 500_000},
		midi.NoteEvent{Key: 62, Velocity: 80, StartUs: 1_000_000, DurUs: 250_000},
	)
	r, _ := FromSequence(s, 250_000)
	back := r.ToSequence()
	if len(back.Notes) != 3 {
		t.Fatalf("notes after round trip: %d", len(back.Notes))
	}
	for i, n := range back.Notes {
		w := s.Notes[i]
		if n.Key != w.Key || n.StartUs != w.StartUs || n.DurUs != w.DurUs {
			t.Fatalf("note %d: %+v want %+v", i, n, w)
		}
	}
}

func TestAdjacentNotesMerge(t *testing.T) {
	// Two back-to-back same-key notes merge in the roll: a documented
	// lossy property of the notation (the paper notes entrances are
	// "normally hidden in a piano roll notation").
	s := seq(
		midi.NoteEvent{Key: 60, Velocity: 80, StartUs: 0, DurUs: 500_000},
		midi.NoteEvent{Key: 60, Velocity: 80, StartUs: 500_000, DurUs: 500_000},
	)
	r, _ := FromSequence(s, 250_000)
	back := r.ToSequence()
	if len(back.Notes) != 1 || back.Notes[0].DurUs != 1_000_000 {
		t.Fatalf("merge: %+v", back.Notes)
	}
}

func TestHighlight(t *testing.T) {
	r, _ := New(60, 62, 250_000, 8)
	r.AddNote(midi.NoteEvent{Key: 60, StartUs: 0, DurUs: 1_000_000}, true)
	r.AddNote(midi.NoteEvent{Key: 62, StartUs: 0, DurUs: 500_000}, false)
	if r.Get(60, 0) != Highlight || r.Get(62, 0) != On {
		t.Fatal("highlight state")
	}
	// Highlight is not overwritten by a plain overlapping note.
	r.AddNote(midi.NoteEvent{Key: 60, StartUs: 0, DurUs: 250_000}, false)
	if r.Get(60, 0) != Highlight {
		t.Fatal("highlight overwritten")
	}
	out := r.Render(true)
	if !strings.Contains(out, "▒") || !strings.Contains(out, "█") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderLayout(t *testing.T) {
	r, _ := New(60, 72, 250_000, 4)
	r.AddNote(midi.NoteEvent{Key: 60, StartUs: 0, DurUs: 1_000_000}, false)
	r.AddNote(midi.NoteEvent{Key: 72, StartUs: 0, DurUs: 250_000}, false)
	full := r.Render(false)
	lines := strings.Split(strings.TrimRight(full, "\n"), "\n")
	if len(lines) != 14 { // 13 keys + axis
		t.Fatalf("full render lines: %d", len(lines))
	}
	// Pitch increases upward: C5 row above C4 row.
	if !strings.HasPrefix(lines[0], "  C5") || !strings.HasPrefix(lines[12], "  C4") {
		t.Fatalf("row order:\n%s", full)
	}
	compact := r.Render(true)
	if got := len(strings.Split(strings.TrimRight(compact, "\n"), "\n")); got != 3 {
		t.Fatalf("compact lines: %d\n%s", got, compact)
	}
}

func TestKeyName(t *testing.T) {
	cases := map[int]string{60: "C4", 69: "A4", 58: "A#3", 21: "A0", 67: "G4"}
	for key, want := range cases {
		if got := KeyName(key); got != want {
			t.Errorf("KeyName(%d) = %q want %q", key, got, want)
		}
	}
}

func TestDensity(t *testing.T) {
	r, _ := New(60, 61, 1000, 10) // 20 cells
	r.AddNote(midi.NoteEvent{Key: 60, StartUs: 0, DurUs: 5000}, false)
	if d := r.Density(); d != 0.25 {
		t.Fatalf("density: %g", d)
	}
	r.Set(61, 0, On)
	if d := r.Density(); d != 0.3 {
		t.Fatalf("density after set: %g", d)
	}
	r.Set(99, 0, On) // out of range ignored
}

func TestZeroDurationNote(t *testing.T) {
	r, _ := New(60, 60, 1000, 4)
	r.AddNote(midi.NoteEvent{Key: 60, StartUs: 1000, DurUs: 0}, false)
	if r.Get(60, 1) != On {
		t.Fatal("zero-duration note should mark one cell")
	}
}

func BenchmarkFromSequence(b *testing.B) {
	var notes []midi.NoteEvent
	for i := 0; i < 2000; i++ {
		notes = append(notes, midi.NoteEvent{
			Key: 36 + i%48, Velocity: 80,
			StartUs: int64(i) * 125_000, DurUs: 250_000,
		})
	}
	s := seq(notes...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromSequence(s, 50_000); err != nil {
			b.Fatal(err)
		}
	}
}
