// Package pianoroll implements the piano-roll notation of §4.5 of the
// paper: "essentially a map of the state of a musical keyboard against
// time", with time progressing along the x-axis and pitch (quantized by
// semitones) increasing upward along the y-axis (figure 3).
//
// The package translates between MIDI note-event streams and rolls in
// both directions — the translation whose ease, the paper notes,
// explains the popularity of the notation — and renders rolls as text.
// Cells can carry a highlight mark, reproducing figure 3's grey shading
// of the fugue entrances.
package pianoroll

import (
	"fmt"
	"strings"

	"repro/internal/midi"
)

// Cell is the state of one key at one time step.
type Cell uint8

// Cell states.
const (
	Off Cell = iota
	On
	Highlight // sounding and highlighted (figure 3's grey entrances)
)

// Roll is a keyboard-state-versus-time map.
type Roll struct {
	MinKey, MaxKey int   // inclusive pitch range (MIDI keys)
	StepUs         int64 // time quantum per column, microseconds
	Columns        int
	cells          []Cell // (key - MinKey) * Columns + col
}

// New returns an empty roll covering [minKey, maxKey] with the given
// time step and column count.
func New(minKey, maxKey int, stepUs int64, columns int) (*Roll, error) {
	if minKey > maxKey {
		return nil, fmt.Errorf("pianoroll: empty key range [%d,%d]", minKey, maxKey)
	}
	if stepUs <= 0 || columns <= 0 {
		return nil, fmt.Errorf("pianoroll: invalid step %d or columns %d", stepUs, columns)
	}
	return &Roll{
		MinKey: minKey, MaxKey: maxKey, StepUs: stepUs, Columns: columns,
		cells: make([]Cell, (maxKey-minKey+1)*columns),
	}, nil
}

// FromSequence builds a roll from a MIDI sequence, sizing the key range
// and column count to fit.  stepUs is the time quantum.
func FromSequence(seq *midi.Sequence, stepUs int64) (*Roll, error) {
	if len(seq.Notes) == 0 {
		return nil, fmt.Errorf("pianoroll: empty sequence")
	}
	minKey, maxKey := 128, -1
	var endUs int64
	for _, n := range seq.Notes {
		if n.Key < minKey {
			minKey = n.Key
		}
		if n.Key > maxKey {
			maxKey = n.Key
		}
		if n.EndUs() > endUs {
			endUs = n.EndUs()
		}
	}
	cols := int((endUs + stepUs - 1) / stepUs)
	if cols == 0 {
		cols = 1
	}
	r, err := New(minKey, maxKey, stepUs, cols)
	if err != nil {
		return nil, err
	}
	for _, n := range seq.Notes {
		r.AddNote(n, false)
	}
	return r, nil
}

// AddNote marks the note's cells.  Highlighted notes render differently
// (figure 3's shaded entrances).
func (r *Roll) AddNote(n midi.NoteEvent, highlight bool) {
	if n.Key < r.MinKey || n.Key > r.MaxKey {
		return
	}
	state := On
	if highlight {
		state = Highlight
	}
	c0 := int(n.StartUs / r.StepUs)
	c1 := int((n.EndUs() - 1) / r.StepUs)
	if n.DurUs <= 0 {
		c1 = c0
	}
	for c := c0; c <= c1 && c < r.Columns; c++ {
		if c < 0 {
			continue
		}
		i := (n.Key-r.MinKey)*r.Columns + c
		if r.cells[i] != Highlight { // highlight wins over plain overlap
			r.cells[i] = state
		}
	}
}

// Get returns the cell state for a key and column.
func (r *Roll) Get(key, col int) Cell {
	if key < r.MinKey || key > r.MaxKey || col < 0 || col >= r.Columns {
		return Off
	}
	return r.cells[(key-r.MinKey)*r.Columns+col]
}

// set is used by tests and editing tools.
func (r *Roll) Set(key, col int, c Cell) {
	if key < r.MinKey || key > r.MaxKey || col < 0 || col >= r.Columns {
		return
	}
	r.cells[(key-r.MinKey)*r.Columns+col] = c
}

// ToSequence converts the roll back to a note-event stream: maximal runs
// of consecutive On/Highlight cells become notes (the inverse
// translation of §4.5).  Velocity is fixed at 80.
func (r *Roll) ToSequence() *midi.Sequence {
	seq := &midi.Sequence{TicksPerQuarter: 480}
	for key := r.MinKey; key <= r.MaxKey; key++ {
		col := 0
		for col < r.Columns {
			if r.Get(key, col) == Off {
				col++
				continue
			}
			start := col
			for col < r.Columns && r.Get(key, col) != Off {
				col++
			}
			seq.Notes = append(seq.Notes, midi.NoteEvent{
				Key: key, Velocity: 80,
				StartUs: int64(start) * r.StepUs,
				DurUs:   int64(col-start) * r.StepUs,
			})
		}
	}
	seq.Sort()
	return seq
}

// keyNames for the left gutter of the rendering.
var keyNames = [12]string{"C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"}

// KeyName returns the note name of a MIDI key ("G4" for 67).
func KeyName(key int) string {
	return fmt.Sprintf("%s%d", keyNames[key%12], key/12-1)
}

// Render draws the roll as text: one row per key, high pitches on top
// (§4.5: pitch increases upward), '█' for sounding cells, '▒' for
// highlighted ones.  Rows that are entirely off are skipped when
// compact is true.
func (r *Roll) Render(compact bool) string {
	var b strings.Builder
	for key := r.MaxKey; key >= r.MinKey; key-- {
		any := false
		var row strings.Builder
		for col := 0; col < r.Columns; col++ {
			switch r.Get(key, col) {
			case On:
				row.WriteRune('█')
				any = true
			case Highlight:
				row.WriteRune('▒')
				any = true
			default:
				row.WriteRune('·')
			}
		}
		if compact && !any {
			continue
		}
		fmt.Fprintf(&b, "%4s |%s|\n", KeyName(key), row.String())
	}
	// Time axis.
	fmt.Fprintf(&b, "     +%s+\n", strings.Repeat("-", r.Columns))
	return b.String()
}

// Density returns the fraction of sounding cells, a simple roll metric
// used by analysis clients.
func (r *Roll) Density() float64 {
	on := 0
	for _, c := range r.cells {
		if c != Off {
			on++
		}
	}
	return float64(on) / float64(len(r.cells))
}
