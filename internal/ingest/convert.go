package ingest

import (
	"fmt"

	"repro/internal/biblio"
	"repro/internal/cmn"
	"repro/internal/darms"
	"repro/internal/midi"
)

// MaxIncipitNotes bounds how much thematic material one catalogue entry
// keeps: the index stores incipits (figure 2's opening themes), not
// whole works, so a loader truncates long payloads here.
const MaxIncipitNotes = 32

// DARMSEntry decodes a DARMS source payload into a catalogue entry.
// Pitches are resolved procedurally from the graphical criteria (clef,
// key signature, measure-scoped accidentals — §4.3's derivation)
// without building a full CMN score.
func DARMSEntry(number int, title string, payload []byte) (biblio.Entry, error) {
	e := biblio.Entry{Number: number, Title: title}
	items, err := darms.Parse(string(payload))
	if err != nil {
		return e, fmt.Errorf("%v: %w", err, ErrFormat)
	}
	canon, err := darms.Canonize(items)
	if err != nil {
		return e, fmt.Errorf("%v: %w", err, ErrFormat)
	}
	clef := cmn.TrebleClef
	key := cmn.KeySignature(0)
	ms := cmn.NewMeasureState()
	for _, it := range darms.Flatten(canon) {
		switch x := it.(type) {
		case darms.ClefItem:
			switch x.Letter {
			case 'G':
				clef = cmn.TrebleClef
			case 'F':
				clef = cmn.BassClef
			case 'C':
				clef = cmn.AltoClef
			}
		case darms.KeySigItem:
			if x.Sharp {
				key = cmn.KeySignature(x.Count)
			} else {
				key = cmn.KeySignature(-x.Count)
			}
		case darms.Barline:
			ms.Reset()
		case darms.NoteItem:
			if len(e.Incipit) >= MaxIncipitNotes {
				continue
			}
			num, den, err := darms.DurationBeats(x.Dur, x.Dots)
			if err != nil {
				return e, fmt.Errorf("%v: %w", err, ErrFormat)
			}
			acc := cmn.AccNone
			switch x.Acc {
			case darms.AccSharpCode:
				acc = cmn.AccSharp
			case darms.AccFlatCode:
				acc = cmn.AccFlat
			case darms.AccNaturalCode:
				acc = cmn.AccNatural
			}
			pitch := cmn.ResolvePitch(clef, key, x.Pos-21, acc, ms).MIDI()
			if pitch < 0 || pitch > 127 {
				return e, fmt.Errorf("note %d: pitch %d outside MIDI range: %w", len(e.Incipit)+1, pitch, ErrFormat)
			}
			e.Incipit = append(e.Incipit, biblio.IncipitNote{MIDIPitch: pitch, DurNum: num, DurDen: den})
		}
	}
	if len(e.Incipit) == 0 {
		return e, fmt.Errorf("DARMS payload has no notes: %w", ErrFormat)
	}
	return e, nil
}

// smfUsPerQuarter is the fixed 120 BPM reference the SMF layer writes
// and reads timestamps against.
const smfUsPerQuarter = 500_000

// SMFEntry decodes a Standard MIDI File payload into a catalogue entry.
// Note durations are converted from microseconds back to beats at the
// file's 120 BPM reference and reduced to lowest terms.
func SMFEntry(number int, title string, payload []byte) (biblio.Entry, error) {
	e := biblio.Entry{Number: number, Title: title}
	seq, err := midi.ReadSMF(payload)
	if err != nil {
		return e, fmt.Errorf("%v: %w", err, ErrFormat)
	}
	for _, n := range seq.Notes {
		if len(e.Incipit) >= MaxIncipitNotes {
			break
		}
		if n.Key < 0 || n.Key > 127 {
			return e, fmt.Errorf("note %d: pitch %d outside MIDI range: %w", len(e.Incipit)+1, n.Key, ErrFormat)
		}
		num, den := int64(n.DurUs), int64(smfUsPerQuarter)
		if num <= 0 {
			num, den = 1, 1
		}
		if g := gcd(num, den); g > 1 {
			num, den = num/g, den/g
		}
		e.Incipit = append(e.Incipit, biblio.IncipitNote{MIDIPitch: n.Key, DurNum: num, DurDen: den})
	}
	if len(e.Incipit) == 0 {
		return e, fmt.Errorf("SMF payload has no notes: %w", ErrFormat)
	}
	return e, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ConvertRecord dispatches on the record kind.
func ConvertRecord(rec *Record) (biblio.Entry, error) {
	switch rec.Kind {
	case KindDARMS:
		return DARMSEntry(rec.Number, rec.Title, rec.Payload)
	case KindSMF:
		return SMFEntry(rec.Number, rec.Title, rec.Payload)
	}
	return biblio.Entry{}, fmt.Errorf("unknown record kind %q: %w", rec.Kind, ErrFormat)
}
