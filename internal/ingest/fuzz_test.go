package ingest

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzStream asserts the stream scanner never panics and fails cleanly:
// every record it returns re-serializes through AppendRecord, and any
// error other than a clean EOF wraps ErrFormat (framing) or is an I/O
// error — never a silent desync.
func FuzzStream(f *testing.F) {
	var seed []byte
	seed = AppendRecord(seed, Record{Number: 1, Kind: KindDARMS, Title: "a title", Payload: []byte("'G 21Q /")})
	seed = AppendRecord(seed, Record{Number: 2, Kind: KindSMF, Payload: []byte{0, 1, 2}})
	f.Add(seed)
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("work 1 darms 4 t\nabc"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		sc := NewScanner(bytes.NewReader(stream))
		for {
			rec, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrFormat) {
					t.Fatalf("non-framing error from in-memory stream: %v", err)
				}
				return
			}
			re := AppendRecord(nil, *rec)
			sc2 := NewScanner(bytes.NewReader(re))
			rec2, err := sc2.Next()
			if err != nil {
				t.Fatalf("record failed to re-scan: %v\nrecord: %+v", err, rec)
			}
			if rec2.Number != rec.Number || rec2.Kind != rec.Kind || rec2.Title != rec.Title || !bytes.Equal(rec2.Payload, rec.Payload) {
				t.Fatalf("unstable record round trip: %+v vs %+v", rec, rec2)
			}
		}
	})
}
