package ingest

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/biblio"
	"repro/internal/midi"
	"repro/internal/model"
	"repro/internal/storage"
)

func openIndex(t testing.TB, opts storage.Options) (*biblio.Index, *storage.DB) {
	t.Helper()
	store, err := storage.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := model.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := biblio.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	return ix, store
}

// smfPayload serializes a short monophonic sequence of quarter notes.
func smfPayload(t testing.TB, pitches ...int) []byte {
	t.Helper()
	seq := &midi.Sequence{TicksPerQuarter: 480}
	for i, p := range pitches {
		seq.Notes = append(seq.Notes, midi.NoteEvent{
			Key: p, Velocity: 80, StartUs: int64(i) * 500_000, DurUs: 500_000,
		})
	}
	data, err := midi.WriteSMF(seq)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestScannerRoundTrip(t *testing.T) {
	var stream []byte
	stream = append(stream, "# a comment\n\n"...)
	stream = AppendRecord(stream, Record{Number: 578, Kind: KindDARMS, Title: "Fugue in G minor", Payload: []byte("'G 21Q 22Q /")})
	stream = AppendRecord(stream, Record{Number: 579, Kind: KindSMF, Payload: []byte{0x4D, 0x54, 0x0A, 0x00}})
	sc := NewScanner(bytes.NewReader(stream))
	r1, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Number != 578 || r1.Kind != KindDARMS || r1.Title != "Fugue in G minor" || string(r1.Payload) != "'G 21Q 22Q /" {
		t.Fatalf("r1 = %+v", r1)
	}
	r2, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Number != 579 || r2.Kind != KindSMF || r2.Title != "" || !bytes.Equal(r2.Payload, []byte{0x4D, 0x54, 0x0A, 0x00}) {
		t.Fatalf("r2 = %+v", r2)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestScannerMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":        "wrk 1 darms 0 x\n\n",
		"bad number":        "work -1 darms 0\n\n",
		"unknown kind":      "work 1 mp3 0\n\n",
		"bad size":          "work 1 darms banana\n\n",
		"truncated payload": "work 1 darms 10 t\nabc",
		"missing newline":   "work 1 darms 3 t\nabcwork 2 darms 0\n\n",
	}
	for name, src := range cases {
		sc := NewScanner(strings.NewReader(src))
		if _, err := sc.Next(); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		} else if _, err2 := sc.Next(); !errors.Is(err2, ErrFormat) {
			t.Errorf("%s: scanner not poisoned after error: %v", name, err2)
		}
	}
}

func TestDARMSEntryPitches(t *testing.T) {
	// Treble clef, bottom line upward: E4 F4 G4 A4 = MIDI 64 65 67 69.
	e, err := DARMSEntry(1, "scale", []byte("'G 21Q 22Q 23Q 24Q /"))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{64, 65, 67, 69}
	if len(e.Incipit) != len(want) {
		t.Fatalf("notes = %d, want %d", len(e.Incipit), len(want))
	}
	for i, n := range e.Incipit {
		if n.MIDIPitch != want[i] {
			t.Fatalf("note %d pitch = %d, want %d", i, n.MIDIPitch, want[i])
		}
		if n.DurNum != 1 || n.DurDen != 1 {
			t.Fatalf("note %d duration = %d/%d, want 1/1", i, n.DurNum, n.DurDen)
		}
	}
	// Key signature and measure-scoped accidentals resolve procedurally:
	// 2 sharps (D major) raise F and C; a natural cancels within the bar.
	e, err = DARMSEntry(2, "acc", []byte("'G 'K2# 22Q 22=Q / 22Q"))
	if err != nil {
		t.Fatal(err)
	}
	if got := []int{e.Incipit[0].MIDIPitch, e.Incipit[1].MIDIPitch, e.Incipit[2].MIDIPitch}; got[0] != 66 || got[1] != 65 || got[2] != 66 {
		t.Fatalf("pitches = %v, want [66 65 66]", got)
	}
}

func TestDARMSEntryMalformed(t *testing.T) {
	for name, src := range map[string]string{
		"syntax error":       "'X 21Q",
		"bad duration":       "RZ",
		"inherited duration": "21",
		"no notes":           "'G R2W /",
	} {
		if _, err := DARMSEntry(1, "t", []byte(src)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestSMFEntry(t *testing.T) {
	e, err := SMFEntry(3, "midi", smfPayload(t, 60, 64, 67))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Incipit) != 3 {
		t.Fatalf("notes = %d", len(e.Incipit))
	}
	for i, p := range []int{60, 64, 67} {
		n := e.Incipit[i]
		if n.MIDIPitch != p || n.DurNum != 1 || n.DurDen != 1 {
			t.Fatalf("note %d = %+v, want pitch %d dur 1/1", i, n, p)
		}
	}
}

func TestSMFEntryMalformed(t *testing.T) {
	valid := smfPayload(t, 60, 64, 67)
	for name, payload := range map[string][]byte{
		"empty":           nil,
		"not smf":         []byte("MThd but not really"),
		"truncated chunk": valid[:len(valid)/2],
		"no notes":        smfPayload(t),
	} {
		if _, err := SMFEntry(1, "t", payload); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

// streamOf builds a stream of n alternating DARMS/SMF works numbered
// from 1.
func streamOf(t testing.TB, n int) []byte {
	t.Helper()
	var stream []byte
	for i := 1; i <= n; i++ {
		if i%2 == 1 {
			stream = AppendRecord(stream, Record{Number: i, Kind: KindDARMS, Title: "darms work",
				Payload: []byte("'G 21Q 23Q 25Q 27Q 26Q /")})
		} else {
			stream = AppendRecord(stream, Record{Number: i, Kind: KindSMF, Title: "smf work",
				Payload: smfPayload(t, 60, 64, 67, 72, 71)})
		}
	}
	return stream
}

func TestLoaderEndToEnd(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		ix, _ := openIndex(t, storage.Options{})
		cat, err := ix.NewCatalog("Testverzeichnis", "TV", "thematic")
		if err != nil {
			t.Fatal(err)
		}
		l := NewLoader(ix, Options{BatchSize: 4, DeferIndexes: deferred})
		st, err := l.Load(cat, bytes.NewReader(streamOf(t, 10)))
		if err != nil {
			t.Fatalf("deferred=%v: %v", deferred, err)
		}
		if st.Works != 10 || st.Notes != 50 || st.Batches != 3 {
			t.Fatalf("deferred=%v: stats = %+v", deferred, st)
		}
		if got := ix.DB().Count("CATALOG_ENTRY"); got != 10 {
			t.Fatalf("deferred=%v: entries = %d", deferred, got)
		}
		// The gram index must be live again after the load: an indexed
		// incipit search finds the SMF works (intervals 4 3 5 -1).
		refs, err := ix.SearchIncipit([]int{4, 3, 5, -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 5 {
			t.Fatalf("deferred=%v: search hits = %d, want 5", deferred, len(refs))
		}
		// And lookups by number still resolve through the catalogue order.
		if _, err := ix.Lookup("TV", 7); err != nil {
			t.Fatalf("deferred=%v: lookup: %v", deferred, err)
		}
	}
}

// TestLoaderAbortConsistent: a malformed record mid-stream aborts the
// load, but every batch committed before it stays queryable and the
// deferred indexes are rebuilt — the store is consistent, just short.
func TestLoaderAbortConsistent(t *testing.T) {
	ix, _ := openIndex(t, storage.Options{})
	cat, err := ix.NewCatalog("Testverzeichnis", "TV", "thematic")
	if err != nil {
		t.Fatal(err)
	}
	stream := streamOf(t, 6) // flushes at 4 with BatchSize 4
	stream = AppendRecord(stream, Record{Number: 7, Kind: KindSMF, Payload: []byte("garbage")})
	stream = AppendRecord(stream, Record{Number: 8, Kind: KindDARMS, Payload: []byte("'G 21Q /")})
	l := NewLoader(ix, Options{BatchSize: 4, DeferIndexes: true})
	st, err := l.Load(cat, bytes.NewReader(stream))
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
	if st.Works != 4 || st.Batches != 1 {
		t.Fatalf("stats = %+v, want 4 works in 1 batch", st)
	}
	if got := ix.DB().Count("CATALOG_ENTRY"); got != 4 {
		t.Fatalf("entries = %d, want 4", got)
	}
	// Indexes were rebuilt on the abort path: indexed search works and
	// agrees with the full scan.
	refs, err := ix.SearchIncipit([]int{4, 3, 5, -1})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := ix.SearchIncipitScan([]int{4, 3, 5, -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || len(refs) != len(scan) {
		t.Fatalf("indexed = %d, scan = %d, want 2", len(refs), len(scan))
	}
}

// TestLoaderCheckpointBypass: with a WAL-less durable store, nothing is
// logged during the load and the final checkpoint makes it recoverable.
func TestLoaderCheckpointBypass(t *testing.T) {
	dir := t.TempDir()
	ix, store := openIndex(t, storage.Options{Dir: dir, NoWAL: true})
	cat, err := ix.NewCatalog("Testverzeichnis", "TV", "thematic")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(ix, Options{BatchSize: 4, DeferIndexes: true, Checkpoint: true})
	if _, err := l.Load(cat, bytes.NewReader(streamOf(t, 9))); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*")); len(matches) == 0 {
		t.Fatal("checkpoint wrote nothing")
	}
	ix2, _ := openIndex(t, storage.Options{Dir: dir, NoWAL: true})
	if got := ix2.DB().Count("CATALOG_ENTRY"); got != 9 {
		t.Fatalf("recovered entries = %d, want 9", got)
	}
	refs, err := ix2.SearchIncipit([]int{3, 4, 3, -2})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5 {
		t.Fatalf("recovered search hits = %d, want 5", len(refs))
	}
}

func TestLoadSynthetic(t *testing.T) {
	ix, store := openIndex(t, storage.Options{})
	cat, err := ix.NewCatalog("Testverzeichnis", "TV", "thematic")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(ix, Options{BatchSize: 32, DeferIndexes: true})
	st, err := l.LoadSynthetic(cat, 42, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Works != 100 || st.Batches != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if got := ix.DB().Count("CATALOG_ENTRY"); got != 100 {
		t.Fatalf("entries = %d", got)
	}
	// The ingest.* counters cohere (the invariants ValidateDoc enforces).
	snap := map[string]uint64{}
	for _, m := range store.Obs().Snapshot() {
		if strings.HasPrefix(m.Name, "ingest.") {
			snap[m.Name] = m.Value
		}
	}
	if snap["ingest.works"] != 100 || snap["ingest.batches"] != 4 {
		t.Fatalf("counters = %v", snap)
	}
	if snap["ingest.notes"] < snap["ingest.works"] {
		t.Fatalf("notes %d < works %d", snap["ingest.notes"], snap["ingest.works"])
	}
	// Determinism: a second load with the same seed appends identical
	// incipits (spot-check entry 1 against the generator).
	want := biblio.SyntheticEntry(42, 1)
	ref, err := ix.Lookup("TV", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Incipit) != len(want.Incipit) || got.Incipit[0] != want.Incipit[0] {
		t.Fatalf("entry 1 incipit mismatch: got %v want %v", got.Incipit, want.Incipit)
	}
}
