package ingest

import (
	"fmt"
	"io"
	"time"

	"repro/internal/biblio"
	"repro/internal/obs"
	"repro/internal/value"
)

// Options configures a bulk load.
type Options struct {
	// BatchSize is the number of entries per transaction (one
	// model.BulkInsert each).  Zero means 256.
	BatchSize int
	// DeferIndexes switches the catalogue relations to index-less
	// ingestion for the duration of the load: mutators skip B-tree
	// maintenance and the trees are bulk-built bottom-up from sorted
	// runs at the end (storage.DB.BuildIndexes).  The trees are rebuilt
	// even when the load aborts, so the store is always left coherent.
	DeferIndexes bool
	// Checkpoint writes a checkpoint after a successful load.  Paired
	// with a WAL-less store (storage.Options.NoWAL + Dir) this is the
	// explicit WAL-bypass bulk mode: nothing is logged during the load
	// and durability comes from the final checkpoint image.
	Checkpoint bool
}

// Stats summarizes one load.
type Stats struct {
	Works   int   // entries committed
	Notes   int   // incipit notes committed
	Batches int   // transactions committed
	Bytes   int64 // payload bytes consumed
}

// Loader appends decoded works to a catalogue in batched transactions.
type Loader struct {
	ix  *biblio.Index
	opt Options
	m   loaderMetrics
}

// loaderMetrics are the ingest.* observability handles (all nil-safe).
type loaderMetrics struct {
	works   *obs.Counter   // ingest.works
	notes   *obs.Counter   // ingest.notes
	batches *obs.Counter   // ingest.batches
	errors  *obs.Counter   // ingest.errors
	bytes   *obs.Counter   // ingest.bytes
	batchNs *obs.Histogram // ingest.batch.ns
}

// NewLoader returns a loader over the catalogue index.
func NewLoader(ix *biblio.Index, opt Options) *Loader {
	if opt.BatchSize <= 0 {
		opt.BatchSize = 256
	}
	l := &Loader{ix: ix, opt: opt}
	if reg := ix.DB().Store().Obs(); reg != nil {
		l.m = loaderMetrics{
			works:   reg.Counter("ingest.works"),
			notes:   reg.Counter("ingest.notes"),
			batches: reg.Counter("ingest.batches"),
			errors:  reg.Counter("ingest.errors"),
			bytes:   reg.Counter("ingest.bytes"),
			batchNs: reg.Histogram("ingest.batch.ns"),
		}
	}
	return l
}

// Load streams records from r into the catalogue.  On error the
// already-flushed batches stay committed (each was one transaction),
// the partial batch in memory is discarded, and deferred indexes are
// rebuilt before returning — a mid-stream abort leaves the store
// consistent, just short.  The returned stats cover what was committed.
func (l *Loader) Load(catalog value.Ref, r io.Reader) (Stats, error) {
	var st Stats
	done, err := l.begin()
	if err != nil {
		return st, err
	}
	defer done()
	sc := NewScanner(r)
	batch := make([]biblio.Entry, 0, l.opt.BatchSize)
	notes := 0
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			l.m.errors.Inc()
			return st, err
		}
		entry, err := ConvertRecord(rec)
		if err != nil {
			l.m.errors.Inc()
			return st, fmt.Errorf("work %d: %w", rec.Number, err)
		}
		l.m.bytes.Add(uint64(len(rec.Payload)))
		st.Bytes += int64(len(rec.Payload))
		batch = append(batch, entry)
		notes += len(entry.Incipit)
		if len(batch) >= l.opt.BatchSize {
			if err := l.flush(catalog, &st, batch, notes); err != nil {
				return st, err
			}
			batch, notes = batch[:0], 0
		}
	}
	if len(batch) > 0 {
		if err := l.flush(catalog, &st, batch, notes); err != nil {
			return st, err
		}
	}
	return st, l.finish()
}

// LoadSynthetic generates and loads n deterministic synthetic works
// numbered [start, start+n) — the million-work catalogue workload —
// through the same batching, deferral, and accounting as a stream load.
func (l *Loader) LoadSynthetic(catalog value.Ref, seed int64, start, n int) (Stats, error) {
	var st Stats
	done, err := l.begin()
	if err != nil {
		return st, err
	}
	defer done()
	for loaded := 0; loaded < n; {
		b := l.opt.BatchSize
		if rem := n - loaded; rem < b {
			b = rem
		}
		batch := make([]biblio.Entry, b)
		notes := 0
		for i := range batch {
			batch[i] = biblio.SyntheticEntry(seed, start+loaded+i)
			notes += len(batch[i].Incipit)
		}
		if err := l.flush(catalog, &st, batch, notes); err != nil {
			return st, err
		}
		loaded += b
	}
	return st, l.finish()
}

// begin applies the deferred-index mode and returns the cleanup that
// restores it; the closures capture whether deferral actually engaged.
func (l *Loader) begin() (func(), error) {
	if !l.opt.DeferIndexes {
		return func() {}, nil
	}
	store := l.ix.DB().Store()
	deferred := make([]string, 0, 5)
	for _, rel := range l.ix.BulkRelations() {
		if err := store.DeferIndexes(rel); err != nil {
			for _, d := range deferred {
				_ = store.BuildIndexes(d)
			}
			return nil, err
		}
		deferred = append(deferred, rel)
	}
	return func() {
		for _, rel := range deferred {
			_ = store.BuildIndexes(rel)
		}
	}, nil
}

// finish makes a successful load durable when asked to.
func (l *Loader) finish() error {
	if !l.opt.Checkpoint {
		return nil
	}
	return l.ix.DB().Store().Checkpoint()
}

func (l *Loader) flush(catalog value.Ref, st *Stats, batch []biblio.Entry, notes int) error {
	start := time.Now()
	if _, err := l.ix.AddEntries(catalog, batch); err != nil {
		l.m.errors.Inc()
		return err
	}
	l.m.batchNs.ObserveSince(start)
	l.m.batches.Inc()
	l.m.works.Add(uint64(len(batch)))
	l.m.notes.Add(uint64(notes))
	st.Batches++
	st.Works += len(batch)
	st.Notes += notes
	return nil
}
