// Package ingest implements the streaming bulk-load path: a record
// stream of encoded works (DARMS text or Standard MIDI Files) is
// decoded into thematic-index entries and appended to a catalogue in
// batched transactions, optionally with index maintenance deferred
// until the end of the load.
//
// The stream format is record-oriented so a loader never needs the
// whole input in memory:
//
//	work <number> <kind> <size> <title...>\n
//	<size bytes of payload>\n
//
// where kind is "darms" (payload is DARMS source text) or "smf"
// (payload is a Standard MIDI File).  Blank lines and lines starting
// with '#' between records are ignored.
package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrFormat is wrapped by every malformed-stream error, so callers can
// distinguish bad input from storage failures.
var ErrFormat = errors.New("ingest: malformed stream")

// Record kinds.
const (
	KindDARMS = "darms"
	KindSMF   = "smf"
)

// Record is one work in a bulk-load stream.
type Record struct {
	Number  int    // catalogue number
	Kind    string // KindDARMS or KindSMF
	Title   string
	Payload []byte
}

// AppendRecord serializes rec in stream format onto dst (generators and
// tests; the format is documented on the package).
func AppendRecord(dst []byte, rec Record) []byte {
	dst = append(dst, fmt.Sprintf("work %d %s %d %s\n", rec.Number, rec.Kind, len(rec.Payload), rec.Title)...)
	dst = append(dst, rec.Payload...)
	return append(dst, '\n')
}

// Scanner reads records from a bulk-load stream.
type Scanner struct {
	r   *bufio.Reader
	n   int // records returned so far (1-based in errors)
	err error
}

// NewScanner returns a scanner over r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReader(r)}
}

func (s *Scanner) failf(format string, args ...any) (*Record, error) {
	s.err = fmt.Errorf("record %d: %s: %w", s.n+1, fmt.Sprintf(format, args...), ErrFormat)
	return nil, s.err
}

// Next returns the next record, io.EOF at a clean end of stream, or an
// error wrapping ErrFormat.  After any error the scanner is poisoned
// and keeps returning the same error: a framing failure loses sync, so
// resuming could silently misparse payload bytes as headers.
func (s *Scanner) Next() (*Record, error) {
	if s.err != nil {
		return nil, s.err
	}
	var line string
	for {
		l, err := s.r.ReadString('\n')
		if err == io.EOF && strings.TrimSpace(l) == "" {
			s.err = io.EOF
			return nil, io.EOF
		}
		if err != nil && err != io.EOF {
			s.err = err
			return nil, err
		}
		trimmed := strings.TrimSpace(l)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		line = strings.TrimSuffix(l, "\n")
		break
	}
	fields := strings.SplitN(line, " ", 5)
	if len(fields) < 4 || fields[0] != "work" {
		return s.failf("bad header %q", line)
	}
	number, err := strconv.Atoi(fields[1])
	if err != nil || number < 0 {
		return s.failf("bad work number %q", fields[1])
	}
	kind := fields[2]
	if kind != KindDARMS && kind != KindSMF {
		return s.failf("unknown kind %q", kind)
	}
	size, err := strconv.Atoi(fields[3])
	if err != nil || size < 0 {
		return s.failf("bad payload size %q", fields[3])
	}
	title := ""
	if len(fields) == 5 {
		title = fields[4]
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return s.failf("payload truncated (want %d bytes): %v", size, err)
	}
	if b, err := s.r.ReadByte(); err != nil || b != '\n' {
		return s.failf("missing newline after payload")
	}
	s.n++
	return &Record{Number: number, Kind: kind, Title: title, Payload: payload}, nil
}
