package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestSetGet(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty len")
	}
	if _, ok := tr.Get(key(1)); ok {
		t.Fatal("get on empty")
	}
	if !tr.Set(key(1), 100) {
		t.Fatal("first set should insert")
	}
	if tr.Set(key(1), 200) {
		t.Fatal("second set should update")
	}
	v, ok := tr.Get(key(1))
	if !ok || v != 200 {
		t.Fatalf("get = %d,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatal("len after update")
	}
}

func TestInsertManyOrdered(t *testing.T) {
	tr := New()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Set(key(i), uint64(i*10))
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != uint64(i*10) {
			t.Fatalf("get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestInsertManyRandom(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(5000)
	for _, i := range perm {
		tr.Set(key(i), uint64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full scan must be sorted and complete.
	i := 0
	tr.Ascend(nil, nil, func(k []byte, v uint64) bool {
		if !bytes.Equal(k, key(i)) || v != uint64(i) {
			t.Fatalf("scan at %d: key %x val %d", i, k, v)
		}
		i++
		return true
	})
	if i != 5000 {
		t.Fatalf("scanned %d", i)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 3000
	for i := 0; i < n; i++ {
		tr.Set(key(i), uint64(i))
	}
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	deleted := map[int]bool{}
	for step, i := range perm {
		if !tr.Delete(key(i)) {
			t.Fatalf("delete(%d) failed", i)
		}
		if tr.Delete(key(i)) {
			t.Fatalf("double delete(%d) succeeded", i)
		}
		deleted[i] = true
		if step%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
			for j := 0; j < n; j += 97 {
				_, ok := tr.Get(key(j))
				if ok == deleted[j] {
					t.Fatalf("get(%d) presence wrong", j)
				}
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len after all deletes = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkloadAgainstMap(t *testing.T) {
	tr := New()
	ref := map[string]uint64{}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 20000; op++ {
		k := key(rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			tr.Set(k, v)
			ref[string(k)] = v
		case 2:
			got := tr.Delete(k)
			_, want := ref[string(k)]
			if got != want {
				t.Fatalf("op %d: delete mismatch", op)
			}
			delete(ref, string(k))
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len %d != %d", tr.Len(), len(ref))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, want := range ref {
		got, ok := tr.Get([]byte(k))
		if !ok || got != want {
			t.Fatalf("get(%x) = %d,%v want %d", k, got, ok, want)
		}
	}
}

func TestAtAndRank(t *testing.T) {
	tr := New()
	const n = 2500
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(n) {
		tr.Set(key(i*2), uint64(i)) // even keys only
	}
	for i := 0; i < n; i++ {
		k, v, ok := tr.At(i)
		if !ok || !bytes.Equal(k, key(i*2)) || v != uint64(i) {
			t.Fatalf("At(%d) = %x,%d,%v", i, k, v, ok)
		}
		if r := tr.Rank(key(i * 2)); r != i {
			t.Fatalf("Rank(even %d) = %d", i, r)
		}
		// Rank of a missing odd key equals count of smaller entries.
		if r := tr.Rank(key(i*2 + 1)); r != i+1 {
			t.Fatalf("Rank(odd %d) = %d", i, r)
		}
	}
	if _, _, ok := tr.At(-1); ok {
		t.Fatal("At(-1)")
	}
	if _, _, ok := tr.At(n); ok {
		t.Fatal("At(n)")
	}
}

func TestAtRankAfterDeletes(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(key(i), uint64(i))
	}
	// Delete every third key.
	for i := 0; i < n; i += 3 {
		tr.Delete(key(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			want = append(want, i)
		}
	}
	for pos, i := range want {
		k, _, ok := tr.At(pos)
		if !ok || !bytes.Equal(k, key(i)) {
			t.Fatalf("At(%d) after deletes", pos)
		}
		if r := tr.Rank(key(i)); r != pos {
			t.Fatalf("Rank(%d) = %d want %d", i, r, pos)
		}
	}
}

func TestSeekAndIterate(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(key(i*10), uint64(i))
	}
	it := tr.Seek(key(45)) // between 40 and 50
	if !it.Valid() || !bytes.Equal(it.Key(), key(50)) {
		t.Fatal("seek between keys")
	}
	it = tr.Seek(key(50))
	if !it.Valid() || !bytes.Equal(it.Key(), key(50)) {
		t.Fatal("seek exact")
	}
	it = tr.Seek(key(99999))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
	// Backward iteration from Max.
	it = tr.Max()
	for i := 99; i >= 0; i-- {
		if !it.Valid() || it.Val() != uint64(i) {
			t.Fatalf("backward at %d", i)
		}
		it.Prev()
	}
	if it.Valid() {
		t.Fatal("iterator should exhaust")
	}
	// Min on empty tree.
	if New().Min().Valid() {
		t.Fatal("min of empty")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Set(key(i), uint64(i))
	}
	var got []uint64
	tr.Ascend(key(100), key(110), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Fatalf("range scan: %v", got)
	}
	// Early termination.
	calls := 0
	tr.Ascend(nil, nil, func(k []byte, v uint64) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop: %d", calls)
	}
}

func TestDescendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Set(key(i), uint64(i))
	}
	var got []uint64
	tr.Descend(key(110), key(100), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 109 || got[9] != 100 {
		t.Fatalf("descending range scan: %v", got)
	}
	// Open bounds: full reverse iteration.
	got = got[:0]
	tr.Descend(nil, nil, func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 1000 || got[0] != 999 || got[999] != 0 {
		t.Fatalf("full descend: len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
	// hi beyond the largest key starts at the maximum.
	got = got[:0]
	tr.Descend(key(5000), key(997), func(k []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 999 {
		t.Fatalf("hi past end: %v", got)
	}
	// Early termination.
	calls := 0
	tr.Descend(nil, nil, func(k []byte, v uint64) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop: %d", calls)
	}
	// Empty tree is a no-op.
	empty := New()
	empty.Descend(nil, nil, func(k []byte, v uint64) bool {
		t.Fatal("callback on empty tree")
		return false
	})
}

func TestCountRange(t *testing.T) {
	tr := New()
	if tr.CountRange(nil, nil) != 0 {
		t.Fatal("empty tree count")
	}
	for i := 0; i < 1000; i++ {
		tr.Set(key(i), uint64(i))
	}
	cases := []struct {
		lo, hi []byte
		want   int
	}{
		{nil, nil, 1000},
		{key(100), key(110), 10},
		{key(0), key(1000), 1000},
		{key(500), nil, 500},
		{nil, key(500), 500},
		{key(700), key(700), 0},
		{key(800), key(700), 0}, // inverted range
		{key(2000), nil, 0},     // past the end
	}
	for _, c := range cases {
		if got := tr.CountRange(c.lo, c.hi); got != c.want {
			t.Fatalf("CountRange(%v, %v) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
	// Counts agree with an actual scan on random subranges.
	for i := 0; i < 50; i++ {
		lo, hi := key(i*13%997), key(i*31%997)
		n := 0
		tr.Ascend(lo, hi, func([]byte, uint64) bool { n++; return true })
		if got := tr.CountRange(lo, hi); got != n {
			t.Fatalf("CountRange(%x, %x) = %d, scan says %d", lo, hi, got, n)
		}
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	names := []string{"bach/578", "bach/579", "bach/1080", "beethoven/5", "brahms/4"}
	for i, n := range names {
		tr.Set([]byte(n), uint64(i))
	}
	var got []string
	tr.AscendPrefix([]byte("bach/"), func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	sort.Strings(got)
	if len(got) != 3 || got[0] != "bach/1080" {
		t.Fatalf("prefix scan: %v", got)
	}
	count := 0
	tr.AscendPrefix([]byte("bach/"), func(k []byte, v uint64) bool { count++; return false })
	if count != 1 {
		t.Fatal("prefix early stop")
	}
}

func TestKeyAliasing(t *testing.T) {
	// Set must copy the key; mutating the caller's buffer must not
	// corrupt the tree.
	tr := New()
	k := []byte("mutate-me")
	tr.Set(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutate-me")); !ok {
		t.Fatal("tree aliased caller's key buffer")
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New()
	keys := []string{"", "a", "ab", "abc", "b", "ba", "\x00", "\x00\x01", "zzzz"}
	for i, k := range keys {
		tr.Set([]byte(k), uint64(i))
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	i := 0
	tr.Ascend(nil, nil, func(k []byte, v uint64) bool {
		if string(k) != sorted[i] {
			t.Fatalf("at %d: %q want %q", i, k, sorted[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatal("missing keys")
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(key(i), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Set(key(i), uint64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}

func BenchmarkAt(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Set(key(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.At(i % n)
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Set(key(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 37) % (n - 100)
		count := 0
		tr.Ascend(key(lo), key(lo+100), func(k []byte, v uint64) bool { count++; return true })
		if count != 100 {
			b.Fatalf("count=%d", count)
		}
	}
}

func TestStringSummary(t *testing.T) {
	tr := New()
	tr.Set(key(1), 1)
	if got := tr.String(); got != fmt.Sprintf("btree[%d entries]", 1) {
		t.Errorf("String = %q", got)
	}
}

// TestQuickRandomKeys drives the tree with arbitrary byte-string keys
// from testing/quick and cross-checks Get/Rank/At against a sorted
// reference.
func TestQuickRandomKeys(t *testing.T) {
	prop := func(keys [][]byte) bool {
		tr := New()
		ref := map[string]uint64{}
		for i, k := range keys {
			tr.Set(k, uint64(i))
			ref[string(k)] = uint64(i)
		}
		if tr.Len() != len(ref) {
			return false
		}
		sorted := make([]string, 0, len(ref))
		for k := range ref {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for i, k := range sorted {
			v, ok := tr.Get([]byte(k))
			if !ok || v != ref[k] {
				return false
			}
			if tr.Rank([]byte(k)) != i {
				return false
			}
			gk, gv, ok := tr.At(i)
			if !ok || string(gk) != k || gv != ref[k] {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRange(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Set(key(i), uint64(i))
	}

	// verify checks that the boundaries partition [lo,hi) exhaustively:
	// strictly increasing, inside the range, and the sub-range counts sum
	// to the full count with no sub-range empty.
	verify := func(lo, hi []byte, parts int) {
		t.Helper()
		bounds := tr.SplitRange(lo, hi, parts)
		if len(bounds) > parts-1 {
			t.Fatalf("SplitRange(%v): %d bounds for %d parts", lo, len(bounds), parts)
		}
		prev := lo
		total := 0
		edges := append(append([][]byte{}, bounds...), hi)
		for _, b := range edges {
			if prev != nil && b != nil && bytes.Compare(prev, b) >= 0 {
				t.Fatalf("bounds not increasing: %x >= %x", prev, b)
			}
			n := tr.CountRange(prev, b)
			if n == 0 && len(bounds) > 0 {
				t.Fatalf("empty sub-range [%x, %x)", prev, b)
			}
			total += n
			prev = b
		}
		if want := tr.CountRange(lo, hi); total != want {
			t.Fatalf("sub-ranges cover %d entries, want %d", total, want)
		}
	}

	verify(nil, nil, 8)
	verify(key(100), key(900), 4)
	verify(key(0), key(1000), 16)
	verify(key(500), key(510), 4) // small range: fewer parts than asked
	verify(key(500), key(501), 8) // single entry: no bounds
	if b := tr.SplitRange(nil, nil, 1); b != nil {
		t.Fatalf("parts=1 should yield no bounds, got %d", len(b))
	}
	if b := tr.SplitRange(key(10), key(10), 4); b != nil {
		t.Fatalf("empty range should yield no bounds, got %d", len(b))
	}

	// Balance: with 1000 uniform keys and 8 parts every run should be
	// within 2x of the ideal eighth.
	bounds := tr.SplitRange(nil, nil, 8)
	if len(bounds) != 7 {
		t.Fatalf("want 7 bounds, got %d", len(bounds))
	}
	prev := []byte(nil)
	for _, b := range append(bounds, nil) {
		n := tr.CountRange(prev, b)
		if n < 1000/8/2 || n > 1000/8*2 {
			t.Fatalf("unbalanced run: %d entries", n)
		}
		prev = b
	}

	// Heavy duplicates collapse boundaries rather than emitting equal keys.
	dup := New()
	for i := 0; i < 100; i++ {
		dup.Set(append(key(7), byte(i)), uint64(i)) // same 8-byte prefix
	}
	db := dup.SplitRange(nil, nil, 4)
	for i := 1; i < len(db); i++ {
		if bytes.Compare(db[i-1], db[i]) >= 0 {
			t.Fatalf("duplicate/unordered bounds at %d", i)
		}
	}
}

func TestNewFromSorted(t *testing.T) {
	for _, n := range []int{0, 1, 2, 31, 32, 33, 992, 993, 10_000, 100_000} {
		keys := make([][]byte, n)
		vals := make([]uint64, n)
		for i := 0; i < n; i++ {
			keys[i] = key(i * 3)
			vals[i] = uint64(i * 7)
		}
		tr, err := NewFromSorted(keys, vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: len %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Point lookups, order statistics, and the leaf chain all agree.
		for _, i := range []int{0, 1, n / 3, n / 2, n - 1} {
			if i < 0 || i >= n {
				continue
			}
			if v, ok := tr.Get(key(i * 3)); !ok || v != uint64(i*7) {
				t.Fatalf("n=%d: get(%d) = %d, %v", n, i, v, ok)
			}
			if k, v, ok := tr.At(i); !ok || !bytes.Equal(k, key(i*3)) || v != uint64(i*7) {
				t.Fatalf("n=%d: at(%d) wrong", n, i)
			}
			if r := tr.Rank(key(i * 3)); r != i {
				t.Fatalf("n=%d: rank(%d) = %d", n, i, r)
			}
		}
		got := 0
		tr.Ascend(nil, nil, func(k []byte, v uint64) bool {
			if !bytes.Equal(k, key(got*3)) || v != uint64(got*7) {
				t.Fatalf("n=%d: ascend wrong at %d", n, got)
			}
			got++
			return true
		})
		if got != n {
			t.Fatalf("n=%d: ascend visited %d", n, got)
		}
	}
}

func TestNewFromSortedMutable(t *testing.T) {
	// A bulk-built tree must accept subsequent Set/Delete without
	// corrupting neighbors (leaves share a backing array at build time).
	keys := make([][]byte, 500)
	vals := make([]uint64, 500)
	for i := range keys {
		keys[i] = key(i * 2)
		vals[i] = uint64(i)
	}
	tr, err := NewFromSorted(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Set(key(i*2+1), uint64(1000+i))
	}
	for i := 0; i < 250; i++ {
		tr.Delete(key(i * 4))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 750 {
		t.Fatalf("len %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		if v, ok := tr.Get(key(i*2 + 1)); !ok || v != uint64(1000+i) {
			t.Fatalf("get(%d) = %d, %v", i*2+1, v, ok)
		}
	}
}

func TestNewFromSortedRejectsBadInput(t *testing.T) {
	if _, err := NewFromSorted([][]byte{key(1)}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewFromSorted([][]byte{key(2), key(1)}, []uint64{0, 0}); err == nil {
		t.Fatal("out-of-order keys accepted")
	}
	if _, err := NewFromSorted([][]byte{key(1), key(1)}, []uint64{0, 0}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}
