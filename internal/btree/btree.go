// Package btree implements an in-memory B+tree over byte-string keys with
// order statistics.
//
// The tree serves two roles in the music data manager:
//
//   - Secondary indexes over relations.  §5.2 of the paper observes that
//     relational systems implement ordering "purely as a performance
//     optimization" by sorting records on key attributes; this tree is the
//     mechanism behind that optimization (sorted scans, key-range
//     selections) and the baseline against which the hierarchical-ordering
//     operators are benchmarked.
//
//   - Order-statistics support for hierarchical orderings.  Each internal
//     node maintains subtree cardinalities, so the i'th element under a
//     parent ("the third note in chord x") is found in O(log n), and the
//     rank of an element is computed in O(log n).
//
// Keys are arbitrary byte strings compared with bytes.Compare; callers use
// the order-preserving encoding in package value to index typed tuples.
// Keys are unique; non-unique indexes append a row identifier to the key.
package btree

import (
	"bytes"
	"fmt"
	"strings"
)

// degree is the maximum number of children of an internal node.  Leaves
// hold up to degree-1 entries.  The value 32 keeps nodes around two cache
// lines of key pointers while bounding height at ~4 for a million keys.
const degree = 32

const (
	maxEntries = degree - 1
	minEntries = maxEntries / 2
)

// Tree is an order-statistics B+tree.  The zero value is not usable; call
// New.  Tree is not safe for concurrent mutation; the storage layer
// serializes access through its lock manager.
type Tree struct {
	root *node
	size int
}

// node is either a leaf (children == nil) or an internal node.  In an
// internal node, keys[i] is the smallest key in children[i+1]'s subtree,
// and counts[i] caches the number of entries in children[i]'s subtree.
type node struct {
	keys     [][]byte
	vals     []uint64 // leaf only
	children []*node  // internal only
	counts   []int    // internal only; len == len(children)
	next     *node    // leaf chain for range scans
	prev     *node
}

func (n *node) leaf() bool { return n.children == nil }

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key and whether it exists.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n, key)]
	}
	i, ok := leafIndex(n, key)
	if !ok {
		return 0, false
	}
	return n.vals[i], true
}

// childIndex returns the index of the child of n whose subtree may
// contain key.
func childIndex(n *node, key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, n.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafIndex returns the position of key in leaf n, or the insertion point
// and false.
func leafIndex(n *node, key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(key, n.keys[mid]) {
		case 0:
			return mid, true
		case -1:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return lo, false
}

// Set inserts or updates the value under key.  It reports whether the key
// was newly inserted.
func (t *Tree) Set(key []byte, val uint64) bool {
	k := make([]byte, len(key))
	copy(k, key)
	inserted, split, sepKey, right := t.root.set(k, val)
	if inserted {
		t.size++
	}
	if split {
		old := t.root
		t.root = &node{
			keys:     [][]byte{sepKey},
			children: []*node{old, right},
			counts:   []int{old.count(), right.count()},
		}
	}
	return inserted
}

// NewFromSorted builds a tree from pre-sorted, strictly increasing
// (key, value) pairs by packing full leaves left to right and
// constructing the internal levels bottom-up — O(n) instead of the
// O(n log n) of repeated Set, with no node splits.  Bulk index builds
// use it: collect keys into a sorted run, then build the tree in one
// pass.  The key slices are taken over, not copied; callers must not
// modify them afterwards.
func NewFromSorted(keys [][]byte, vals []uint64) (*Tree, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("btree: %d keys but %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return nil, fmt.Errorf("btree: keys not strictly increasing at position %d", i)
		}
	}
	t := New()
	if len(keys) == 0 {
		return t, nil
	}
	t.size = len(keys)
	// Pack leaves full; the trailing leaf keeps whatever remains.  Full
	// slice expressions cap each leaf at its own region, so a later Set
	// reallocates instead of scribbling on a neighbor's entries.
	var level []*node
	for i := 0; i < len(keys); i += maxEntries {
		j := i + maxEntries
		if j > len(keys) {
			j = len(keys)
		}
		leaf := &node{keys: keys[i:j:j], vals: vals[i:j:j]}
		if len(level) > 0 {
			prev := level[len(level)-1]
			prev.next = leaf
			leaf.prev = prev
		}
		level = append(level, leaf)
	}
	// Build internal levels until one node remains.  Chunks never leave a
	// single orphan node for the last parent.
	for len(level) > 1 {
		var up []*node
		for i := 0; i < len(level); {
			j := i + degree
			if j > len(level) {
				j = len(level)
			}
			if rem := len(level) - j; rem == 1 {
				j--
			}
			kids := level[i:j]
			n := &node{
				children: append([]*node(nil), kids...),
				counts:   make([]int, 0, len(kids)),
				keys:     make([][]byte, 0, len(kids)-1),
			}
			for _, c := range kids {
				n.counts = append(n.counts, c.count())
			}
			for k := 1; k < len(kids); k++ {
				n.keys = append(n.keys, leftmostKey(kids[k]))
			}
			up = append(up, n)
			i = j
		}
		level = up
	}
	t.root = level[0]
	return t, nil
}

// leftmostKey returns the smallest key in n's subtree.
func leftmostKey(n *node) []byte {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

// count returns the number of entries in n's subtree.
func (n *node) count() int {
	if n.leaf() {
		return len(n.keys)
	}
	total := 0
	for _, c := range n.counts {
		total += c
	}
	return total
}

// set inserts into n's subtree.  It returns whether a new entry was
// created and, if n split, the separator key and new right sibling.
func (n *node) set(key []byte, val uint64) (inserted, split bool, sepKey []byte, right *node) {
	if n.leaf() {
		i, found := leafIndex(n, key)
		if found {
			n.vals[i] = val
			return false, false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) > maxEntries {
			sepKey, right = n.splitLeaf()
			return true, true, sepKey, right
		}
		return true, false, nil, nil
	}
	ci := childIndex(n, key)
	ins, sp, sk, r := n.children[ci].set(key, val)
	if ins {
		n.counts[ci]++
	}
	if sp {
		n.counts[ci] = n.children[ci].count()
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sk
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = r
		n.counts = append(n.counts, 0)
		copy(n.counts[ci+2:], n.counts[ci+1:])
		n.counts[ci+1] = r.count()
		if len(n.children) > degree {
			sepKey, right = n.splitInternal()
			return ins, true, sepKey, right
		}
	}
	return ins, false, nil, nil
}

func (n *node) splitLeaf() (sepKey []byte, right *node) {
	mid := len(n.keys) / 2
	right = &node{
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([]uint64(nil), n.vals[mid:]...),
		next: n.next,
		prev: n,
	}
	if n.next != nil {
		n.next.prev = right
	}
	n.next = right
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	return right.keys[0], right
}

func (n *node) splitInternal() (sepKey []byte, right *node) {
	mid := len(n.children) / 2
	sepKey = n.keys[mid-1]
	right = &node{
		keys:     append([][]byte(nil), n.keys[mid:]...),
		children: append([]*node(nil), n.children[mid:]...),
		counts:   append([]int(nil), n.counts[mid:]...),
	}
	n.keys = n.keys[: mid-1 : mid-1]
	n.children = n.children[:mid:mid]
	n.counts = n.counts[:mid:mid]
	return sepKey, right
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key []byte) bool {
	deleted := t.root.delete(key)
	if deleted {
		t.size--
	}
	if !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return deleted
}

func (n *node) delete(key []byte) bool {
	if n.leaf() {
		i, found := leafIndex(n, key)
		if !found {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	ci := childIndex(n, key)
	deleted := n.children[ci].delete(key)
	if !deleted {
		return false
	}
	n.counts[ci]--
	n.rebalance(ci)
	return true
}

// rebalance restores the minimum-occupancy invariant of child ci by
// borrowing from or merging with a sibling.
func (n *node) rebalance(ci int) {
	c := n.children[ci]
	if c.occupancy() >= minEntries {
		return
	}
	// Try to borrow from the left sibling.
	if ci > 0 && n.children[ci-1].occupancy() > minEntries {
		left := n.children[ci-1]
		if c.leaf() {
			last := len(left.keys) - 1
			c.keys = append([][]byte{left.keys[last]}, c.keys...)
			c.vals = append([]uint64{left.vals[last]}, c.vals...)
			left.keys = left.keys[:last]
			left.vals = left.vals[:last]
			n.keys[ci-1] = c.keys[0]
		} else {
			last := len(left.children) - 1
			c.keys = append([][]byte{n.keys[ci-1]}, c.keys...)
			c.children = append([]*node{left.children[last]}, c.children...)
			c.counts = append([]int{left.counts[last]}, c.counts...)
			n.keys[ci-1] = left.keys[last-1]
			left.keys = left.keys[:last-1]
			left.children = left.children[:last]
			left.counts = left.counts[:last]
		}
		n.counts[ci-1] = left.count()
		n.counts[ci] = c.count()
		return
	}
	// Try to borrow from the right sibling.
	if ci < len(n.children)-1 && n.children[ci+1].occupancy() > minEntries {
		right := n.children[ci+1]
		if c.leaf() {
			c.keys = append(c.keys, right.keys[0])
			c.vals = append(c.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			n.keys[ci] = right.keys[0]
		} else {
			c.keys = append(c.keys, n.keys[ci])
			c.children = append(c.children, right.children[0])
			c.counts = append(c.counts, right.counts[0])
			n.keys[ci] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
			right.counts = right.counts[1:]
		}
		n.counts[ci] = c.count()
		n.counts[ci+1] = right.count()
		return
	}
	// Merge with a sibling.
	if ci > 0 {
		ci-- // merge children[ci] and children[ci+1] into children[ci]
	}
	if ci+1 >= len(n.children) {
		return // root with a single child; handled by caller
	}
	left, right := n.children[ci], n.children[ci+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		if right.next != nil {
			right.next.prev = left
		}
	} else {
		left.keys = append(left.keys, n.keys[ci])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
		left.counts = append(left.counts, right.counts...)
	}
	n.keys = append(n.keys[:ci], n.keys[ci+1:]...)
	n.children = append(n.children[:ci+1], n.children[ci+2:]...)
	n.counts = append(n.counts[:ci+1], n.counts[ci+2:]...)
	n.counts[ci] = left.count()
}

// occupancy returns the fill metric used by rebalancing: entries for
// leaves, children for internal nodes.
func (n *node) occupancy() int {
	if n.leaf() {
		return len(n.keys)
	}
	return len(n.children)
}

// At returns the i'th smallest entry (0-based) using the order-statistics
// counts, in O(log n).
func (t *Tree) At(i int) (key []byte, val uint64, ok bool) {
	if i < 0 || i >= t.size {
		return nil, 0, false
	}
	n := t.root
	for !n.leaf() {
		for ci := range n.children {
			if i < n.counts[ci] {
				n = n.children[ci]
				break
			}
			i -= n.counts[ci]
		}
	}
	return n.keys[i], n.vals[i], true
}

// Rank returns the number of entries strictly less than key.
func (t *Tree) Rank(key []byte) int {
	n := t.root
	rank := 0
	for !n.leaf() {
		ci := childIndex(n, key)
		for j := 0; j < ci; j++ {
			rank += n.counts[j]
		}
		n = n.children[ci]
	}
	i, _ := leafIndex(n, key)
	return rank + i
}

// Iter is a forward iterator positioned at a leaf entry.
type Iter struct {
	n *node
	i int
}

// Valid reports whether the iterator points at an entry.
func (it *Iter) Valid() bool { return it.n != nil && it.i < len(it.n.keys) }

// Key returns the current key.  The slice must not be modified.
func (it *Iter) Key() []byte { return it.n.keys[it.i] }

// Val returns the current value.
func (it *Iter) Val() uint64 { return it.n.vals[it.i] }

// Next advances the iterator.
func (it *Iter) Next() {
	it.i++
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
	}
}

// Prev moves the iterator backwards.
func (it *Iter) Prev() {
	it.i--
	for it.n != nil && it.i < 0 {
		it.n = it.n.prev
		if it.n != nil {
			it.i = len(it.n.keys) - 1
		}
	}
}

// Seek returns an iterator positioned at the first entry with key >= key.
func (t *Tree) Seek(key []byte) *Iter {
	n := t.root
	for !n.leaf() {
		n = n.children[childIndex(n, key)]
	}
	i, _ := leafIndex(n, key)
	it := &Iter{n: n, i: i}
	if i >= len(n.keys) {
		it.i = i - 1
		it.Next()
	}
	return it
}

// Min returns an iterator at the smallest entry.
func (t *Tree) Min() *Iter { return t.Seek(nil) }

// Max returns an iterator at the largest entry (invalid if empty).
func (t *Tree) Max() *Iter {
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return &Iter{n: n, i: len(n.keys) - 1}
}

// Ascend calls fn for each entry with lo <= key < hi in order.  A nil lo
// means from the start; a nil hi means to the end.  Iteration stops if fn
// returns false.
func (t *Tree) Ascend(lo, hi []byte, fn func(key []byte, val uint64) bool) {
	it := t.Seek(lo)
	for it.Valid() {
		if hi != nil && bytes.Compare(it.Key(), hi) >= 0 {
			return
		}
		if !fn(it.Key(), it.Val()) {
			return
		}
		it.Next()
	}
}

// Descend calls fn for each entry with lo <= key < hi in descending key
// order.  A nil hi means from the largest entry; a nil lo means down to
// the smallest.  Iteration stops if fn returns false.  This is the
// reverse companion of Ascend, used for descending index range scans.
func (t *Tree) Descend(hi, lo []byte, fn func(key []byte, val uint64) bool) {
	it := t.Max()
	if hi != nil {
		it = t.Seek(hi) // first entry >= hi
		if it.Valid() {
			it.Prev() // last entry < hi
		} else {
			it = t.Max()
		}
	}
	for it.n != nil && it.i >= 0 && it.i < len(it.n.keys) {
		if lo != nil && bytes.Compare(it.Key(), lo) < 0 {
			return
		}
		if !fn(it.Key(), it.Val()) {
			return
		}
		it.Prev()
	}
}

// CountRange returns the number of entries with lo <= key < hi without
// iterating them, using the order-statistics counts (two O(log n) rank
// computations).  Nil bounds are unbounded.  Query planners use this to
// estimate index-range selectivity before choosing an access path.
func (t *Tree) CountRange(lo, hi []byte) int {
	upper := t.size
	if hi != nil {
		upper = t.Rank(hi)
	}
	lower := 0
	if lo != nil {
		lower = t.Rank(lo)
	}
	if upper < lower {
		return 0
	}
	return upper - lower
}

// SplitRange returns up to parts-1 interior boundary keys that divide
// the entries with lo <= key < hi into roughly equal runs, using the
// order-statistics counts (O(parts log n)).  Nil bounds are unbounded.
// The returned keys are copies, strictly increasing, and all inside
// (lo, hi), so [lo, b0), [b0, b1), ... [bk, hi) partition the range.
// Parallel executors use this to carve an index range into morsels.
func (t *Tree) SplitRange(lo, hi []byte, parts int) [][]byte {
	if parts <= 1 {
		return nil
	}
	lower := 0
	if lo != nil {
		lower = t.Rank(lo)
	}
	upper := t.size
	if hi != nil {
		upper = t.Rank(hi)
	}
	n := upper - lower
	if n <= 1 {
		return nil
	}
	if parts > n {
		parts = n
	}
	var bounds [][]byte
	var prev []byte
	for p := 1; p < parts; p++ {
		key, _, ok := t.At(lower + p*n/parts)
		if !ok {
			break
		}
		// Skip duplicate boundaries (heavy key skew) and anything not
		// strictly inside the range.
		if prev != nil && bytes.Compare(key, prev) <= 0 {
			continue
		}
		if lo != nil && bytes.Compare(key, lo) <= 0 {
			continue
		}
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			break
		}
		cp := append([]byte(nil), key...)
		bounds = append(bounds, cp)
		prev = cp
	}
	return bounds
}

// AscendPrefix calls fn for each entry whose key begins with prefix.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key []byte, val uint64) bool) {
	it := t.Seek(prefix)
	for it.Valid() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			return
		}
		if !fn(it.Key(), it.Val()) {
			return
		}
		it.Next()
	}
}

// CheckInvariants verifies structural invariants (sortedness, counts,
// occupancy, leaf chaining) and returns an error describing the first
// violation.  It is used by tests and by the storage engine's consistency
// checker.
func (t *Tree) CheckInvariants() error {
	var prevKey []byte
	var checkNode func(n *node, depth int) (count, height int, err error)
	checkNode = func(n *node, depth int) (int, int, error) {
		if n.leaf() {
			if len(n.keys) != len(n.vals) {
				return 0, 0, fmt.Errorf("leaf keys/vals mismatch")
			}
			for _, k := range n.keys {
				if prevKey != nil && bytes.Compare(prevKey, k) >= 0 {
					return 0, 0, fmt.Errorf("keys out of order: %x >= %x", prevKey, k)
				}
				prevKey = k
			}
			return len(n.keys), 1, nil
		}
		if len(n.children) != len(n.counts) || len(n.keys) != len(n.children)-1 {
			return 0, 0, fmt.Errorf("internal node shape invalid")
		}
		total, h0 := 0, -1
		for ci, c := range n.children {
			cnt, h, err := checkNode(c, depth+1)
			if err != nil {
				return 0, 0, err
			}
			if cnt != n.counts[ci] {
				return 0, 0, fmt.Errorf("count cache wrong at depth %d: have %d want %d", depth, n.counts[ci], cnt)
			}
			if h0 == -1 {
				h0 = h
			} else if h != h0 {
				return 0, 0, fmt.Errorf("unbalanced tree")
			}
			total += cnt
		}
		return total, h0 + 1, nil
	}
	total, _, err := checkNode(t.root, 0)
	if err != nil {
		return err
	}
	if total != t.size {
		return fmt.Errorf("size %d != counted %d", t.size, total)
	}
	return nil
}

// String renders a compact summary for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "btree[%d entries]", t.size)
	return b.String()
}
