package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/mdm"
	"repro/internal/obs"
)

// gate is the admission controller: a fixed pool of execution slots
// plus a bounded wait queue with a deadline.  A statement that cannot
// get a slot within the queue budget is shed with mdm.ErrOverloaded
// instead of piling onto the engine — under overload the server's
// response time for admitted work stays flat and the excess fails fast,
// which a client can retry with backoff.
//
// Pool states, per request: admitted (slot acquired immediately),
// queued (waiting on a slot, counted in server.exec.queued), shed
// (queue full or deadline expired), canceled (the waiter's context
// fired first).
type gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	timeout  time.Duration

	execActive  *obs.Gauge   // server.exec.active
	execQueued  *obs.Gauge   // server.exec.queued
	shed        *obs.Counter // server.admission.shed
	queuedTotal *obs.Counter // server.admission.queued
}

func newGate(maxSessions, maxQueue int, timeout time.Duration, reg *obs.Registry) *gate {
	return &gate{
		slots:       make(chan struct{}, maxSessions),
		maxQueue:    int64(maxQueue),
		timeout:     timeout,
		execActive:  reg.Gauge("server.exec.active"),
		execQueued:  reg.Gauge("server.exec.queued"),
		shed:        reg.Counter("server.admission.shed"),
		queuedTotal: reg.Counter("server.admission.queued"),
	}
}

// acquire obtains an execution slot, queueing up to the gate's deadline.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.execActive.Inc()
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Inc()
		return fmt.Errorf("%w: all %d execution slots busy and the wait queue is full", mdm.ErrOverloaded, cap(g.slots))
	}
	g.execQueued.Inc()
	g.queuedTotal.Inc()
	defer func() {
		g.queued.Add(-1)
		g.execQueued.Dec()
	}()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		g.execActive.Inc()
		return nil
	case <-timer.C:
		g.shed.Inc()
		return fmt.Errorf("%w: no execution slot within %v", mdm.ErrOverloaded, g.timeout)
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", mdm.ErrCanceled, ctx.Err())
	}
}

// release returns a slot to the pool.
func (g *gate) release() {
	<-g.slots
	g.execActive.Dec()
}
