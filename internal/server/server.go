// Package server exposes a music data manager over the network: a TCP
// front end speaking the framed binary protocol of internal/wire, with
// one mdm session per connection, server-side prepared statements, and
// admission control that sheds load past a configured concurrency
// instead of collapsing.
//
// The paper's figure-1 architecture — one shared database back end,
// many music clients — assumed terminals on a timesharing machine;
// this package is the same architecture across a socket.  Group commit
// (one fsync per concurrent batch) and MVCC snapshot reads (lock-free
// retrieves) were built for exactly the concurrency profile a network
// front end produces, and cmd/mdmbench -net measures them through it.
package server

import (
	"context"
	"crypto/subtle"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/mdm"
	"repro/internal/obs"
)

// Options configure a Server.
type Options struct {
	// MaxSessions caps concurrently executing statements (the execution
	// slot pool).  Zero defaults to 64.
	MaxSessions int
	// MaxQueue caps statements waiting for a slot; a request arriving
	// with the queue full is shed immediately.  Zero defaults to
	// 4*MaxSessions.
	MaxQueue int
	// QueueTimeout bounds how long a queued statement waits for a slot
	// before being shed.  Zero defaults to 1s.
	QueueTimeout time.Duration
	// AuthToken, when set, must be presented in the client's Hello.
	// (Auth stub: a shared static token; real credential schemes slot in
	// here.)
	AuthToken string
	// TLS, when set, wraps every accepted connection.  (TLS stub: the
	// config is applied verbatim; certificate management lives with the
	// caller.)
	TLS *tls.Config
	// DrainGrace bounds how long Shutdown waits for in-flight statements
	// before giving up.  Zero defaults to 10s.
	DrainGrace time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxSessions <= 0 {
		out.MaxSessions = 64
	}
	if out.MaxQueue <= 0 {
		out.MaxQueue = 4 * out.MaxSessions
	}
	if out.QueueTimeout <= 0 {
		out.QueueTimeout = time.Second
	}
	if out.DrainGrace <= 0 {
		out.DrainGrace = 10 * time.Second
	}
	return out
}

// serverObs holds the server's metric handles (all nil-safe).
type serverObs struct {
	connsTotal  *obs.Counter   // server.conns.total
	connsActive *obs.Gauge     // server.conns.active
	frameNS     *obs.Histogram // server.frame.ns
	prepared    *obs.Counter   // server.stmts.prepared
	cancels     *obs.Counter   // server.cancels.delivered
}

// Server accepts connections and serves the wire protocol over one MDM.
type Server struct {
	m    *mdm.MDM
	opts Options
	gate *gate
	obs  serverObs

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool

	wg         sync.WaitGroup
	metricsSrv *http.Server
}

// New builds a server over an open manager.  The manager's lifecycle
// stays with the caller: Shutdown drains connections but does not close
// the MDM.
func New(m *mdm.MDM, opts Options) *Server {
	opts = opts.withDefaults()
	reg := m.Obs()
	s := &Server{
		m:     m,
		opts:  opts,
		gate:  newGate(opts.MaxSessions, opts.MaxQueue, opts.QueueTimeout, reg),
		conns: make(map[*conn]struct{}),
		obs: serverObs{
			connsTotal:  reg.Counter("server.conns.total"),
			connsActive: reg.Gauge("server.conns.active"),
			frameNS:     reg.Histogram("server.frame.ns"),
			prepared:    reg.Counter("server.stmts.prepared"),
			cancels:     reg.Counter("server.cancels.delivered"),
		},
	}
	return s
}

// Start listens on addr (TCP, e.g. ":7474" or "127.0.0.1:0") and begins
// accepting connections on a background goroutine.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if s.opts.TLS != nil {
		ln = tls.NewListener(ln, s.opts.TLS)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return mdm.ErrShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ServeMetrics serves the manager's observability snapshot as JSON at
// /metrics on addr, on a background goroutine.
func (s *Server) ServeMetrics(addr string) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.m.Obs().Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	s.metricsSrv = srv
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = srv.Serve(ln)
	}()
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal accept error
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.obs.connsTotal.Inc()
		s.obs.connsActive.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			s.obs.connsActive.Dec()
		}()
	}
}

// Shutdown drains the server: the listener closes, idle connections are
// closed immediately, and in-flight statements run to completion — an
// acknowledged commit is never abandoned mid-drain.  Statements that
// arrive while draining are refused with mdm.ErrShutdown.  Shutdown
// returns once every connection has unwound or ctx/DrainGrace expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	msrv := s.metricsSrv
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.drain()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DrainGrace)
		defer cancel()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Grace expired: sever what remains so wg can unwind.
		s.mu.Lock()
		for c := range s.conns {
			c.hardClose()
		}
		s.mu.Unlock()
		err = fmt.Errorf("mdm server: drain grace expired: %w", ctx.Err())
		<-done
	}
	if msrv != nil {
		msrv.Close()
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// authOK checks the Hello token against the configured one.
func (s *Server) authOK(token string) bool {
	if s.opts.AuthToken == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(s.opts.AuthToken)) == 1
}

// isClosedErr reports a network error from an intentionally closed
// connection, which serve loops treat as a clean exit.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
