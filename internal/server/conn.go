package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mdm"
	"repro/internal/wire"
)

// helloTimeout bounds how long a fresh connection may sit silent before
// presenting its Hello (a slot-squatting defense).
const helloTimeout = 10 * time.Second

// drainLinger is how long a draining connection keeps reading after its
// in-flight statement completes, so requests the client already
// pipelined are answered with ErrShutdown instead of a dead socket.
const drainLinger = 100 * time.Millisecond

// request is one admitted wire message on its way to the worker, with
// the cancelation context the reader registered for it.
type request struct {
	reqID  uint64
	msg    wire.Msg
	ctx    context.Context
	cancel context.CancelFunc
}

// conn is one client connection: a reader goroutine that decodes frames
// and handles out-of-band messages (Cancel, Ping) inline, and a worker
// goroutine that executes statements serially, in arrival order, on the
// connection's own mdm session.
type conn struct {
	srv  *Server
	nc   net.Conn
	wc   *wire.Conn
	sess *mdm.Session

	// stmts is the per-connection prepared-statement table (worker
	// goroutine only).  The parses behind the handles are shared through
	// the manager-wide statement cache.
	stmts    map[uint64]*mdm.Stmt
	nextStmt uint64

	work chan request

	// inflight is the request the reader has handed to the worker and
	// whose context a Cancel frame may fire.
	cmu            sync.Mutex
	inflightReq    uint64
	inflightCancel context.CancelFunc
	hasInflight    bool

	busy      atomic.Bool
	closing   atomic.Bool
	closeOnce sync.Once
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:   s,
		nc:    nc,
		wc:    wire.NewConn(nc),
		sess:  s.m.NewSession(),
		stmts: make(map[uint64]*mdm.Stmt),
		work:  make(chan request),
	}
}

// hardClose severs the socket.  Idempotent; unblocks the reader.
func (c *conn) hardClose() {
	c.closeOnce.Do(func() { c.nc.Close() })
}

// drain begins a graceful close: new statements are refused, the
// in-flight one (if any) completes and is answered, then the socket
// closes.  Idle connections close immediately.
func (c *conn) drain() {
	c.closing.Store(true)
	if !c.busy.Load() {
		c.hardClose()
	}
}

// serve runs the connection to completion.
func (c *conn) serve() {
	defer c.hardClose()
	if !c.handshake() {
		return
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.worker()
	}()
	c.readLoop()
	close(c.work)
	wg.Wait()
	for _, st := range c.stmts {
		st.Close()
	}
}

// handshake reads and answers the Hello frame.
func (c *conn) handshake() bool {
	c.nc.SetReadDeadline(time.Now().Add(helloTimeout))
	reqID, msg, err := c.wc.Read()
	if err != nil {
		return false
	}
	c.nc.SetReadDeadline(time.Time{})
	hello, ok := msg.(wire.Hello)
	if !ok {
		c.wc.Write(reqID, wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("expected hello, got %T", msg)})
		return false
	}
	if hello.Proto != wire.ProtoVersion {
		c.wc.Write(reqID, wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("unsupported protocol version %d (server speaks %d)", hello.Proto, wire.ProtoVersion)})
		return false
	}
	if !c.srv.authOK(hello.Token) {
		c.wc.Write(reqID, wire.ErrorFrom(mdm.ErrAuth))
		return false
	}
	if c.srv.Draining() {
		c.wc.Write(reqID, wire.ErrorFrom(mdm.ErrShutdown))
		return false
	}
	return c.wc.Write(reqID, wire.HelloOK{Proto: wire.ProtoVersion}) == nil
}

// readLoop decodes frames until the connection dies.  Statements are
// handed to the worker (the unbuffered channel applies per-connection
// backpressure); Cancel and Ping are handled inline so they work while
// a statement is executing.
func (c *conn) readLoop() {
	for {
		reqID, msg, err := c.wc.Read()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case wire.Cancel:
			c.cmu.Lock()
			if c.hasInflight && c.inflightReq == m.Req && c.inflightCancel != nil {
				c.inflightCancel()
				c.srv.obs.cancels.Inc()
			}
			c.cmu.Unlock()
		case wire.Ping:
			c.wc.Write(reqID, wire.Pong{})
		case wire.Exec, wire.Prepare, wire.ExecStmt, wire.CloseStmt:
			ctx, cancel := context.WithCancel(context.Background())
			c.cmu.Lock()
			c.inflightReq, c.inflightCancel, c.hasInflight = reqID, cancel, true
			c.cmu.Unlock()
			c.work <- request{reqID: reqID, msg: msg, ctx: ctx, cancel: cancel}
		default:
			c.wc.Write(reqID, wire.Error{Code: wire.CodeInternal, Msg: fmt.Sprintf("unexpected message %T", msg)})
		}
	}
}

// worker executes statements serially in arrival order.
func (c *conn) worker() {
	for req := range c.work {
		c.busy.Store(true)
		c.handle(req)
		req.cancel()
		c.cmu.Lock()
		if c.hasInflight && c.inflightReq == req.reqID {
			c.hasInflight = false
			c.inflightCancel = nil
		}
		c.cmu.Unlock()
		c.busy.Store(false)
		if c.closing.Load() {
			// Keep reading briefly so requests the client pipelined
			// before the drain are refused, not dropped; the reader
			// exits when the deadline fires and serve closes the socket.
			c.nc.SetReadDeadline(time.Now().Add(drainLinger))
		}
	}
}

func (c *conn) writeErr(reqID uint64, err error) {
	c.wc.Write(reqID, wire.ErrorFrom(err))
}

// handle admits and executes one statement request.
func (c *conn) handle(req request) {
	start := time.Now()
	defer c.srv.obs.frameNS.ObserveSince(start)
	if c.closing.Load() || c.srv.Draining() {
		// Queued behind the drain point: refuse rather than start new
		// work.  The statement that was executing when the drain began
		// never reaches here — it completes first.
		c.writeErr(req.reqID, mdm.ErrShutdown)
		return
	}
	if err := c.srv.gate.acquire(req.ctx); err != nil {
		c.writeErr(req.reqID, err)
		return
	}
	defer c.srv.gate.release()
	switch m := req.msg.(type) {
	case wire.Exec:
		res, err := c.sess.ExecContext(req.ctx, m.Src)
		if err != nil {
			c.writeErr(req.reqID, err)
			return
		}
		c.wc.Write(req.reqID, execResultFrame(res))
	case wire.Prepare:
		st, err := c.sess.PrepareContext(req.ctx, m.Src)
		if err != nil {
			c.writeErr(req.reqID, err)
			return
		}
		c.nextStmt++
		c.stmts[c.nextStmt] = st
		c.srv.obs.prepared.Inc()
		c.wc.Write(req.reqID, wire.StmtOK{StmtID: c.nextStmt, NumParams: uint64(st.NumParams())})
	case wire.ExecStmt:
		st, ok := c.stmts[m.StmtID]
		if !ok {
			c.writeErr(req.reqID, fmt.Errorf("%w: statement id %d", mdm.ErrBadStmt, m.StmtID))
			return
		}
		args := make([]any, len(m.Args))
		for i, v := range m.Args {
			args[i] = v
		}
		res, err := st.QueryContext(req.ctx, args...)
		if err != nil {
			c.writeErr(req.reqID, err)
			return
		}
		c.wc.Write(req.reqID, wire.Result{
			Affected: int64(res.Affected),
			Columns:  res.Columns,
			Rows:     res.Rows,
		})
	case wire.CloseStmt:
		st, ok := c.stmts[m.StmtID]
		if !ok {
			c.writeErr(req.reqID, fmt.Errorf("%w: statement id %d", mdm.ErrBadStmt, m.StmtID))
			return
		}
		st.Close()
		delete(c.stmts, m.StmtID)
		c.wc.Write(req.reqID, wire.OK{})
	}
}

// execResultFrame converts a session result for the wire.  DDL ships
// its schema messages as text; QUEL ships structured rows the client
// renders locally.
func execResultFrame(res mdm.ExecResult) wire.Result {
	if res.DDL {
		return wire.Result{DDL: true, Output: res.Output}
	}
	if res.Result == nil {
		return wire.Result{}
	}
	return wire.Result{
		Affected: int64(res.Result.Affected),
		Columns:  res.Result.Columns,
		Rows:     res.Result.Rows,
	}
}
