package server_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/mdm"
	"repro/internal/server"
	"repro/internal/wire"
)

// startServer opens an in-memory manager and serves it on a loopback
// port.
func startServer(t testing.TB, opts server.Options) (*mdm.MDM, *server.Server, string) {
	t.Helper()
	m, err := mdm.Open(mdm.Options{SkipCMN: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	srv := server.New(m, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return m, srv, srv.Addr().String()
}

func dialClient(t testing.TB, addr string, opts client.Options) *client.Client {
	t.Helper()
	opts.Addr = addr
	cl, err := client.Dial(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// defineWorks creates the test schema over the wire.
func defineWorks(t testing.TB, cl *client.Client) {
	t.Helper()
	ctx := context.Background()
	if _, err := cl.ExecContext(ctx, `define entity WORK (title = string, opus = integer)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ExecContext(ctx, `range of w is WORK`); err != nil {
		t.Fatal(err)
	}
}

// slowSrc is a three-way unindexable cross join whose qualification is
// never true: it burns combos (checking ctx as it goes) without
// producing rows.  Runtime scales with the cube of the WORK row count.
const slowSrc = `range of a is WORK
range of b is WORK
range of c is WORK
retrieve (a.opus) where a.opus + b.opus = c.opus + 1000000`

// loadRows appends n rows through a prepared statement.
func loadRows(t testing.TB, cl *client.Client, n int) {
	t.Helper()
	ctx := context.Background()
	st := cl.Prepare(`append to WORK (title = $1, opus = $2)`)
	for i := 0; i < n; i++ {
		if _, err := st.ExecContext(ctx, fmt.Sprintf("w%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeBasic(t *testing.T) {
	_, _, addr := startServer(t, server.Options{})
	cl := dialClient(t, addr, client.Options{})
	ctx := context.Background()
	defineWorks(t, cl)
	res, err := cl.ExecContext(ctx, `append to WORK (title = "Sonata", opus = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	q, err := cl.QueryContext(ctx, `range of w is WORK retrieve (w.title, w.opus) where w.opus = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0].AsString() != "Sonata" || q.Rows[0][1].AsInt() != 1 {
		t.Fatalf("rows: %v", q.Rows)
	}
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	// A parse error crosses the wire as mdm.ErrParse.
	if _, err := cl.ExecContext(ctx, `retrieve (w.`); !errors.Is(err, mdm.ErrParse) {
		t.Fatalf("parse error over wire: %v", err)
	}
	// DDL output crosses as printable text.
	ddl, err := cl.ExecContext(ctx, `define entity MOVEMENT (name = string)`)
	if err != nil {
		t.Fatal(err)
	}
	if !ddl.DDL || ddl.Output == "" {
		t.Fatalf("ddl result: %+v", ddl)
	}
}

func TestServePreparedStatements(t *testing.T) {
	_, _, addr := startServer(t, server.Options{})
	cl := dialClient(t, addr, client.Options{})
	ctx := context.Background()
	defineWorks(t, cl)
	loadRows(t, cl, 10)
	st := cl.Prepare(`range of w is WORK retrieve (w.title) where w.opus = $1`)
	for i := 0; i < 10; i++ {
		q, err := st.QueryContext(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Rows) != 1 || q.Rows[0][0].AsString() != fmt.Sprintf("w%d", i) {
			t.Fatalf("opus %d: %v", i, q.Rows)
		}
	}
	// Wrong arity is refused client-side with the same sentinel the
	// server would use.
	if _, err := st.ExecContext(ctx); !errors.Is(err, mdm.ErrBadParam) {
		t.Fatalf("arity: %v", err)
	}
	// Preparing DDL fails as ErrParse.
	bad := cl.Prepare(`define entity X (a = integer)`)
	if _, err := bad.ExecContext(ctx); !errors.Is(err, mdm.ErrParse) {
		t.Fatalf("prepare DDL: %v", err)
	}
}

func TestServeConcurrentClients(t *testing.T) {
	m, _, addr := startServer(t, server.Options{})
	cl := dialClient(t, addr, client.Options{PoolSize: 8})
	defineWorks(t, cl)
	const (
		workers = 8
		perW    = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	st := cl.Prepare(`append to WORK (title = $1, opus = $2)`)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perW; i++ {
				if _, err := st.ExecContext(ctx, fmt.Sprintf("w%d-%d", w, i), w*perW+i); err != nil {
					errs <- err
					return
				}
				if _, err := cl.QueryContext(ctx, `range of w is WORK retrieve (w.opus) where w.opus = 0`); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	q, err := cl.QueryContext(context.Background(), `range of w is WORK retrieve (w.title)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != workers*perW {
		t.Fatalf("rows = %d, want %d", len(q.Rows), workers*perW)
	}
	if m.Obs().Counter("server.conns.total").Value() == 0 {
		t.Fatal("server.conns.total not counted")
	}
}

// TestServeCancelMidQuery cancels a context while its statement is
// executing server-side: the client sends a Cancel frame, the server
// aborts the join, and the connection survives for the next call.
func TestServeCancelMidQuery(t *testing.T) {
	m, _, addr := startServer(t, server.Options{})
	cl := dialClient(t, addr, client.Options{PoolSize: 1})
	defineWorks(t, cl)
	loadRows(t, cl, 150)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cl.QueryContext(ctx, slowSrc)
	if !errors.Is(err, mdm.ErrCanceled) {
		t.Fatalf("canceled query returned %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancel took %v, statement ran to completion", d)
	}
	if got := m.Obs().Counter("server.cancels.delivered").Value(); got == 0 {
		t.Fatal("cancel not delivered to the in-flight statement")
	}
	// The same pooled connection keeps working.
	q, err := cl.QueryContext(context.Background(), `range of w is WORK retrieve (w.opus) where w.opus = 3`)
	if err != nil {
		t.Fatalf("post-cancel query: %v", err)
	}
	if len(q.Rows) != 1 {
		t.Fatalf("post-cancel rows: %v", q.Rows)
	}
}

// TestServeOverloadSheds drives far more concurrent statements than the
// gate admits and expects ErrOverloaded on the excess — then normal
// service once the burst clears.
func TestServeOverloadSheds(t *testing.T) {
	m, _, addr := startServer(t, server.Options{
		MaxSessions:  1,
		MaxQueue:     1,
		QueueTimeout: 50 * time.Millisecond,
	})
	cl := dialClient(t, addr, client.Options{PoolSize: 8})
	defineWorks(t, cl)
	loadRows(t, cl, 100)

	const burst = 8
	var wg sync.WaitGroup
	var shed, completed, other int
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.QueryContext(context.Background(), slowSrc)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, mdm.ErrOverloaded):
				shed++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("unexpected errors under overload (completed=%d shed=%d other=%d)", completed, shed, other)
	}
	if shed == 0 {
		t.Fatalf("no requests shed (completed=%d)", completed)
	}
	if completed == 0 {
		t.Fatal("no requests completed: overload collapsed the server")
	}
	if m.Obs().Counter("server.admission.shed").Value() == 0 {
		t.Fatal("server.admission.shed not counted")
	}
	// Once the burst clears, service resumes.
	if _, err := cl.QueryContext(context.Background(), `range of w is WORK retrieve (w.opus) where w.opus = 1`); err != nil {
		t.Fatalf("post-overload query: %v", err)
	}
}

// TestServeGracefulDrain pipelines a slow write and a second statement
// on one raw connection, then shuts down mid-write: the in-flight
// append completes and is answered, the queued statement is refused
// with ErrShutdown.
func TestServeGracefulDrain(t *testing.T) {
	_, srv, addr := startServer(t, server.Options{DrainGrace: 10 * time.Second})
	cl := dialClient(t, addr, client.Options{})
	defineWorks(t, cl)
	loadRows(t, cl, 150)

	// Raw wire connection so the two requests can be pipelined.
	rc := dialWire(t, addr, "")
	// In-flight: a slow cross-join replace (commits at the end).  The
	// qualification matches exactly one (a,b,c) combo — a=b=149, c=0 —
	// so the reply proves the write committed.
	slowReplace := `range of a is WORK
range of b is WORK
range of c is WORK
replace a (title = "drained") where a.opus + b.opus = c.opus + 298`
	if err := rc.Write(2, wire.Exec{Src: slowReplace}); err != nil {
		t.Fatal(err)
	}
	// Queued behind it on the same connection.
	if err := rc.Write(3, wire.Exec{Src: `range of w is WORK retrieve (w.opus) where w.opus = 1`}); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond) // let the slow append start executing
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The in-flight append must be answered with success.
	id, msg, err := rc.Read()
	if err != nil {
		t.Fatalf("read in-flight reply: %v", err)
	}
	if id != 2 {
		t.Fatalf("first reply for req %d, want 2", id)
	}
	if e, ok := msg.(wire.Error); ok {
		t.Fatalf("in-flight statement aborted by drain: %v", e.Err())
	}
	if res, ok := msg.(wire.Result); !ok || res.Affected != 1 {
		t.Fatalf("in-flight commit reply: %#v", msg)
	}
	// The queued statement is refused with the shutdown code.
	id, msg, err = rc.Read()
	if err != nil {
		t.Fatalf("read queued reply: %v", err)
	}
	e, ok := msg.(wire.Error)
	if id != 3 || !ok {
		t.Fatalf("queued reply: id=%d %#v", id, msg)
	}
	if !errors.Is(e.Err(), mdm.ErrShutdown) {
		t.Fatalf("queued statement error: %v", e.Err())
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("server not draining after Shutdown")
	}
}

// dialWire opens a raw handshaken wire connection.
func dialWire(t testing.TB, addr, token string) *wire.Conn {
	t.Helper()
	d := net_Dial(t, addr)
	rc := wire.NewConn(d)
	t.Cleanup(func() { rc.Close() })
	if err := rc.Write(1, wire.Hello{Proto: wire.ProtoVersion, Token: token}); err != nil {
		t.Fatal(err)
	}
	_, msg, err := rc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.HelloOK); !ok {
		t.Fatalf("handshake reply: %#v", msg)
	}
	return rc
}

func TestServeAuth(t *testing.T) {
	_, _, addr := startServer(t, server.Options{AuthToken: "sesame"})
	// Wrong token is refused with ErrAuth.
	bad := dialClient(t, addr, client.Options{Token: "wrong"})
	if _, err := bad.ExecContext(context.Background(), `range of w is WORK retrieve (w.opus)`); !errors.Is(err, mdm.ErrAuth) {
		t.Fatalf("wrong token: %v", err)
	}
	// Right token serves.
	good := dialClient(t, addr, client.Options{Token: "sesame"})
	defineWorks(t, good)
	if _, err := good.ExecContext(context.Background(), `append to WORK (title = "x", opus = 1)`); err != nil {
		t.Fatal(err)
	}
}

// TestServeBadStmtID exercises the wire-level unknown-statement error.
func TestServeBadStmtID(t *testing.T) {
	_, _, addr := startServer(t, server.Options{})
	rc := dialWire(t, addr, "")
	if err := rc.Write(2, wire.ExecStmt{StmtID: 999}); err != nil {
		t.Fatal(err)
	}
	_, msg, err := rc.Read()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := msg.(wire.Error)
	if !ok || !errors.Is(e.Err(), mdm.ErrBadStmt) {
		t.Fatalf("reply: %#v", msg)
	}
	// CloseStmt on an unknown id likewise.
	if err := rc.Write(3, wire.CloseStmt{StmtID: 999}); err != nil {
		t.Fatal(err)
	}
	_, msg, err = rc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := msg.(wire.Error); !ok || !errors.Is(e.Err(), mdm.ErrBadStmt) {
		t.Fatalf("close reply: %#v", msg)
	}
}

// TestServeProtocolVersion: a mismatched Hello is refused.
func TestServeProtocolVersion(t *testing.T) {
	_, _, addr := startServer(t, server.Options{})
	d := net_Dial(t, addr)
	rc := wire.NewConn(d)
	defer rc.Close()
	if err := rc.Write(1, wire.Hello{Proto: 9999}); err != nil {
		t.Fatal(err)
	}
	_, msg, err := rc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.Error); !ok {
		t.Fatalf("version mismatch reply: %#v", msg)
	}
}
