package server_test

import (
	"net"
	"testing"
	"time"
)

// net_Dial opens a TCP connection to addr with a test-scoped lifetime.
func net_Dial(t testing.TB, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}
