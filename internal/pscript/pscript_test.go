package pscript

import (
	"math"
	"strings"
	"testing"
)

func run(t *testing.T, src string) (*Interp, *Canvas) {
	t.Helper()
	c := NewCanvas()
	in := New(c)
	if err := in.Run(src); err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return in, c
}

func TestArithmetic(t *testing.T) {
	in, _ := run(t, "1 2 add 3 mul 4 sub 2 div neg")
	if in.Depth() != 1 {
		t.Fatal("depth")
	}
	v, err := in.popNum()
	if err != nil || v != -2.5 {
		t.Fatalf("result = %v %v", v, err)
	}
	in, _ = run(t, "-3 abs 2 dup add add")
	v, _ = in.popNum()
	if v != 7 {
		t.Fatalf("abs/dup: %v", v)
	}
}

func TestStackOps(t *testing.T) {
	in, _ := run(t, "1 2 exch")
	b, _ := in.popNum()
	a, _ := in.popNum()
	if a != 2 || b != 1 {
		t.Fatal("exch")
	}
	in, _ = run(t, "1 2 pop")
	v, _ := in.popNum()
	if v != 1 || in.Depth() != 0 {
		t.Fatal("pop")
	}
}

func TestDefAndProcedures(t *testing.T) {
	in, _ := run(t, "/x 10 def /double { 2 mul } def x double")
	v, _ := in.popNum()
	if v != 20 {
		t.Fatalf("def/proc: %v", v)
	}
	// Nested procedures and exec.
	in, _ = run(t, "{ 1 { 2 add } exec } exec")
	v, _ = in.popNum()
	if v != 3 {
		t.Fatalf("nested exec: %v", v)
	}
}

func TestRepeat(t *testing.T) {
	in, _ := run(t, "0 5 { 2 add } repeat")
	v, _ := in.popNum()
	if v != 10 {
		t.Fatalf("repeat: %v", v)
	}
}

func TestStrokeRecordsPath(t *testing.T) {
	_, c := run(t, "newpath 0 0 moveto 10 0 lineto 10 10 lineto stroke")
	if len(c.Elements) != 1 {
		t.Fatalf("elements: %d", len(c.Elements))
	}
	e := c.Elements[0]
	if e.Filled || len(e.Subpaths) != 1 || len(e.Subpaths[0]) != 3 {
		t.Fatalf("element: %+v", e)
	}
	minX, minY, maxX, maxY := c.Bounds()
	if minX != 0 || minY != 0 || maxX != 10 || maxY != 10 {
		t.Fatalf("bounds: %v %v %v %v", minX, minY, maxX, maxY)
	}
}

func TestRelativeMoves(t *testing.T) {
	_, c := run(t, "newpath 5 5 moveto 10 0 rlineto 0 10 rlineto closepath stroke")
	sp := c.Elements[0].Subpaths[0]
	last := sp[len(sp)-1]
	if last.X != 5 || last.Y != 5 {
		t.Fatalf("closepath should return to start: %+v", last)
	}
	if sp[1].X != 15 || sp[2].Y != 15 {
		t.Fatalf("rlineto: %+v", sp)
	}
}

func TestTransforms(t *testing.T) {
	// translate then scale: point (1,1) lands at (10+2, 20+3).
	_, c := run(t, "10 20 translate 2 3 scale newpath 0 0 moveto 1 1 lineto stroke")
	sp := c.Elements[0].Subpaths[0]
	if sp[0].X != 10 || sp[0].Y != 20 || sp[1].X != 12 || sp[1].Y != 23 {
		t.Fatalf("transform: %+v", sp)
	}
	// rotate 90: x axis becomes y axis.
	_, c = run(t, "90 rotate newpath 0 0 moveto 1 0 lineto stroke")
	sp = c.Elements[0].Subpaths[0]
	if math.Abs(sp[1].X) > 1e-9 || math.Abs(sp[1].Y-1) > 1e-9 {
		t.Fatalf("rotate: %+v", sp)
	}
}

func TestGsaveGrestore(t *testing.T) {
	_, c := run(t, `
gsave 100 100 translate newpath 0 0 moveto 1 0 lineto stroke grestore
newpath 0 0 moveto 1 0 lineto stroke`)
	if len(c.Elements) != 2 {
		t.Fatal("elements")
	}
	if c.Elements[1].Subpaths[0][0].X != 0 {
		t.Fatal("grestore did not restore CTM")
	}
	in := New(NewCanvas())
	if err := in.Run("grestore"); err == nil {
		t.Fatal("grestore on empty stack accepted")
	}
}

func TestArcAndFill(t *testing.T) {
	_, c := run(t, "newpath 0 0 10 0 360 arc fill")
	e := c.Elements[0]
	if !e.Filled {
		t.Fatal("fill flag")
	}
	minX, _, maxX, _ := c.Bounds()
	if math.Abs(minX+10) > 0.01 || math.Abs(maxX-10) > 0.01 {
		t.Fatalf("circle bounds: %v %v", minX, maxX)
	}
	// Rasterized filled circle has many more pixels than its outline.
	bmFill := c.Rasterize(40, 40)
	c2 := NewCanvas()
	in2 := New(c2)
	in2.Run("newpath 0 0 10 0 360 arc stroke")
	bmStroke := c2.Rasterize(40, 40)
	if bmFill.Count() < 2*bmStroke.Count() {
		t.Fatalf("fill %d vs stroke %d pixels", bmFill.Count(), bmStroke.Count())
	}
}

func TestShow(t *testing.T) {
	_, c := run(t, "newpath 5 5 moveto (GLO-) show")
	found := false
	for _, e := range c.Elements {
		if e.Text == "GLO-" && e.TextAt.X == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("text element missing: %+v", c.Elements)
	}
	in := New(NewCanvas())
	if err := in.Run("(x) show"); err == nil {
		t.Fatal("show without current point accepted")
	}
}

func TestSetupFragmentsAndStemFunction(t *testing.T) {
	// The §6.2 stem-drawing flow: push attribute values, run set-up
	// fragments, then the GraphDef body.
	c := NewCanvas()
	in := New(c)
	// Attribute values xpos=4, ypos=10, length=7, direction=-1 (down).
	in.Push(4)
	if err := in.Run("/xpos exch def"); err != nil {
		t.Fatal(err)
	}
	in.Push(10)
	in.Run("/ypos exch def")
	in.Push(7)
	in.Run("/length exch def")
	in.Push(-1)
	in.Run("/direction exch def")
	if err := in.Run("newpath xpos ypos moveto 0 length direction mul rlineto stroke"); err != nil {
		t.Fatal(err)
	}
	sp := c.Elements[0].Subpaths[0]
	if sp[0].X != 4 || sp[0].Y != 10 || sp[1].Y != 3 {
		t.Fatalf("stem: %+v", sp)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"add",                 // underflow
		"1 0 div",             // division by zero
		"frobnicate",          // undefined name
		"}",                   // unmatched brace
		"{ 1",                 // unterminated proc
		"(unterminated",       // unterminated string
		"1 2 lineto",          // no current point
		"5 /x def",            // def on non-literal... actually /x 5 def reversed
		"1 exec",              // exec non-procedure
		"(s) 3 add",           // type error
		"newpath 1 1 rmoveto", // no current point
	}
	for _, src := range bad {
		in := New(NewCanvas())
		if err := in.Run(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestExecutionLimit(t *testing.T) {
	in := New(NewCanvas())
	err := in.Run("/loop { loop } def loop")
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("runaway recursion: %v", err)
	}
}

func TestBitmapLine(t *testing.T) {
	bm := NewBitmap(10, 10)
	bm.Line(0, 0, 9, 9)
	for i := 0; i < 10; i++ {
		if !bm.Get(i, i) {
			t.Fatalf("diagonal pixel (%d,%d) missing", i, i)
		}
	}
	bm.Set(-1, -1) // out of range must not panic
	if bm.Get(100, 100) {
		t.Fatal("out of range get")
	}
	ascii := bm.ASCII()
	if !strings.HasPrefix(ascii, "#") || len(strings.Split(strings.TrimSpace(ascii), "\n")) != 10 {
		t.Fatal("ascii rendering")
	}
}

func TestCanvasString(t *testing.T) {
	_, c := run(t, "newpath 0 0 moveto 1 1 lineto stroke newpath 0 0 moveto (t) show")
	if got := c.String(); got != "canvas[1 strokes, 0 fills, 1 texts]" {
		t.Fatalf("String: %q", got)
	}
}

func BenchmarkStemDraw(b *testing.B) {
	src := "newpath 4 10 moveto 0 7 rlineto stroke"
	for i := 0; i < b.N; i++ {
		in := New(NewCanvas())
		if err := in.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPushStringAndObjectString(t *testing.T) {
	in := New(NewCanvas())
	in.PushString("hello")
	in.Run("newpath 0 0 moveto")
	if err := in.Run("show"); err != nil {
		t.Fatalf("show after PushString: %v", err)
	}
	// Object renderings for error messages.
	objs, err := scan(`3.5 /lit name (str) { 1 }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"3.5", "/lit", "name", "(str)", "{...1}"}
	for i, o := range objs {
		if o.String() != want[i] {
			t.Errorf("object %d: %q want %q", i, o.String(), want[i])
		}
	}
}
