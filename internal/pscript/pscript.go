// Package pscript implements a small PostScript-subset interpreter used
// to execute the graphical definitions (GraphDef functions) of §6.2 of
// the paper.
//
// The paper stores, for each graphical entity type (stems, note heads,
// clefs, ...), an executable drawing function plus per-attribute set-up
// fragments (figure 10).  The subset implemented here covers what score
// drawing needs: the operand stack, name definitions, procedures,
// arithmetic, path construction (moveto/lineto/rmoveto/rlineto/arc/
// closepath), painting (stroke/fill), text (show), graphics state
// (gsave/grestore, translate/scale/rotate, setlinewidth/setgray), and
// the repeat loop.  Rendering targets an in-memory vector canvas that
// records painted paths and can rasterize them to a bitmap for tests and
// ASCII proofs.
package pscript

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Object is a PostScript object: a number, a name (executable or
// literal), a string, or a procedure.
type Object struct {
	Num   float64
	Name  string
	Str   string
	Proc  []Object
	kind  objKind
	isLit bool // literal name (/x)
}

type objKind uint8

const (
	kindNum objKind = iota
	kindName
	kindString
	kindProc
)

func numObj(f float64) Object { return Object{kind: kindNum, Num: f} }
func nameObj(s string, lit bool) Object {
	return Object{kind: kindName, Name: s, isLit: lit}
}

// String renders the object for error messages.
func (o Object) String() string {
	switch o.kind {
	case kindNum:
		return strconv.FormatFloat(o.Num, 'g', -1, 64)
	case kindName:
		if o.isLit {
			return "/" + o.Name
		}
		return o.Name
	case kindString:
		return "(" + o.Str + ")"
	case kindProc:
		return fmt.Sprintf("{...%d}", len(o.Proc))
	}
	return "?"
}

// scan tokenizes PostScript source into objects (procedures nested).
func scan(src string) ([]Object, error) {
	var out []Object
	stack := [][]Object{}
	push := func(o Object) {
		if len(stack) > 0 {
			stack[len(stack)-1] = append(stack[len(stack)-1], o)
		} else {
			out = append(out, o)
		}
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			stack = append(stack, nil)
			i++
		case c == '}':
			if len(stack) == 0 {
				return nil, fmt.Errorf("pscript: unmatched }")
			}
			proc := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			push(Object{kind: kindProc, Proc: proc})
			i++
		case c == '(':
			depth := 1
			j := i + 1
			var b strings.Builder
			for j < len(src) && depth > 0 {
				switch src[j] {
				case '(':
					depth++
					b.WriteByte(src[j])
				case ')':
					depth--
					if depth > 0 {
						b.WriteByte(src[j])
					}
				default:
					b.WriteByte(src[j])
				}
				j++
			}
			if depth != 0 {
				return nil, fmt.Errorf("pscript: unterminated string")
			}
			push(Object{kind: kindString, Str: b.String()})
			i = j
		case c == '/':
			j := i + 1
			for j < len(src) && !isDelim(src[j]) {
				j++
			}
			push(nameObj(src[i+1:j], true))
			i = j
		case (c >= '0' && c <= '9') || c == '-' || c == '.':
			j := i
			if c == '-' || c == '.' {
				j++
			}
			for j < len(src) && !isDelim(src[j]) {
				j++
			}
			f, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				// A lone "-" style token is a name (e.g. nothing here),
				// report cleanly.
				return nil, fmt.Errorf("pscript: bad number %q", src[i:j])
			}
			push(numObj(f))
			i = j
		default:
			j := i
			for j < len(src) && !isDelim(src[j]) {
				j++
			}
			push(nameObj(src[i:j], false))
			i = j
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("pscript: unmatched {")
	}
	return out, nil
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '{', '}', '(', ')', '/', '%':
		return true
	}
	return false
}

// matrix is a 2D affine transform [a b c d tx ty]:
// x' = a*x + c*y + tx ; y' = b*x + d*y + ty.
type matrix struct{ a, b, c, d, tx, ty float64 }

var identity = matrix{a: 1, d: 1}

func (m matrix) apply(x, y float64) (float64, float64) {
	return m.a*x + m.c*y + m.tx, m.b*x + m.d*y + m.ty
}

func (m matrix) mul(n matrix) matrix {
	return matrix{
		a:  n.a*m.a + n.b*m.c,
		b:  n.a*m.b + n.b*m.d,
		c:  n.c*m.a + n.d*m.c,
		d:  n.c*m.b + n.d*m.d,
		tx: n.tx*m.a + n.ty*m.c + m.tx,
		ty: n.tx*m.b + n.ty*m.d + m.ty,
	}
}

// gstate is the graphics state.
type gstate struct {
	ctm       matrix
	lineWidth float64
	gray      float64
	curX      float64 // current point in device space
	curY      float64
	hasCur    bool
}

// Interp is a PostScript-subset interpreter bound to a canvas.
type Interp struct {
	stack  []Object
	dict   map[string]Object
	gs     gstate
	gstack []gstate
	canvas *Canvas
	path   []Point // current path in device space
	subs   [][]Point
	steps  int
}

// maxSteps bounds execution so a buggy GraphDef cannot loop forever.
// Drawing one score symbol takes tens of steps; a whole page takes
// thousands.
const maxSteps = 100_000

// New returns an interpreter drawing onto canvas.
func New(canvas *Canvas) *Interp {
	return &Interp{
		dict:   make(map[string]Object),
		gs:     gstate{ctm: identity, lineWidth: 1, gray: 0},
		canvas: canvas,
	}
}

// Push pushes a number (used by the catalog layer to pass attribute
// values before running set-up fragments).
func (in *Interp) Push(f float64) { in.stack = append(in.stack, numObj(f)) }

// PushString pushes a string operand.
func (in *Interp) PushString(s string) {
	in.stack = append(in.stack, Object{kind: kindString, Str: s})
}

// Depth returns the operand stack depth.
func (in *Interp) Depth() int { return len(in.stack) }

// Run executes PostScript source.
func (in *Interp) Run(src string) error {
	objs, err := scan(src)
	if err != nil {
		return err
	}
	return in.exec(objs)
}

func (in *Interp) exec(objs []Object) error {
	for _, o := range objs {
		if err := in.execOne(o); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execOne(o Object) error {
	in.steps++
	if in.steps > maxSteps {
		return fmt.Errorf("pscript: execution limit exceeded")
	}
	switch o.kind {
	case kindNum, kindString, kindProc:
		in.stack = append(in.stack, o)
		return nil
	case kindName:
		if o.isLit {
			in.stack = append(in.stack, o)
			return nil
		}
		if def, ok := in.dict[o.Name]; ok {
			if def.kind == kindProc {
				return in.exec(def.Proc)
			}
			in.stack = append(in.stack, def)
			return nil
		}
		return in.operator(o.Name)
	}
	return fmt.Errorf("pscript: cannot execute %s", o)
}

func (in *Interp) pop() (Object, error) {
	if len(in.stack) == 0 {
		return Object{}, fmt.Errorf("pscript: stack underflow")
	}
	o := in.stack[len(in.stack)-1]
	in.stack = in.stack[:len(in.stack)-1]
	return o, nil
}

func (in *Interp) popNum() (float64, error) {
	o, err := in.pop()
	if err != nil {
		return 0, err
	}
	if o.kind != kindNum {
		return 0, fmt.Errorf("pscript: expected number, found %s", o)
	}
	return o.Num, nil
}

func (in *Interp) pop2Num() (a, b float64, err error) {
	b, err = in.popNum()
	if err != nil {
		return
	}
	a, err = in.popNum()
	return
}

func (in *Interp) operator(name string) error {
	switch name {
	case "add", "sub", "mul", "div":
		a, b, err := in.pop2Num()
		if err != nil {
			return err
		}
		var r float64
		switch name {
		case "add":
			r = a + b
		case "sub":
			r = a - b
		case "mul":
			r = a * b
		case "div":
			if b == 0 {
				return fmt.Errorf("pscript: division by zero")
			}
			r = a / b
		}
		in.Push(r)
	case "neg":
		a, err := in.popNum()
		if err != nil {
			return err
		}
		in.Push(-a)
	case "abs":
		a, err := in.popNum()
		if err != nil {
			return err
		}
		in.Push(math.Abs(a))
	case "dup":
		if len(in.stack) == 0 {
			return fmt.Errorf("pscript: stack underflow")
		}
		in.stack = append(in.stack, in.stack[len(in.stack)-1])
	case "pop":
		_, err := in.pop()
		return err
	case "exch":
		if len(in.stack) < 2 {
			return fmt.Errorf("pscript: stack underflow")
		}
		n := len(in.stack)
		in.stack[n-1], in.stack[n-2] = in.stack[n-2], in.stack[n-1]
	case "def":
		v, err := in.pop()
		if err != nil {
			return err
		}
		k, err := in.pop()
		if err != nil {
			return err
		}
		if k.kind != kindName || !k.isLit {
			return fmt.Errorf("pscript: def requires a literal name, found %s", k)
		}
		in.dict[k.Name] = v
	case "exec":
		p, err := in.pop()
		if err != nil {
			return err
		}
		if p.kind != kindProc {
			return fmt.Errorf("pscript: exec requires a procedure")
		}
		return in.exec(p.Proc)
	case "repeat":
		p, err := in.pop()
		if err != nil {
			return err
		}
		n, err := in.popNum()
		if err != nil {
			return err
		}
		if p.kind != kindProc {
			return fmt.Errorf("pscript: repeat requires a procedure")
		}
		for i := 0; i < int(n); i++ {
			if err := in.exec(p.Proc); err != nil {
				return err
			}
		}
	case "newpath":
		in.path = nil
		in.subs = nil
		in.gs.hasCur = false
	case "moveto":
		x, y, err := in.pop2Num()
		if err != nil {
			return err
		}
		in.flushSub()
		dx, dy := in.gs.ctm.apply(x, y)
		in.setCur(dx, dy)
		in.path = append(in.path, Point{dx, dy})
	case "lineto":
		x, y, err := in.pop2Num()
		if err != nil {
			return err
		}
		if !in.gs.hasCur {
			return fmt.Errorf("pscript: lineto with no current point")
		}
		dx, dy := in.gs.ctm.apply(x, y)
		in.setCur(dx, dy)
		in.path = append(in.path, Point{dx, dy})
	case "rmoveto", "rlineto":
		x, y, err := in.pop2Num()
		if err != nil {
			return err
		}
		if !in.gs.hasCur {
			return fmt.Errorf("pscript: %s with no current point", name)
		}
		// Relative motion transforms by the linear part only.
		dx := in.gs.ctm.a*x + in.gs.ctm.c*y
		dy := in.gs.ctm.b*x + in.gs.ctm.d*y
		nx, ny := in.gs.curX+dx, in.gs.curY+dy
		if name == "rmoveto" {
			in.flushSub()
		}
		in.setCur(nx, ny)
		in.path = append(in.path, Point{nx, ny})
	case "closepath":
		if len(in.path) > 0 {
			in.path = append(in.path, in.path[0])
			in.setCur(in.path[0].X, in.path[0].Y)
		}
	case "arc":
		// x y r a1 a2 arc — approximate with line segments.
		a2, err := in.popNum()
		if err != nil {
			return err
		}
		a1, err := in.popNum()
		if err != nil {
			return err
		}
		r, err := in.popNum()
		if err != nil {
			return err
		}
		x, y, err := in.pop2Num()
		if err != nil {
			return err
		}
		const segs = 24
		for i := 0; i <= segs; i++ {
			ang := (a1 + (a2-a1)*float64(i)/segs) * math.Pi / 180
			px, py := x+r*math.Cos(ang), y+r*math.Sin(ang)
			dx, dy := in.gs.ctm.apply(px, py)
			in.setCur(dx, dy)
			in.path = append(in.path, Point{dx, dy})
		}
	case "stroke", "fill":
		in.flushSub()
		if len(in.subs) > 0 {
			in.canvas.paint(in.subs, name == "fill", in.gs.lineWidth, in.gs.gray)
		}
		in.subs = nil
		in.path = nil
		in.gs.hasCur = false
	case "show":
		o, err := in.pop()
		if err != nil {
			return err
		}
		if o.kind != kindString {
			return fmt.Errorf("pscript: show requires a string")
		}
		if !in.gs.hasCur {
			return fmt.Errorf("pscript: show with no current point")
		}
		in.canvas.text(in.gs.curX, in.gs.curY, o.Str, in.gs.gray)
	case "setlinewidth":
		w, err := in.popNum()
		if err != nil {
			return err
		}
		in.gs.lineWidth = w
	case "setgray":
		g, err := in.popNum()
		if err != nil {
			return err
		}
		in.gs.gray = g
	case "translate":
		x, y, err := in.pop2Num()
		if err != nil {
			return err
		}
		in.gs.ctm = in.gs.ctm.mul(matrix{a: 1, d: 1, tx: x, ty: y})
	case "scale":
		x, y, err := in.pop2Num()
		if err != nil {
			return err
		}
		in.gs.ctm = in.gs.ctm.mul(matrix{a: x, d: y})
	case "rotate":
		a, err := in.popNum()
		if err != nil {
			return err
		}
		s, c := math.Sincos(a * math.Pi / 180)
		in.gs.ctm = in.gs.ctm.mul(matrix{a: c, b: s, c: -s, d: c})
	case "gsave":
		in.gstack = append(in.gstack, in.gs)
	case "grestore":
		if len(in.gstack) == 0 {
			return fmt.Errorf("pscript: grestore with empty graphics stack")
		}
		in.gs = in.gstack[len(in.gstack)-1]
		in.gstack = in.gstack[:len(in.gstack)-1]
	default:
		return fmt.Errorf("pscript: undefined name %q", name)
	}
	return nil
}

func (in *Interp) setCur(x, y float64) {
	in.gs.curX, in.gs.curY, in.gs.hasCur = x, y, true
}

// flushSub moves the current subpath into the pending subpath list.
func (in *Interp) flushSub() {
	if len(in.path) > 1 {
		in.subs = append(in.subs, in.path)
	}
	in.path = nil
}
