package pscript

import (
	"fmt"
	"math"
	"strings"
)

// Point is a device-space coordinate.
type Point struct{ X, Y float64 }

// Element is one painted canvas element: a stroked or filled path, or a
// text run.
type Element struct {
	Subpaths  [][]Point
	Filled    bool
	LineWidth float64
	Gray      float64
	Text      string // non-empty for text elements
	TextAt    Point
}

// Canvas records painted elements in device space (y increases upward,
// as in PostScript).
type Canvas struct {
	Elements []Element
}

// NewCanvas returns an empty canvas.
func NewCanvas() *Canvas { return &Canvas{} }

func (c *Canvas) paint(subs [][]Point, filled bool, width, gray float64) {
	cp := make([][]Point, len(subs))
	for i, s := range subs {
		cp[i] = append([]Point(nil), s...)
	}
	c.Elements = append(c.Elements, Element{
		Subpaths: cp, Filled: filled, LineWidth: width, Gray: gray,
	})
}

func (c *Canvas) text(x, y float64, s string, gray float64) {
	c.Elements = append(c.Elements, Element{Text: s, TextAt: Point{x, y}, Gray: gray})
}

// Bounds returns the bounding box of all painted geometry.
func (c *Canvas) Bounds() (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	add := func(p Point) {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	for _, e := range c.Elements {
		for _, sp := range e.Subpaths {
			for _, p := range sp {
				add(p)
			}
		}
		if e.Text != "" {
			add(e.TextAt)
		}
	}
	if math.IsInf(minX, 1) {
		return 0, 0, 0, 0
	}
	return minX, minY, maxX, maxY
}

// Rasterize renders the canvas geometry onto a w×h bitmap, mapping the
// canvas bounds to the bitmap with a small margin.  Strokes draw their
// segments; fills draw their outlines and interior scanlines.
func (c *Canvas) Rasterize(w, h int) *Bitmap {
	bm := NewBitmap(w, h)
	minX, minY, maxX, maxY := c.Bounds()
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	margin := 1.0
	sx := (float64(w) - 2*margin) / spanX
	sy := (float64(h) - 2*margin) / spanY
	toPix := func(p Point) (int, int) {
		x := margin + (p.X-minX)*sx
		y := float64(h) - 1 - (margin + (p.Y-minY)*sy) // flip: bitmap y grows down
		return int(math.Round(x)), int(math.Round(y))
	}
	for _, e := range c.Elements {
		for _, sp := range e.Subpaths {
			for i := 1; i < len(sp); i++ {
				x0, y0 := toPix(sp[i-1])
				x1, y1 := toPix(sp[i])
				bm.Line(x0, y0, x1, y1)
			}
			if e.Filled {
				bm.fillPolygon(sp, toPix)
			}
		}
	}
	return bm
}

// Bitmap is a simple 1-bit raster.
type Bitmap struct {
	W, H int
	Pix  []bool
}

// NewBitmap returns a cleared bitmap.
func NewBitmap(w, h int) *Bitmap { return &Bitmap{W: w, H: h, Pix: make([]bool, w*h)} }

// Set marks a pixel (ignoring out-of-range coordinates).
func (b *Bitmap) Set(x, y int) {
	if x >= 0 && x < b.W && y >= 0 && y < b.H {
		b.Pix[y*b.W+x] = true
	}
}

// Get reports a pixel.
func (b *Bitmap) Get(x, y int) bool {
	if x < 0 || x >= b.W || y < 0 || y >= b.H {
		return false
	}
	return b.Pix[y*b.W+x]
}

// Count returns the number of set pixels.
func (b *Bitmap) Count() int {
	n := 0
	for _, p := range b.Pix {
		if p {
			n++
		}
	}
	return n
}

// Line draws a line segment with Bresenham's algorithm.
func (b *Bitmap) Line(x0, y0, x1, y1 int) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		b.Set(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// fillPolygon scan-fills the polygon given in canvas coordinates.
func (b *Bitmap) fillPolygon(sp []Point, toPix func(Point) (int, int)) {
	if len(sp) < 3 {
		return
	}
	pts := make([][2]int, len(sp))
	minY, maxY := b.H, 0
	for i, p := range sp {
		x, y := toPix(p)
		pts[i] = [2]int{x, y}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	if minY < 0 {
		minY = 0
	}
	if maxY >= b.H {
		maxY = b.H - 1
	}
	for y := minY; y <= maxY; y++ {
		var xs []int
		for i := 0; i < len(pts); i++ {
			j := (i + 1) % len(pts)
			y0, y1 := pts[i][1], pts[j][1]
			if y0 == y1 {
				continue
			}
			if (y >= y0 && y < y1) || (y >= y1 && y < y0) {
				x := pts[i][0] + (y-y0)*(pts[j][0]-pts[i][0])/(y1-y0)
				xs = append(xs, x)
			}
		}
		sortInts(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			for x := xs[i]; x <= xs[i+1]; x++ {
				b.Set(x, y)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ASCII renders the bitmap as text, one character per pixel ('#' set,
// '.' clear), for golden tests and terminal proofs.
func (b *Bitmap) ASCII() string {
	var sb strings.Builder
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String summarizes the canvas.
func (c *Canvas) String() string {
	strokes, fills, texts := 0, 0, 0
	for _, e := range c.Elements {
		switch {
		case e.Text != "":
			texts++
		case e.Filled:
			fills++
		default:
			strokes++
		}
	}
	return fmt.Sprintf("canvas[%d strokes, %d fills, %d texts]", strokes, fills, texts)
}
