package txn

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file provides the transaction-layer half of snapshot-isolation
// reads: commit sequence numbers (CSNs) and the registry of live read
// snapshots.  The storage engine owns the version data; this package
// owns the clock.
//
// Every committed writer publishes its versions under the next CSN,
// serialized by the registry's publish lock so CSNs are dense and agree
// with WAL append order.  A read-only session pins the current CSN with
// BeginSnapshot and then scans version chains with zero lock
// acquisition: a version is visible when it was committed at or before
// the pinned CSN and not superseded by then.  The minimum pinned CSN is
// the garbage-collection watermark — versions dead at the watermark can
// never be seen again and may be reclaimed.

// CSN is a commit sequence number.  CSN 0 is the base state (whatever
// recovery or Open produced); the first published commit is CSN 1.
type CSN = uint64

// InfiniteCSN marks a version that has not been superseded: it is
// visible to every snapshot at or after its begin CSN.
const InfiniteCSN CSN = ^CSN(0)

// Visible reports whether a version with lifetime [begin, end) is
// visible to a snapshot pinned at CSN at.
func Visible(begin, end, at CSN) bool {
	return begin <= at && end > at
}

// Snapshot is a pinned read point.  It holds no locks and blocks no
// writer; it only holds back the garbage-collection watermark until
// closed.  Close is idempotent.
type Snapshot struct {
	reg  *SnapshotRegistry
	csn  CSN
	done atomic.Bool
}

// CSN returns the pinned commit sequence number.
func (s *Snapshot) CSN() CSN { return s.csn }

// Close unpins the snapshot, letting the GC watermark advance past it.
func (s *Snapshot) Close() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.reg.unpin(s)
}

// SnapshotRegistry issues CSNs to committers and tracks live snapshots.
// One registry serves one storage engine; it is safe for concurrent use.
type SnapshotRegistry struct {
	last  atomic.Uint64 // highest published CSN
	pubMu sync.Mutex    // serializes Publish (CSN order = publish order)

	mu   sync.Mutex
	pins map[*Snapshot]int // live snapshot → pin count bucket (csn)
}

// NewSnapshotRegistry returns an empty registry at CSN 0.
func NewSnapshotRegistry() *SnapshotRegistry {
	return &SnapshotRegistry{pins: make(map[*Snapshot]int)}
}

// Last returns the highest published CSN.
func (r *SnapshotRegistry) Last() CSN { return r.last.Load() }

// Publish runs fn with the next CSN and then advances Last to it, all
// under the publish lock: concurrent committers stamp their versions in
// a total order, and no snapshot can pin a CSN whose versions are still
// being stamped (BeginSnapshot reads Last, which only moves after fn
// returns).
func (r *SnapshotRegistry) Publish(fn func(csn CSN)) CSN {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	c := r.last.Load() + 1
	fn(c)
	r.last.Store(c)
	return c
}

// BeginSnapshot pins the current CSN and returns the snapshot handle.
// The context only gates entry (a canceled context refuses the pin);
// the snapshot itself lives until Close.
func (r *SnapshotRegistry) BeginSnapshot(ctx context.Context) (*Snapshot, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	s := &Snapshot{reg: r, csn: r.last.Load()}
	r.mu.Lock()
	r.pins[s] = 1
	r.mu.Unlock()
	return s, nil
}

func (r *SnapshotRegistry) unpin(s *Snapshot) {
	r.mu.Lock()
	delete(r.pins, s)
	r.mu.Unlock()
}

// Live returns the number of open snapshots.
func (r *SnapshotRegistry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pins)
}

// Watermark returns the garbage-collection horizon: the minimum pinned
// CSN, or Last when no snapshot is open.  Versions whose end CSN is at
// or below the watermark are invisible to every present and future
// snapshot.
func (r *SnapshotRegistry) Watermark() CSN {
	w := r.last.Load()
	r.mu.Lock()
	for s := range r.pins {
		if s.csn < w {
			w = s.csn
		}
	}
	r.mu.Unlock()
	return w
}
