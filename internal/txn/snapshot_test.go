package txn

import (
	"context"
	"sync"
	"testing"
)

func TestSnapshotRegistryPublishOrder(t *testing.T) {
	reg := NewSnapshotRegistry()
	if reg.Last() != 0 {
		t.Fatalf("fresh registry Last = %d", reg.Last())
	}
	var stamped []CSN
	for i := 0; i < 5; i++ {
		c := reg.Publish(func(csn CSN) { stamped = append(stamped, csn) })
		if c != CSN(i+1) {
			t.Fatalf("publish %d returned CSN %d", i, c)
		}
	}
	for i, c := range stamped {
		if c != CSN(i+1) {
			t.Fatalf("stamp %d = %d", i, c)
		}
	}
	if reg.Last() != 5 {
		t.Fatalf("Last = %d after 5 publishes", reg.Last())
	}
}

// TestSnapshotRegistryPublishStampsBeforeAdvance: a concurrent reader
// must never observe Last at a CSN whose stamping callback has not
// finished — that is the invariant letting snapshots pin Last without a
// lock.
func TestSnapshotRegistryPublishStampsBeforeAdvance(t *testing.T) {
	reg := NewSnapshotRegistry()
	var mu sync.Mutex
	applied := map[CSN]bool{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			last := reg.Last()
			mu.Lock()
			for c := CSN(1); c <= last; c++ {
				if !applied[c] {
					mu.Unlock()
					t.Errorf("Last=%d but CSN %d not applied", last, c)
					return
				}
			}
			mu.Unlock()
		}
	}()
	for i := 0; i < 2000; i++ {
		reg.Publish(func(csn CSN) {
			mu.Lock()
			applied[csn] = true
			mu.Unlock()
		})
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotPinAndWatermark(t *testing.T) {
	reg := NewSnapshotRegistry()
	for i := 0; i < 3; i++ {
		reg.Publish(func(CSN) {})
	}
	s1, err := reg.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s1.CSN() != 3 {
		t.Fatalf("snapshot pinned %d, want 3", s1.CSN())
	}
	for i := 0; i < 4; i++ {
		reg.Publish(func(CSN) {})
	}
	s2, err := reg.BeginSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2.CSN() != 7 {
		t.Fatalf("second snapshot pinned %d, want 7", s2.CSN())
	}
	if got := reg.Watermark(); got != 3 {
		t.Fatalf("watermark with both open = %d, want 3 (oldest pin)", got)
	}
	if got := reg.Live(); got != 2 {
		t.Fatalf("Live = %d", got)
	}
	s1.Close()
	if got := reg.Watermark(); got != 7 {
		t.Fatalf("watermark after closing oldest = %d, want 7", got)
	}
	s1.Close() // idempotent
	if got := reg.Live(); got != 1 {
		t.Fatalf("Live after double close = %d", got)
	}
	s2.Close()
	if got := reg.Watermark(); got != reg.Last() {
		t.Fatalf("watermark with no pins = %d, want Last = %d", got, reg.Last())
	}
}

func TestBeginSnapshotCanceledContext(t *testing.T) {
	reg := NewSnapshotRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reg.BeginSnapshot(ctx); err == nil {
		t.Fatal("BeginSnapshot on a canceled context should fail")
	}
	if got := reg.Live(); got != 0 {
		t.Fatalf("failed begin left %d pins", got)
	}
}

// TestSnapshotPinsSameCSNIndependently: two snapshots at the same CSN
// are reference-counted; closing one keeps the other's pin.
func TestSnapshotPinsSameCSNIndependently(t *testing.T) {
	reg := NewSnapshotRegistry()
	reg.Publish(func(CSN) {})
	a, _ := reg.BeginSnapshot(context.Background())
	b, _ := reg.BeginSnapshot(context.Background())
	reg.Publish(func(CSN) {})
	a.Close()
	if got := reg.Watermark(); got != 1 {
		t.Fatalf("watermark = %d with b still pinned at 1", got)
	}
	b.Close()
	if got := reg.Watermark(); got != 2 {
		t.Fatalf("watermark = %d after all pins closed", got)
	}
}
